package trout

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/livestate"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/scaling"
)

// Snapshot is a live queue view used for deployment-side prediction.
type Snapshot = features.Snapshot

// Bundle is everything the prediction CLI needs: the trained hierarchical
// model, the runtime predictor that feeds its Pred-Runtime features, the
// cluster description the features were engineered against, and the
// degraded-mode predictors behind PredictWithFallback.
type Bundle struct {
	Model   *core.Model
	Runtime *features.RuntimePredictor
	Cluster ClusterSpec
	// Fallback holds the tier-2/tier-3 predictors the serving path drops
	// to when the neural network errors or emits non-finite output.
	Fallback FallbackSpec
	// Fingerprint is the SHA-256 of the bundle's gob encoding, set by
	// Save/LoadBundle (empty for in-memory bundles that were never
	// serialized). It is the model's identity everywhere the system needs
	// to say *which* model: /health, the trout_model_info gauge, and the
	// control plane's content-addressed registry. Not part of the wire
	// format — it is recomputed from the bytes on every load, so a
	// corrupted file can never claim a healthy identity.
	Fingerprint string
}

// FallbackSpec is the degraded-mode half of a bundle. Either tier may be
// absent (e.g. bundles written before fallbacks existed); the chain simply
// skips missing tiers.
type FallbackSpec struct {
	// Baseline is the tier-2 gradient-boosted regressor over the same 33
	// features as the NN, trained on log1p queue minutes — the stand-in
	// for the paper's XGBoost baseline, kept deliberately independent of
	// the NN stack so a poisoned network cannot take it down too.
	Baseline *baselines.GBDT
	// PartitionMedianMinutes is the tier-3 heuristic: the training-set
	// median queue time per partition.
	PartitionMedianMinutes map[string]float64
	// GlobalMedianMinutes answers for partitions absent from the map.
	GlobalMedianMinutes float64
}

// TieredPrediction is a Prediction tagged with the fallback tier that
// produced it (resilience.TierNN, TierBaseline, or TierHeuristic).
type TieredPrediction struct {
	core.Prediction
	Tier string
}

// fallbackGBDTConfig keeps the tier-2 model cheap to train and evaluate:
// it is a safety net, not a contender.
func fallbackGBDTConfig(seed int64) baselines.GBDTConfig {
	return baselines.GBDTConfig{
		Rounds:            40,
		LearnRate:         0.1,
		Tree:              baselines.TreeConfig{MaxDepth: 4, MinLeaf: 20},
		SubsampleFraction: 0.8,
		Seed:              seed,
	}
}

// NewBundle assembles a deployment bundle from a trained model and the
// dataset it was trained on, fitting the fallback predictors (a small
// GBDT and per-partition medians) from the same dataset.
func NewBundle(m *Model, ds *Dataset, cluster *ClusterSpec) (*Bundle, error) {
	if m == nil || ds == nil || ds.Runtime == nil || cluster == nil {
		return nil, fmt.Errorf("trout: bundle needs a model, dataset with runtime predictor, and cluster")
	}
	b := &Bundle{Model: m, Runtime: ds.Runtime, Cluster: *cluster}

	gbdt := baselines.NewGBDT(fallbackGBDTConfig(m.Cfg.Seed + 211))
	logMinutes := make([]float64, len(ds.QueueMinutes))
	for i, q := range ds.QueueMinutes {
		logMinutes[i] = math.Log1p(q)
	}
	if err := gbdt.Fit(ds.X, logMinutes); err != nil {
		return nil, fmt.Errorf("trout: fallback baseline: %w", err)
	}
	b.Fallback.Baseline = gbdt

	byPartition := map[string][]float64{}
	for i := range ds.Jobs {
		p := ds.Jobs[i].Partition
		byPartition[p] = append(byPartition[p], ds.QueueMinutes[i])
	}
	b.Fallback.PartitionMedianMinutes = make(map[string]float64, len(byPartition))
	for p, qs := range byPartition {
		b.Fallback.PartitionMedianMinutes[p] = resilience.Median(qs)
	}
	b.Fallback.GlobalMedianMinutes = resilience.Median(ds.QueueMinutes)
	return b, nil
}

// EnableFastInference compiles the bundle's model onto the float32
// serving path (transposed lane-padded weights, SSE kernels — see
// internal/nn/infer32.go). The fallback GBDT already serves from its
// flattened ensemble unconditionally, so this switch only concerns the
// NN tier. Returns false and leaves the float64 path active when the
// bundle has no model or its architecture cannot be compiled.
func (b *Bundle) EnableFastInference() bool {
	return b.Model != nil && b.Model.EnableFastInference()
}

// DisableFastInference reverts the model to the float64 reference path.
func (b *Bundle) DisableFastInference() {
	if b.Model != nil {
		b.Model.DisableFastInference()
	}
}

// FastInferenceEnabled reports whether the model serves from the float32
// path.
func (b *Bundle) FastInferenceEnabled() bool {
	return b.Model != nil && b.Model.FastInferenceEnabled()
}

// PredictSnapshot runs Algorithm 1 on a live queue snapshot.
func (b *Bundle) PredictSnapshot(snap *Snapshot) (Prediction, error) {
	row, err := features.SnapshotRow(snap, &b.Cluster, b.Runtime)
	if err != nil {
		return Prediction{}, err
	}
	return b.Model.Predict(row), nil
}

// FeatureRow exposes the engineered feature vector for a snapshot (used by
// the dashboard service's debugging endpoint).
func (b *Bundle) FeatureRow(snap *Snapshot) ([]float64, error) {
	return features.SnapshotRow(snap, &b.Cluster, b.Runtime)
}

// checkPrediction rejects non-finite or out-of-range predictions — the
// gate each fallback tier must pass before its answer is served.
func checkPrediction(p core.Prediction) error {
	if !resilience.Finite(p.Prob, p.Minutes) {
		return fmt.Errorf("non-finite prediction (prob=%v minutes=%v)", p.Prob, p.Minutes)
	}
	if p.Prob < 0 || p.Prob > 1 {
		return fmt.Errorf("probability %v outside [0, 1]", p.Prob)
	}
	if p.Minutes < 0 {
		return fmt.Errorf("negative minutes %v", p.Minutes)
	}
	return nil
}

// minutesPrediction converts a raw queue-minutes estimate into a
// Prediction consistent with the hierarchical contract: Long iff the
// estimate reaches the cutoff, with a smooth pseudo-probability that
// crosses 0.5 exactly at the cutoff.
func minutesPrediction(minutes, cutoff float64) core.Prediction {
	if minutes < 0 || math.IsNaN(minutes) {
		minutes = 0
	}
	p := core.Prediction{Prob: minutes / (minutes + cutoff), Long: minutes >= cutoff}
	if p.Long {
		p.Minutes = minutes
	}
	return p
}

// PredictWithFallback runs the tiered prediction chain on a snapshot:
//
//	nn        — the hierarchical model (Algorithm 1)
//	baseline  — the bundled GBDT over the same features
//	heuristic — the partition-median queue time from training
//
// A tier is skipped when it errors, panics, or emits a non-finite or
// out-of-range value; the answer is tagged with the tier that produced it.
// Only a snapshot whose feature row cannot be built (e.g. an unknown
// partition) returns an error — that is a bad request, not a degraded
// model.
func (b *Bundle) PredictWithFallback(snap *Snapshot) (TieredPrediction, error) {
	return b.PredictWithFallbackSpans(snap, nil)
}

// PredictWithFallbackSpans is PredictWithFallback with per-stage span
// timing (featurize, scale, classify, regress, fallback) recorded into
// sp. A nil sp skips all timing, making the two paths identical.
func (b *Bundle) PredictWithFallbackSpans(snap *Snapshot, sp *obs.Spans) (TieredPrediction, error) {
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	row, err := features.SnapshotRow(snap, &b.Cluster, b.Runtime)
	if sp != nil {
		sp.Observe(obs.StageFeaturize, time.Since(t0).Seconds())
	}
	if err != nil {
		return TieredPrediction{}, err
	}
	cutoff := b.cutoffMinutes()
	steps := append([]resilience.Step[core.Prediction]{{
		Tier: resilience.TierNN,
		Predict: func() (core.Prediction, error) {
			if b.Model == nil {
				return core.Prediction{}, fmt.Errorf("no model in bundle")
			}
			return b.Model.PredictSpans(row, sp), nil
		},
		Check: checkPrediction,
	}}, b.degradedStepsSpans(row, snap.Target.Partition, cutoff, sp)...)
	pred, tier, err := resilience.Run(steps, nil)
	if err != nil {
		return TieredPrediction{}, err
	}
	return TieredPrediction{Prediction: pred, Tier: tier}, nil
}

// cutoffMinutes is the Long-verdict threshold: a bundle with a corrupt
// (nil) model still serves the lower tiers with the paper's default cutoff.
func (b *Bundle) cutoffMinutes() float64 {
	if b.Model != nil && b.Model.Cfg.CutoffMinutes > 0 {
		return b.Model.Cfg.CutoffMinutes
	}
	return 10.0
}

// degradedSteps are the tier-2 (bundled GBDT) and tier-3 (partition median)
// fallback steps for one feature row — everything in the chain below the
// neural network, shared between the single and batched prediction paths.
func (b *Bundle) degradedSteps(row []float64, partition string, cutoff float64) []resilience.Step[core.Prediction] {
	return []resilience.Step[core.Prediction]{
		{
			Tier: resilience.TierBaseline,
			Predict: func() (core.Prediction, error) {
				if b.Fallback.Baseline == nil {
					return core.Prediction{}, fmt.Errorf("no baseline predictor in bundle")
				}
				return minutesPrediction(math.Expm1(b.Fallback.Baseline.Predict(row)), cutoff), nil
			},
			Check: checkPrediction,
		},
		{
			Tier: resilience.TierHeuristic,
			Predict: func() (core.Prediction, error) {
				med, ok := b.Fallback.PartitionMedianMinutes[partition]
				if !ok {
					med = b.Fallback.GlobalMedianMinutes
				}
				return minutesPrediction(med, cutoff), nil
			},
			Check: checkPrediction,
		},
	}
}

// degradedStepsSpans wraps the degraded tiers so each attempt records a
// "fallback" span. A nil sp returns the plain steps.
func (b *Bundle) degradedStepsSpans(row []float64, partition string, cutoff float64, sp *obs.Spans) []resilience.Step[core.Prediction] {
	steps := b.degradedSteps(row, partition, cutoff)
	if sp == nil {
		return steps
	}
	for i := range steps {
		inner := steps[i].Predict
		steps[i].Predict = func() (core.Prediction, error) {
			t0 := time.Now()
			p, err := inner()
			sp.Observe(obs.StageFallback, time.Since(t0).Seconds())
			return p, err
		}
	}
	return steps
}

// BatchResult is one job's outcome from PredictBatchWithFallback: either a
// tiered prediction or a per-job error (bad feature row, or every tier
// refused) — one job's failure never fails the batch.
type BatchResult struct {
	TieredPrediction
	Err error
}

// PredictBatchWithFallback runs the tiered chain over many snapshots at
// once. Healthy path: every feature row goes through the model's mini-batch
// matmuls in one pass (classifier once, regressor once over the
// long-classified subset). Rows whose NN answer fails the finite/range
// check — or every row, when the model is absent or the batch pass
// panics — drop to the same per-row tier-2/3 chain the single path uses, so
// each result is identical (values and tier label) to PredictWithFallback
// on that snapshot.
func (b *Bundle) PredictBatchWithFallback(snaps []*Snapshot) []BatchResult {
	return b.PredictBatchWithFallbackSpans(snaps, nil)
}

// PredictBatchWithFallbackSpans is PredictBatchWithFallback with stage
// spans: featurize covers row staging, batch_nn the mini-batched forward
// passes, and fallback the degraded per-row chains (one span covering all
// fallen-back rows). A nil sp skips all timing.
func (b *Bundle) PredictBatchWithFallbackSpans(snaps []*Snapshot, sp *obs.Spans) []BatchResult {
	results := make([]BatchResult, len(snaps))
	cutoff := b.cutoffMinutes()

	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	// Stage the feature rows; per-row failures are bad requests, not
	// batch failures.
	rows := make([][]float64, 0, len(snaps))
	rowOf := make([]int, 0, len(snaps)) // rows index -> snaps index
	for i, snap := range snaps {
		row, err := features.SnapshotRow(snap, &b.Cluster, b.Runtime)
		if err != nil {
			results[i].Err = err
			continue
		}
		rows = append(rows, row)
		rowOf = append(rowOf, i)
	}
	if sp != nil {
		sp.Observe(obs.StageFeaturize, time.Since(t0).Seconds())
	}
	if len(rows) == 0 {
		return results
	}

	if sp != nil {
		t0 = time.Now()
	}
	preds, ok := b.tryPredictBatch(rows)
	if sp != nil {
		sp.Observe(obs.StageBatchNN, time.Since(t0).Seconds())
	}
	var fallbackSecs float64
	fellBack := false
	for k, i := range rowOf {
		if ok && checkPrediction(preds[k]) == nil {
			results[i] = BatchResult{TieredPrediction: TieredPrediction{Prediction: preds[k], Tier: resilience.TierNN}}
			continue
		}
		if sp != nil {
			t0 = time.Now()
		}
		pred, tier, err := resilience.Run(b.degradedSteps(rows[k], snaps[i].Target.Partition, cutoff), nil)
		if sp != nil {
			fallbackSecs += time.Since(t0).Seconds()
			fellBack = true
		}
		if err != nil {
			results[i].Err = err
			continue
		}
		results[i] = BatchResult{TieredPrediction: TieredPrediction{Prediction: pred, Tier: tier}}
	}
	if sp != nil && fellBack {
		sp.Observe(obs.StageFallback, fallbackSecs)
	}
	return results
}

// tryPredictBatch is the NN tier of the batch path: it reports ok=false
// when the model is missing or the mini-batch forward pass panics (the
// batch equivalent of the single path's per-tier panic recovery).
func (b *Bundle) tryPredictBatch(rows [][]float64) (preds []core.Prediction, ok bool) {
	if b.Model == nil {
		return nil, false
	}
	defer func() {
		if recover() != nil {
			preds, ok = nil, false
		}
	}()
	return b.Model.PredictBatch(rows), true
}

// SnapshotFromTrace reconstructs the queue state a trace job observed at
// its eligibility instant — what the CLI does when pointed at an accounting
// file and a job ID.
func SnapshotFromTrace(tr *Trace, jobID int) (*Snapshot, error) {
	var target *Job
	for i := range tr.Jobs {
		if tr.Jobs[i].ID == jobID {
			target = &tr.Jobs[i]
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("trout: job %d not found in trace", jobID)
	}
	t := target.Eligible
	snap := &Snapshot{Now: t, Target: *target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.ID != jobID {
			// Phase classification honors open intervals: Start == 0 means
			// still pending, End == 0 still running — live traces must not
			// drop their genuinely-queued jobs.
			switch livestate.PhaseAt(&j, t) {
			case livestate.PhasePending:
				snap.Pending = append(snap.Pending, j)
			case livestate.PhaseRunning:
				snap.Running = append(snap.Running, j)
			}
		}
		// The target's own submission belongs in its user history when
		// it predates the prediction instant (dependency-held jobs).
		if j.Submit >= t-86400 && j.Submit < t {
			snap.History = append(snap.History, j)
		}
	}
	return snap, nil
}

// bundleDTO is the gob wire form of a Bundle. The fallback fields are
// optional on the wire: bundles written before they existed decode with
// them zero, and the prediction chain skips the missing tiers.
type bundleDTO struct {
	Model        []byte
	Runtime      []byte
	Cluster      ClusterSpec
	Baseline     []byte
	Medians      map[string]float64
	GlobalMedian float64
}

// Save writes the bundle and stamps b.Fingerprint with the SHA-256 of the
// written bytes, so a freshly saved bundle knows its own identity.
func (b *Bundle) Save(w io.Writer) error {
	var mb bytes.Buffer
	if err := b.Model.Save(&mb); err != nil {
		return err
	}
	rb, err := b.Runtime.Bytes()
	if err != nil {
		return err
	}
	dto := bundleDTO{
		Model: mb.Bytes(), Runtime: rb, Cluster: b.Cluster,
		Medians:      b.Fallback.PartitionMedianMinutes,
		GlobalMedian: b.Fallback.GlobalMedianMinutes,
	}
	if b.Fallback.Baseline != nil {
		if dto.Baseline, err = b.Fallback.Baseline.MarshalBinary(); err != nil {
			return err
		}
	}
	h := sha256.New()
	if err := gob.NewEncoder(io.MultiWriter(w, h)).Encode(dto); err != nil {
		return err
	}
	b.Fingerprint = hex.EncodeToString(h.Sum(nil))
	return nil
}

// LoadBundle reads a bundle written by Save. The returned bundle's
// Fingerprint is the SHA-256 of the bytes actually consumed, so identity
// always reflects what was read, never what a manifest claimed.
func LoadBundle(r io.Reader) (*Bundle, error) {
	h := sha256.New()
	var dto bundleDTO
	if err := gob.NewDecoder(io.TeeReader(r, h)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("trout: load bundle: %w", err)
	}
	m, err := core.Load(bytes.NewReader(dto.Model))
	if err != nil {
		return nil, err
	}
	rp, err := features.RuntimePredictorFromBytes(dto.Runtime)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Model: m, Runtime: rp, Cluster: dto.Cluster}
	if len(dto.Baseline) > 0 {
		gbdt := &baselines.GBDT{}
		if err := gbdt.UnmarshalBinary(dto.Baseline); err != nil {
			return nil, fmt.Errorf("trout: load bundle baseline: %w", err)
		}
		b.Fallback.Baseline = gbdt
	}
	b.Fallback.PartitionMedianMinutes = dto.Medians
	b.Fallback.GlobalMedianMinutes = dto.GlobalMedian
	b.Fingerprint = hex.EncodeToString(h.Sum(nil))
	return b, nil
}

// IncompatibleBundleError marks a candidate bundle that cannot serve
// behind the current prediction pipeline — wrong feature width, missing
// or unknown scaler, missing runtime predictor, or a cluster spec that
// lost partitions the serving pipeline still routes. Returned by
// CompatibleWith and the service's swap path so an incompatible swap is a
// structured 4xx on the admin endpoint instead of a panic at first
// predict.
type IncompatibleBundleError struct {
	Reason string
}

func (e *IncompatibleBundleError) Error() string {
	return "trout: incompatible bundle: " + e.Reason
}

// CompatibleWith checks that b can replace cur behind the serving
// pipeline: the model must exist, take the pipeline's feature-vector
// width, carry a scaler of a known kind and a runtime predictor (both are
// consulted on every SnapshotRow), and its cluster spec must cover every
// partition cur serves — a bundle missing a partition would turn every
// prediction for that partition into a 400. A nil cur skips the
// partition-coverage check.
func (b *Bundle) CompatibleWith(cur *Bundle) error {
	bad := func(format string, args ...any) error {
		return &IncompatibleBundleError{Reason: fmt.Sprintf(format, args...)}
	}
	if b == nil || b.Model == nil {
		return bad("no model")
	}
	if b.Model.NumInputs != features.NumFeatures {
		return bad("model takes %d features, pipeline produces %d", b.Model.NumInputs, features.NumFeatures)
	}
	if b.Model.Scaler == nil {
		return bad("model has no fitted scaler")
	}
	if _, err := scaling.New(b.Model.Scaler.Kind()); err != nil {
		return bad("unknown scaler kind %q", b.Model.Scaler.Kind())
	}
	if b.Runtime == nil {
		return bad("no runtime predictor")
	}
	if cur != nil {
		for i := range cur.Cluster.Partitions {
			name := cur.Cluster.Partitions[i].Name
			if b.Cluster.Partition(name) == nil {
				return bad("cluster spec lost partition %q", name)
			}
		}
	}
	return nil
}

// SaveFile writes the bundle to a path.
func (b *Bundle) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := b.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadBundleFile reads a bundle from a path.
func LoadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBundle(f)
}
