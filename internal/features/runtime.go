package features

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/slurmsim"
	"repro/internal/trace"
)

// RuntimePredictor is the random-forest job-runtime model (§II/§III: a
// separate model whose output is fed to the queue-time predictor as the
// Pred Runtime features). It uses only request-time inputs, so it can score
// a job the moment it is submitted.
type RuntimePredictor struct {
	Forest *baselines.Forest
}

// TrainRuntimePredictor fits the forest on the given (time-ordered) jobs.
// Targets are log-seconds of actual runtime. Trees train on histogram-binned
// features (the fast default); exact flips to the per-node exact split
// search, kept for quality comparisons against the histogram learner.
func TrainRuntimePredictor(jobs []trace.Job, totals map[string]slurmsim.PartitionTotals, trees int, seed int64, exact bool) (*RuntimePredictor, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("features: no jobs to train runtime predictor")
	}
	if trees <= 0 {
		trees = 50
	}
	X := make([][]float64, len(jobs))
	y := make([]float64, len(jobs))
	for i := range jobs {
		X[i] = runtimeFeatureRow(&jobs[i], totals[jobs[i].Partition])
		y[i] = math.Log1p(float64(jobs[i].RuntimeSeconds()))
	}
	forest := baselines.NewForest(baselines.ForestConfig{
		Trees: trees,
		Tree:  baselines.TreeConfig{MaxDepth: 10, MinLeaf: 10, Exact: exact},
		Seed:  seed,
	})
	if err := forest.Fit(X, y); err != nil {
		return nil, fmt.Errorf("features: runtime predictor: %w", err)
	}
	return &RuntimePredictor{Forest: forest}, nil
}

// PredictSeconds estimates a job's runtime in seconds from request-time
// fields only.
func (r *RuntimePredictor) PredictSeconds(j *trace.Job, tot slurmsim.PartitionTotals) float64 {
	v := math.Expm1(r.Forest.Predict(runtimeFeatureRow(j, tot)))
	if v < 0 {
		return 0
	}
	return v
}

// Bytes serializes the predictor.
func (r *RuntimePredictor) Bytes() ([]byte, error) {
	fb, err := r.Forest.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fb); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RuntimePredictorFromBytes deserializes a predictor written by Bytes.
func RuntimePredictorFromBytes(b []byte) (*RuntimePredictor, error) {
	var fb []byte
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&fb); err != nil {
		return nil, fmt.Errorf("features: runtime predictor: %w", err)
	}
	forest := &baselines.Forest{}
	if err := forest.UnmarshalBinary(fb); err != nil {
		return nil, fmt.Errorf("features: runtime predictor: %w", err)
	}
	return &RuntimePredictor{Forest: forest}, nil
}
