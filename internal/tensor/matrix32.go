package tensor

import "math"

// Matrix32 is a row-major float32 matrix with an explicit row stride so
// columns can be padded out to the 4-lane alignment the SSE inference
// kernels require. Rows*Stride elements of Data are live; lanes between
// Cols and Stride are padding and must be kept zero by the owner (zero
// padding is exact under the kernels: 0·0 contributes +0 to every lane).
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// PadTo4 rounds n up to the next multiple of four, the kernel lane width.
func PadTo4(n int) int { return (n + 3) &^ 3 }

// NewMatrix32 allocates a zeroed rows x cols matrix whose stride is cols
// rounded up to the kernel lane width.
func NewMatrix32(rows, cols int) *Matrix32 {
	stride := PadTo4(cols)
	return &Matrix32{Rows: rows, Cols: cols, Stride: stride, Data: make([]float32, rows*stride)}
}

// Row returns the i-th row including its padding lanes.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Stride : i*m.Stride+m.Stride]
}

// reluLimit returns the clamp operand used by the fused bias+ReLU epilogue:
// the kernels compute max(lim, v) with v as the max's source operand, so a
// NaN accumulator always propagates (matching the f64 path's NaN masking)
// and −0 survives the identity clamp. lim = 0 implements ReLU; lim = −Inf
// is the identity.
func reluLimit(relu bool) float32 {
	if relu {
		return 0
	}
	return float32(math.Inf(-1))
}

// MatMulTransBInto32 computes dst = a · bᵀ + bias with an optional fused
// ReLU, entirely in float32. b holds one weight row per output unit
// (Out x In, transposed layout), so each output is a contiguous dot
// product — the register-blocked SSE kernel streams one a-row chunk
// against four weight rows at a time, which is what keeps the per-predict
// working set at half the float64 path's cache footprint.
//
// Shape contract: a is Rows x K with a.Stride == b.Stride (K padded to the
// lane width), b is Out x K, bias has at least b.Rows entries, dst is
// Rows x b.Rows with dst.Stride >= b.Rows. Accumulation order is fixed —
// four stride-4 partial sums combined as (s0+s2)+(s1+s3) — and is
// bit-identical between the assembly and pure-Go paths.
func MatMulTransBInto32(dst, a, b *Matrix32, bias []float32, relu bool) {
	if a.Stride != b.Stride {
		panic("tensor: MatMulTransBInto32 stride mismatch")
	}
	if dst.Stride < b.Rows || len(bias) < b.Rows {
		panic("tensor: MatMulTransBInto32 output shape mismatch")
	}
	outs, inPad := b.Rows, b.Stride
	useAsm := haveSSE && outs%4 == 0 && inPad%4 == 0 && outs > 0 && inPad > 0
	lim := reluLimit(relu)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Stride:]
		drow := dst.Data[r*dst.Stride:]
		if useAsm {
			matmulTransB32SSE(&arow[0], &b.Data[0], &bias[0], &drow[0], int64(outs), int64(inPad), lim)
		} else {
			matmulTransB32Go(arow[:inPad], b.Data, bias, drow, outs, inPad, lim)
		}
	}
}

// MatMulTransBInto32F64Acc is the head-layer variant: same shape contract
// and fused epilogue as MatMulTransBInto32, but every dot product
// accumulates in float64 before rounding once to float32. The output head
// is where accumulated rounding error lands directly on the served
// prediction (and on a sigmoid logit), so that is where the precision is
// spent; head layers are a few units wide, so the scalar path costs
// nothing measurable.
func MatMulTransBInto32F64Acc(dst, a, b *Matrix32, bias []float32, relu bool) {
	if a.Stride != b.Stride {
		panic("tensor: MatMulTransBInto32F64Acc stride mismatch")
	}
	if dst.Stride < b.Rows || len(bias) < b.Rows {
		panic("tensor: MatMulTransBInto32F64Acc output shape mismatch")
	}
	outs, inPad := b.Rows, b.Stride
	lim := reluLimit(relu)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Stride : r*a.Stride+inPad]
		drow := dst.Data[r*dst.Stride:]
		for o := 0; o < outs; o++ {
			row := b.Data[o*inPad : o*inPad+inPad]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+4 <= inPad; k += 4 {
				s0 += float64(arow[k]) * float64(row[k])
				s1 += float64(arow[k+1]) * float64(row[k+1])
				s2 += float64(arow[k+2]) * float64(row[k+2])
				s3 += float64(arow[k+3]) * float64(row[k+3])
			}
			for ; k < inPad; k++ {
				s0 += float64(arow[k]) * float64(row[k])
			}
			v := float32((s0+s2)+(s1+s3)) + bias[o]
			if lim > v {
				v = lim
			}
			drow[o] = v
		}
	}
}

// matmulTransB32Go is the portable kernel. It mirrors the SSE routine
// exactly: lane l of the vector accumulator is the stride-4 partial sum
// s_l, the horizontal reduction is (s0+s2)+(s1+s3), and the clamp is
// written as lim > v so NaN and −0 behave like MAXSS with v in the source
// position. Any change here must keep TestMatMul32AsmMatchesGo green.
func matmulTransB32Go(a, wt, bias, dst []float32, outs, inPad int, lim float32) {
	for o := 0; o < outs; o++ {
		row := wt[o*inPad : o*inPad+inPad]
		var s0, s1, s2, s3 float32
		k := 0
		for ; k+4 <= inPad; k += 4 {
			s0 += a[k] * row[k]
			s1 += a[k+1] * row[k+1]
			s2 += a[k+2] * row[k+2]
			s3 += a[k+3] * row[k+3]
		}
		for ; k < inPad; k++ {
			s0 += a[k] * row[k]
		}
		v := (s0 + s2) + (s1 + s3)
		v += bias[o]
		if lim > v {
			v = lim
		}
		dst[o] = v
	}
}
