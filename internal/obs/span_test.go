package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpanIDFormatParse(t *testing.T) {
	id := nextSpanID()
	if id == 0 {
		t.Fatal("span ID 0")
	}
	s := FormatSpanID(id)
	if len(s) != 16 || s != strings.ToLower(s) {
		t.Fatalf("formatted span ID %q", s)
	}
	if got := ParseSpanID(s); got != id {
		t.Fatalf("roundtrip %q: got %x want %x", s, got, id)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("g", 16), strings.Repeat("a", 15)} {
		if ParseSpanID(bad) != 0 {
			t.Errorf("ParseSpanID(%q) should be 0", bad)
		}
	}
	if a, b := nextSpanID(), nextSpanID(); a == b {
		t.Error("consecutive span IDs collided")
	}
}

func TestTraceTreeStructure(t *testing.T) {
	tr, err := NewTracer(TracerConfig{SampleRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	tb, root := tr.StartTrace("trace-1", "GET /x", time.Now(), 0)
	child := root.StartChild("step")
	child.SetAttr("k", "v")
	child.End()

	sp := &Spans{}
	sp.AttachTree(tb, root.ID())
	sp.Observe(StageSnapshot, 0.001)

	grand := child.StartChild("substep")
	grand.EndErr(errors.New("boom"))
	root.End()

	spans := tb.snapshot(time.Now().UnixNano())
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Parent != 0 || spans[0].Name != "GET /x" {
		t.Errorf("root = %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID || spans[1].Attrs[0] != (Attr{"k", "v"}) {
		t.Errorf("child = %+v", spans[1])
	}
	if spans[2].Parent != spans[0].ID || spans[2].Name != StageSnapshot {
		t.Errorf("observed stage = %+v", spans[2])
	}
	if spans[3].Parent != spans[1].ID || spans[3].Err != "boom" {
		t.Errorf("grandchild = %+v", spans[3])
	}
	if !tb.errored {
		t.Error("EndErr did not mark the trace errored")
	}
	for i, s := range spans {
		if s.End < s.Start {
			t.Errorf("span %d inverted interval: %+v", i, s)
		}
		if s.Parent != 0 && (s.Start < spans[0].Start || s.End > spans[0].End) {
			t.Errorf("span %d escapes root interval", i)
		}
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tb, root := tr.StartTrace("x", "y", time.Now(), 0)
	if tb != nil || root.ID() != 0 {
		t.Fatal("nil tracer produced a trace")
	}
	root.SetAttr("a", "b")
	root.End()
	tr.FinishRequest(tb, root, "y", 200, time.Millisecond)
	tr.FinishRoot(tb, root, nil)
	tr.Flush()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if h := StartSpan(context.Background(), "z"); h.ID() != 0 {
		t.Fatal("StartSpan outside a trace should be a no-op")
	}
	// Disabled config yields a nil tracer.
	if d, err := NewTracer(TracerConfig{Disabled: true}); err != nil || d != nil {
		t.Fatalf("disabled tracer = %v, %v", d, err)
	}
}

func TestSpanCap(t *testing.T) {
	tr, _ := NewTracer(TracerConfig{SampleRate: -1})
	tb, root := tr.StartTrace("t", "root", time.Now(), 0)
	for i := 0; i < maxTraceSpans+10; i++ {
		root.StartChild("c").End()
	}
	tb.mu.Lock()
	n, dropped := len(tb.spans), tb.dropped
	tb.mu.Unlock()
	if n != maxTraceSpans {
		t.Errorf("span count %d, want cap %d", n, maxTraceSpans)
	}
	if dropped != 11 {
		t.Errorf("dropped = %d, want 11", dropped)
	}
	tr.FinishRequest(tb, root, "root", 200, 0)
	if st := tr.Stats(); st.SpanDropped != 11 {
		t.Errorf("SpanDropped = %d", st.SpanDropped)
	}
}

// readTraceLines parses every JSONL line of the export file.
func readTraceLines(t *testing.T, path string) []TraceJSON {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []TraceJSON
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line TraceJSON
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, sc.Text())
		}
		out = append(out, line)
	}
	return out
}

func TestTailSamplingAndExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	tr, err := NewTracer(TracerConfig{
		SampleRate:    -1, // no head sampling: only slow + errored survive
		SlowThreshold: 50 * time.Millisecond,
		Path:          path,
	})
	if err != nil {
		t.Fatal(err)
	}
	finish := func(name string, status int, dur time.Duration) {
		tb, root := tr.StartTrace(NewTraceID(), name, time.Now(), 0)
		tr.FinishRequest(tb, root, name, status, dur)
	}
	finish("fast-ok", 200, time.Millisecond)     // dropped
	finish("slow", 200, 80*time.Millisecond)     // kept: slow
	finish("errored", 503, 2*time.Millisecond)   // kept: error
	finish("fast-ok-2", 200, 2*time.Millisecond) // dropped
	tr.Flush()

	lines := readTraceLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("exported %d traces, want 2: %+v", len(lines), lines)
	}
	if lines[0].Root != "slow" || lines[1].Root != "errored" {
		t.Errorf("exported roots = %q, %q", lines[0].Root, lines[1].Root)
	}
	if lines[1].Spans[0].Error == "" {
		t.Error("errored trace root has no error")
	}
	st := tr.Stats()
	if st.KeptSlow != 1 || st.KeptError != 1 || st.KeptHead != 0 || st.Exported != 2 {
		t.Errorf("stats = %+v", st)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeadSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	tr, err := NewTracer(TracerConfig{SampleRate: 0.25, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tb, root := tr.StartTrace(NewTraceID(), "r", time.Now(), 0)
		tr.FinishRequest(tb, root, "r", 200, time.Millisecond)
	}
	tr.Flush()
	if st := tr.Stats(); st.KeptHead != 25 {
		t.Errorf("head-kept %d of 100 at rate 0.25", st.KeptHead)
	}
	tr.Close()
}

func TestExporterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	tr, err := NewTracer(TracerConfig{
		SampleRate: 1, Path: path, MaxFileBytes: 2048, MaxFiles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		tb, root := tr.StartTrace(NewTraceID(), "rotate-me", time.Now(), 0)
		root.SetAttr("pad", strings.Repeat("x", 64))
		tr.FinishRequest(tb, root, "rotate-me", 200, time.Millisecond)
	}
	tr.Flush()
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatalf("current file missing after rotation: %v", err)
	}
	if st1.Size() > 4096 {
		t.Errorf("current file %d bytes despite 2048 rotation bound", st1.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("rotated file missing: %v", err)
	}
	if _, err := os.Stat(path + ".2"); err == nil {
		t.Error("MaxFiles=2 should not produce a .2 file")
	}
	// Every surviving line still parses.
	readTraceLines(t, path)
	readTraceLines(t, path+".1")
	tr.Close()
}

func TestRecorderSlowAndErrored(t *testing.T) {
	tr, _ := NewTracer(TracerConfig{SampleRate: -1, FlightSlots: 3})
	rec := tr.Recorder()
	offer := func(name string, status int, dur time.Duration) {
		tb, root := tr.StartTrace("id-"+name, name, time.Now(), 0)
		tr.FinishRequest(tb, root, name, status, dur)
	}
	for i, d := range []time.Duration{5, 9, 2, 7, 1, 8} {
		offer(string(rune('a'+i)), 200, d*time.Millisecond)
	}
	offer("e1", 500, time.Millisecond)
	offer("e2", 502, time.Millisecond)

	snap := rec.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest len %d, want 3", len(snap.Slowest))
	}
	// 9ms, 8ms, 7ms survive, descending.
	if snap.Slowest[0].Name != "b" || snap.Slowest[1].Name != "f" || snap.Slowest[2].Name != "d" {
		t.Errorf("slowest = %q %q %q", snap.Slowest[0].Name, snap.Slowest[1].Name, snap.Slowest[2].Name)
	}
	if len(snap.Errored) != 2 || snap.Errored[0].Name != "e2" || snap.Errored[1].Name != "e1" {
		t.Errorf("errored = %+v", snap.Errored)
	}
	if snap.Errored[0].Status != 502 {
		t.Errorf("errored status = %d", snap.Errored[0].Status)
	}
	if snap.Slowest[0].TraceID != "id-b" || len(snap.Slowest[0].Spans) == 0 {
		t.Errorf("slowest[0] = %+v", snap.Slowest[0])
	}
}

func TestRecorderErroredRingWraps(t *testing.T) {
	tr, _ := NewTracer(TracerConfig{SampleRate: -1, FlightSlots: 2})
	for i := 0; i < 5; i++ {
		tb, root := tr.StartTrace(NewTraceID(), string(rune('a'+i)), time.Now(), 0)
		tr.FinishRequest(tb, root, string(rune('a'+i)), 500, time.Duration(i+1)*time.Millisecond)
	}
	snap := tr.Recorder().Snapshot()
	if len(snap.Errored) != 2 || snap.Errored[0].Name != "e" || snap.Errored[1].Name != "d" {
		t.Errorf("errored ring = %+v", snap.Errored)
	}
}

func TestRecorderKeepNothingAllocFree(t *testing.T) {
	tr, _ := NewTracer(TracerConfig{SampleRate: -1, FlightSlots: 2})
	rec := tr.Recorder()
	// Warm the slow set past its floor.
	for i := 0; i < 3; i++ {
		tb, root := tr.StartTrace(NewTraceID(), "warm", time.Now(), 0)
		tr.FinishRequest(tb, root, "warm", 200, time.Second)
	}
	tb, _ := tr.StartTrace(NewTraceID(), "fast", time.Now(), 0)
	if n := testing.AllocsPerRun(100, func() {
		rec.Offer(tb, "fast", 200, time.Microsecond, false)
	}); n != 0 {
		t.Errorf("keep-nothing Offer allocates %v times", n)
	}
}

func TestSLOTracker(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{
		AvailabilityTarget: 0.999,
		LatencyTarget:      0.99,
		LatencyThreshold:   100 * time.Millisecond,
	})
	now := time.Unix(1_000_000, 0)
	slo.now = func() time.Time { return now }

	for i := 0; i < 100; i++ {
		slo.Observe(200, time.Millisecond)
	}
	st := slo.Status()
	if st.Status != "ok" {
		t.Fatalf("clean traffic status %q", st.Status)
	}
	for _, w := range st.Windows {
		if w.Requests != 100 || w.AvailabilityBurn != 0 || w.LatencyBurn != 0 {
			t.Errorf("window %s = %+v", w.Window, w)
		}
	}

	// 10% errors: burn = 0.10 / 0.001 = 100x across every window → page.
	for i := 0; i < 12; i++ {
		slo.Observe(500, time.Millisecond)
	}
	st = slo.Status()
	if st.Status != "page" {
		t.Errorf("status %q after 10%% errors, want page", st.Status)
	}
	if b := st.Windows[0].AvailabilityBurn; b < 50 || b > 200 {
		t.Errorf("availability burn = %v", b)
	}

	// Slow requests trip the latency objective independently.
	slo2 := NewSLOTracker(SLOConfig{LatencyThreshold: 10 * time.Millisecond})
	slo2.now = func() time.Time { return now }
	for i := 0; i < 50; i++ {
		slo2.Observe(200, time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		slo2.Observe(200, 20*time.Millisecond)
	}
	if st := slo2.Status(); st.Status != "page" || st.Windows[0].LatencyBurn < 10 {
		t.Errorf("latency objective: %+v", st)
	}

	// Counts age out of the 5m window but stay in 6h.
	now = now.Add(10 * time.Minute)
	st = slo2.Status()
	if st.Windows[0].Requests != 0 {
		t.Errorf("5m window still holds %d requests after 10m", st.Windows[0].Requests)
	}
	if st.Windows[3].Requests != 100 {
		t.Errorf("6h window holds %d requests, want 100", st.Windows[3].Requests)
	}
	if st.Status == "page" {
		t.Error("page state should clear once the short window drains")
	}

	// Nil tracker is inert.
	var nilSLO *SLOTracker
	nilSLO.Observe(500, time.Hour)
	if st := nilSLO.Status(); st.Status != "ok" {
		t.Errorf("nil tracker status %q", st.Status)
	}
	if NewSLOTracker(SLOConfig{Disabled: true}) != nil {
		t.Error("disabled SLO config should yield nil")
	}
}

func TestSLORegister(t *testing.T) {
	r := NewRegistry()
	slo := NewSLOTracker(SLOConfig{})
	slo.Observe(200, time.Millisecond)
	slo.Register(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trout_slo_availability_target 0.999",
		"trout_slo_latency_target 0.99",
		"trout_slo_latency_threshold_seconds 0.5",
		`trout_slo_availability_burn_rate{window="5m"}`,
		`trout_slo_latency_burn_rate{window="6h"}`,
		"trout_slo_alert_state 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeRegister(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trout_runtime_goroutines",
		"trout_runtime_heap_bytes",
		"trout_runtime_gc_cycles_total",
		"trout_runtime_sched_latency_p99_seconds",
		"trout_runtime_gomaxprocs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Live process invariants: at least one goroutine, some heap.
	if !regexpMatchGauge(out, "trout_runtime_goroutines") {
		t.Errorf("goroutines gauge not positive:\n%s", grepLine(out, "trout_runtime_goroutines"))
	}
	if !regexpMatchGauge(out, "trout_runtime_heap_bytes") {
		t.Errorf("heap gauge not positive:\n%s", grepLine(out, "trout_runtime_heap_bytes"))
	}
}

func regexpMatchGauge(exposition, name string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") {
			val := strings.TrimPrefix(line, name+" ")
			return val != "0" && !strings.HasPrefix(val, "-")
		}
	}
	return false
}

func grepLine(exposition, name string) string {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	return "(absent)"
}

func TestInstrumentWithTracer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	tr, err := NewTracer(TracerConfig{SampleRate: 1, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	slo := NewSLOTracker(SLOConfig{})
	var parentSeen string
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parentSeen = r.Header.Get(ParentSpanHeader)
		sp := StartSpan(r.Context(), "inner")
		SpansFrom(r.Context()).Observe(StageSnapshot, 0.001)
		sp.End()
		w.Write([]byte("ok"))
	}), HTTPOptions{Tracer: tr, SLO: slo})

	req := httptest.NewRequest("GET", "/predict", nil)
	req.Header.Set(TraceIDHeader, "traced-req-1")
	req.Header.Set(ParentSpanHeader, "00000000000000ff") // remote caller's span
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	tr.Flush()
	lines := readTraceLines(t, path)
	if len(lines) != 1 {
		t.Fatalf("exported %d traces, want 1", len(lines))
	}
	line := lines[0]
	if line.TraceID != "traced-req-1" {
		t.Errorf("trace ID %q", line.TraceID)
	}
	root := line.Spans[0]
	if root.ParentID != "" || root.Name != "GET /predict" {
		t.Errorf("root = %+v", root)
	}
	// Remote parent surfaces as a link on the root, same trace.
	if root.Link == nil || root.Link.SpanID != "00000000000000ff" || root.Link.TraceID != "traced-req-1" {
		t.Errorf("root link = %+v", root.Link)
	}
	if root.Attrs["status"] != "200" || root.Attrs["bytes"] != "2" || root.Attrs["remote"] == "" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	// The downstream hop sees this request's root span as its parent.
	if parentSeen != root.SpanID {
		t.Errorf("forwarded parent %q != root span %q", parentSeen, root.SpanID)
	}
	names := map[string]string{} // name -> parent
	for _, s := range line.Spans {
		names[s.Name] = s.ParentID
	}
	if names["inner"] != root.SpanID || names[StageSnapshot] != root.SpanID {
		t.Errorf("child spans mis-parented: %v", names)
	}
	// SLO saw the request.
	if st := slo.Status(); st.Windows[0].Requests != 1 {
		t.Errorf("slo requests = %+v", st.Windows[0])
	}
	// Flight recorder holds the same trace ID.
	snap := tr.Recorder().Snapshot()
	if len(snap.Slowest) != 1 || snap.Slowest[0].TraceID != "traced-req-1" {
		t.Errorf("recorder = %+v", snap.Slowest)
	}
	tr.Close()
}

func TestTracerRegister(t *testing.T) {
	r := NewRegistry()
	tr, _ := NewTracer(TracerConfig{SampleRate: -1})
	tb, root := tr.StartTrace(NewTraceID(), "x", time.Now(), 0)
	tr.FinishRequest(tb, root, "x", 500, time.Millisecond)
	tr.Register(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"trout_trace_started_total 1",
		`trout_trace_kept_total{reason="error"} 1`,
		"trout_trace_exported_total 0",
		`trout_trace_recorded_total{ring="errored"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
