// Staleness regressions for the generation-keyed snapshot cache: a cached
// (pending, running, history) extraction may be shared across concurrent
// requests at the same instant, but every mutation of the engine — event
// ingest, /state reseed, follower WAL replay or re-snapshot — bumps the
// engine version and must invalidate it. A /predict issued after a
// mutation is acknowledged must never see the pre-mutation queue.
package trout_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/trace"
)

// cacheEventsBody builds a submit+eligible JSONL pair for one synthetic
// pending job (both timestamps strictly before any probe instant).
func cacheEventsBody(id int, at int64) string {
	return fmt.Sprintf(
		`{"type":"submit","time":%d,"job":{"id":%d,"user":3,"partition":"shared","submit":%d,"req_cpus":8,"req_mem_gb":16,"req_nodes":1,"time_limit":7200,"priority":3000}}`+"\n"+
			`{"type":"eligible","time":%d,"job_id":%d}`+"\n",
		at, id, at, at+1, id)
}

// postCacheEvents uploads body to /events and fails the test unless every
// line was applied — an acknowledged 200 is the staleness tests' fence.
func postCacheEvents(t *testing.T, url, body string, wantApplied int) {
	t.Helper()
	resp, err := http.Post(url+"/events", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er struct {
		Applied  int `json:"applied"`
		Rejected int `json:"rejected"`
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("events status %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Applied != wantApplied || er.Rejected != 0 {
		t.Fatalf("events applied=%d rejected=%d, want applied=%d", er.Applied, er.Rejected, wantApplied)
	}
}

// probePendingErr POSTs a hypothetical /predict at the given instant and
// returns (pending_in_snapshot, snapshot_source); goroutine-safe.
func probePendingErr(url string, at int64) (int, string, error) {
	body := fmt.Sprintf(`{"at":%d,"job":{"user":3,"partition":"shared","req_cpus":4,"req_mem_gb":8,"req_nodes":1,"time_limit":3600,"priority":1000}}`, at)
	resp, err := http.Post(url+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, "", fmt.Errorf("predict status %d: %s", resp.StatusCode, b)
	}
	var p struct {
		Pending int    `json:"pending_in_snapshot"`
		Source  string `json:"snapshot_source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return 0, "", err
	}
	return p.Pending, p.Source, nil
}

func probePending(t *testing.T, url string, at int64) (int, string) {
	t.Helper()
	n, src, err := probePendingErr(url, at)
	if err != nil {
		t.Fatal(err)
	}
	return n, src
}

// TestSnapshotCacheInvalidatedByEvents is the core staleness regression:
// two probes at the SAME instant straddling an event upload must disagree —
// the second must include the newly submitted job even though the first
// populated the cache for that exact (version, at) key.
func TestSnapshotCacheInvalidatedByEvents(t *testing.T) {
	srv, e := testService(t)
	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	at := base + 500

	postCacheEvents(t, srv.URL, cacheEventsBody(9200001, base), 2)
	if n, src := probePending(t, srv.URL, at); n != 1 || src != "live" {
		t.Fatalf("after first job: pending=%d source=%q, want 1/live", n, src)
	}
	// Same instant again: served from cache, same answer.
	if n, _ := probePending(t, srv.URL, at); n != 1 {
		t.Fatalf("repeat probe: pending=%d, want 1", n)
	}

	// Second job becomes eligible BEFORE the probe instant. The acked 200
	// is the fence: the next probe at the same `at` must see it.
	postCacheEvents(t, srv.URL, cacheEventsBody(9200002, base+10), 2)
	if n, _ := probePending(t, srv.URL, at); n != 2 {
		t.Fatalf("post-event probe served stale snapshot: pending=%d, want 2", n)
	}

	// The repeat probe above must have been a cache hit — the families are
	// live and the hot path actually goes through the cache.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(mb), `trout_snapshot_cache_requests_total{result="hit"}`) {
		t.Fatalf("/metrics missing snapshot cache hit counter:\n%.2000s", mb)
	}
}

// TestSnapshotCacheInvalidatedByStateReseed: POST /state atomically swaps
// the trace and reseeds the engine; a probe at an instant that was cached
// against the old engine state must see the reseeded queue.
func TestSnapshotCacheInvalidatedByStateReseed(t *testing.T) {
	srv, e := testService(t)
	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	at := base + 500

	postCacheEvents(t, srv.URL, cacheEventsBody(9210001, base), 2)
	if n, src := probePending(t, srv.URL, at); n != 1 || src != "live" {
		t.Fatalf("pre-reseed: pending=%d source=%q, want 1/live", n, src)
	}

	// Reseed with three synthetic pending jobs at the same epoch.
	reseed := &trout.Trace{Jobs: append([]trace.Job(nil), e.Trace.Jobs...)}
	for i := 0; i < 3; i++ {
		reseed.Jobs = append(reseed.Jobs, trace.Job{
			ID: 9210101 + i, User: 5, Partition: "shared", State: "PENDING",
			Submit: base, Eligible: base + 1, ReqCPUs: 4, ReqMemGB: 8,
			ReqNodes: 1, TimeLimit: 3600, Priority: 2000,
		})
	}
	var buf bytes.Buffer
	if err := reseed.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/state", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("state reseed status %d", resp.StatusCode)
	}

	if n, src := probePending(t, srv.URL, at); n != 3 || src != "live" {
		t.Fatalf("post-reseed probe served stale snapshot: pending=%d source=%q, want 3/live", n, src)
	}
}

// TestSnapshotCacheInvalidatedOnFollower: the follower's engine mutates
// via WAL replay (and via generation-bump re-snapshots after a leader
// reseed), not via local /events — its snapshot cache must track both.
func TestSnapshotCacheInvalidatedOnFollower(t *testing.T) {
	lsrv, lsvc, e := leaderService(t, trout.ServiceConfig{})
	fsrv, fsvc := followerService(t, lsrv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	fsvc.StartReplication(ctx)

	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	at := base + 500

	postCacheEvents(t, lsrv.URL, cacheEventsBody(9220001, base), 2)
	waitReplicated(t, lsvc, fsvc)
	if n, src := probePending(t, fsrv.URL, at); n != 1 || src != "live" {
		t.Fatalf("follower after replay: pending=%d source=%q, want 1/live", n, src)
	}

	// More WAL entries replay into the follower engine; the follower's
	// cached snapshot for (ver, at) must die with the version bump.
	postCacheEvents(t, lsrv.URL, cacheEventsBody(9220002, base+10), 2)
	waitReplicated(t, lsvc, fsvc)
	if n, _ := probePending(t, fsrv.URL, at); n != 2 {
		t.Fatalf("follower served stale snapshot after replay: pending=%d, want 2", n)
	}

	// Leader reseed bumps the replication generation; the follower
	// re-snapshots wholesale and must again drop every cached extraction.
	reseed := &trout.Trace{Jobs: append([]trace.Job(nil), e.Trace.Jobs...)}
	for i := 0; i < 3; i++ {
		reseed.Jobs = append(reseed.Jobs, trace.Job{
			ID: 9220101 + i, User: 5, Partition: "shared", State: "PENDING",
			Submit: base, Eligible: base + 1, ReqCPUs: 4, ReqMemGB: 8,
			ReqNodes: 1, TimeLimit: 3600, Priority: 2000,
		})
	}
	var buf bytes.Buffer
	if err := reseed.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(lsrv.URL+"/state", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader reseed status %d", resp.StatusCode)
	}
	waitReplicated(t, lsvc, fsvc)
	if n, _ := probePending(t, fsrv.URL, at); n != 3 {
		t.Fatalf("follower served stale snapshot after gen bump: pending=%d, want 3", n)
	}
}

// TestPredictRacingIngestNeverStale: sequentially, a probe after each
// acked event must count exactly the jobs acked so far; concurrently,
// every predictor goroutine must observe a non-decreasing pending count
// while an ingester adds jobs (a cache serving a pre-event snapshot for a
// post-event version would show up as a decrease or a sequential short
// count).
func TestPredictRacingIngestNeverStale(t *testing.T) {
	srv, e := testService(t)
	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	at := base + 2000

	const seq = 10
	for i := 1; i <= seq; i++ {
		postCacheEvents(t, srv.URL, cacheEventsBody(9230000+i, base+int64(2*i)), 2)
		if n, _ := probePending(t, srv.URL, at); n != i {
			t.Fatalf("after %d acked events: pending=%d", i, n)
		}
	}

	const extra = 20
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, _, err := probePendingErr(srv.URL, at)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if n < last {
					select {
					case errs <- fmt.Errorf("pending went backwards: %d after %d", n, last):
					default:
					}
					return
				}
				last = n
			}
		}()
	}
	for i := 1; i <= extra; i++ {
		postCacheEvents(t, srv.URL, cacheEventsBody(9240000+i, base+int64(2*seq+2*i)), 2)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if n, _ := probePending(t, srv.URL, at); n != seq+extra {
		t.Fatalf("final pending=%d, want %d", n, seq+extra)
	}
}
