package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients afterwards.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []Param)
	// SetLR changes the learning rate (for schedules); LR returns it.
	SetLR(lr float64)
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LRValue  float64
	Momentum float64
	velocity map[*tensor.Matrix]*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: non-positive learning rate %v", lr))
	}
	return &SGD{LRValue: lr, Momentum: momentum, velocity: map[*tensor.Matrix]*tensor.Matrix{}}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.LRValue = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.LRValue }

// Step implements Optimizer.
func (s *SGD) Step(params []Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			v := s.velocity[p.Value]
			if v == nil {
				v = tensor.New(p.Value.Rows, p.Value.Cols)
				s.velocity[p.Value] = v
			}
			for i := range v.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LRValue*p.Grad.Data[i]
				p.Value.Data[i] += v.Data[i]
			}
		} else {
			for i := range p.Value.Data {
				p.Value.Data[i] -= s.LRValue * p.Grad.Data[i]
			}
		}
		p.Grad.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2017), the optimizer both of the
// paper's models use.
type Adam struct {
	LRValue, Beta1, Beta2, Eps float64
	// WeightDecay applies decoupled L2 regularization (AdamW): parameters
	// shrink by LR·WeightDecay each step before the gradient update.
	WeightDecay float64
	t           int
	m, v        map[*tensor.Matrix]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the canonical defaults
// β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: non-positive learning rate %v", lr))
	}
	return &Adam{
		LRValue: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*tensor.Matrix]*tensor.Matrix{},
		v: map[*tensor.Matrix]*tensor.Matrix{},
	}
}

// NewAdamW returns Adam with decoupled weight decay.
func NewAdamW(lr, weightDecay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = weightDecay
	return a
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.LRValue = lr }

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.LRValue }

// Step implements Optimizer.
func (a *Adam) Step(params []Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p.Value]
		if m == nil {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p.Value] = m
		}
		v := a.v[p.Value]
		if v == nil {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p.Value] = v
		}
		for i := range p.Value.Data {
			if a.WeightDecay > 0 {
				p.Value.Data[i] -= a.LRValue * a.WeightDecay * p.Value.Data[i]
			}
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.Value.Data[i] -= a.LRValue * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.Grad.Zero()
	}
}
