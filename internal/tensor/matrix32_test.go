package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix32(rows, cols int, rng *rand.Rand) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for c := 0; c < cols; c++ {
			row[c] = float32(rng.NormFloat64())
		}
	}
	return m
}

// TestMatMul32AsmMatchesGo pins the bit-identity contract between the SSE
// kernel and the portable kernel over randomized shapes, including NaN,
// ±Inf, and −0 inputs. On non-amd64 builds both sides take the Go path
// and the test is vacuous by construction.
func TestMatMul32AsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{ // rows, K, outs (outs%4==0 so the asm path engages)
		{1, 33, 64}, {1, 64, 32}, {1, 32, 4}, {3, 5, 8},
		{16, 33, 64}, {7, 128, 64}, {2, 4, 4}, {1, 36, 128},
	}
	for _, sh := range shapes {
		rows, k, outs := sh[0], sh[1], sh[2]
		a := randMatrix32(rows, k, rng)
		b := randMatrix32(outs, k, rng)
		bias := make([]float32, outs)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		// Sprinkle specials into the live lanes.
		a.Data[0] = float32(math.Copysign(0, -1))
		if rows > 1 {
			a.Row(1)[0] = float32(math.Inf(1))
		}
		for _, relu := range []bool{false, true} {
			want := NewMatrix32(rows, outs)
			lim := reluLimit(relu)
			for r := 0; r < rows; r++ {
				matmulTransB32Go(a.Row(r), b.Data, bias, want.Row(r), outs, a.Stride, lim)
			}
			got := NewMatrix32(rows, outs)
			MatMulTransBInto32(got, a, b, bias, relu)
			for i, w := range want.Data {
				g := got.Data[i]
				if math.Float32bits(g) != math.Float32bits(w) {
					t.Fatalf("shape %v relu=%v: elem %d: asm %x go %x", sh, relu, i, math.Float32bits(g), math.Float32bits(w))
				}
			}
		}
	}
}

// TestMatMul32NaNPropagates pins the serving contract that a poisoned
// feature reaches the output as NaN instead of being clamped away by the
// fused ReLU — the f32 twin of the f64 MatMulInto NaN-masking guarantee.
func TestMatMul32NaNPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix32(2, 33, rng)
	b := randMatrix32(8, 33, rng)
	bias := make([]float32, 8)
	a.Row(1)[5] = float32(math.NaN())
	for _, relu := range []bool{false, true} {
		dst := NewMatrix32(2, 8)
		MatMulTransBInto32(dst, a, b, bias, relu)
		for c := 0; c < 8; c++ {
			if v := dst.Row(0)[c]; math.IsNaN(float64(v)) {
				t.Fatalf("relu=%v: clean row produced NaN at %d", relu, c)
			}
			if v := dst.Row(1)[c]; !math.IsNaN(float64(v)) {
				t.Fatalf("relu=%v: poisoned row output %d = %v, want NaN", relu, c, v)
			}
		}
		dst64 := NewMatrix32(2, 8)
		MatMulTransBInto32F64Acc(dst64, a, b, bias, relu)
		if !math.IsNaN(float64(dst64.Row(1)[0])) {
			t.Fatalf("relu=%v: f64-acc head did not propagate NaN", relu)
		}
	}
}

// TestMatMul32ZeroPaddingExact checks that padding lanes contribute
// nothing: widening K from 33 to its padded stride with zero weights and
// zero activations must leave every output bit unchanged.
func TestMatMul32ZeroPaddingExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix32(4, 33, rng) // stride 36, lanes 33..35 zero
	b := randMatrix32(8, 33, rng)
	bias := make([]float32, 8)
	dst := NewMatrix32(4, 8)
	MatMulTransBInto32(dst, a, b, bias, true)

	// Same values declared as a full-width 36-column problem.
	a2 := NewMatrix32(4, 36)
	copy(a2.Data, a.Data)
	b2 := NewMatrix32(8, 36)
	copy(b2.Data, b.Data)
	dst2 := NewMatrix32(4, 8)
	MatMulTransBInto32(dst2, a2, b2, bias, true)
	for i := range dst.Data {
		if math.Float32bits(dst.Data[i]) != math.Float32bits(dst2.Data[i]) {
			t.Fatalf("elem %d: padded %v full %v", i, dst.Data[i], dst2.Data[i])
		}
	}
}

// TestMatMul32F64AccClose sanity-checks the head variant against a naive
// f64 reference: with f64 accumulation the only rounding left is the final
// float32 store and the bias add.
func TestMatMul32F64AccClose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix32(3, 128, rng)
	b := randMatrix32(4, 128, rng)
	bias := []float32{0.1, -0.2, 0.3, -0.4}
	dst := NewMatrix32(3, 4)
	MatMulTransBInto32F64Acc(dst, a, b, bias, false)
	for r := 0; r < 3; r++ {
		for o := 0; o < 4; o++ {
			var ref float64
			for k := 0; k < 128; k++ {
				ref += float64(a.Row(r)[k]) * float64(b.Row(o)[k])
			}
			ref += float64(bias[o])
			if got := float64(dst.Row(r)[o]); math.Abs(got-ref) > 1e-5*(1+math.Abs(ref)) {
				t.Fatalf("r=%d o=%d: got %v want %v", r, o, got, ref)
			}
		}
	}
}

func BenchmarkMatMul32Batch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix32(64, 33, rng)
	w := randMatrix32(64, 33, rng)
	bias := make([]float32, 64)
	dst := NewMatrix32(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto32(dst, a, w, bias, true)
	}
}

func BenchmarkMatMul32Single(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix32(1, 33, rng)
	w := randMatrix32(64, 33, rng)
	bias := make([]float32, 64)
	dst := NewMatrix32(1, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto32(dst, a, w, bias, true)
	}
}
