package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// LayerSpec declares one layer of a network architecture. Specs are the
// serializable description from which layers are instantiated, so a saved
// model can be rebuilt without reflection.
type LayerSpec struct {
	Kind       string         // "dense", "activation", "dropout", "batchnorm"
	In, Out    int            // dense only
	Activation ActivationKind // activation only
	Rate       float64        // dropout only
	Dim        int            // batchnorm only
}

// DenseSpec declares a fully connected layer.
func DenseSpec(in, out int) LayerSpec { return LayerSpec{Kind: "dense", In: in, Out: out} }

// ActivationSpec declares a nonlinearity.
func ActivationSpec(k ActivationKind) LayerSpec {
	return LayerSpec{Kind: "activation", Activation: k}
}

// DropoutSpec declares a dropout layer.
func DropoutSpec(rate float64) LayerSpec { return LayerSpec{Kind: "dropout", Rate: rate} }

// BatchNormSpec declares a batch-normalization layer.
func BatchNormSpec(dim int) LayerSpec { return LayerSpec{Kind: "batchnorm", Dim: dim} }

// Network is a sequential stack of layers.
type Network struct {
	Specs  []LayerSpec
	Layers []Layer

	// wsPool recycles inference workspaces so concurrent Predict calls are
	// race-safe (each Get is exclusive) and allocation-free after warm-up.
	wsPool sync.Pool

	// f32 holds the compiled float32 inference program when EnableFloat32
	// is active (nil otherwise). Atomic so enabling/disabling is safe
	// against concurrent Predict calls; training stores nil.
	f32 atomic.Pointer[prog32]
}

// NewNetwork instantiates the given architecture with weights drawn from rng.
func NewNetwork(rng *rand.Rand, specs ...LayerSpec) *Network {
	n := &Network{Specs: append([]LayerSpec(nil), specs...)}
	for _, s := range specs {
		switch s.Kind {
		case "dense":
			n.Layers = append(n.Layers, NewDense(s.In, s.Out, rng))
		case "activation":
			n.Layers = append(n.Layers, NewActivation(s.Activation))
		case "dropout":
			n.Layers = append(n.Layers, NewDropout(s.Rate, rng))
		case "batchnorm":
			n.Layers = append(n.Layers, NewBatchNorm(s.Dim))
		default:
			panic(fmt.Sprintf("nn: unknown layer kind %q", s.Kind))
		}
	}
	return n
}

// MLPSpecs is a convenience builder for the paper-style feed-forward nets: a
// stack of dense+activation(+dropout) hidden layers and a dense output with
// outAct (Identity for regression, Sigmoid for binary classification).
func MLPSpecs(in int, hidden []int, out int, act, outAct ActivationKind, dropout float64) []LayerSpec {
	var specs []LayerSpec
	prev := in
	for _, h := range hidden {
		specs = append(specs, DenseSpec(prev, h), ActivationSpec(act))
		if dropout > 0 {
			specs = append(specs, DropoutSpec(dropout))
		}
		prev = h
	}
	specs = append(specs, DenseSpec(prev, out))
	if outAct != Identity {
		specs = append(specs, ActivationSpec(outAct))
	}
	return specs
}

// Forward runs the full stack. Always float64: with train=false this is
// the allocating reference inference path, regardless of EnableFloat32.
func (n *Network) Forward(in *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		n.f32.Store(nil) // weights are about to change; drop the f32 snapshot
	}
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad through the stack, accumulating parameter grads.
func (n *Network) Backward(grad *tensor.Matrix) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns every parameter/gradient pair in deterministic order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Predict runs inference (no dropout, running batch-norm stats) through a
// pooled workspace: intermediate activations reuse warm buffers and only the
// returned output matrix is freshly allocated (a constant two allocations
// per call, regardless of batch size).
func (n *Network) Predict(in *tensor.Matrix) *tensor.Matrix {
	ws := n.AcquireWorkspace()
	out := n.PredictInto(ws, in).Clone()
	n.ReleaseWorkspace(ws)
	return out
}

// Predict1 runs inference on a single feature vector and returns the first
// output unit — the common case for both of TROUT's heads. Steady-state it
// performs zero heap allocations: the input header and every activation
// buffer come from the network's workspace pool.
func (n *Network) Predict1(features []float64) float64 {
	ws := n.AcquireWorkspace()
	ws.in.Rows, ws.in.Cols, ws.in.Data = 1, len(features), features
	out := n.PredictInto(ws, &ws.in)
	v := out.Data[0]
	ws.in.Data = nil // do not retain the caller's slice in the pool
	n.ReleaseWorkspace(ws)
	return v
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value.Data)
	}
	return total
}

// CloneFor returns a structurally identical network with freshly initialized
// layers (weights drawn from rng); used for data-parallel training replicas
// before weights are synchronized from the master.
func (n *Network) CloneFor(rng *rand.Rand) *Network {
	return NewNetwork(rng, n.Specs...)
}

// CopyWeightsFrom copies src's parameter values (and batch-norm running
// stats) into n. Panics if architectures differ.
func (n *Network) CopyWeightsFrom(src *Network) {
	dst, sp := n.Params(), src.Params()
	if len(dst) != len(sp) {
		panic("nn: CopyWeightsFrom architecture mismatch")
	}
	for i := range dst {
		if len(dst[i].Value.Data) != len(sp[i].Value.Data) {
			panic("nn: CopyWeightsFrom parameter shape mismatch")
		}
		copy(dst[i].Value.Data, sp[i].Value.Data)
	}
	for i, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			sbn := src.Layers[i].(*BatchNorm)
			copy(bn.RunMean, sbn.RunMean)
			copy(bn.RunVar, sbn.RunVar)
		}
	}
}

// netDTO is the gob wire form of a network.
type netDTO struct {
	Specs   []LayerSpec
	Weights []*tensor.Matrix
	BNMean  [][]float64
	BNVar   [][]float64
}

// Save writes the network (architecture + weights) to w with gob.
func (n *Network) Save(w io.Writer) error {
	dto := netDTO{Specs: n.Specs}
	for _, p := range n.Params() {
		dto.Weights = append(dto.Weights, p.Value)
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			dto.BNMean = append(dto.BNMean, bn.RunMean)
			dto.BNVar = append(dto.BNVar, bn.RunVar)
		}
	}
	return gob.NewEncoder(w).Encode(dto)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var dto netDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	n := NewNetwork(rand.New(rand.NewSource(0)), dto.Specs...)
	ps := n.Params()
	if len(ps) != len(dto.Weights) {
		return nil, fmt.Errorf("nn: load: %d weight blobs for %d params", len(dto.Weights), len(ps))
	}
	for i, p := range ps {
		if len(p.Value.Data) != len(dto.Weights[i].Data) {
			return nil, fmt.Errorf("nn: load: param %d size mismatch", i)
		}
		copy(p.Value.Data, dto.Weights[i].Data)
	}
	bi := 0
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			if bi >= len(dto.BNMean) {
				return nil, fmt.Errorf("nn: load: missing batch-norm stats")
			}
			copy(bn.RunMean, dto.BNMean[bi])
			copy(bn.RunVar, dto.BNVar[bi])
			bi++
		}
	}
	return n, nil
}

// Bytes serializes the network to a byte slice (for embedding in bundles).
func (n *Network) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromBytes deserializes a network written by Bytes.
func FromBytes(b []byte) (*Network, error) { return Load(bytes.NewReader(b)) }
