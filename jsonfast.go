package trout

import (
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/trace"
)

// This file is the zero-allocation JSON fast path for the /predict and
// /predict/batch hot loop. The contract, pinned by differential tests:
//
//   - Encoders produce output byte-identical to encoding/json's Encoder
//     (HTML escaping on, '\n' terminator) for the fixed response shapes,
//     or report ok=false (non-finite floats) so the caller falls back to
//     the stdlib path and its error handling.
//   - The request parser accepts a conservative subset of JSON — exact
//     field names, escape-free ASCII strings, plain integer/float
//     literals — and reports ok=false on anything else so the caller
//     re-parses with encoding/json. Parse results on the accepted subset
//     are identical to the stdlib's (last key wins, trailing data after
//     the first value is ignored, matching json.Decoder semantics).
//
// Buffers are pooled; the appenders allocate only when a buffer grows
// past its pooled capacity.

// respBuf is a pooled response/request scratch buffer.
type respBuf struct{ b []byte }

var respBufPool = sync.Pool{
	New: func() any { return &respBuf{b: make([]byte, 0, 4096)} },
}

func getRespBuf() *respBuf { return respBufPool.Get().(*respBuf) }
func putRespBuf(rb *respBuf) {
	if cap(rb.b) > 1<<20 {
		return // don't pin pathological buffers in the pool
	}
	respBufPool.Put(rb)
}

// readBody drains r into rb's pooled storage and returns the body bytes
// (valid until the buffer is returned to the pool).
func readBody(rb *respBuf, r io.Reader) ([]byte, error) {
	b := rb.b[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err != nil {
			rb.b = b
			if err == io.EOF {
				return b, nil
			}
			return b, err
		}
	}
}

// jsonSafe marks ASCII bytes encoding/json emits verbatim inside strings
// (with HTML escaping on): printable, not '"', '\\', '<', '>', '&'.
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		jsonSafe[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[c] = false
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, byte-identical to
// encoding/json's default (HTML-escaping) string encoder.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control chars and <, >, & as \u00xx.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			// Invalid byte: the stdlib emits the six-char escape, not a
			// literal replacement character.
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f the way encoding/json's floatEncoder does:
// 'f' format unless the magnitude forces scientific notation, with the
// exponent's leading zero stripped. ok=false for non-finite values (the
// stdlib errors on those; callers fall back to it for the error path).
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, mirroring the stdlib.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

func appendJSONBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// encodePredictResponse appends v exactly as json.NewEncoder(w).Encode(v)
// would write it (field order, omitempty, trailing newline). ok=false
// means a non-finite float; the caller must fall back to the stdlib path.
func encodePredictResponse(b []byte, v *predictResponse) ([]byte, bool) {
	var ok bool
	b = append(b, `{"long":`...)
	b = appendJSONBool(b, v.Long)
	b = append(b, `,"prob":`...)
	if b, ok = appendJSONFloat(b, v.Prob); !ok {
		return b, false
	}
	if v.Minutes != 0 {
		b = append(b, `,"minutes":`...)
		if b, ok = appendJSONFloat(b, v.Minutes); !ok {
			return b, false
		}
	}
	b = append(b, `,"message":`...)
	b = appendJSONString(b, v.Message)
	b = append(b, `,"tier":`...)
	b = appendJSONString(b, v.Tier)
	b = append(b, `,"snapshot_source":`...)
	b = appendJSONString(b, v.Source)
	b = append(b, `,"pending_in_snapshot":`...)
	b = strconv.AppendInt(b, int64(v.Pending), 10)
	b = append(b, `,"running_in_snapshot":`...)
	b = strconv.AppendInt(b, int64(v.Running), 10)
	b = append(b, `,"model_version":`...)
	b = strconv.AppendInt(b, int64(v.ModelVersion), 10)
	if v.ModelID != "" {
		b = append(b, `,"model_id":`...)
		b = appendJSONString(b, v.ModelID)
	}
	return append(b, '}', '\n'), true
}

// encodePredictBatchResponse is encodePredictResponse's batch sibling.
func encodePredictBatchResponse(b []byte, v *predictBatchResponse) ([]byte, bool) {
	var ok bool
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, v.At, 10)
	b = append(b, `,"snapshot_source":`...)
	b = appendJSONString(b, v.Source)
	b = append(b, `,"pending_in_snapshot":`...)
	b = strconv.AppendInt(b, int64(v.Pending), 10)
	b = append(b, `,"running_in_snapshot":`...)
	b = strconv.AppendInt(b, int64(v.Running), 10)
	b = append(b, `,"results":`...)
	if v.Results == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range v.Results {
			if i > 0 {
				b = append(b, ',')
			}
			it := &v.Results[i]
			b = append(b, `{"long":`...)
			b = appendJSONBool(b, it.Long)
			b = append(b, `,"prob":`...)
			if b, ok = appendJSONFloat(b, it.Prob); !ok {
				return b, false
			}
			if it.Minutes != 0 {
				b = append(b, `,"minutes":`...)
				if b, ok = appendJSONFloat(b, it.Minutes); !ok {
					return b, false
				}
			}
			if it.Message != "" {
				b = append(b, `,"message":`...)
				b = appendJSONString(b, it.Message)
			}
			if it.Tier != "" {
				b = append(b, `,"tier":`...)
				b = appendJSONString(b, it.Tier)
			}
			if it.Error != "" {
				b = append(b, `,"error":`...)
				b = appendJSONString(b, it.Error)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"model_version":`...)
	b = strconv.AppendInt(b, int64(v.ModelVersion), 10)
	if v.ModelID != "" {
		b = append(b, `,"model_id":`...)
		b = appendJSONString(b, v.ModelID)
	}
	return append(b, '}', '\n'), true
}

// jparser is a conservative single-pass JSON reader. Any construct outside
// its subset — escapes, non-ASCII strings, unknown or differently-cased
// keys, floats in integer fields, null, overflow — makes it bail so the
// caller can re-parse with encoding/json and inherit exact stdlib
// semantics (including error text).
type jparser struct {
	b []byte
	i int
}

func (p *jparser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) eat(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str reads an escape-free ASCII JSON string body. It returns a view into
// the input: keys are compared via `switch string(bs)` (no allocation) and
// only values that outlive the parse are copied with string().
func (p *jparser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			return nil, false // escapes / control / non-ASCII: stdlib's business
		}
		p.i++
	}
	return nil, false
}

// num reads a numeric token; isInt reports whether it is a plain integer
// literal (no fraction or exponent).
func (p *jparser) num() (tok []byte, isInt, ok bool) {
	p.ws()
	start := p.i
	if p.i < len(p.b) && p.b[p.i] == '-' {
		p.i++
	}
	digits := 0
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		p.i++
		digits++
	}
	if digits == 0 {
		return nil, false, false
	}
	isInt = true
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' ||
			(c >= '0' && c <= '9') {
			isInt = false
			p.i++
			continue
		}
		break
	}
	return p.b[start:p.i], isInt, true
}

func (p *jparser) int64() (int64, bool) {
	tok, isInt, ok := p.num()
	if !ok || !isInt {
		return 0, false
	}
	// Digit-loop parse over the token; no string conversion, no alloc.
	neg := false
	i := 0
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var v int64
	for ; i < len(tok); i++ {
		d := int64(tok[i] - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, false // overflow: let the stdlib produce its error
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, true
}

func (p *jparser) float64() (float64, bool) {
	tok, _, ok := p.num()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

func (p *jparser) bool() (bool, bool) {
	p.ws()
	if len(p.b)-p.i >= 4 && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, true
	}
	if len(p.b)-p.i >= 5 && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, true
	}
	return false, false
}

// job parses a trace.Job object with exact-case keys. Unknown keys,
// null, or any surprise bails.
func (p *jparser) job(j *trace.Job) bool {
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.eat(':') {
			return false
		}
		switch string(key) {
		case "id":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.ID = int(v)
		case "user":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.User = int(v)
		case "partition":
			s, ok := p.str()
			if !ok {
				return false
			}
			j.Partition = string(s)
		case "state":
			s, ok := p.str()
			if !ok {
				return false
			}
			j.State = trace.JobState(s)
		case "submit":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.Submit = v
		case "eligible":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.Eligible = v
		case "start":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.Start = v
		case "end":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.End = v
		case "req_cpus":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.ReqCPUs = int(v)
		case "req_mem_gb":
			f, ok := p.float64()
			if !ok {
				return false
			}
			j.ReqMemGB = f
		case "req_nodes":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.ReqNodes = int(v)
		case "req_gpus":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.ReqGPUs = int(v)
		case "time_limit":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.TimeLimit = v
		case "priority":
			v, ok := p.int64()
			if !ok {
				return false
			}
			j.Priority = v
		case "qos":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.QOS = int(v)
		case "interactive":
			v, ok := p.bool()
			if !ok {
				return false
			}
			j.Interactive = v
		case "depends_on":
			v, ok := p.int64()
			if !ok || v > math.MaxInt32 || v < math.MinInt32 {
				return false
			}
			j.DependsOn = int(v)
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		return p.eat('}')
	}
}

// decodePredictRequest parses a POST /predict body. ok=false means the
// body is outside the fast subset (NOT that it is invalid) — re-parse
// with encoding/json. Trailing data after the object is ignored, matching
// json.Decoder.Decode.
func decodePredictRequest(body []byte, req *predictRequest) bool {
	p := jparser{b: body}
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.eat(':') {
			return false
		}
		switch string(key) {
		case "at":
			v, ok := p.int64()
			if !ok {
				return false
			}
			req.At = v
		case "job":
			if !p.job(&req.Job) {
				return false
			}
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		return p.eat('}')
	}
}

// decodePredictBatchRequest parses a POST /predict/batch body; same
// contract as decodePredictRequest.
func decodePredictBatchRequest(body []byte, req *predictBatchRequest) bool {
	p := jparser{b: body}
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.eat(':') {
			return false
		}
		switch string(key) {
		case "at":
			v, ok := p.int64()
			if !ok {
				return false
			}
			req.At = v
		case "jobs":
			if !p.eat('[') {
				return false
			}
			p.ws()
			req.Jobs = req.Jobs[:0]
			if !p.eat(']') {
				for {
					var j trace.Job
					if !p.job(&j) {
						return false
					}
					req.Jobs = append(req.Jobs, j)
					p.ws()
					if p.eat(',') {
						continue
					}
					if !p.eat(']') {
						return false
					}
					break
				}
			}
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		return p.eat('}')
	}
}
