// Command trout-train builds the Table II features from an accounting trace
// (or generates a synthetic one), trains the hierarchical TROUT model, and
// writes a deployment bundle for the trout CLI. It prints the holdout
// evaluation (classifier accuracy and regression MAPE/Pearson) on the most
// recent 20 % of jobs.
//
// Usage:
//
//	trout-train -trace trace.csv -o trout.bundle
//	trout-train -jobs 60000 -seed 1 -o trout.bundle   # synthesize first
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	trout "repro"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trout-train: ")
	var (
		tracePath = flag.String("trace", "", "input trace (csv or jsonl); empty = synthesize")
		jobs      = flag.Int("jobs", 60000, "jobs to synthesize when -trace is empty")
		seed      = flag.Int64("seed", 1, "random seed")
		scale     = flag.Int("scale", 1, "cluster scale factor")
		out       = flag.String("o", "trout.bundle", "output bundle path")
		cutoff    = flag.Float64("cutoff", 10, "quick-start cutoff in minutes")
		epochs    = flag.Int("epochs", 0, "override training epochs for both heads (0 = defaults)")
		tune      = flag.Int("tune", 0, "run N hyperparameter-search trials before training (0 = off)")
	)
	flag.Parse()

	p := trout.DefaultPipeline(*jobs, *seed)
	p.Scale = *scale
	p.Model.CutoffMinutes = *cutoff
	p.Model.Seed = *seed
	if *epochs > 0 {
		p.Model.Classifier.Epochs = *epochs
		p.Model.Regressor.Epochs = *epochs
	}

	var (
		tr      *trout.Trace
		cluster *trout.ClusterSpec
		err     error
	)
	if *tracePath == "" {
		fmt.Printf("synthesizing %d jobs (seed %d)...\n", *jobs, *seed)
		tr, cluster, err = p.GenerateTrace()
	} else {
		tr, err = readTrace(*tracePath)
		// Traces are replayed against the same cluster shape they were
		// generated on.
		c := trout.AnvilLikeCluster(*scale)
		cluster = &c
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("engineering features for %d jobs...\n", len(tr.Jobs))
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}

	if *tune > 0 {
		fmt.Printf("tuning regressor hyperparameters (%d trials, successive halving)...\n", *tune)
		res, err := trout.TuneRegressor(ds, p.Model, trout.TuneConfig{
			Trials: *tune, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  best search MAPE %.2f%% — %s\n", res.BestMAPE, trout.DescribeConfig(res.Best))
		p.Model = res.Best
	}

	fmt.Println("training hierarchical model...")
	m, fold, err := trout.TrainHoldout(ds, p.Model, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	cls := core.EvaluateClassifier(m, ds, fold.Test)
	reg := core.EvaluateRegression(m, ds, fold.Test)
	fmt.Printf("holdout classifier: accuracy %.2f%%  balanced %.2f%%  (n=%d)\n",
		100*cls.Accuracy(), 100*cls.BalancedAccuracy(), cls.N)
	fmt.Printf("holdout regression: MAPE %.2f%%  Pearson r %.4f  within-100%% %.2f%%  (n=%d long jobs)\n",
		reg.MAPE, reg.Pearson, 100*reg.Within100, reg.N)

	b, err := trout.NewBundle(m, ds, cluster)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote bundle to %s\n", *out)
}

func readTrace(path string) (*trout.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		return trace.ReadJSONL(f)
	case strings.HasSuffix(path, ".sacct"), strings.HasSuffix(path, ".txt"):
		// Real Slurm accounting dumps: sacct --parsable2 output.
		return trace.ReadSacct(f)
	default:
		return trace.ReadCSV(f)
	}
}
