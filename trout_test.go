package trout_test

import (
	"math"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/nn"
)

// testPipeline keeps test runtime modest: a 7000-job trace and shrunken
// training schedules.
func testPipeline() trout.PipelineConfig {
	p := trout.DefaultPipeline(7000, 21)
	p.Model.Classifier.Epochs = 6
	p.Model.Classifier.Hidden = []int{32, 16}
	p.Model.Regressor.Epochs = 10
	p.Model.Regressor.Hidden = []int{64, 32, 16}
	p.Model.Seed = 21
	p.Features.RuntimeTrees = 20
	return p
}

var (
	expOnce sync.Once
	expMemo *trout.Experiment
	expErr  error
)

func sharedExperiment(t *testing.T) *trout.Experiment {
	t.Helper()
	expOnce.Do(func() {
		expMemo, expErr = trout.NewExperiment(testPipeline())
	})
	if expErr != nil {
		t.Fatal(expErr)
	}
	return expMemo
}

func TestGenerateTraceShape(t *testing.T) {
	e := sharedExperiment(t)
	if len(e.Trace.Jobs) != 7000 {
		t.Fatalf("trace has %d jobs", len(e.Trace.Jobs))
	}
	if err := e.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Data.Len() != 7000 {
		t.Fatalf("dataset has %d rows", e.Data.Len())
	}
	if len(e.Data.X[0]) != len(trout.FeatureNames) {
		t.Fatalf("row width %d != %d features", len(e.Data.X[0]), len(trout.FeatureNames))
	}
}

func TestTableOneShape(t *testing.T) {
	e := sharedExperiment(t)
	one := e.RunTableOne()
	// The skew targets the paper documents, with generous bands.
	if one.ShortFraction < 0.7 || one.ShortFraction > 0.97 {
		t.Fatalf("short fraction %.3f outside [0.7, 0.97]", one.ShortFraction)
	}
	if one.SharedFraction < 0.4 {
		t.Fatalf("shared fraction %.3f", one.SharedFraction)
	}
	if one.MeanWalltimeUsage > 0.4 {
		t.Fatalf("mean wall-time usage %.3f — overestimation too weak", one.MeanWalltimeUsage)
	}
	if one.Stats.RequestedHours.Mean <= one.Stats.RuntimeHours.Mean {
		t.Fatal("requested hours must exceed runtime hours on average")
	}
}

func TestTableTwoSummaries(t *testing.T) {
	e := sharedExperiment(t)
	rows := e.RunTableTwo()
	if len(rows) != len(trout.FeatureNames) {
		t.Fatalf("%d feature summaries", len(rows))
	}
	for _, r := range rows {
		if r.Count != e.Data.Len() {
			t.Fatalf("feature %s count %d", r.Name, r.Count)
		}
		if math.IsNaN(r.Mean) {
			t.Fatalf("feature %s mean NaN", r.Name)
		}
	}
}

func TestFigTwoHistogram(t *testing.T) {
	e := sharedExperiment(t)
	bins := e.RunFigTwo(20)
	if len(bins) != 20 {
		t.Fatalf("%d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != e.Data.Len() {
		t.Fatalf("histogram covers %d of %d", total, e.Data.Len())
	}
	// Exponential skew: the first half of (log) bins must dominate.
	firstHalf := 0
	for _, b := range bins[:10] {
		firstHalf += b.Count
	}
	if float64(firstHalf)/float64(total) < 0.5 {
		t.Fatal("queue-time density lost its left-heavy skew")
	}
}

func TestFigThreeSplits(t *testing.T) {
	e := sharedExperiment(t)
	splits, err := e.RunFigThree()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("%d folds", len(splits))
	}
	for i, s := range splits {
		if s.TrainStart != 0 || s.TestStart != s.TrainEnd {
			t.Fatalf("fold %d layout %+v", i+1, s)
		}
	}
	if splits[4].TestEnd != e.Data.Len() {
		t.Fatal("last fold must reach the end")
	}
}

func TestTrainHoldoutAndPredict(t *testing.T) {
	e := sharedExperiment(t)
	m, fold, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict(e.Data.X[fold.Test[0]])
	if p.Prob < 0 || p.Prob > 1 {
		t.Fatalf("prob %v", p.Prob)
	}
	msg := p.Message(10)
	if msg == "" {
		t.Fatal("empty message")
	}
}

func TestCrossValidate(t *testing.T) {
	e := sharedExperiment(t)
	fms, err := trout.CrossValidate(e.Data, e.Pipeline.Model, 3, 1.0/6.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fms) != 3 {
		t.Fatalf("%d folds", len(fms))
	}
	for _, fm := range fms {
		if fm.N == 0 {
			t.Fatalf("fold %d evaluated no long jobs", fm.Fold)
		}
		if math.IsNaN(fm.MAPE) || fm.MAPE <= 0 {
			t.Fatalf("fold %d MAPE %v", fm.Fold, fm.MAPE)
		}
	}
}

func TestCompareFoldHasAllModels(t *testing.T) {
	e := sharedExperiment(t)
	scores, err := trout.CompareFold(e.Data, e.Pipeline.Model,
		trout.CompareConfig{GBDTRounds: 30, ForestTrees: 30, KNNK: 10, Seed: 1},
		e.Pipeline.Folds, e.Pipeline.TestFraction, e.Pipeline.Folds)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("%d model scores", len(scores))
	}
	names := map[trout.ModelName]bool{}
	for _, s := range scores {
		names[s.Model] = true
		if s.N == 0 || math.IsNaN(s.MAPE) {
			t.Fatalf("score %+v", s)
		}
		if s.Within100 < 0 || s.Within100 > 1 {
			t.Fatalf("within100 %v", s.Within100)
		}
	}
	for _, want := range []trout.ModelName{trout.ModelNeuralNet, trout.ModelGBDT, trout.ModelRandomForest, trout.ModelKNN} {
		if !names[want] {
			t.Fatalf("missing model %s", want)
		}
	}
}

func TestRunClassifier(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunClassifier()
	if err != nil {
		t.Fatal(err)
	}
	if res.BalancedAccuracy < 0.55 {
		t.Fatalf("balanced accuracy %.3f", res.BalancedAccuracy)
	}
	if res.N == 0 {
		t.Fatal("no test jobs")
	}
}

func TestRunScatter(t *testing.T) {
	e := sharedExperiment(t)
	sc, err := e.RunScatter(e.Pipeline.Folds) // final fold (paper's Fig 5)
	if err != nil {
		t.Fatal(err)
	}
	if sc.N < 10 || len(sc.Pred) != sc.N || len(sc.Actual) != sc.N {
		t.Fatalf("scatter N=%d", sc.N)
	}
	// Quality assertions live in the full-size experiment run
	// (EXPERIMENTS.md); a 7 k-job trace has too few long jobs in the last
	// fold for a stable correlation, so only sanity is checked here.
	if math.IsNaN(sc.Pearson) || math.IsNaN(sc.MAPE) || sc.MAPE <= 0 {
		t.Fatalf("degenerate scatter: r=%v MAPE=%v", sc.Pearson, sc.MAPE)
	}
	if _, err := e.RunScatter(99); err == nil {
		t.Fatal("out-of-range fold accepted")
	}
}

func TestLeakageAblationShowsLeak(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunLeakageAblation()
	if err != nil {
		t.Fatal(err)
	}
	// The paper observed shuffling roughly doubling apparent performance;
	// the direction is verified on the full-size run recorded in
	// EXPERIMENTS.md. At unit-test scale the long-job subsets are small
	// enough that only well-formedness is asserted.
	if math.IsNaN(res.TimeMAPE) || math.IsNaN(res.ShuffledMAPE) || res.TimeMAPE <= 0 || res.ShuffledMAPE <= 0 {
		t.Fatalf("degenerate leakage result %+v", res)
	}
	if res.Ratio != res.TimeMAPE/res.ShuffledMAPE {
		t.Fatal("ratio inconsistent")
	}
}

func TestCutoffAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunCutoffAblation([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.N == 0 || math.IsNaN(r.MAPE) {
			t.Fatalf("cutoff %v: %+v", r.CutoffMinutes, r)
		}
	}
}

func TestSMOTEAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunSMOTEAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.WithSMOTE.N != res.WithoutSMOTE.N {
		t.Fatal("ablation arms saw different test sets")
	}
}

func TestActivationAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunActivationAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d variants", len(res))
	}
	seen := map[string]bool{}
	for _, r := range res {
		seen[r.Name] = true
		if math.IsNaN(r.MAPE) {
			t.Fatalf("variant %s MAPE NaN", r.Name)
		}
	}
	if !seen["ELU"] || !seen["ELU+BatchNorm"] {
		t.Fatal("missing paper variants")
	}
}

func TestScalingAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunScalingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d scalers", len(res))
	}
}

func TestFeatureImportance(t *testing.T) {
	e := sharedExperiment(t)
	imps, err := e.RunFeatureImportance(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != len(trout.FeatureNames) {
		t.Fatalf("%d importances", len(imps))
	}
	// Sorted descending.
	for i := 1; i < len(imps); i++ {
		if imps[i].Score > imps[i-1].Score {
			t.Fatal("importances not sorted")
		}
	}
}

func TestModelConfigVariantsTrain(t *testing.T) {
	// Public config knobs must compose: ReLU + no dropout + MSE loss.
	e := sharedExperiment(t)
	cfg := e.Pipeline.Model
	cfg.Regressor.Activation = nn.ReLU
	cfg.Regressor.Dropout = 0
	cfg.RegressorLoss = nn.MSE
	cfg.Classifier.Epochs = 2
	cfg.Regressor.Epochs = 2
	m, _, err := trout.TrainHoldout(e.Data, cfg, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model")
	}
}
