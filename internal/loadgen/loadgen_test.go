package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunMixedWorkloadScorecard(t *testing.T) {
	var predicts, batches, events atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/predict":
			predicts.Add(1)
		case "/predict/batch":
			batches.Add(1)
		case "/events":
			events.Add(1)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-ID", "deadbeefcafe0123")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	sc, err := Run(context.Background(), Config{
		BaseURL: srv.URL, Requests: 200, Concurrency: 4,
		Validate: StrictValidate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Total != 200 {
		t.Fatalf("total = %d, want 200", sc.Total)
	}
	if sc.Invalid != 0 || sc.NetErrors != 0 || sc.ErrorRate != 0 {
		t.Fatalf("clean run scored dirty: %+v", sc)
	}
	if sc.Status[200] != 200 {
		t.Fatalf("status map: %v", sc.Status)
	}
	// Default 70/20/10 mix: each family must actually be exercised.
	if predicts.Load() == 0 || batches.Load() == 0 || events.Load() == 0 {
		t.Fatalf("mix not exercised: predict=%d batch=%d events=%d",
			predicts.Load(), batches.Load(), events.Load())
	}
	if sc.P50 <= 0 || sc.P99 < sc.P50 || sc.Max < sc.P99 {
		t.Fatalf("quantiles disordered: p50=%s p99=%s max=%s", sc.P50, sc.P99, sc.Max)
	}
	// The slowest-request digest carries the server-stamped trace IDs,
	// sorted slowest-first, so they can be pulled from /debug/requests.
	if len(sc.Slowest) != 5 {
		t.Fatalf("slowest digest has %d entries, want 5", len(sc.Slowest))
	}
	for i, sr := range sc.Slowest {
		if sr.TraceID != "deadbeefcafe0123" {
			t.Fatalf("slowest[%d] trace ID = %q", i, sr.TraceID)
		}
		if i > 0 && sr.Latency > sc.Slowest[i-1].Latency {
			t.Fatalf("slowest digest not sorted: %v", sc.Slowest)
		}
	}
	if sc.Slowest[0].Latency != sc.Max {
		t.Fatalf("slowest[0] = %s, max = %s", sc.Slowest[0].Latency, sc.Max)
	}
	if !strings.Contains(sc.String(), "trace deadbeefcafe0123") {
		t.Fatalf("scorecard text missing trace IDs:\n%s", sc.String())
	}
}

func TestStrictValidateContract(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		body       string
		ok         bool
	}{
		{"valid prediction", 200, "", `{"long":true,"prob":0.9}`, true},
		{"2xx garbage body", 200, "", `<html>oops`, false},
		{"shed with hint", 429, "1", `{"error":"overloaded"}`, true},
		{"shed without hint", 429, "", `{"error":"overloaded"}`, false},
		{"structured error", 503, "", `{"error":"not ready"}`, true},
		{"bare 500", 500, "", `Internal Server Error`, false},
		{"empty error body", 502, "", ``, false},
	}
	for _, c := range cases {
		err := StrictValidate(KindPredict, c.status, c.retryAfter, []byte(c.body))
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRunCountsFailures(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`oops`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	sc, err := Run(context.Background(), Config{
		BaseURL: srv.URL, Requests: 50, Concurrency: 2, Validate: StrictValidate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Invalid == 0 {
		t.Fatalf("bare 500s not flagged invalid: %+v", sc)
	}
	if sc.ErrorRate == 0 {
		t.Fatal("error rate zero despite 500s")
	}
}

func TestRunOpenLoopPacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	start := time.Now()
	sc, err := Run(context.Background(), Config{
		BaseURL: srv.URL, Duration: 300 * time.Millisecond,
		Concurrency: 2, RatePerSec: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50/s for 0.3s ≈ 15 arrivals; a closed loop against a local stub
	// would do thousands. Generous bound: open loop must have paced.
	if sc.Total > 60 {
		t.Fatalf("open loop did not pace: %d requests in %s", sc.Total, time.Since(start))
	}
}
