package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/slurmsim"
)

func genN(t *testing.T, n int, seed int64) []slurmsim.JobSpec {
	t.Helper()
	cluster := slurmsim.AnvilLike(1)
	specs, err := Generate(DefaultConfig(n, seed), &cluster)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestGenerateCountAndIDs(t *testing.T) {
	specs := genN(t, 5000, 1)
	if len(specs) != 5000 {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, sp := range specs {
		if sp.ID != i+1 {
			t.Fatalf("spec %d has ID %d", i, sp.ID)
		}
	}
}

func TestSubmitTimesMonotone(t *testing.T) {
	specs := genN(t, 3000, 2)
	for i := 1; i < len(specs); i++ {
		if specs[i].Submit < specs[i-1].Submit {
			t.Fatalf("submit times not monotone at %d", i)
		}
	}
}

func TestSpecsValidForSimulator(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	specs := genN(t, 2000, 3)
	for _, sp := range specs {
		if sp.ReqCPUs <= 0 || sp.ReqNodes <= 0 || sp.ReqMemGB <= 0 {
			t.Fatalf("bad request %+v", sp)
		}
		if sp.Runtime < 1 || sp.Runtime > sp.TimeLimit {
			t.Fatalf("runtime %d outside (0, limit %d]", sp.Runtime, sp.TimeLimit)
		}
		part := cluster.Partition(sp.Partition)
		if part == nil {
			t.Fatalf("unknown partition %q", sp.Partition)
		}
		if part.MaxTime > 0 && sp.TimeLimit > part.MaxTime {
			t.Fatalf("time limit %d over partition max %d", sp.TimeLimit, part.MaxTime)
		}
	}
}

func TestSharedPartitionDominates(t *testing.T) {
	specs := genN(t, 20000, 4)
	count := map[string]int{}
	for _, sp := range specs {
		count[sp.Partition]++
	}
	frac := float64(count["shared"]) / float64(len(specs))
	// Paper: 68.95 %. User-level partition assignment adds variance;
	// accept a broad band around it.
	if frac < 0.5 || frac > 0.85 {
		t.Fatalf("shared fraction %.3f outside [0.5, 0.85]", frac)
	}
	if len(count) < 5 {
		t.Fatalf("only %d partitions used", len(count))
	}
}

func TestWalltimeOverestimation(t *testing.T) {
	specs := genN(t, 20000, 5)
	var mean float64
	for _, sp := range specs {
		mean += float64(sp.Runtime) / float64(sp.TimeLimit)
	}
	mean /= float64(len(specs))
	// Paper: average job used ~15 % of requested wall time.
	if mean < 0.08 || mean > 0.30 {
		t.Fatalf("mean wall-time usage %.3f not in [0.08, 0.30]", mean)
	}
}

func TestZipfUserSkew(t *testing.T) {
	specs := genN(t, 30000, 6)
	perUser := map[int]int{}
	for _, sp := range specs {
		perUser[sp.User]++
	}
	max := 0
	for _, c := range perUser {
		if c > max {
			max = c
		}
	}
	mean := float64(len(specs)) / float64(len(perUser))
	// The heaviest user should dominate the mean by a large factor
	// (paper: max 516914 vs mean 839).
	if float64(max) < 8*mean {
		t.Fatalf("max user %d vs mean %.1f — insufficient skew", max, mean)
	}
}

func TestBurstsProduceSimilarConsecutiveJobs(t *testing.T) {
	specs := genN(t, 20000, 7)
	// Count adjacent pairs from the same user with identical resource
	// shape — the burst correlation the paper's leakage analysis relies on.
	same := 0
	for i := 1; i < len(specs); i++ {
		a, b := specs[i-1], specs[i]
		if a.User == b.User && a.ReqCPUs == b.ReqCPUs && a.TimeLimit == b.TimeLimit {
			same++
		}
	}
	frac := float64(same) / float64(len(specs))
	if frac < 0.2 {
		t.Fatalf("adjacent same-template fraction %.3f — bursts too weak", frac)
	}
}

func TestRequestedTimeStats(t *testing.T) {
	specs := genN(t, 30000, 8)
	var sum float64
	for _, sp := range specs {
		sum += float64(sp.TimeLimit) / 3600
	}
	mean := sum / float64(len(specs))
	// Paper Table I: mean requested 12.55 h. Partition caps pull it down;
	// accept a band.
	if mean < 5 || mean > 20 {
		t.Fatalf("mean requested hours %.2f not in [5, 20]", mean)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := genN(t, 2000, 99)
	b := genN(t, 2000, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation is not deterministic")
	}
	c := genN(t, 2000, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical workloads")
	}
}

func TestConfigValidation(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	bad := []Config{
		{NumJobs: 0, NumUsers: 1, MeanInterarrival: 1},
		{NumJobs: 1, NumUsers: 0, MeanInterarrival: 1},
		{NumJobs: 1, NumUsers: 1, MeanInterarrival: 0},
	}
	for i, cfg := range bad {
		cfg.PartitionMix = map[string]float64{"shared": 1}
		if _, err := Generate(cfg, &cluster); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	cfg := DefaultConfig(10, 1)
	cfg.PartitionMix = map[string]float64{"nonexistent": 1}
	if _, err := Generate(cfg, &cluster); err == nil {
		t.Error("unknown partition in mix accepted")
	}
	cfg = DefaultConfig(10, 1)
	cfg.PartitionMix = map[string]float64{"shared": 0}
	if _, err := Generate(cfg, &cluster); err == nil {
		t.Error("zero-sum mix accepted")
	}
}

func TestEligibleDelays(t *testing.T) {
	cfg := DefaultConfig(10000, 9)
	cfg.EligibleDelayProb = 0.5
	cluster := slurmsim.AnvilLike(1)
	specs, err := Generate(cfg, &cluster)
	if err != nil {
		t.Fatal(err)
	}
	delayed := 0
	for _, sp := range specs {
		if sp.EligibleDelay > 0 {
			delayed++
		}
	}
	frac := float64(delayed) / float64(len(specs))
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("delayed fraction %.3f, want ≈0.5", frac)
	}
}

func TestChainsGenerateDependencies(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	cfg := DefaultConfig(20000, 13)
	cfg.ChainProb = 0.5
	specs, err := Generate(cfg, &cluster)
	if err != nil {
		t.Fatal(err)
	}
	deps := 0
	for _, sp := range specs {
		if sp.DependsOn != 0 {
			deps++
			if sp.DependsOn >= sp.ID {
				t.Fatalf("job %d depends on later job %d", sp.ID, sp.DependsOn)
			}
		}
	}
	if deps == 0 {
		t.Fatal("no dependencies generated at ChainProb=0.5")
	}
	// Dependency chains must simulate cleanly.
	tr, st, err := slurmsim.Run(slurmsim.DefaultConfig(1), specs[:5000])
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroChainProbMeansNoDeps(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	cfg := DefaultConfig(5000, 14)
	cfg.ChainProb = 0
	specs, err := Generate(cfg, &cluster)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.DependsOn != 0 {
			t.Fatal("dependency generated with ChainProb=0")
		}
	}
}

func TestDiurnalPatternModulatesArrivals(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	cfg := DefaultConfig(30000, 15)
	cfg.DiurnalAmplitude = 0.8
	cfg.TargetUtilization = 0 // keep raw times for phase analysis
	specs, err := Generate(cfg, &cluster)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs submitted in the "day" half-cycle (sin > 0) should outnumber
	// the "night" half by a wide margin at amplitude 0.8.
	day, night := 0, 0
	for _, sp := range specs {
		phase := math.Mod(float64(sp.Submit), 86400) / 86400
		if phase < 0.5 {
			day++
		} else {
			night++
		}
	}
	ratio := float64(day) / float64(night)
	if ratio < 1.5 {
		t.Fatalf("day/night ratio %.2f — diurnal modulation too weak", ratio)
	}
	// Amplitude 0 must stay flat.
	cfg.DiurnalAmplitude = 0
	flat, err := Generate(cfg, &cluster)
	if err != nil {
		t.Fatal(err)
	}
	day, night = 0, 0
	for _, sp := range flat {
		if math.Mod(float64(sp.Submit), 86400)/86400 < 0.5 {
			day++
		} else {
			night++
		}
	}
	if r := float64(day) / float64(night); r > 1.2 || r < 0.8 {
		t.Fatalf("flat arrivals show ratio %.2f", r)
	}
}

func TestDiurnalAmplitudeValidation(t *testing.T) {
	cluster := slurmsim.AnvilLike(1)
	for _, a := range []float64{-0.1, 1.0, 2.0} {
		cfg := DefaultConfig(100, 1)
		cfg.DiurnalAmplitude = a
		if _, err := Generate(cfg, &cluster); err == nil {
			t.Errorf("amplitude %v accepted", a)
		}
	}
}
