package trout

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/livestate"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// ServiceConfig tunes the dashboard service's resilience envelope. The
// zero value picks production-safe defaults.
type ServiceConfig struct {
	// RequestTimeout bounds each request's handling time; past it the
	// client receives a JSON 504 and late handler output is discarded.
	// 0 means 10s; negative disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps POST bodies (oversized requests get a JSON 413).
	// 0 means 8 MiB; negative disables the limit.
	MaxBodyBytes int64
	// MaxBadStateRows is the malformed-record budget for POST /state:
	// up to this many undecodable JSONL rows are skipped and reported
	// rather than failing the upload. 0 means 100; negative is unlimited.
	MaxBadStateRows int
	// MaxBatchJobs caps the jobs accepted in one POST /predict/batch
	// request (larger batches get a JSON 413). 0 means 256; negative
	// disables the cap.
	MaxBatchJobs int
	// Live is the event-sourced cluster-state store backing /events and
	// the fast snapshot path. Nil gets a fresh memory-only store, so the
	// engine always runs; pass a WAL-backed store for durability.
	Live *livestate.Store
	// Logger is the structured logger for access logs, middleware
	// diagnostics, and training telemetry. Nil disables logging.
	Logger *slog.Logger
	// Logf, when set, receives middleware diagnostics (recovered panics).
	// Nil with a Logger set derives a printf adapter from the Logger.
	Logf func(format string, args ...any)
	// LeaderURL switches the service into follower mode: the live store
	// replicates from the leader troutd at this base URL, /predict and
	// friends serve from the replica, and the write endpoints (/events,
	// /state) are forwarded to the leader instead of handled locally.
	// Empty means leader (normal) mode.
	LeaderURL string
	// ProxyWrites makes a follower transparently reverse-proxy write
	// requests to the leader. False (the default) answers writes with a
	// 307 redirect instead, keeping the follower out of the write path.
	ProxyWrites bool
	// Replication tunes the follower pull loop (poll window, retry
	// policy, lag thresholds). Ignored in leader mode; LeaderURL and the
	// live store are filled in by the service.
	Replication replication.FollowerConfig
	// Admission bounds concurrent ingest on POST /events and /state so
	// bursts shed with 429 + Retry-After before touching the engine lock.
	// The zero value enables the gate with its defaults (16 in flight,
	// 64 queued, 1s queue timeout); MaxInFlight < 0 disables it.
	Admission resilience.AdmissionConfig
	// FastInference serves NN predictions from the float32 kernel path
	// (see Bundle.EnableFastInference). Applied to the initial bundle and
	// to every bundle promoted through SwapBundle; a model whose
	// architecture cannot compile onto the f32 path logs a warning and
	// keeps serving on float64.
	FastInference bool
	// Coalesce collects concurrent single /predict requests into
	// micro-batches served through the bundle's batch path (one serving-
	// bundle load, one mini-batched NN pass). Answers are bit-identical
	// to the uncoalesced path; the cost is up to CoalesceWindow of added
	// latency per request. Off by default.
	Coalesce bool
	// CoalesceWindow is how long the first request of a micro-batch waits
	// for company before the batch flushes. 0 means 200µs; the useful
	// range is roughly 100–500µs (well under a scheduling quantum, far
	// above a batched forward pass).
	CoalesceWindow time.Duration
	// CoalesceMax flushes a micro-batch early once it holds this many
	// requests. 0 means 32.
	CoalesceMax int
	// Tracer, when set, is a prebuilt hierarchical tracer shared with
	// other subsystems (the daemon builds one and hands it to the WAL
	// store and the service alike). Nil builds one from Tracing.
	Tracer *obs.Tracer
	// Tracing configures the tracer built when Tracer is nil. The zero
	// value is a live tracer with defaults (1% head sampling, 250ms slow
	// threshold, flight recorder on, no file export); set
	// Tracing.Disabled to opt out entirely.
	Tracing obs.TracerConfig
	// SLO declares the availability/latency objectives behind the
	// trout_slo_* burn-rate gauges and the /health slo block. The zero
	// value tracks 99.9% availability and 99% of requests under 500ms;
	// set SLO.Disabled to opt out.
	SLO obs.SLOConfig
}

func (c *ServiceConfig) defaults() {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBadStateRows == 0 {
		c.MaxBadStateRows = 100
	}
	if c.MaxBatchJobs == 0 {
		c.MaxBatchJobs = 256
	}
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = 200 * time.Microsecond
	}
	if c.CoalesceMax == 0 {
		c.CoalesceMax = 32
	}
}

// Service is the paper's §V "user dashboard tool": an HTTP front-end over a
// trained bundle plus a live queue state. Handlers:
//
//	GET  /health          — liveness + model metadata + fallback-tier counters
//	GET  /ready           — readiness (503 while draining or not yet serving)
//	GET  /predict?job=ID  — Algorithm 1 for a known job in the queue state
//	POST /predict         — Algorithm 1 for a hypothetical job (JSON spec)
//	POST /predict/batch   — Algorithm 1 for many hypothetical jobs at one
//	                        instant (snapshot resolved once, mini-batched NN)
//	POST /state           — bulk-load the queue state (JSONL-decoded trace)
//	POST /events          — apply a JSONL job-event stream to the live engine
//	GET  /features?job=ID — the engineered 33-feature vector (debugging)
//	GET  /metrics         — Prometheus text exposition (counters, latency,
//	                        livestate gauges, WAL lag)
//
// Every request runs behind panic-recovery, per-request deadline, and
// body-limit middleware; predictions go through the bundle's fallback
// chain, so a poisoned model degrades answers instead of availability.
//
// Snapshots come from two sources: the event-sourced livestate engine
// (O(log n + k) indexed extraction, the "live" source) when it can answer,
// falling back to the legacy whole-trace scan ("scan") for historical
// instants or jobs the engine does not track. State updates, event
// ingestion, and predictions are safe for concurrent use.
type Service struct {
	// serving is the bundle answering predictions right now, paired with
	// its registry identity and replaced atomically as one unit by
	// SwapBundle — every response is attributable to exactly one version.
	serving atomic.Pointer[servingBundle]
	// swapMu serializes swaps/rollbacks (readers never take it); prev is
	// the pre-swap serving pair kept as the instant-rollback target.
	swapMu sync.Mutex
	prev   *servingBundle

	// ctl/cpReg are set once by AttachControlPlane; handlers and the
	// start observer feed the controller through the atomic pointers.
	ctl   atomic.Pointer[controlplane.Controller]
	cpReg atomic.Pointer[controlplane.Registry]

	cfg    ServiceConfig
	logger *slog.Logger
	live   *livestate.Store
	ready  atomic.Bool

	// tracer/slo are the hierarchical-tracing and SLO-objective sinks;
	// both are nil-safe throughout, so disabled configurations cost one
	// nil check per call site.
	tracer *obs.Tracer
	slo    *obs.SLOTracker

	// Runtime telemetry: every family lives in one obs.Registry and is
	// rendered by GET /metrics.
	reg          *obs.Registry
	tiers        *obs.CounterVec   // trout_predictions_total{tier}
	sources      *obs.CounterVec   // trout_snapshot_source_total{source}
	batchSize    *obs.Histogram    // trout_predict_batch_size
	httpReqs     *obs.CounterVec   // trout_http_requests_total{path,code}
	httpLatency  *obs.Histogram    // trout_http_request_duration_seconds
	stageLatency *obs.HistogramVec // trout_predict_stage_duration_seconds{stage}
	tracker      *obs.AccuracyTracker
	telemetry    *obs.TrainTelemetry
	swapsTotal   *obs.CounterVec // trout_model_swaps_total{kind}

	// Replication: every service exposes the leader-side endpoints over
	// its own store; follower mode additionally runs a pull loop and
	// forwards writes.
	repLeader *replication.Leader
	follower  *replication.Follower
	admission *resilience.Admission
	admTotal  *obs.CounterVec // trout_admission_total{decision}

	// Serving hot-path machinery: the shared snapshot cache (always on;
	// keyed by the engine's mutation version, so every ingest/reseed/
	// replay invalidates it implicitly) and the optional /predict
	// coalescer (nil unless cfg.Coalesce).
	snapCache   *snapCache
	coal        *coalescer
	cacheOps    *obs.CounterVec // trout_snapshot_cache_requests_total{result}
	coalDepth   *obs.Histogram  // trout_coalesce_batch_size
	coalFlushes *obs.CounterVec // trout_coalesce_flushes_total{reason}

	// state is the legacy whole-trace queue state, read lock-free on the
	// request path (the engine-or-scan decision needs no lock: each
	// request serves from exactly one internally-consistent source, so
	// the only requirement is that the pointer swap is atomic). stateMu
	// serializes writers — POST /state swaps the trace and reseeds the
	// engine as one unit relative to other uploads.
	stateMu sync.Mutex
	state   atomic.Pointer[Trace]
}

// NewService wraps a bundle with an initial queue state (may be empty)
// under the default resilience configuration.
func NewService(b *Bundle, initial *Trace) (*Service, error) {
	return NewServiceWith(b, initial, ServiceConfig{})
}

// NewServiceWith is NewService with an explicit resilience configuration.
// When the live store's engine is empty (fresh store, or a WAL directory
// with nothing to recover), the initial trace seeds it.
func NewServiceWith(b *Bundle, initial *Trace, cfg ServiceConfig) (*Service, error) {
	if b == nil {
		return nil, fmt.Errorf("trout: service needs a bundle")
	}
	if initial == nil {
		initial = &Trace{}
	}
	cfg.defaults()
	if cfg.Live == nil {
		st, err := livestate.OpenStore(livestate.StoreOptions{})
		if err != nil {
			return nil, err
		}
		cfg.Live = st
	}
	if cfg.Logf == nil && cfg.Logger != nil {
		cfg.Logf = obs.Logf(cfg.Logger)
	}
	s := &Service{
		cfg:    cfg,
		logger: cfg.Logger,
		live:   cfg.Live,
	}
	s.tracer = cfg.Tracer
	if s.tracer == nil {
		tr, err := obs.NewTracer(cfg.Tracing)
		if err != nil {
			return nil, fmt.Errorf("trout: tracer setup: %w", err)
		}
		s.tracer = tr
	}
	s.slo = obs.NewSLOTracker(cfg.SLO)
	s.state.Store(initial)
	s.applyFastInference(b)
	s.serving.Store(&servingBundle{b: b})
	s.repLeader = replication.NewLeader(s.live, replication.LeaderOptions{})
	if cfg.LeaderURL != "" {
		fc := cfg.Replication
		fc.LeaderURL = cfg.LeaderURL
		fc.Store = s.live
		if fc.Logger == nil {
			fc.Logger = cfg.Logger
		}
		if fc.Tracer == nil {
			fc.Tracer = s.tracer
		}
		f, err := replication.NewFollower(fc)
		if err != nil {
			return nil, fmt.Errorf("trout: follower setup: %w", err)
		}
		s.follower = f
	}
	s.initTelemetry()
	s.snapCache = newSnapCache(s.live.Engine(), s.cacheOps)
	if cfg.Coalesce {
		s.coal = newCoalescer(s, cfg.CoalesceWindow, cfg.CoalesceMax)
	}
	adm := cfg.Admission
	if adm.OnDecision == nil {
		adm.OnDecision = func(d string) { s.admTotal.Inc(d) }
	}
	s.admission = resilience.NewAdmission(adm)
	// A follower's replica is fed by the leader's stream, never by a local
	// seed — seeding would just diverge it and force a re-snapshot.
	if s.follower == nil && len(initial.Jobs) > 0 && s.live.Engine().Stats().Tracked == 0 {
		if _, err := s.live.Seed(initial); err != nil {
			return nil, fmt.Errorf("trout: seeding live state: %w", err)
		}
	}
	s.ready.Store(true)
	return s, nil
}

// applyFastInference moves b onto the configured inference path. It is
// called on every bundle that becomes the serving bundle (initial and
// swapped-in), so the FastInference setting survives hot-swaps. Failure
// to compile is not fatal: the bundle keeps serving on float64 and the
// mismatch is logged.
func (s *Service) applyFastInference(b *Bundle) {
	if b == nil || !s.cfg.FastInference {
		return
	}
	if !b.EnableFastInference() && s.logger != nil {
		s.logger.Warn("fast inference requested but model did not compile onto the float32 path; serving float64",
			slog.String("fingerprint", b.Fingerprint))
	}
}

// StartReplication launches the follower pull loop; it runs until ctx is
// canceled. No-op in leader mode. The daemon (or test) owns the context.
func (s *Service) StartReplication(ctx context.Context) {
	if s.follower != nil {
		go func() { _ = s.follower.Run(ctx) }()
	}
}

// Follower exposes the replication pull loop (nil in leader mode).
func (s *Service) Follower() *replication.Follower { return s.follower }

// ReplicationLeader exposes the leader-side replication endpoints wrapper.
func (s *Service) ReplicationLeader() *replication.Leader { return s.repLeader }

// initTelemetry builds the service's metric registry: the hot-path
// families the handlers update directly, scrape-time collectors over the
// livestate engine and WAL, the online accuracy tracker (joined against
// engine start events), and the training telemetry families.
func (s *Service) initTelemetry() {
	r := obs.NewRegistry()
	s.reg = r
	s.tiers = r.CounterVec("trout_predictions_total",
		"Predictions answered, by fallback tier.", "tier")
	s.sources = r.CounterVec("trout_snapshot_source_total",
		"Queue snapshots produced, by source (live engine vs trace scan).", "source")
	s.batchSize = r.Histogram("trout_predict_batch_size",
		"Jobs per POST /predict/batch request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	s.httpReqs = r.CounterVec("trout_http_requests_total",
		"HTTP requests completed, by path and status code.", "path", "code")
	s.httpLatency = r.Histogram("trout_http_request_duration_seconds",
		"HTTP request latency.", obs.DefaultLatencyBuckets)
	s.stageLatency = r.HistogramVec("trout_predict_stage_duration_seconds",
		"Prediction pipeline stage latency (snapshot, featurize, scale, classify, regress, fallback, batch_nn).",
		obs.DefaultStageBuckets, "stage")

	// Live-state engine and WAL families are sampled at scrape time — the
	// engine already keeps these counts; mirroring them per event would
	// double the ingest path's bookkeeping.
	eng := s.live.Engine()
	r.CounterVecFunc("trout_livestate_events_total",
		"Events applied to the live-state engine, by type.", []string{"type"},
		func(emit obs.Emit) {
			for ty, n := range eng.Stats().Events {
				emit(float64(n), ty)
			}
		})
	r.CounterFunc("trout_livestate_apply_errors_total",
		"Events rejected by the live-state engine (duplicate, unknown job, stale order).",
		func() float64 { return float64(eng.Stats().ApplyErrors) })
	r.GaugeVecFunc("trout_queue_pending",
		"Pending jobs tracked by the live-state engine, by partition.", []string{"partition"},
		func(emit obs.Emit) {
			for p, pc := range eng.Stats().Partitions {
				emit(float64(pc.Pending), p)
			}
		})
	r.GaugeVecFunc("trout_queue_running",
		"Running jobs tracked by the live-state engine, by partition.", []string{"partition"},
		func(emit obs.Emit) {
			for p, pc := range eng.Stats().Partitions {
				emit(float64(pc.Running), p)
			}
		})
	r.GaugeFunc("trout_livestate_tracked_jobs",
		"Jobs held by the live-state engine (active + retained history).",
		func() float64 { return float64(eng.Stats().Tracked) })
	r.GaugeFunc("trout_livestate_history_entries",
		"Submission-history records inside the 24h rolling window.",
		func() float64 { return float64(eng.Stats().HistoryEntries) })
	r.GaugeFunc("trout_livestate_now_seconds",
		"The engine's event clock (unix seconds of the newest applied event).",
		func() float64 { return float64(eng.Stats().Now) })
	r.GaugeFunc("trout_wal_lag_records",
		"Applied events not yet covered by a checkpoint (LSN - checkpoint LSN).",
		func() float64 { m := s.live.Metrics(); return float64(m.LSN - m.CheckpointLSN) })
	r.GaugeFunc("trout_wal_bytes",
		"Current write-ahead log size in bytes (0 for memory-only stores).",
		func() float64 { return float64(s.live.Metrics().WALBytes) })
	r.CounterFunc("trout_checkpoints_total",
		"Checkpoints taken since the store opened.",
		func() float64 { return float64(s.live.Metrics().Checkpoints) })

	// Online accuracy: served predictions are remembered by job ID and
	// joined against realized queue times when the engine sees the job
	// start — the production counterpart of the paper's offline metrics.
	// Start events also feed the control plane's shadow trackers (no-op
	// until a retrain cycle is shadow-scoring a candidate).
	s.tracker = obs.NewAccuracyTracker(s.serving.Load().b.cutoffMinutes(), 0, 0)
	s.tracker.Register(r)
	eng.SetStartObserver(func(jobID int, eligible, start int64) {
		s.tracker.Resolve(jobID, eligible, start)
		if ctl := s.ctl.Load(); ctl != nil {
			ctl.ObserveStart(jobID, eligible, start)
		}
	})

	// Model identity: which bundle is serving, by registry version and
	// content fingerprint — followers export it too, so a fleet scrape
	// shows exactly which model answers where.
	r.InfoFunc("trout_model_info",
		"Serving model identity (constant 1; labels carry version and SHA-256 fingerprint).",
		[]string{"version", "fingerprint"},
		func() []string {
			sb := s.serving.Load()
			return []string{strconv.Itoa(sb.version), sb.b.Fingerprint}
		})
	s.swapsTotal = r.CounterVec("trout_model_swaps_total",
		"Serving-bundle swaps, by kind (promote vs rollback).", "kind")

	// Admission control: decisions are pushed by the gate's hook; depth
	// gauges are sampled at scrape time.
	s.admTotal = r.CounterVec("trout_admission_total",
		"Ingest admission decisions (accepted vs shed_*).", "decision")
	r.GaugeFunc("trout_admission_in_flight",
		"Ingest requests currently holding an admission slot.",
		func() float64 { return float64(s.admission.InFlight()) })
	r.GaugeFunc("trout_admission_queued",
		"Ingest requests currently queued for an admission slot.",
		func() float64 { return float64(s.admission.Queued()) })

	// Serving hot path: snapshot cache effectiveness and coalescing
	// behavior. The coalesce families stay at zero unless cfg.Coalesce.
	s.cacheOps = r.CounterVec("trout_snapshot_cache_requests_total",
		"Shared snapshot cache lookups, by result (hit, miss, stale retry, bypass).", "result")
	s.coalDepth = r.Histogram("trout_coalesce_batch_size",
		"Single /predict requests flushed per coalesced micro-batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	s.coalFlushes = r.CounterVec("trout_coalesce_flushes_total",
		"Coalescer micro-batch flushes, by trigger (window expiry vs batch full).", "reason")

	// Leader-side replication counters (what this node shipped to
	// followers), sampled at scrape time.
	r.CounterFunc("trout_replication_wal_requests_total",
		"WAL fetches served to followers.",
		func() float64 { return float64(s.repLeader.Stats().WALRequests) })
	r.CounterFunc("trout_replication_bytes_shipped_total",
		"WAL and snapshot bytes shipped to followers.",
		func() float64 { return float64(s.repLeader.Stats().BytesShipped) })
	r.CounterFunc("trout_replication_snapshots_served_total",
		"Full snapshots served to followers.",
		func() float64 { return float64(s.repLeader.Stats().Snapshots) })

	// Follower-side lag and progress (follower mode only).
	if s.follower != nil {
		r.GaugeFunc("trout_replication_lag_events",
			"Events the replica is behind the leader's durable LSN.",
			func() float64 { return float64(s.follower.Stats().LagEvents) })
		r.GaugeFunc("trout_replication_lag_seconds",
			"Seconds since the replica was last caught up with the leader.",
			func() float64 { return s.follower.Stats().LagSeconds })
		r.GaugeFunc("trout_replication_caught_up",
			"1 once the replica has fully caught up with the leader at least once.",
			func() float64 {
				if s.follower.Stats().CaughtUp {
					return 1
				}
				return 0
			})
		r.CounterFunc("trout_replication_records_applied_total",
			"WAL records replayed into the replica.",
			func() float64 { return float64(s.follower.Stats().RecordsApplied) })
		r.CounterFunc("trout_replication_fetch_errors_total",
			"Failed replication fetches (network faults, leader outages).",
			func() float64 { return float64(s.follower.Stats().FetchErrors) })
		r.CounterFunc("trout_replication_resnapshots_total",
			"Full re-snapshots taken after divergence, retention gaps, or state swaps.",
			func() float64 { return float64(s.follower.Stats().Resnapshots) })
	}

	// Hierarchical tracing activity, SLO burn rates, and runtime
	// self-telemetry. All three register fixed series sets, so the
	// exposition stays deterministic scrape-to-scrape.
	s.tracer.Register(r)
	s.slo.Register(r)
	obs.RegisterRuntime(r)

	s.telemetry = obs.NewTrainTelemetry(r, s.logger)
}

// Tracer exposes the service's hierarchical tracer (nil when tracing is
// disabled — every method on it is nil-safe).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Registry exposes the service's metric registry (for the daemon to add
// process-level families).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Telemetry exposes the training telemetry sink.
func (s *Service) Telemetry() *obs.TrainTelemetry { return s.telemetry }

// Tracker exposes the online accuracy tracker.
func (s *Service) Tracker() *obs.AccuracyTracker { return s.tracker }

// TrainHooks returns core training hooks wired to the service's telemetry:
// refits observed through them surface on /metrics and in the structured
// log. A NaN validation loss (no holdout) is exported as 0.
func (s *Service) TrainHooks() core.TrainHooks {
	return core.TrainHooks{
		OnEpoch: func(head string, st nn.EpochStats) {
			val := st.ValLoss
			if val != val { // NaN: no validation holdout
				val = 0
			}
			s.telemetry.ObserveEpoch(head, st.Epoch, st.TrainLoss, val, st.GradNorm, st.LR)
		},
		OnRollback: func(head string, epoch, events int, lr float64) {
			s.telemetry.ObserveRollback(head, epoch, events, lr)
		},
	}
}

// LiveStore exposes the event-sourced state store (for the daemon's
// checkpoint loop and shutdown hooks).
func (s *Service) LiveStore() *livestate.Store { return s.live }

// SetReady flips the /ready endpoint; the daemon marks itself unready
// before draining so load balancers stop routing new traffic.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// FallbackCounters exposes a snapshot of the per-tier prediction counters.
func (s *Service) FallbackCounters() map[string]uint64 { return s.tiers.Snapshot() }

// tiersDegraded reports whether any tier other than primary has answered
// at least once — the /health degradation flag.
func tiersDegraded(snap map[string]uint64, primary string) bool {
	for k, v := range snap {
		if k != primary && v > 0 {
			return true
		}
	}
	return false
}

// metricRoutes are the path labels exported on /metrics; anything else is
// clamped to "other" to bound label cardinality.
var metricRoutes = map[string]bool{
	"/health": true, "/ready": true, "/predict": true, "/predict/batch": true,
	"/state": true, "/events": true, "/features": true, "/metrics": true,
	"/replication/wal": true, "/replication/snapshot": true, "/replication/status": true,
	"/admin/retrain": true, "/admin/models": true, "/admin/swap": true,
	"/debug/requests": true,
}

// Handler returns the service's HTTP routes wrapped in the middleware
// stack (outermost first): observability (trace ID, spans, request
// metrics, access log), panic recovery, per-request deadline, body limit.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/ready", s.handleReady)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/batch", s.handlePredictBatch)
	if s.follower != nil {
		// Followers own no write path: /events and /state belong to the
		// leader, reached by 307 redirect or transparent proxy.
		fw := s.forwardWrites()
		mux.Handle("/state", fw)
		mux.Handle("/events", fw)
	} else {
		// Leader ingest runs behind admission control: bursts shed with
		// 429 + Retry-After before any body parsing or engine locking.
		mux.Handle("/state", s.admission.Middleware(http.HandlerFunc(s.handleState)))
		mux.Handle("/events", s.admission.Middleware(http.HandlerFunc(s.handleEvents)))
	}
	mux.HandleFunc("/features", s.handleFeatures)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	// Model-lifecycle admin surface. Registered unconditionally so the
	// endpoints are discoverable; without an attached control plane the
	// registry-backed ones answer 503.
	mux.HandleFunc("/admin/retrain", s.handleAdminRetrain)
	mux.HandleFunc("/admin/models", s.handleAdminModels)
	mux.HandleFunc("/admin/swap", s.handleAdminSwap)
	// Replication serving works on any node (chained followers fan out);
	// /replication/wal answers 501 on memory-only stores.
	s.repLeader.Register(mux)
	var h http.Handler = mux
	h = resilience.MaxBytes(h, s.cfg.MaxBodyBytes)
	// The WAL long-poll parks at the log head for up to its wait parameter
	// by design, and snapshot ships can outlast a prediction-sized deadline
	// on a large engine state — under the per-request Timeout every idle
	// poll would 504 and a follower of a quiet leader could never complete
	// its first fetch. Replication endpoints bound themselves (wait clamp +
	// client disconnect), so they bypass the deadline middleware.
	timed := resilience.Timeout(h, s.cfg.RequestTimeout, s.cfg.Logf)
	untimed := h
	h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/replication/") {
			untimed.ServeHTTP(w, r)
			return
		}
		timed.ServeHTTP(w, r)
	})
	h = resilience.Recover(h, s.cfg.Logf)
	h = obs.Instrument(h, obs.HTTPOptions{
		Logger:       s.logger,
		Requests:     s.httpReqs,
		Latency:      s.httpLatency,
		StageLatency: s.stageLatency,
		Tracer:       s.tracer,
		SLO:          s.slo,
		PathFor: func(r *http.Request) string {
			if metricRoutes[r.URL.Path] {
				return r.URL.Path
			}
			return "other"
		},
	})
	return h
}

// healthResponse is the /health payload.
type healthResponse struct {
	Status        string            `json:"status"`
	CutoffMinutes float64           `json:"cutoff_minutes"`
	NumFeatures   int               `json:"num_features"`
	QueueJobs     int               `json:"queue_jobs"`
	Partitions    int               `json:"partitions"`
	FallbackTiers map[string]uint64 `json:"fallback_tiers"`
	Degraded      bool              `json:"degraded"`
	// Model identifies the serving bundle (registry version + SHA-256
	// fingerprint); followers report it too.
	Model modelHealth `json:"model"`
	// ControlPlane reports the retrain lifecycle (leader nodes with a
	// control plane attached only).
	ControlPlane *controlplane.Status `json:"control_plane,omitempty"`
	// Live summarizes the event-sourced engine's state.
	Live liveHealth `json:"live"`
	// Replication reports this node's role and, for followers, lag.
	Replication replicationHealth `json:"replication"`
	// SLO reports the rolling error-budget burn rates and the
	// multi-window alert state (omitted when SLO tracking is disabled).
	SLO *obs.SLOStatus `json:"slo,omitempty"`
}

// modelHealth is the /health model-identity section.
type modelHealth struct {
	// Version is the registry version serving (0 = the boot bundle).
	Version int `json:"version"`
	// Fingerprint is the SHA-256 of the serving bundle's gob encoding
	// (empty for in-memory bundles that were never serialized).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Swaps counts hot-swaps since boot, by kind.
	Swaps map[string]uint64 `json:"swaps,omitempty"`
}

// replicationHealth is the /health replication section. Leader fields are
// always present; follower fields only in follower mode.
type replicationHealth struct {
	Role       string `json:"role"` // "leader" | "follower"
	DurableLSN uint64 `json:"durable_lsn"`
	Gen        uint64 `json:"state_gen"`
	// Follower-only:
	LeaderURL   string  `json:"leader_url,omitempty"`
	CaughtUp    bool    `json:"caught_up,omitempty"`
	LagEvents   uint64  `json:"lag_events,omitempty"`
	LagSeconds  float64 `json:"lag_seconds,omitempty"`
	Resnapshots uint64  `json:"resnapshots,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
}

type liveHealth struct {
	Now     int64             `json:"now"`
	Pending int               `json:"pending"`
	Running int               `json:"running"`
	Tracked int               `json:"tracked"`
	Sources map[string]uint64 `json:"snapshot_sources"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	n := len(s.state.Load().Jobs)
	sb := s.serving.Load()
	st := s.live.Engine().Stats()
	tiers := s.tiers.Snapshot()
	sm := s.live.Metrics()
	rep := replicationHealth{Role: "leader", DurableLSN: sm.DurableLSN, Gen: sm.Gen}
	degraded := tiersDegraded(tiers, resilience.TierNN)
	status := "ok"
	if s.follower != nil {
		fs := s.follower.Stats()
		rep.Role = "follower"
		rep.LeaderURL = fs.LeaderURL
		rep.CaughtUp = fs.CaughtUp
		rep.LagEvents = fs.LagEvents
		rep.LagSeconds = fs.LagSeconds
		rep.Resnapshots = fs.Resnapshots
		if err := s.follower.Err(); err != nil {
			// Replication lag past threshold (or lost leader): the node
			// still answers, but from stale state.
			status = "degraded"
			degraded = true
			rep.LastError = err.Error()
		} else if fs.LastError != "" {
			rep.LastError = fs.LastError
		}
	}
	var cpStatus *controlplane.Status
	if ctl := s.ctl.Load(); ctl != nil {
		cs := ctl.Status()
		cpStatus = &cs
	}
	var sloStatus *obs.SLOStatus
	if s.slo != nil {
		ss := s.slo.Status()
		sloStatus = &ss
	}
	s.writeJSON(w, r, http.StatusOK, healthResponse{
		Status:        status,
		CutoffMinutes: sb.b.Model.Cfg.CutoffMinutes,
		NumFeatures:   sb.b.Model.NumInputs,
		QueueJobs:     n,
		Partitions:    len(sb.b.Cluster.Partitions),
		FallbackTiers: tiers,
		Degraded:      degraded,
		Model: modelHealth{
			Version:     sb.version,
			Fingerprint: sb.b.Fingerprint,
			Swaps:       s.swapsTotal.Snapshot(),
		},
		ControlPlane: cpStatus,
		Live: liveHealth{
			Now: st.Now, Pending: st.Pending, Running: st.Running,
			Tracked: st.Tracked, Sources: s.sources.Snapshot(),
		},
		Replication: rep,
		SLO:         sloStatus,
	})
}

// handleDebugRequests serves the flight recorder: the N slowest and the
// N most recent errored requests, full span trees included, so a trace
// ID from a log line or the loadgen scorecard can be inspected without
// any external tracing backend.
func (s *Service) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !s.tracer.Enabled() {
		resilience.WriteError(w, http.StatusNotImplemented, "tracing disabled")
		return
	}
	snap := s.tracer.Recorder().Snapshot()
	snap.SlowThresholdMs = float64(s.tracer.SlowThreshold()) / 1e6
	s.writeJSON(w, r, http.StatusOK, snap)
}

func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !s.ready.Load() {
		resilience.WriteError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// A follower is ready only once its replica has caught up and stays
	// within the lag threshold — load balancers should not route fresh
	// traffic to a stale replica, even though /predict still answers
	// (degraded) for clients already pinned to it.
	if s.follower != nil {
		if err := s.follower.Err(); err != nil {
			resilience.WriteError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
	}
	s.writeJSON(w, r, http.StatusOK, map[string]bool{"ready": true})
}

// forwardWrites returns the follower-mode handler for the write endpoints:
// a transparent reverse proxy to the leader when ProxyWrites is set, a 307
// redirect (method-preserving) otherwise.
func (s *Service) forwardWrites() http.Handler {
	target, err := url.Parse(s.cfg.LeaderURL)
	if err != nil || target.Scheme == "" || target.Host == "" {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			resilience.WriteError(w, http.StatusBadGateway,
				fmt.Sprintf("follower: bad leader URL %q", s.cfg.LeaderURL))
		})
	}
	if !s.cfg.ProxyWrites {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			dest := *target
			dest.Path = r.URL.Path
			dest.RawQuery = r.URL.RawQuery
			http.Redirect(w, r, dest.String(), http.StatusTemporaryRedirect)
		})
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		resilience.WriteError(w, http.StatusBadGateway,
			fmt.Sprintf("follower: leader unreachable: %v", err))
	}
	return proxy
}

// parseJobID strictly parses a ?job=ID query parameter: the whole value
// must be an integer (fmt.Sscanf's tolerance for trailing garbage like
// "12abc" let malformed requests through as job 12).
func parseJobID(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("job")
	if raw == "" {
		return 0, fmt.Errorf("need ?job=<id>")
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad job id %q", raw)
	}
	if id < 0 {
		return 0, fmt.Errorf("bad job id %d: must be non-negative", id)
	}
	return id, nil
}

// predictRequest is the POST /predict body: a hypothetical job plus the
// prediction instant.
type predictRequest struct {
	At  int64     `json:"at"`
	Job trace.Job `json:"job"`
}

// predictResponse is the /predict payload. Tier names the fallback tier
// that answered ("nn" when the neural network is healthy); Source names
// where the queue snapshot came from ("live" = indexed engine, "scan" =
// legacy whole-trace reconstruction).
type predictResponse struct {
	Long    bool    `json:"long"`
	Prob    float64 `json:"prob"`
	Minutes float64 `json:"minutes,omitempty"`
	Message string  `json:"message"`
	Tier    string  `json:"tier"`
	Source  string  `json:"snapshot_source"`
	Pending int     `json:"pending_in_snapshot"`
	Running int     `json:"running_in_snapshot"`
	// ModelVersion/ModelID attribute the answer to exactly one serving
	// bundle (version 0 = the boot bundle; ID is its SHA-256 fingerprint,
	// empty for never-serialized in-memory bundles).
	ModelVersion int    `json:"model_version"`
	ModelID      string `json:"model_id,omitempty"`
}

// Snapshot-source names for counters and response tags.
const (
	sourceLive = "live"
	sourceScan = "scan"
)

// snapshotForJob resolves a known job's queue snapshot: the live engine
// answers for jobs it tracks as pending (O(log n + k), amortized further
// by the shared snapshot cache); anything else — historical, running, or
// unknown to the event stream — falls back to the legacy trace scan.
//
// The resolvers below take no service-level lock. Each request serves
// from exactly one source, and both sources are internally consistent on
// their own (the engine under its lock + version counter, the trace via
// atomic pointer swap), so the old pattern of holding s.mu across the
// engine-or-scan decision and the extraction bought nothing but
// contention: a request that decided "engine" never touches the trace,
// and vice versa. POST /state's linearization point is the engine reseed
// (which bumps the engine version and thereby invalidates the snapshot
// cache); requests racing the upload serve either the complete old state
// or the complete new one.
func (s *Service) snapshotForJob(jobID int) (*Snapshot, string, error) {
	if target, at, err := s.live.Engine().TargetForJob(jobID); err == nil {
		return s.snapCache.snapshotAt(target, at), sourceLive, nil
	}
	snap, err := SnapshotFromTrace(s.state.Load(), jobID)
	return snap, sourceScan, err
}

// snapshotAt resolves a hypothetical job's snapshot at an instant: the
// live engine answers when it tracks state and the instant is at (or past)
// its clock — the deployment case of predicting for a submission happening
// now — while historical instants scan the legacy trace.
func (s *Service) snapshotAt(at int64, target trace.Job) (*Snapshot, string) {
	if eng := s.live.Engine(); eng.Ready(at) {
		return s.snapCache.snapshotAt(target, at), sourceLive
	}
	return SnapshotAtInstant(s.state.Load(), at, target), sourceScan
}

// snapshotBatch resolves snapshots for many hypothetical jobs at one
// instant, amortizing the queue reconstruction: the live engine computes
// pending/running once and shares them across targets (and, through the
// snapshot cache, across requests); the legacy scan reconstructs the
// instant once and stamps each target onto a copy. Either way each
// element is identical to what snapshotAt would return for that job
// alone.
func (s *Service) snapshotBatch(at int64, jobs []trace.Job) ([]*Snapshot, string) {
	if eng := s.live.Engine(); eng.Ready(at) {
		return s.snapCache.snapshotBatch(jobs, at), sourceLive
	}
	base := SnapshotAtInstant(s.state.Load(), at, trace.Job{})
	snaps := make([]*Snapshot, len(jobs))
	for i, j := range jobs {
		sc := *base
		sc.Target = j
		snaps[i] = &sc
	}
	return snaps, sourceScan
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	sp := obs.SpansFrom(r.Context())
	var snap *Snapshot
	var source string
	switch r.Method {
	case http.MethodGet:
		jobID, err := parseJobID(r)
		if err != nil {
			resilience.WriteError(w, http.StatusBadRequest, fmt.Sprintf("predict: %v", err))
			return
		}
		done := sp.Time(obs.StageSnapshot)
		sn, src, err := s.snapshotForJob(jobID)
		done()
		if err != nil {
			resilience.WriteError(w, http.StatusNotFound, err.Error())
			return
		}
		snap, source = sn, src
	case http.MethodPost:
		rb := getRespBuf()
		defer putRespBuf(rb)
		body, err := readBody(rb, r.Body)
		if err != nil {
			resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("predict: bad body: %v", err))
			return
		}
		var req predictRequest
		if !decodePredictRequest(body, &req) {
			// Outside the fast subset (or malformed): restart from zero and
			// let encoding/json rule — identical semantics and error text to
			// the pre-fast-path decoder.
			req = predictRequest{}
			if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
				resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("predict: bad body: %v", err))
				return
			}
		}
		if req.At == 0 {
			resilience.WriteError(w, http.StatusBadRequest, "predict: need at (unix seconds)")
			return
		}
		if req.At < 0 {
			resilience.WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("predict: at must be positive unix seconds, got %d", req.At))
			return
		}
		if req.Job.ID < 0 {
			resilience.WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("predict: bad job id %d: must be non-negative", req.Job.ID))
			return
		}
		if req.Job.Eligible == 0 {
			req.Job.Eligible = req.At
		}
		if req.Job.Submit == 0 {
			req.Job.Submit = req.At
		}
		done := sp.Time(obs.StageSnapshot)
		snap, source = s.snapshotAt(req.At, req.Job)
		done()
	default:
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	s.sources.Inc(source)

	// One serving-bundle load covers the whole request: prediction,
	// message cutoff, and response attribution all come from the same
	// version even if a hot-swap lands mid-request. Under coalescing the
	// load happens in the flusher and arrives with the reply, so the
	// attribution names the bundle that actually computed the answer.
	var sb *servingBundle
	var pred TieredPrediction
	var err error
	if s.coal != nil {
		// The flush runs on another goroutine under its own trace; the
		// member wraps the wait in a "coalesce" span linked to the shared
		// flush span, and copies the flush's stage timings into its own
		// recorder so coalesced requests still feed the batch_nn/fallback
		// histograms and show the pipeline stages in their span tree.
		csp := obs.StartSpan(r.Context(), "coalesce")
		rep := s.coal.do(snap)
		for _, st := range rep.stages {
			sp.Observe(st.Stage, st.Seconds)
		}
		if rep.flushTrace != "" {
			csp.Link(rep.flushTrace, rep.flushSpan)
			csp.SetAttr("flush_trace", rep.flushTrace)
		}
		csp.End()
		sb, pred, err = rep.sb, rep.res.TieredPrediction, rep.res.Err
	} else {
		sb = s.serving.Load()
		pred, err = sb.b.PredictWithFallbackSpans(snap, sp)
	}
	if err != nil {
		s.tiers.Inc(resilience.TierError)
		resilience.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.tiers.Inc(pred.Tier)
	// Remember the served answer so the online accuracy tracker can join
	// it against the job's realized start event, and mirror it into the
	// control plane's shadow scorer (no-op unless a candidate is under
	// evaluation; never blocks).
	s.tracker.Record(snap.Target.ID, pred.Prob, pred.Minutes, pred.Long)
	if ctl := s.ctl.Load(); ctl != nil {
		ctl.ObserveServed(snap.Target.ID, snap, pred.Prob, pred.Minutes, pred.Long)
	}
	s.writePredictResponse(w, r, &predictResponse{
		Long: pred.Long, Prob: pred.Prob, Minutes: pred.Minutes,
		Message: pred.Message(sb.b.Model.Cfg.CutoffMinutes),
		Tier:    pred.Tier,
		Source:  source,
		Pending: len(snap.Pending), Running: len(snap.Running),
		ModelVersion: sb.version, ModelID: sb.b.Fingerprint,
	})
}

// predictBatchRequest is the POST /predict/batch body: up to MaxBatchJobs
// hypothetical jobs, all evaluated at one prediction instant.
type predictBatchRequest struct {
	At   int64       `json:"at"`
	Jobs []trace.Job `json:"jobs"`
}

// batchItem is one job's answer inside a predictBatchResponse. Error is set
// (and the prediction fields zero) when that job's feature row was invalid
// or every fallback tier refused — one bad job never fails the batch.
type batchItem struct {
	Long    bool    `json:"long"`
	Prob    float64 `json:"prob"`
	Minutes float64 `json:"minutes,omitempty"`
	Message string  `json:"message,omitempty"`
	Tier    string  `json:"tier,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// predictBatchResponse is the /predict/batch payload. The snapshot is
// resolved once for the whole batch, so Source/Pending/Running are
// batch-level; Results is index-aligned with the request's Jobs.
type predictBatchResponse struct {
	At      int64       `json:"at"`
	Source  string      `json:"snapshot_source"`
	Pending int         `json:"pending_in_snapshot"`
	Running int         `json:"running_in_snapshot"`
	Results []batchItem `json:"results"`
	// ModelVersion/ModelID attribute the whole batch to one serving
	// bundle — the batch runs against a single bundle load, so no item
	// can straddle a hot-swap.
	ModelVersion int    `json:"model_version"`
	ModelID      string `json:"model_id,omitempty"`
}

func (s *Service) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	rb := getRespBuf()
	defer putRespBuf(rb)
	body, err := readBody(rb, r.Body)
	if err != nil {
		resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("predict: bad body: %v", err))
		return
	}
	var req predictBatchRequest
	if !decodePredictBatchRequest(body, &req) {
		req = predictBatchRequest{}
		if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
			resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("predict: bad body: %v", err))
			return
		}
	}
	if req.At == 0 {
		resilience.WriteError(w, http.StatusBadRequest, "predict: need at (unix seconds)")
		return
	}
	if req.At < 0 {
		resilience.WriteError(w, http.StatusBadRequest,
			fmt.Sprintf("predict: at must be positive unix seconds, got %d", req.At))
		return
	}
	if len(req.Jobs) == 0 {
		resilience.WriteError(w, http.StatusBadRequest, "predict: need at least one job")
		return
	}
	if max := s.cfg.MaxBatchJobs; max > 0 && len(req.Jobs) > max {
		resilience.WriteError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("predict: batch of %d jobs exceeds limit %d", len(req.Jobs), max))
		return
	}
	for i := range req.Jobs {
		if req.Jobs[i].ID < 0 {
			resilience.WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("predict: jobs[%d]: bad job id %d: must be non-negative", i, req.Jobs[i].ID))
			return
		}
		// Same defaulting as the single-job POST path, so a batch of one
		// answers identically to POST /predict.
		if req.Jobs[i].Eligible == 0 {
			req.Jobs[i].Eligible = req.At
		}
		if req.Jobs[i].Submit == 0 {
			req.Jobs[i].Submit = req.At
		}
	}

	sp := obs.SpansFrom(r.Context())
	done := sp.Time(obs.StageSnapshot)
	snaps, source := s.snapshotBatch(req.At, req.Jobs)
	done()
	s.batchSize.Observe(float64(len(req.Jobs)))
	for range req.Jobs {
		s.sources.Inc(source)
	}

	sb := s.serving.Load()
	ctl := s.ctl.Load()
	results := sb.b.PredictBatchWithFallbackSpans(snaps, sp)
	resp := predictBatchResponse{
		At: req.At, Source: source,
		Results:      make([]batchItem, len(results)),
		ModelVersion: sb.version, ModelID: sb.b.Fingerprint,
	}
	if len(snaps) > 0 {
		resp.Pending = len(snaps[0].Pending)
		resp.Running = len(snaps[0].Running)
	}
	for i, res := range results {
		if res.Err != nil {
			s.tiers.Inc(resilience.TierError)
			resp.Results[i] = batchItem{Error: res.Err.Error()}
			continue
		}
		s.tiers.Inc(res.Tier)
		s.tracker.Record(req.Jobs[i].ID, res.Prob, res.Minutes, res.Long)
		if ctl != nil {
			ctl.ObserveServed(req.Jobs[i].ID, snaps[i], res.Prob, res.Minutes, res.Long)
		}
		resp.Results[i] = batchItem{
			Long: res.Long, Prob: res.Prob, Minutes: res.Minutes,
			Message: res.Message(sb.b.Model.Cfg.CutoffMinutes),
			Tier:    res.Tier,
		}
	}
	s.writePredictBatchResponse(w, r, &resp)
}

// stateResponse is the POST /state payload, reporting how the tolerant
// ingestion went and what the bulk load seeded into the live engine.
type stateResponse struct {
	Jobs    int `json:"jobs"`
	Skipped int `json:"skipped_rows,omitempty"`
	// LiveActive/LiveHistory report the livestate seed: active
	// (pending/running/submitted) jobs and retained history records.
	LiveActive  int `json:"live_active"`
	LiveHistory int `json:"live_history"`
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	tr, rep, err := trace.ReadJSONLTolerant(r.Body, s.cfg.MaxBadStateRows)
	if err != nil {
		resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("state: %v", err))
		return
	}
	// Swap the legacy trace and reseed the live engine as one unit
	// relative to other uploads (stateMu serializes writers). Readers are
	// lock-free: each serves wholly from the engine or wholly from the
	// trace, so the only linearization point that matters is the engine
	// reseed, which bumps the engine version and invalidates every cached
	// snapshot at once.
	s.stateMu.Lock()
	s.state.Store(tr)
	n := len(tr.Jobs)
	seed, err := s.live.Seed(tr)
	s.stateMu.Unlock()
	if err != nil {
		// The legacy trace swap already succeeded; a failed checkpoint is
		// degraded durability, not a failed upload.
		if s.cfg.Logf != nil {
			s.cfg.Logf("state: live seed checkpoint: %v", err)
		}
	}
	s.writeJSON(w, r, http.StatusOK, stateResponse{
		Jobs: n, Skipped: rep.Skipped,
		LiveActive: seed.Active, LiveHistory: seed.History,
	})
}

// eventsResponse is the POST /events payload: how the JSONL event stream
// was absorbed. Applied events mutated the engine; rejected ones were
// well-formed but refused (duplicate, unknown job, stale order); bad lines
// failed to decode within the malformed-row budget.
type eventsResponse struct {
	Applied  int   `json:"applied"`
	Rejected int   `json:"rejected,omitempty"`
	BadLines int   `json:"bad_lines,omitempty"`
	Now      int64 `json:"now"`
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 4<<20)
	var resp eventsResponse
	budget := s.cfg.MaxBadStateRows
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := livestate.DecodeEvent(line)
		if err != nil {
			resp.BadLines++
			if budget >= 0 && resp.BadLines > budget {
				resilience.WriteError(w, http.StatusBadRequest,
					fmt.Sprintf("events: more than %d undecodable lines (last: %v)", budget, err))
				return
			}
			continue
		}
		if err := s.live.Apply(ev); err != nil {
			resp.Rejected++
			continue
		}
		resp.Applied++
	}
	if err := sc.Err(); err != nil {
		resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("events: %v", err))
		return
	}
	// Group-commit: the WAL fsyncs every SyncEvery appends, so force one
	// sync per batch before acknowledging — a 200 means every applied event
	// is durable, and a crash can only lose unacknowledged in-flight lines.
	if err := s.live.Sync(); err != nil {
		resilience.WriteError(w, http.StatusInternalServerError, fmt.Sprintf("events: wal sync: %v", err))
		return
	}
	resp.Now = s.live.Engine().Now()
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Service) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	jobID, err := parseJobID(r)
	if err != nil {
		resilience.WriteError(w, http.StatusBadRequest, fmt.Sprintf("features: %v", err))
		return
	}
	snap, source, err := s.snapshotForJob(jobID)
	if err != nil {
		resilience.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	s.sources.Inc(source)
	row, err := s.serving.Load().b.FeatureRow(snap)
	if err != nil {
		resilience.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make(map[string]float64, len(row))
	for i, v := range row {
		out[FeatureNames[i]] = v
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

// SnapshotAtInstant reconstructs queue state at an arbitrary time by
// scanning the whole trace, with the hypothetical job injected as target —
// the legacy O(N) path the livestate engine replaces for live instants,
// kept as the fallback tier for historical reconstruction. Open intervals
// are honored: a job with Start == 0 is still pending and End == 0 still
// running, so live traces keep their genuinely-queued jobs.
func SnapshotAtInstant(tr *Trace, at int64, target trace.Job) *Snapshot {
	snap := &Snapshot{Now: at, Target: target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch livestate.PhaseAt(&j, at) {
		case livestate.PhasePending:
			snap.Pending = append(snap.Pending, j)
		case livestate.PhaseRunning:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	return snap
}

// writeBody commits a fully-marshaled JSON body: Content-Length is exact,
// so clients never see a truncated-but-200 response.
func writeBody(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(code)
	_, _ = w.Write(b)
}

// writeJSON marshals v into a pooled buffer before touching the response.
// The old package-level helper encoded straight onto the wire, which meant
// an encode failure was discovered after the 200 and headers were already
// committed — the error was unreportable and silently dropped. Buffering
// first turns that into a logged, structured 500 and sets Content-Length.
func (s *Service) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	rb := getRespBuf()
	defer putRespBuf(rb)
	buf := bytes.NewBuffer(rb.b[:0])
	err := json.NewEncoder(buf).Encode(v)
	rb.b = buf.Bytes()
	if err != nil {
		if s.logger != nil {
			s.logger.Error("response encode failed",
				slog.String("path", r.URL.Path),
				slog.String("trace_id", obs.TraceIDFrom(r.Context())),
				slog.String("error", err.Error()))
		}
		resilience.WriteError(w, http.StatusInternalServerError,
			fmt.Sprintf("encode response: %v", err))
		return
	}
	writeBody(w, code, rb.b)
}

// writePredictResponse writes a /predict 200 through the zero-alloc
// encoder; values the fast encoder refuses (non-finite floats) fall back
// to the stdlib path and inherit its error handling.
func (s *Service) writePredictResponse(w http.ResponseWriter, r *http.Request, v *predictResponse) {
	rb := getRespBuf()
	defer putRespBuf(rb)
	b, ok := encodePredictResponse(rb.b[:0], v)
	rb.b = b[:0]
	if !ok {
		s.writeJSON(w, r, http.StatusOK, v)
		return
	}
	writeBody(w, http.StatusOK, b)
}

// writePredictBatchResponse is writePredictResponse for /predict/batch.
func (s *Service) writePredictBatchResponse(w http.ResponseWriter, r *http.Request, v *predictBatchResponse) {
	rb := getRespBuf()
	defer putRespBuf(rb)
	b, ok := encodePredictBatchResponse(rb.b[:0], v)
	rb.b = b[:0]
	if !ok {
		s.writeJSON(w, r, http.StatusOK, v)
		return
	}
	writeBody(w, http.StatusOK, b)
}
