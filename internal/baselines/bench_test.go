package baselines

import (
	"math/rand"
	"testing"
)

// benchDims matches the acceptance workload: 10k rows over the model's 33
// features, a mildly nonlinear target.
const (
	benchRows  = 10000
	benchFeats = 33
)

func benchData(b *testing.B) ([][]float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(12))
	f := func(x []float64) float64 {
		v := 3*x[0] - 2*x[1] + x[2]*x[3]
		if x[4] > 0.5 {
			v += 5
		}
		return v
	}
	return synthData(rng, benchRows, benchFeats, f, 0.5)
}

// BenchmarkForestFit compares histogram split finding (shared binning,
// parent−sibling subtraction) against the exact per-node sort search at
// the acceptance size. Feeds BENCH_train.json via `make bench-json`.
func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(b)
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"hist", false}, {"exact", true}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fo := NewForest(ForestConfig{
					Trees: 8,
					Tree:  TreeConfig{MaxDepth: 8, Exact: mode.exact},
					Seed:  1,
				})
				if err := fo.Fit(X, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGBDTFit is the boosting counterpart: sequential rounds over one
// shared binned matrix and reused histogram scratch vs exact mode.
func BenchmarkGBDTFit(b *testing.B) {
	X, y := benchData(b)
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"hist", false}, {"exact", true}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := NewGBDT(GBDTConfig{
					Rounds: 20,
					Tree:   TreeConfig{MaxDepth: 4, Exact: mode.exact},
					Seed:   2,
				})
				if err := g.Fit(X, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
