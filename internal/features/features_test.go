package features

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/slurmsim"
	"repro/internal/trace"
)

func tinyCluster() slurmsim.ClusterSpec {
	return slurmsim.ClusterSpec{
		Nodes: []slurmsim.NodeSpec{{CPUs: 4, MemGB: 8}, {CPUs: 4, MemGB: 8}},
		Partitions: []slurmsim.PartitionSpec{
			{Name: "shared", Tier: 1, NodeIDs: []int{0, 1}},
		},
	}
}

// handTrace builds three jobs whose queue-state aggregates can be checked
// by hand (see comments inline in the test).
func handTrace() *trace.Trace {
	return &trace.Trace{Jobs: []trace.Job{
		{ID: 1, User: 1, Partition: "shared", State: trace.StateCompleted,
			Submit: 100, Eligible: 100, Start: 100, End: 1000,
			ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 1200, Priority: 10},
		{ID: 2, User: 1, Partition: "shared", State: trace.StateCompleted,
			Submit: 150, Eligible: 150, Start: 500, End: 800,
			ReqCPUs: 2, ReqMemGB: 4, ReqNodes: 1, TimeLimit: 600, Priority: 20},
		{ID: 3, User: 1, Partition: "shared", State: trace.StateCompleted,
			Submit: 200, Eligible: 200, Start: 600, End: 900,
			ReqCPUs: 1, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 300, Priority: 5},
	}}
}

func fidx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	t.Fatalf("unknown feature %q", name)
	return -1
}

func TestNamesMatchWidth(t *testing.T) {
	if len(Names) != NumFeatures {
		t.Fatalf("len(Names) = %d, NumFeatures = %d", len(Names), NumFeatures)
	}
	seen := map[string]bool{}
	for _, n := range Names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestHandComputedAggregates(t *testing.T) {
	cluster := tinyCluster()
	ds, err := Build(handTrace(), &cluster, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("%d samples", ds.Len())
	}
	// Jobs sorted by eligibility: job 3 is index 2.
	row := ds.X[2]
	// At t=200: job 2 is pending (150 ≤ 200 < 500), job 1 is running
	// (100 ≤ 200 < 1000). Job 3 itself is excluded from queue counts.
	checks := map[string]float64{
		"Priority":              5,
		"Timelimit Raw":         5, // 300 s
		"Req CPUs":              1,
		"Req Mem":               2,
		"Req Nodes":             1,
		"Par Jobs Queue":        1,
		"Par CPUs Queue":        2,
		"Par Mem Queue":         4,
		"Par Nodes Queue":       1,
		"Par Timelimit Queue":   10,
		"Par Jobs Ahead":        1, // job 2 has priority 20 > 5
		"Par CPUs Ahead":        2,
		"Par Jobs Running":      1,
		"Par CPUs Running":      4,
		"Par Mem Running":       8,
		"Par Nodes Running":     1,
		"Par Timelimit Running": 20,
		"User Jobs Past Day":    2, // jobs 1, 2 submitted before t=200
		"User CPUs Past Day":    6,
		"User Mem Past Day":     12,
		"User Nodes Past Day":   2,
		"Par Total Nodes":       2,
		"Par Total CPU":         8,
		"Par CPU per Node":      4,
		"Par Mem per Node":      8,
		"Par Total GPU":         0,
	}
	for name, want := range checks {
		if got := row[fidx(t, name)]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Queue target: job 3 waited 400 s = 6.667 min.
	if math.Abs(ds.QueueMinutes[2]-400.0/60) > 1e-9 {
		t.Fatalf("queue minutes = %v", ds.QueueMinutes[2])
	}
}

func TestFirstJobSeesEmptyQueue(t *testing.T) {
	cluster := tinyCluster()
	ds, err := Build(handTrace(), &cluster, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	row := ds.X[0] // job 1, eligible first at t=100, started instantly
	for _, name := range []string{"Par Jobs Queue", "Par Jobs Ahead", "Par Jobs Running", "User Jobs Past Day"} {
		if got := row[fidx(t, name)]; got != 0 {
			t.Errorf("%s = %v for the first job, want 0", name, got)
		}
	}
}

func TestLabels(t *testing.T) {
	cluster := tinyCluster()
	ds, err := Build(handTrace(), &cluster, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Labels(5) // 5-minute cutoff
	// Queue times: job1 0 min, job2 350/60 ≈ 5.83 min, job3 6.67 min.
	want := []bool{false, true, true}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

// randomTrace produces a consistent random trace for differential tests.
func randomTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := &trace.Trace{}
	var clock int64 = 1000
	for i := 0; i < n; i++ {
		clock += rng.Int63n(100)
		eligible := clock + rng.Int63n(50)
		start := eligible + rng.Int63n(2000)
		end := start + 1 + rng.Int63n(3000)
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: i + 1, User: rng.Intn(10) + 1, Partition: "shared",
			State:  trace.StateCompleted,
			Submit: clock, Eligible: eligible, Start: start, End: end,
			ReqCPUs: 1 + rng.Intn(4), ReqMemGB: 1 + rng.Float64()*7,
			ReqNodes: 1, TimeLimit: 300 + rng.Int63n(7200),
			Priority: rng.Int63n(1000),
		})
	}
	return tr
}

// TestAggregatesMatchNaive is the differential test: interval-tree
// aggregates must equal a quadratic scan.
func TestAggregatesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 300)
	cluster := tinyCluster()
	ds, err := Build(tr, &cluster, Options{Workers: 4, Seed: 3, ChunkSize: 100, ChunkOverlap: 10})
	if err != nil {
		t.Fatal(err)
	}
	iQ := fidx(t, "Par Jobs Queue")
	iA := fidx(t, "Par Jobs Ahead")
	iR := fidx(t, "Par Jobs Running")
	iQC := fidx(t, "Par CPUs Queue")
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		tt := j.Eligible
		var q, a, r, qc float64
		for k := range ds.Jobs {
			if k == i {
				continue
			}
			o := &ds.Jobs[k]
			if o.Eligible <= tt && tt < o.Start {
				q++
				qc += float64(o.ReqCPUs)
				if o.Priority > j.Priority {
					a++
				}
			}
		}
		for k := range ds.Jobs {
			if k == i {
				continue
			}
			o := &ds.Jobs[k]
			if o.Start <= tt && tt < o.End {
				r++
			}
		}
		if ds.X[i][iQ] != q || ds.X[i][iA] != a || ds.X[i][iR] != r || ds.X[i][iQC] != qc {
			t.Fatalf("job %d: tree (q=%v a=%v r=%v qc=%v) vs naive (q=%v a=%v r=%v qc=%v)",
				j.ID, ds.X[i][iQ], ds.X[i][iA], ds.X[i][iR], ds.X[i][iQC], q, a, r, qc)
		}
	}
}

func TestParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := randomTrace(rng, 400)
	cluster := tinyCluster()
	a, err := Build(tr, &cluster, Options{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(tr, &cluster, Options{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.X, b.X) {
		t.Fatal("parallel build differs from serial")
	}
}

func TestRuntimePredictorSane(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := randomTrace(rng, 500)
	cluster := tinyCluster()
	ds, err := Build(tr, &cluster, Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	actual := make([]float64, ds.Len())
	for i := range ds.Jobs {
		if ds.PredRuntime[i] < 0 {
			t.Fatalf("negative predicted runtime %v", ds.PredRuntime[i])
		}
		actual[i] = float64(ds.Jobs[i].RuntimeSeconds())
	}
	// The forest should at least correlate positively with the truth on
	// the training half (runtimes here are correlated with time limits).
	half := ds.Len() / 2
	r := metrics.Pearson(ds.PredRuntime[:half], actual[:half])
	if r < 0.1 {
		t.Fatalf("runtime predictor correlation %v", r)
	}
}

func TestBuildErrors(t *testing.T) {
	cluster := tinyCluster()
	if _, err := Build(&trace.Trace{}, &cluster, Options{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := handTrace()
	bad.Jobs[0].Partition = "nope"
	if _, err := Build(bad, &cluster, Options{}); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestUnsortedTraceHandled(t *testing.T) {
	tr := handTrace()
	// Reverse the jobs; Build must sort by eligibility itself.
	tr.Jobs[0], tr.Jobs[2] = tr.Jobs[2], tr.Jobs[0]
	cluster := tinyCluster()
	ds, err := Build(tr, &cluster, Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Jobs[0].ID != 1 || ds.Jobs[2].ID != 3 {
		t.Fatal("dataset not sorted by eligibility")
	}
}

func TestPermutationImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 10 * X[i][0] // feature 0 carries all signal
	}
	predict := func(row []float64) float64 { return 10 * row[0] }
	imps := PermutationImportance(predict, X, y, []string{"signal", "noise"}, metrics.RMSE, 9)
	if len(imps) != 2 {
		t.Fatalf("%d importances", len(imps))
	}
	if imps[0].Feature != "signal" {
		t.Fatalf("top feature %q, want signal", imps[0].Feature)
	}
	if imps[0].Score <= imps[1].Score {
		t.Fatal("signal feature not more important than noise")
	}
	if math.Abs(imps[1].Score) > 1e-9 {
		t.Fatalf("noise importance %v, want ≈0", imps[1].Score)
	}
}

func TestPermutationImportanceEmpty(t *testing.T) {
	if PermutationImportance(func([]float64) float64 { return 0 }, nil, nil, nil, metrics.RMSE, 1) != nil {
		t.Fatal("empty input should return nil")
	}
}

func BenchmarkBuild2k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	tr := randomTrace(rng, 2000)
	cluster := tinyCluster()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tr, &cluster, Options{Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}
