package shap

import (
	"math"
	"math/rand"
	"testing"
)

// linearModel is w·x + c; for independent features, exact Shapley values
// are φ_j = w_j (x_j − E[background_j]).
func linearModel(w []float64, c float64) func([]float64) float64 {
	return func(x []float64) float64 {
		s := c
		for j, v := range x {
			s += w[j] * v
		}
		return s
	}
}

func randomBackground(rng *rand.Rand, n, dim int) [][]float64 {
	bg := make([][]float64, n)
	for i := range bg {
		bg[i] = make([]float64, dim)
		for j := range bg[i] {
			bg[i][j] = rng.NormFloat64()
		}
	}
	return bg
}

func TestLinearModelExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{3, -2, 0.5, 0, 1}
	bg := randomBackground(rng, 64, 5)
	means := make([]float64, 5)
	for _, row := range bg {
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(len(bg))
	}
	ex := &Explainer{
		Predict: linearModel(w, 7), Background: bg,
		Samples: 4000, BackgroundDraws: 64, Seed: 2,
	}
	x := []float64{1, -1, 2, 0.5, -0.25}
	phi, err := ex.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		want := w[j] * (x[j] - means[j])
		if math.Abs(phi[j]-want) > 0.15 {
			t.Errorf("phi[%d] = %.4f, want %.4f", j, phi[j], want)
		}
	}
}

// TestLocalAccuracy: Σφ = f(x) − E[f(background)] must hold by construction.
func TestLocalAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A nonlinear model.
	model := func(x []float64) float64 {
		return x[0]*x[1] + math.Sin(x[2]) + 2*x[3]
	}
	bg := randomBackground(rng, 32, 4)
	ex := &Explainer{Predict: model, Background: bg, Samples: 800, Seed: 4}
	x := []float64{0.5, -1, 2, 0.25}
	phi, err := ex.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range phi {
		sum += p
	}
	var f0 float64
	for _, row := range bg {
		f0 += model(row)
	}
	f0 /= float64(len(bg))
	if math.Abs(sum-(model(x)-f0)) > 1e-9 {
		t.Fatalf("Σφ = %.6f, want f(x)−f0 = %.6f", sum, model(x)-f0)
	}
}

func TestIrrelevantFeatureNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := func(x []float64) float64 { return 10 * x[0] } // x[1], x[2] unused
	bg := randomBackground(rng, 32, 3)
	// Full-background marginalization removes sampling noise, so the
	// unused features' attributions collapse to ≈0.
	ex := &Explainer{Predict: model, Background: bg, Samples: 2000, BackgroundDraws: len(bg), Seed: 6}
	phi, err := ex.Explain([]float64{2, 5, -5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[1]) > 0.2 || math.Abs(phi[2]) > 0.2 {
		t.Fatalf("irrelevant features got φ = %.3f, %.3f", phi[1], phi[2])
	}
	if phi[0] < 5 {
		t.Fatalf("relevant feature underweighted: %.3f", phi[0])
	}
}

func TestSingleFeature(t *testing.T) {
	model := func(x []float64) float64 { return 2 * x[0] }
	ex := &Explainer{Predict: model, Background: [][]float64{{0}, {1}}, Seed: 7}
	phi, err := ex.Explain([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	// f(x)=6, f0 = mean(0, 2) = 1 → φ = 5.
	if math.Abs(phi[0]-5) > 1e-12 {
		t.Fatalf("φ = %v, want 5", phi[0])
	}
}

func TestExplainErrors(t *testing.T) {
	ex := &Explainer{}
	if _, err := ex.Explain(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	ex = &Explainer{Predict: func([]float64) float64 { return 0 }}
	if _, err := ex.Explain([]float64{1}); err == nil {
		t.Fatal("empty background accepted")
	}
	ex = &Explainer{Background: [][]float64{{1}}}
	if _, err := ex.Explain([]float64{1}); err == nil {
		t.Fatal("nil predict accepted")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := func(x []float64) float64 { return x[0] - x[1]*x[2] }
	bg := randomBackground(rng, 16, 3)
	run := func() []float64 {
		ex := &Explainer{Predict: model, Background: bg, Samples: 300, Seed: 9}
		phi, err := ex.Explain([]float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		return phi
	}
	a, b := run(), run()
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("explanations not deterministic")
		}
	}
}

func TestMeanAbsAndRank(t *testing.T) {
	vals := [][]float64{{1, -2}, {-3, 0}}
	ma := MeanAbs(vals)
	if ma[0] != 2 || ma[1] != 1 {
		t.Fatalf("MeanAbs = %v", ma)
	}
	ranked := Rank([]string{"a", "b"}, ma)
	if ranked[0].Feature != "a" || ranked[1].Feature != "b" {
		t.Fatalf("Rank = %v", ranked)
	}
	if MeanAbs(nil) != nil {
		t.Fatal("empty MeanAbs should be nil")
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {33, 1, 33}, {10, 0, 1}, {10, 10, 1}, {4, 5, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
