package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the daemon's structured logger. format is "json"
// (machine-shippable, the production default) or "text" (key=value for
// terminals); level is debug|info|warn|error.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want json|text)", format)
}

// Logf adapts a structured logger to the printf-style diagnostic hooks
// older layers expose (livestate.StoreOptions.Logf, middleware logf).
// A nil logger yields a nil func, which those hooks treat as disabled.
func Logf(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
