package slurmsim

import (
	"math/rand"
	"testing"
)

// preemptCluster: 2 nodes, a high-tier "shared" partition and a
// low-tier preemptible "standby" partition over the same nodes.
func preemptCluster() ClusterSpec {
	return ClusterSpec{
		Nodes: []NodeSpec{{CPUs: 4, MemGB: 8}, {CPUs: 4, MemGB: 8}},
		Partitions: []PartitionSpec{
			{Name: "shared", Tier: 3, NodeIDs: []int{0, 1}},
			{Name: "standby", Tier: 1, NodeIDs: []int{0, 1}, Preemptible: true},
		},
	}
}

func preemptConfig() Config {
	return Config{
		Cluster:           preemptCluster(),
		Weights:           DefaultPriorityWeights(),
		FairshareHalfLife: 3600,
		BackfillDepth:     50,
		PriorityRefresh:   60,
	}
}

func TestPreemptionRequeuesStandbyJob(t *testing.T) {
	// Standby job fills the cluster for a long time; a shared job arrives
	// and must preempt it instead of waiting.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 10000, Runtime: 9000},
		{ID: 2, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 500},
	}
	tr, st, err := Run(preemptConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", st.Preemptions)
	}
	j2 := findJob(tr, 2)
	if j2.Start != 100 {
		t.Fatalf("shared job started at %d, want 100 (via preemption)", j2.Start)
	}
	// The standby job must still complete eventually, restarted after the
	// shared job finishes, with its full runtime.
	j1 := findJob(tr, 1)
	if j1 == nil {
		t.Fatal("preempted job never completed")
	}
	if j1.Start < 600 {
		t.Fatalf("standby job restarted at %d, want >= 600", j1.Start)
	}
	if j1.RuntimeSeconds() != 9000 {
		t.Fatalf("requeued job ran %d s, want the full 9000", j1.RuntimeSeconds())
	}
	if st.Completed != 2 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

func TestNoPreemptionOfNonPreemptible(t *testing.T) {
	cfg := preemptConfig()
	cfg.Cluster.Partitions[1].Preemptible = false
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 10000, Runtime: 9000},
		{ID: 2, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 500},
	}
	tr, st, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0", st.Preemptions)
	}
	if findJob(tr, 2).Start != 9000 {
		t.Fatalf("shared job started at %d, want 9000 (waiting)", findJob(tr, 2).Start)
	}
}

func TestPreemptionDisabledByConfig(t *testing.T) {
	cfg := preemptConfig()
	cfg.DisablePreemption = true
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 10000, Runtime: 9000},
		{ID: 2, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 500},
	}
	_, st, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 0 {
		t.Fatalf("preemptions = %d with preemption disabled", st.Preemptions)
	}
}

func TestSameTierDoesNotPreempt(t *testing.T) {
	cfg := preemptConfig()
	cfg.Cluster.Partitions[0].Tier = 1 // same tier as standby
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 10000, Runtime: 9000},
		{ID: 2, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 500},
	}
	_, st, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 0 {
		t.Fatalf("same-tier preemption happened (%d)", st.Preemptions)
	}
}

func TestPreemptionTakesMinimalVictims(t *testing.T) {
	// Four 2-CPU standby jobs fill the cluster; a 2-CPU shared job needs
	// only one victim.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 2, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 10000, Runtime: 9000},
		{ID: 2, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 2, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 10000, Runtime: 9000},
		{ID: 3, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 2, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 10000, Runtime: 9000},
		{ID: 4, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 2, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 10000, Runtime: 9000},
		{ID: 5, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 2, ReqMemGB: 2, ReqNodes: 1, TimeLimit: 1000, Runtime: 500},
	}
	tr, st, err := Run(preemptConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want exactly 1", st.Preemptions)
	}
	if findJob(tr, 5).Start != 100 {
		t.Fatal("shared job did not start via preemption")
	}
	if st.Completed != 5 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

// TestPreemptionConservation: random mixed workload with preemption on —
// every feasible job still completes exactly once and records stay valid.
func TestPreemptionConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	var specs []JobSpec
	var clock int64
	for i := 0; i < 400; i++ {
		clock += rng.Int63n(30)
		part := "shared"
		if rng.Float64() < 0.4 {
			part = "standby"
		}
		limit := int64(100 + rng.Intn(3000))
		specs = append(specs, JobSpec{
			ID: i + 1, User: rng.Intn(6), Partition: part, Submit: clock,
			ReqCPUs: 1 + rng.Intn(4), ReqMemGB: 1 + rng.Float64()*3,
			ReqNodes: 1, TimeLimit: limit, Runtime: 1 + rng.Int63n(limit),
		})
	}
	tr, st, err := Run(preemptConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed+st.Rejected != len(specs) {
		t.Fatalf("completed %d + rejected %d != %d", st.Completed, st.Rejected, len(specs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := range tr.Jobs {
		if seen[tr.Jobs[i].ID] {
			t.Fatalf("job %d completed twice", tr.Jobs[i].ID)
		}
		seen[tr.Jobs[i].ID] = true
	}
	if st.Preemptions == 0 {
		t.Log("note: random workload produced no preemptions (not an error)")
	}
}
