GO ?= go

# Trace size for the snapshot benchmarks (legacy scan vs livestate engine).
BENCH_JOBS ?= 50000
# Repetitions per benchmark; pipe the output into benchstat to compare runs.
BENCH_COUNT ?= 5

.PHONY: all build test race vet fmt-check fuzz-smoke bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz of the event decoder (corpus seeds + 5s of mutation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvent -fuzztime 5s ./internal/livestate

# Legacy O(N) snapshot scan vs the livestate engine's indexed extraction,
# in benchstat-friendly form:
#   make bench > new.txt && benchstat old.txt new.txt
bench:
	TROUT_BENCH_JOBS=$(BENCH_JOBS) $(GO) test -run '^$$' \
		-bench 'SnapshotAtInstant$$|LiveStateSnapshot$$' \
		-benchmem -count $(BENCH_COUNT) .

ci: fmt-check vet build race fuzz-smoke

clean:
	$(GO) clean ./...
