package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveIdentity(t *testing.T) {
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	b := []float64{7, -2, 0, 3.5}
	x, err := Solve(id, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve changed values: %v", x)
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(New(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	if _, err := Solve(New(2, 2), []float64{1}); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	orig := a.Clone()
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig, 0) {
		t.Fatal("Solve mutated the matrix")
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve mutated the vector")
	}
}

// Property: for random well-conditioned systems, A·Solve(A,b) ≈ b.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := New(n, n)
		a.RandN(rng, 1)
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
