package nn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestFitEpochStatsHook pins the telemetry contract: a healthy run with a
// holdout delivers one EpochStats per epoch with increasing epoch numbers,
// finite losses, a positive pre-clip gradient norm, and the optimizer's LR.
func TestFitEpochStatsHook(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	var got []EpochStats
	tr := Trainer{
		Net: net,
		Opt: NewAdam(1e-2),
		Cfg: TrainConfig{
			Loss: MSE, Epochs: 5, BatchSize: 32, Workers: 1, Seed: 5,
			ValFraction:  0.2,
			OnEpochStats: func(st EpochStats) { got = append(got, st) },
		},
	}
	if _, err := tr.FitCtx(context.Background(), x, y); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d epoch stats, want 5", len(got))
	}
	for i, st := range got {
		if st.Epoch != i {
			t.Fatalf("stats[%d].Epoch = %d", i, st.Epoch)
		}
		if math.IsNaN(st.TrainLoss) || math.IsInf(st.TrainLoss, 0) {
			t.Fatalf("epoch %d train loss %v", st.Epoch, st.TrainLoss)
		}
		if math.IsNaN(st.ValLoss) || math.IsInf(st.ValLoss, 0) {
			t.Fatalf("epoch %d val loss %v (holdout configured)", st.Epoch, st.ValLoss)
		}
		if st.GradNorm <= 0 || math.IsNaN(st.GradNorm) || math.IsInf(st.GradNorm, 0) {
			t.Fatalf("epoch %d grad norm %v", st.Epoch, st.GradNorm)
		}
		if st.LR != 1e-2 {
			t.Fatalf("epoch %d LR %v", st.Epoch, st.LR)
		}
	}
}

// TestFitEpochStatsNoHoldout: without ValFraction the hook still fires but
// reports ValLoss = NaN, letting consumers distinguish "no holdout" from
// "holdout loss of zero".
func TestFitEpochStatsNoHoldout(t *testing.T) {
	x, y := divergenceFixture(128)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{8}, 1, ReLU, Identity, 0)...)
	var got []EpochStats
	tr := Trainer{
		Net: net,
		Opt: NewAdam(1e-2),
		Cfg: TrainConfig{
			Loss: MSE, Epochs: 2, BatchSize: 32, Workers: 1, Seed: 5,
			OnEpochStats: func(st EpochStats) { got = append(got, st) },
		},
	}
	if _, err := tr.FitCtx(context.Background(), x, y); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d epoch stats", len(got))
	}
	for _, st := range got {
		if !math.IsNaN(st.ValLoss) {
			t.Fatalf("epoch %d val loss %v, want NaN without holdout", st.Epoch, st.ValLoss)
		}
	}
}

// TestFitEpochStatsShardedWorkers checks the parallel batch path also
// feeds the pre-clip gradient norm into the hook.
func TestFitEpochStatsShardedWorkers(t *testing.T) {
	x, y := divergenceFixture(512)
	net := NewNetwork(rand.New(rand.NewSource(9)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	var got []EpochStats
	tr := Trainer{
		Net: net,
		Opt: NewAdam(1e-2),
		Cfg: TrainConfig{
			Loss: MSE, Epochs: 2, BatchSize: 128, Workers: 4, Seed: 5,
			OnEpochStats: func(st EpochStats) { got = append(got, st) },
		},
	}
	if _, err := tr.FitCtx(context.Background(), x, y); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d epoch stats", len(got))
	}
	for _, st := range got {
		if st.GradNorm <= 0 {
			t.Fatalf("sharded epoch %d grad norm %v", st.Epoch, st.GradNorm)
		}
	}
}

// TestFitRollbackHook runs the exploding-LR fixture and checks OnRollback
// fires once per divergence event with the trainer's current LR.
func TestFitRollbackHook(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	type rb struct {
		epoch, events int
		lr            float64
	}
	var rolls []rb
	tr := Trainer{
		Net: net,
		Opt: NewSGD(1e6, 0),
		Cfg: TrainConfig{
			Loss: MSE, Epochs: 20, BatchSize: 32, Workers: 1, Seed: 5,
			DivergencePatience: 2,
			OnRollback: func(epoch, events int, lr float64) {
				rolls = append(rolls, rb{epoch, events, lr})
			},
		},
	}
	_, err := tr.FitCtx(context.Background(), x, y)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if len(rolls) != 2 {
		t.Fatalf("rollback hook fired %d times, want 2", len(rolls))
	}
	for i, r := range rolls {
		if r.events != i+1 {
			t.Fatalf("rollback %d reported events=%d", i, r.events)
		}
		if r.lr <= 0 {
			t.Fatalf("rollback %d reported lr=%v", i, r.lr)
		}
	}
}
