// Package livestate maintains live cluster queue state from a stream of
// typed job events — the shape real Slurm deployments emit (and that
// exporters scrape) rather than whole accounting traces. An Engine applies
// submit/eligible/start/end/cancel events to per-partition indexed state so
// that extracting a features.Snapshot for a target job costs O(log n + k)
// in the active-queue size k instead of O(N) in the full trace, and a Store
// wraps the engine with a length-prefixed write-ahead log plus periodic gob
// checkpoints so a restarted daemon recovers its state by replaying
// checkpoint + WAL tail.
package livestate

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// EventType names one kind of job lifecycle event.
type EventType string

// Job lifecycle events, in the order they occur for a normal job. Cancel
// may arrive at any point before end and terminates the job wherever it is.
const (
	EventSubmit   EventType = "submit"
	EventEligible EventType = "eligible"
	EventStart    EventType = "start"
	EventEnd      EventType = "end"
	EventCancel   EventType = "cancel"
)

// Event is one job lifecycle transition. Submit events carry the full job
// record (resources, priority, partition); later events reference the job
// by ID. Time is Unix seconds and is authoritative for the transition — a
// start event's Time becomes the job's Start.
type Event struct {
	Type  EventType `json:"type"`
	Time  int64     `json:"time"`
	JobID int       `json:"job_id,omitempty"`
	// Job is the submitted record (submit events only). Eligible, Start,
	// End, and State are ignored — the stream itself establishes them.
	Job *trace.Job `json:"job,omitempty"`
	// State is the terminal state for end events ("" = COMPLETED).
	State trace.JobState `json:"state,omitempty"`
}

// ID returns the job the event refers to.
func (ev *Event) ID() int {
	if ev.Type == EventSubmit && ev.Job != nil && ev.JobID == 0 {
		return ev.Job.ID
	}
	return ev.JobID
}

// Validate checks structural well-formedness (not state-machine order,
// which only the engine can judge).
func (ev *Event) Validate() error {
	switch ev.Type {
	case EventSubmit:
		if ev.Job == nil {
			return fmt.Errorf("livestate: submit event needs a job record")
		}
		if ev.Job.ID == 0 && ev.JobID == 0 {
			return fmt.Errorf("livestate: submit event needs a job id")
		}
		if ev.Job.Partition == "" {
			return fmt.Errorf("livestate: submit event for job %d has no partition", ev.ID())
		}
	case EventEligible, EventStart, EventEnd, EventCancel:
		if ev.JobID == 0 {
			return fmt.Errorf("livestate: %s event needs job_id", ev.Type)
		}
	default:
		return fmt.Errorf("livestate: unknown event type %q", ev.Type)
	}
	if ev.Time <= 0 {
		return fmt.Errorf("livestate: %s event for job %d needs a positive time", ev.Type, ev.ID())
	}
	return nil
}

// DecodeEvent parses one JSONL event line and validates it.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("livestate: decode event: %w", err)
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// WriteEvents serializes events as JSONL, one event per line.
func WriteEvents(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// EventsFromTrace derives the event stream a live scheduler would have
// emitted for the jobs in a trace, sorted by time (ties keep per-job
// lifecycle order, then trace order). Open intervals are respected: a job
// with Start == 0 yields no start event, End == 0 no terminal event — so
// replaying the stream reproduces a live queue containing those jobs.
func EventsFromTrace(tr *trace.Trace) []Event {
	events := make([]Event, 0, 4*len(tr.Jobs))
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.Submit <= 0 {
			continue
		}
		sub := j
		sub.Eligible, sub.Start, sub.End = 0, 0, 0
		sub.State = ""
		events = append(events, Event{Type: EventSubmit, Time: j.Submit, Job: &sub})
		if j.Eligible > 0 {
			events = append(events, Event{Type: EventEligible, Time: j.Eligible, JobID: j.ID})
		}
		if j.Start > 0 {
			events = append(events, Event{Type: EventStart, Time: j.Start, JobID: j.ID})
		}
		if j.End > 0 {
			if j.State == trace.StateCancelled {
				events = append(events, Event{Type: EventCancel, Time: j.End, JobID: j.ID})
			} else {
				events = append(events, Event{Type: EventEnd, Time: j.End, JobID: j.ID, State: j.State})
			}
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return events
}

// Phase is a job's position in its lifecycle at some instant.
type Phase uint8

// Lifecycle phases as observed at an instant.
const (
	PhaseNone      Phase = iota // not yet submitted (or invalid record)
	PhaseSubmitted              // submitted, not yet eligible
	PhasePending                // eligible, waiting to start
	PhaseRunning                // executing
	PhaseDone                   // reached a terminal state
)

// PhaseAt classifies a job record at instant t, treating zero Start/End as
// open intervals: a record with Start == 0 is still waiting, End == 0 still
// running — the shape live traces have for jobs that are genuinely pending
// or executing at capture time. (The closed-interval checks `t < Start`
// and `t < End` silently drop such jobs: any t satisfies neither.)
func PhaseAt(j *trace.Job, t int64) Phase {
	switch {
	case j.End != 0 && t >= j.End:
		return PhaseDone
	case j.Start != 0 && t >= j.Start:
		return PhaseRunning
	case j.Eligible != 0 && t >= j.Eligible:
		return PhasePending
	case j.Submit != 0 && t >= j.Submit:
		return PhaseSubmitted
	}
	return PhaseNone
}
