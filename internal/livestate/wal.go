package livestate

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// WAL/checkpoint file names inside the store directory.
const (
	walFile        = "events.wal"
	checkpointFile = "checkpoint.gob"
)

// walRecord is one WAL entry: the event plus its log sequence number.
// Records are written length-prefixed (uvarint) with a CRC32 trailer so a
// torn tail from a crash is detected and truncated, and LSNs let replay
// skip records already folded into a checkpoint.
type walRecord struct {
	LSN   uint64 `json:"lsn"`
	Event Event  `json:"event"`
}

// checkpointDTO is the gob checkpoint: full engine state as of LSN. Gen is
// the state generation (bumped by Seed/RestoreSnapshot); old checkpoints
// without the field decode as 0, which is still a valid generation.
type checkpointDTO struct {
	LSN   uint64
	Gen   uint64
	State dto
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Dir is the WAL/checkpoint directory. Empty means memory-only: the
	// engine works but nothing persists and Checkpoint is a no-op.
	Dir string
	// SyncEvery fsyncs the WAL every N appends (checkpoint and Close always
	// sync). 0 means 64; negative syncs every append.
	SyncEvery int
	// SegmentBytes rotates the active WAL into a sealed, immutable segment
	// once it grows past this size; sealed segments are what replication
	// streams to followers. 0 means 4 MiB; negative disables size-based
	// rotation (checkpoints still seal the active WAL).
	SegmentBytes int64
	// RetainSegments keeps up to this many sealed segments whose records a
	// checkpoint already covers, so followers can catch up over HTTP
	// instead of re-snapshotting. 0 means 4; negative keeps all.
	RetainSegments int
	// Logf, when set, receives recovery diagnostics.
	Logf func(format string, args ...any)
	// Tracer, when set, records WAL fsyncs and checkpoints as root
	// traces (slow or failing ones survive tail sampling).
	Tracer *obs.Tracer
}

// RecoverReport describes what OpenStore reconstructed.
type RecoverReport struct {
	// CheckpointLSN is the LSN the checkpoint covered (0 = no checkpoint).
	CheckpointLSN uint64
	// Replayed is the number of WAL records applied on top.
	Replayed uint64
	// SkippedLSN counts WAL records the checkpoint already covered.
	SkippedLSN uint64
	// ApplyErrors counts replayed events the engine rejected.
	ApplyErrors uint64
	// TruncatedBytes is the torn tail dropped from the WAL (0 = clean).
	TruncatedBytes int64
}

// StoreMetrics is the persistence half of the /metrics livestate gauges.
type StoreMetrics struct {
	// LSN is the last assigned log sequence number.
	LSN uint64
	// CheckpointLSN is the LSN covered by the newest checkpoint; the
	// difference to LSN is the WAL lag (records lost if the WAL vanished).
	CheckpointLSN uint64
	// WALBytes is the current active WAL file size.
	WALBytes int64
	// Checkpoints counts checkpoints taken since open.
	Checkpoints uint64
	// Persistent is false for memory-only stores.
	Persistent bool
	// DurableLSN is the newest fsynced LSN — the replication horizon.
	DurableLSN uint64
	// Gen is the state generation (bumped by Seed/RestoreSnapshot).
	Gen uint64
	// Segments counts sealed WAL segments retained on disk.
	Segments int
	// SegmentBytes is the total size of the sealed segments.
	SegmentBytes int64
	// OldestLSN is the first LSN still readable from disk; followers
	// behind it must re-snapshot.
	OldestLSN uint64
}

// Store couples an Engine with a write-ahead log and periodic gob
// checkpoints: every applied event is logged first, and recovery is
// checkpoint + WAL tail. Safe for concurrent use.
type Store struct {
	opt StoreOptions
	eng *Engine

	mu          sync.Mutex
	wal         *os.File
	walW        *bufio.Writer
	lsn         uint64
	ckptLSN     uint64
	walBytes    int64
	unsynced    int
	checkpoints uint64
	recovered   RecoverReport
	closed      bool

	// Replication state: gen counts wholesale engine replacements,
	// durableLSN/syncedBytes bound what ReadWAL may serve, activeFirst is
	// the first LSN in the active WAL file, segs indexes sealed segments,
	// and updated wakes long-poll waiters when durable records arrive.
	gen         uint64
	durableLSN  uint64
	syncedBytes int64
	activeFirst uint64
	segs        []segInfo
	updated     chan struct{}
}

// OpenStore opens (or creates) a store, recovering engine state from the
// newest checkpoint plus the WAL tail when Dir holds any.
func OpenStore(opt StoreOptions) (*Store, error) {
	if opt.SyncEvery == 0 {
		opt.SyncEvery = 64
	}
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = 4 << 20
	}
	if opt.RetainSegments == 0 {
		opt.RetainSegments = 4
	}
	s := &Store{opt: opt, eng: NewEngine(), updated: make(chan struct{})}
	if opt.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("livestate: store dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("livestate: open wal: %w", err)
	}
	// Drop any torn tail so appends continue from the last good record.
	size := s.walBytes
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("livestate: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	s.wal = f
	s.walW = bufio.NewWriter(f)
	// Everything recovered is on disk already, so it is all durable.
	s.durableLSN = s.lsn
	s.syncedBytes = s.walBytes
	return s, nil
}

func (s *Store) walPath() string        { return filepath.Join(s.opt.Dir, walFile) }
func (s *Store) checkpointPath() string { return filepath.Join(s.opt.Dir, checkpointFile) }

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// recover loads the checkpoint (if any), replays the sealed segments in
// LSN order, then replays the active WAL tail.
func (s *Store) recover() error {
	if f, err := os.Open(s.checkpointPath()); err == nil {
		var ck checkpointDTO
		derr := gob.NewDecoder(f).Decode(&ck)
		f.Close()
		if derr != nil {
			// A half-written checkpoint never replaces the old one (tmp +
			// rename), so a corrupt file here is unexpected — refuse to
			// silently start empty.
			return fmt.Errorf("livestate: corrupt checkpoint %s: %w", s.checkpointPath(), derr)
		}
		s.eng.restoreDTO(ck.State)
		s.lsn = ck.LSN
		s.ckptLSN = ck.LSN
		s.gen = ck.Gen
		s.recovered.CheckpointLSN = ck.LSN
	} else if !os.IsNotExist(err) {
		return err
	}

	// Sealed segments were fsynced before sealing, so corruption inside
	// one is external damage; replaying past it would leave a silent hole
	// in the engine state, so refuse to start instead.
	segs, err := listSegments(s.opt.Dir)
	if err != nil {
		return err
	}
	for i := range segs {
		f, err := os.Open(segs[i].path)
		if err != nil {
			return err
		}
		br := bufio.NewReader(f)
		var first, last uint64
		for {
			rec, _, rerr := readWALRecord(br)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				f.Close()
				return fmt.Errorf("livestate: corrupt sealed segment %s: %w", segs[i].path, rerr)
			}
			if first == 0 {
				first = rec.LSN
			}
			last = rec.LSN
			s.replayRecord(rec)
		}
		f.Close()
		if first == 0 {
			// An empty sealed segment cannot happen through rotation;
			// drop the stray file rather than indexing it.
			os.Remove(segs[i].path)
			continue
		}
		segs[i].first, segs[i].last = first, last
		s.segs = append(s.segs, segs[i])
	}

	f, err := os.Open(s.walPath())
	if os.IsNotExist(err) {
		s.activeFirst = s.lsn + 1
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var good int64
	for {
		rec, n, rerr := readWALRecord(br)
		if rerr != nil {
			if rerr != io.EOF {
				s.recovered.TruncatedBytes = walSize(f) - good
				s.logf("livestate: wal %s: dropping torn tail (%d bytes): %v",
					s.walPath(), s.recovered.TruncatedBytes, rerr)
			}
			break
		}
		good += n
		if s.activeFirst == 0 {
			s.activeFirst = rec.LSN
		}
		s.replayRecord(rec)
	}
	s.walBytes = good
	if s.activeFirst == 0 {
		s.activeFirst = s.lsn + 1
	}
	return nil
}

// replayRecord folds one recovered WAL record into the engine, honoring
// the checkpoint's LSN coverage.
func (s *Store) replayRecord(rec walRecord) {
	if rec.LSN <= s.ckptLSN {
		s.recovered.SkippedLSN++
		return
	}
	if err := s.eng.ApplyEvent(rec.Event); err != nil {
		s.recovered.ApplyErrors++
	}
	s.recovered.Replayed++
	if rec.LSN > s.lsn {
		s.lsn = rec.LSN
	}
}

func walSize(f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Recovered returns what OpenStore reconstructed.
func (s *Store) Recovered() RecoverReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Engine returns the live engine (shared, concurrency-safe).
func (s *Store) Engine() *Engine { return s.eng }

// Apply logs the event then applies it to the engine (write-ahead order).
// Events the engine rejects are still logged — replay rejects them
// identically, so recovery stays deterministic — and their error is
// returned for the caller's accounting. The store mutex is held across
// both steps so engine order always matches WAL (LSN) order.
func (s *Store) Apply(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	return s.applyLocked(s.lsn+1, ev)
}

// Sync flushes buffered WAL records and fsyncs, making every event applied
// so far durable. Apply group-commits (every SyncEvery appends), so batch
// ingest paths call this once per batch before acknowledging the batch —
// a crash can then only lose events that were never acknowledged.
func (s *Store) Sync() error {
	if s.opt.Dir == "" {
		// Memory-only store: sync is a no-op; don't emit phantom
		// wal_sync traces on every ingest batch.
		return nil
	}
	tb, root := s.opt.Tracer.StartRoot("wal_sync")
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		err := fmt.Errorf("livestate: store is closed")
		s.opt.Tracer.FinishRoot(tb, root, err)
		return err
	}
	err := s.sync()
	root.SetAttrInt("lsn", int64(s.lsn))
	s.mu.Unlock()
	s.opt.Tracer.FinishRoot(tb, root, err)
	return err
}

// sync flushes and fsyncs the WAL, advancing the durable LSN replication
// is allowed to serve. Caller holds s.mu.
func (s *Store) sync() error {
	if s.walW == nil {
		return nil
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.unsynced = 0
	s.bumpDurableLocked()
	return nil
}

// Seed bulk-loads a trace into the engine and immediately checkpoints, so
// the load survives a restart without being event-logged row by row. The
// state generation bumps: the engine was replaced outside the WAL stream,
// so followers replaying records must re-snapshot.
func (s *Store) Seed(tr *trace.Trace) (SeedReport, error) {
	s.mu.Lock()
	s.gen++
	s.mu.Unlock()
	rep := s.eng.SeedFromTrace(tr)
	if err := s.Checkpoint(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Checkpoint writes the engine state to disk (tmp + rename, fsynced) and
// seals the active WAL into a sealed segment: records at or below the
// checkpoint LSN are subsumed for recovery, but sealed segments are
// retained (up to RetainSegments) so followers can still catch up over
// the WAL instead of re-snapshotting. A crash between the rename and the
// seal is safe — replay skips subsumed records by LSN. No-op for
// memory-only stores.
func (s *Store) Checkpoint() error {
	if s.opt.Dir == "" {
		return nil
	}
	tb, root := s.opt.Tracer.StartRoot("checkpoint")
	err := s.checkpoint(root)
	s.opt.Tracer.FinishRoot(tb, root, err)
	return err
}

func (s *Store) checkpoint(root obs.SpanHandle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	if err := s.sync(); err != nil {
		return err
	}
	root.SetAttrInt("lsn", int64(s.lsn))
	ck := checkpointDTO{LSN: s.lsn, Gen: s.gen, State: s.eng.snapshotDTO()}
	if err := s.writeCheckpointLocked(ck); err != nil {
		return err
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	s.ckptLSN = ck.LSN
	s.checkpoints++
	s.pruneSegmentsLocked()
	return nil
}

// writeCheckpointLocked persists ck via tmp + rename + fsync. Caller holds
// s.mu.
func (s *Store) writeCheckpointLocked(ck checkpointDTO) error {
	tmp := s.checkpointPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("livestate: encode checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.checkpointPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Metrics snapshots the persistence gauges.
func (s *Store) Metrics() StoreMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := StoreMetrics{
		LSN:           s.lsn,
		CheckpointLSN: s.ckptLSN,
		WALBytes:      s.walBytes,
		Checkpoints:   s.checkpoints,
		Persistent:    s.opt.Dir != "",
		DurableLSN:    s.durableLSN,
		Gen:           s.gen,
		Segments:      len(s.segs),
		OldestLSN:     s.oldestLSNLocked(),
	}
	for _, seg := range s.segs {
		m.SegmentBytes += seg.bytes
	}
	return m
}

// Close syncs and closes the WAL. The engine stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.walW == nil {
		return nil
	}
	if err := s.sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// writeWALRecord appends one length-prefixed record:
//
//	uvarint(len(payload)) | payload (JSON walRecord) | crc32(payload) LE
func writeWALRecord(w *bufio.Writer, rec walRecord) (int64, error) {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return 0, err
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:hn]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return 0, err
	}
	return int64(hn + len(payload) + 4), nil
}

// maxWALRecordBytes bounds a single record so a corrupt length prefix
// cannot trigger a giant allocation.
const maxWALRecordBytes = 16 << 20

// readWALRecord reads one record, returning its encoded size. io.EOF means
// a clean end; any other error means a torn or corrupt tail.
func readWALRecord(br *bufio.Reader) (walRecord, int64, error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return walRecord{}, 0, io.EOF
		}
		return walRecord{}, 0, fmt.Errorf("length prefix: %w", err)
	}
	if ln == 0 || ln > maxWALRecordBytes {
		return walRecord{}, 0, fmt.Errorf("implausible record length %d", ln)
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(br, payload); err != nil {
		return walRecord{}, 0, fmt.Errorf("payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return walRecord{}, 0, fmt.Errorf("crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return walRecord{}, 0, fmt.Errorf("crc mismatch")
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, 0, fmt.Errorf("decode: %w", err)
	}
	n := int64(uvarintLen(ln)) + int64(ln) + 4
	return rec, n, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
