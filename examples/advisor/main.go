// Submission advisor: the optimization loop the paper's §V sketches — "users
// optimize their job submissions until they achieve parameters that will
// result in their job running within a desired time frame." Given a required
// core count and wall time, the advisor enumerates equivalent request shapes
// (partition × node layout × padding of the time limit) and ranks them by
// predicted wait.
package main

import (
	"fmt"
	"log"
	"sort"

	trout "repro"
	"repro/internal/trace"
)

// shape is one candidate request for the same underlying work.
type shape struct {
	label     string
	partition string
	cpus      int
	memGB     float64
	nodes     int
	limitMin  int64
}

func main() {
	log.SetFlags(0)

	p := trout.DefaultPipeline(10000, 19)
	p.Model.Classifier.Epochs = 10
	p.Model.Regressor.Epochs = 20
	fmt.Println("training advisor model...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := trout.TrainHoldout(ds, p.Model, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := trout.NewBundle(m, ds, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// The user's actual need: 64 cores for ~2 hours.
	fmt.Println("\nneed: 64 cores, ~2 h of work. Candidate request shapes:")
	candidates := []shape{
		{"shared, exact ask", "shared", 64, 128, 1, 150},
		{"shared, padded limit", "shared", 64, 128, 1, 720},
		{"shared, split 2 nodes", "shared", 64, 128, 2, 150},
		{"wholenode, 1 node", "wholenode", 128, 256, 1, 150},
		{"standby (low tier)", "standby", 64, 128, 1, 150},
		{"debug (high tier)", "debug", 64, 128, 1, 115},
	}

	// Advise at a congested moment so the ranking is interesting.
	at := congestedInstant(tr)
	type advice struct {
		shape
		prob    float64
		minutes float64
		msg     string
	}
	var ranked []advice
	for _, c := range candidates {
		snap := snapshotAt(tr, at, trace.Job{
			ID: -1, User: 5, Partition: c.partition,
			Submit: at, Eligible: at,
			ReqCPUs: c.cpus, ReqMemGB: c.memGB, ReqNodes: c.nodes,
			TimeLimit: c.limitMin * 60, Priority: medianPriority(tr, at),
		})
		pred, err := bundle.PredictSnapshot(snap)
		if err != nil {
			log.Fatal(err)
		}
		est := 0.0
		if pred.Long {
			est = pred.Minutes
		}
		ranked = append(ranked, advice{c, pred.Prob, est, pred.Message(m.Cfg.CutoffMinutes)})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].minutes != ranked[b].minutes {
			return ranked[a].minutes < ranked[b].minutes
		}
		return ranked[a].prob < ranked[b].prob
	})
	fmt.Printf("%-24s %-11s %-9s %s\n", "shape", "partition", "P(long)", "prediction")
	for _, a := range ranked {
		fmt.Printf("%-24s %-11s %8.3f  %s\n", a.label, a.partition, a.prob, a.msg)
	}
	fmt.Printf("\nadvisor pick: %s\n", ranked[0].label)
}

// congestedInstant returns the eligibility time of the longest-waiting job.
func congestedInstant(tr *trout.Trace) int64 {
	best := &tr.Jobs[0]
	for i := range tr.Jobs {
		if tr.Jobs[i].QueueSeconds() > best.QueueSeconds() {
			best = &tr.Jobs[i]
		}
	}
	return best.Eligible
}

// medianPriority estimates a fresh job's priority from the pending queue.
func medianPriority(tr *trout.Trace, at int64) int64 {
	var prios []int64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Eligible <= at && at < j.Start {
			prios = append(prios, j.Priority)
		}
	}
	if len(prios) == 0 {
		return 10000
	}
	sort.Slice(prios, func(a, b int) bool { return prios[a] < prios[b] })
	return prios[len(prios)/2]
}

func snapshotAt(tr *trout.Trace, at int64, target trace.Job) *trout.Snapshot {
	snap := &trout.Snapshot{Now: at, Target: target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch {
		case j.Eligible <= at && at < j.Start:
			snap.Pending = append(snap.Pending, j)
		case j.Start <= at && at < j.End:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	return snap
}
