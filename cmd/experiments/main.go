// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate, printing paper-format rows. The
// recorded outputs live in EXPERIMENTS.md.
//
// Usage:
//
//	experiments -run all -jobs 60000 -seed 1
//	experiments -run fig6,fig8 -jobs 30000
//
// Experiment names: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// classifier regression cutoff leakage smote activation scaling importance
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	trout "repro"
)

var allExperiments = []string{
	"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "classifier", "regression", "cutoff", "leakage",
	"smote", "activation", "scaling", "importance", "shap", "errorbybin",
	"featuregroups", "online", "partitions", "runtimesource", "intervals",
	"calibration", "transfer", "scheduler", "simeta",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run   = flag.String("run", "all", "comma-separated experiment names or 'all'")
		jobs  = flag.Int("jobs", 60000, "trace size")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Int("scale", 1, "cluster scale")
	)
	flag.Parse()

	selected := map[string]bool{}
	if *run == "all" {
		for _, e := range allExperiments {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(e)] = true
		}
	}

	p := trout.DefaultPipeline(*jobs, *seed)
	p.Scale = *scale
	p.Model.Seed = *seed

	fmt.Printf("== pipeline: %d jobs, seed %d, scale %d ==\n", *jobs, *seed, *scale)
	t0 := time.Now()
	e, err := trout.NewExperiment(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace + features ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	type runner struct {
		name string
		fn   func(*trout.Experiment) error
	}
	runners := []runner{
		{"table1", runTable1}, {"table2", runTable2},
		{"fig2", runFig2}, {"fig3", runFig3},
		{"fig4", runFig4}, {"fig5", runFig5},
		{"fig6", runFig6}, {"fig7", runFig7},
		{"fig8", runFig8}, {"fig9", runFig9},
		{"classifier", runClassifier}, {"regression", runRegression},
		{"cutoff", runCutoff}, {"leakage", runLeakage},
		{"smote", runSMOTE}, {"activation", runActivation},
		{"scaling", runScaling}, {"importance", runImportance},
		{"errorbybin", runErrorByBin}, {"featuregroups", runFeatureGroups},
		{"online", runOnline}, {"partitions", runPartitions},
		{"runtimesource", runRuntimeSource}, {"shap", runSHAP},
		{"intervals", runIntervals}, {"calibration", runCalibration},
		{"transfer", runTransfer}, {"scheduler", runScheduler},
		{"simeta", runSimETA},
	}
	for _, r := range runners {
		if !selected[r.name] {
			continue
		}
		start := time.Now()
		fmt.Printf("---- %s ----\n", r.name)
		if err := r.fn(e); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("(%s in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}

func runTable1(e *trout.Experiment) error {
	one := e.RunTableOne()
	fmt.Println("Table I — historic job statistics (paper: req 12.55 h mean / 4 h median; runtime 1.9 h mean; 87% short; 68.95% shared; 15% wall-time usage)")
	one.Print(os.Stdout)
	return nil
}

func runTable2(e *trout.Experiment) error {
	fmt.Println("Table II — engineered features (33 columns):")
	fmt.Printf("%-28s %12s %12s %12s %12s\n", "Feature", "Max", "Mean", "Median", "StdDev")
	for _, r := range e.RunTableTwo() {
		fmt.Printf("%-28s %12.2f %12.2f %12.2f %12.2f\n", r.Name, r.Max, r.Mean, r.Median, r.StdDev)
	}
	return nil
}

func runFig2(e *trout.Experiment) error {
	fmt.Println("Fig 2 — queue-time density (log-spaced bins, minutes):")
	bins := e.RunFigTwo(24)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	for _, b := range bins {
		bar := strings.Repeat("#", int(60*float64(b.Count)/float64(total)+0.5))
		fmt.Printf("[%9.2f, %9.2f) %7d %s\n", b.Lo, b.Hi, b.Count, bar)
	}
	return nil
}

func runFig3(e *trout.Experiment) error {
	fmt.Println("Fig 3 — time-series CV layout (5 folds, test = 1/6):")
	splits, err := e.RunFigThree()
	if err != nil {
		return err
	}
	for _, s := range splits {
		fmt.Printf("fold %d: train [%6d, %6d)  test [%6d, %6d)\n",
			s.Fold, s.TrainStart, s.TrainEnd, s.TestStart, s.TestEnd)
	}
	return nil
}

func runScatterFig(e *trout.Experiment, fold int, paperNote string) error {
	sc, err := e.RunScatter(fold)
	if err != nil {
		return err
	}
	fmt.Printf("fold %d long-job scatter: n=%d  Pearson r=%.4f  MAPE=%.2f%%  (%s)\n",
		sc.Fold, sc.N, sc.Pearson, sc.MAPE, paperNote)
	// Print a compact 2-D density: log-binned actual vs predicted.
	fmt.Println("  actual(min) -> mean predicted(min) [count]")
	type bucket struct {
		sum   float64
		count int
	}
	byDecade := map[int]*bucket{}
	for i, a := range sc.Actual {
		d := 0
		for v := a; v >= 10; v /= 10 {
			d++
		}
		b := byDecade[d]
		if b == nil {
			b = &bucket{}
			byDecade[d] = b
		}
		b.sum += sc.Pred[i]
		b.count++
	}
	var ds []int
	for d := range byDecade {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		b := byDecade[d]
		lo := 1.0
		for i := 0; i < d; i++ {
			lo *= 10
		}
		fmt.Printf("  [%8.0f, %8.0f): mean pred %10.1f  [n=%d]\n", lo, lo*10, b.sum/float64(b.count), b.count)
	}
	return nil
}

func runFig4(e *trout.Experiment) error {
	fmt.Println("Fig 4 — predicted vs actual, fold 4 (paper: visibly linear trend):")
	return runScatterFig(e, 4, "paper fold 4: linear trend")
}

func runFig5(e *trout.Experiment) error {
	fmt.Println("Fig 5 — predicted vs actual, fold 5 (paper: r = 0.7532):")
	return runScatterFig(e, 5, "paper fold 5: r = 0.7532")
}

func runComparisonFig(e *trout.Experiment, fold int, metric string) error {
	scores, err := e.RunComparison(fold, trout.CompareConfig{Seed: e.Pipeline.Seed})
	if err != nil {
		return err
	}
	for _, s := range scores {
		switch metric {
		case "mape":
			fmt.Printf("  %-18s avg percent error %8.2f%%  (n=%d)\n", s.Model, s.MAPE, s.N)
		case "within":
			fmt.Printf("  %-18s within 100%% error %7.2f%%  (n=%d)\n", s.Model, 100*s.Within100, s.N)
		}
	}
	return nil
}

func runFig6(e *trout.Experiment) error {
	fmt.Println("Fig 6 — average percent error by model, fold 4 (paper: NN lowest):")
	return runComparisonFig(e, 4, "mape")
}

func runFig7(e *trout.Experiment) error {
	fmt.Println("Fig 7 — average percent error by model, fold 5 (paper: NN lowest):")
	return runComparisonFig(e, 5, "mape")
}

func runFig8(e *trout.Experiment) error {
	fmt.Println("Fig 8 — % predictions within 100% error, fold 4 (paper: NN highest):")
	return runComparisonFig(e, 4, "within")
}

func runFig9(e *trout.Experiment) error {
	fmt.Println("Fig 9 — % predictions within 100% error, fold 5 (paper: NN highest):")
	return runComparisonFig(e, 5, "within")
}

func runClassifier(e *trout.Experiment) error {
	res, err := e.RunClassifier()
	if err != nil {
		return err
	}
	fmt.Printf("classifier on most recent 20%% (paper: 90.48%%, similar per-class): accuracy %.2f%%  balanced %.2f%%  precision %.2f%%  recall %.2f%%  F1 %.2f%%  AUC %.4f  (n=%d)\n",
		100*res.Accuracy, 100*res.BalancedAccuracy, 100*res.Precision, 100*res.Recall, 100*res.F1, res.AUC, res.N)
	return nil
}

func runRegression(e *trout.Experiment) error {
	fms, lastThree, err := e.RunRegressionFolds()
	if err != nil {
		return err
	}
	fmt.Println("regression MAPE per fold (paper last three: 69.99 / 90.87 / 131.18 → mean 97.57%):")
	for _, f := range fms {
		fmt.Printf("  fold %d: MAPE %8.2f%%  Pearson %.4f  within-100%% %.2f%%  MAE %.1f min  (n=%d)\n",
			f.Fold, f.MAPE, f.Pearson, 100*f.Within100, f.MAE, f.N)
	}
	fmt.Printf("  mean MAPE over final three folds: %.2f%%\n", lastThree)
	return nil
}

func runCutoff(e *trout.Experiment) error {
	res, err := e.RunCutoffAblation([]float64{5, 10, 30})
	if err != nil {
		return err
	}
	fmt.Println("cutoff ablation (paper: 5 min ≈ 2× the MAPE of 10 min; 30 min marginal):")
	for _, r := range res {
		fmt.Printf("  cutoff %5.0f min: regression MAPE %8.2f%%  classifier balanced acc %.2f%%  (n=%d)\n",
			r.CutoffMinutes, r.MAPE, 100*r.ClassifierBA, r.N)
	}
	return nil
}

func runLeakage(e *trout.Experiment) error {
	res, err := e.RunLeakageAblation()
	if err != nil {
		return err
	}
	fmt.Printf("leakage ablation (paper: shuffling ≈ doubled apparent performance):\n")
	fmt.Printf("  time-ordered split MAPE: %8.2f%%\n", res.TimeMAPE)
	fmt.Printf("  shuffled split MAPE:     %8.2f%%\n", res.ShuffledMAPE)
	fmt.Printf("  apparent improvement from shuffling: %.2f×\n", res.Ratio)
	return nil
}

func runSMOTE(e *trout.Experiment) error {
	res, err := e.RunSMOTEAblation()
	if err != nil {
		return err
	}
	fmt.Println("SMOTE ablation (classifier, most recent 20%):")
	fmt.Printf("  with SMOTE:    accuracy %.2f%%  balanced %.2f%%  recall %.2f%%\n",
		100*res.WithSMOTE.Accuracy, 100*res.WithSMOTE.BalancedAccuracy, 100*res.WithSMOTE.Recall)
	fmt.Printf("  without SMOTE: accuracy %.2f%%  balanced %.2f%%  recall %.2f%%\n",
		100*res.WithoutSMOTE.Accuracy, 100*res.WithoutSMOTE.BalancedAccuracy, 100*res.WithoutSMOTE.Recall)
	return nil
}

func runActivation(e *trout.Experiment) error {
	res, err := e.RunActivationAblation()
	if err != nil {
		return err
	}
	fmt.Println("activation / batch-norm ablation (paper: ELU marginally best; batch-norm rejected):")
	for _, r := range res {
		fmt.Printf("  %-14s MAPE %8.2f%%  (n=%d)\n", r.Name, r.MAPE, r.N)
	}
	return nil
}

func runScaling(e *trout.Experiment) error {
	res, err := e.RunScalingAblation()
	if err != nil {
		return err
	}
	fmt.Println("scaling ablation (paper: natural log chosen; min-max/Box-Cox no benefit):")
	for _, r := range res {
		fmt.Printf("  %-10s MAPE %8.2f%%  (n=%d)\n", r.Name, r.MAPE, r.N)
	}
	return nil
}

func runErrorByBin(e *trout.Experiment) error {
	bins, err := e.RunErrorByBin()
	if err != nil {
		return err
	}
	fmt.Println("regression error by actual queue-time decade (paper: proportionate accuracy across periods):")
	for _, b := range bins {
		fmt.Printf("  [%8.0f, %8.0f) min: MAPE %8.2f%%  within-100%% %6.2f%%  (n=%d)\n",
			b.LoMinutes, b.HiMinutes, b.MAPE, 100*b.Within100, b.N)
	}
	return nil
}

func runFeatureGroups(e *trout.Experiment) error {
	res, err := e.RunFeatureGroupAblation()
	if err != nil {
		return err
	}
	fmt.Println("feature-group ablation (regressor MAPE with the group zeroed; 'none' = full model):")
	for _, r := range res {
		fmt.Printf("  drop %-22s MAPE %8.2f%%  (n=%d)\n", r.Dropped, r.MAPE, r.N)
	}
	return nil
}

func runOnline(e *trout.Experiment) error {
	res, err := e.RunOnlineAdaptation(5)
	if err != nil {
		return err
	}
	fmt.Println("online adaptation (§V future work — fine-tune on fresh 20% before testing on newest 20%):")
	fmt.Printf("  stale model:   MAPE %8.2f%%  classifier balanced acc %.2f%%\n", res.StaleMAPE, 100*res.StaleClassBA)
	fmt.Printf("  updated model: MAPE %8.2f%%  classifier balanced acc %.2f%%  (n=%d)\n", res.UpdatedMAPE, 100*res.UpdatedClassBA, res.N)
	return nil
}

func runSimETA(e *trout.Experiment) error {
	res, err := e.RunSchedulerETA(300)
	if err != nil {
		return err
	}
	fmt.Println("forward-simulation ETA baseline vs TROUT (long holdout jobs):")
	fmt.Printf("  scheduler simulation: MAPE %8.2f%%  Pearson %.4f\n", res.SimMAPE, res.SimPearson)
	fmt.Printf("  TROUT regression:     MAPE %8.2f%%  Pearson %.4f  (n=%d)\n", res.TroutMAPE, res.TroutPearson, res.N)
	return nil
}

func runScheduler(e *trout.Experiment) error {
	res, err := e.RunSchedulerAblation()
	if err != nil {
		return err
	}
	fmt.Println("scheduler-policy ablation (trace shape + model fit per variant):")
	for _, r := range res {
		fmt.Printf("  %-30s short %.3f  mean queue %8.1f min  MAPE %8.2f%%  cls BA %.2f%%\n",
			r.Name, r.ShortFraction, r.MeanQueueMin, r.MAPE, 100*r.ClassBA)
	}
	return nil
}

func runTransfer(e *trout.Experiment) error {
	res, err := e.RunTransfer()
	if err != nil {
		return err
	}
	fmt.Println("transferability (§V: retrain for a different HPC system):")
	fmt.Printf("  home cluster:            MAPE %8.2f%%  classifier balanced acc %.2f%%\n", res.SourceMAPE, 100*res.SourceBA)
	fmt.Printf("  foreign, zero-shot:      MAPE %8.2f%%  classifier balanced acc %.2f%%\n", res.ZeroShotMAPE, 100*res.ZeroShotBA)
	fmt.Printf("  foreign, retrained:      MAPE %8.2f%%  classifier balanced acc %.2f%%  (n=%d)\n", res.RetrainedMAPE, 100*res.RetrainedBA, res.N)
	return nil
}

func runCalibration(e *trout.Experiment) error {
	res, err := e.RunCalibration(10)
	if err != nil {
		return err
	}
	fmt.Printf("classifier reliability diagram (n=%d, ECE %.4f):\n", res.N, res.ECE)
	for _, b := range res.Bins {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("  P(long) in [%.1f, %.1f): mean pred %.3f  empirical %.3f  (n=%d)\n",
			b.LoProb, b.HiProb, b.MeanPred, b.FracPositive, b.Count)
	}
	return nil
}

func runIntervals(e *trout.Experiment) error {
	res, err := e.RunIntervals()
	if err != nil {
		return err
	}
	fmt.Printf("prediction intervals (q%.0f–q%.0f band on long jobs):\n",
		100*res.Taus[0], 100*res.Taus[len(res.Taus)-1])
	fmt.Printf("  empirical coverage %.2f%% (nominal %.0f%%)  mean width %.1f min  (n=%d)\n",
		100*res.Coverage, 100*res.Nominal, res.MeanWidth, res.N)
	return nil
}

func runSHAP(e *trout.Experiment) error {
	rows, err := e.RunSHAP(15, 600)
	if err != nil {
		return err
	}
	fmt.Println("Kernel SHAP mean-|φ| (the paper's feature-pruning signal), top 15:")
	for i, r := range rows {
		if i >= 15 {
			break
		}
		fmt.Printf("  %-28s %.4f\n", r.Feature, r.MeanAbs)
	}
	return nil
}

func runPartitions(e *trout.Experiment) error {
	res, err := e.RunPartitionBreakdown()
	if err != nil {
		return err
	}
	fmt.Println("per-partition holdout performance (paper §V: shared dominance may mask small-queue behavior):")
	for _, r := range res {
		fmt.Printf("  %-12s %6d jobs (%5d long): MAPE %8.2f%%  classifier balanced acc %.2f%%\n",
			r.Partition, r.Jobs, r.LongJobs, r.MAPE, 100*r.ClassBA)
	}
	return nil
}

func runRuntimeSource(e *trout.Experiment) error {
	res, err := e.RunRuntimeSourceAblation()
	if err != nil {
		return err
	}
	fmt.Println("runtime-feature source ablation (paper §V: a better runtime model as future work):")
	for _, r := range res {
		fmt.Printf("  %-10s MAPE %8.2f%%  (n=%d)\n", r.Source, r.MAPE, r.N)
	}
	return nil
}

func runImportance(e *trout.Experiment) error {
	imps, err := e.RunFeatureImportance(2000)
	if err != nil {
		return err
	}
	fmt.Println("permutation importance (SHAP stand-in), top 15:")
	for i, im := range imps {
		if i >= 15 {
			break
		}
		fmt.Printf("  %-28s %+.4f\n", im.Feature, im.Score)
	}
	return nil
}
