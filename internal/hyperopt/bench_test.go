package hyperopt

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// trainLikeObjective imitates a small training run: per-trial seeded noise
// plus budget-proportional compute, so the serial/parallel comparison below
// reflects search orchestration, not objective quirks.
func trainLikeObjective(tr *Trial, budget int) float64 {
	rng := rand.New(rand.NewSource(int64(tr.ID)))
	s := 0.0
	for i := 0; i < budget*20000; i++ {
		s += rng.Float64()
	}
	d := tr.Float("x") - 3
	return d*d + s*1e-12
}

// BenchmarkHyperoptSearch measures the successive-halving search loop,
// serial vs worker-pool, on a training-shaped objective. Feeds
// BENCH_train.json via `make bench-json`.
func BenchmarkHyperoptSearch(b *testing.B) {
	space := []Param{
		Uniform("x", -10, 10),
		LogUniform("lr", 1e-5, 1e-1),
		IntRange("layers", 1, 4),
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Search(Config{
					Trials: 27, Seed: 21, Workers: workers,
					Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3,
				}, space, trainLikeObjective)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best == nil {
					b.Fatal("no best trial")
				}
			}
		})
	}
}
