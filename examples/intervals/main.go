// Prediction intervals: extends Algorithm 1's point estimate with a
// q10–q90 uncertainty band from pinball-loss quantile regressors — the
// honest answer for the "massive outliers" the paper's point model cannot
// pin down (§V). For a handful of held-out long jobs the example prints
// "expect between LO and HI minutes" next to the point prediction and the
// truth, then reports the band's empirical coverage.
package main

import (
	"fmt"
	"log"

	trout "repro"
	"repro/internal/core"
	"repro/internal/tscv"
)

func main() {
	log.SetFlags(0)

	p := trout.DefaultPipeline(10000, 77)
	p.Model.Classifier.Epochs = 8
	p.Model.Regressor.Epochs = 20
	fmt.Println("building dataset and training point + quantile models...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
	if err != nil {
		log.Fatal(err)
	}
	point, err := core.Train(ds, fold.Train, p.Model)
	if err != nil {
		log.Fatal(err)
	}
	quant, err := trout.TrainQuantileModel(ds, fold.Train, p.Model, []float64{0.1, 0.5, 0.9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nheld-out long jobs — point estimate vs 80% interval vs truth:")
	shown := 0
	for _, i := range fold.Test {
		if ds.QueueMinutes[i] < p.Model.CutoffMinutes {
			continue
		}
		iv := quant.Interval(ds.X[i])
		fmt.Printf("  job %-6d point %7.0f min   band [%6.0f, %7.0f]   actual %7.0f min\n",
			ds.Jobs[i].ID, point.RegressMinutes(ds.X[i]), iv[0], iv[2], ds.QueueMinutes[i])
		shown++
		if shown >= 8 {
			break
		}
	}

	cov, width, n := quant.Coverage(ds, fold.Test)
	fmt.Printf("\nband quality over %d long jobs: %.1f%% inside the nominal-80%% band, mean width %.0f min\n",
		n, 100*cov, width)
}
