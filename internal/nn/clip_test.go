package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestClipGradientsRescales(t *testing.T) {
	g1 := tensor.FromRows([][]float64{{3, 0}})
	g2 := tensor.FromRows([][]float64{{0, 4}})
	params := []Param{
		{Value: tensor.New(1, 2), Grad: g1},
		{Value: tensor.New(1, 2), Grad: g2},
	}
	// Global norm is 5; clip to 1 → scale by 0.2.
	clipGradients(params, 1)
	if math.Abs(g1.At(0, 0)-0.6) > 1e-12 || math.Abs(g2.At(0, 1)-0.8) > 1e-12 {
		t.Fatalf("clipped grads %v %v", g1, g2)
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", math.Sqrt(sq))
	}
}

func TestClipGradientsNoOpWithinNorm(t *testing.T) {
	g := tensor.FromRows([][]float64{{0.3, 0.4}})
	clipGradients([]Param{{Value: tensor.New(1, 2), Grad: g}}, 1)
	if g.At(0, 0) != 0.3 || g.At(0, 1) != 0.4 {
		t.Fatal("in-norm gradient was modified")
	}
	clipGradients([]Param{{Value: tensor.New(1, 2), Grad: g}}, 0)
	if g.At(0, 0) != 0.3 {
		t.Fatal("ClipNorm=0 must disable clipping")
	}
}

// TestClippedTrainingStillConverges: clipping must not break optimization.
func TestClippedTrainingStillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	net := NewNetwork(rng, DenseSpec(1, 1))
	x := tensor.New(32, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y.Set(i, 0, 4*v)
	}
	tr := Trainer{Net: net, Opt: NewAdam(0.05), Cfg: TrainConfig{
		Loss: MSE, Epochs: 400, BatchSize: 32, Workers: 1, Seed: 1, ClipNorm: 0.5}}
	tr.Fit(x, y)
	if w := net.Layers[0].(*Dense).W.At(0, 0); math.Abs(w-4) > 0.1 {
		t.Fatalf("clipped training w = %v, want ≈4", w)
	}
}

// TestClipTamesOutlierGradient: with a catastrophic outlier under MSE, the
// first update without clipping is far larger than with clipping.
func TestClipTamesOutlierGradient(t *testing.T) {
	build := func() (*Network, *tensor.Matrix, *tensor.Matrix) {
		rng := rand.New(rand.NewSource(31))
		net := NewNetwork(rng, DenseSpec(1, 1))
		x := tensor.FromRows([][]float64{{1}, {1e4}}) // outlier input
		y := tensor.FromRows([][]float64{{1}, {1e6}})
		return net, x, y
	}
	step := func(clip float64) float64 {
		net, x, y := build()
		before := net.Layers[0].(*Dense).W.At(0, 0)
		tr := Trainer{Net: net, Opt: NewSGD(1e-6, 0), Cfg: TrainConfig{
			Loss: MSE, Epochs: 1, BatchSize: 2, Workers: 1, Seed: 2, ClipNorm: clip}}
		tr.Fit(x, y)
		return math.Abs(net.Layers[0].(*Dense).W.At(0, 0) - before)
	}
	unclipped := step(0)
	clipped := step(1)
	if clipped >= unclipped {
		t.Fatalf("clipping did not shrink the outlier step: %v vs %v", clipped, unclipped)
	}
}

func TestLRDecaySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	net := NewNetwork(rng, DenseSpec(1, 1))
	opt := NewAdam(0.1)
	x := tensor.New(8, 1)
	y := tensor.New(8, 1)
	tr := Trainer{Net: net, Opt: opt, Cfg: TrainConfig{
		Loss: MSE, Epochs: 5, BatchSize: 8, Workers: 1, Seed: 1, LRDecay: 0.5}}
	tr.Fit(x, y)
	want := 0.1 * math.Pow(0.5, 5)
	if math.Abs(opt.LR()-want) > 1e-12 {
		t.Fatalf("LR after decay = %v, want %v", opt.LR(), want)
	}
}

func TestAdamWShrinksUnusedWeights(t *testing.T) {
	// With zero gradients, AdamW decay must still shrink weights; plain
	// Adam must not.
	run := func(decay float64) float64 {
		rng := rand.New(rand.NewSource(61))
		net := NewNetwork(rng, DenseSpec(1, 1))
		d := net.Layers[0].(*Dense)
		d.W.Set(0, 0, 1)
		opt := NewAdamW(0.1, decay)
		// Ten steps with zero gradient.
		for i := 0; i < 10; i++ {
			opt.Step(net.Params())
		}
		return d.W.At(0, 0)
	}
	if w := run(0); w != 1 {
		t.Fatalf("Adam with zero grad moved weight to %v", w)
	}
	if w := run(0.5); w >= 1 {
		t.Fatalf("AdamW did not decay weight: %v", w)
	}
}

func TestAdamWStillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	net := NewNetwork(rng, DenseSpec(1, 1))
	x := tensor.New(32, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y.Set(i, 0, 2*v)
	}
	tr := Trainer{Net: net, Opt: NewAdamW(0.05, 1e-3), Cfg: TrainConfig{
		Loss: MSE, Epochs: 300, BatchSize: 32, Workers: 1, Seed: 2}}
	tr.Fit(x, y)
	if w := net.Layers[0].(*Dense).W.At(0, 0); math.Abs(w-2) > 0.1 {
		t.Fatalf("AdamW fit w = %v, want ≈2", w)
	}
}
