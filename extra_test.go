package trout_test

import (
	"math"
	"strings"
	"testing"

	trout "repro"
	"repro/internal/core"
	"repro/internal/tscv"
)

func TestErrorByBin(t *testing.T) {
	e := sharedExperiment(t)
	bins, err := e.RunErrorByBin()
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	total := 0
	for _, b := range bins {
		if b.HiMinutes != b.LoMinutes*10 {
			t.Fatalf("bad decade [%v, %v)", b.LoMinutes, b.HiMinutes)
		}
		if math.IsNaN(b.MAPE) {
			t.Fatal("NaN bin MAPE")
		}
		total += b.N
	}
	if total == 0 {
		t.Fatal("bins cover no jobs")
	}
}

func TestFeatureGroupsCoverAllColumns(t *testing.T) {
	seen := map[int]bool{}
	for _, g := range trout.FeatureGroups() {
		if len(g.Columns) == 0 {
			t.Fatalf("group %q resolves no columns", g.Name)
		}
		for _, c := range g.Columns {
			if seen[c] {
				t.Fatalf("column %d in two groups", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != len(trout.FeatureNames) {
		t.Fatalf("groups cover %d of %d columns", len(seen), len(trout.FeatureNames))
	}
}

func TestFeatureGroupAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunFeatureGroupAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Full model + 7 groups.
	if len(res) != 8 {
		t.Fatalf("%d ablation rows", len(res))
	}
	if res[0].Dropped != "none" {
		t.Fatal("first row must be the full model")
	}
	for _, r := range res {
		if math.IsNaN(r.MAPE) || r.N == 0 {
			t.Fatalf("degenerate ablation row %+v", r)
		}
	}
}

func TestOnlineAdaptation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunOnlineAdaptation(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no test jobs")
	}
	if math.IsNaN(res.StaleMAPE) || math.IsNaN(res.UpdatedMAPE) {
		t.Fatal("NaN MAPE")
	}
	// Fine-tuning must actually change the model.
	if res.StaleMAPE == res.UpdatedMAPE && res.StaleClassBA == res.UpdatedClassBA {
		t.Fatal("ContinueTraining changed nothing")
	}
}

func TestContinueTrainingErrors(t *testing.T) {
	e := sharedExperiment(t)
	m, fold, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ContinueTraining(e.Data, fold.Test[:3], 2); err == nil {
		t.Fatal("tiny update slice accepted")
	}
	if err := m.ContinueTraining(e.Data, fold.Test, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestContinueTrainingMovesTowardFreshData(t *testing.T) {
	// Train on the oldest half, then fine-tune heavily on the newest
	// quarter; loss on that fresh window must improve.
	e := sharedExperiment(t)
	n := e.Data.Len()
	trainIdx := make([]int, n/2)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	fresh := make([]int, n/4)
	for i := range fresh {
		fresh[i] = n - n/4 + i
	}
	m, err := core.Train(e.Data, trainIdx, e.Pipeline.Model)
	if err != nil {
		t.Fatal(err)
	}
	// Score in the space the update optimizes: mean |log1p(pred) −
	// log1p(actual)| over the window's long jobs.
	logMAE := func() float64 {
		var s float64
		n := 0
		for _, i := range fresh {
			if e.Data.QueueMinutes[i] < m.Cfg.CutoffMinutes {
				continue
			}
			d := math.Log1p(m.RegressMinutes(e.Data.X[i])) - math.Log1p(e.Data.QueueMinutes[i])
			s += math.Abs(d)
			n++
		}
		return s / float64(n)
	}
	before := logMAE()
	if err := m.ContinueTraining(e.Data, fresh, 40); err != nil {
		t.Fatal(err)
	}
	after := logMAE()
	// Trained on the evaluation window itself: the objective must drop.
	if after >= before {
		t.Fatalf("fine-tuning on the window did not reduce log-MAE: %.4f -> %.4f", before, after)
	}
}

func TestTuneRegressor(t *testing.T) {
	e := sharedExperiment(t)
	cfg := e.Pipeline.Model
	res, err := trout.TuneRegressor(e.Data, cfg, trout.TuneConfig{
		Trials: 6, Seed: 3, MinEpochs: 1, MaxEpochs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 6 {
		t.Fatalf("%d trials", res.Trials)
	}
	if res.Pruned == 0 {
		t.Fatal("halving pruned nothing")
	}
	if math.IsNaN(res.BestMAPE) || res.BestMAPE <= 0 {
		t.Fatalf("best MAPE %v", res.BestMAPE)
	}
	if len(res.Best.Regressor.Hidden) < 2 || len(res.Best.Regressor.Hidden) > 4 {
		t.Fatalf("tuned hidden stack %v", res.Best.Regressor.Hidden)
	}
	// Tuned config must train.
	tuned := res.Best
	tuned.Regressor.Epochs = 2
	tuned.Classifier.Epochs = 2
	if _, err := core.Train(e.Data, seqIdx(e.Data.Len()*8/10), tuned); err != nil {
		t.Fatal(err)
	}
	desc := trout.DescribeConfig(res.Best)
	if !strings.Contains(desc, "regressor") {
		t.Fatalf("DescribeConfig = %q", desc)
	}
}

func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestHoldoutRecentReexport(t *testing.T) {
	// tscv is internal; the public API goes through TrainHoldout, but the
	// Fold alias must be usable.
	f, err := tscv.HoldoutRecent(100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var pub trout.Fold = f
	if len(pub.Test) != 20 {
		t.Fatal("alias broken")
	}
}

func TestPartitionBreakdown(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunPartitionBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 3 {
		t.Fatalf("only %d partitions in breakdown", len(res))
	}
	total := 0
	for _, r := range res {
		total += r.Jobs
		if r.ClassBA < 0 || r.ClassBA > 1 {
			t.Fatalf("bad balanced accuracy %v", r.ClassBA)
		}
	}
	// Partition rows must cover the whole holdout.
	if total != e.Data.Len()/5 {
		t.Fatalf("breakdown covers %d jobs, holdout is %d", total, e.Data.Len()/5)
	}
	// Sorted by name.
	for i := 1; i < len(res); i++ {
		if res[i].Partition < res[i-1].Partition {
			t.Fatal("breakdown not sorted")
		}
	}
}

func TestRuntimeSourceAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunRuntimeSourceAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d sources", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Source] = true
		if math.IsNaN(r.MAPE) || r.N == 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
	for _, want := range []string{"forest", "oracle", "requested"} {
		if !names[want] {
			t.Fatalf("missing source %s", want)
		}
	}
}

func TestRunSHAP(t *testing.T) {
	e := sharedExperiment(t)
	rows, err := e.RunSHAP(5, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(trout.FeatureNames) {
		t.Fatalf("%d SHAP rows", len(rows))
	}
	for i, r := range rows {
		if math.IsNaN(r.MeanAbs) || r.MeanAbs < 0 {
			t.Fatalf("bad SHAP score %+v", r)
		}
		if i > 0 && r.MeanAbs > rows[i-1].MeanAbs {
			t.Fatal("SHAP rows not sorted")
		}
	}
	// The constant partition features can't matter more than everything
	// else combined; at minimum the top feature must have nonzero score.
	if rows[0].MeanAbs == 0 {
		t.Fatal("all SHAP scores are zero")
	}
}

func TestRunIntervals(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunIntervals()
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no long jobs")
	}
	if res.Coverage < 0 || res.Coverage > 1 {
		t.Fatalf("coverage %v", res.Coverage)
	}
	if res.MeanWidth <= 0 {
		t.Fatalf("width %v", res.MeanWidth)
	}
	if res.Nominal != 0.8 {
		t.Fatalf("nominal %v", res.Nominal)
	}
}

func TestTrainQuantileModelPublic(t *testing.T) {
	e := sharedExperiment(t)
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Pipeline.Model
	cfg.Regressor.Epochs = 5
	qm, err := trout.TrainQuantileModel(e.Data, fold.Train, cfg, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	iv := qm.Interval(e.Data.X[fold.Test[0]])
	if len(iv) != 2 || iv[0] > iv[1] {
		t.Fatalf("interval %v", iv)
	}
}

func TestRunCalibration(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunCalibration(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 10 || res.N == 0 {
		t.Fatalf("calibration %d bins n=%d", len(res.Bins), res.N)
	}
	if res.ECE < 0 || res.ECE > 1 {
		t.Fatalf("ECE %v", res.ECE)
	}
	total := 0
	for _, b := range res.Bins {
		total += b.Count
	}
	if total != res.N {
		t.Fatalf("bins cover %d of %d", total, res.N)
	}
}

func TestRunTransfer(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunTransfer()
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no foreign test jobs")
	}
	for _, v := range []float64{res.SourceMAPE, res.ZeroShotMAPE, res.RetrainedMAPE} {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("degenerate MAPE in %+v", res)
		}
	}
	for _, v := range []float64{res.SourceBA, res.ZeroShotBA, res.RetrainedBA} {
		if v < 0 || v > 1 {
			t.Fatalf("bad balanced accuracy in %+v", res)
		}
	}
	// Retraining on local history should not be worse than zero-shot on
	// the classifier (the paper's central transfer claim). Allow slack
	// for small-sample noise.
	if res.RetrainedBA < res.ZeroShotBA-0.1 {
		t.Fatalf("retrained classifier (%.3f) much worse than zero-shot (%.3f)",
			res.RetrainedBA, res.ZeroShotBA)
	}
}

func TestRunSchedulerAblation(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunSchedulerAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d variants", len(res))
	}
	for _, r := range res {
		if r.ShortFraction <= 0 || r.ShortFraction > 1 {
			t.Fatalf("short fraction %v for %s", r.ShortFraction, r.Name)
		}
		if math.IsNaN(r.MAPE) || r.MeanQueueMin < 0 {
			t.Fatalf("degenerate variant %+v", r)
		}
	}
	// Removing backfill cannot make queues shorter on average.
	if res[1].MeanQueueMin < res[0].MeanQueueMin*0.8 {
		t.Fatalf("no-backfill mean queue %.1f much below default %.1f",
			res[1].MeanQueueMin, res[0].MeanQueueMin)
	}
}

func TestRunSchedulerETA(t *testing.T) {
	e := sharedExperiment(t)
	res, err := e.RunSchedulerETA(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no jobs simulated")
	}
	if math.IsNaN(res.SimMAPE) || math.IsNaN(res.TroutMAPE) {
		t.Fatalf("NaN in %+v", res)
	}
	if res.SimMAPE <= 0 {
		t.Fatalf("simulation MAPE %v", res.SimMAPE)
	}
}
