package nn

import (
	"math"

	"repro/internal/tensor"
)

// Workspace holds the per-layer activation buffers for an inference forward
// pass, so a steady-state Predict performs no heap allocations: every dense,
// activation, and batch-norm output is written into a buffer that is sized
// once per batch shape and reused afterwards. A workspace belongs to one
// goroutine at a time — acquire one per concurrent caller (the Network's
// internal pool does this for Predict/Predict1) and never share it.
type Workspace struct {
	// in is a reusable matrix header for wrapping a caller's feature slice
	// without allocating (Predict1's path).
	in tensor.Matrix
	// bufs holds one output buffer per layer index; identity layers
	// (inference-mode dropout) leave their slot nil.
	bufs []*tensor.Matrix

	// f32a/f32b are the ping-pong activation buffers for the compiled
	// float32 program (see infer32.go); grown on demand like bufs.
	f32a, f32b []float32
}

// NewWorkspace returns an empty workspace for n's architecture. Buffers are
// allocated lazily on first use and grown only when a larger batch arrives.
func (n *Network) NewWorkspace() *Workspace {
	return &Workspace{bufs: make([]*tensor.Matrix, len(n.Layers))}
}

// buf returns the i-th layer buffer shaped rows x cols, reusing the backing
// array whenever it is big enough.
func (w *Workspace) buf(i, rows, cols int) *tensor.Matrix {
	need := rows * cols
	m := w.bufs[i]
	if m == nil || cap(m.Data) < need {
		m = tensor.New(rows, cols)
		w.bufs[i] = m
		return m
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:need]
	return m
}

// AcquireWorkspace takes a workspace from the network's internal pool (or
// makes one). Callers running explicit batch loops pair it with PredictInto
// and return it with ReleaseWorkspace; casual callers can just use Predict,
// which does this internally.
func (n *Network) AcquireWorkspace() *Workspace {
	if v := n.wsPool.Get(); v != nil {
		ws := v.(*Workspace)
		if len(ws.bufs) == len(n.Layers) {
			return ws
		}
	}
	return n.NewWorkspace()
}

// ReleaseWorkspace returns a workspace to the pool. Any matrix returned by
// PredictInto with this workspace is invalid afterwards.
func (n *Network) ReleaseWorkspace(ws *Workspace) {
	if ws != nil {
		n.wsPool.Put(ws)
	}
}

// PredictInto runs an inference forward pass (no dropout, running batch-norm
// stats) writing every intermediate activation into ws. The returned matrix
// is owned by ws: it is valid until the workspace's next use or release, so
// copy anything that must outlive it. On the default float64 path results
// are bit-identical to Forward(in, false) — the kernels and their
// accumulation order are the same — without its per-layer allocations;
// with EnableFloat32 active the compiled float32 program runs instead
// (see infer32.go for its precision policy).
func (n *Network) PredictInto(ws *Workspace, in *tensor.Matrix) *tensor.Matrix {
	if p := n.f32.Load(); p != nil {
		return p.predictInto(n, ws, in)
	}
	x := in
	for i, l := range n.Layers {
		switch ll := l.(type) {
		case *Dense:
			if x.Cols != ll.In {
				panic("nn: dense input width mismatch")
			}
			out := ws.buf(i, x.Rows, ll.Out)
			tensor.MatMulInto(x, ll.W, out)
			out.AddRowVector(ll.B.Data)
			x = out
		case *Activation:
			out := ws.buf(i, x.Rows, x.Cols)
			for j, v := range x.Data {
				out.Data[j] = activate(ll.Kind, v)
			}
			x = out
		case *Dropout:
			// Inverted dropout is the identity at inference time.
		case *BatchNorm:
			x = ll.inferInto(x, ws.buf(i, x.Rows, x.Cols))
		default:
			// Unknown layer kinds fall back to the allocating path.
			x = l.Forward(x, false)
		}
	}
	return x
}

// inferInto is BatchNorm's inference forward (running statistics) into a
// caller-provided destination, mirroring Forward's arithmetic exactly.
func (b *BatchNorm) inferInto(in, out *tensor.Matrix) *tensor.Matrix {
	if in.Cols != b.Dim {
		panic("nn: batchnorm input width mismatch")
	}
	for i := 0; i < in.Rows; i++ {
		row := in.Row(i)
		or := out.Row(i)
		for j, v := range row {
			xhat := (v - b.RunMean[j]) / math.Sqrt(b.RunVar[j]+b.Eps)
			or[j] = b.Gamma.Data[j]*xhat + b.Beta.Data[j]
		}
	}
	return out
}
