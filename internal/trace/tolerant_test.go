package trace

import (
	"bytes"
	"strings"
	"testing"
)

// tolerantFixture builds a small valid trace plus its CSV and JSONL
// encodings for corruption tests.
func tolerantFixture(t *testing.T) (*Trace, string, string) {
	t.Helper()
	tr := &Trace{}
	for i := 1; i <= 5; i++ {
		tr.Jobs = append(tr.Jobs, Job{
			ID: i, User: i % 2, Partition: "shared", State: StateCompleted,
			Submit: 1000, Eligible: 1000, Start: 1100, End: 1200,
			ReqCPUs: 4, ReqMemGB: 8, ReqNodes: 1, TimeLimit: 3600, Priority: 100,
		})
	}
	var csvBuf, jsonlBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonlBuf); err != nil {
		t.Fatal(err)
	}
	return tr, csvBuf.String(), jsonlBuf.String()
}

func TestReadCSVTolerantCleanInput(t *testing.T) {
	tr, csvText, _ := tolerantFixture(t)
	got, rep, err := ReadCSVTolerant(strings.NewReader(csvText), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != len(tr.Jobs) || rep.Skipped != 0 {
		t.Fatalf("report %+v", rep)
	}
	if len(got.Jobs) != len(tr.Jobs) || got.Jobs[2] != tr.Jobs[2] {
		t.Fatalf("round trip mismatch: %+v", got.Jobs)
	}
}

func TestReadCSVTolerantSkipsCorruptRows(t *testing.T) {
	_, csvText, _ := tolerantFixture(t)
	lines := strings.Split(strings.TrimSpace(csvText), "\n")
	// Corrupt row 2 (garbage ID), truncate row 4, and append noise.
	lines[2] = strings.Replace(lines[2], "2,", "twelve,", 1)
	lines[4] = "3,0,shared"
	lines = append(lines, `"unterminated,quote,garbage`)
	in := strings.Join(lines, "\n")

	got, rep, err := ReadCSVTolerant(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 3 || rep.Skipped != 3 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Errors) != 3 {
		t.Fatalf("errors %+v", rep.Errors)
	}
	ids := []int{}
	for _, j := range got.Jobs {
		ids = append(ids, j.ID)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("surviving IDs %v", ids)
	}
}

func TestReadCSVTolerantBudget(t *testing.T) {
	_, csvText, _ := tolerantFixture(t)
	lines := strings.Split(strings.TrimSpace(csvText), "\n")
	lines[1] = "garbage"
	lines[2] = "more garbage"
	in := strings.Join(lines, "\n")

	if _, rep, err := ReadCSVTolerant(strings.NewReader(in), 1); err == nil {
		t.Fatal("budget of 1 with 2 bad rows must fail")
	} else if rep.Skipped != 2 {
		t.Fatalf("report %+v", rep)
	}
	// Strict mode: any bad row fails.
	if _, _, err := ReadCSVTolerant(strings.NewReader(in), 0); err == nil {
		t.Fatal("strict mode accepted a bad row")
	}
	// Unlimited budget: reads the rest.
	got, rep, err := ReadCSVTolerant(strings.NewReader(in), -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 2 || len(got.Jobs) != 3 {
		t.Fatalf("report %+v jobs %d", rep, len(got.Jobs))
	}
}

func TestReadCSVTolerantHeaderErrors(t *testing.T) {
	if _, _, err := ReadCSVTolerant(strings.NewReader(""), -1); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := ReadCSVTolerant(strings.NewReader("id,user\n1,2\n"), -1); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReadJSONLTolerantSkipsCorruptRows(t *testing.T) {
	tr, _, jsonlText := tolerantFixture(t)
	lines := strings.Split(strings.TrimSpace(jsonlText), "\n")
	lines[1] = `{"id": 2, "partition": truncated`
	lines = append(lines, "", "not json at all")
	in := strings.Join(lines, "\n")

	got, rep, err := ReadJSONLTolerant(strings.NewReader(in), 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 4 || rep.Skipped != 2 {
		t.Fatalf("report %+v", rep)
	}
	if len(got.Jobs) != 4 || got.Jobs[0] != tr.Jobs[0] || got.Jobs[1] != tr.Jobs[2] {
		t.Fatalf("surviving jobs %+v", got.Jobs)
	}
	for _, re := range rep.Errors {
		if re.Line == 0 || re.Err == "" {
			t.Fatalf("unpopulated row error %+v", re)
		}
	}
}

func TestReadJSONLTolerantBudget(t *testing.T) {
	in := "junk1\njunk2\njunk3\n"
	if _, rep, err := ReadJSONLTolerant(strings.NewReader(in), 2); err == nil {
		t.Fatal("budget of 2 with 3 bad rows must fail")
	} else if rep.Skipped != 3 {
		t.Fatalf("report %+v", rep)
	}
	got, rep, err := ReadJSONLTolerant(strings.NewReader(in), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 0 || rep.Skipped != 3 {
		t.Fatalf("jobs %d report %+v", len(got.Jobs), rep)
	}
}

func TestReadJSONLTolerantMatchesStrictOnCleanInput(t *testing.T) {
	tr, _, jsonlText := tolerantFixture(t)
	strict, err := ReadJSONL(strings.NewReader(jsonlText))
	if err != nil {
		t.Fatal(err)
	}
	tolerant, rep, err := ReadJSONLTolerant(strings.NewReader(jsonlText), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Jobs) != len(tolerant.Jobs) || len(tolerant.Jobs) != len(tr.Jobs) {
		t.Fatalf("strict %d tolerant %d", len(strict.Jobs), len(tolerant.Jobs))
	}
	if rep.Skipped != 0 {
		t.Fatalf("report %+v", rep)
	}
	for i := range strict.Jobs {
		if strict.Jobs[i] != tolerant.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}
