package tensor

import "math"

// Fast float32 exponential for the serving-path activations (ELU, sigmoid).
// math.Exp costs ~19ns per call on the reference core; at 64-row batch sizes
// the regressor's ELU stack makes it the single largest line in the profile,
// so the float32 path uses the classic Cephes expf scheme instead: round
// x/ln2 to an integer n, evaluate a degree-6 polynomial on the reduced
// argument, and scale by 2^n through the exponent bits. Max observed error
// is ~2 float32 ulps over [-87, 88] (pinned by TestExp32Accuracy), well
// inside the float32 path's documented tolerance.
//
// The SSE kernel (eluSSE) and the scalar functions here implement the SAME
// sequence of float32 operations in the same order, so lanes computed by
// either are bit-identical; every float32 multiply feeding an add is wrapped
// in an explicit conversion so the compiler can never fuse them into an FMA
// with a different rounding. Any change here must keep
// TestElu32SSEMatchesGo green and must be mirrored in exp32_amd64.s.
const (
	exp32Log2e = float32(1.44269504088896341) // log2(e)
	exp32C1    = float32(0.693359375)         // ln2 high part (exact in float32)
	exp32C2    = float32(-2.12194440e-4)      // ln2 low part
	exp32P0    = float32(1.9875691500e-4)
	exp32P1    = float32(1.3981999507e-3)
	exp32P2    = float32(8.3334519073e-3)
	exp32P3    = float32(4.1665795894e-2)
	exp32P4    = float32(1.6666665459e-1)
	exp32P5    = float32(0.5)
	exp32Lo    = float32(-87) // exp(-87) ~ 1.6e-38, still a normal float32
	exp32Hi    = float32(88)  // exp(88) ~ 1.7e38, still finite in float32
)

// expCore32 evaluates e^x for x already clamped to [exp32Lo, exp32Hi].
// NaN in yields NaN out (the n conversion takes the CVTPS2DQ
// integer-indefinite branch and the polynomial propagates the NaN).
func expCore32(x float32) float32 {
	fn := x * exp32Log2e
	// Match CVTPS2DQ: round to nearest even; NaN and out-of-range inputs
	// produce the integer indefinite 0x80000000.
	var n int32
	if f := float64(fn); f != f || f >= 2147483648 || f < -2147483648 {
		n = math.MinInt32
	} else {
		n = int32(math.RoundToEven(f))
	}
	nf := float32(n)
	// Extended-precision argument reduction: g = x - n*ln2.
	g := x - float32(nf*exp32C1)
	g = g - float32(nf*exp32C2)
	y := exp32P0
	y = float32(y*g) + exp32P1
	y = float32(y*g) + exp32P2
	y = float32(y*g) + exp32P3
	y = float32(y*g) + exp32P4
	y = float32(y*g) + exp32P5
	t := g * g
	y = float32(y * t)
	y = y + g
	y = y + 1
	// Scale by 2^n through the exponent field; int32 addition wraps exactly
	// like the kernel's PADDL on the indefinite branch.
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// Exp32 is e^x in float32, clamped to the finite range [exp32Lo, exp32Hi]
// (below it returns ~1.6e-38 instead of a denormal, above it ~1.7e38
// instead of +Inf). NaN propagates. The clamps are written so NaN takes
// the pass-through branch, matching MINPS/MAXPS with x in source position.
func Exp32(x float32) float32 {
	c := exp32Hi
	if !(x >= exp32Hi) {
		c = x
	}
	g := exp32Lo
	if !(c <= exp32Lo) {
		g = c
	}
	return expCore32(g)
}

// elu32 is the scalar replica of one eluSSE lane: ELU with alpha = 1,
// exp(x)-1 on the non-positive side, identity on the positive side.
// Comparisons mirror the kernel's MINPS/MAXPS/CMPPS-NLE exactly, including
// NaN-in-source pass-through, so NaN features surface as NaN predictions.
func elu32(x float32) float32 {
	xc := float32(0) // min(x, 0), NaN -> x
	if !(x >= 0) {
		xc = x
	}
	g := exp32Lo // max(exp32Lo, xc), NaN -> xc
	if !(xc <= exp32Lo) {
		g = xc
	}
	res := float32(expCore32(g)) - 1
	if !(x <= 0) { // CMPPS NLE blend: positive (or NaN) keeps x
		res = x
	}
	return res
}

// EluInPlace32 applies ELU (alpha = 1) lane-wise over buf. The whole buffer
// is processed branchlessly — callers may pass a padded activation region:
// padding lanes hold exactly +0 and elu32(0) is exactly +0, so the padding
// invariant survives. The SSE kernel handles the 4-lane-aligned prefix and
// the scalar replica the tail; both produce bit-identical lanes.
func EluInPlace32(buf []float32) {
	i := 0
	if haveSSE {
		if m := len(buf) &^ 3; m > 0 {
			eluSSE(&buf[0], int64(m))
			i = m
		}
	}
	for ; i < len(buf); i++ {
		buf[i] = elu32(buf[i])
	}
}
