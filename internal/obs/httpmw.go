package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPOptions wires the Instrument middleware to its sinks. Every field
// is optional: a nil logger disables access logging, nil metrics skip
// their updates — trace-ID propagation always runs.
type HTTPOptions struct {
	// Logger receives one structured access-log record per request
	// (msg "request": trace_id, method, path, status, duration and the
	// request's pipeline spans).
	Logger *slog.Logger
	// Requests counts completed requests; labels {path, code}.
	Requests *CounterVec
	// Latency is the whole-request latency histogram (seconds).
	Latency *Histogram
	// StageLatency receives every pipeline span; label {stage}.
	StageLatency *HistogramVec
	// PathFor maps a request to its metric/log path label (clamping
	// unknown paths bounds label cardinality). Nil uses the URL path.
	PathFor func(*http.Request) string
}

// statusWriter captures the response status. Unwrap keeps
// http.ResponseController working through the wrap.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Instrument is the observability middleware: it establishes the
// request's trace ID (accepted from X-Request-ID when well-formed,
// generated otherwise), echoes it on the response, attaches a span
// recorder to the context, and on completion records request metrics,
// per-stage latency, and a structured access-log line carrying the
// trace ID and spans.
func Instrument(next http.Handler, o HTTPOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := SanitizeTraceID(r.Header.Get(TraceIDHeader))
		if id == "" {
			id = NewTraceID()
		}
		w.Header().Set(TraceIDHeader, id)

		sp := &Spans{}
		ctx := WithSpans(WithTraceID(r.Context(), id), sp)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		path := r.URL.Path
		if o.PathFor != nil {
			path = o.PathFor(r)
		}
		if o.Requests != nil {
			o.Requests.Inc(path, strconv.Itoa(code))
		}
		if o.Latency != nil {
			o.Latency.Observe(elapsed.Seconds())
		}
		if o.StageLatency != nil {
			for _, s := range sp.Snapshot() {
				o.StageLatency.Observe(s.Seconds, s.Stage)
			}
		}
		if o.Logger != nil {
			o.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("trace_id", id),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", code),
				slog.Float64("duration_seconds", elapsed.Seconds()),
				slog.Any("spans", sp),
			)
		}
	})
}
