// Package replication ships the livestate write-ahead log from a leader
// troutd to read-scale followers over HTTP.
//
// The leader serves three endpoints off its WAL-backed Store:
//
//	GET /replication/wal?from=<lsn>[&wait=<dur>][&max_bytes=<n>]
//	    — length-prefixed CRC32 frames for records with LSN > from, up to
//	    max_bytes. With wait, the request long-polls until durable records
//	    arrive or the window closes (204). 410 means `from` precedes the
//	    oldest retained segment (re-snapshot); 409 means `from` is ahead
//	    of the leader (the follower diverged; re-snapshot).
//	GET /replication/snapshot — gob of the full engine state + LSN + gen.
//	GET /replication/status   — JSON replication position summary.
//
// Every response carries X-Trout-Leader-LSN (the durable replication
// horizon) and X-Trout-State-Gen (the state generation; a change means the
// engine was replaced wholesale and replayed history is void).
//
// Only durable (fsynced) records are ever served, so a follower cannot get
// ahead of what a kill -9'd leader recovers: an acknowledged-and-shipped
// event is on disk by construction.
package replication

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/livestate"
	"repro/internal/resilience"
)

// Wire headers shared by leader and follower.
const (
	HeaderLeaderLSN   = "X-Trout-Leader-Lsn"
	HeaderStateGen    = "X-Trout-State-Gen"
	HeaderOldestLSN   = "X-Trout-Oldest-Lsn"
	HeaderSnapshotLSN = "X-Trout-Snapshot-Lsn"
)

// LeaderOptions tunes the serving side.
type LeaderOptions struct {
	// MaxBatchBytes caps one WAL response. 0 means 4 MiB.
	MaxBatchBytes int64
	// MaxWait caps the long-poll window a follower may request. 0 means 55s.
	MaxWait time.Duration
}

// LeaderStats counts what the leader shipped, for the /metrics collectors.
type LeaderStats struct {
	WALRequests   uint64
	BytesShipped  uint64
	Snapshots     uint64
	Conflicts     uint64 // 409s: follower ahead of leader
	Subsumed      uint64 // 410s: follower behind retention
	LongPollIdles uint64 // 204s
}

// Leader serves a store's WAL and snapshots to followers.
type Leader struct {
	store *livestate.Store
	opt   LeaderOptions

	walRequests   atomic.Uint64
	bytesShipped  atomic.Uint64
	snapshots     atomic.Uint64
	conflicts     atomic.Uint64
	subsumed      atomic.Uint64
	longPollIdles atomic.Uint64
}

// NewLeader wraps store for replication serving. The store must be
// WAL-backed (Persistent) to serve /replication/wal; snapshots work either
// way.
func NewLeader(store *livestate.Store, opt LeaderOptions) *Leader {
	if opt.MaxBatchBytes == 0 {
		opt.MaxBatchBytes = 4 << 20
	}
	if opt.MaxWait == 0 {
		opt.MaxWait = 55 * time.Second
	}
	return &Leader{store: store, opt: opt}
}

// Stats snapshots the shipping counters.
func (l *Leader) Stats() LeaderStats {
	return LeaderStats{
		WALRequests:   l.walRequests.Load(),
		BytesShipped:  l.bytesShipped.Load(),
		Snapshots:     l.snapshots.Load(),
		Conflicts:     l.conflicts.Load(),
		Subsumed:      l.subsumed.Load(),
		LongPollIdles: l.longPollIdles.Load(),
	}
}

// Register mounts the replication endpoints on mux.
func (l *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("/replication/wal", l.handleWAL)
	mux.HandleFunc("/replication/snapshot", l.handleSnapshot)
	mux.HandleFunc("/replication/status", l.handleStatus)
}

// setPosHeaders stamps the shared position headers.
func (l *Leader) setPosHeaders(w http.ResponseWriter) {
	m := l.store.Metrics()
	w.Header().Set(HeaderLeaderLSN, strconv.FormatUint(m.DurableLSN, 10))
	w.Header().Set(HeaderStateGen, strconv.FormatUint(m.Gen, 10))
	w.Header().Set(HeaderOldestLSN, strconv.FormatUint(m.OldestLSN, 10))
}

func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	l.walRequests.Add(1)
	if !l.store.Persistent() {
		resilience.WriteError(w, http.StatusNotImplemented,
			"replication: leader runs memory-only (no -wal-dir); only snapshots are served")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil && q.Get("from") != "" {
		resilience.WriteError(w, http.StatusBadRequest, fmt.Sprintf("replication: bad from: %v", err))
		return
	}
	maxBytes := l.opt.MaxBatchBytes
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			resilience.WriteError(w, http.StatusBadRequest, "replication: bad max_bytes")
			return
		}
		if n < maxBytes {
			maxBytes = n
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			resilience.WriteError(w, http.StatusBadRequest, "replication: bad wait")
			return
		}
		if d > l.opt.MaxWait {
			d = l.opt.MaxWait
		}
		wait = d
	}

	// A follower claiming a position ahead of the durable horizon has
	// diverged (e.g. it outlived a leader that lost its WAL dir); signal
	// before long-polling or it would idle out to 204s forever.
	if from > l.store.DurableLSN() {
		l.conflicts.Add(1)
		l.setPosHeaders(w)
		resilience.WriteError(w, http.StatusConflict,
			fmt.Sprintf("replication: follower at %d is ahead of leader %d (diverged; re-snapshot)",
				from, l.store.DurableLSN()))
		return
	}

	// Long-poll: grab the notification channel BEFORE reading the durable
	// LSN so an append between the two cannot be missed.
	deadline := time.Now().Add(wait)
	for {
		ch := l.store.Updated()
		if l.store.DurableLSN() > from {
			break
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			l.longPollIdles.Add(1)
			l.setPosHeaders(w)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remaining)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-t.C:
		case <-ch:
			t.Stop()
		}
	}

	// Buffer the frames (bounded by maxBytes) so an I/O error mid-read
	// never corrupts an already-started 200 stream.
	var buf bytes.Buffer
	_, _, err = l.store.ReadWAL(from, maxBytes, &buf)
	if err == livestate.ErrSubsumed {
		l.subsumed.Add(1)
		l.setPosHeaders(w)
		resilience.WriteError(w, http.StatusGone,
			fmt.Sprintf("replication: records after %d no longer retained (oldest %d); re-snapshot",
				from, l.store.OldestLSN()))
		return
	}
	if err != nil {
		resilience.WriteError(w, http.StatusInternalServerError, fmt.Sprintf("replication: %v", err))
		return
	}
	l.setPosHeaders(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(buf.Bytes())
	l.bytesShipped.Add(uint64(n))
}

func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	var buf bytes.Buffer
	lsn, err := l.store.WriteSnapshot(&buf)
	if err != nil {
		resilience.WriteError(w, http.StatusInternalServerError, fmt.Sprintf("replication: snapshot: %v", err))
		return
	}
	l.snapshots.Add(1)
	l.setPosHeaders(w)
	w.Header().Set(HeaderSnapshotLSN, strconv.FormatUint(lsn, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(buf.Bytes())
	l.bytesShipped.Add(uint64(n))
}

// StatusResponse is the /replication/status payload.
type StatusResponse struct {
	LSN           uint64 `json:"lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	OldestLSN     uint64 `json:"oldest_lsn"`
	Gen           uint64 `json:"state_gen"`
	Segments      int    `json:"segments"`
	SegmentBytes  int64  `json:"segment_bytes"`
	WALBytes      int64  `json:"wal_bytes"`
	Persistent    bool   `json:"persistent"`
}

func (l *Leader) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	m := l.store.Metrics()
	l.setPosHeaders(w)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(StatusResponse{
		LSN: m.LSN, DurableLSN: m.DurableLSN, CheckpointLSN: m.CheckpointLSN,
		OldestLSN: m.OldestLSN, Gen: m.Gen, Segments: m.Segments,
		SegmentBytes: m.SegmentBytes, WALBytes: m.WALBytes, Persistent: m.Persistent,
	})
}
