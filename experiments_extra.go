package trout

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/shap"
	"repro/internal/slurmsim"
	"repro/internal/tscv"
	"repro/internal/workload"
)

// --- Error by actual-queue-time bin (§IV: "proportionate predictive
// capabilities across periods ... investigating performance on different
// bins of time") ---

// BinError is the regression error within one actual-queue-time decade.
type BinError struct {
	LoMinutes, HiMinutes float64
	N                    int
	MAPE                 float64
	Within100            float64
}

// RunErrorByBin trains on the holdout protocol and reports long-job
// regression error stratified by the actual queue-time decade.
func (e *Experiment) RunErrorByBin() ([]BinError, error) {
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return nil, err
	}
	ev := core.EvaluateRegression(m, e.Data, fold.Test)
	type bucket struct {
		pred, actual []float64
	}
	buckets := map[int]*bucket{}
	for i, a := range ev.Actual {
		d := 1 // first decade: [10, 100)
		for v := a; v >= 100; v /= 10 {
			d++
		}
		b := buckets[d]
		if b == nil {
			b = &bucket{}
			buckets[d] = b
		}
		b.pred = append(b.pred, ev.Pred[i])
		b.actual = append(b.actual, a)
	}
	var out []BinError
	for d := 1; d <= 6; d++ {
		b := buckets[d]
		if b == nil {
			continue
		}
		lo := math.Pow(10, float64(d))
		out = append(out, BinError{
			LoMinutes: lo, HiMinutes: lo * 10,
			N:         len(b.pred),
			MAPE:      metrics.MAPE(b.pred, b.actual),
			Within100: metrics.WithinPercent(b.pred, b.actual, 100),
		})
	}
	return out, nil
}

// --- Feature-group ablation (the paper's SHAP-driven feature selection,
// §III: feature sets were tested and pruned by importance) ---

// FeatureGroup names a block of Table II columns.
type FeatureGroup struct {
	Name    string
	Columns []int
}

// FeatureGroups partitions the 33 features into the paper's conceptual
// blocks.
func FeatureGroups() []FeatureGroup {
	idx := func(names ...string) []int {
		var out []int
		for _, want := range names {
			for i, n := range features.Names {
				if n == want {
					out = append(out, i)
				}
			}
		}
		return out
	}
	return []FeatureGroup{
		{"job request", idx("Priority", "Timelimit Raw", "Req CPUs", "Req Mem", "Req Nodes")},
		{"queue ahead", idx("Par Jobs Ahead", "Par CPUs Ahead", "Par Mem Ahead", "Par Nodes Ahead", "Par Timelimit Ahead")},
		{"queue state", idx("Par Jobs Queue", "Par CPUs Queue", "Par Mem Queue", "Par Nodes Queue", "Par Timelimit Queue")},
		{"running state", idx("Par Jobs Running", "Par CPUs Running", "Par Mem Running", "Par Nodes Running", "Par Timelimit Running")},
		{"user history", idx("User Jobs Past Day", "User CPUs Past Day", "User Mem Past Day", "User Nodes Past Day", "User Timelimit Past Day")},
		{"partition constants", idx("Par Total Nodes", "Par Total CPU", "Par CPU per Node", "Par Mem per Node", "Par Total GPU")},
		{"runtime predictions", idx("Pred Runtime", "Par Queue Pred Timelimit", "Par Running Pred Timelimit")},
	}
}

// GroupAblation is one group-removal result.
type GroupAblation struct {
	Dropped string
	MAPE    float64
	N       int
}

// RunFeatureGroupAblation retrains the regressor with each feature group
// zeroed out (columns carry no information), measuring how much each block
// contributes — the experiment behind the paper's feature-selection claims.
// The first row ("none") is the full model.
func (e *Experiment) RunFeatureGroupAblation() ([]GroupAblation, error) {
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return nil, err
	}
	run := func(name string, drop []int) (GroupAblation, error) {
		ds := e.Data
		if len(drop) > 0 {
			ds = maskColumns(e.Data, drop)
		}
		m, err := core.Train(ds, fold.Train, e.Pipeline.Model)
		if err != nil {
			return GroupAblation{}, fmt.Errorf("trout: ablation %q: %w", name, err)
		}
		ev := core.EvaluateRegression(m, ds, fold.Test)
		return GroupAblation{Dropped: name, MAPE: ev.MAPE, N: ev.N}, nil
	}
	out := make([]GroupAblation, 0, 8)
	full, err := run("none", nil)
	if err != nil {
		return nil, err
	}
	out = append(out, full)
	for _, g := range FeatureGroups() {
		r, err := run(g.Name, g.Columns)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// maskColumns returns a shallow dataset copy with the given columns zeroed.
func maskColumns(ds *Dataset, cols []int) *Dataset {
	masked := &Dataset{
		Names:        ds.Names,
		X:            make([][]float64, len(ds.X)),
		QueueMinutes: ds.QueueMinutes,
		Jobs:         ds.Jobs,
		PredRuntime:  ds.PredRuntime,
		Runtime:      ds.Runtime,
	}
	for i, row := range ds.X {
		r := append([]float64(nil), row...)
		for _, c := range cols {
			r[c] = 0
		}
		masked.X[i] = r
	}
	return masked
}

// --- Online adaptation (§V future work: online learning) ---

// OnlineResult contrasts a stale model with one updated on fresh data.
type OnlineResult struct {
	StaleMAPE      float64
	UpdatedMAPE    float64
	StaleClassBA   float64
	UpdatedClassBA float64
	N              int
}

// RunOnlineAdaptation trains on the oldest 60 % of jobs, then fine-tunes a
// copy on the next 20 % (ContinueTraining) and compares both on the most
// recent 20 %.
func (e *Experiment) RunOnlineAdaptation(updateEpochs int) (OnlineResult, error) {
	if updateEpochs <= 0 {
		updateEpochs = 5
	}
	n := e.Data.Len()
	trainEnd := n * 6 / 10
	updateEnd := n * 8 / 10
	trainIdx := seq(0, trainEnd)
	updateIdx := seq(trainEnd, updateEnd)
	testIdx := seq(updateEnd, n)

	stale, err := core.Train(e.Data, trainIdx, e.Pipeline.Model)
	if err != nil {
		return OnlineResult{}, err
	}
	// Deterministic training: retrain an identical copy to fine-tune, so
	// the stale model stays untouched for comparison.
	updated, err := core.Train(e.Data, trainIdx, e.Pipeline.Model)
	if err != nil {
		return OnlineResult{}, err
	}
	if err := updated.ContinueTraining(e.Data, updateIdx, updateEpochs); err != nil {
		return OnlineResult{}, err
	}

	staleReg := core.EvaluateRegression(stale, e.Data, testIdx)
	updReg := core.EvaluateRegression(updated, e.Data, testIdx)
	staleCls := core.EvaluateClassifier(stale, e.Data, testIdx)
	updCls := core.EvaluateClassifier(updated, e.Data, testIdx)
	return OnlineResult{
		StaleMAPE:      staleReg.MAPE,
		UpdatedMAPE:    updReg.MAPE,
		StaleClassBA:   staleCls.BalancedAccuracy(),
		UpdatedClassBA: updCls.BalancedAccuracy(),
		N:              len(testIdx),
	}, nil
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// --- Transferability (§V: "the hierarchical model can be easily
// specialized for any other HPC system ... through retraining with the
// respective historical data") ---

// TransferResult contrasts zero-shot transfer with local retraining on a
// differently-shaped cluster.
type TransferResult struct {
	// SourceMAPE is the model's holdout MAPE on its home cluster.
	SourceMAPE float64
	// ZeroShotMAPE applies the home-trained model to the foreign
	// cluster's holdout unchanged.
	ZeroShotMAPE float64
	// RetrainedMAPE retrains from scratch on the foreign cluster's
	// history, the paper's prescription.
	RetrainedMAPE float64
	SourceBA      float64
	ZeroShotBA    float64
	RetrainedBA   float64
	N             int
}

// RunTransfer synthesizes a second, homogeneous cluster (no partitions
// beyond shared/standby, different node shapes), replays a workload on it,
// and measures zero-shot vs retrained performance there.
func (e *Experiment) RunTransfer() (TransferResult, error) {
	// Home model.
	home, homeFold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return TransferResult{}, err
	}
	homeReg := core.EvaluateRegression(home, e.Data, homeFold.Test)
	homeCls := core.EvaluateClassifier(home, e.Data, homeFold.Test)

	// Foreign cluster: 48 fat nodes, 64 cores, 512 GB, no GPUs — a very
	// different shape from AnvilLike.
	foreign := slurmsim.Uniform(48, 64, 512, 0)
	wl := workload.DefaultConfig(e.Pipeline.Jobs, e.Pipeline.Seed+911)
	wl.PartitionMix = map[string]float64{"shared": 0.9, "standby": 0.1}
	// A homogeneous cluster has no exclusive-partition fragmentation or
	// GPU scarcity, so it needs a higher offered load to produce the same
	// queueing skew.
	wl.TargetUtilization = 0.9
	specs, err := workload.Generate(wl, &foreign)
	if err != nil {
		return TransferResult{}, err
	}
	simCfg := slurmsim.DefaultConfig(1)
	simCfg.Cluster = foreign
	tr2, _, err := slurmsim.Run(simCfg, specs)
	if err != nil {
		return TransferResult{}, err
	}
	opt := e.Pipeline.Features
	opt.Seed = e.Pipeline.Seed + 912
	ds2, err := features.Build(tr2, &foreign, opt)
	if err != nil {
		return TransferResult{}, err
	}
	fold2, err := tscv.HoldoutRecent(ds2.Len(), 0.2)
	if err != nil {
		return TransferResult{}, err
	}

	zeroReg := core.EvaluateRegression(home, ds2, fold2.Test)
	zeroCls := core.EvaluateClassifier(home, ds2, fold2.Test)

	retrained, err := core.Train(ds2, fold2.Train, e.Pipeline.Model)
	if err != nil {
		return TransferResult{}, err
	}
	reReg := core.EvaluateRegression(retrained, ds2, fold2.Test)
	reCls := core.EvaluateClassifier(retrained, ds2, fold2.Test)

	return TransferResult{
		SourceMAPE:    homeReg.MAPE,
		ZeroShotMAPE:  zeroReg.MAPE,
		RetrainedMAPE: reReg.MAPE,
		SourceBA:      homeCls.BalancedAccuracy(),
		ZeroShotBA:    zeroCls.BalancedAccuracy(),
		RetrainedBA:   reCls.BalancedAccuracy(),
		N:             len(fold2.Test),
	}, nil
}

// --- Scheduler forward-simulation ETA: the classical pre-ML baseline
// (simulate the queue ahead assuming every job runs to its limit) against
// TROUT's learned model ---

// ETAComparison scores the simulation baseline against TROUT on the same
// long jobs.
type ETAComparison struct {
	N            int
	SimMAPE      float64
	TroutMAPE    float64
	SimPearson   float64
	TroutPearson float64
}

// RunSchedulerETA compares the forward-simulation estimator with TROUT's
// regression head on a sample of truly-long holdout jobs. The simulator
// knows the exact scheduler but assumes requested wall times; TROUT has
// learned that users overestimate (paper: 15 % mean usage) — the experiment
// measures which error source dominates.
func (e *Experiment) RunSchedulerETA(sampleMax int) (ETAComparison, error) {
	if sampleMax <= 0 {
		sampleMax = 200
	}
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return ETAComparison{}, err
	}
	scale := e.Pipeline.Scale
	if scale < 1 {
		scale = 1
	}
	simCfg := slurmsim.DefaultConfig(scale)
	if e.Pipeline.Sim != nil {
		simCfg = *e.Pipeline.Sim
	}

	var simPred, troutPred, actual []float64
	for _, i := range fold.Test {
		if len(simPred) >= sampleMax {
			break
		}
		if e.Data.QueueMinutes[i] < m.Cfg.CutoffMinutes {
			continue
		}
		state, err := forwardStateFromTrace(e.Data, i)
		if err != nil {
			continue
		}
		start, err := slurmsim.EstimateStartTime(simCfg, state)
		if err != nil {
			continue
		}
		eta := float64(start-state.Now) / 60
		if eta < 0 {
			eta = 0
		}
		simPred = append(simPred, eta)
		troutPred = append(troutPred, m.RegressMinutes(e.Data.X[i]))
		actual = append(actual, e.Data.QueueMinutes[i])
	}
	if len(simPred) == 0 {
		return ETAComparison{}, fmt.Errorf("trout: no jobs could be forward-simulated")
	}
	return ETAComparison{
		N:            len(simPred),
		SimMAPE:      metrics.MAPE(simPred, actual),
		TroutMAPE:    metrics.MAPE(troutPred, actual),
		SimPearson:   metrics.Pearson(simPred, actual),
		TroutPearson: metrics.Pearson(troutPred, actual),
	}, nil
}

// forwardStateFromTrace reconstructs the scheduler-visible queue state at
// job i's eligibility instant.
func forwardStateFromTrace(ds *Dataset, i int) (slurmsim.ForwardState, error) {
	target := ds.Jobs[i]
	t := target.Eligible
	state := slurmsim.ForwardState{Now: t, TargetID: target.ID}
	for k := range ds.Jobs {
		j := &ds.Jobs[k]
		switch {
		case j.ID == target.ID:
			// fall through to append as pending below
		case j.Start <= t && t < j.End:
			state.Running = append(state.Running, slurmsim.RunningJob{
				Spec: jobToSpec(j), Elapsed: t - j.Start,
			})
			continue
		case j.Eligible <= t && t < j.Start:
			state.Pending = append(state.Pending, jobToSpec(j))
			continue
		default:
			continue
		}
		state.Pending = append(state.Pending, jobToSpec(j))
	}
	return state, nil
}

// jobToSpec converts an accounting record back into a scheduler request.
func jobToSpec(j *Job) slurmsim.JobSpec {
	return slurmsim.JobSpec{
		ID: j.ID, User: j.User, Partition: j.Partition,
		Submit: j.Submit, ReqCPUs: j.ReqCPUs, ReqMemGB: j.ReqMemGB,
		ReqNodes: j.ReqNodes, ReqGPUs: j.ReqGPUs,
		TimeLimit: j.TimeLimit, QOS: j.QOS,
	}
}

// --- Scheduler-policy ablation: how much the scheduler's own mechanisms
// (EASY backfill, partition-priority preemption) shape the queue-time
// distribution the predictors learn ---

// SchedulerVariant is one scheduler configuration's trace shape and model
// performance.
type SchedulerVariant struct {
	Name          string
	ShortFraction float64 // jobs queueing < 10 min
	MeanQueueMin  float64
	MAPE          float64 // holdout regression MAPE on that trace
	ClassBA       float64
}

// RunSchedulerAblation regenerates the trace under three scheduler
// configurations (full, no backfill, no preemption) and retrains/evaluates
// on each.
func (e *Experiment) RunSchedulerAblation() ([]SchedulerVariant, error) {
	variants := []struct {
		name                     string
		noBackfill, noPreemption bool
	}{
		{"backfill+preemption (default)", false, false},
		{"no backfill", true, false},
		{"no preemption", false, true},
	}
	scale := e.Pipeline.Scale
	if scale < 1 {
		scale = 1
	}
	out := make([]SchedulerVariant, 0, len(variants))
	for _, v := range variants {
		simCfg := slurmsim.DefaultConfig(scale)
		if e.Pipeline.Sim != nil {
			simCfg = *e.Pipeline.Sim
		}
		simCfg.DisableBackfill = v.noBackfill
		simCfg.DisablePreemption = v.noPreemption
		wl := workload.DefaultConfig(e.Pipeline.Jobs, e.Pipeline.Seed)
		if e.Pipeline.Workload != nil {
			wl = *e.Pipeline.Workload
		}
		specs, err := workload.Generate(wl, &simCfg.Cluster)
		if err != nil {
			return nil, err
		}
		tr, _, err := slurmsim.Run(simCfg, specs)
		if err != nil {
			return nil, err
		}
		opt := e.Pipeline.Features
		if opt.Seed == 0 {
			opt.Seed = e.Pipeline.Seed
		}
		ds, err := features.Build(tr, &simCfg.Cluster, opt)
		if err != nil {
			return nil, err
		}
		fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
		if err != nil {
			return nil, err
		}
		m, err := core.Train(ds, fold.Train, e.Pipeline.Model)
		if err != nil {
			return nil, fmt.Errorf("trout: scheduler variant %q: %w", v.name, err)
		}
		reg := core.EvaluateRegression(m, ds, fold.Test)
		cls := core.EvaluateClassifier(m, ds, fold.Test)
		var meanQ float64
		for i := range tr.Jobs {
			meanQ += tr.Jobs[i].QueueMinutes()
		}
		meanQ /= float64(len(tr.Jobs))
		out = append(out, SchedulerVariant{
			Name:          v.name,
			ShortFraction: tr.ShortQueueFraction(600),
			MeanQueueMin:  meanQ,
			MAPE:          reg.MAPE,
			ClassBA:       cls.BalancedAccuracy(),
		})
	}
	return out, nil
}

// --- Classifier calibration (supporting the paper's claim of "similar
// accuracy on both classes" with a reliability diagram) ---

// CalibrationResult is the classifier's reliability diagram plus ECE.
type CalibrationResult struct {
	Bins []metrics.CalibrationBin
	ECE  float64
	N    int
}

// RunCalibration computes the quick-start/long classifier's reliability
// diagram on the most recent 20 % of jobs.
func (e *Experiment) RunCalibration(bins int) (CalibrationResult, error) {
	if bins <= 0 {
		bins = 10
	}
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return CalibrationResult{}, err
	}
	probs := make([]float64, len(fold.Test))
	labels := make([]bool, len(fold.Test))
	for k, i := range fold.Test {
		probs[k] = m.ClassifyProb(e.Data.X[i])
		labels[k] = e.Data.QueueMinutes[i] >= m.Cfg.CutoffMinutes
	}
	cal := metrics.Calibration(probs, labels, bins)
	return CalibrationResult{
		Bins: cal, ECE: metrics.ExpectedCalibrationError(cal), N: len(fold.Test),
	}, nil
}

// --- Prediction intervals (extension of §V's outlier discussion) ---

// QuantileModel exposes the pinball-loss interval regressor.
type QuantileModel = core.QuantileModel

// TrainQuantileModel fits interval regressors at the given quantiles on the
// rows selected by trainIdx.
func TrainQuantileModel(ds *Dataset, trainIdx []int, cfg ModelConfig, taus []float64) (*QuantileModel, error) {
	return core.TrainQuantiles(ds, trainIdx, cfg, taus)
}

// IntervalResult summarizes prediction-interval quality on the holdout.
type IntervalResult struct {
	Taus      []float64
	Coverage  float64 // fraction of actual long-job queue times inside the band
	Nominal   float64 // the band's nominal coverage (hi tau − lo tau)
	MeanWidth float64 // minutes
	N         int
}

// RunIntervals trains an 80 % quantile band (q10–q90) on the holdout
// protocol and measures its empirical coverage — the uncertainty the point
// model cannot express for the paper's "massive outliers".
func (e *Experiment) RunIntervals() (IntervalResult, error) {
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		return IntervalResult{}, err
	}
	taus := []float64{0.1, 0.5, 0.9}
	qm, err := core.TrainQuantiles(e.Data, fold.Train, e.Pipeline.Model, taus)
	if err != nil {
		return IntervalResult{}, err
	}
	cov, width, n := qm.Coverage(e.Data, fold.Test)
	return IntervalResult{
		Taus: taus, Coverage: cov, Nominal: taus[len(taus)-1] - taus[0],
		MeanWidth: width, N: n,
	}, nil
}

// --- SHAP feature attribution (§III: "SHAP values are a method of
// assigning importance to each feature ... features with a SHAP value
// closer to 0 are less impactful and can be removed") ---

// SHAPRow is one feature's global mean-|SHAP| importance.
type SHAPRow struct {
	Feature string
	MeanAbs float64
}

// RunSHAP trains on the holdout protocol and computes Kernel SHAP values
// for a sample of held-out long jobs against a background of training rows,
// returning the global mean-|SHAP| ranking the paper prunes features with.
// explainRows and coalitionSamples bound the (cubic-ish) cost; zeros pick
// defaults of 15 rows and 600 coalitions.
func (e *Experiment) RunSHAP(explainRows, coalitionSamples int) ([]SHAPRow, error) {
	if explainRows <= 0 {
		explainRows = 15
	}
	if coalitionSamples <= 0 {
		coalitionSamples = 600
	}
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return nil, err
	}
	// Background: an even sample of training rows (raw feature space; the
	// model's scaler runs inside the predict closure).
	var background [][]float64
	step := len(fold.Train)/64 + 1
	for i := 0; i < len(fold.Train); i += step {
		background = append(background, e.Data.X[fold.Train[i]])
	}
	predict := func(row []float64) float64 {
		return math.Log1p(m.RegressMinutes(row))
	}
	ex := &shap.Explainer{
		Predict: predict, Background: background,
		Samples: coalitionSamples, Seed: e.Pipeline.Seed + 17,
	}
	var values [][]float64
	for _, i := range fold.Test {
		if len(values) >= explainRows {
			break
		}
		if e.Data.QueueMinutes[i] < m.Cfg.CutoffMinutes {
			continue
		}
		phi, err := ex.Explain(e.Data.X[i])
		if err != nil {
			return nil, err
		}
		values = append(values, phi)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("trout: no long jobs to explain")
	}
	ranked := shap.Rank(features.Names, shap.MeanAbs(values))
	out := make([]SHAPRow, len(ranked))
	for i, r := range ranked {
		out[i] = SHAPRow{Feature: r.Feature, MeanAbs: r.Score}
	}
	return out, nil
}

// --- Per-partition breakdown (§V: partition imbalance "may obfuscate
// unique attributes relating to prediction on these smaller queues") ---

// PartitionScore is one partition's holdout evaluation.
type PartitionScore struct {
	Partition string
	Jobs      int // test jobs in the partition
	LongJobs  int
	MAPE      float64 // regression MAPE on the partition's long jobs
	ClassBA   float64 // classifier balanced accuracy on the partition
}

// RunPartitionBreakdown trains once on the holdout protocol and reports
// per-partition performance, quantifying how much the dominant `shared`
// partition drives the averages.
func (e *Experiment) RunPartitionBreakdown() ([]PartitionScore, error) {
	m, fold, err := TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		return nil, err
	}
	byPart := map[string][]int{}
	for _, i := range fold.Test {
		p := e.Data.Jobs[i].Partition
		byPart[p] = append(byPart[p], i)
	}
	names := make([]string, 0, len(byPart))
	for n := range byPart {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]PartitionScore, 0, len(names))
	for _, name := range names {
		idx := byPart[name]
		reg := core.EvaluateRegression(m, e.Data, idx)
		cls := core.EvaluateClassifier(m, e.Data, idx)
		out = append(out, PartitionScore{
			Partition: name, Jobs: len(idx), LongJobs: reg.N,
			MAPE: reg.MAPE, ClassBA: cls.BalancedAccuracy(),
		})
	}
	return out, nil
}

func sortStrings(s []string) {
	for i := range s {
		for k := i + 1; k < len(s); k++ {
			if s[k] < s[i] {
				s[i], s[k] = s[k], s[i]
			}
		}
	}
}

// --- Runtime-source ablation (§II/§V: the runtime model is "basic";
// "incorporating a more robust runtime prediction model ... could be
// explored further") ---

// RuntimeSourceResult is one runtime-feature mode's holdout evaluation.
type RuntimeSourceResult struct {
	Source string
	MAPE   float64
	N      int
}

// RunRuntimeSourceAblation rebuilds the features with the Pred-Runtime
// columns filled by (a) the random forest (the paper's design), (b) a
// perfect oracle (what a flawless runtime model would buy), and (c) the raw
// requested limit (no model at all), then retrains and scores each.
func (e *Experiment) RunRuntimeSourceAblation() ([]RuntimeSourceResult, error) {
	out := make([]RuntimeSourceResult, 0, 3)
	for _, source := range []string{"forest", "oracle", "requested"} {
		opt := e.Pipeline.Features
		opt.RuntimeSource = source
		if opt.Seed == 0 {
			opt.Seed = e.Pipeline.Seed
		}
		ds, err := features.Build(e.Trace, e.Cluster, opt)
		if err != nil {
			return nil, fmt.Errorf("trout: runtime source %q: %w", source, err)
		}
		fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
		if err != nil {
			return nil, err
		}
		m, err := core.Train(ds, fold.Train, e.Pipeline.Model)
		if err != nil {
			return nil, err
		}
		ev := core.EvaluateRegression(m, ds, fold.Test)
		out = append(out, RuntimeSourceResult{Source: source, MAPE: ev.MAPE, N: ev.N})
	}
	return out, nil
}
