package features

import (
	"math/rand"
	"sort"
)

// Importance is one feature's permutation-importance score.
type Importance struct {
	Feature string
	Score   float64
}

// PermutationImportance ranks features by how much shuffling each column
// degrades the model, the model-agnostic counterpart of the paper's SHAP
// analysis (features scoring ≈ 0 are candidates for removal). predict maps
// a feature row to a prediction; loss scores predictions against targets
// (lower is better). Returns scores sorted descending.
func PermutationImportance(
	predict func([]float64) float64,
	X [][]float64, y []float64, names []string,
	loss func(pred, actual []float64) float64,
	seed int64,
) []Importance {
	if len(X) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, len(X))
	for i, row := range X {
		base[i] = predict(row)
	}
	baseLoss := loss(base, y)

	dim := len(X[0])
	out := make([]Importance, dim)
	perm := rng.Perm(len(X))
	scratch := make([]float64, dim)
	pred := make([]float64, len(X))
	for f := 0; f < dim; f++ {
		for i, row := range X {
			copy(scratch, row)
			scratch[f] = X[perm[i]][f]
			pred[i] = predict(scratch)
		}
		name := ""
		if f < len(names) {
			name = names[f]
		}
		out[f] = Importance{Feature: name, Score: loss(pred, y) - baseLoss}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}
