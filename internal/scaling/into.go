package scaling

import "math"

// intoTransformer is the optional allocation-free form of Transform. The
// hot inference paths (batched prediction) use it via TransformInto so a
// steady-state forward pass writes scaled features straight into a pooled
// workspace row instead of allocating a fresh slice per job.
type intoTransformer interface {
	transformInto(dst, row []float64)
}

// TransformInto writes s.Transform(row) into dst (which must be
// len(row) long), avoiding the allocation when the scaler supports it and
// falling back to a copy of Transform's output when it does not. Values are
// bit-identical to Transform in both cases.
func TransformInto(s Scaler, dst, row []float64) {
	if it, ok := s.(intoTransformer); ok {
		it.transformInto(dst, row)
		return
	}
	copy(dst, s.Transform(row))
}

func (s *noneScaler) transformInto(dst, row []float64) { copy(dst, row) }

func (s *logScaler) transformInto(dst, row []float64) {
	for i, v := range row {
		if v < 0 {
			v = 0
		}
		dst[i] = math.Log1p(v)
	}
}

func (s *minMaxScaler) transformInto(dst, row []float64) {
	if s.min == nil {
		copy(dst, row)
		return
	}
	for j, v := range row {
		dst[j] = (v - s.min[j]) / s.span[j]
	}
}

func (s *standardScaler) transformInto(dst, row []float64) {
	if s.mean == nil {
		copy(dst, row)
		return
	}
	for j, v := range row {
		dst[j] = (v - s.mean[j]) / s.std[j]
	}
}

func (s *boxCoxScaler) transformInto(dst, row []float64) {
	if s.lambda == nil {
		copy(dst, row)
		return
	}
	for j, v := range row {
		x := v + s.shift[j]
		if x <= 0 {
			x = 1e-9
		}
		dst[j] = boxCox(x, s.lambda[j])
	}
}
