// Command trout is the paper's prediction CLI (Algorithm 1): given a
// trained bundle and a job, it prints either "Predicted to take less than
// 10 minutes" or "Predicted to start in N minutes".
//
// Two modes:
//
//	# Predict for an existing job in an accounting trace (the queue state
//	# is reconstructed at the job's eligibility instant):
//	trout -bundle trout.bundle -trace trace.csv -job 4211
//
//	# Hypothetical job (§V future work): describe a job you have not
//	# submitted yet against the queue state in the trace at a given time:
//	trout -bundle trout.bundle -trace trace.csv -at 1700100000 \
//	      -partition shared -cpus 16 -mem 32 -nodes 1 -limit 240 -user 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	trout "repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trout: ")
	var (
		bundlePath = flag.String("bundle", "trout.bundle", "trained bundle from trout-train")
		tracePath  = flag.String("trace", "", "accounting trace supplying queue state")
		jobID      = flag.Int("job", 0, "predict this existing job ID")
		at         = flag.Int64("at", 0, "hypothetical mode: prediction instant (unix seconds)")
		partition  = flag.String("partition", "shared", "hypothetical job partition")
		cpus       = flag.Int("cpus", 16, "hypothetical requested CPUs")
		memGB      = flag.Float64("mem", 32, "hypothetical requested memory (GB)")
		nodes      = flag.Int("nodes", 1, "hypothetical requested nodes")
		gpus       = flag.Int("gpus", 0, "hypothetical requested GPUs")
		limitMin   = flag.Int64("limit", 240, "hypothetical time limit (minutes)")
		user       = flag.Int("user", 0, "hypothetical submitting user ID")
		priority   = flag.Int64("priority", 0, "hypothetical Slurm priority (0 = median of queue)")
		verbose    = flag.Bool("v", false, "print classifier probability and regression detail")
	)
	flag.Parse()

	b, err := trout.LoadBundleFile(*bundlePath)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath == "" {
		log.Fatal("need -trace for queue state")
	}
	tr, err := readTrace(*tracePath)
	if err != nil {
		log.Fatal(err)
	}

	var snap *trout.Snapshot
	if *jobID != 0 {
		snap, err = trout.SnapshotFromTrace(tr, *jobID)
		if err != nil {
			log.Fatal(err)
		}
	} else if *at != 0 {
		snap = hypotheticalSnapshot(tr, *at, trace.Job{
			ID: -1, User: *user, Partition: *partition,
			Submit: *at, Eligible: *at,
			ReqCPUs: *cpus, ReqMemGB: *memGB, ReqNodes: *nodes, ReqGPUs: *gpus,
			TimeLimit: *limitMin * 60, Priority: *priority,
		})
	} else {
		log.Fatal("need -job <id> or -at <time> (hypothetical mode)")
	}

	pred, err := b.PredictSnapshot(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pred.Message(b.Model.Cfg.CutoffMinutes))
	if *verbose {
		fmt.Printf("classifier P(long) = %.4f\n", pred.Prob)
		if pred.Long {
			fmt.Printf("regression estimate = %.1f minutes\n", pred.Minutes)
		}
		fmt.Printf("queue state: %d pending, %d running in snapshot\n",
			len(snap.Pending), len(snap.Running))
	}
}

// hypotheticalSnapshot reconstructs queue state at an arbitrary instant and
// injects the hypothetical job as the target.
func hypotheticalSnapshot(tr *trout.Trace, at int64, target trace.Job) *trout.Snapshot {
	snap := &trout.Snapshot{Now: at, Target: target}
	var prios []int64
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch {
		case j.Eligible <= at && at < j.Start:
			snap.Pending = append(snap.Pending, j)
			prios = append(prios, j.Priority)
		case j.Start <= at && at < j.End:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	if target.Priority == 0 && len(prios) > 0 {
		// Default a fresh job's priority to the pending median.
		for i := range prios {
			for k := i + 1; k < len(prios); k++ {
				if prios[k] < prios[i] {
					prios[i], prios[k] = prios[k], prios[i]
				}
			}
		}
		snap.Target.Priority = prios[len(prios)/2]
	}
	return snap
}

func readTrace(path string) (*trout.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		return trace.ReadJSONL(f)
	case strings.HasSuffix(path, ".sacct"), strings.HasSuffix(path, ".txt"):
		// Real Slurm accounting dumps: sacct --parsable2 output.
		return trace.ReadSacct(f)
	default:
		return trace.ReadCSV(f)
	}
}
