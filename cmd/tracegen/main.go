// Command tracegen synthesizes an Anvil-like workload, runs it through the
// Slurm-style cluster simulator, and writes the completed-job accounting
// trace (CSV or JSONL), or — with -format events — the equivalent
// time-ordered JSONL job-event stream (submit/eligible/start/end/cancel)
// for replaying into troutd's POST /events endpoint. It also prints the
// paper's Table I statistics for the generated trace.
//
// Usage:
//
//	tracegen -jobs 60000 -seed 1 -o trace.csv
//	tracegen -jobs 200000 -format jsonl -o trace.jsonl -scale 2
//	tracegen -jobs 60000 -format events -o events.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	trout "repro"
	"repro/internal/livestate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		jobs   = flag.Int("jobs", 60000, "number of jobs to generate")
		seed   = flag.Int64("seed", 1, "random seed")
		scale  = flag.Int("scale", 1, "cluster scale factor (1 = 36 nodes)")
		out    = flag.String("o", "trace.csv", "output path")
		format = flag.String("format", "csv", "output format: csv, jsonl, or events (JSONL job-event stream)")
		quiet  = flag.Bool("q", false, "suppress the Table I summary")
	)
	flag.Parse()

	p := trout.DefaultPipeline(*jobs, *seed)
	p.Scale = *scale
	tr, _, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	written := fmt.Sprintf("%d jobs", len(tr.Jobs))
	switch *format {
	case "csv":
		err = tr.WriteCSV(f)
	case "jsonl":
		err = tr.WriteJSONL(f)
	case "events":
		evs := livestate.EventsFromTrace(tr)
		written = fmt.Sprintf("%d events (%d jobs)", len(evs), len(tr.Jobs))
		err = livestate.WriteEvents(f, evs)
	default:
		log.Fatalf("unknown format %q (want csv, jsonl, or events)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s to %s\n", written, *out)

	if !*quiet {
		e := &trout.Experiment{Pipeline: p, Trace: tr}
		one := e.RunTableOne()
		fmt.Println("\nTable I — generated trace statistics:")
		one.Print(os.Stdout)
	}
}
