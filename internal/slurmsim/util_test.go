package slurmsim

import (
	"math"
	"testing"
)

func TestUtilizationAccounting(t *testing.T) {
	// One job using 4 of 8 CPUs for the entire simulated span.
	specs := []JobSpec{job(1, 0, 1000, 1000, 4)}
	_, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BusyCPUSeconds != 4*1000 {
		t.Fatalf("busy CPU-seconds = %v", st.BusyCPUSeconds)
	}
	// Span is 0..1000 (eligible at 0, end event at 1000).
	if got := st.UtilizationCPU(8); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestUtilizationEmptyAndZeroCapacity(t *testing.T) {
	var st Stats
	if st.UtilizationCPU(8) != 0 {
		t.Fatal("empty stats should have zero utilization")
	}
	st = Stats{BusyCPUSeconds: 100, FirstEvent: 0, LastEvent: 10}
	if st.UtilizationCPU(0) != 0 {
		t.Fatal("zero capacity should yield zero utilization")
	}
}

func TestUtilizationIncludesPreemptedRuns(t *testing.T) {
	// Standby job runs 100 s before being preempted, then reruns fully.
	cfg := preemptConfig()
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "standby", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 2000, Runtime: 1000},
		{ID: 2, User: 2, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 600, Runtime: 500},
	}
	_, st, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	// 8 cpus × (100 partial + 1000 rerun + 500 shared) = 12800.
	want := 8.0 * (100 + 1000 + 500)
	if math.Abs(st.BusyCPUSeconds-want) > 1e-9 {
		t.Fatalf("busy CPU-seconds = %v, want %v", st.BusyCPUSeconds, want)
	}
}
