package nn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// divergenceFixture builds a small regression problem with large targets —
// harmless at a sane learning rate, explosive at an absurd one.
func divergenceFixture(n int) (*tensor.Matrix, *tensor.Matrix) {
	rng := rand.New(rand.NewSource(41))
	x := tensor.New(n, 4)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		var s float64
		for f := 0; f < 4; f++ {
			v := rng.NormFloat64()
			x.Set(i, f, v)
			s += v
		}
		y.Set(i, 0, 1e3*s)
	}
	return x, y
}

func snapshotWeights(net *Network) [][]float64 {
	var out [][]float64
	for _, p := range net.Params() {
		out = append(out, append([]float64(nil), p.Value.Data...))
	}
	return out
}

// TestFitDivergenceRollsBack is the exploding-learning-rate fixture: Fit
// must detect the non-finite losses, restore the best checkpointed weights
// (here the initial ones — no epoch ever completes), and return a typed
// divergence error.
func TestFitDivergenceRollsBack(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	initial := snapshotWeights(net)
	tr := Trainer{
		Net: net,
		Opt: NewSGD(1e6, 0),
		Cfg: TrainConfig{Loss: MSE, Epochs: 20, BatchSize: 32, Workers: 1, Seed: 5, DivergencePatience: 2},
	}
	res, err := tr.FitCtx(context.Background(), x, y)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if de.Events != 2 {
		t.Fatalf("divergence events %d", de.Events)
	}
	if !res.Diverged || res.Rollbacks != 2 {
		t.Fatalf("result %+v", res)
	}
	// Rollback must leave the network at the best checkpoint — the initial
	// weights, since no epoch finished with a finite loss before give-up.
	after := snapshotWeights(net)
	for i := range after {
		for k := range after[i] {
			if math.IsNaN(after[i][k]) || math.IsInf(after[i][k], 0) {
				t.Fatalf("param %d[%d] non-finite after rollback", i, k)
			}
			if after[i][k] != initial[i][k] {
				t.Fatalf("param %d[%d]: rollback gave %v, checkpoint was %v",
					i, k, after[i][k], initial[i][k])
			}
		}
	}
}

// TestFitDivergenceParallelWorkers exercises the sharded batch path's
// non-finite gradient guard.
func TestFitDivergenceParallelWorkers(t *testing.T) {
	x, y := divergenceFixture(512)
	net := NewNetwork(rand.New(rand.NewSource(9)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	tr := Trainer{
		Net: net,
		Opt: NewSGD(1e6, 0),
		Cfg: TrainConfig{Loss: MSE, Epochs: 20, BatchSize: 128, Workers: 4, Seed: 5, DivergencePatience: 1},
	}
	_, err := tr.FitCtx(context.Background(), x, y)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	for _, p := range net.Params() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite weights survived rollback")
			}
		}
	}
}

// TestFitHealthyRunNoDivergence pins the guard's no-op behavior: a sane
// run trains to completion with no rollbacks and a finite loss.
func TestFitHealthyRunNoDivergence(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	tr := Trainer{
		Net: net,
		Opt: NewAdam(1e-2),
		Cfg: TrainConfig{Loss: MSE, Epochs: 10, BatchSize: 32, Workers: 1, Seed: 5},
	}
	res, err := tr.FitCtx(context.Background(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.Rollbacks != 0 || res.Epochs != 10 {
		t.Fatalf("result %+v", res)
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("final loss %v", res.FinalLoss)
	}
}

// TestFitContextCancellation verifies FitCtx stops between batches once
// the context is done and surfaces the context error.
func TestFitContextCancellation(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	tr := Trainer{
		Net: net,
		Opt: NewAdam(1e-2),
		Cfg: TrainConfig{Loss: MSE, Epochs: 10, BatchSize: 32, Workers: 1, Seed: 5},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := tr.FitCtx(ctx, x, y)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Epochs != 0 {
		t.Fatalf("trained %d epochs after cancellation", res.Epochs)
	}
}

// TestFitDivergenceDisabled pins the opt-out: negative patience restores
// the pre-hardening behavior where NaNs flow into the weights and Fit
// reports no error.
func TestFitDivergenceDisabled(t *testing.T) {
	x, y := divergenceFixture(256)
	net := NewNetwork(rand.New(rand.NewSource(7)), MLPSpecs(4, []int{16}, 1, ReLU, Identity, 0)...)
	tr := Trainer{
		Net: net,
		Opt: NewSGD(1e6, 0),
		Cfg: TrainConfig{Loss: MSE, Epochs: 3, BatchSize: 32, Workers: 1, Seed: 5, DivergencePatience: -1},
	}
	if _, err := tr.FitCtx(context.Background(), x, y); err != nil {
		t.Fatalf("disabled guard returned %v", err)
	}
	sawNonFinite := false
	for _, p := range net.Params() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				sawNonFinite = true
			}
		}
	}
	if !sawNonFinite {
		t.Skip("fixture did not explode without the guard; nothing to pin")
	}
}
