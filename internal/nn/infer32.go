package nn

import (
	"math"

	"repro/internal/tensor"
)

// This file is the float32 inference program: EnableFloat32 compiles a
// trained network once into a flat list of fused steps over transposed,
// lane-padded float32 weights, and PredictInto routes through it when
// present. Training never touches this path — ForwardTrain invalidates
// any compiled program, and the f64 kernels stay bit-identical — so the
// gradient-check and training-equivalence suites are unaffected by the
// switch.
//
// Precision policy (see DESIGN.md §12): hidden dense layers multiply and
// accumulate in float32 (fixed (s0+s2)+(s1+s3) reduction order, identical
// between the SSE and portable kernels); the output head accumulates in
// float64 and rounds once, because head error lands directly on the
// served prediction. ELU and sigmoid use the fast float32 exp in
// internal/tensor (~2 ulp, bit-identical between the SSE and scalar
// forms); the remaining element-wise activations evaluate in float64 on
// the float32 value. Batch-norm folds to a per-feature float32
// scale/shift computed in float64.

type stepKind32 uint8

const (
	stepDense32 stepKind32 = iota
	stepAct32
	stepAffine32
)

type actKind32 uint8

const (
	act32ReLU actKind32 = iota
	act32ELU
	act32LeakyReLU
	act32Sigmoid
	act32Tanh
)

// step32 is one fused operation of the compiled program.
type step32 struct {
	kind stepKind32

	// stepDense32: wt is OutPad x InPad transposed weights (padding rows
	// and lanes zero), bias has OutPad entries. fuseReLU folds a directly
	// following ReLU activation into the kernel epilogue; acc64 selects
	// the float64-accumulating head kernel.
	wt            tensor.Matrix32
	bias          []float32
	in, out       int
	inPad, outPad int
	fuseReLU      bool
	acc64         bool

	// stepAct32: element-wise nonlinearity over the live lanes.
	act actKind32

	// stepAffine32: folded batch-norm scale/shift over the live lanes.
	scale, shift []float32
}

// prog32 is a compiled float32 inference program.
type prog32 struct {
	steps    []step32
	inWidth  int // network input width
	inPad    int
	outWidth int // network output width
	maxPad   int // widest padded activation, for workspace sizing
}

// EnableFloat32 compiles the network's current weights into the float32
// inference program and switches Predict/Predict1/PredictInto onto it.
// Returns false (leaving the f64 path in place) if the architecture
// contains a layer kind the compiler does not support. The program is a
// snapshot: training invalidates it, and callers that mutate weights
// directly must re-enable afterwards.
func (n *Network) EnableFloat32() bool {
	p := compileProg32(n.Layers)
	if p == nil {
		return false
	}
	n.f32.Store(p)
	return true
}

// DisableFloat32 reverts inference to the float64 path.
func (n *Network) DisableFloat32() { n.f32.Store(nil) }

// Float32Enabled reports whether the float32 program is active.
func (n *Network) Float32Enabled() bool { return n.f32.Load() != nil }

// compileProg32 builds the step list, or returns nil for unsupported
// architectures.
func compileProg32(layers []Layer) *prog32 {
	p := &prog32{inWidth: -1}
	cur := -1 // current activation width
	i := 0
	for i < len(layers) {
		switch l := layers[i].(type) {
		case *Dense:
			if cur != -1 && cur != l.In {
				return nil
			}
			if p.inWidth == -1 {
				p.inWidth = l.In
			}
			st := step32{
				kind: stepDense32,
				in:   l.In, out: l.Out,
				inPad: tensor.PadTo4(l.In), outPad: tensor.PadTo4(l.Out),
			}
			st.wt = tensor.Matrix32{
				Rows: st.outPad, Cols: l.In, Stride: st.inPad,
				Data: make([]float32, st.outPad*st.inPad),
			}
			for o := 0; o < l.Out; o++ {
				row := st.wt.Row(o)
				for k := 0; k < l.In; k++ {
					row[k] = float32(l.W.Data[k*l.Out+o])
				}
			}
			st.bias = make([]float32, st.outPad)
			for o := 0; o < l.Out; o++ {
				st.bias[o] = float32(l.B.Data[o])
			}
			if i+1 < len(layers) {
				if a, ok := layers[i+1].(*Activation); ok && a.Kind == ReLU {
					st.fuseReLU = true
					i++ // the activation is consumed by the fused epilogue
				}
			}
			p.steps = append(p.steps, st)
			cur = l.Out
		case *Activation:
			if cur == -1 {
				return nil
			}
			var k actKind32
			switch l.Kind {
			case ReLU:
				k = act32ReLU
			case ELU:
				k = act32ELU
			case LeakyReLU:
				k = act32LeakyReLU
			case Sigmoid:
				k = act32Sigmoid
			case Tanh:
				k = act32Tanh
			case Identity:
				i++
				continue
			default:
				return nil
			}
			p.steps = append(p.steps, step32{kind: stepAct32, act: k, out: cur})
		case *Dropout:
			// Inverted dropout is the identity at inference time.
		case *BatchNorm:
			if cur == -1 {
				if p.inWidth == -1 {
					p.inWidth = l.Dim
				}
				cur = l.Dim
			}
			if cur != l.Dim {
				return nil
			}
			st := step32{
				kind:  stepAffine32,
				out:   l.Dim,
				scale: make([]float32, l.Dim),
				shift: make([]float32, l.Dim),
			}
			for j := 0; j < l.Dim; j++ {
				s := l.Gamma.Data[j] / math.Sqrt(l.RunVar[j]+l.Eps)
				st.scale[j] = float32(s)
				st.shift[j] = float32(l.Beta.Data[j] - l.RunMean[j]*s)
			}
			p.steps = append(p.steps, st)
		default:
			return nil
		}
		i++
	}
	if p.inWidth == -1 || cur == -1 {
		return nil
	}
	for j := len(p.steps) - 1; j >= 0; j-- {
		if p.steps[j].kind == stepDense32 {
			p.steps[j].acc64 = true // the head accumulates in float64
			break
		}
	}
	p.inPad = tensor.PadTo4(p.inWidth)
	p.outWidth = cur
	p.maxPad = p.inPad
	for _, st := range p.steps {
		if st.kind == stepDense32 && st.outPad > p.maxPad {
			p.maxPad = st.outPad
		}
	}
	return p
}

// predictInto runs the compiled program over in (rows x inWidth float64),
// staging into the workspace's float32 ping-pong buffers, and converts
// the final activation back into a float64 matrix owned by ws. NaN in any
// live input lane reaches the output as NaN: the kernels' clamp keeps the
// source operand on NaN and the activations evaluate NaN to NaN.
func (p *prog32) predictInto(n *Network, ws *Workspace, in *tensor.Matrix) *tensor.Matrix {
	if in.Cols != p.inWidth {
		panic("nn: f32 inference input width mismatch")
	}
	rows := in.Rows
	need := rows * p.maxPad
	ws.f32a = grow32(ws.f32a, need)
	ws.f32b = grow32(ws.f32b, need)
	cur, next := ws.f32a, ws.f32b

	for r := 0; r < rows; r++ {
		src := in.Data[r*in.Cols : r*in.Cols+in.Cols]
		drow := cur[r*p.inPad : r*p.inPad+p.inPad]
		for c, v := range src {
			drow[c] = float32(v)
		}
		for c := p.inWidth; c < p.inPad; c++ {
			drow[c] = 0
		}
	}

	stride, width := p.inPad, p.inWidth
	for si := range p.steps {
		st := &p.steps[si]
		switch st.kind {
		case stepDense32:
			aM := tensor.Matrix32{Rows: rows, Cols: st.in, Stride: st.inPad, Data: cur[:rows*st.inPad]}
			dM := tensor.Matrix32{Rows: rows, Cols: st.out, Stride: st.outPad, Data: next[:rows*st.outPad]}
			if st.acc64 {
				// acc64 marks the last dense; nothing downstream reads its
				// padding lanes, so compute only the real outputs.
				hw := st.wt
				hw.Rows = st.out
				tensor.MatMulTransBInto32F64Acc(&dM, &aM, &hw, st.bias, st.fuseReLU)
			} else {
				tensor.MatMulTransBInto32(&dM, &aM, &st.wt, st.bias, st.fuseReLU)
			}
			cur, next = next, cur
			stride, width = st.outPad, st.out
		case stepAct32:
			if st.act == act32ELU && eluAlpha == 1 {
				// Branchless SSE ELU over the whole padded region: padding
				// lanes are exactly +0 and elu32(+0) is exactly +0, so the
				// zero-padding invariant survives.
				tensor.EluInPlace32(cur[:rows*stride])
			} else {
				applyAct32(cur, rows, width, stride, st.act)
			}
		case stepAffine32:
			for r := 0; r < rows; r++ {
				row := cur[r*stride : r*stride+width]
				for j, v := range row {
					row[j] = st.scale[j]*v + st.shift[j]
				}
			}
		}
	}

	out := ws.buf(len(n.Layers)-1, rows, width)
	for r := 0; r < rows; r++ {
		src := cur[r*stride : r*stride+width]
		drow := out.Data[r*width : r*width+width]
		for c, v := range src {
			drow[c] = float64(v)
		}
	}
	return out
}

// applyAct32 applies the nonlinearity in place over the live lanes. ELU
// (with the default alpha) is handled by tensor.EluInPlace32 before this
// switch is reached; sigmoid uses the same fast float32 exp, and the
// remaining transcendentals evaluate in float64 on the float32 value.
// ReLU is written as v < 0 so NaN passes through unchanged.
func applyAct32(buf []float32, rows, width, stride int, k actKind32) {
	for r := 0; r < rows; r++ {
		row := buf[r*stride : r*stride+width]
		switch k {
		case act32ReLU:
			for j, v := range row {
				if v < 0 {
					row[j] = 0
				}
			}
		case act32ELU:
			for j, v := range row {
				if !(v > 0) {
					row[j] = float32(eluAlpha * (math.Exp(float64(v)) - 1))
				}
			}
		case act32LeakyReLU:
			for j, v := range row {
				if v < 0 {
					row[j] = float32(leakySlope) * v
				}
			}
		case act32Sigmoid:
			for j, v := range row {
				row[j] = 1 / (1 + tensor.Exp32(-v))
			}
		case act32Tanh:
			for j, v := range row {
				row[j] = float32(math.Tanh(float64(v)))
			}
		}
	}
}

// grow32 returns s resized to n elements, reallocating only on growth.
func grow32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}
