package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// sacctFields is the field list this parser expects, matching
//
//	sacct --allusers --parsable2 --noconvert \
//	      --format=JobID,User,Partition,State,Submit,Eligible,Start,End,ReqCPUS,ReqMem,ReqNodes,Timelimit,Priority,QOS
//
// — the export an operator would pull from a production Slurm to train
// TROUT on real history (the paper's own data source).
var sacctFields = []string{
	"JobID", "User", "Partition", "State", "Submit", "Eligible", "Start",
	"End", "ReqCPUS", "ReqMem", "ReqNodes", "Timelimit", "Priority", "QOS",
}

// ReadSacct parses `sacct --parsable2` output (pipe-separated, header row)
// into a Trace. Job steps (IDs like "123.batch", "123.0") are skipped;
// records that never started (cancelled while pending) are skipped; user
// and QOS strings are interned to integer IDs.
func ReadSacct(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty sacct input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), "|")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, f := range sacctFields {
		if _, ok := col[f]; !ok {
			return nil, fmt.Errorf("trace: sacct header missing %q (need --format=%s)",
				f, strings.Join(sacctFields, ","))
		}
	}

	users := map[string]int{}
	qoses := map[string]int{}
	intern := func(m map[string]int, key string) int {
		if id, ok := m[key]; ok {
			return id
		}
		id := len(m) + 1
		m[key] = id
		return id
	}

	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		rec := strings.Split(raw, "|")
		if len(rec) < len(header) {
			return nil, fmt.Errorf("trace: sacct line %d has %d fields, want %d", line, len(rec), len(header))
		}
		get := func(name string) string { return rec[col[name]] }

		jobID := get("JobID")
		if strings.ContainsAny(jobID, "._+") {
			continue // job step or array/het component, not the allocation
		}
		id, err := strconv.Atoi(jobID)
		if err != nil {
			continue // malformed ID: skip rather than abort a huge dump
		}
		state := normalizeState(get("State"))
		start, err1 := parseSacctTime(get("Start"))
		end, err2 := parseSacctTime(get("End"))
		if err1 != nil || err2 != nil {
			continue // never ran (Start/End "Unknown" or "None")
		}
		submit, err := parseSacctTime(get("Submit"))
		if err != nil {
			return nil, fmt.Errorf("trace: sacct line %d: bad Submit %q", line, get("Submit"))
		}
		eligible, err := parseSacctTime(get("Eligible"))
		if err != nil {
			eligible = submit
		}
		cpus, err := strconv.Atoi(get("ReqCPUS"))
		if err != nil || cpus <= 0 {
			continue
		}
		nodes, err := strconv.Atoi(get("ReqNodes"))
		if err != nil || nodes <= 0 {
			nodes = 1
		}
		mem, err := parseSacctMem(get("ReqMem"))
		if err != nil || mem <= 0 {
			mem = 1
		}
		limit, err := parseSacctDuration(get("Timelimit"))
		if err != nil || limit <= 0 {
			continue
		}
		prio, _ := strconv.ParseInt(get("Priority"), 10, 64)

		t.Jobs = append(t.Jobs, Job{
			ID: id, User: intern(users, get("User")), Partition: get("Partition"),
			State:  state,
			Submit: submit, Eligible: eligible, Start: start, End: end,
			ReqCPUs: cpus, ReqMemGB: mem, ReqNodes: nodes,
			TimeLimit: limit, Priority: prio, QOS: intern(qoses, get("QOS")) - 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading sacct: %w", err)
	}
	if len(t.Jobs) == 0 {
		return nil, fmt.Errorf("trace: sacct input contained no usable job records")
	}
	t.SortByEligible()
	return t, nil
}

// normalizeState maps sacct state strings (possibly with suffixes like
// "CANCELLED by 123") onto the schema's states.
func normalizeState(s string) JobState {
	up := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(up, "COMPLETED"):
		return StateCompleted
	case strings.HasPrefix(up, "TIMEOUT"):
		return StateTimeout
	case strings.HasPrefix(up, "CANCELLED"):
		return StateCancelled
	case strings.HasPrefix(up, "FAILED"), strings.HasPrefix(up, "OUT_OF_ME"), strings.HasPrefix(up, "NODE_FAIL"):
		return StateFailed
	default:
		return JobState(up)
	}
}

// parseSacctTime parses Slurm's ISO-ish timestamps ("2024-03-01T12:34:56")
// and rejects the "Unknown"/"None" placeholders.
func parseSacctTime(s string) (int64, error) {
	switch s {
	case "", "Unknown", "None", "N/A":
		return 0, fmt.Errorf("no time")
	}
	ts, err := time.Parse("2006-01-02T15:04:05", s)
	if err != nil {
		return 0, err
	}
	return ts.Unix(), nil
}

// parseSacctDuration parses Slurm time limits: "[DD-]HH:MM:SS" or "MM:SS".
func parseSacctDuration(s string) (int64, error) {
	switch s {
	case "", "UNLIMITED", "Partition_Limit":
		return 0, fmt.Errorf("no limit")
	}
	var days int64
	rest := s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		d, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return 0, err
		}
		days = d
		rest = s[i+1:]
	}
	parts := strings.Split(rest, ":")
	var h, m, sec int64
	var err error
	switch len(parts) {
	case 3:
		if h, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return 0, err
		}
		if m, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, err
		}
		if sec, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
			return 0, err
		}
	case 2:
		if m, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return 0, err
		}
		if sec, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("trace: bad duration %q", s)
	}
	return days*86400 + h*3600 + m*60 + sec, nil
}

// parseSacctMem parses ReqMem values like "4000M", "32G", "2T", "512000K",
// optionally with Slurm's per-node/per-cpu suffixes ("4Gn", "4000Mc"),
// returning gigabytes. Per-CPU/per-node scaling is left to the caller (the
// value is taken as the total request).
func parseSacctMem(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("no mem")
	}
	s = strings.TrimSuffix(strings.TrimSuffix(s, "n"), "c")
	if s == "" {
		return 0, fmt.Errorf("no mem")
	}
	unit := s[len(s)-1]
	num := s
	mult := 1.0 / (1 << 10) // bare number: Slurm reports MB by default
	switch unit {
	case 'K', 'k':
		num = s[:len(s)-1]
		mult = 1.0 / (1 << 20)
	case 'M', 'm':
		num = s[:len(s)-1]
		mult = 1.0 / (1 << 10)
	case 'G', 'g':
		num = s[:len(s)-1]
		mult = 1
	case 'T', 't':
		num = s[:len(s)-1]
		mult = 1 << 10
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}
