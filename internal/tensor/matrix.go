// Package tensor provides dense float64 matrices and the numeric kernels
// used by the neural-network stack: matrix multiplication (serial and
// goroutine-parallel), transposition, broadcast row operations, element-wise
// maps and reductions, and weight initialization. It is deliberately small:
// only the operations the models in this repository need.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major float64 matrix. The zero value is an empty
// 0x0 matrix. Data is exposed so hot loops elsewhere can index it directly;
// treat it as owned by the Matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a rows x cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Equal reports whether m and o have identical shape and elements within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	max := m.Rows
	if max > 6 {
		max = 6
	}
	for i := 0; i < max; i++ {
		s += fmt.Sprintf("%v", m.Row(i))
		if i != max-1 {
			s += "; "
		}
	}
	if max < m.Rows {
		s += "; ..."
	}
	return s + "]"
}

// parallelThreshold is the number of multiply-adds below which MatMul stays
// serial; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a*b, parallelizing across row blocks when the product is
// large enough to amortize goroutine startup.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(a, b, New(a.Rows, b.Cols))
}

// MatMulInto computes out = a*b into an existing destination, overwriting
// its contents, and returns out. It is the allocation-free sibling of MatMul
// for hot loops that reuse workspaces; the same row-block parallel split
// applies. out must be a.Rows x b.Cols and must not alias a or b.
func MatMulInto(a, b, out *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto destination %dx%d for %dx%d product", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	// The serial fast path stays closure-free so steady-state small products
	// are zero-alloc (the closure below escapes to the heap).
	if work := a.Rows * a.Cols * b.Cols; work < parallelThreshold || runtime.GOMAXPROCS(0) < 2 || a.Rows < 2 {
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulRange(a, b, out, lo, hi)
	})
	return out
}

// parallelRows runs fn over [0, rows) split into contiguous row blocks, one
// per worker, when work is large enough to amortize goroutine startup;
// otherwise it calls fn once inline.
func parallelRows(rows, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes out[lo:hi] = a[lo:hi] * b using an ikj loop order so
// the inner loop streams both b and out rows sequentially. Each destination
// row is zeroed first, so out's prior contents do not matter. There is
// deliberately no skip for zero multiplicands: IEEE 754 says 0 × NaN = NaN,
// and skipping would let a poisoned operand slip through a zero in the other
// (the divergence guard depends on NaNs propagating).
func matMulRange(a, b, out *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a * bᵀ without materializing the transpose.
func MatMulTransB(a, b *Matrix) *Matrix {
	return MatMulTransBInto(a, b, New(a.Rows, b.Rows))
}

// MatMulTransBInto computes out = a * bᵀ into an existing destination,
// overwriting its contents, and returns out. Like MatMulInto it splits
// across row blocks when the product is large. out must be a.Rows x b.Rows
// and must not alias a or b.
func MatMulTransBInto(a, b, out *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d * (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBInto destination %dx%d for %dx%d product", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if work := a.Rows * a.Cols * b.Rows; work < parallelThreshold || runtime.GOMAXPROCS(0) < 2 || a.Rows < 2 {
		matMulTransBRange(a, b, out, 0, a.Rows)
		return out
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		matMulTransBRange(a, b, out, lo, hi)
	})
	return out
}

// matMulTransBRange computes out[lo:hi] = a[lo:hi] * bᵀ with a dot-product
// inner loop (both operands stream row-major).
func matMulTransBRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MatMulTransAAccum accumulates out += aᵀ*b without materializing the
// transpose — the dense-layer weight-gradient kernel (dW += inᵀ·gradOut).
// out must be a.Cols x b.Cols and must not alias a or b. Accumulation per
// destination element runs over a's rows in ascending order, matching
// AddInPlace(out, MatMul(a.T(), b)) bit for bit when out starts zeroed.
func MatMulTransAAccum(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransAAccum shape mismatch (%dx%d)T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAAccum destination %dx%d for %dx%d product", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Data[i*n : i*n+n]
		for k, av := range arow {
			orow := out.Data[k*n : k*n+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Add returns a+b element-wise.
func Add(a, b *Matrix) *Matrix { return zipNew(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a-b element-wise.
func Sub(a, b *Matrix) *Matrix { return zipNew(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the element-wise (Hadamard) product a⊙b.
func Mul(a, b *Matrix) *Matrix { return zipNew(a, b, func(x, y float64) float64 { return x * y }) }

func zipNew(a, b *Matrix, f func(x, y float64) float64) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v, b.Data[i])
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply returns f applied element-wise as a new matrix.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f element-wise in place.
func (m *Matrix) ApplyInPlace(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// AddRowVector adds vec to every row of m in place. vec must have m.Cols
// elements; this is the bias-broadcast used by dense layers.
func (m *Matrix) AddRowVector(vec []float64) {
	if len(vec) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(vec), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range vec {
			row[j] += v
		}
	}
}

// ColSums returns the per-column sums (length m.Cols).
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			sums[j] += v
		}
	}
	return sums
}

// ColMeans returns the per-column means (length m.Cols).
func (m *Matrix) ColMeans() []float64 {
	sums := m.ColSums()
	if m.Rows == 0 {
		return sums
	}
	inv := 1.0 / float64(m.Rows)
	for j := range sums {
		sums[j] *= inv
	}
	return sums
}

// ColVariances returns the biased per-column variances given the means.
func (m *Matrix) ColVariances(means []float64) []float64 {
	vars := make([]float64, m.Cols)
	if m.Rows == 0 {
		return vars
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			d := v - means[j]
			vars[j] += d * d
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range vars {
		vars[j] *= inv
	}
	return vars
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// SelectRows gathers the given rows (copying) into a new matrix.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// SelectRowsInto gathers the given rows into out, reshaping it to
// len(idx) x m.Cols and growing its backing array only when too small —
// the allocation-free sibling of SelectRows for hot batch loops.
func (m *Matrix) SelectRowsInto(idx []int, out *Matrix) *Matrix {
	need := len(idx) * m.Cols
	if cap(out.Data) < need {
		out.Data = make([]float64, need)
	}
	out.Rows, out.Cols, out.Data = len(idx), m.Cols, out.Data[:need]
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// RandN fills m with N(0, std) noise from rng.
func (m *Matrix) RandN(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// XavierInit fills m with the Glorot-uniform initialization for a layer with
// fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// HeInit fills m with the He-normal initialization for ReLU-family layers.
func (m *Matrix) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	m.RandN(rng, std)
}
