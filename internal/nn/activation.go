// Package nn implements the feed-forward neural networks used by TROUT:
// dense layers, the activation functions the paper evaluates (ELU, ReLU,
// sigmoid, tanh), dropout and batch normalization, the losses (binary
// cross-entropy for the classifier, smooth-L1 for the regressor), SGD and
// Adam optimizers, mini-batch training with goroutine-parallel gradient
// workers, and gob model serialization. Only the standard library is used.
package nn

import (
	"fmt"
	"math"
)

// ActivationKind names an element-wise nonlinearity.
type ActivationKind string

// Supported activations. The paper selects ELU for the regressor's hidden
// layers after comparing against ReLU; sigmoid is used on the classifier
// output; Identity is the linear output of the regressor.
const (
	ReLU      ActivationKind = "relu"
	ELU       ActivationKind = "elu"
	LeakyReLU ActivationKind = "leakyrelu"
	Sigmoid   ActivationKind = "sigmoid"
	Tanh      ActivationKind = "tanh"
	Identity  ActivationKind = "identity"
)

// eluAlpha is the standard ELU α (Clevert et al. 2016).
const eluAlpha = 1.0

// leakySlope is the negative-side slope for LeakyReLU.
const leakySlope = 0.01

// activate returns f(x) for the given activation.
func activate(k ActivationKind, x float64) float64 {
	switch k {
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case ELU:
		if x > 0 {
			return x
		}
		return eluAlpha * (math.Exp(x) - 1)
	case LeakyReLU:
		if x > 0 {
			return x
		}
		return leakySlope * x
	case Sigmoid:
		return 1.0 / (1.0 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	case Identity:
		return x
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", k))
	}
}

// activateGrad returns f'(x) given both the pre-activation x and the cached
// output y = f(x); using y lets sigmoid/tanh/ELU avoid recomputing exp.
func activateGrad(k ActivationKind, x, y float64) float64 {
	switch k {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case ELU:
		if x > 0 {
			return 1
		}
		return y + eluAlpha // d/dx α(e^x−1) = αe^x = y+α
	case LeakyReLU:
		if x > 0 {
			return 1
		}
		return leakySlope
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	case Identity:
		return 1
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", k))
	}
}

// ValidActivation reports whether k names a supported activation.
func ValidActivation(k ActivationKind) bool {
	switch k {
	case ReLU, ELU, LeakyReLU, Sigmoid, Tanh, Identity:
		return true
	}
	return false
}
