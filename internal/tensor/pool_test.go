package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatMulNaNPropagatesThroughZero is the regression test for the
// zero-skip bug: matMulRange used to skip av == 0 multiplicands, which
// silently masked a NaN (or Inf) in the other operand — IEEE 754 says
// 0 × NaN = NaN, so a poisoned activation must survive a zero-weight row.
func TestMatMulNaNPropagatesThroughZero(t *testing.T) {
	a := FromRows([][]float64{{0, 1}})
	b := FromRows([][]float64{{math.NaN(), 2}, {3, 4}})
	out := MatMul(a, b)
	// out[0][0] = 0*NaN + 1*3 = NaN, out[0][1] = 0*2 + 1*4 = 4.
	if !math.IsNaN(out.At(0, 0)) {
		t.Fatalf("NaN in b masked by zero in a: got %v", out.At(0, 0))
	}
	if out.At(0, 1) != 4 {
		t.Fatalf("out[0][1] = %v, want 4", out.At(0, 1))
	}

	// Same through the transposed kernel.
	bt := b.T()
	outT := MatMulTransB(a, bt)
	if !math.IsNaN(outT.At(0, 0)) {
		t.Fatalf("NaN masked in MatMulTransB: got %v", outT.At(0, 0))
	}

	// And an Inf survives too.
	b.Set(0, 0, math.Inf(1))
	if got := MatMul(a, b).At(0, 0); !math.IsNaN(got) {
		// 0 * +Inf = NaN per IEEE 754.
		t.Fatalf("0*Inf = %v, want NaN", got)
	}
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulIntoMatchesMatMul checks the destination-reusing variants are
// bit-identical to the allocating ones, including on dirty destinations.
func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][3]int{{1, 33, 64}, {17, 8, 5}, {130, 70, 90}} {
		a := randMat(rng, shape[0], shape[1])
		b := randMat(rng, shape[1], shape[2])
		want := MatMul(a, b)
		dst := New(shape[0], shape[2])
		dst.Fill(99) // prior contents must not leak through
		got := MatMulInto(a, b, dst)
		if !got.Equal(want, 0) {
			t.Fatalf("MatMulInto differs from MatMul at %v", shape)
		}

		bt := b.T()
		wantT := MatMulTransB(a, bt)
		dstT := New(shape[0], shape[2])
		dstT.Fill(-7)
		gotT := MatMulTransBInto(a, bt, dstT)
		if !gotT.Equal(wantT, 0) {
			t.Fatalf("MatMulTransBInto differs from MatMulTransB at %v", shape)
		}
		// The two kernels agree with each other (same math, different layout).
		if !wantT.Equal(want, 1e-12) {
			t.Fatalf("MatMulTransB differs from MatMul at %v", shape)
		}
	}
}

// TestMatMulTransBParallelMatchesSerial pushes MatMulTransB over the
// parallel threshold and checks the split agrees with a serial range pass.
func TestMatMulTransBParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 80, 70)
	b := randMat(rng, 90, 70) // work = 80*70*90 > parallelThreshold
	got := MatMulTransB(a, b)
	want := New(80, 90)
	matMulTransBRange(a, b, want, 0, a.Rows)
	if !got.Equal(want, 0) {
		t.Fatal("parallel MatMulTransB differs from serial")
	}
}

func TestMatMulIntoShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"into-wrong-dst":   func() { MatMulInto(New(2, 3), New(3, 4), New(2, 5)) },
		"transb-wrong-dst": func() { MatMulTransBInto(New(2, 3), New(4, 3), New(2, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoolReuseAndGrowth(t *testing.T) {
	m := Get(4, 8)
	if m.Rows != 4 || m.Cols != 8 || len(m.Data) != 32 {
		t.Fatalf("Get shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Fill(3)
	Put(m)
	z := GetZeroed(2, 2)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed returned dirty data: %v", z.Data)
		}
	}
	Put(z)
	// A bigger request than anything pooled must still come back right.
	big := Get(100, 100)
	if big.Rows != 100 || len(big.Data) != 10000 {
		t.Fatal("pool returned undersized matrix")
	}
	Put(big)
	Put(nil) // no-op
}

// TestMatMulIntoSteadyStateAllocs locks in the point of the Into variants:
// after warm-up, a matmul into a reused destination does not allocate.
func TestMatMulIntoSteadyStateAllocs(t *testing.T) {
	a, b := New(4, 16), New(16, 8)
	out := New(4, 8)
	allocs := testing.AllocsPerRun(200, func() { MatMulInto(a, b, out) })
	if allocs > 0 {
		t.Fatalf("MatMulInto allocates %.1f per run, want 0", allocs)
	}
}
