// Package smote implements the class-balancing the paper applies before
// training the binary classifier (§III): SMOTE oversampling of the minority
// class (Chawla et al. 2002) — synthetic samples interpolated between a
// minority point and one of its k nearest minority neighbors — combined with
// random undersampling of the majority class, yielding artificially balanced
// classes.
package smote

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Config controls balancing.
type Config struct {
	// K is the neighbor count for SMOTE interpolation; 0 means 5.
	K int
	// TargetRatio is the desired minority/majority size ratio after
	// balancing; 0 means 1.0 (fully balanced).
	TargetRatio float64
	// MaxOversample caps synthetic samples per original minority point;
	// 0 means 10.
	MaxOversample int
	Seed          int64
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 5
	}
	if c.TargetRatio <= 0 {
		c.TargetRatio = 1
	}
	if c.MaxOversample <= 0 {
		c.MaxOversample = 10
	}
}

// Balance returns a balanced dataset: the minority class is oversampled with
// SMOTE and the majority class randomly undersampled until their ratio is
// ~TargetRatio. Labels are booleans; the minority class is detected
// automatically. Output order is shuffled deterministically from Seed.
func Balance(cfg Config, X [][]float64, y []bool) ([][]float64, []bool, error) {
	if len(X) != len(y) {
		return nil, nil, fmt.Errorf("smote: %d samples vs %d labels", len(X), len(y))
	}
	if len(X) == 0 {
		return nil, nil, fmt.Errorf("smote: empty dataset")
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var minIdx, majIdx []int
	for i, lbl := range y {
		if lbl {
			minIdx = append(minIdx, i)
		} else {
			majIdx = append(majIdx, i)
		}
	}
	minLabel := true
	if len(minIdx) > len(majIdx) {
		minIdx, majIdx = majIdx, minIdx
		minLabel = false
	}
	if len(minIdx) == 0 {
		return nil, nil, fmt.Errorf("smote: only one class present")
	}

	// Geometric-mean target size: oversample the minority and undersample
	// the majority toward each other rather than inflating the minority
	// all the way up (keeps synthetic fraction bounded).
	target := int(math.Sqrt(float64(len(minIdx)) * float64(len(majIdx))))
	maxMinority := len(minIdx) * (1 + cfg.MaxOversample)
	if target > maxMinority {
		target = maxMinority
	}
	if target < len(minIdx) {
		target = len(minIdx)
	}
	majTarget := int(float64(target) / cfg.TargetRatio)
	if majTarget > len(majIdx) {
		majTarget = len(majIdx)
	}
	if majTarget < 1 {
		majTarget = 1
	}

	var outX [][]float64
	var outY []bool

	// Minority originals.
	for _, i := range minIdx {
		outX = append(outX, X[i])
		outY = append(outY, minLabel)
	}
	// SMOTE synthetics.
	need := target - len(minIdx)
	if need > 0 {
		synth := synthesize(rng, X, minIdx, cfg.K, need)
		for _, s := range synth {
			outX = append(outX, s)
			outY = append(outY, minLabel)
		}
	}
	// Undersampled majority.
	perm := rng.Perm(len(majIdx))
	for _, p := range perm[:majTarget] {
		outX = append(outX, X[majIdx[p]])
		outY = append(outY, !minLabel)
	}

	// Shuffle the combined set.
	order := rng.Perm(len(outX))
	shufX := make([][]float64, len(outX))
	shufY := make([]bool, len(outY))
	for k, p := range order {
		shufX[k] = outX[p]
		shufY[k] = outY[p]
	}
	return shufX, shufY, nil
}

// synthesize creates `need` SMOTE samples by interpolating between minority
// points and their k nearest minority neighbors.
func synthesize(rng *rand.Rand, X [][]float64, minIdx []int, k, need int) [][]float64 {
	if len(minIdx) == 1 {
		// Degenerate: duplicate the single point with tiny jitter.
		out := make([][]float64, need)
		base := X[minIdx[0]]
		for s := range out {
			row := make([]float64, len(base))
			copy(row, base)
			out[s] = row
		}
		return out
	}
	if k >= len(minIdx) {
		k = len(minIdx) - 1
	}
	// Precompute k nearest minority neighbors for each minority point
	// (brute force O(n²), the dominant cost of Balance). Rows are
	// independent and the RNG is untouched here, so the search fans out
	// across workers without changing the seeded output: each row's
	// neighbor list depends only on the distances, and the interpolation
	// loop below consumes the RNG in the exact same order either way.
	neighbors := neighborLists(X, minIdx, k)
	out := make([][]float64, 0, need)
	for len(out) < need {
		a := rng.Intn(len(minIdx))
		b := neighbors[a][rng.Intn(k)]
		t := rng.Float64()
		pa, pb := X[minIdx[a]], X[minIdx[b]]
		row := make([]float64, len(pa))
		for j := range row {
			row[j] = pa[j] + t*(pb[j]-pa[j])
		}
		out = append(out, row)
	}
	return out
}

// neighborParallelRows is the minority size below which the quadratic
// neighbor search stays serial (goroutine fan-out costs more than it saves).
const neighborParallelRows = 256

// neighborLists computes each minority point's k nearest minority neighbors,
// row-parallel for large minority sets. Deterministic regardless of worker
// count: every row's result is a pure function of the distances.
func neighborLists(X [][]float64, minIdx []int, k int) [][]int {
	neighbors := make([][]int, len(minIdx))
	type dn struct {
		d   float64
		idx int
	}
	row := func(a int, ds []dn) {
		ds = ds[:0]
		for b := range minIdx {
			if a == b {
				continue
			}
			ds = append(ds, dn{dist2(X[minIdx[a]], X[minIdx[b]]), b})
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
		nb := make([]int, k)
		for i := 0; i < k; i++ {
			nb[i] = ds[i].idx
		}
		neighbors[a] = nb
	}
	workers := runtime.GOMAXPROCS(0)
	if len(minIdx) < neighborParallelRows || workers < 2 {
		ds := make([]dn, 0, len(minIdx)-1)
		for a := range minIdx {
			row(a, ds)
		}
		return neighbors
	}
	var wg sync.WaitGroup
	chunk := (len(minIdx) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(minIdx) {
			hi = len(minIdx)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ds := make([]dn, 0, len(minIdx)-1)
			for a := lo; a < hi; a++ {
				row(a, ds)
			}
		}(lo, hi)
	}
	wg.Wait()
	return neighbors
}

func dist2(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
