package trout

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// handleMetrics renders every family in the service's obs.Registry in
// Prometheus text exposition format 0.0.4: prediction tier counters,
// snapshot-source split, HTTP request counters and latency, per-stage
// predict pipeline latency, livestate engine gauges (queue depth by
// partition follows the prometheus-slurm-exporter convention), WAL
// durability gauges, online accuracy, and training telemetry. Output is
// deterministically ordered so scrapes diff cleanly.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WriteText(w)
}
