// Benchmarks contrasting the legacy O(N) whole-trace snapshot scan with
// the livestate engine's indexed O(log n + k) extraction — the tentpole
// speedup `make bench` measures on a 50k-job trace (TROUT_BENCH_JOBS
// overrides the size). Both sides produce equivalent snapshots (see
// TestLiveStateEquivalence); only extraction is timed, not feature math.
package trout_test

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/livestate"
	"repro/internal/trace"
)

var (
	lsOnce   sync.Once
	lsTrace  *trout.Trace
	lsEngine *livestate.Engine
	lsAt     int64
	lsTarget trace.Job
	lsErr    error
)

// livestateBenchSetup generates the benchmark trace once and replays the
// first half of its event stream into an engine, so both paths snapshot
// the same mid-stream instant: the engine from its indexes, the legacy
// path by scanning every job in the trace.
func livestateBenchSetup(b *testing.B) {
	b.Helper()
	lsOnce.Do(func() {
		n := 50000
		if s := os.Getenv("TROUT_BENCH_JOBS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		p := trout.DefaultPipeline(n, 11)
		tr, _, err := p.GenerateTrace()
		if err != nil {
			lsErr = err
			return
		}
		sort.Slice(tr.Jobs, func(i, k int) bool { return tr.Jobs[i].ID < tr.Jobs[k].ID })
		lsTrace = tr

		evs := livestate.EventsFromTrace(tr)
		cut := evs[len(evs)/2].Time
		eng := livestate.NewEngine()
		for i := range evs {
			if evs[i].Time > cut {
				break
			}
			if err := eng.ApplyEvent(evs[i]); err != nil {
				lsErr = err
				return
			}
		}
		lsEngine = eng
		lsAt = eng.Now()
		lsTarget = trace.Job{
			ID: 9_000_000, User: 3, Partition: "shared",
			Submit: lsAt, Eligible: lsAt,
			ReqCPUs: 8, ReqMemGB: 16, ReqNodes: 1, TimeLimit: 7200, Priority: 3000,
		}
	})
	if lsErr != nil {
		b.Fatal(lsErr)
	}
}

// BenchmarkSnapshotAtInstant is the legacy path: reclassify all N trace
// jobs on every snapshot.
func BenchmarkSnapshotAtInstant(b *testing.B) {
	livestateBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := trout.SnapshotAtInstant(lsTrace, lsAt, lsTarget)
		if len(snap.Pending)+len(snap.Running) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkLiveStateSnapshot is the engine path: emit the indexed
// pending/running sets and the target user's history window.
func BenchmarkLiveStateSnapshot(b *testing.B) {
	livestateBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := lsEngine.SnapshotAt(lsTarget, lsAt)
		if len(snap.Pending)+len(snap.Running) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
