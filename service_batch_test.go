package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// seqPredict is the decoded POST /predict payload used for equivalence
// checks against the batch endpoint.
type seqPredict struct {
	Long    bool    `json:"long"`
	Prob    float64 `json:"prob"`
	Minutes float64 `json:"minutes"`
	Message string  `json:"message"`
	Tier    string  `json:"tier"`
	Source  string  `json:"snapshot_source"`
	Pending int     `json:"pending_in_snapshot"`
	Running int     `json:"running_in_snapshot"`
}

type batchReply struct {
	At      int64  `json:"at"`
	Source  string `json:"snapshot_source"`
	Pending int    `json:"pending_in_snapshot"`
	Running int    `json:"running_in_snapshot"`
	Results []struct {
		Long    bool    `json:"long"`
		Prob    float64 `json:"prob"`
		Minutes float64 `json:"minutes"`
		Message string  `json:"message"`
		Tier    string  `json:"tier"`
		Error   string  `json:"error"`
	} `json:"results"`
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// batchFixtureJobs derives hypothetical jobs from trace jobs spread across
// the fixture, varied enough to hit both classifier verdicts.
func batchFixtureJobs(e *trout.Experiment, n int) []trace.Job {
	jobs := make([]trace.Job, n)
	for i := range jobs {
		tmpl := e.Trace.Jobs[(i+1)*len(e.Trace.Jobs)/(n+1)]
		jobs[i] = trace.Job{
			User: tmpl.User, Partition: tmpl.Partition,
			ReqCPUs: tmpl.ReqCPUs, ReqMemGB: tmpl.ReqMemGB,
			ReqNodes: tmpl.ReqNodes, ReqGPUs: tmpl.ReqGPUs,
			TimeLimit: tmpl.TimeLimit, Priority: tmpl.Priority, QOS: tmpl.QOS,
		}
	}
	return jobs
}

// checkBatchMatchesSequential asserts POST /predict/batch answers exactly
// what n sequential POST /predict calls answer for the same jobs at the
// same instant — values, tier labels, messages, and snapshot source all
// bit-identical.
func checkBatchMatchesSequential(t *testing.T, url string, at int64, jobs []trace.Job) {
	t.Helper()
	want := make([]seqPredict, len(jobs))
	for i, j := range jobs {
		code := postJSON(t, url+"/predict", map[string]any{"at": at, "job": j}, &want[i])
		if code != http.StatusOK {
			t.Fatalf("sequential predict %d status %d", i, code)
		}
	}

	var got batchReply
	if code := postJSON(t, url+"/predict/batch", map[string]any{"at": at, "jobs": jobs}, &got); code != http.StatusOK {
		t.Fatalf("batch predict status %d", code)
	}
	if len(got.Results) != len(jobs) {
		t.Fatalf("batch returned %d results for %d jobs", len(got.Results), len(jobs))
	}
	for i, w := range want {
		g := got.Results[i]
		if g.Error != "" {
			t.Fatalf("job %d: batch error %q", i, g.Error)
		}
		if g.Long != w.Long || g.Prob != w.Prob || g.Minutes != w.Minutes ||
			g.Message != w.Message || g.Tier != w.Tier {
			t.Fatalf("job %d mismatch:\n batch: %+v\n  seq: %+v", i, g, w)
		}
		if got.Source != w.Source || got.Pending != w.Pending || got.Running != w.Running {
			t.Fatalf("job %d snapshot mismatch: batch %s/%d/%d vs seq %s/%d/%d", i,
				got.Source, got.Pending, got.Running, w.Source, w.Pending, w.Running)
		}
	}
}

// TestServiceBatchMatchesSequential is the equivalence guarantee for the
// batch endpoint, exercised through both snapshot sources: a historical
// instant (legacy trace scan) and a live instant (indexed engine).
func TestServiceBatchMatchesSequential(t *testing.T) {
	srv, e := testService(t)
	jobs := batchFixtureJobs(e, 12)

	histAt := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	t.Run("scan", func(t *testing.T) {
		checkBatchMatchesSequential(t, srv.URL, histAt, jobs)
	})

	liveAt := int64(0)
	for _, j := range e.Trace.Jobs {
		if j.End > liveAt {
			liveAt = j.End
		}
	}
	t.Run("live", func(t *testing.T) {
		checkBatchMatchesSequential(t, srv.URL, liveAt, jobs)
	})
}

// TestServiceBatchFallbackMatchesSequential repeats the equivalence check
// with a poisoned classifier: every row drops out of the NN mini-batch to
// the baseline tier, and the per-row fallback must still answer exactly
// like the single-job path.
func TestServiceBatchFallbackMatchesSequential(t *testing.T) {
	e := sharedExperiment(t)
	srv, svc := resilientServer(t, poisonedClassifier(t, resilientBundle(t)), trout.ServiceConfig{})
	jobs := batchFixtureJobs(e, 6)
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	checkBatchMatchesSequential(t, srv.URL, at, jobs)

	var got batchReply
	if code := postJSON(t, srv.URL+"/predict/batch", map[string]any{"at": at, "jobs": jobs}, &got); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	for i, g := range got.Results {
		if g.Tier != resilience.TierBaseline {
			t.Fatalf("poisoned batch job %d answered by %q", i, g.Tier)
		}
	}
	if c := svc.FallbackCounters(); c[resilience.TierBaseline] == 0 {
		t.Fatalf("tier counters after batch: %v", c)
	}
}

// TestServiceBatchValidation pins the endpoint's input checks.
func TestServiceBatchValidation(t *testing.T) {
	srv, e := testService(t)
	job := batchFixtureJobs(e, 1)[0]
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible

	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing at", map[string]any{"jobs": []trace.Job{job}}, http.StatusBadRequest},
		{"negative at", map[string]any{"at": -5, "jobs": []trace.Job{job}}, http.StatusBadRequest},
		{"no jobs", map[string]any{"at": at}, http.StatusBadRequest},
		{"negative job id", map[string]any{"at": at, "jobs": []map[string]any{{"id": -7, "partition": job.Partition}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := postJSON(t, srv.URL+"/predict/batch", c.body, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}

	resp, err := http.Get(srv.URL + "/predict/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict/batch gave %d", resp.StatusCode)
	}
}

// TestServiceBatchSizeLimit caps batches at MaxBatchJobs with a 413.
func TestServiceBatchSizeLimit(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{MaxBatchJobs: 4})
	jobs := batchFixtureJobs(e, 5)
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	if code := postJSON(t, srv.URL+"/predict/batch", map[string]any{"at": at, "jobs": jobs}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch status %d, want 413", code)
	}
	var got batchReply
	if code := postJSON(t, srv.URL+"/predict/batch", map[string]any{"at": at, "jobs": jobs[:4]}, &got); code != http.StatusOK {
		t.Fatalf("at-limit batch status %d", code)
	}
}

// TestServicePredictNegativeInputs pins the single-job endpoints' rejection
// of negative instants and job IDs with structured 400s.
func TestServicePredictNegativeInputs(t *testing.T) {
	srv, e := testService(t)
	job := batchFixtureJobs(e, 1)[0]

	if code := postJSON(t, srv.URL+"/predict", map[string]any{"at": -100, "job": job}, nil); code != http.StatusBadRequest {
		t.Errorf("POST at<0 gave %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/predict",
		map[string]any{"at": 1700000000, "job": map[string]any{"id": -3, "partition": job.Partition}}, nil); code != http.StatusBadRequest {
		t.Errorf("POST negative job id gave %d, want 400", code)
	}
	for _, path := range []string{"/predict?job=-5", "/features?job=-1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var eb resilience.ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s gave %d, want 400", path, resp.StatusCode)
		}
		if err != nil || !strings.Contains(eb.Error, "non-negative") {
			t.Errorf("%s error body %+v (%v)", path, eb, err)
		}
	}
}

// TestServiceConcurrentStateSwapAndBatch drives POST /state swaps against
// GET/POST /predict and /predict/batch concurrently; under -race this
// validates the single-critical-section state swap (trace and live engine
// reseeded atomically under s.mu).
func TestServiceConcurrentStateSwapAndBatch(t *testing.T) {
	srv, e := testService(t)
	jobs := batchFixtureJobs(e, 4)
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/3].ID
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID))
				if err == nil {
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						t.Errorf("GET predict status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
				raw, _ := json.Marshal(map[string]any{"at": at, "jobs": jobs})
				bresp, err := http.Post(srv.URL+"/predict/batch", "application/json", bytes.NewReader(raw))
				if err == nil {
					if bresp.StatusCode != http.StatusOK {
						t.Errorf("batch status %d", bresp.StatusCode)
					}
					bresp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			// Alternate between a truncated and the full trace so swaps
			// genuinely change both the legacy state and the engine seed.
			n := len(e.Trace.Jobs)
			if i%2 == 0 {
				n = 100
			}
			sub := &trout.Trace{Jobs: e.Trace.Jobs[:n]}
			var buf bytes.Buffer
			if err := sub.WriteJSONL(&buf); err != nil {
				return
			}
			resp, err := http.Post(srv.URL+"/state", "application/jsonl", &buf)
			if err == nil {
				if resp.StatusCode != http.StatusOK {
					t.Errorf("state swap status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}

// TestServiceBatchMetrics checks the trout_predict_batch_size histogram
// lands in /metrics with cumulative le buckets.
func TestServiceBatchMetrics(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{})
	jobs := batchFixtureJobs(e, 3)
	at := e.Trace.Jobs[len(e.Trace.Jobs)/2].Eligible
	if code := postJSON(t, srv.URL+"/predict/batch", map[string]any{"at": at, "jobs": jobs}, nil); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`trout_predict_batch_size_bucket{le="4"} 1`,
		`trout_predict_batch_size_bucket{le="+Inf"} 1`,
		"trout_predict_batch_size_sum 3",
		"trout_predict_batch_size_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
