package baselines

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// TestFlatMatchesPointer pins the serving contract introduced by the SoA
// flattening: for randomized forests and boosters (histogram and exact
// mode), the flat walk, the pointer walk, and the flat walk after a gob
// round-trip all produce bit-identical predictions.
func TestFlatMatchesPointer(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(x []float64) float64 { return 2*x[0] - x[1]*x[2] + math.Abs(x[3]) }
	X, y := synthData(rng, 600, 8, f, 0.3)
	queries := make([][]float64, 200)
	for i := range queries {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64() * 2
		}
		queries[i] = q
	}

	for _, exact := range []bool{false, true} {
		fo := NewForest(ForestConfig{
			Trees: 12,
			Tree:  TreeConfig{MaxDepth: 7, MinLeaf: 3, Exact: exact},
			Seed:  5,
		})
		if err := fo.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		g := NewGBDT(GBDTConfig{
			Rounds: 15,
			Tree:   TreeConfig{MaxDepth: 4, Exact: exact},
			Seed:   6,
		})
		if err := g.Fit(X, y); err != nil {
			t.Fatal(err)
		}

		blob, err := fo.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		fo2 := &Forest{}
		if err := fo2.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		gblob, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		g2 := &GBDT{}
		if err := g2.UnmarshalBinary(gblob); err != nil {
			t.Fatal(err)
		}

		for qi, q := range queries {
			for ti, tr := range fo.trees {
				if tr.flat == nil {
					t.Fatalf("exact=%v: tree %d has no flat form after Fit", exact, ti)
				}
				a, b := tr.Predict(q), tr.predictNode(q)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("exact=%v tree %d query %d: flat %v vs pointer %v", exact, ti, qi, a, b)
				}
			}
			if a, b := fo.Predict(q), fo2.Predict(q); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("exact=%v query %d: forest diverged after gob round-trip: %v vs %v", exact, qi, a, b)
			}
			if a, b := g.Predict(q), g2.Predict(q); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("exact=%v query %d: gbdt diverged after gob round-trip: %v vs %v", exact, qi, a, b)
			}
		}

		// The four-lane batch walk must match per-row Predict bit for bit
		// (batch sizes straddle the lane width to cover the scalar tail).
		for _, nrows := range []int{1, 3, 4, 7, 64, 200} {
			sub := queries[:nrows]
			fb := make([]float64, nrows)
			gb := make([]float64, nrows)
			fo.PredictBatch(sub, fb)
			g.PredictBatch(sub, gb)
			for i, q := range sub {
				if a, b := fo.Predict(q), fb[i]; math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("exact=%v n=%d row %d: forest batch %v vs scalar %v", exact, nrows, i, b, a)
				}
				if a, b := g.Predict(q), gb[i]; math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("exact=%v n=%d row %d: gbdt batch %v vs scalar %v", exact, nrows, i, b, a)
				}
			}
		}
	}
}

// handTree builds a two-level tree splitting on features 0 then 1, so NaN
// placement can target consulted vs unconsulted features precisely.
func handTree() *Tree {
	root := &treeNode{feature: 0, threshold: 0,
		left: &treeNode{leaf: true, value: 1},
		right: &treeNode{feature: 1, threshold: 0,
			left:  &treeNode{leaf: true, value: 2},
			right: &treeNode{leaf: true, value: 3},
		},
	}
	return &Tree{root: root, dim: 3, flat: flattenTree(root)}
}

// TestTreeNaNPropagates: a NaN in a feature the walk consults must surface
// as a NaN prediction from both representations (the serving fallback keys
// off non-finite outputs); a NaN in a feature the walk never touches must
// not poison the result. Forest and GBDT inherit the behavior through
// their sums.
func TestTreeNaNPropagates(t *testing.T) {
	tr := handTree()
	nan := math.NaN()
	cases := []struct {
		x       []float64
		wantNaN bool
	}{
		{[]float64{-1, nan, 0}, false}, // feature 1 never consulted on the left branch
		{[]float64{-1, 0, nan}, false}, // feature 2 never consulted at all
		{[]float64{nan, 0, 0}, true},   // root split feature poisoned
		{[]float64{1, nan, 0}, true},   // second-level split feature poisoned
	}
	for i, c := range cases {
		got := tr.Predict(c.x)
		if math.IsNaN(got) != c.wantNaN {
			t.Errorf("case %d: flat Predict(%v) = %v, wantNaN=%v", i, c.x, got, c.wantNaN)
		}
		if ptr := tr.predictNode(c.x); math.Float64bits(got) != math.Float64bits(ptr) && !(math.IsNaN(got) && math.IsNaN(ptr)) {
			t.Errorf("case %d: flat %v vs pointer %v", i, got, ptr)
		}
	}

	// Trained ensembles: one poisoned feature must reach the output.
	rng := rand.New(rand.NewSource(77))
	X, y := synthData(rng, 400, 5, func(x []float64) float64 { return x[0] + x[1] }, 0.1)
	fo := NewForest(ForestConfig{Trees: 5, Tree: TreeConfig{MaxDepth: 5}, Seed: 9})
	if err := fo.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	g := NewGBDT(GBDTConfig{Rounds: 8, Tree: TreeConfig{MaxDepth: 3}, Seed: 10})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	poisoned := []float64{nan, nan, nan, nan, nan}
	if v := fo.Predict(poisoned); !math.IsNaN(v) {
		t.Errorf("forest on all-NaN input returned %v, want NaN", v)
	}
	if v := g.Predict(poisoned); !math.IsNaN(v) {
		t.Errorf("gbdt on all-NaN input returned %v, want NaN", v)
	}
	clean := []float64{0.1, -0.2, 0.3, 0, 0}
	if v := fo.Predict(clean); math.IsNaN(v) {
		t.Error("forest on clean input returned NaN")
	}

	// Batch walk: a poisoned row must go NaN without contaminating its
	// lane-mates.
	batch := [][]float64{clean, poisoned, clean, clean, poisoned}
	out := make([]float64, len(batch))
	fo.PredictBatch(batch, out)
	for i, v := range out {
		wantNaN := i == 1 || i == 4
		if math.IsNaN(v) != wantNaN {
			t.Errorf("forest batch row %d: got %v, wantNaN=%v", i, v, wantNaN)
		}
	}
	g.PredictBatch(batch, out)
	for i, v := range out {
		wantNaN := i == 1 || i == 4
		if math.IsNaN(v) != wantNaN {
			t.Errorf("gbdt batch row %d: got %v, wantNaN=%v", i, v, wantNaN)
		}
	}
}

// TestExactSplitAdjacentFloats is the regression test for the midpoint
// rounding bug: with feature values one ulp apart, (a+b)/2 can round up to
// b itself, which silently leaks every b-row into the left partition. The
// Nextafter guard must keep the threshold strictly below the right value.
func TestExactSplitAdjacentFloats(t *testing.T) {
	a := math.Nextafter(1, 2)
	b := math.Nextafter(a, 2)
	if mid := (a + b) / 2; mid != b {
		t.Fatalf("test values no longer trigger upward midpoint rounding (mid=%v)", mid)
	}
	var X [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		X, y = append(X, []float64{a}), append(y, 0)
		X, y = append(X, []float64{b}), append(y, 1)
	}
	tr := NewTree(TreeConfig{MaxDepth: 2, MinLeaf: 2, Exact: true})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{a}); got != 0 {
		t.Errorf("Predict(a) = %v, want 0", got)
	}
	if got := tr.Predict([]float64{b}); got != 1 {
		t.Errorf("Predict(b) = %v, want 1", got)
	}
	if tr.root == nil || tr.root.leaf {
		t.Fatal("tree failed to split adjacent-float values at all")
	}
	if thr := tr.root.threshold; !(thr >= a && thr < b) {
		t.Errorf("threshold %v outside [a, b) for a=%v b=%v", thr, a, b)
	}
}

// TestHistThresholdsAreDataValues pins the property that exempts the
// histogram learner from the midpoint guard: every trained threshold is an
// exact value from the split feature's column, never a computed midpoint.
func TestHistThresholdsAreDataValues(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	X, y := synthData(rng, 500, 6, func(x []float64) float64 { return x[0]*x[1] + x[2] }, 0.2)
	tr := NewTree(TreeConfig{MaxDepth: 6})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	colHas := func(f int, v float64) bool {
		for _, row := range X {
			if row[f] == v {
				return true
			}
		}
		return false
	}
	checked := 0
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil || n.leaf {
			return
		}
		if !colHas(n.feature, n.threshold) {
			t.Fatalf("hist threshold %v on feature %d is not a data value", n.threshold, n.feature)
		}
		checked++
		walk(n.left)
		walk(n.right)
	}
	walk(tr.root)
	if checked == 0 {
		t.Fatal("hist tree has no internal nodes to check")
	}
}

// TestUnmarshalRejectsCorruptTrees: crafted node arrays with cycles,
// out-of-range children, half-split nodes, or out-of-dim features must
// come back as errors, not hangs, stack overflows, or panics at first
// Predict.
func TestUnmarshalRejectsCorruptTrees(t *testing.T) {
	encode := func(dto treeDTO) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string]treeDTO{
		"self-cycle": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 0, Right: 0},
		}},
		"mutual-cycle": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 1, Right: 1},
			{Feature: 1, Threshold: 2, Left: 0, Right: 0},
		}},
		"child-out-of-range": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 5, Right: 6},
		}},
		"root-out-of-range": {Dim: 2, Root: 3, Nodes: []flatNode{
			{Leaf: true, Value: 1},
		}},
		"half-split": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: 0, Threshold: 1, Left: 1, Right: -1},
			{Leaf: true, Value: 1, Left: -1, Right: -1},
		}},
		"negative-feature": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: -3, Threshold: 1, Left: 1, Right: 2},
			{Leaf: true, Value: 1, Left: -1, Right: -1},
			{Leaf: true, Value: 2, Left: -1, Right: -1},
		}},
		"feature-beyond-dim": {Dim: 2, Root: 0, Nodes: []flatNode{
			{Feature: 7, Threshold: 1, Left: 1, Right: 2},
			{Leaf: true, Value: 1, Left: -1, Right: -1},
			{Leaf: true, Value: 2, Left: -1, Right: -1},
		}},
	}
	for name, dto := range cases {
		tr := &Tree{}
		if err := tr.UnmarshalBinary(encode(dto)); err == nil {
			t.Errorf("%s: corrupt tree decoded without error", name)
		}
	}
	// Sanity: a well-formed hand-rolled DTO still decodes and serves.
	good := treeDTO{Dim: 2, Root: 0, Nodes: []flatNode{
		{Feature: 1, Threshold: 0.5, Left: 1, Right: 2},
		{Leaf: true, Value: -1, Left: -1, Right: -1},
		{Leaf: true, Value: 4, Left: -1, Right: -1},
	}}
	tr := &Tree{}
	if err := tr.UnmarshalBinary(encode(good)); err != nil {
		t.Fatalf("well-formed DTO rejected: %v", err)
	}
	if got := tr.Predict([]float64{0, 1}); got != 4 {
		t.Fatalf("decoded tree Predict = %v, want 4", got)
	}
}

// FuzzForestGob fuzzes the forest deserializer with raw bytes (seeded with
// a valid marshaled forest): it must never panic or hang, and anything it
// accepts must serve predictions without panicking — the property the
// flat-form rebuild and unflatten validation protect.
func FuzzForestGob(f *testing.F) {
	rng := rand.New(rand.NewSource(91))
	X, y := synthData(rng, 120, 4, func(x []float64) float64 { return x[0] - x[3] }, 0.2)
	fo := NewForest(ForestConfig{Trees: 3, Tree: TreeConfig{MaxDepth: 4}, Seed: 13})
	if err := fo.Fit(X, y); err != nil {
		f.Fatal(err)
	}
	blob, err := fo.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := &Forest{}
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		x := make([]float64, 64)
		for _, tr := range got.trees {
			if tr.dim > len(x) || tr.dim < 0 {
				return // decoded dim wider than our probe vector
			}
		}
		got.Predict(x)
	})
}

// BenchmarkForestPredict measures one 64-row predict pass over a trained
// forest, flat SoA walk vs the pointer-chasing walk. Feeds
// BENCH_inference.json; the flat/pointer ratio is the tentpole's >=4x
// acceptance evidence.
func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(b)
	fo := NewForest(ForestConfig{Trees: 50, Tree: TreeConfig{MaxDepth: 8}, Seed: 3})
	if err := fo.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	rows := X[:64]
	out := make([]float64, len(rows))
	b.Run("mode=flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fo.PredictBatch(rows, out)
		}
		sinkF64 = out[0]
	})
	b.Run("mode=pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var s float64
			for _, r := range rows {
				for _, tr := range fo.trees {
					s += tr.predictNode(r)
				}
			}
			sinkF64 = s
		}
	})
}

// BenchmarkGBDTPredict is the boosting counterpart: 64 rows through a
// 100-round depth-4 booster, flat vs pointer.
func BenchmarkGBDTPredict(b *testing.B) {
	X, y := benchData(b)
	g := NewGBDT(GBDTConfig{Rounds: 100, Tree: TreeConfig{MaxDepth: 4}, Seed: 4})
	if err := g.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	rows := X[:64]
	out := make([]float64, len(rows))
	b.Run("mode=flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.PredictBatch(rows, out)
		}
		sinkF64 = out[0]
	})
	b.Run("mode=pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var s float64
			for _, r := range rows {
				sum := g.base
				for _, tr := range g.trees {
					sum += g.Cfg.LearnRate * tr.predictNode(r)
				}
				s += sum
			}
			sinkF64 = s
		}
	})
}

// sinkF64 keeps the benchmark loops' results observable.
var sinkF64 float64
