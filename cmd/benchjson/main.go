// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be committed (BENCH_*.json) and
// diffed across runs without scraping free-form text.
//
//	go test -run '^$' -bench Predict -benchmem . > bench.txt
//	benchjson -o BENCH_inference.json bench.txt
//
// Reads the named files (or stdin when none are given), keeps every
// benchmark result line plus the goos/goarch/pkg/cpu context, and writes:
//
//	{
//	  "context": {"goos": "linux", "cpu": "...", ...},
//	  "benchmarks": [
//	    {"name": "PredictBatch64", "procs": 8, "iterations": 100,
//	     "ns_per_op": 194669, "metrics": {"B/op": 3962, "allocs/op": 3}}
//	  ]
//	}
//
// Repeated -count runs of one benchmark produce repeated entries; averaging
// is left to the consumer (benchstat remains the tool for significance).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	GeneratedUnix int64             `json:"generated_unix"`
	Context       map[string]string `json:"context,omitempty"`
	Benchmarks    []result          `json:"benchmarks"`
	Failed        bool              `json:"failed,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := document{
		GeneratedUnix: time.Now().Unix(),
		Context:       map[string]string{},
		Benchmarks:    []result{},
	}
	if flag.NArg() == 0 {
		parse(os.Stdin, &doc)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		parse(f, &doc)
		f.Close()
	}

	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	if doc.Failed {
		log.Fatal("input contains a FAIL line")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

func parse(r io.Reader, doc *document) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
			doc.Failed = true
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// parseBench decodes one result line:
//
//	BenchmarkName/sub=1-8   100   194669 ns/op   3962 B/op   3 allocs/op
//
// The trailing -N on the name is GOMAXPROCS; every remaining "<value>
// <unit>" pair (including ReportMetric customs) lands in Metrics, with
// ns/op pulled out as the primary measurement.
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	res := result{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Procs:   1,
		Metrics: map[string]float64{},
	}
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			res.NsPerOp = v
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

// usage string for -h.
func init() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchjson [-o out.json] [bench.txt ...]\nreads `go test -bench` output (stdin when no files) and emits JSON\n")
		flag.PrintDefaults()
	}
}
