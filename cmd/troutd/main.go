// Command troutd serves queue-time predictions over HTTP — the paper's §V
// plan to "integrate this into a user dashboard tool". It loads a trained
// bundle and an initial queue state, then answers Algorithm 1 queries.
//
//	troutd -bundle trout.bundle -state trace.csv -addr :8642
//
//	curl localhost:8642/health
//	curl localhost:8642/predict?job=4211
//	curl -X POST localhost:8642/predict -d '{"at":1700500000,"job":{"user":7,
//	     "partition":"shared","req_cpus":16,"req_mem_gb":32,"req_nodes":1,
//	     "time_limit":14400}}'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	trout "repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("troutd: ")
	var (
		bundlePath = flag.String("bundle", "trout.bundle", "trained bundle")
		statePath  = flag.String("state", "", "initial queue state (csv/jsonl trace)")
		addr       = flag.String("addr", ":8642", "listen address")
	)
	flag.Parse()

	b, err := trout.LoadBundleFile(*bundlePath)
	if err != nil {
		log.Fatal(err)
	}
	var tr *trout.Trace
	if *statePath != "" {
		f, err := os.Open(*statePath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*statePath, ".jsonl") {
			tr, err = trace.ReadJSONL(f)
		} else {
			tr, err = trace.ReadCSV(f)
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	svc, err := trout.NewService(b, tr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      svc.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Printf("serving on %s (cutoff %.0f min, %d queue jobs)",
		*addr, b.Model.Cfg.CutoffMinutes, queueLen(tr))
	log.Fatal(srv.ListenAndServe())
}

func queueLen(tr *trout.Trace) int {
	if tr == nil {
		return 0
	}
	return len(tr.Jobs)
}
