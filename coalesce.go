package trout

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Coalescer flush triggers for trout_coalesce_flushes_total.
const (
	flushWindow = "window"
	flushFull   = "full"
)

// coalesceReply carries one request's answer out of a flushed micro-batch:
// the prediction plus the serving pair that computed it, so the response
// attributes its model_version/model_id to the bundle that actually
// answered (which may differ from what a fresh load would return if a
// hot-swap landed while the request waited in the window).
type coalesceReply struct {
	res BatchResult
	sb  *servingBundle
	// stages are the flush's pipeline stage timings (featurize,
	// batch_nn, fallback) — shared across the batch, copied into each
	// member's span recorder so coalesced requests keep their stage
	// attribution.
	stages []obs.Span
	// flushTrace/flushSpan identify the shared flush span, so each
	// member's trace can record a link to the micro-batch that served it.
	flushTrace string
	flushSpan  uint64
}

// coalesceItem is one parked /predict request: its resolved snapshot and
// a buffered reply channel (capacity 1, so the flusher never blocks on a
// waiter that gave up).
type coalesceItem struct {
	snap *Snapshot
	ch   chan coalesceReply
}

// coalesceGroup is one forming micro-batch.
type coalesceGroup struct {
	items []coalesceItem
	timer *time.Timer
	taken bool // set under the coalescer mutex by whoever flushes
}

// coalescer collects concurrent single /predict requests into micro-
// batches funneled through the bundle's batch path. PR 3's invariant —
// PredictBatch is bit-identical per row to N sequential predicts — is
// what makes this transparent: a coalesced answer is byte-for-byte the
// answer the request would have computed alone, the requests just share
// one serving-bundle load and one mini-batched forward pass. Off by
// default; enabled by ServiceConfig.Coalesce / troutd -coalesce.
type coalescer struct {
	svc    *Service
	window time.Duration
	max    int

	mu  sync.Mutex
	cur *coalesceGroup
}

func newCoalescer(svc *Service, window time.Duration, max int) *coalescer {
	return &coalescer{svc: svc, window: window, max: max}
}

// do parks the request in the forming micro-batch and returns its answer
// once the batch flushes (window expiry or the batch filling up). The
// caller that fills the batch runs the flush itself on its own goroutine;
// window-expiry flushes run on the timer goroutine.
func (c *coalescer) do(snap *Snapshot) coalesceReply {
	it := coalesceItem{snap: snap, ch: make(chan coalesceReply, 1)}
	c.mu.Lock()
	g := c.cur
	if g == nil {
		g = &coalesceGroup{items: make([]coalesceItem, 0, c.max)}
		g.timer = time.AfterFunc(c.window, func() { c.flush(g, flushWindow) })
		c.cur = g
	}
	g.items = append(g.items, it)
	if len(g.items) >= c.max {
		// Full: detach and flush on this goroutine; the timer callback
		// will find the group taken and do nothing.
		g.taken = true
		c.cur = nil
		c.mu.Unlock()
		g.timer.Stop()
		c.run(g, flushFull)
		return <-it.ch
	}
	c.mu.Unlock()
	return <-it.ch
}

// flush claims g (idempotently — the window timer and a concurrent
// batch-full path can race here) and runs it.
func (c *coalescer) flush(g *coalesceGroup, reason string) {
	c.mu.Lock()
	if g.taken {
		c.mu.Unlock()
		return
	}
	g.taken = true
	if c.cur == g {
		c.cur = nil
	}
	c.mu.Unlock()
	c.run(g, reason)
}

// run executes a claimed micro-batch and delivers every member's reply.
// All replies come from one serving-bundle load — the same single-load
// rule the uncoalesced handler follows per request, widened to the batch.
func (c *coalescer) run(g *coalesceGroup, reason string) {
	s := c.svc
	if s.coalFlushes != nil {
		s.coalFlushes.Inc(reason)
	}
	if s.coalDepth != nil {
		s.coalDepth.Observe(float64(len(g.items)))
	}
	sb := s.serving.Load()

	// The flush is its own trace: a root span the members link to, with
	// the batch path's stage timings as children. The same Spans recorder
	// is threaded into the batch call, so batch_nn/fallback durations are
	// recorded once here and copied to every member via the reply.
	fsp := &obs.Spans{}
	var ftb *obs.TraceBuf
	var froot obs.SpanHandle
	var flushTrace string
	if s.tracer.Enabled() {
		ftb, froot = s.tracer.StartRoot("coalesce_flush")
		froot.SetAttr("reason", reason)
		froot.SetAttrInt("batch", int64(len(g.items)))
		fsp.AttachTree(ftb, froot.ID())
		flushTrace = ftb.TraceID()
	}

	sent := 0
	defer func() {
		// A panic mid-batch (the batch path recovers internally, so this
		// is belt-and-braces) must not strand waiters: answer everyone
		// not yet replied to with an error.
		if r := recover(); r != nil {
			err := fmt.Errorf("predict: coalesced batch panicked: %v", r)
			for ; sent < len(g.items); sent++ {
				g.items[sent].ch <- coalesceReply{res: BatchResult{Err: err}, sb: sb}
			}
			if s.cfg.Logf != nil {
				s.cfg.Logf("coalesce: batch panic: %v", r)
			}
			s.tracer.FinishRoot(ftb, froot, err)
		}
	}()
	snaps := make([]*Snapshot, len(g.items))
	for i := range g.items {
		snaps[i] = g.items[i].snap
	}
	results := sb.b.PredictBatchWithFallbackSpans(snaps, fsp)
	stages := fsp.Snapshot()
	for ; sent < len(g.items); sent++ {
		g.items[sent].ch <- coalesceReply{
			res: results[sent], sb: sb,
			stages: stages, flushTrace: flushTrace, flushSpan: froot.ID(),
		}
	}
	s.tracer.FinishRoot(ftb, froot, nil)
}
