// Command trace-stats summarizes an accounting trace: the paper's Table I
// rows, per-partition breakdowns, and the queue-time density histogram
// (Fig 2) — everything an operator needs to sanity-check a trace before
// training on it.
//
// Usage:
//
//	trace-stats trace.csv
//	trace-stats -partition shared trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace-stats: ")
	var (
		partition = flag.String("partition", "", "restrict to one partition")
		bins      = flag.Int("bins", 20, "histogram bins")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: trace-stats [-partition name] <trace.csv|trace.jsonl>")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var tr *trace.Trace
	switch {
	case strings.HasSuffix(path, ".jsonl"):
		tr, err = trace.ReadJSONL(f)
	case strings.HasSuffix(path, ".sacct"), strings.HasSuffix(path, ".txt"):
		tr, err = trace.ReadSacct(f)
	default:
		tr, err = trace.ReadCSV(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *partition != "" {
		tr = tr.FilterPartition(*partition)
		if len(tr.Jobs) == 0 {
			log.Fatalf("no jobs in partition %q", *partition)
		}
	}

	first, last := tr.Span()
	fmt.Printf("%d jobs spanning %.1f days\n\n", len(tr.Jobs), float64(last-first)/86400)

	one := tr.TableOne()
	row := func(name string, s trace.Summary) {
		fmt.Printf("%-24s %10.1f %10.2f %10.2f %10.2f %10d\n",
			name, s.Max, s.Mean, s.Median, s.StdDev, s.Count)
	}
	fmt.Printf("%-24s %10s %10s %10s %10s %10s\n", "Variable", "Max", "Mean", "Median", "StdDev", "Count")
	row("Requested Time (hr)", one.RequestedHours)
	row("Runtime (hr)", one.RuntimeHours)
	row("Wasted Time (hr)", one.WastedHours)
	row("Jobs Submitted By User", one.JobsPerUser)
	fmt.Printf("\nshort-queue fraction (<10 min): %.4f   mean wall-time usage: %.4f\n",
		tr.ShortQueueFraction(600), tr.MeanWalltimeUsage())

	fmt.Println("\njobs per partition:")
	byPart := tr.ByPartition()
	names := make([]string, 0, len(byPart))
	for n := range byPart {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sub := tr.FilterPartition(n)
		fmt.Printf("  %-12s %7d jobs (%5.1f%%)  short %.3f\n",
			n, byPart[n], 100*float64(byPart[n])/float64(len(tr.Jobs)),
			sub.ShortQueueFraction(600))
	}

	fmt.Println("\nqueue-time density (minutes, log bins):")
	qs := make([]float64, len(tr.Jobs))
	for i := range tr.Jobs {
		qs[i] = tr.Jobs[i].QueueMinutes()
	}
	hist := metrics.LogHistogram(qs, *bins)
	maxCount := 0
	for _, b := range hist {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range hist {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", 50*b.Count/maxCount)
		}
		fmt.Printf("  [%9.2f, %9.2f) %8d %s\n", b.Lo, b.Hi, b.Count, bar)
	}
}
