package slurmsim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// tinyCluster: 2 nodes x 4 CPUs x 8 GB, one shared partition.
func tinyCluster() ClusterSpec {
	return ClusterSpec{
		Nodes: []NodeSpec{{CPUs: 4, MemGB: 8}, {CPUs: 4, MemGB: 8}},
		Partitions: []PartitionSpec{
			{Name: "shared", Tier: 1, NodeIDs: []int{0, 1}},
		},
	}
}

func tinyConfig() Config {
	return Config{
		Cluster:           tinyCluster(),
		Weights:           DefaultPriorityWeights(),
		FairshareHalfLife: 3600,
		BackfillDepth:     50,
		PriorityRefresh:   60,
	}
}

func job(id int, submit, limit, runtime int64, cpus int) JobSpec {
	return JobSpec{
		ID: id, User: 1, Partition: "shared", Submit: submit,
		ReqCPUs: cpus, ReqMemGB: 1, ReqNodes: 1, TimeLimit: limit, Runtime: runtime,
	}
}

func findJob(tr *trace.Trace, id int) *trace.Job {
	for i := range tr.Jobs {
		if tr.Jobs[i].ID == id {
			return &tr.Jobs[i]
		}
	}
	return nil
}

func TestClusterValidate(t *testing.T) {
	good := tinyCluster()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ClusterSpec{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cluster accepted")
	}
	dup := tinyCluster()
	dup.Partitions = append(dup.Partitions, dup.Partitions[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate partition accepted")
	}
	oob := tinyCluster()
	oob.Partitions[0].NodeIDs = []int{5}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestTotals(t *testing.T) {
	c := tinyCluster()
	tot := c.Totals("shared")
	if tot.Nodes != 2 || tot.CPUs != 8 || tot.MemGB != 16 || tot.CPUPerNode != 4 {
		t.Fatalf("Totals = %+v", tot)
	}
	if c.Totals("nope").Nodes != 0 {
		t.Fatal("unknown partition should have zero totals")
	}
}

func TestAnvilLikeShape(t *testing.T) {
	c := AnvilLike(1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Partitions) != 7 {
		t.Fatalf("AnvilLike has %d partitions, want 7 (paper)", len(c.Partitions))
	}
	if c.Totals("gpu").GPUs == 0 {
		t.Fatal("gpu partition has no GPUs")
	}
	// GPU partition isolated from CPU pool.
	cpuSet := map[int]bool{}
	for _, id := range c.Partition("shared").NodeIDs {
		cpuSet[id] = true
	}
	for _, id := range c.Partition("gpu").NodeIDs {
		if cpuSet[id] {
			t.Fatal("gpu partition shares nodes with shared")
		}
	}
	// wholenode shares the CPU pool with shared (as on Anvil).
	if c.Partition("wholenode").NodeIDs[0] != c.Partition("shared").NodeIDs[0] {
		t.Fatal("wholenode should share the CPU pool")
	}
}

func TestImmediateStartOnEmptyCluster(t *testing.T) {
	tr, st, err := Run(tinyConfig(), []JobSpec{job(1, 100, 600, 300, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 {
		t.Fatalf("completed %d", st.Completed)
	}
	j := findJob(tr, 1)
	if j.Start != 100 || j.End != 400 {
		t.Fatalf("start/end = %d/%d", j.Start, j.End)
	}
	if j.QueueSeconds() != 0 {
		t.Fatalf("queue = %d", j.QueueSeconds())
	}
}

func TestContendedJobWaits(t *testing.T) {
	// Job 1 takes all 8 CPUs for 1000s; job 2 needs 8 CPUs too.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 2000, Runtime: 1000},
		{ID: 2, User: 2, Partition: "shared", Submit: 10, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 2000, Runtime: 500},
	}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j2 := findJob(tr, 2)
	if j2.Start != 1000 {
		t.Fatalf("job 2 started at %d, want 1000", j2.Start)
	}
	if j2.QueueSeconds() != 990 {
		t.Fatalf("job 2 queue = %d", j2.QueueSeconds())
	}
}

func TestEligibleDelayRespected(t *testing.T) {
	specs := []JobSpec{{
		ID: 1, User: 1, Partition: "shared", Submit: 0, EligibleDelay: 500,
		ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 100, Runtime: 50,
	}}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j := findJob(tr, 1)
	if j.Eligible != 500 || j.Start != 500 {
		t.Fatalf("eligible/start = %d/%d", j.Eligible, j.Start)
	}
	if j.QueueSeconds() != 0 {
		t.Fatal("delay before eligibility must not count as queue time")
	}
}

func TestBackfillShortJobJumpsAhead(t *testing.T) {
	// t=0: job 1 takes 6 of 8 CPUs until t=1000, leaving a 2-CPU gap.
	// Job 2 (first waiter, wants everything) must wait until t=1000.
	// Job 3 is tiny and short: it fits in the gap and ends before the
	// shadow time, so EASY backfill should start it immediately.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 6, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 1000},
		{ID: 2, User: 1, Partition: "shared", Submit: 1, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 200},
		{ID: 3, User: 2, Partition: "shared", Submit: 2, ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 300, Runtime: 100},
	}
	tr, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j3 := findJob(tr, 3)
	if j3.Start != 2 {
		t.Fatalf("backfill job started at %d, want 2", j3.Start)
	}
	j2 := findJob(tr, 2)
	if j2.Start != 1000 {
		t.Fatalf("blocked job started at %d, want 1000", j2.Start)
	}
	if st.BackfillStarts == 0 {
		t.Fatal("no backfill starts recorded")
	}
}

func TestBackfillCannotDelayReservation(t *testing.T) {
	// Same as above but job 3's time limit exceeds the shadow time and it
	// needs a CPU on a reserved node — it must NOT backfill. Job 3 asks
	// for 4 CPUs on 1 node; the reservation (job 2) needs both whole
	// nodes, so any allocation intersects reserved nodes.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 6, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 1000},
		{ID: 2, User: 1, Partition: "shared", Submit: 1, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 200},
		{ID: 3, User: 2, Partition: "shared", Submit: 2, ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 5000, Runtime: 4000},
	}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j3 := findJob(tr, 3)
	if j3.Start == 2 {
		t.Fatal("long job backfilled although it would delay the reservation")
	}
}

func TestExclusivePartitionTakesWholeNodes(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cluster.Partitions = append(cfg.Cluster.Partitions,
		PartitionSpec{Name: "wholenode", Tier: 1, NodeIDs: []int{0, 1}, Exclusive: true})
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "wholenode", Submit: 0, ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 1000, Runtime: 800},
		// Shared 4-cpu job: only node 1 is fully free, node 0 is
		// exclusively held even though job 1 asked for 1 CPU.
		{ID: 2, User: 2, Partition: "shared", Submit: 10, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 100},
	}
	tr, _, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	j2 := findJob(tr, 2)
	if j2.Start != 800 {
		t.Fatalf("job 2 started at %d, want 800 (after exclusive job frees node)", j2.Start)
	}
}

func TestHigherTierPartitionWins(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cluster.Partitions = append(cfg.Cluster.Partitions,
		PartitionSpec{Name: "debug", Tier: 9, NodeIDs: []int{0, 1}})
	// Fill the cluster, then two waiters: shared (submitted earlier) and
	// debug (higher tier). Debug must start first.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 500},
		{ID: 2, User: 2, Partition: "shared", Submit: 1, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 100},
		{ID: 3, User: 3, Partition: "debug", Submit: 2, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 100},
	}
	tr, _, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if findJob(tr, 3).Start >= findJob(tr, 2).Start {
		t.Fatal("higher-tier partition job should start before lower-tier")
	}
}

func TestFairshareDeprioritizesHeavyUser(t *testing.T) {
	cfg := tinyConfig()
	// User 1 burns the cluster for a long time, charging usage. Then two
	// identical contending jobs (user 1 vs user 2) race for the freed
	// resources: user 2's fair-share factor should win.
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 5000, Runtime: 4000},
		{ID: 2, User: 1, Partition: "shared", Submit: 100, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 100},
		{ID: 3, User: 2, Partition: "shared", Submit: 200, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000, Runtime: 100},
	}
	tr, _, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Despite submitting later, user 2 should run before user 1's second job.
	if findJob(tr, 3).Start >= findJob(tr, 2).Start {
		t.Fatal("fair share did not deprioritize the heavy user")
	}
}

func TestTimeoutState(t *testing.T) {
	specs := []JobSpec{job(1, 0, 100, 100, 1)} // runtime == limit
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	j := findJob(tr, 1)
	if j.State != trace.StateTimeout {
		t.Fatalf("state = %s, want TIMEOUT", j.State)
	}
	if j.RuntimeSeconds() != 100 {
		t.Fatalf("runtime = %d", j.RuntimeSeconds())
	}
}

func TestRuntimeClampedAtLimit(t *testing.T) {
	specs := []JobSpec{job(1, 0, 100, 500, 1)}
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if findJob(tr, 1).RuntimeSeconds() != 100 {
		t.Fatal("scheduler must kill jobs at their time limit")
	}
}

func TestInfeasibleJobsRejected(t *testing.T) {
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", ReqCPUs: 99, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 100, Runtime: 50}, // > node CPUs
		{ID: 2, User: 1, Partition: "shared", ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 5, TimeLimit: 100, Runtime: 50},  // > partition nodes
		job(3, 0, 100, 50, 1), // fine
	}
	tr, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 || st.Completed != 1 || len(tr.Jobs) != 1 {
		t.Fatalf("rejected=%d completed=%d", st.Rejected, st.Completed)
	}
}

func TestUnknownPartitionErrors(t *testing.T) {
	specs := []JobSpec{{ID: 1, User: 1, Partition: "nope", ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 10, Runtime: 5}}
	if _, _, err := Run(tinyConfig(), specs); err == nil {
		t.Fatal("expected unknown-partition error")
	}
}

func TestMaxTimeEnforced(t *testing.T) {
	cfg := tinyConfig()
	cfg.Cluster.Partitions[0].MaxTime = 50
	_, st, err := Run(cfg, []JobSpec{job(1, 0, 100, 10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 {
		t.Fatal("over-limit job not rejected")
	}
}

// randomSpecs builds a moderately loaded random workload.
func randomSpecs(rng *rand.Rand, n int) []JobSpec {
	specs := make([]JobSpec, n)
	var clock int64
	for i := range specs {
		clock += rng.Int63n(40)
		limit := int64(60 + rng.Intn(4000))
		specs[i] = JobSpec{
			ID: i + 1, User: rng.Intn(8), Partition: "shared", Submit: clock,
			EligibleDelay: int64(rng.Intn(3)) * 30,
			ReqCPUs:       1 + rng.Intn(4), ReqMemGB: 1 + rng.Float64()*4,
			ReqNodes: 1, TimeLimit: limit, Runtime: rng.Int63n(limit),
			QOS: rng.Intn(3),
		}
	}
	return specs
}

// TestTraceInvariants: every produced record is internally valid, all
// submitted feasible jobs complete, and the trace is sorted by eligibility.
func TestTraceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	specs := randomSpecs(rng, 500)
	tr, st, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed+st.Rejected != len(specs) {
		t.Fatalf("completed %d + rejected %d != %d", st.Completed, st.Rejected, len(specs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Eligible < tr.Jobs[i-1].Eligible {
			t.Fatal("trace not sorted by eligibility")
		}
	}
}

// TestAllNodesFreedAfterDrain: resource conservation — after the event loop
// drains, every node is back to full capacity.
func TestAllNodesFreedAfterDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	specs := randomSpecs(rng, 300)
	cfg := tinyConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = s // Run builds its own; instead re-run and inspect via a fresh sim.
	sim, _ := New(cfg)
	users := map[int]bool{}
	for i := range specs {
		users[specs[i].User] = true
	}
	sim.nUsers = len(users)
	for i := range specs {
		sp := specs[i]
		part := cfg.Cluster.Partition(sp.Partition)
		if err := sim.checkFeasible(sp, part); err != nil {
			continue
		}
		j := &simJob{spec: sp, part: part, eligible: sp.Submit + sp.EligibleDelay}
		sim.push(event{at: j.eligible, kind: evEligible, job: j})
	}
	for len(sim.events) > 0 {
		now := sim.events[0].at
		var batch []event
		for len(sim.events) > 0 && sim.events[0].at == now {
			batch = append(batch, popEvent(sim))
		}
		for _, ev := range batch {
			if ev.kind == evEnd {
				sim.finish(ev.job, now)
			}
		}
		for _, ev := range batch {
			if ev.kind == evEligible {
				sim.pending = append(sim.pending, ev.job)
				sim.dirty = true
			}
		}
		sim.schedule(now)
	}
	for i, n := range sim.nodes {
		spec := cfg.Cluster.Nodes[i]
		if n.freeCPUs != spec.CPUs || n.freeMemGB != spec.MemGB || n.freeGPUs != spec.GPUs || n.busyJobs != 0 {
			t.Fatalf("node %d not fully freed: %+v", i, n)
		}
	}
	if len(sim.pending) != 0 {
		t.Fatalf("%d jobs still pending after drain", len(sim.pending))
	}
}

func popEvent(s *Simulator) event {
	ev := s.events[0]
	n := len(s.events)
	s.events[0] = s.events[n-1]
	s.events = s.events[:n-1]
	if len(s.events) > 0 {
		down(s)
	}
	return ev
}

// down restores the heap property from the root (test helper mirroring
// container/heap.Pop without the interface ceremony).
func down(s *Simulator) {
	i := 0
	n := len(s.events)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.events.Less(l, small) {
			small = l
		}
		if r < n && s.events.Less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		s.events.Swap(i, small)
		i = small
	}
}

// TestDeterminism: identical inputs produce identical traces.
func TestDeterminism(t *testing.T) {
	rng1 := rand.New(rand.NewSource(44))
	rng2 := rand.New(rand.NewSource(44))
	a, _, err := Run(tinyConfig(), randomSpecs(rng1, 400))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(tinyConfig(), randomSpecs(rng2, 400))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Jobs, b.Jobs) {
		t.Fatal("simulation is not deterministic")
	}
}

// TestNoOverlapBeyondCapacity: at no instant may the CPU demand of running
// jobs exceed a node's capacity. Reconstructed from the trace.
func TestNoOverlapBeyondCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	specs := randomSpecs(rng, 400)
	tr, _, err := Run(tinyConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate check: total concurrent CPU demand never exceeds 8.
	type ev struct {
		at    int64
		delta int
	}
	var evs []ev
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.End == j.Start {
			continue
		}
		evs = append(evs, ev{j.Start, j.ReqCPUs}, ev{j.End, -j.ReqCPUs})
	}
	// Sort by time with frees first.
	for i := range evs {
		for k := i + 1; k < len(evs); k++ {
			if evs[k].at < evs[i].at || (evs[k].at == evs[i].at && evs[k].delta < evs[i].delta) {
				evs[i], evs[k] = evs[k], evs[i]
			}
		}
	}
	cur := 0
	for _, e := range evs {
		cur += e.delta
		if cur > 8 {
			t.Fatalf("concurrent CPU demand %d exceeds cluster capacity 8", cur)
		}
	}
}

func TestFairshareFactorMath(t *testing.T) {
	fs := newFairshare(3600)
	if f := fs.Factor(1, 0, 4); f != 1 {
		t.Fatalf("factor with no usage = %v, want 1", f)
	}
	fs.Charge(1, 1000, 0)
	f1 := fs.Factor(1, 0, 2) // user 1 holds 100% of usage, share 0.5 → 2^-2 = 0.25
	if f1 != 0.25 {
		t.Fatalf("factor = %v, want 0.25", f1)
	}
	// Decay: after one half-life the user's share of total is unchanged
	// (both decay), so factor stays.
	f2 := fs.Factor(1, 3600, 2)
	if f2 != f1 {
		t.Fatalf("relative usage should be decay-invariant: %v vs %v", f2, f1)
	}
	// A second user charging shifts the ratio.
	fs.Charge(2, 3000, 3600)
	if fs.Factor(1, 3600, 2) <= f1 {
		t.Fatal("other user's usage should raise user 1's factor")
	}
}

func BenchmarkSimulate2k(b *testing.B) {
	rng := rand.New(rand.NewSource(46))
	specs := randomSpecs(rng, 2000)
	cfg := tinyConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(cfg, specs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDisableBackfill(t *testing.T) {
	// Same scenario as TestBackfillShortJobJumpsAhead, but with backfill
	// off the tiny job must wait behind the blocked big job.
	cfg := tinyConfig()
	cfg.DisableBackfill = true
	specs := []JobSpec{
		{ID: 1, User: 1, Partition: "shared", Submit: 0, ReqCPUs: 6, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 1000},
		{ID: 2, User: 1, Partition: "shared", Submit: 1, ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1200, Runtime: 200},
		{ID: 3, User: 2, Partition: "shared", Submit: 2, ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 300, Runtime: 100},
	}
	tr, st, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BackfillStarts != 0 {
		t.Fatalf("%d backfill starts with backfill disabled", st.BackfillStarts)
	}
	if findJob(tr, 3).Start <= 2 {
		t.Fatal("job 3 backfilled although backfill is disabled")
	}
}
