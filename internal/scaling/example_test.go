package scaling_test

import (
	"fmt"

	"repro/internal/scaling"
)

// The paper applies a natural-log transform to every feature to manage the
// data's skew; ln(1+x) keeps zeros at zero.
func ExampleNew() {
	s, _ := scaling.New(scaling.Log1p)
	fmt.Printf("%.3f\n", s.Transform([]float64{0, 99, 9999}))
	// Output:
	// [0.000 4.605 9.210]
}
