// Package controlplane closes the continual-learning loop the ROADMAP
// asks for: a versioned, content-addressed model registry on disk, a
// background controller that watches the online accuracy tracker's drift
// signal and retrains past thresholds, shadow scoring that judges the
// candidate against the incumbent on live traffic off the hot path, and
// an atomic hot-swap (with rollback) once the candidate proves itself.
//
// The package is model-agnostic on purpose: bundles move through it as
// opaque gob blobs identified by their SHA-256, and prediction happens
// behind the Predictor interface — the root package adapts its Bundle
// type, decodes blobs, and owns the actual serving swap. That keeps the
// lifecycle machinery (Idle→Retraining→Shadow→Promoted/Rejected, plus
// post-promotion rollback) independently testable with synthetic
// trainers and drift sources.
package controlplane

import (
	"encoding/json"
	"fmt"
	"math"
)

// Candidate lifecycle statuses recorded in the registry manifest.
const (
	// StatusShadow marks a freshly published candidate being scored
	// against the incumbent on live traffic.
	StatusShadow = "shadow"
	// StatusActive marks the version currently serving.
	StatusActive = "active"
	// StatusRejected marks a candidate that shadow-scored worse than the
	// incumbent (or could not be swapped in).
	StatusRejected = "rejected"
	// StatusRetired marks a formerly active version replaced by a
	// promoted candidate.
	StatusRetired = "retired"
	// StatusRolledBack marks a promoted candidate that regressed online
	// and was swapped back out.
	StatusRolledBack = "rolled_back"
	// StatusPruned marks a version whose blob retention removed; the
	// manifest entry stays for lineage.
	StatusPruned = "pruned"
)

var knownStatus = map[string]bool{
	StatusShadow: true, StatusActive: true, StatusRejected: true,
	StatusRetired: true, StatusRolledBack: true, StatusPruned: true,
}

// Eval is a candidate's offline holdout scores, recorded at publish time
// so the registry answers "how good did training think this was" without
// re-running evaluation.
type Eval struct {
	MAEMinutes float64 `json:"mae_minutes"`
	MAPE       float64 `json:"mape"`
	HitRate    float64 `json:"hit_rate"`
}

// Manifest is one version's registry record.
type Manifest struct {
	// Version is the registry-assigned monotonic version number (1-based;
	// 0 means "the boot bundle", which predates the registry).
	Version int `json:"version"`
	// ID is the SHA-256 of the bundle blob, hex — the content address.
	ID string `json:"id"`
	// Parent is the ID of the model serving when this one was trained.
	Parent string `json:"parent,omitempty"`
	// CreatedUnix is the publish time.
	CreatedUnix int64 `json:"created_unix"`
	// Watermark is the training-data horizon: the live-state engine clock
	// when the training trace was extracted (unix seconds). Together with
	// Parent it answers "trained on what, replacing what".
	Watermark int64 `json:"watermark"`
	// Samples is the training-set size.
	Samples int `json:"samples"`
	// Hyperparams records the training configuration that produced the
	// bundle (flattened to strings so the manifest stays schema-stable
	// across model changes).
	Hyperparams map[string]string `json:"hyperparams,omitempty"`
	// Eval holds the offline holdout scores from training time.
	Eval Eval `json:"eval"`
	// Status is the lifecycle state (shadow/active/rejected/retired/
	// rolled_back/pruned).
	Status string `json:"status"`
	// Note carries human-readable context (shadow verdict scores,
	// rejection reasons).
	Note string `json:"note,omitempty"`
}

// ManifestSet is the registry's manifest file: every published version
// plus which one is active. It is the unit of atomic publish — the whole
// set is rewritten through a temp file + rename, so a crash anywhere
// leaves the previous manifest intact.
type ManifestSet struct {
	// Active is the active version number; 0 means none (the boot bundle
	// is serving).
	Active int `json:"active"`
	// Versions is ordered by ascending version number.
	Versions []Manifest `json:"versions"`
}

// isHex reports whether s is lowercase hex of the given length — the
// shape of a SHA-256 content address.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate checks one manifest entry's invariants.
func (m *Manifest) Validate() error {
	switch {
	case m.Version <= 0:
		return fmt.Errorf("controlplane: manifest version %d must be positive", m.Version)
	case !isHex(m.ID, 64):
		return fmt.Errorf("controlplane: manifest v%d id %q is not a sha-256 hex digest", m.Version, m.ID)
	case m.Parent != "" && !isHex(m.Parent, 64):
		return fmt.Errorf("controlplane: manifest v%d parent %q is not a sha-256 hex digest", m.Version, m.Parent)
	case !knownStatus[m.Status]:
		return fmt.Errorf("controlplane: manifest v%d has unknown status %q", m.Version, m.Status)
	case m.Samples < 0:
		return fmt.Errorf("controlplane: manifest v%d has negative sample count %d", m.Version, m.Samples)
	case m.CreatedUnix < 0 || m.Watermark < 0:
		return fmt.Errorf("controlplane: manifest v%d has negative timestamps", m.Version)
	}
	for _, v := range [3]float64{m.Eval.MAEMinutes, m.Eval.MAPE, m.Eval.HitRate} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("controlplane: manifest v%d has non-finite or negative eval scores", m.Version)
		}
	}
	return nil
}

// Validate checks the whole set: versions strictly increasing (so lineage
// is unambiguous) and Active, when set, naming a published version.
func (s *ManifestSet) Validate() error {
	prev := 0
	activeSeen := s.Active == 0
	for i := range s.Versions {
		m := &s.Versions[i]
		if err := m.Validate(); err != nil {
			return err
		}
		if m.Version <= prev {
			return fmt.Errorf("controlplane: manifest versions not strictly increasing at v%d", m.Version)
		}
		prev = m.Version
		if m.Version == s.Active {
			activeSeen = true
		}
	}
	if s.Active < 0 {
		return fmt.Errorf("controlplane: negative active version %d", s.Active)
	}
	if !activeSeen {
		return fmt.Errorf("controlplane: active version %d not in manifest", s.Active)
	}
	return nil
}

// DecodeManifest parses and validates a manifest file. Unknown JSON
// fields are tolerated (forward compatibility); semantic violations are
// not — a registry will refuse to open over a manifest that fails this,
// rather than serve models under a corrupt lineage.
func DecodeManifest(data []byte) (*ManifestSet, error) {
	var s ManifestSet
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("controlplane: decode manifest: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeManifest renders the set as indented JSON (the manifest is meant
// to be operator-readable on disk).
func EncodeManifest(s *ManifestSet) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}
