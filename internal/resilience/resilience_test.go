package resilience

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRunFirstTierWins(t *testing.T) {
	c := NewCounters()
	v, tier, err := Run([]Step[float64]{
		{Tier: TierNN, Predict: func() (float64, error) { return 7, nil }},
		{Tier: TierBaseline, Predict: func() (float64, error) { t.Fatal("should not run"); return 0, nil }},
	}, c)
	if err != nil || v != 7 || tier != TierNN {
		t.Fatalf("got v=%v tier=%q err=%v", v, tier, err)
	}
	if c.Get(TierNN) != 1 || c.Get(TierBaseline) != 0 {
		t.Fatalf("counters %v", c.Snapshot())
	}
	if c.Degraded(TierNN) {
		t.Fatal("primary-only traffic reported degraded")
	}
}

func TestRunFallsThroughOnNaNErrorAndPanic(t *testing.T) {
	finite := func(v float64) error {
		if !Finite(v) {
			return fmt.Errorf("non-finite %v", v)
		}
		return nil
	}
	c := NewCounters()
	v, tier, err := Run([]Step[float64]{
		{Tier: TierNN, Predict: func() (float64, error) { return math.NaN(), nil }, Check: finite},
		{Tier: "panicky", Predict: func() (float64, error) { panic("corrupt weights") }},
		{Tier: "erroring", Predict: func() (float64, error) { return 0, fmt.Errorf("no model") }},
		{Tier: TierHeuristic, Predict: func() (float64, error) { return 42, nil }, Check: finite},
	}, c)
	if err != nil || v != 42 || tier != TierHeuristic {
		t.Fatalf("got v=%v tier=%q err=%v", v, tier, err)
	}
	if !c.Degraded(TierNN) {
		t.Fatal("fallback traffic not reported degraded")
	}
}

func TestRunAllTiersFail(t *testing.T) {
	c := NewCounters()
	_, tier, err := Run([]Step[int]{
		{Tier: TierNN, Predict: func() (int, error) { return 0, fmt.Errorf("down") }},
	}, c)
	if err == nil || tier != TierError {
		t.Fatalf("got tier=%q err=%v", tier, err)
	}
	if c.Get(TierError) != 1 {
		t.Fatalf("counters %v", c.Snapshot())
	}
	if _, _, err := Run[int](nil, nil); err == nil {
		t.Fatal("empty chain must error")
	}
}

func TestFinite(t *testing.T) {
	if !Finite(0, -1.5, 1e300) {
		t.Fatal("finite values rejected")
	}
	if Finite(1, math.NaN()) || Finite(math.Inf(1)) || Finite(math.Inf(-1)) {
		t.Fatal("non-finite values accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median %v", m)
	}
}

func decodeError(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return eb
}

func TestRecoverMiddleware(t *testing.T) {
	var logged string
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), func(format string, args ...any) { logged = fmt.Sprintf(format, args...) })
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if eb := decodeError(t, resp); eb.Status != 500 || eb.Error == "" {
		t.Fatalf("error body %+v", eb)
	}
	if !strings.Contains(logged, "boom") {
		t.Fatalf("panic not logged: %q", logged)
	}
}

func TestMaxBytesMiddleware(t *testing.T) {
	h := MaxBytes(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			WriteError(w, BodyErrorStatus(err), err.Error())
			return
		}
		w.WriteHeader(http.StatusOK)
	}), 16)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("small"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body status %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL, "text/plain", strings.NewReader(strings.Repeat("x", 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}
}

func TestTimeoutMiddlewareExpires(t *testing.T) {
	release := make(chan struct{})
	h := Timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
		fmt.Fprint(w, "late")
	}), 30*time.Millisecond, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if eb := decodeError(t, resp); eb.Status != http.StatusGatewayTimeout {
		t.Fatalf("error body %+v", eb)
	}
}

func TestTimeoutMiddlewarePassesFastRequests(t *testing.T) {
	h := Timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Fast", "1")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, "done")
	}), time.Second, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated || string(body) != "done" || resp.Header.Get("X-Fast") != "1" {
		t.Fatalf("status %d body %q hdr %q", resp.StatusCode, body, resp.Header.Get("X-Fast"))
	}
}

func TestTimeoutMiddlewareRecoversPanic(t *testing.T) {
	h := Timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("mid-flight")
	}), time.Second, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
