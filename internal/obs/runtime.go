package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime self-telemetry: a cached runtime/metrics sampler behind
// trout_runtime_* gauges. All gauges share one Read per refresh window,
// so a scrape costs one runtime/metrics batch read at most once per
// second no matter how many families are registered.

const runtimeRefresh = time.Second

// runtimeMetricNames are the runtime/metrics keys we sample. Missing
// names (older/newer runtimes) simply report zero — the series set on
// /metrics stays stable either way.
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/objects:objects",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	vals    map[string]float64
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{vals: map[string]float64{}}
	s.samples = make([]metrics.Sample, len(runtimeMetricNames))
	for i, n := range runtimeMetricNames {
		s.samples[i].Name = n
	}
	return s
}

// get returns the cached value for a derived metric key, refreshing the
// whole batch when the cache is older than runtimeRefresh.
func (s *runtimeSampler) get(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) >= runtimeRefresh {
		metrics.Read(s.samples)
		for _, sm := range s.samples {
			switch sm.Value.Kind() {
			case metrics.KindUint64:
				s.vals[sm.Name] = float64(sm.Value.Uint64())
			case metrics.KindFloat64:
				s.vals[sm.Name] = sm.Value.Float64()
			case metrics.KindFloat64Histogram:
				h := sm.Value.Float64Histogram()
				s.vals[sm.Name+"#p50"] = histQuantile(h, 0.50)
				s.vals[sm.Name+"#p99"] = histQuantile(h, 0.99)
			}
		}
		s.last = time.Now()
	}
	return s.vals[key]
}

// histQuantile reads quantile q from a runtime/metrics histogram. The
// bucket midpoint keeps it simple; runtime histograms are fine-grained
// enough that the approximation is well under display precision.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			lo := h.Buckets[i]
			hi := h.Buckets[i+1]
			// Outermost buckets can be infinite; clamp to the finite edge.
			switch {
			case math.IsInf(lo, 0):
				return hi
			case math.IsInf(hi, 0):
				return lo
			}
			return (lo + hi) / 2
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntime exposes process self-telemetry as trout_runtime_*.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	s := newRuntimeSampler()
	r.GaugeFunc("trout_runtime_goroutines",
		"Live goroutine count.",
		func() float64 { return s.get("/sched/goroutines:goroutines") })
	r.GaugeFunc("trout_runtime_heap_bytes",
		"Bytes of live heap objects.",
		func() float64 { return s.get("/memory/classes/heap/objects:bytes") })
	r.GaugeFunc("trout_runtime_mem_total_bytes",
		"Total bytes of memory mapped by the Go runtime.",
		func() float64 { return s.get("/memory/classes/total:bytes") })
	r.GaugeFunc("trout_runtime_heap_objects",
		"Live heap object count.",
		func() float64 { return s.get("/gc/heap/objects:objects") })
	r.CounterFunc("trout_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return s.get("/gc/cycles/total:gc-cycles") })
	r.GaugeFunc("trout_runtime_gc_pause_p50_seconds",
		"Median stop-the-world GC pause (process lifetime).",
		func() float64 { return s.get("/gc/pauses:seconds#p50") })
	r.GaugeFunc("trout_runtime_gc_pause_p99_seconds",
		"p99 stop-the-world GC pause (process lifetime).",
		func() float64 { return s.get("/gc/pauses:seconds#p99") })
	r.GaugeFunc("trout_runtime_sched_latency_p50_seconds",
		"Median goroutine scheduling latency (process lifetime).",
		func() float64 { return s.get("/sched/latencies:seconds#p50") })
	r.GaugeFunc("trout_runtime_sched_latency_p99_seconds",
		"p99 goroutine scheduling latency (process lifetime).",
		func() float64 { return s.get("/sched/latencies:seconds#p99") })
	r.GaugeFunc("trout_runtime_gomaxprocs",
		"GOMAXPROCS at scrape time.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
