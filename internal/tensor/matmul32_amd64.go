//go:build amd64

package tensor

// haveSSE reports whether the assembly kernel is available. SSE2 is part
// of the amd64 baseline, so no runtime feature detection is needed and a
// plain `go build` on any amd64 host takes the vector path.
const haveSSE = true

// matmulTransB32SSE computes outs dot products of one activation row
// against transposed weight rows (outs x inPad, both multiples of 4),
// adds bias, applies max(lim, v) with v in the source position (lim = 0
// fuses ReLU, lim = −Inf is the identity; NaN accumulators propagate),
// and stores float32 results to dst.
//
//go:noescape
func matmulTransB32SSE(a, wt, bias, dst *float32, outs, inPad int64, lim float32)

// eluSSE applies ELU (alpha = 1) in place over n float32 lanes (n a
// positive multiple of 4), branchlessly, with the Cephes expf polynomial.
// Bit-identical to the scalar replica elu32.
//
//go:noescape
func eluSSE(p *float32, n int64)
