// Package loadgen drives a troutd instance with a mixed /predict,
// /predict/batch, and /events workload and scores what came back:
// latency quantiles per endpoint, status distribution, error rate, and —
// for fault-injection runs — a strict per-response validity check (every
// answer must be a valid prediction, a structured error, or a 429 with
// Retry-After; anything else is a correctness failure, not just an error).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Kind labels one request family in the mix.
type Kind string

const (
	KindPredict Kind = "predict"
	KindBatch   Kind = "batch"
	KindEvents  Kind = "events"
)

// Config shapes one load run. The zero value needs at least BaseURL and
// either Duration or Requests.
type Config struct {
	// BaseURL of the target service (no trailing slash).
	BaseURL string
	// Client overrides the HTTP client (fault tests inject transports
	// here). Nil uses a client with Timeout 10s.
	Client *http.Client
	// Handler, when set, dispatches requests straight into an in-process
	// http.Handler instead of a network client — no sockets, no listener,
	// so smoke tests and benches measure the serving stack rather than
	// the loopback. Overrides Client; BaseURL defaults to a placeholder.
	Handler http.Handler
	// Duration stops the run on wall clock; Requests stops it after a
	// total request count. Either (or both) may be set; first wins.
	Duration time.Duration
	Requests int
	// Concurrency is the worker count (closed loop). 0 means 4.
	Concurrency int
	// RatePerSec > 0 switches to open loop: arrivals are paced globally at
	// this rate regardless of response latency, so an overloaded server
	// builds queueing (and sheds) instead of implicitly slowing the
	// generator. 0 is closed loop.
	RatePerSec float64
	// PredictWeight : BatchWeight : EventsWeight picks each request's
	// kind. All zero means 70:20:10.
	PredictWeight, BatchWeight, EventsWeight int
	// BatchSize is the jobs per /predict/batch request. 0 means 8.
	BatchSize int
	// At is the prediction instant sent with predict/batch bodies. 0 means
	// 2000 (matches the small test fixtures).
	At int64
	// JobIDBase namespaces the synthetic job IDs this run submits via
	// /events so concurrent or repeated runs do not collide. 0 means 10^6.
	JobIDBase int64
	// Seed makes the kind/job randomness reproducible. 0 means 1.
	Seed int64
	// Validate, when set, judges every HTTP response (network errors are
	// counted separately). Use StrictValidate for fault windows.
	Validate func(kind Kind, status int, retryAfter string, body []byte) error
}

func (c Config) withDefaults() Config {
	if c.Handler != nil {
		c.Client = &http.Client{Transport: handlerTransport{h: c.Handler}, Timeout: 10 * time.Second}
		if c.BaseURL == "" {
			c.BaseURL = "http://in-process"
		}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Concurrency == 0 {
		c.Concurrency = 4
	}
	if c.PredictWeight == 0 && c.BatchWeight == 0 && c.EventsWeight == 0 {
		c.PredictWeight, c.BatchWeight, c.EventsWeight = 70, 20, 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.At == 0 {
		c.At = 2000
	}
	if c.JobIDBase == 0 {
		c.JobIDBase = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// KindStats is one request family's slice of the scorecard.
type KindStats struct {
	Count     uint64        `json:"count"`
	NetErrors uint64        `json:"net_errors"`
	Invalid   uint64        `json:"invalid"`
	P50       time.Duration `json:"p50_ns"`
	P90       time.Duration `json:"p90_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
}

// Scorecard is the run's verdict.
type Scorecard struct {
	Duration   time.Duration       `json:"duration_ns"`
	Total      uint64              `json:"total"`
	NetErrors  uint64              `json:"net_errors"`
	Invalid    uint64              `json:"invalid"`
	Dropped    uint64              `json:"dropped_arrivals,omitempty"` // open loop only
	Status     map[int]uint64      `json:"status"`
	Kinds      map[Kind]*KindStats `json:"kinds"`
	P50        time.Duration       `json:"p50_ns"`
	P90        time.Duration       `json:"p90_ns"`
	P99        time.Duration       `json:"p99_ns"`
	Max        time.Duration       `json:"max_ns"`
	Throughput float64             `json:"requests_per_sec"`
	// ErrorRate is the fraction of requests that failed hard: network
	// errors, 5xx, or invalid responses. 429s are deliberate load-shedding
	// and do NOT count — a shed request got a correct answer.
	ErrorRate      float64  `json:"error_rate"`
	InvalidSamples []string `json:"invalid_samples,omitempty"`
	// Slowest lists the k slowest requests with the trace ID the server
	// stamped on them (X-Request-ID), pasteable straight into the
	// server's /debug/requests flight recorder to pull the full span tree.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest identifies one of the run's slowest requests by trace ID.
type SlowRequest struct {
	Kind    Kind          `json:"kind"`
	Status  int           `json:"status"`
	Latency time.Duration `json:"latency_ns"`
	TraceID string        `json:"trace_id,omitempty"`
}

func (sc *Scorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests in %s (%.1f req/s), error rate %.4f\n",
		sc.Total, sc.Duration.Round(time.Millisecond), sc.Throughput, sc.ErrorRate)
	fmt.Fprintf(&b, "  latency p50 %s  p90 %s  p99 %s  max %s\n",
		sc.P50.Round(time.Microsecond), sc.P90.Round(time.Microsecond),
		sc.P99.Round(time.Microsecond), sc.Max.Round(time.Microsecond))
	var codes []int
	for code := range sc.Status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "  HTTP %d: %d\n", code, sc.Status[code])
	}
	if sc.NetErrors > 0 {
		fmt.Fprintf(&b, "  network errors: %d\n", sc.NetErrors)
	}
	if sc.Dropped > 0 {
		fmt.Fprintf(&b, "  dropped arrivals (open loop overload): %d\n", sc.Dropped)
	}
	if sc.Invalid > 0 {
		fmt.Fprintf(&b, "  INVALID responses: %d\n", sc.Invalid)
		for _, s := range sc.InvalidSamples {
			fmt.Fprintf(&b, "    %s\n", s)
		}
	}
	for _, k := range []Kind{KindPredict, KindBatch, KindEvents} {
		if ks, ok := sc.Kinds[k]; ok && ks.Count > 0 {
			fmt.Fprintf(&b, "  %-8s n=%-6d p50 %-10s p99 %-10s\n",
				k, ks.Count, ks.P50.Round(time.Microsecond), ks.P99.Round(time.Microsecond))
		}
	}
	if len(sc.Slowest) > 0 {
		fmt.Fprintf(&b, "  slowest requests (look up trace IDs on the server's /debug/requests):\n")
		for _, sr := range sc.Slowest {
			id := sr.TraceID
			if id == "" {
				id = "-"
			}
			fmt.Fprintf(&b, "    %-10s %-8s HTTP %d  trace %s\n",
				sr.Latency.Round(time.Microsecond), sr.Kind, sr.Status, id)
		}
	}
	return b.String()
}

// StrictValidate is the fault-window contract from ISSUE 6: every response
// must be (a) a 2xx carrying valid JSON, (b) a 429 carrying Retry-After,
// or (c) a structured JSON error with an "error" field. Anything else —
// HTML error pages, empty bodies, missing Retry-After — is invalid.
func StrictValidate(kind Kind, status int, retryAfter string, body []byte) error {
	switch {
	case status >= 200 && status < 300:
		if !json.Valid(body) {
			return fmt.Errorf("%s: 2xx with invalid JSON body", kind)
		}
		return nil
	case status == http.StatusTooManyRequests:
		if retryAfter == "" {
			return fmt.Errorf("%s: 429 without Retry-After", kind)
		}
		return nil
	default:
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			return fmt.Errorf("%s: HTTP %d without structured error body", kind, status)
		}
		return nil
	}
}

// handlerTransport is an http.RoundTripper that serves each request from
// an in-process handler via a response recorder.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// sample is one completed request.
type sample struct {
	kind    Kind
	status  int // 0 = network error
	latency time.Duration
	invalid string // non-empty = validation failure
	trace   string // server-stamped X-Request-ID, keys /debug/requests
}

// Run executes the load and scores it. It returns early (with the partial
// scorecard) when ctx is canceled.
func Run(ctx context.Context, cfg Config) (*Scorecard, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: need Duration or Requests")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var issued atomic.Int64 // global request budget when Requests > 0
	var dropped atomic.Uint64
	var nextJobID atomic.Int64
	nextJobID.Store(cfg.JobIDBase)

	// Open loop: a pacer feeds tokens at the target rate; a full token
	// queue means the server (plus workers) can't keep up and arrivals are
	// dropped — visible in the scorecard rather than silently slowing down.
	var tokens chan struct{}
	if cfg.RatePerSec > 0 {
		tokens = make(chan struct{}, cfg.Concurrency*4)
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
						dropped.Add(1)
					}
				}
			}
		}()
	}

	start := time.Now()
	results := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var buf []sample
			for {
				if ctx.Err() != nil {
					break
				}
				if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
					break
				}
				if tokens != nil {
					select {
					case <-ctx.Done():
						results[w] = buf
						return
					case <-tokens:
					}
				}
				buf = append(buf, cfg.doOne(ctx, rng, &nextJobID))
			}
			results[w] = buf
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, r := range results {
		all = append(all, r...)
	}
	sc := score(all, elapsed)
	sc.Dropped = dropped.Load()
	return sc, nil
}

// pickKind draws a request family by weight.
func (c Config) pickKind(rng *rand.Rand) Kind {
	total := c.PredictWeight + c.BatchWeight + c.EventsWeight
	n := rng.Intn(total)
	if n < c.PredictWeight {
		return KindPredict
	}
	if n < c.PredictWeight+c.BatchWeight {
		return KindBatch
	}
	return KindEvents
}

func (c Config) synthJob(id int, rng *rand.Rand) trace.Job {
	return trace.Job{
		ID:        id,
		User:      rng.Intn(16),
		Partition: "shared",
		Submit:    c.At,
		ReqCPUs:   1 + rng.Intn(32),
		ReqMemGB:  float64(1 + rng.Intn(64)),
		ReqNodes:  1 + rng.Intn(4),
		TimeLimit: int64(600 * (1 + rng.Intn(12))),
		Priority:  int64(1000 + rng.Intn(1000)),
	}
}

// doOne builds, sends, and scores a single request.
func (c Config) doOne(ctx context.Context, rng *rand.Rand, nextJobID *atomic.Int64) sample {
	kind := c.pickKind(rng)
	var (
		path string
		body []byte
	)
	switch kind {
	case KindPredict:
		path = "/predict"
		body, _ = json.Marshal(map[string]any{"at": c.At, "job": c.synthJob(int(nextJobID.Add(1)), rng)})
	case KindBatch:
		path = "/predict/batch"
		jobs := make([]trace.Job, c.BatchSize)
		for i := range jobs {
			jobs[i] = c.synthJob(int(nextJobID.Add(1)), rng)
		}
		body, _ = json.Marshal(map[string]any{"at": c.At, "jobs": jobs})
	case KindEvents:
		path = "/events"
		id := int(nextJobID.Add(1))
		j := c.synthJob(id, rng)
		var lines bytes.Buffer
		sub, _ := json.Marshal(map[string]any{"type": "submit", "time": c.At, "job": j})
		elig, _ := json.Marshal(map[string]any{"type": "eligible", "time": c.At + 1, "job_id": id})
		lines.Write(sub)
		lines.WriteByte('\n')
		lines.Write(elig)
		lines.WriteByte('\n')
		body = lines.Bytes()
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return sample{kind: kind, status: 0, invalid: err.Error()}
	}
	if kind == KindEvents {
		req.Header.Set("Content-Type", "application/x-ndjson")
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := c.Client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		return sample{kind: kind, status: 0, latency: lat}
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	s := sample{kind: kind, status: resp.StatusCode, latency: lat,
		trace: resp.Header.Get("X-Request-ID")}
	if c.Validate != nil {
		if verr := c.Validate(kind, resp.StatusCode, resp.Header.Get("Retry-After"), respBody); verr != nil {
			s.invalid = verr.Error()
		}
	}
	return s
}

func quantiles(lat []time.Duration) (p50, p90, p99, max time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return at(0.50), at(0.90), at(0.99), lat[len(lat)-1]
}

// slowest returns the k slowest completed requests, slowest first, so
// the scorecard can hand their trace IDs to /debug/requests.
func slowest(all []sample, k int) []SlowRequest {
	done := make([]sample, 0, len(all))
	for _, s := range all {
		if s.status != 0 {
			done = append(done, s)
		}
	}
	sort.Slice(done, func(a, b int) bool { return done[a].latency > done[b].latency })
	if len(done) > k {
		done = done[:k]
	}
	out := make([]SlowRequest, len(done))
	for i, s := range done {
		out[i] = SlowRequest{Kind: s.kind, Status: s.status, Latency: s.latency, TraceID: s.trace}
	}
	return out
}

func score(all []sample, elapsed time.Duration) *Scorecard {
	sc := &Scorecard{
		Duration: elapsed,
		Status:   map[int]uint64{},
		Kinds:    map[Kind]*KindStats{},
	}
	var overall []time.Duration
	perKind := map[Kind][]time.Duration{}
	var hardFailures uint64
	for _, s := range all {
		sc.Total++
		ks := sc.Kinds[s.kind]
		if ks == nil {
			ks = &KindStats{}
			sc.Kinds[s.kind] = ks
		}
		ks.Count++
		if s.status == 0 {
			sc.NetErrors++
			ks.NetErrors++
			hardFailures++
			continue
		}
		sc.Status[s.status]++
		overall = append(overall, s.latency)
		perKind[s.kind] = append(perKind[s.kind], s.latency)
		if s.invalid != "" {
			sc.Invalid++
			ks.Invalid++
			hardFailures++
			if len(sc.InvalidSamples) < 5 {
				sc.InvalidSamples = append(sc.InvalidSamples, s.invalid)
			}
		} else if s.status >= 500 {
			hardFailures++
		}
	}
	sc.P50, sc.P90, sc.P99, sc.Max = quantiles(overall)
	for k, lat := range perKind {
		ks := sc.Kinds[k]
		ks.P50, ks.P90, ks.P99, ks.Max = quantiles(lat)
	}
	sc.Slowest = slowest(all, 5)
	if sc.Total > 0 {
		sc.ErrorRate = float64(hardFailures) / float64(sc.Total)
	}
	if elapsed > 0 {
		sc.Throughput = float64(sc.Total) / elapsed.Seconds()
	}
	return sc
}
