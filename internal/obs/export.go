package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// SpanJSON is the export/debug wire form of one span. The same shape is
// written to the JSONL trace file and served by /debug/requests, so a
// trace ID pasted from one is directly comparable in the other.
type SpanJSON struct {
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	StartUnixNs int64             `json:"start_unix_ns"`
	EndUnixNs   int64             `json:"end_unix_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Error       string            `json:"error,omitempty"`
	Link        *SpanLinkJSON     `json:"link,omitempty"`
}

// SpanLinkJSON points at a span in another trace (or, for a proxied
// request's root, the caller's span in the same trace on another node).
type SpanLinkJSON struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// TraceJSON is one exported JSONL line: a complete trace.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	DurationMs float64    `json:"duration_ms"`
	Spans      []SpanJSON `json:"spans"`
}

// spansToJSON converts cloned span records to the wire form.
func spansToJSON(spans []SpanRec) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		j := SpanJSON{
			SpanID:      FormatSpanID(s.ID),
			Name:        s.Name,
			StartUnixNs: s.Start,
			EndUnixNs:   s.End,
			Error:       s.Err,
		}
		if s.Parent != 0 {
			j.ParentID = FormatSpanID(s.Parent)
		}
		if len(s.Attrs) > 0 {
			j.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				j.Attrs[a.Key] = a.Val
			}
		}
		if s.LinkTrace != "" {
			j.Link = &SpanLinkJSON{TraceID: s.LinkTrace, SpanID: FormatSpanID(s.LinkSpan)}
		}
		out[i] = j
	}
	return out
}

// traceJSONFrom builds the export line for a trace buffer (cloning the
// spans, so stragglers appending after a 504 cannot race the writer).
func traceJSONFrom(tb *TraceBuf) TraceJSON {
	spans := tb.snapshot(time.Now().UnixNano())
	line := TraceJSON{TraceID: tb.traceID, Spans: spansToJSON(spans)}
	if len(spans) > 0 {
		line.Root = spans[0].Name
		line.DurationMs = float64(spans[0].End-spans[0].Start) / 1e6
	}
	return line
}

// exporter writes kept traces as JSONL, one trace per line, on its own
// goroutine behind a bounded queue: the hot path only does a channel
// send (or a counter bump when the queue is full). The file rotates at
// maxBytes into path.1 … path.(maxFiles-1).
type exporter struct {
	path     string
	maxBytes int64
	maxFiles int

	q      chan TraceJSON
	flushc chan chan struct{}
	donec  chan struct{}
	stopc  chan struct{}

	f    *os.File
	size int64

	exported atomic.Uint64
	dropped  atomic.Uint64
	closed   atomic.Bool
}

func newExporter(path string, maxBytes int64, maxFiles, queueLen int) (*exporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace exporter: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace exporter: %w", err)
	}
	e := &exporter{
		path: path, maxBytes: maxBytes, maxFiles: maxFiles,
		q:      make(chan TraceJSON, queueLen),
		flushc: make(chan chan struct{}),
		donec:  make(chan struct{}),
		stopc:  make(chan struct{}),
		f:      f, size: st.Size(),
	}
	go e.loop()
	return e, nil
}

// enqueue hands a kept trace to the writer. The JSON-ready clone is
// built here (off the keep-nothing path — only kept traces pay it); the
// channel send never blocks.
func (e *exporter) enqueue(tb *TraceBuf) {
	if e.closed.Load() {
		e.dropped.Add(1)
		return
	}
	select {
	case e.q <- traceJSONFrom(tb):
	default:
		e.dropped.Add(1)
	}
}

func (e *exporter) loop() {
	defer close(e.donec)
	for {
		select {
		case line := <-e.q:
			e.write(line)
		case ack := <-e.flushc:
			e.drain()
			close(ack)
		case <-e.stopc:
			e.drain()
			e.f.Close()
			return
		}
	}
}

func (e *exporter) drain() {
	for {
		select {
		case line := <-e.q:
			e.write(line)
		default:
			return
		}
	}
}

func (e *exporter) write(line TraceJSON) {
	b, err := json.Marshal(line)
	if err != nil {
		e.dropped.Add(1)
		return
	}
	b = append(b, '\n')
	if e.size+int64(len(b)) > e.maxBytes && e.size > 0 {
		e.rotate()
	}
	n, err := e.f.Write(b)
	e.size += int64(n)
	if err != nil {
		e.dropped.Add(1)
		return
	}
	e.exported.Add(1)
}

// rotate shifts path.(n-1)←…←path.1←path and reopens a fresh file.
// Rotation errors are swallowed (a rename race loses history, never
// serving); a reopen failure keeps writing the old handle.
func (e *exporter) rotate() {
	for i := e.maxFiles - 1; i >= 1; i-- {
		src := e.path
		if i > 1 {
			src = fmt.Sprintf("%s.%d", e.path, i-1)
		}
		os.Rename(src, fmt.Sprintf("%s.%d", e.path, i))
	}
	if e.maxFiles <= 1 {
		os.Remove(e.path)
	}
	f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	e.f.Close()
	e.f = f
	e.size = 0
}

func (e *exporter) flush() {
	if e.closed.Load() {
		return
	}
	ack := make(chan struct{})
	select {
	case e.flushc <- ack:
		<-ack
	case <-e.donec:
	}
}

func (e *exporter) close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.stopc)
	}
	<-e.donec
	return nil
}
