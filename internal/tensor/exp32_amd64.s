//go:build amd64

#include "textflag.h"

// Broadcast and scalar constants for the exp/ELU kernel. The first four
// 16-byte groups are 4-lane broadcasts loaded per iteration; the scalar
// tail is broadcast into registers once at entry. Bit patterns match the
// exp32* constants in exp32.go exactly.
DATA eluconst<>+0(SB)/4, $0x3F000000  // p5 = 0.5
DATA eluconst<>+4(SB)/4, $0x3F000000
DATA eluconst<>+8(SB)/4, $0x3F000000
DATA eluconst<>+12(SB)/4, $0x3F000000
DATA eluconst<>+16(SB)/4, $0xC2AE0000 // lo = -87
DATA eluconst<>+20(SB)/4, $0xC2AE0000
DATA eluconst<>+24(SB)/4, $0xC2AE0000
DATA eluconst<>+28(SB)/4, $0xC2AE0000
DATA eluconst<>+32(SB)/4, $0x3F800000 // 1.0
DATA eluconst<>+36(SB)/4, $0x3F800000
DATA eluconst<>+40(SB)/4, $0x3F800000
DATA eluconst<>+44(SB)/4, $0x3F800000
DATA eluconst<>+48(SB)/4, $0x0000007F // int32 127 (exponent bias)
DATA eluconst<>+52(SB)/4, $0x0000007F
DATA eluconst<>+56(SB)/4, $0x0000007F
DATA eluconst<>+60(SB)/4, $0x0000007F
DATA eluconst<>+64(SB)/4, $0x3FB8AA3B // log2e
DATA eluconst<>+68(SB)/4, $0x3F318000 // C1
DATA eluconst<>+72(SB)/4, $0xB95E8083 // C2
DATA eluconst<>+76(SB)/4, $0x39506967 // p0
DATA eluconst<>+80(SB)/4, $0x3AB743CE // p1
DATA eluconst<>+84(SB)/4, $0x3C088908 // p2
DATA eluconst<>+88(SB)/4, $0x3D2AA9C1 // p3
DATA eluconst<>+92(SB)/4, $0x3E2AAAAA // p4
GLOBL eluconst<>(SB), RODATA|NOPTR, $96

// func eluSSE(p *float32, n int64)
//
// In-place ELU (alpha = 1) over n float32 lanes, n a positive multiple of
// 4. Each 4-lane chunk is processed branchlessly: the argument is clamped
// to (-87, 0] with NaN passing through (MINPS/MAXPS keep the source on
// NaN), e^x is evaluated by the Cephes expf scheme — n = round(x*log2e)
// via CVTPS2DQ, degree-6 polynomial on the reduced argument, 2^n scaling
// through the exponent bits — and a CMPPS-NLE mask blends the identity
// back in for positive lanes (NaN lanes blend x itself, staying NaN).
// The scalar replica elu32 in exp32.go mirrors every operation in order;
// TestElu32SSEMatchesGo pins the two bit-identical.
TEXT ·eluSSE(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX

	MOVSS  eluconst<>+64(SB), X15 // log2e
	SHUFPS $0x00, X15, X15
	MOVSS  eluconst<>+68(SB), X14 // C1
	SHUFPS $0x00, X14, X14
	MOVSS  eluconst<>+72(SB), X13 // C2
	SHUFPS $0x00, X13, X13
	MOVSS  eluconst<>+76(SB), X12 // p0
	SHUFPS $0x00, X12, X12
	MOVSS  eluconst<>+80(SB), X11 // p1
	SHUFPS $0x00, X11, X11
	MOVSS  eluconst<>+84(SB), X10 // p2
	SHUFPS $0x00, X10, X10
	MOVSS  eluconst<>+88(SB), X9  // p3
	SHUFPS $0x00, X9, X9
	MOVSS  eluconst<>+92(SB), X8  // p4
	SHUFPS $0x00, X8, X8

loop:
	MOVUPS (SI), X0               // x
	XORPS  X1, X1
	MINPS  X0, X1                 // xc = min(x, 0); NaN -> x
	MOVUPS eluconst<>+16(SB), X7
	MAXPS  X1, X7                 // g = max(-87, xc); NaN -> xc

	MOVAPS   X7, X1
	MULPS    X15, X1              // fn = g*log2e
	CVTPS2PL X1, X2               // n = roundeven(fn)
	CVTPL2PS X2, X3               // nf = float32(n)
	MOVAPS   X3, X4
	MULPS    X14, X4
	SUBPS    X4, X7               // g -= nf*C1
	MOVAPS   X3, X4
	MULPS    X13, X4
	SUBPS    X4, X7               // g -= nf*C2

	MOVAPS X12, X4                // y = p0
	MULPS  X7, X4
	ADDPS  X11, X4                // y = y*g + p1
	MULPS  X7, X4
	ADDPS  X10, X4                // y = y*g + p2
	MULPS  X7, X4
	ADDPS  X9, X4                 // y = y*g + p3
	MULPS  X7, X4
	ADDPS  X8, X4                 // y = y*g + p4
	MULPS  X7, X4
	MOVUPS eluconst<>+0(SB), X5
	ADDPS  X5, X4                 // y = y*g + p5
	MOVAPS X7, X5
	MULPS  X7, X5                 // t = g*g
	MULPS  X5, X4                 // y *= t
	ADDPS  X7, X4                 // y += g
	MOVUPS eluconst<>+32(SB), X5
	ADDPS  X5, X4                 // y += 1

	MOVUPS eluconst<>+48(SB), X6
	PADDL  X6, X2                 // n + 127
	PSLLL  $23, X2                // 2^n bit pattern
	MULPS  X2, X4                 // e = y * 2^n
	SUBPS  X5, X4                 // e - 1 (X5 still holds 1.0)

	XORPS  X5, X5
	MOVAPS X0, X6
	CMPPS  X5, X6, $6             // mask = !(x <= 0), true for NaN
	ANDPS  X6, X0                 // x where positive/NaN
	ANDNPS X4, X6                 // e-1 where non-positive
	ORPS   X6, X0
	MOVUPS X0, (SI)

	ADDQ $16, SI
	SUBQ $4, CX
	JNE  loop
	RET
