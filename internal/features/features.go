// Package features engineers the paper's Table II feature set from a job
// trace: for every job, the state of its partition's queue at the job's
// eligibility instant (jobs/CPUs/memory/nodes/wall-time pending, running,
// and pending-with-higher-priority), the submitting user's past-day
// activity, static partition capacity, and the outputs of a random-forest
// runtime predictor. Queue/running overlap is computed with interval trees
// built in chunks of 100 000 jobs with a 10 000-job overlap and merged, as
// §III describes. Per-job computation is goroutine-parallel.
package features

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/intervaltree"
	"repro/internal/slurmsim"
	"repro/internal/trace"
)

// Names lists the 33 model features, in column order. The first block is
// read straight off the job record; the "Par * Ahead/Queue/Running" blocks
// are interval-tree aggregates; "User * Past Day" is the submitting user's
// trailing-day activity; "Par Total *" are partition constants; the final
// block comes from the runtime predictor.
var Names = []string{
	"Priority",
	"Timelimit Raw",
	"Req CPUs",
	"Req Mem",
	"Req Nodes",
	"Par Jobs Ahead",
	"Par CPUs Ahead",
	"Par Mem Ahead",
	"Par Nodes Ahead",
	"Par Timelimit Ahead",
	"Par Jobs Queue",
	"Par CPUs Queue",
	"Par Mem Queue",
	"Par Nodes Queue",
	"Par Timelimit Queue",
	"Par Jobs Running",
	"Par CPUs Running",
	"Par Mem Running",
	"Par Nodes Running",
	"Par Timelimit Running",
	"User Jobs Past Day",
	"User CPUs Past Day",
	"User Mem Past Day",
	"User Nodes Past Day",
	"User Timelimit Past Day",
	"Par Total Nodes",
	"Par Total CPU",
	"Par CPU per Node",
	"Par Mem per Node",
	"Par Total GPU",
	"Pred Runtime",
	"Par Queue Pred Timelimit",
	"Par Running Pred Timelimit",
}

// NumFeatures is the feature-vector width (the paper's regression model has
// 33 inputs).
const NumFeatures = 33

// Options controls feature construction.
type Options struct {
	// ChunkSize/ChunkOverlap configure the paper's chunked interval-tree
	// build; zero values default to 100 000 / 10 000.
	ChunkSize    int
	ChunkOverlap int
	// RuntimeTrainFraction is the earliest fraction of jobs used to train
	// the runtime predictor (time-ordered, so later jobs never leak into
	// it); 0 means 0.5.
	RuntimeTrainFraction float64
	// RuntimeTrees sizes the runtime random forest; 0 means 50.
	RuntimeTrees int
	// RuntimeSource selects how the Pred-Runtime features are filled:
	// "forest" (default — the paper's random-forest predictor), "oracle"
	// (the job's true runtime; an upper bound for the §V discussion on
	// better runtime models) or "requested" (the raw time limit; the
	// no-model lower bound).
	RuntimeSource string
	// Workers bounds the per-job parallel feature computation; 0 means
	// GOMAXPROCS.
	Workers int
	// ExactTrees trains the runtime forest with the exact per-node split
	// search instead of the default histogram learner (much slower; kept
	// for quality comparisons and ablations).
	ExactTrees bool
	Seed       int64
}

func (o *Options) defaults() {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 100000
	}
	if o.ChunkOverlap < 0 || o.ChunkOverlap >= o.ChunkSize {
		o.ChunkOverlap = o.ChunkSize / 10
	}
	if o.RuntimeTrainFraction <= 0 || o.RuntimeTrainFraction > 1 {
		o.RuntimeTrainFraction = 0.5
	}
	if o.RuntimeTrees <= 0 {
		o.RuntimeTrees = 50
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Dataset is the engineered feature matrix, aligned with Jobs (which are
// sorted by eligibility time — the order every time-based split relies on).
type Dataset struct {
	Names        []string
	X            [][]float64 // raw features; apply scaling before modeling
	QueueMinutes []float64   // regression target
	Jobs         []trace.Job
	PredRuntime  []float64 // runtime-predictor output per job, seconds
	// Runtime is the fitted runtime predictor, reusable for live-queue
	// snapshots (see SnapshotRow) and deployment bundles.
	Runtime *RuntimePredictor
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Labels returns the classifier labels for the given cutoff: true when the
// job queued at least cutoffMinutes (a "long" job).
func (d *Dataset) Labels(cutoffMinutes float64) []bool {
	out := make([]bool, len(d.QueueMinutes))
	for i, q := range d.QueueMinutes {
		out[i] = q >= cutoffMinutes
	}
	return out
}

// Build engineers features for every job in the trace.
func Build(tr *trace.Trace, cluster *slurmsim.ClusterSpec, opt Options) (*Dataset, error) {
	opt.defaults()
	if len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("features: empty trace")
	}
	jobs := append([]trace.Job(nil), tr.Jobs...)
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].Eligible != jobs[j].Eligible {
			return jobs[i].Eligible < jobs[j].Eligible
		}
		return jobs[i].ID < jobs[j].ID
	})

	// Partition totals, validated up front.
	totals := map[string]slurmsim.PartitionTotals{}
	for i := range jobs {
		name := jobs[i].Partition
		if _, ok := totals[name]; ok {
			continue
		}
		if cluster.Partition(name) == nil {
			return nil, fmt.Errorf("features: job %d references unknown partition %q", jobs[i].ID, name)
		}
		totals[name] = cluster.Totals(name)
	}

	// Runtime predictor (random forest on request-time features only),
	// trained on the earliest fraction of jobs so later jobs never leak
	// into it. The ablation modes bypass the forest for the Pred-Runtime
	// feature values but still train it (bundles always carry one).
	trainN := int(float64(len(jobs)) * opt.RuntimeTrainFraction)
	if trainN < 10 {
		trainN = len(jobs)
	}
	rp, err := TrainRuntimePredictor(jobs[:trainN], totals, opt.RuntimeTrees, opt.Seed, opt.ExactTrees)
	if err != nil {
		return nil, err
	}
	var predRuntime []float64
	switch opt.RuntimeSource {
	case "", "forest":
		predRuntime = predictRuntimes(rp, jobs, totals, opt.Workers)
	case "oracle":
		predRuntime = make([]float64, len(jobs))
		for i := range jobs {
			predRuntime[i] = float64(jobs[i].RuntimeSeconds())
		}
	case "requested":
		predRuntime = make([]float64, len(jobs))
		for i := range jobs {
			predRuntime[i] = float64(jobs[i].TimeLimit)
		}
	default:
		return nil, fmt.Errorf("features: unknown RuntimeSource %q", opt.RuntimeSource)
	}

	// Interval trees per partition: pending = [eligible, start),
	// running = [start, end). Interval IDs are indices into jobs.
	pendTrees, runTrees := buildTrees(jobs, opt)

	// Per-user submit history for the past-day aggregates.
	hist := buildUserHistory(jobs)

	ds := &Dataset{
		Names:        Names,
		X:            make([][]float64, len(jobs)),
		QueueMinutes: make([]float64, len(jobs)),
		Jobs:         jobs,
		PredRuntime:  predRuntime,
		Runtime:      rp,
	}

	var wg sync.WaitGroup
	chunk := (len(jobs) + opt.Workers - 1) / opt.Workers
	for w := 0; w < opt.Workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(jobs) {
			hi = len(jobs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ds.X[i] = buildRow(jobs, i, totals, pendTrees, runTrees, hist, predRuntime)
				ds.QueueMinutes[i] = jobs[i].QueueMinutes()
			}
		}(lo, hi)
	}
	wg.Wait()
	return ds, nil
}

// buildTrees constructs the per-partition pending and running interval
// trees with the paper's chunk/overlap/merge scheme.
func buildTrees(jobs []trace.Job, opt Options) (pend, run map[string]*intervaltree.Tree) {
	pendIvs := map[string][]intervaltree.Interval{}
	runIvs := map[string][]intervaltree.Interval{}
	for i := range jobs {
		j := &jobs[i]
		pendIvs[j.Partition] = append(pendIvs[j.Partition],
			intervaltree.Interval{Lo: j.Eligible, Hi: j.Start, ID: i})
		runIvs[j.Partition] = append(runIvs[j.Partition],
			intervaltree.Interval{Lo: j.Start, Hi: j.End, ID: i})
	}
	pend = make(map[string]*intervaltree.Tree, len(pendIvs))
	run = make(map[string]*intervaltree.Tree, len(runIvs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for name := range pendIvs {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			p := intervaltree.BuildChunked(pendIvs[name], opt.ChunkSize, opt.ChunkOverlap)
			r := intervaltree.BuildChunked(runIvs[name], opt.ChunkSize, opt.ChunkOverlap)
			mu.Lock()
			pend[name], run[name] = p, r
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	return pend, run
}

// userHistory indexes each user's jobs by submit time with prefix sums so a
// trailing-window aggregate is two binary searches.
type userHistory struct {
	submit   []int64
	cumJobs  []float64 // 1 per job; cum[i] = sum over jobs[0..i)
	cumCPUs  []float64
	cumMem   []float64
	cumNodes []float64
	cumLimit []float64
}

func buildUserHistory(jobs []trace.Job) map[int]*userHistory {
	byUser := map[int][]int{}
	for i := range jobs {
		byUser[jobs[i].User] = append(byUser[jobs[i].User], i)
	}
	out := make(map[int]*userHistory, len(byUser))
	for user, idx := range byUser {
		sort.Slice(idx, func(a, b int) bool { return jobs[idx[a]].Submit < jobs[idx[b]].Submit })
		h := &userHistory{
			submit:   make([]int64, len(idx)),
			cumJobs:  make([]float64, len(idx)+1),
			cumCPUs:  make([]float64, len(idx)+1),
			cumMem:   make([]float64, len(idx)+1),
			cumNodes: make([]float64, len(idx)+1),
			cumLimit: make([]float64, len(idx)+1),
		}
		for k, i := range idx {
			j := &jobs[i]
			h.submit[k] = j.Submit
			h.cumJobs[k+1] = h.cumJobs[k] + 1
			h.cumCPUs[k+1] = h.cumCPUs[k] + float64(j.ReqCPUs)
			h.cumMem[k+1] = h.cumMem[k] + j.ReqMemGB
			h.cumNodes[k+1] = h.cumNodes[k] + float64(j.ReqNodes)
			h.cumLimit[k+1] = h.cumLimit[k] + float64(j.TimeLimit)/60
		}
		out[user] = h
	}
	return out
}

// window returns aggregate activity in [t-86400, t).
func (h *userHistory) window(t int64) (jobs, cpus, mem, nodes, limit float64) {
	lo := sort.Search(len(h.submit), func(i int) bool { return h.submit[i] >= t-86400 })
	hi := sort.Search(len(h.submit), func(i int) bool { return h.submit[i] >= t })
	return h.cumJobs[hi] - h.cumJobs[lo],
		h.cumCPUs[hi] - h.cumCPUs[lo],
		h.cumMem[hi] - h.cumMem[lo],
		h.cumNodes[hi] - h.cumNodes[lo],
		h.cumLimit[hi] - h.cumLimit[lo]
}

// buildRow computes one job's 33-feature vector.
func buildRow(jobs []trace.Job, i int, totals map[string]slurmsim.PartitionTotals,
	pendTrees, runTrees map[string]*intervaltree.Tree,
	hist map[int]*userHistory, predRuntime []float64) []float64 {

	j := &jobs[i]
	t := j.Eligible
	row := make([]float64, NumFeatures)
	row[0] = float64(j.Priority)
	row[1] = float64(j.TimeLimit) / 60
	row[2] = float64(j.ReqCPUs)
	row[3] = j.ReqMemGB
	row[4] = float64(j.ReqNodes)

	// Pending jobs in this partition at eligibility (excluding self).
	var aheadJobs, aheadCPUs, aheadMem, aheadNodes, aheadLimit float64
	var qJobs, qCPUs, qMem, qNodes, qLimit, qPred float64
	pendTrees[j.Partition].StabVisit(t, func(iv intervaltree.Interval) {
		k := iv.ID
		if k == i {
			return
		}
		o := &jobs[k]
		qJobs++
		qCPUs += float64(o.ReqCPUs)
		qMem += o.ReqMemGB
		qNodes += float64(o.ReqNodes)
		qLimit += float64(o.TimeLimit) / 60
		qPred += predRuntime[k] / 60
		if o.Priority > j.Priority {
			aheadJobs++
			aheadCPUs += float64(o.ReqCPUs)
			aheadMem += o.ReqMemGB
			aheadNodes += float64(o.ReqNodes)
			aheadLimit += float64(o.TimeLimit) / 60
		}
	})
	row[5], row[6], row[7], row[8], row[9] = aheadJobs, aheadCPUs, aheadMem, aheadNodes, aheadLimit
	row[10], row[11], row[12], row[13], row[14] = qJobs, qCPUs, qMem, qNodes, qLimit

	// Running jobs in this partition at eligibility.
	var rJobs, rCPUs, rMem, rNodes, rLimit, rPred float64
	runTrees[j.Partition].StabVisit(t, func(iv intervaltree.Interval) {
		if iv.ID == i {
			// A zero-queue job is "running" at its own eligibility
			// instant; the features describe the state it observed.
			return
		}
		o := &jobs[iv.ID]
		rJobs++
		rCPUs += float64(o.ReqCPUs)
		rMem += o.ReqMemGB
		rNodes += float64(o.ReqNodes)
		rLimit += float64(o.TimeLimit) / 60
		rPred += predRuntime[iv.ID] / 60
	})
	row[15], row[16], row[17], row[18], row[19] = rJobs, rCPUs, rMem, rNodes, rLimit

	// User past-day activity.
	uj, uc, um, un, ul := hist[j.User].window(t)
	row[20], row[21], row[22], row[23], row[24] = uj, uc, um, un, ul

	// Partition constants.
	tot := totals[j.Partition]
	row[25] = float64(tot.Nodes)
	row[26] = float64(tot.CPUs)
	row[27] = tot.CPUPerNode
	row[28] = tot.MemPerNode
	row[29] = float64(tot.GPUs)

	// Runtime predictions (minutes).
	row[30] = predRuntime[i] / 60
	row[31] = qPred
	row[32] = rPred
	return row
}

// runtimeFeatureRow builds the request-time-only inputs of the runtime
// predictor (no queue state — these must be computable for a job the moment
// it is submitted).
func runtimeFeatureRow(j *trace.Job, tot slurmsim.PartitionTotals) []float64 {
	return []float64{
		math.Log1p(float64(j.TimeLimit)),
		math.Log1p(float64(j.ReqCPUs)),
		math.Log1p(j.ReqMemGB),
		float64(j.ReqNodes),
		float64(j.ReqGPUs),
		float64(j.QOS),
		float64(j.Priority),
		float64(tot.CPUs),
		float64(tot.GPUs),
	}
}

// predictRuntimes applies the runtime predictor to every job in parallel.
func predictRuntimes(rp *RuntimePredictor, jobs []trace.Job, totals map[string]slurmsim.PartitionTotals, workers int) []float64 {
	n := len(jobs)
	out := make([]float64, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = rp.PredictSeconds(&jobs[i], totals[jobs[i].Partition])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
