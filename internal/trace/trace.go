// Package trace defines the Slurm-accounting-style job record produced by
// the cluster simulator and consumed by feature engineering, together with
// CSV and JSONL codecs and the summary statistics behind the paper's
// Table I. Times are Unix seconds; a record mirrors the fields TROUT reads
// from Slurm's historical accounting data.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// JobState mirrors the Slurm terminal states that appear in accounting data.
type JobState string

// Job states. Only completed-family states carry a meaningful queue time.
const (
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
	StateTimeout   JobState = "TIMEOUT"
	StateCancelled JobState = "CANCELLED"
)

// Job is one accounting record.
type Job struct {
	ID        int      `json:"id"`
	User      int      `json:"user"`
	Partition string   `json:"partition"`
	State     JobState `json:"state"`

	// Times, Unix seconds. Eligible >= Submit (jobs with dependencies or
	// begin-times become eligible later); Start >= Eligible; End >= Start.
	Submit   int64 `json:"submit"`
	Eligible int64 `json:"eligible"`
	Start    int64 `json:"start"`
	End      int64 `json:"end"`

	// Requested resources.
	ReqCPUs     int     `json:"req_cpus"`
	ReqMemGB    float64 `json:"req_mem_gb"`
	ReqNodes    int     `json:"req_nodes"`
	ReqGPUs     int     `json:"req_gpus"`
	TimeLimit   int64   `json:"time_limit"` // seconds of requested wall time
	Priority    int64   `json:"priority"`   // Slurm multifactor priority at submission
	QOS         int     `json:"qos"`        // QOS tier index
	Interactive bool    `json:"interactive"`
	// DependsOn is the ID of the job this one waited for (afterany
	// dependency), 0 if none — one reason Eligible can exceed Submit.
	DependsOn int `json:"depends_on,omitempty"`
}

// QueueSeconds returns the delay between eligibility and start — the
// quantity TROUT predicts (the paper reports it in minutes).
func (j *Job) QueueSeconds() int64 { return j.Start - j.Eligible }

// QueueMinutes returns the queue time in minutes.
func (j *Job) QueueMinutes() float64 { return float64(j.QueueSeconds()) / 60 }

// RuntimeSeconds returns the actual wall time used.
func (j *Job) RuntimeSeconds() int64 { return j.End - j.Start }

// WastedSeconds returns requested-minus-used wall time (never negative).
func (j *Job) WastedSeconds() int64 {
	w := j.TimeLimit - j.RuntimeSeconds()
	if w < 0 {
		return 0
	}
	return w
}

// Validate checks internal consistency of the record.
func (j *Job) Validate() error {
	switch {
	case j.Eligible < j.Submit:
		return fmt.Errorf("trace: job %d eligible %d before submit %d", j.ID, j.Eligible, j.Submit)
	case j.Start < j.Eligible:
		return fmt.Errorf("trace: job %d start %d before eligible %d", j.ID, j.Start, j.Eligible)
	case j.End < j.Start:
		return fmt.Errorf("trace: job %d end %d before start %d", j.ID, j.End, j.Start)
	case j.ReqCPUs <= 0 || j.ReqNodes <= 0:
		return fmt.Errorf("trace: job %d requests %d cpus %d nodes", j.ID, j.ReqCPUs, j.ReqNodes)
	case j.ReqMemGB <= 0:
		return fmt.Errorf("trace: job %d requests %.2f GB", j.ID, j.ReqMemGB)
	case j.TimeLimit <= 0:
		return fmt.Errorf("trace: job %d has time limit %d", j.ID, j.TimeLimit)
	case j.Partition == "":
		return fmt.Errorf("trace: job %d has no partition", j.ID)
	}
	return nil
}

// Trace is an ordered collection of job records.
type Trace struct {
	Jobs []Job
}

// Validate checks every record.
func (t *Trace) Validate() error {
	for i := range t.Jobs {
		if err := t.Jobs[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SortByEligible orders jobs by eligibility time (ties by ID), the order
// feature engineering and time-series splitting require.
func (t *Trace) SortByEligible() {
	sort.Slice(t.Jobs, func(i, j int) bool {
		if t.Jobs[i].Eligible != t.Jobs[j].Eligible {
			return t.Jobs[i].Eligible < t.Jobs[j].Eligible
		}
		return t.Jobs[i].ID < t.Jobs[j].ID
	})
}

// FilterPartition returns a new trace holding only the named partition's
// jobs (records are copied by value; order is preserved).
func (t *Trace) FilterPartition(name string) *Trace {
	out := &Trace{}
	for i := range t.Jobs {
		if t.Jobs[i].Partition == name {
			out.Jobs = append(out.Jobs, t.Jobs[i])
		}
	}
	return out
}

// Window returns the jobs whose eligibility time falls in [from, to).
func (t *Trace) Window(from, to int64) *Trace {
	out := &Trace{}
	for i := range t.Jobs {
		if e := t.Jobs[i].Eligible; e >= from && e < to {
			out.Jobs = append(out.Jobs, t.Jobs[i])
		}
	}
	return out
}

// Span returns the earliest submit and latest end in the trace (0, 0 for an
// empty trace).
func (t *Trace) Span() (first, last int64) {
	if len(t.Jobs) == 0 {
		return 0, 0
	}
	first, last = t.Jobs[0].Submit, t.Jobs[0].End
	for i := range t.Jobs {
		if t.Jobs[i].Submit < first {
			first = t.Jobs[i].Submit
		}
		if t.Jobs[i].End > last {
			last = t.Jobs[i].End
		}
	}
	return first, last
}

// ByPartition counts jobs per partition.
func (t *Trace) ByPartition() map[string]int {
	m := map[string]int{}
	for i := range t.Jobs {
		m[t.Jobs[i].Partition]++
	}
	return m
}

// ShortQueueFraction returns the fraction of jobs queueing less than
// cutoff seconds (the paper: 87% under 10 minutes).
func (t *Trace) ShortQueueFraction(cutoffSeconds int64) float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	n := 0
	for i := range t.Jobs {
		if t.Jobs[i].QueueSeconds() < cutoffSeconds {
			n++
		}
	}
	return float64(n) / float64(len(t.Jobs))
}

// Summary holds the five statistics reported per variable in Table I.
type Summary struct {
	Max, Mean, Median, StdDev float64
	Count                     int
}

// Summarize computes Table I-style statistics for a sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{Count: n, Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(n))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// TableOneStats mirrors the paper's Table I.
type TableOneStats struct {
	RequestedHours Summary
	RuntimeHours   Summary
	WastedHours    Summary
	JobsPerUser    Summary
}

// TableOne computes the paper's Table I statistics over the trace.
func (t *Trace) TableOne() TableOneStats {
	n := len(t.Jobs)
	req := make([]float64, n)
	run := make([]float64, n)
	waste := make([]float64, n)
	perUser := map[int]float64{}
	for i := range t.Jobs {
		j := &t.Jobs[i]
		req[i] = float64(j.TimeLimit) / 3600
		run[i] = float64(j.RuntimeSeconds()) / 3600
		waste[i] = float64(j.WastedSeconds()) / 3600
		perUser[j.User]++
	}
	users := make([]float64, 0, len(perUser))
	for _, c := range perUser {
		users = append(users, c)
	}
	return TableOneStats{
		RequestedHours: Summarize(req),
		RuntimeHours:   Summarize(run),
		WastedHours:    Summarize(waste),
		JobsPerUser:    Summarize(users),
	}
}

// MeanWalltimeUsage returns the mean of runtime/timelimit across jobs — the
// paper reports ≈15% on Anvil.
func (t *Trace) MeanWalltimeUsage() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	var s float64
	for i := range t.Jobs {
		j := &t.Jobs[i]
		s += float64(j.RuntimeSeconds()) / float64(j.TimeLimit)
	}
	return s / float64(len(t.Jobs))
}

var csvHeader = []string{
	"id", "user", "partition", "state", "submit", "eligible", "start", "end",
	"req_cpus", "req_mem_gb", "req_nodes", "req_gpus", "time_limit",
	"priority", "qos", "interactive", "depends_on",
}

// WriteCSV serializes the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for i := range t.Jobs {
		j := &t.Jobs[i]
		rec[0] = strconv.Itoa(j.ID)
		rec[1] = strconv.Itoa(j.User)
		rec[2] = j.Partition
		rec[3] = string(j.State)
		rec[4] = strconv.FormatInt(j.Submit, 10)
		rec[5] = strconv.FormatInt(j.Eligible, 10)
		rec[6] = strconv.FormatInt(j.Start, 10)
		rec[7] = strconv.FormatInt(j.End, 10)
		rec[8] = strconv.Itoa(j.ReqCPUs)
		rec[9] = strconv.FormatFloat(j.ReqMemGB, 'g', -1, 64)
		rec[10] = strconv.Itoa(j.ReqNodes)
		rec[11] = strconv.Itoa(j.ReqGPUs)
		rec[12] = strconv.FormatInt(j.TimeLimit, 10)
		rec[13] = strconv.FormatInt(j.Priority, 10)
		rec[14] = strconv.Itoa(j.QOS)
		rec[15] = strconv.FormatBool(j.Interactive)
		rec[16] = strconv.Itoa(j.DependsOn)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: CSV header has %d fields, want %d", len(header), len(csvHeader))
	}
	t := &Trace{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		line++
		j, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	return t, nil
}

// parseCSVRecord decodes one WriteCSV-format record into a Job.
func parseCSVRecord(rec []string) (Job, error) {
	if len(rec) != len(csvHeader) {
		return Job{}, fmt.Errorf("record has %d fields, want %d", len(rec), len(csvHeader))
	}
	var j Job
	var errs [16]error
	j.ID, errs[0] = strconv.Atoi(rec[0])
	j.User, errs[1] = strconv.Atoi(rec[1])
	j.Partition = rec[2]
	j.State = JobState(rec[3])
	j.Submit, errs[2] = strconv.ParseInt(rec[4], 10, 64)
	j.Eligible, errs[3] = strconv.ParseInt(rec[5], 10, 64)
	j.Start, errs[4] = strconv.ParseInt(rec[6], 10, 64)
	j.End, errs[5] = strconv.ParseInt(rec[7], 10, 64)
	j.ReqCPUs, errs[6] = strconv.Atoi(rec[8])
	j.ReqMemGB, errs[7] = strconv.ParseFloat(rec[9], 64)
	j.ReqNodes, errs[8] = strconv.Atoi(rec[10])
	j.ReqGPUs, errs[9] = strconv.Atoi(rec[11])
	j.TimeLimit, errs[10] = strconv.ParseInt(rec[12], 10, 64)
	j.Priority, errs[11] = strconv.ParseInt(rec[13], 10, 64)
	j.QOS, errs[12] = strconv.Atoi(rec[14])
	j.Interactive, errs[13] = strconv.ParseBool(rec[15])
	j.DependsOn, errs[14] = strconv.Atoi(rec[16])
	for _, e := range errs {
		if e != nil {
			return Job{}, e
		}
	}
	return j, nil
}

// WriteJSONL writes one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range t.Jobs {
		if err := enc.Encode(&t.Jobs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	t := &Trace{}
	for {
		var j Job
		if err := dec.Decode(&j); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: JSONL record %d: %w", len(t.Jobs)+1, err)
		}
		t.Jobs = append(t.Jobs, j)
	}
	return t, nil
}
