package nn

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// wsTestNet builds a network exercising every inference-path layer kind:
// dense, activation, dropout (identity at inference), and batch-norm.
func wsTestNet(t testing.TB) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	n := NewNetwork(rng,
		DenseSpec(33, 64), BatchNormSpec(64), ActivationSpec(ELU), DropoutSpec(0.2),
		DenseSpec(64, 16), ActivationSpec(ReLU),
		DenseSpec(16, 1), ActivationSpec(Sigmoid),
	)
	// Make batch-norm running stats non-trivial so the path is exercised.
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			for j := range bn.RunMean {
				bn.RunMean[j] = rng.NormFloat64()
				bn.RunVar[j] = 1 + rng.Float64()
			}
		}
	}
	return n
}

// TestPredictIntoMatchesForward: the workspace path must be bit-identical
// to the allocating Forward(in, false) path for every batch shape.
func TestPredictIntoMatchesForward(t *testing.T) {
	n := wsTestNet(t)
	rng := rand.New(rand.NewSource(12))
	ws := n.NewWorkspace()
	for _, rows := range []int{1, 3, 64, 7} { // shrinking batch reuses big buffers
		in := tensor.New(rows, 33)
		for i := range in.Data {
			in.Data[i] = rng.NormFloat64()
		}
		want := n.Forward(in, false)
		got := n.PredictInto(ws, in)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("rows=%d: shape %dx%d want %dx%d", rows, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("rows=%d: PredictInto[%d]=%v differs from Forward=%v", rows, i, got.Data[i], want.Data[i])
			}
		}
		// Predict (pooled workspace + clone) agrees too.
		if out := n.Predict(in); !out.Equal(want, 0) {
			t.Fatalf("rows=%d: Predict differs from Forward", rows)
		}
	}
}

// TestPredict1MatchesForward: the zero-alloc scalar path returns the same
// first unit as the matrix path.
func TestPredict1MatchesForward(t *testing.T) {
	n := wsTestNet(t)
	rng := rand.New(rand.NewSource(13))
	row := make([]float64, 33)
	for i := range row {
		row[i] = rng.Float64() * 5
	}
	want := n.Forward(tensor.FromSlice(1, 33, row), false).Data[0]
	if got := n.Predict1(row); got != want {
		t.Fatalf("Predict1 = %v, Forward = %v", got, want)
	}
}

// TestPredictSteadyStateAllocs is the hot-path guard: on a warm workspace
// pool, Predict1 must not allocate and Predict must stay at the constant
// output-clone cost — no per-row heap traffic.
func TestPredictSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	n := wsTestNet(t)
	row := make([]float64, 33)
	for i := range row {
		row[i] = float64(i)
	}
	n.Predict1(row) // warm the pool
	if allocs := testing.AllocsPerRun(200, func() { n.Predict1(row) }); allocs > 0 {
		t.Fatalf("Predict1 allocates %.1f per run on a warm pool, want 0", allocs)
	}

	in := tensor.New(8, 33)
	n.Predict(in)
	// Predict clones the output (matrix header + data = 2 allocations);
	// anything above a small constant means the workspace is not reused.
	if allocs := testing.AllocsPerRun(200, func() { n.Predict(in) }); allocs > 4 {
		t.Fatalf("Predict allocates %.1f per run on a warm pool, want <= 4", allocs)
	}

	ws := n.AcquireWorkspace()
	defer n.ReleaseWorkspace(ws)
	n.PredictInto(ws, in)
	if allocs := testing.AllocsPerRun(200, func() { n.PredictInto(ws, in) }); allocs > 0 {
		t.Fatalf("PredictInto allocates %.1f per run on a warm workspace, want 0", allocs)
	}
}

// TestPredictConcurrent drives pooled inference from many goroutines; run
// with -race this is the workspace-sharing safety check.
func TestPredictConcurrent(t *testing.T) {
	n := wsTestNet(t)
	rng := rand.New(rand.NewSource(14))
	rows := make([][]float64, 16)
	want := make([]float64, len(rows))
	for i := range rows {
		rows[i] = make([]float64, 33)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
		want[i] = n.Predict1(rows[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := iter % len(rows)
				if got := n.Predict1(rows[i]); got != want[i] {
					t.Errorf("concurrent Predict1 row %d: %v != %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
