package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix not zeroed")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dims")
		}
	}()
	New(-1, 2)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := MatMul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	a.RandN(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !MatMul(id, a).Equal(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulParallelMatchesSerial checks the goroutine-parallel path against
// the direct serial kernel on a product large enough to trigger parallelism.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(70, 80)
	a.RandN(rng, 1)
	b := New(80, 90)
	b.RandN(rng, 1)
	got := MatMul(a, b)
	want := New(70, 90)
	matMulRange(a, b, want, 0, a.Rows)
	if !got.Equal(want, 1e-9) {
		t.Fatal("parallel MatMul differs from serial")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 6)
	a.RandN(rng, 1)
	b := New(5, 6)
	b.RandN(rng, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.T())
	if !got.Equal(want, 1e-9) {
		t.Fatal("MatMulTransB != A*B^T")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Fatalf("T values wrong: %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rng.Intn(8) + 1
		c := rng.Intn(8) + 1
		m := New(r, c)
		m.RandN(rng, 1)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)^T == B^T A^T.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 1
		k := rng.Intn(6) + 1
		n := rng.Intn(6) + 1
		a := New(m, k)
		a.RandN(rng, 1)
		b := New(k, n)
		b.RandN(rng, 1)
		return MatMul(a, b).T().Equal(MatMul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if !Add(a, b).Equal(FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatal("Add wrong")
	}
	if !Sub(b, a).Equal(FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatal("Sub wrong")
	}
	if !Mul(a, b).Equal(FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatal("Mul wrong")
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	AddInPlace(a, FromRows([][]float64{{2, 3}}))
	if a.At(0, 0) != 3 || a.At(0, 1) != 4 {
		t.Fatalf("AddInPlace wrong: %v", a)
	}
}

func TestScaleApply(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	a.Scale(2)
	if a.At(0, 1) != -4 {
		t.Fatal("Scale wrong")
	}
	abs := a.Apply(math.Abs)
	if abs.At(0, 1) != 4 || a.At(0, 1) != -4 {
		t.Fatal("Apply must not mutate")
	}
	a.ApplyInPlace(math.Abs)
	if a.At(0, 1) != 4 {
		t.Fatal("ApplyInPlace wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector([]float64{10, 20})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !m.Equal(want, 0) {
		t.Fatalf("AddRowVector = %v", m)
	}
}

func TestColStats(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}})
	sums := m.ColSums()
	if sums[0] != 4 || sums[1] != 30 {
		t.Fatalf("ColSums = %v", sums)
	}
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColMeans = %v", means)
	}
	vars := m.ColVariances(means)
	if vars[0] != 1 || vars[1] != 25 {
		t.Fatalf("ColVariances = %v", vars)
	}
}

func TestSumSelectRowsClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Sum() != 21 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	sel := m.SelectRows([]int{2, 0})
	if sel.At(0, 0) != 5 || sel.At(1, 1) != 2 {
		t.Fatalf("SelectRows = %v", sel)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases data")
	}
}

func TestZeroFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(7)
	if m.Sum() != 28 {
		t.Fatal("Fill wrong")
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(50, 50)
	m.XavierInit(rng, 50, 50)
	limit := math.Sqrt(6.0 / 100.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	m.HeInit(rng, 50)
	var sq float64
	for _, v := range m.Data {
		sq += v * v
	}
	std := math.Sqrt(sq / float64(len(m.Data)))
	want := math.Sqrt(2.0 / 50.0)
	if std < want*0.8 || std > want*1.2 {
		t.Fatalf("He std %v, want ≈ %v", std, want)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := New(128, 128)
	x.RandN(rng, 1)
	y := New(128, 128)
	y.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulSerial128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := New(128, 128)
	x.RandN(rng, 1)
	y := New(128, 128)
	y.RandN(rng, 1)
	out := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		matMulRange(x, y, out, 0, x.Rows)
	}
}
