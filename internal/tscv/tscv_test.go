package tscv

import (
	"testing"
	"testing/quick"
)

func TestSplitPaperShape(t *testing.T) {
	// Paper: 5 folds, test size one sixth of the dataset.
	n := 60000
	folds, err := Split(n, 5, 1.0/6.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	testSize := n / 6
	for i, f := range folds {
		if len(f.Test) != testSize {
			t.Fatalf("fold %d test size %d, want %d", i, len(f.Test), testSize)
		}
		// Expanding window: training always starts at 0.
		if f.Train[0] != 0 {
			t.Fatalf("fold %d train starts at %d", i, f.Train[0])
		}
		// Test immediately follows training.
		if f.Test[0] != f.Train[len(f.Train)-1]+1 {
			t.Fatalf("fold %d test does not follow train", i)
		}
	}
	// Training windows strictly grow.
	for i := 1; i < len(folds); i++ {
		if len(folds[i].Train) <= len(folds[i-1].Train) {
			t.Fatal("training windows must expand")
		}
	}
	// Last fold's test ends at the final sample.
	last := folds[4].Test
	if last[len(last)-1] != n-1 {
		t.Fatal("last fold must end at the last sample")
	}
}

func TestSplitNoFutureInTraining(t *testing.T) {
	folds, err := Split(1000, 5, 1.0/6.0)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		maxTrain := -1
		for _, i := range f.Train {
			if i > maxTrain {
				maxTrain = i
			}
		}
		for _, i := range f.Test {
			if i <= maxTrain {
				t.Fatalf("fold %d: test index %d not after all training (max %d)", fi, i, maxTrain)
			}
		}
	}
}

func TestSplitSmallN(t *testing.T) {
	folds, err := Split(20, 5, 1.0/6.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range folds {
		if len(f.Train) == 0 || len(f.Test) == 0 {
			t.Fatalf("degenerate fold %+v", f)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	cases := []struct {
		n, k int
		frac float64
	}{
		{0, 5, 0.1}, {10, 0, 0.1}, {10, 2, 0}, {10, 2, 1}, {3, 5, 0.5},
	}
	for i, c := range cases {
		if _, err := Split(c.n, c.k, c.frac); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHoldoutRecent(t *testing.T) {
	f, err := HoldoutRecent(100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Train) != 80 || len(f.Test) != 20 {
		t.Fatalf("split %d/%d", len(f.Train), len(f.Test))
	}
	if f.Test[0] != 80 || f.Test[19] != 99 {
		t.Fatal("test must be the most recent block")
	}
	if _, err := HoldoutRecent(1, 0.5); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := HoldoutRecent(10, 0); err == nil {
		t.Fatal("fraction 0 accepted")
	}
}

func TestShuffledSplit(t *testing.T) {
	f, err := ShuffledSplit(1000, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Train) != 750 || len(f.Test) != 250 {
		t.Fatalf("split %d/%d", len(f.Train), len(f.Test))
	}
	// All indices used exactly once.
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, f.Train...), f.Test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	if len(seen) != 1000 {
		t.Fatal("indices missing")
	}
	// Shuffled: the test set must not be the contiguous tail.
	contiguous := true
	for k, i := range f.Test {
		if i != 750+k {
			contiguous = false
			break
		}
	}
	if contiguous {
		t.Fatal("shuffled split degenerated to a time split")
	}
	// Deterministic under the same seed.
	g, _ := ShuffledSplit(1000, 0.25, 7)
	for i := range f.Test {
		if f.Test[i] != g.Test[i] {
			t.Fatal("shuffled split not deterministic")
		}
	}
}

// Property: folds partition cleanly — no test index appears in the fold's
// training set, and sizes are sane for any valid (n, k).
func TestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 50 + int(seed%1000+1000)%1000
		folds, err := Split(n, 5, 1.0/6.0)
		if err != nil {
			return false
		}
		for _, fd := range folds {
			if len(fd.Train)+len(fd.Test) > n {
				return false
			}
			inTrain := map[int]bool{}
			for _, i := range fd.Train {
				if i < 0 || i >= n {
					return false
				}
				inTrain[i] = true
			}
			for _, i := range fd.Test {
				if i < 0 || i >= n || inTrain[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
