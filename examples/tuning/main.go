// Hyperparameter tuning: the paper tunes the regressor's learning rate,
// epochs, layer count/sizes, dropout and activation with Optuna (§III).
// This example runs the equivalent random search with successive-halving
// pruning over the same space and compares the tuned model against the
// paper-default configuration on a common holdout.
package main

import (
	"fmt"
	"log"

	trout "repro"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	p := trout.DefaultPipeline(8000, 55)
	p.Model.Classifier.Epochs = 6
	p.Model.Seed = 55
	fmt.Println("building dataset (8k jobs)...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("searching 12 regressor configurations with successive halving...")
	res, err := trout.TuneRegressor(ds, p.Model, trout.TuneConfig{
		Trials: 12, Seed: 55, MinEpochs: 3, MaxEpochs: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search done: %d trials, %d pruned early\n", res.Trials, res.Pruned)
	fmt.Printf("best holdout MAPE during search: %.2f%%\n", res.BestMAPE)
	fmt.Printf("winner: %s\n", trout.DescribeConfig(res.Best))

	// Final comparison: default vs tuned on the same holdout.
	fmt.Println("\nretraining default and tuned configs on the same split...")
	defaultCfg := p.Model
	defaultCfg.Regressor.Epochs = res.Best.Regressor.Epochs // same budget
	mDefault, fold, err := trout.TrainHoldout(ds, defaultCfg, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	mTuned, _, err := trout.TrainHoldout(ds, res.Best, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	evDefault := core.EvaluateRegression(mDefault, ds, fold.Test)
	evTuned := core.EvaluateRegression(mTuned, ds, fold.Test)
	fmt.Printf("default config: MAPE %8.2f%%  Pearson %.4f  (n=%d)\n", evDefault.MAPE, evDefault.Pearson, evDefault.N)
	fmt.Printf("tuned config:   MAPE %8.2f%%  Pearson %.4f  (n=%d)\n", evTuned.MAPE, evTuned.Pearson, evTuned.N)
}
