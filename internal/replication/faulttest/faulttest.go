// Package faulttest is the fault-injection harness for the replication
// subsystem: it crash-kills and restarts a leader mid-stream (kill -9
// semantics — no Close, no final sync), tears WAL records mid-write, and
// injects network faults (errors, slow reads, mid-body failures) into the
// follower's transport, then asserts that followers converge to the
// leader's bit-identical engine state and that no acknowledged event is
// lost.
package faulttest

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livestate"
	"repro/internal/replication"
)

// FlakyTransport wraps an http.RoundTripper with deterministic fault
// injection: every FailEveryN-th request errors before reaching the wire,
// every TimeoutEveryN-th hangs for HangFor then errors (a stuck leader),
// every SlowEveryN-th is delayed by SlowBy (a slow network), and every
// BodyFailEveryN-th returns a body that errors mid-read (a connection cut
// mid-stream). Counters are per-transport, so interleaved fault kinds
// exercise different requests.
type FlakyTransport struct {
	Base http.RoundTripper

	FailEveryN     int
	TimeoutEveryN  int
	HangFor        time.Duration
	SlowEveryN     int
	SlowBy         time.Duration
	BodyFailEveryN int
	// BodyFailAfter is how many body bytes flow before the mid-read error.
	BodyFailAfter int64

	n        atomic.Int64
	injected atomic.Int64
}

// Injected counts faults actually delivered — tests assert it is non-zero
// so a mistuned schedule cannot silently test the happy path.
func (ft *FlakyTransport) Injected() int64 { return ft.injected.Load() }

var errInjected = errors.New("faulttest: injected network error")

func (ft *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := ft.n.Add(1)
	base := ft.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if ft.FailEveryN > 0 && n%int64(ft.FailEveryN) == 0 {
		ft.injected.Add(1)
		return nil, errInjected
	}
	if ft.TimeoutEveryN > 0 && n%int64(ft.TimeoutEveryN) == 0 {
		ft.injected.Add(1)
		hang := ft.HangFor
		if hang == 0 {
			hang = 50 * time.Millisecond
		}
		select {
		case <-req.Context().Done():
		case <-time.After(hang):
		}
		return nil, fmt.Errorf("faulttest: injected timeout: %w", errInjected)
	}
	if ft.SlowEveryN > 0 && n%int64(ft.SlowEveryN) == 0 {
		ft.injected.Add(1)
		slow := ft.SlowBy
		if slow == 0 {
			slow = 20 * time.Millisecond
		}
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(slow):
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if ft.BodyFailEveryN > 0 && n%int64(ft.BodyFailEveryN) == 0 {
		ft.injected.Add(1)
		after := ft.BodyFailAfter
		if after == 0 {
			after = 64
		}
		resp.Body = &failingBody{rc: resp.Body, remaining: after}
	}
	return resp, nil
}

// failingBody errors after passing through a fixed number of bytes.
type failingBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *failingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faulttest: injected mid-body read error: %w", errInjected)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *failingBody) Close() error { return b.rc.Close() }

// Harness runs a crashable leader behind a stable URL. Kill abandons the
// store without Close or sync — exactly what kill -9 leaves behind — and
// makes the URL drop connections abruptly; Restart recovers a fresh store
// from the same directory and serves again.
type Harness struct {
	t   *testing.T
	dir string
	opt livestate.StoreOptions
	srv *httptest.Server

	down atomic.Bool

	mu     sync.Mutex
	store  *livestate.Store
	leader *replication.Leader
	mux    *http.ServeMux
}

// NewHarness opens a leader store with opt (Dir forced to a fresh temp dir
// unless set) and serves its replication endpoints. The server is cleaned
// up with the test.
func NewHarness(t *testing.T, opt livestate.StoreOptions) *Harness {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	h := &Harness{t: t, dir: opt.Dir, opt: opt}
	h.openStore()
	h.srv = httptest.NewServer(http.HandlerFunc(h.serve))
	t.Cleanup(h.srv.Close)
	return h
}

func (h *Harness) openStore() {
	h.t.Helper()
	s, err := livestate.OpenStore(h.opt)
	if err != nil {
		h.t.Fatalf("faulttest: open leader store: %v", err)
	}
	l := replication.NewLeader(s, replication.LeaderOptions{})
	mux := http.NewServeMux()
	l.Register(mux)
	h.mu.Lock()
	h.store, h.leader, h.mux = s, l, mux
	h.mu.Unlock()
}

func (h *Harness) serve(w http.ResponseWriter, r *http.Request) {
	if h.down.Load() {
		// kill -9 from the client's view: the connection dies, no HTTP.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	h.mu.Lock()
	mux := h.mux
	h.mu.Unlock()
	mux.ServeHTTP(w, r)
}

// URL is the leader's stable base URL — it survives Kill/Restart, like a
// service VIP surviving a failed process.
func (h *Harness) URL() string { return h.srv.URL }

// Store returns the current (live) leader store.
func (h *Harness) Store() *livestate.Store {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.store
}

// Leader returns the current serving wrapper (for its Stats).
func (h *Harness) Leader() *replication.Leader {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.leader
}

// Kill simulates kill -9: the store is abandoned with no Close and no
// final sync (buffered, un-fsynced records are torn away), and every
// connection to the URL drops abruptly. It returns the durable LSN at
// death — the no-acked-loss bar Restart must clear.
func (h *Harness) Kill() uint64 {
	h.mu.Lock()
	durable := h.store.DurableLSN()
	h.store = nil // abandoned, never Closed — its unsynced tail is lost
	h.mu.Unlock()
	h.down.Store(true)
	h.srv.CloseClientConnections()
	return durable
}

// TearActiveWAL truncates the active WAL file by n bytes, simulating a
// record torn by the crash. Call between Kill and Restart.
func (h *Harness) TearActiveWAL(n int64) {
	h.t.Helper()
	path := filepath.Join(h.dir, "events.wal")
	fi, err := os.Stat(path)
	if err != nil {
		h.t.Fatalf("faulttest: stat active wal: %v", err)
	}
	if fi.Size() < n {
		h.t.Fatalf("faulttest: active wal only %d bytes, cannot tear %d", fi.Size(), n)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		h.t.Fatalf("faulttest: tear active wal: %v", err)
	}
}

// Restart recovers a store from the same directory (replaying segments and
// truncating any torn tail) and resumes serving on the same URL.
func (h *Harness) Restart() {
	h.t.Helper()
	h.openStore()
	h.down.Store(false)
}
