package core

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/slurmsim"
	"repro/internal/tscv"
	"repro/internal/workload"
)

// buildDataset runs the full substrate chain (workload → simulator →
// features) once and caches the result for all tests in this package.
var (
	dsOnce sync.Once
	dsMemo *features.Dataset
	dsErr  error
)

func testDataset(t *testing.T) *features.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cluster := slurmsim.AnvilLike(1)
		specs, err := workload.Generate(workload.DefaultConfig(8000, 11), &cluster)
		if err != nil {
			dsErr = err
			return
		}
		tr, _, err := slurmsim.Run(slurmsim.DefaultConfig(1), specs)
		if err != nil {
			dsErr = err
			return
		}
		dsMemo, dsErr = features.Build(tr, &cluster, features.Options{Seed: 12, RuntimeTrees: 20})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsMemo
}

// fastConfig shrinks training for test speed.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Classifier.Epochs = 8
	cfg.Classifier.Hidden = []int{32, 16}
	cfg.Regressor.Epochs = 15
	cfg.Regressor.Hidden = []int{64, 32, 16}
	cfg.Seed = 13
	cfg.Workers = 2
	return cfg
}

func trainedModel(t *testing.T) (*Model, *features.Dataset, tscv.Fold) {
	t.Helper()
	ds := testDataset(t)
	fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(ds, fold.Train, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, ds, fold
}

var (
	modelOnce sync.Once
	modelMemo *Model
	foldMemo  tscv.Fold
)

func sharedModel(t *testing.T) (*Model, *features.Dataset, tscv.Fold) {
	t.Helper()
	ds := testDataset(t)
	modelOnce.Do(func() {
		fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
		if err != nil {
			dsErr = err
			return
		}
		foldMemo = fold
		modelMemo, dsErr = Train(ds, fold.Train, fastConfig())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return modelMemo, ds, foldMemo
}

func TestTrainAndClassifierBeatsChance(t *testing.T) {
	m, ds, fold := sharedModel(t)
	ev := EvaluateClassifier(m, ds, fold.Test)
	// The classifier must beat the majority-class rate on *balanced*
	// accuracy (majority guessing scores 0.5 there).
	if ba := ev.BalancedAccuracy(); ba < 0.6 {
		t.Fatalf("balanced accuracy %.3f, want > 0.6", ba)
	}
	if ev.Accuracy() < 0.6 {
		t.Fatalf("accuracy %.3f", ev.Accuracy())
	}
}

func TestRegressorCorrelates(t *testing.T) {
	m, ds, fold := sharedModel(t)
	ev := EvaluateRegression(m, ds, fold.Test)
	if ev.N < 20 {
		t.Fatalf("only %d long test jobs", ev.N)
	}
	// At unit-test scale (8 k jobs, ~100 long test jobs) the correlation
	// is noisy; the real quality bar is the 60 k-job run recorded in
	// EXPERIMENTS.md (fold-5 r ≈ 0.72). Here we assert sanity: finite
	// MAPE in a plausible band and a non-degenerate prediction spread.
	if math.IsNaN(ev.MAPE) || ev.MAPE <= 0 || ev.MAPE > 1000 {
		t.Fatalf("MAPE = %v", ev.MAPE)
	}
	if math.IsNaN(ev.Pearson) {
		t.Fatal("Pearson is NaN — constant predictions")
	}
}

func TestHierarchicalEval(t *testing.T) {
	m, ds, fold := sharedModel(t)
	ev := EvaluateHierarchical(m, ds, fold.Test)
	if ev.N != len(fold.Test) {
		t.Fatalf("N = %d", ev.N)
	}
	if ev.MisroutedLong >= ev.N {
		t.Fatal("every long job misrouted")
	}
}

func TestPredictContract(t *testing.T) {
	m, ds, fold := sharedModel(t)
	for _, i := range fold.Test[:200] {
		p := m.Predict(ds.X[i])
		if p.Prob < 0 || p.Prob > 1 {
			t.Fatalf("prob %v out of range", p.Prob)
		}
		if p.Long != (p.Prob >= 0.5) {
			t.Fatal("Long inconsistent with Prob")
		}
		if p.Long && p.Minutes < m.Cfg.CutoffMinutes {
			t.Fatalf("long prediction %v below cutoff", p.Minutes)
		}
		if !p.Long && p.Minutes != 0 {
			t.Fatal("quick-start prediction should not carry minutes")
		}
	}
}

func TestPredictionMessage(t *testing.T) {
	long := Prediction{Long: true, Minutes: 42.4}
	if got := long.Message(10); got != "Predicted to start in 42 minutes" {
		t.Fatalf("message = %q", got)
	}
	short := Prediction{Long: false}
	if got := short.Message(10); !strings.Contains(got, "less than 10 minutes") {
		t.Fatalf("message = %q", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, ds, fold := sharedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range fold.Test[:50] {
		a := m.Predict(ds.X[i])
		b := loaded.Predict(ds.X[i])
		if a.Long != b.Long || math.Abs(a.Prob-b.Prob) > 1e-12 || math.Abs(a.Minutes-b.Minutes) > 1e-9 {
			t.Fatal("loaded model predicts differently")
		}
	}
	if loaded.NumInputs != m.NumInputs {
		t.Fatal("NumInputs not preserved")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, ds, fold := sharedModel(t)
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := fold.Test[0]
	if loaded.Predict(ds.X[i]) != m.Predict(ds.X[i]) {
		t.Fatal("file round trip mismatch")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadFile("/nonexistent/model.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	ds := testDataset(t)
	cfg := fastConfig()
	if _, err := Train(ds, []int{0, 1, 2}, cfg); err == nil {
		t.Fatal("tiny training set accepted")
	}
	bad := cfg
	bad.CutoffMinutes = 0
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	if _, err := Train(ds, idx, bad); err == nil {
		t.Fatal("zero cutoff accepted")
	}
	badScaler := cfg
	badScaler.Scaler = "bogus"
	if _, err := Train(ds, idx, badScaler); err == nil {
		t.Fatal("bogus scaler accepted")
	}
}

func TestTrainWithoutSMOTE(t *testing.T) {
	ds := testDataset(t)
	fold, _ := tscv.HoldoutRecent(ds.Len(), 0.2)
	cfg := fastConfig()
	cfg.UseSMOTE = false
	cfg.Classifier.Epochs = 4
	cfg.Regressor.Epochs = 5
	m, err := Train(ds, fold.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Classifier == nil {
		t.Fatal("no classifier")
	}
}

func TestTrainWithBatchNormAndReLU(t *testing.T) {
	// The A4 ablation path must at least train and predict finitely.
	ds := testDataset(t)
	fold, _ := tscv.HoldoutRecent(ds.Len(), 0.2)
	cfg := fastConfig()
	cfg.Regressor.BatchNorm = true
	cfg.Regressor.Activation = nn.ReLU
	cfg.Regressor.Epochs = 5
	cfg.Classifier.Epochs = 3
	m, err := Train(ds, fold.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := m.RegressMinutes(ds.X[fold.Test[0]])
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		t.Fatalf("BatchNorm regressor predicts %v", v)
	}
}

func TestDeterministicTraining(t *testing.T) {
	ds := testDataset(t)
	fold, _ := tscv.HoldoutRecent(ds.Len(), 0.2)
	cfg := fastConfig()
	cfg.Classifier.Epochs = 3
	cfg.Regressor.Epochs = 3
	cfg.Workers = 2
	a, err := Train(ds, fold.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(ds, fold.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range fold.Test[:20] {
		if a.Predict(ds.X[i]) != b.Predict(ds.X[i]) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestQuantileModel(t *testing.T) {
	ds := testDataset(t)
	fold, err := tscv.HoldoutRecent(ds.Len(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Regressor.Epochs = 10
	qm, err := TrainQuantiles(ds, fold.Train, cfg, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Intervals are sorted and non-negative.
	for _, i := range fold.Test[:100] {
		iv := qm.Interval(ds.X[i])
		if len(iv) != 3 {
			t.Fatalf("interval size %d", len(iv))
		}
		if iv[0] < 0 || iv[0] > iv[1] || iv[1] > iv[2] {
			t.Fatalf("unsorted interval %v", iv)
		}
	}
	cov, width, n := qm.Coverage(ds, fold.Test)
	if n == 0 {
		t.Fatal("no long jobs covered")
	}
	// An 80% nominal band, loosely checked (small-sample + shift noise).
	if cov < 0.3 || cov > 1.0 {
		t.Fatalf("coverage %v implausible", cov)
	}
	if width <= 0 {
		t.Fatalf("mean width %v", width)
	}
}

func TestTrainQuantilesErrors(t *testing.T) {
	ds := testDataset(t)
	cfg := fastConfig()
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	if _, err := TrainQuantiles(ds, idx, cfg, nil); err == nil {
		t.Fatal("empty taus accepted")
	}
	if _, err := TrainQuantiles(ds, idx, cfg, []float64{0.5, 1.5}); err == nil {
		t.Fatal("tau out of range accepted")
	}
	if _, err := TrainQuantiles(ds, idx[:5], cfg, []float64{0.5}); err == nil {
		t.Fatal("tiny training set accepted")
	}
}
