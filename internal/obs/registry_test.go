package obs

import (
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(3)
	cv := r.CounterVec("test_requests_total", "Requests.", "path", "code")
	cv.Inc("/b", "200")
	cv.Inc("/a", "200")
	cv.Inc("/a", "500")
	g := r.Gauge("test_temp", "Temperature.")
	g.Set(1.5)
	h := r.Histogram("test_size", "Sizes.", []float64{1, 2, 4})
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 3\n",
		`test_requests_total{path="/a",code="200"} 1`,
		`test_requests_total{path="/a",code="500"} 1`,
		`test_requests_total{path="/b",code="200"} 1`,
		"test_temp 1.5",
		`test_size_bucket{le="1"} 0`,
		`test_size_bucket{le="2"} 0`,
		`test_size_bucket{le="4"} 1`,
		`test_size_bucket{le="+Inf"} 2`,
		"test_size_sum 103",
		"test_size_count 2",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q\n%s", w, out)
		}
	}
	// Series of a vec must sort by label values.
	if strings.Index(out, `{path="/a",code="200"}`) > strings.Index(out, `{path="/b",code="200"}`) {
		t.Error("series not sorted by label values")
	}
}

func TestRegistryDeterministic(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_x_total", "X.", "k")
	for _, k := range []string{"zebra", "apple", "mango"} {
		cv.Inc(k)
	}
	r.GaugeFunc("test_y", "Y.", func() float64 { return 7 })

	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two scrapes differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_esc_total", "Line one\nwith \\backslash.", "v")
	cv.Inc(`a"b\c` + "\nd")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP test_esc_total Line one\nwith \\backslash.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("test_dup_total", "Second.")
}

func TestCounterVecSnapshot(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_snap_total", "Snap.", "tier")
	cv.Inc("nn")
	cv.Inc("nn")
	cv.Inc("baseline")
	snap := cv.Snapshot()
	if snap["nn"] != 2 || snap["baseline"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCollectorFamilies(t *testing.T) {
	r := NewRegistry()
	r.CounterVecFunc("test_events_total", "Events.", []string{"type"}, func(emit Emit) {
		emit(5, "start")
		emit(2, "end")
	})
	r.GaugeFunc("test_now", "Now.", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`test_events_total{type="end"} 2`,
		`test_events_total{type="start"} 5`,
		"test_now 42",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
}

func TestHistogramBucketSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "H.", []float64{1, 2, 4})
	// A value exactly on a bound belongs to that bound's bucket (le is
	// inclusive).
	h.Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`test_h_bucket{le="1"} 0`,
		`test_h_bucket{le="2"} 1`,
		`test_h_bucket{le="4"} 1`,
		`test_h_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
}
