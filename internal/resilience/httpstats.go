package resilience

import (
	"net/http"
	"sync"
	"time"
)

// DefaultLatencyBuckets are the histogram upper bounds (seconds) used for
// request latency, spanning sub-millisecond cache hits to the 10 s request
// deadline.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// HTTPStats accumulates per-route request counters and a latency histogram
// for the /metrics endpoint. Safe for concurrent use.
type HTTPStats struct {
	mu       sync.Mutex
	requests map[routeKey]uint64
	buckets  []float64
	counts   []uint64 // one per bucket, plus overflow at the end
	sum      float64
	n        uint64
}

type routeKey struct {
	Path string
	Code int
}

// NewHTTPStats returns empty stats with the default latency buckets.
func NewHTTPStats() *HTTPStats {
	return &HTTPStats{
		requests: map[routeKey]uint64{},
		buckets:  DefaultLatencyBuckets,
		counts:   make([]uint64, len(DefaultLatencyBuckets)+1),
	}
}

// Observe records one completed request.
func (h *HTTPStats) Observe(path string, code int, seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.requests[routeKey{Path: path, Code: code}]++
	h.sum += seconds
	h.n++
	for i, ub := range h.buckets {
		if seconds <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.buckets)]++
}

// HTTPStatsSnapshot is a consistent copy for rendering.
type HTTPStatsSnapshot struct {
	// Requests counts completed requests by route and status code.
	Requests map[string]map[int]uint64
	// Buckets are the histogram upper bounds; CumCounts[i] is the number
	// of requests at or under Buckets[i] (Prometheus "le" semantics).
	Buckets   []float64
	CumCounts []uint64
	Sum       float64
	Count     uint64
}

// Snapshot copies the counters, cumulating the histogram.
func (h *HTTPStats) Snapshot() HTTPStatsSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HTTPStatsSnapshot{
		Requests:  map[string]map[int]uint64{},
		Buckets:   h.buckets,
		CumCounts: make([]uint64, len(h.buckets)),
		Sum:       h.sum,
		Count:     h.n,
	}
	for k, v := range h.requests {
		m := s.Requests[k.Path]
		if m == nil {
			m = map[int]uint64{}
			s.Requests[k.Path] = m
		}
		m[k.Code] += v
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.counts[i]
		s.CumCounts[i] = cum
	}
	return s
}

// statusWriter captures the response status for the metrics middleware. It
// exposes Unwrap so http.ResponseController (used by the Timeout
// middleware) still reaches the underlying writer's extensions.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ObserveHTTP wraps a handler so every request is recorded in stats.
// pathFor maps a request to its metric label (clamping unknown paths keeps
// label cardinality bounded); nil uses the raw URL path.
func ObserveHTTP(next http.Handler, stats *HTTPStats, pathFor func(*http.Request) string) http.Handler {
	if stats == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if pathFor != nil {
			path = pathFor(r)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		stats.Observe(path, code, time.Since(start).Seconds())
	})
}
