package scaling

import "fmt"

// State is the serializable form of a fitted scaler, so trained model
// bundles can be saved and reloaded. A and B are per-column parameter
// vectors whose meaning depends on the kind (min/span, mean/std, λ/shift);
// stateless scalers leave them nil.
type State struct {
	Kind Kind
	A, B []float64
}

// StateOf extracts a scaler's fitted state.
func StateOf(s Scaler) State {
	switch sc := s.(type) {
	case *noneScaler:
		return State{Kind: None}
	case *logScaler:
		return State{Kind: Log1p}
	case *minMaxScaler:
		return State{Kind: MinMax, A: sc.min, B: sc.span}
	case *standardScaler:
		return State{Kind: Standard, A: sc.mean, B: sc.std}
	case *boxCoxScaler:
		return State{Kind: BoxCox, A: sc.lambda, B: sc.shift}
	default:
		panic(fmt.Sprintf("scaling: unknown scaler type %T", s))
	}
}

// FromState reconstructs a fitted scaler.
func FromState(st State) (Scaler, error) {
	s, err := New(st.Kind)
	if err != nil {
		return nil, err
	}
	switch sc := s.(type) {
	case *minMaxScaler:
		sc.min, sc.span = st.A, st.B
	case *standardScaler:
		sc.mean, sc.std = st.A, st.B
	case *boxCoxScaler:
		sc.lambda, sc.shift = st.A, st.B
	}
	return s, nil
}
