package trout

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/scaling"
	"repro/internal/tscv"
)

// ModelName identifies a regression model in comparisons.
type ModelName string

// The four models the paper compares (Figs 6–9).
const (
	ModelNeuralNet    ModelName = "NeuralNet"
	ModelGBDT         ModelName = "XGBoost-like GBDT"
	ModelRandomForest ModelName = "RandomForest"
	ModelKNN          ModelName = "kNN"
)

// ModelScore is one model's performance on one fold.
type ModelScore struct {
	Model     ModelName
	Fold      int
	N         int
	MAPE      float64 // average percent error (Figs 6/7)
	Within100 float64 // fraction within 100 % error (Figs 8/9)
	Pearson   float64
}

// CompareConfig sizes the baseline models.
type CompareConfig struct {
	GBDTRounds  int // 0 = 100
	ForestTrees int // 0 = 100
	KNNK        int // 0 = 10
	Seed        int64
}

func (c *CompareConfig) defaults() {
	if c.GBDTRounds <= 0 {
		c.GBDTRounds = 100
	}
	if c.ForestTrees <= 0 {
		c.ForestTrees = 100
	}
	if c.KNNK <= 0 {
		c.KNNK = 10
	}
}

// CompareModels trains the paper's four regression models on each fold's
// long-job subset (identical features, log-scaled, log targets) and scores
// them on the fold's truly-long test jobs — the experiment behind
// Figs 6–9. Fold numbering matches CrossValidate (1-based).
func CompareModels(ds *Dataset, nnCfg ModelConfig, cmp CompareConfig, folds int, testFraction float64) ([]ModelScore, error) {
	cmp.defaults()
	splits, err := tscv.Split(ds.Len(), folds, testFraction)
	if err != nil {
		return nil, err
	}
	var out []ModelScore
	for fi, fold := range splits {
		scores, err := compareFold(ds, nnCfg, cmp, fold, fi+1)
		if err != nil {
			return nil, fmt.Errorf("trout: compare fold %d: %w", fi+1, err)
		}
		out = append(out, scores...)
	}
	return out, nil
}

// CompareFold runs the comparison for a single fold (1-based index into the
// same splits CompareModels uses).
func CompareFold(ds *Dataset, nnCfg ModelConfig, cmp CompareConfig, folds int, testFraction float64, fold int) ([]ModelScore, error) {
	cmp.defaults()
	splits, err := tscv.Split(ds.Len(), folds, testFraction)
	if err != nil {
		return nil, err
	}
	if fold < 1 || fold > len(splits) {
		return nil, fmt.Errorf("trout: fold %d out of 1..%d", fold, len(splits))
	}
	return compareFold(ds, nnCfg, cmp, splits[fold-1], fold)
}

func compareFold(ds *Dataset, nnCfg ModelConfig, cmp CompareConfig, fold tscv.Fold, foldNum int) ([]ModelScore, error) {
	// Shared preprocessing: log-scale features (fit on train), long-job
	// subsets, log targets — every model sees identical data, as §IV
	// requires.
	scaler, err := scaling.New(nnCfg.Scaler)
	if err != nil {
		return nil, err
	}
	rawTrain := make([][]float64, len(fold.Train))
	for k, i := range fold.Train {
		rawTrain[k] = ds.X[i]
	}
	scaler.Fit(rawTrain)

	var trX [][]float64
	var trY []float64
	for _, i := range fold.Train {
		if ds.QueueMinutes[i] >= nnCfg.CutoffMinutes {
			trX = append(trX, scaler.Transform(ds.X[i]))
			trY = append(trY, math.Log1p(ds.QueueMinutes[i]))
		}
	}
	var teX [][]float64
	var teY []float64
	for _, i := range fold.Test {
		if ds.QueueMinutes[i] >= nnCfg.CutoffMinutes {
			teX = append(teX, scaler.Transform(ds.X[i]))
			teY = append(teY, ds.QueueMinutes[i])
		}
	}
	if len(trX) < 10 || len(teX) == 0 {
		return nil, fmt.Errorf("too few long jobs (train %d, test %d)", len(trX), len(teX))
	}

	score := func(name ModelName, predLog func([]float64) float64) ModelScore {
		pred := make([]float64, len(teX))
		for i, x := range teX {
			v := math.Expm1(predLog(x))
			if v < 0 {
				v = 0
			}
			pred[i] = v
		}
		return ModelScore{
			Model: name, Fold: foldNum, N: len(teX),
			MAPE:      metrics.MAPE(pred, teY),
			Within100: metrics.WithinPercent(pred, teY, 100),
			Pearson:   metrics.Pearson(pred, teY),
		}
	}

	var out []ModelScore

	// Neural network: train via core on the same fold (core re-applies
	// the same scaler kind internally).
	m, err := core.Train(ds, fold.Train, nnCfg)
	if err != nil {
		return nil, err
	}
	nnPred := make([]float64, len(teY))
	{
		k := 0
		for _, i := range fold.Test {
			if ds.QueueMinutes[i] >= nnCfg.CutoffMinutes {
				nnPred[k] = m.RegressMinutes(ds.X[i])
				k++
			}
		}
	}
	out = append(out, ModelScore{
		Model: ModelNeuralNet, Fold: foldNum, N: len(teY),
		MAPE:      metrics.MAPE(nnPred, teY),
		Within100: metrics.WithinPercent(nnPred, teY, 100),
		Pearson:   metrics.Pearson(nnPred, teY),
	})

	gbdt := baselines.NewGBDT(baselines.GBDTConfig{Rounds: cmp.GBDTRounds, Seed: cmp.Seed + 1})
	if err := gbdt.Fit(trX, trY); err != nil {
		return nil, err
	}
	out = append(out, score(ModelGBDT, gbdt.Predict))

	forest := baselines.NewForest(baselines.ForestConfig{
		Trees: cmp.ForestTrees,
		Tree:  baselines.TreeConfig{MaxDepth: 12, MinLeaf: 5, MaxFeatures: features.NumFeatures / 2},
		Seed:  cmp.Seed + 2,
	})
	if err := forest.Fit(trX, trY); err != nil {
		return nil, err
	}
	out = append(out, score(ModelRandomForest, forest.Predict))

	knn := baselines.NewKNN(baselines.KNNConfig{K: cmp.KNNK, Standardize: true})
	if err := knn.Fit(trX, trY); err != nil {
		return nil, err
	}
	out = append(out, score(ModelKNN, knn.Predict))

	return out, nil
}
