package hyperopt

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/baselines"
)

// trainLikeObjective imitates a small training run: per-trial seeded noise
// plus budget-proportional compute, so the serial/parallel comparison below
// reflects search orchestration, not objective quirks.
func trainLikeObjective(tr *Trial, budget int) float64 {
	rng := rand.New(rand.NewSource(int64(tr.ID)))
	s := 0.0
	for i := 0; i < budget*20000; i++ {
		s += rng.Float64()
	}
	d := tr.Float("x") - 3
	return d*d + s*1e-12
}

// BenchmarkHyperoptGBDTSearch runs successive halving over real GBDT fits
// on a synthetic regression task — the shape of a production tree-baseline
// tune, where trial cost is dominated by histogram Fit throughput. The
// budget scales boosting rounds, mirroring how the halving scheduler spends
// cheap low-fidelity trials before promoting. Feeds BENCH_train.json via
// `make bench-json`.
func BenchmarkHyperoptGBDTSearch(b *testing.B) {
	const rows, feats = 4000, 12
	rng := rand.New(rand.NewSource(33))
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		row := make([]float64, feats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = 2*row[0] - row[1]*row[2] + 0.3*rng.NormFloat64()
	}
	space := []Param{
		IntRange("depth", 2, 6),
		LogUniform("lr", 1e-2, 0.5),
	}
	objective := func(tr *Trial, budget int) float64 {
		g := baselines.NewGBDT(baselines.GBDTConfig{
			Rounds:    5 * budget,
			LearnRate: tr.Float("lr"),
			Tree:      baselines.TreeConfig{MaxDepth: tr.Int("depth")},
			Seed:      int64(tr.ID),
		})
		if err := g.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		var sae float64
		for i := 0; i < 500; i++ {
			d := g.Predict(X[i]) - y[i]
			if d < 0 {
				d = -d
			}
			sae += d
		}
		return sae / 500
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Search(Config{
			Trials: 9, Seed: 35, Workers: 1,
			Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3,
		}, space, objective)
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("no best trial")
		}
	}
}

// BenchmarkHyperoptSearch measures the successive-halving search loop,
// serial vs worker-pool, on a training-shaped objective. Feeds
// BENCH_train.json via `make bench-json`.
func BenchmarkHyperoptSearch(b *testing.B) {
	space := []Param{
		Uniform("x", -10, 10),
		LogUniform("lr", 1e-5, 1e-1),
		IntRange("layers", 1, 4),
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Search(Config{
					Trials: 27, Seed: 21, Workers: workers,
					Halving: true, MinBudget: 1, MaxBudget: 9, Eta: 3,
				}, space, trainLikeObjective)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best == nil {
					b.Fatal("no best trial")
				}
			}
		})
	}
}
