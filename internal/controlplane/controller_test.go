package controlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
)

// fakeDrift is a mutable online-stats source standing in for the serving
// accuracy tracker.
type fakeDrift struct {
	mu sync.Mutex
	st obs.OnlineStats
}

func (f *fakeDrift) get() obs.OnlineStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

func (f *fakeDrift) set(st obs.OnlineStats) {
	f.mu.Lock()
	f.st = st
	f.mu.Unlock()
}

// fixedPredictor answers every shadow sample identically.
type fixedPredictor struct {
	prob    float64
	minutes float64
	long    bool
	err     error
}

func (p fixedPredictor) ShadowPredict(*features.Snapshot) (float64, float64, bool, error) {
	return p.prob, p.minutes, p.long, p.err
}

// ctlHarness bundles a controller with the callbacks' recorded effects.
type ctlHarness struct {
	ctl      *Controller
	reg      *Registry
	drift    *fakeDrift
	mu       sync.Mutex
	promoted []int
	rolled   int
}

func (h *ctlHarness) promotions() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int(nil), h.promoted...)
}

func (h *ctlHarness) rollbacks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rolled
}

// newCtlHarness builds a fast-ticking controller whose trainer emits a
// candidate backed by the given predictor. opts mutates the defaults.
func newCtlHarness(t *testing.T, cand Predictor, opts func(*Options)) *ctlHarness {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	h := &ctlHarness{reg: reg, drift: &fakeDrift{}}
	n := 0
	o := Options{
		Registry: reg,
		Train: func(context.Context) (*Candidate, error) {
			n++
			return &Candidate{
				Blob:      []byte(fmt.Sprintf("candidate-blob-%d", n)),
				Predictor: cand,
				Samples:   100,
				Watermark: 12345,
			}, nil
		},
		Drift: h.drift.get,
		Promote: func(m Manifest, _ []byte) error {
			h.mu.Lock()
			h.promoted = append(h.promoted, m.Version)
			h.mu.Unlock()
			return nil
		},
		Rollback: func() error {
			h.mu.Lock()
			h.rolled++
			h.mu.Unlock()
			return nil
		},
		IncumbentID:    func() string { return "" },
		CutoffMinutes:  10,
		CheckInterval:  2 * time.Millisecond,
		MinWindow:      4,
		ShadowWindow:   4,
		RollbackFactor: -1, // probation off unless a test opts in
	}
	if opts != nil {
		opts(&o)
	}
	ctl, err := NewController(o)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	return h
}

// pumpShadow feeds served-prediction/start-event pairs into the controller
// until cond holds or the deadline passes. Every realized wait is
// waitMinutes; the incumbent's recorded answer is (incProb, incMinutes,
// incLong).
func pumpShadow(t *testing.T, ctl *Controller, incProb, incMinutes float64, incLong bool, waitMinutes int64, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	id := 1_000_000
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held; status %+v", ctl.Status())
		}
		id++
		ctl.ObserveServed(id, nil, incProb, incMinutes, incLong)
		time.Sleep(time.Millisecond) // let the shadow worker dequeue before resolving
		ctl.ObserveStart(id, 1000, 1000+waitMinutes*60)
	}
}

func TestControllerPromotesBetterCandidate(t *testing.T) {
	// Candidate nails the 20-minute waits; the incumbent calls them all
	// quick-start.
	h := newCtlHarness(t, fixedPredictor{prob: 0.95, minutes: 20, long: true}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = h.ctl.Run(ctx) }()

	// Drift past the threshold with a full window: the tick should trigger
	// a retrain on its own.
	h.drift.set(obs.OnlineStats{Window: 10, CalibrationDrift: -0.6})
	pumpShadow(t, h.ctl, 0.1, 0, false, 20, func() bool {
		return h.ctl.Status().LastVerdict == VerdictPromoted
	})

	if got := h.promotions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("promotions = %v", got)
	}
	if h.reg.ActiveVersion() != 1 {
		t.Fatalf("registry active = %d", h.reg.ActiveVersion())
	}
	if m, _ := h.reg.Manifest(1); m.Status != StatusActive {
		t.Fatalf("v1 status = %q", m.Status)
	}
	st := h.ctl.Status()
	if st.State != StateIdle || st.Promotions != 1 || st.Retrains != 1 {
		t.Fatalf("status = %+v", st)
	}
	cancel()
	<-done
}

func TestControllerRejectsWorseCandidate(t *testing.T) {
	// Candidate calls every long job quick-start; the incumbent is right.
	h := newCtlHarness(t, fixedPredictor{prob: 0.1, minutes: 0, long: false}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = h.ctl.Run(ctx) }()

	if ok, msg := h.ctl.TriggerRetrain(); !ok {
		t.Fatalf("manual trigger refused: %s", msg)
	}
	pumpShadow(t, h.ctl, 0.9, 20, true, 20, func() bool {
		return h.ctl.Status().LastVerdict == VerdictRejected
	})

	if got := h.promotions(); len(got) != 0 {
		t.Fatalf("worse candidate was promoted: %v", got)
	}
	if h.reg.ActiveVersion() != 0 {
		t.Fatalf("registry active = %d (incumbent must keep serving)", h.reg.ActiveVersion())
	}
	m, _ := h.reg.Manifest(1)
	if m.Status != StatusRejected {
		t.Fatalf("v1 status = %q", m.Status)
	}
	if m.Note == "" {
		t.Fatal("rejection must record the shadow scores in the manifest note")
	}
}

func TestControllerRollsBackRegressedPromotion(t *testing.T) {
	h := newCtlHarness(t, fixedPredictor{prob: 0.95, minutes: 20, long: true}, func(o *Options) {
		o.RollbackFactor = 1.5
		o.RollbackWindow = 2
	})
	// Pre-promotion online baseline: MAE 10 over a credible window.
	h.drift.set(obs.OnlineStats{Window: 10, Joined: 100, MAEMinutes: 10, RegressionObbs: 5})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = h.ctl.Run(ctx) }()

	if ok, msg := h.ctl.TriggerRetrain(); !ok {
		t.Fatalf("manual trigger refused: %s", msg)
	}
	// Shadow-phase traffic promotes the candidate...
	pumpShadow(t, h.ctl, 0.1, 0, false, 20, func() bool {
		return len(h.promotions()) == 1
	})
	// ...then the online window fills with post-swap outcomes whose MAE
	// blew past baseline × factor: probation must revert the swap.
	h.drift.set(obs.OnlineStats{Window: 10, Joined: 110, MAEMinutes: 100, RegressionObbs: 5})
	deadline := time.Now().Add(10 * time.Second)
	for h.ctl.Status().LastVerdict != VerdictRolledBack {
		if time.Now().After(deadline) {
			t.Fatalf("never rolled back; status %+v", h.ctl.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h.rollbacks() != 1 {
		t.Fatalf("rollback callback ran %d times", h.rollbacks())
	}
	if h.reg.ActiveVersion() != 0 {
		t.Fatalf("registry active = %d after rollback", h.reg.ActiveVersion())
	}
	if m, _ := h.reg.Manifest(1); m.Status != StatusRolledBack {
		t.Fatalf("v1 status = %q", m.Status)
	}
}

func TestTriggerRetrainWhileBusyDeclines(t *testing.T) {
	block := make(chan struct{})
	h := newCtlHarness(t, fixedPredictor{}, func(o *Options) {
		o.Train = func(ctx context.Context) (*Candidate, error) {
			<-block
			return nil, fmt.Errorf("aborted")
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = h.ctl.Run(ctx) }()

	if ok, _ := h.ctl.TriggerRetrain(); !ok {
		t.Fatal("first trigger refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.ctl.Status().State != StateRetraining {
		if time.Now().After(deadline) {
			t.Fatal("retrain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if ok, msg := h.ctl.TriggerRetrain(); ok {
		t.Fatal("second trigger accepted while a cycle is running")
	} else if msg == "" {
		t.Fatal("refusal must explain itself")
	}
	close(block)
	deadline = time.Now().Add(5 * time.Second)
	for h.ctl.Status().LastVerdict != VerdictFailed {
		if time.Now().After(deadline) {
			t.Fatalf("failed train never recorded; status %+v", h.ctl.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if st := h.ctl.Status(); st.Failures != 1 || st.LastError == "" {
		t.Fatalf("status after failed train = %+v", st)
	}
}
