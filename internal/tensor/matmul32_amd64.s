//go:build amd64

#include "textflag.h"

// func matmulTransB32SSE(a, wt, bias, dst *float32, outs, inPad int64, lim float32)
//
// One activation row against outs transposed weight rows. outs and inPad
// are multiples of 4 (callers pad with zeros, which is exact). The kernel
// register-blocks four weight rows per pass so every a chunk is loaded
// once per four outputs, accumulates four stride-4 partial sums per dot
// in a single XMM register, reduces them as (s0+s2)+(s1+s3), adds bias,
// and clamps with MAXSS lim in the destination position — ReLU when
// lim = 0, identity when lim = -Inf, and a NaN dot always propagates
// because MAXSS returns the source operand on NaN. The pure-Go kernel
// matmulTransB32Go mirrors this arithmetic bit for bit.
TEXT ·matmulTransB32SSE(SB), NOSPLIT, $0-52
	MOVQ  a+0(FP), SI
	MOVQ  wt+8(FP), DI
	MOVQ  bias+16(FP), BX
	MOVQ  dst+24(FP), DX
	MOVQ  outs+32(FP), CX
	MOVQ  inPad+40(FP), R8
	MOVSS lim+48(FP), X15

	// R10 = inPad*4: the byte stride of one weight row.
	MOVQ R8, R10
	SHLQ $2, R10

outerloop:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  SI, R11             // a cursor
	MOVQ  DI, R12             // weight row o
	LEAQ  (DI)(R10*1), R13    // row o+1
	LEAQ  (DI)(R10*2), R14    // row o+2
	LEAQ  (R13)(R10*2), R15   // row o+3
	MOVQ  R8, AX

kloop:
	MOVUPS (R11), X8
	MOVUPS (R12), X9
	MULPS  X8, X9
	ADDPS  X9, X0
	MOVUPS (R13), X10
	MULPS  X8, X10
	ADDPS  X10, X1
	MOVUPS (R14), X11
	MULPS  X8, X11
	ADDPS  X11, X2
	MOVUPS (R15), X12
	MULPS  X8, X12
	ADDPS  X12, X3
	ADDQ   $16, R11
	ADDQ   $16, R12
	ADDQ   $16, R13
	ADDQ   $16, R14
	ADDQ   $16, R15
	SUBQ   $4, AX
	JNE    kloop

	// Reduce X0: lanes {s0,s1,s2,s3} -> (s0+s2)+(s1+s3), then bias+clamp.
	MOVAPS  X0, X8
	MOVHLPS X0, X8
	ADDPS   X8, X0            // lane0 = s0+s2, lane1 = s1+s3
	MOVAPS  X0, X8
	SHUFPS  $0x55, X8, X8     // broadcast lane1
	ADDSS   X8, X0
	ADDSS   (BX), X0
	MOVAPS  X15, X8
	MAXSS   X0, X8            // max(lim, v); NaN v propagates
	MOVSS   X8, (DX)

	MOVAPS  X1, X8
	MOVHLPS X1, X8
	ADDPS   X8, X1
	MOVAPS  X1, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X1
	ADDSS   4(BX), X1
	MOVAPS  X15, X8
	MAXSS   X1, X8
	MOVSS   X8, 4(DX)

	MOVAPS  X2, X8
	MOVHLPS X2, X8
	ADDPS   X8, X2
	MOVAPS  X2, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X2
	ADDSS   8(BX), X2
	MOVAPS  X15, X8
	MAXSS   X2, X8
	MOVSS   X8, 8(DX)

	MOVAPS  X3, X8
	MOVHLPS X3, X8
	ADDPS   X8, X3
	MOVAPS  X3, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X3
	ADDSS   12(BX), X3
	MOVAPS  X15, X8
	MAXSS   X3, X8
	MOVSS   X8, 12(DX)

	LEAQ (DI)(R10*4), DI      // advance four weight rows
	ADDQ $16, BX
	ADDQ $16, DX
	SUBQ $4, CX
	JNE  outerloop

	RET
