package nn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// TrainConfig controls mini-batch training.
type TrainConfig struct {
	Loss      LossKind
	Epochs    int
	BatchSize int
	// Workers is the number of data-parallel gradient workers per batch.
	// 0 means min(GOMAXPROCS, 4); 1 forces the serial path.
	Workers int
	// ValFraction holds out the last fraction of the (already shuffled)
	// training set for early stopping; 0 disables validation.
	ValFraction float64
	// Patience is the number of epochs without validation improvement
	// before stopping early; 0 disables early stopping.
	Patience int
	// Silent suppresses the per-epoch callback.
	OnEpoch func(epoch int, trainLoss, valLoss float64)
	// OnEpochStats, when non-nil, receives richer telemetry after each
	// epoch: losses plus the last batch's global gradient L2 norm and the
	// learning rate in effect. Setting it enables the (cheap, alloc-free)
	// per-batch norm computation.
	OnEpochStats func(stats EpochStats)
	// OnRollback, when non-nil, is invoked after each divergence rollback
	// with the epoch, the cumulative divergent-event count, and the
	// post-halving learning rate.
	OnRollback func(epoch, events int, lr float64)
	// Seed drives batch shuffling and worker dropout masks.
	Seed int64
	// ClipNorm rescales each batch's gradient so its global L2 norm does
	// not exceed this value; 0 disables clipping. The paper leans on
	// smooth-L1 to tame exploding gradients from day-long queue-time
	// outliers; clipping is the belt to that suspenders.
	ClipNorm float64
	// LossFunc, when non-nil, overrides Loss with a custom differentiable
	// loss (e.g. a PinballLoss closure for quantile regression).
	LossFunc func(pred, target *tensor.Matrix) (float64, *tensor.Matrix)
	// LRDecay multiplies the optimizer's learning rate by this factor
	// after each epoch (a simple exponential schedule); 0 or 1 disables.
	LRDecay float64
	// DivergencePatience is the number of divergent events (a non-finite
	// batch loss, gradient, or validation loss) tolerated before FitCtx
	// gives up. Each event rolls the network back to the best checkpointed
	// weights and halves the learning rate; exhausting the budget returns
	// a *DivergenceError with the rollback already applied. 0 means 3;
	// negative disables divergence handling entirely (pre-hardening
	// behavior: NaNs propagate into the weights).
	DivergencePatience int
}

// evalLoss dispatches between the named loss and a custom LossFunc.
func (c *TrainConfig) evalLoss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if c.LossFunc != nil {
		return c.LossFunc(pred, target)
	}
	return Loss(c.Loss, pred, target)
}

// evalLossWS is evalLoss writing the gradient into the workspace's buffer.
// A custom LossFunc keeps its own allocating contract (it returns a fresh
// gradient we cannot reuse); the named losses go through LossInto.
func (c *TrainConfig) evalLossWS(ws *TrainWorkspace, pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if c.LossFunc != nil {
		return c.LossFunc(pred, target)
	}
	return LossInto(c.Loss, pred, target, &ws.grad), &ws.grad
}

// EpochStats is the per-epoch telemetry handed to OnEpochStats.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	// ValLoss is NaN when no validation holdout is configured.
	ValLoss float64
	// GradNorm is the global gradient L2 norm of the epoch's last
	// successful batch step (pre-clipping).
	GradNorm float64
	// LR is the optimizer learning rate in effect during the epoch.
	LR float64
}

// TrainResult summarizes a training run.
type TrainResult struct {
	Epochs     int
	FinalLoss  float64
	BestVal    float64
	EarlyStops bool
	// Diverged is true when training was abandoned after exhausting
	// DivergencePatience; the network holds the best checkpointed weights.
	Diverged bool
	// Rollbacks counts checkpoint restores triggered by divergent events.
	Rollbacks int
}

// DivergenceError reports a training run abandoned after repeated
// non-finite losses or gradients. The trainer has already rolled the
// network back to the best checkpointed weights, so the model remains
// usable (it just stopped improving).
type DivergenceError struct {
	// Epoch is the 0-based epoch during which training gave up.
	Epoch int
	// Events is the number of divergent events observed.
	Events int
	// LastLoss is the last finite loss seen before giving up (NaN when
	// training never produced one).
	LastLoss float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("nn: training diverged at epoch %d after %d non-finite events (last finite loss %g); rolled back to best checkpoint",
		e.Epoch, e.Events, e.LastLoss)
}

// Trainer trains a network with an optimizer under a TrainConfig.
type Trainer struct {
	Net *Network
	Opt Optimizer
	Cfg TrainConfig
}

// Fit runs mini-batch gradient descent on (x, y). Rows of x are samples;
// y has one row per sample. Gradients for each batch are computed by
// Cfg.Workers replicas over shards of the batch and summed in worker order,
// so a run is reproducible for a fixed worker count. Divergence (see
// TrainConfig.DivergencePatience) is handled by rollback but not reported;
// use FitCtx to observe it.
func (t *Trainer) Fit(x, y *tensor.Matrix) TrainResult {
	res, _ := t.FitCtx(context.Background(), x, y)
	return res
}

// FitCtx is Fit with cooperative cancellation and divergence reporting.
// It stops between batches when ctx is cancelled, returning the partial
// result alongside ctx.Err(). When the run exhausts its divergence budget
// it returns the best-checkpoint-restored result and a *DivergenceError.
func (t *Trainer) FitCtx(ctx context.Context, x, y *tensor.Matrix) (TrainResult, error) {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("nn: Fit got %d samples but %d targets", x.Rows, y.Rows))
	}
	if x.Rows == 0 {
		return TrainResult{}, nil
	}
	cfg := t.Cfg
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Hold out validation rows from the end (callers pass time-ordered
	// data, so the tail is the "future" — consistent with the paper's
	// time-based splitting).
	nVal := 0
	if cfg.ValFraction > 0 {
		nVal = int(float64(x.Rows) * cfg.ValFraction)
	}
	nTrain := x.Rows - nVal
	if nTrain <= 0 {
		nTrain, nVal = x.Rows, 0
	}
	var xVal, yVal *tensor.Matrix
	if nVal > 0 {
		idx := make([]int, nVal)
		for i := range idx {
			idx[i] = nTrain + i
		}
		xVal, yVal = x.SelectRows(idx), y.SelectRows(idx)
	}

	// Data-parallel replicas share the master's architecture.
	replicas := make([]*Network, workers)
	replicas[0] = t.Net
	for w := 1; w < workers; w++ {
		replicas[w] = t.Net.CloneFor(rand.New(rand.NewSource(cfg.Seed + int64(w))))
	}
	st := newTrainState(replicas)

	order := make([]int, nTrain)
	for i := range order {
		order[i] = i
	}

	// Divergence handling: keep a checkpoint of the best weights seen so
	// far and roll back to it whenever a non-finite loss or gradient
	// appears, halving the learning rate to attempt recovery. The budget
	// of such events is DivergencePatience.
	patience := cfg.DivergencePatience
	if patience == 0 {
		patience = 3
	}
	guard := patience > 0
	var ckpt *Network
	ckptScore := math.Inf(1)
	if guard {
		ckpt = t.Net.CloneFor(rand.New(rand.NewSource(cfg.Seed + 7919)))
		ckpt.CopyWeightsFrom(t.Net)
	}
	lastFinite := math.NaN()
	events := 0
	curEpoch := 0
	res := TrainResult{}
	rollback := func() {
		events++
		t.Net.CopyWeightsFrom(ckpt)
		t.Opt.SetLR(t.Opt.LR() / 2)
		res.Rollbacks++
		if cfg.OnRollback != nil {
			cfg.OnRollback(curEpoch, events, t.Opt.LR())
		}
	}

	emitEpoch := func(epoch int, trainLoss, valLoss, lr float64) {
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, trainLoss, valLoss)
		}
		if cfg.OnEpochStats != nil {
			cfg.OnEpochStats(EpochStats{
				Epoch: epoch, TrainLoss: trainLoss, ValLoss: valLoss,
				GradNorm: st.lastGradNorm, LR: lr,
			})
		}
	}

	best := math.Inf(1)
	badEpochs := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		curEpoch = epoch
		epochLR := t.Opt.LR()
		rng.Shuffle(nTrain, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var nBatches int
		for start := 0; start < nTrain; start += cfg.BatchSize {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			end := start + cfg.BatchSize
			if end > nTrain {
				end = nTrain
			}
			batch := order[start:end]
			l, ok := t.batchStep(st, x, y, batch, workers, guard)
			if !ok {
				rollback()
				if events >= patience {
					res.Diverged = true
					res.Epochs = epoch + 1
					return res, &DivergenceError{Epoch: epoch, Events: events, LastLoss: lastFinite}
				}
				continue
			}
			lastFinite = l
			epochLoss += l
			nBatches++
		}
		if nBatches == 0 {
			// Every batch this epoch was rolled back; there is no loss to
			// report and nothing new to checkpoint.
			epochLoss = math.NaN()
		} else {
			epochLoss /= float64(nBatches)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = epochLoss

		valLoss := math.NaN()
		if nVal > 0 {
			pred := t.Net.Predict(xVal)
			valLoss, _ = cfg.evalLoss(pred, yVal)
			if guard && (math.IsNaN(valLoss) || math.IsInf(valLoss, 0)) {
				rollback()
				if events >= patience {
					res.Diverged = true
					return res, &DivergenceError{Epoch: epoch, Events: events, LastLoss: lastFinite}
				}
				continue
			}
			if valLoss < best-1e-9 {
				best = valLoss
				badEpochs = 0
			} else {
				badEpochs++
			}
			res.BestVal = best
			if cfg.Patience > 0 && badEpochs >= cfg.Patience {
				res.EarlyStops = true
				emitEpoch(epoch, epochLoss, valLoss, epochLR)
				break
			}
		}
		// Checkpoint on improvement: validation loss when available,
		// training loss otherwise.
		if guard {
			score := epochLoss
			if nVal > 0 {
				score = valLoss
			}
			if !math.IsNaN(score) && !math.IsInf(score, 0) && score < ckptScore {
				ckptScore = score
				ckpt.CopyWeightsFrom(t.Net)
			}
		}
		emitEpoch(epoch, epochLoss, valLoss, epochLR)
		if cfg.LRDecay > 0 && cfg.LRDecay != 1 {
			t.Opt.SetLR(t.Opt.LR() * cfg.LRDecay)
		}
	}
	return res, nil
}

// trainState is the per-Fit scratch shared by every batch step: the replica
// networks, one training workspace per replica, cached Params slices (the
// Param structs point at stable matrices, so building them once per Fit
// removes three slice allocations per batch), and the shard bookkeeping for
// the data-parallel path. Together with the workspaces this makes a warm
// serial batch step allocation-free.
type trainState struct {
	replicas []*Network
	wss      []*TrainWorkspace
	params   [][]Param // params[w] belongs to replicas[w]; [0] is the master
	losses   []float64
	sizes    []int
	// lastGradNorm is the pre-clip global gradient L2 norm of the most
	// recent successful batch step; only maintained when the config's
	// OnEpochStats hook is set.
	lastGradNorm float64
}

func newTrainState(replicas []*Network) *trainState {
	st := &trainState{
		replicas: replicas,
		wss:      make([]*TrainWorkspace, len(replicas)),
		params:   make([][]Param, len(replicas)),
		losses:   make([]float64, len(replicas)),
		sizes:    make([]int, len(replicas)),
	}
	for w, r := range replicas {
		st.wss[w] = r.NewTrainWorkspace()
		st.params[w] = r.Params()
	}
	return st
}

// batchStep computes the batch gradient (possibly sharded across replicas),
// applies one optimizer step to the master network, and returns the batch
// loss. With guard set, a non-finite loss or gradient skips the optimizer
// step, zeroes the accumulated gradients, and returns ok=false so the
// caller can roll back. All intermediate tensors live in st's workspaces.
func (t *Trainer) batchStep(st *trainState, x, y *tensor.Matrix, batch []int, workers int, guard bool) (float64, bool) {
	master := st.params[0]
	if workers <= 1 || len(batch) < 2*workers {
		ws := st.wss[0]
		xb := x.SelectRowsInto(batch, &ws.xb)
		yb := y.SelectRowsInto(batch, &ws.yb)
		pred := t.Net.ForwardTrain(ws, xb)
		l, grad := t.Cfg.evalLossWS(ws, pred, yb)
		if guard && (math.IsNaN(l) || math.IsInf(l, 0)) {
			zeroGrads(master)
			return l, false
		}
		t.Net.BackwardTrain(ws, grad)
		if guard && !gradsFinite(master) {
			zeroGrads(master)
			return l, false
		}
		if t.Cfg.OnEpochStats != nil {
			st.lastGradNorm = gradNorm(master)
		}
		clipGradients(master, t.Cfg.ClipNorm)
		t.Opt.Step(master)
		return l, true
	}

	// Shard the batch; each replica computes gradients on its shard with
	// the loss gradient scaled to the shard size, then shard gradients are
	// combined weighted by shard fraction so the result equals the
	// full-batch gradient. Each replica owns its workspace, so shards reuse
	// their SelectRows gather buffers and activation tensors across batches.
	for w := 1; w < workers; w++ {
		st.replicas[w].CopyWeightsFrom(t.Net)
		st.sizes[w] = 0
	}
	st.sizes[0] = 0
	chunk := (len(batch) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, shard []int) {
			defer wg.Done()
			ws := st.wss[w]
			xb := x.SelectRowsInto(shard, &ws.xb)
			yb := y.SelectRowsInto(shard, &ws.yb)
			net := st.replicas[w]
			pred := net.ForwardTrain(ws, xb)
			l, grad := t.Cfg.evalLossWS(ws, pred, yb)
			net.BackwardTrain(ws, grad)
			st.losses[w] = l
			st.sizes[w] = len(shard)
		}(w, batch[lo:hi])
	}
	wg.Wait()

	// Combine: master (replica 0) already holds its own shard's gradient;
	// scale it and add the others, all weighted by shard fraction.
	total := float64(len(batch))
	for i := range master {
		w0 := float64(st.sizes[0]) / total
		for k := range master[i].Grad.Data {
			master[i].Grad.Data[k] *= w0
		}
	}
	for w := 1; w < workers; w++ {
		if st.sizes[w] == 0 {
			continue
		}
		frac := float64(st.sizes[w]) / total
		rp := st.params[w]
		for i := range master {
			for k, g := range rp[i].Grad.Data {
				master[i].Grad.Data[k] += frac * g
			}
			rp[i].Grad.Zero()
		}
	}
	var l float64
	for w := 0; w < workers; w++ {
		l += st.losses[w] * float64(st.sizes[w]) / total
	}
	if guard && ((math.IsNaN(l) || math.IsInf(l, 0)) || !gradsFinite(master)) {
		zeroGrads(master)
		return l, false
	}
	if t.Cfg.OnEpochStats != nil {
		st.lastGradNorm = gradNorm(master)
	}
	clipGradients(master, t.Cfg.ClipNorm)
	t.Opt.Step(master)
	return l, true
}

// gradsFinite reports whether every accumulated gradient is finite.
func gradsFinite(params []Param) bool {
	for _, p := range params {
		for _, g := range p.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return false
			}
		}
	}
	return true
}

// zeroGrads clears accumulated gradients after a skipped step, so a
// poisoned batch cannot leak into the next optimizer update.
func zeroGrads(params []Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// gradNorm returns the global L2 norm of the accumulated gradients.
func gradNorm(params []Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// clipGradients rescales all gradients in place so their global L2 norm is
// at most maxNorm (no-op when maxNorm <= 0 or the norm is already within).
func clipGradients(params []Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	norm := gradNorm(params)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}
