package slurmsim

import "testing"

func TestEstimateStartEmptyCluster(t *testing.T) {
	// Nothing running, nothing else pending: the target starts now.
	state := ForwardState{
		Now:      1000,
		Pending:  []JobSpec{job(1, 1000, 600, 300, 2)},
		TargetID: 1,
	}
	start, err := EstimateStartTime(tinyConfig(), state)
	if err != nil {
		t.Fatal(err)
	}
	if start != 1000 {
		t.Fatalf("start = %d, want 1000", start)
	}
}

func TestEstimateStartBehindRunningJob(t *testing.T) {
	// A running job holds everything; it has 400 s left of its limit.
	state := ForwardState{
		Now: 1000,
		Running: []RunningJob{{
			Spec:    JobSpec{ID: 1, User: 1, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000},
			Elapsed: 600,
		}},
		Pending: []JobSpec{
			{ID: 2, User: 2, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 500},
		},
		TargetID: 2,
	}
	start, err := EstimateStartTime(tinyConfig(), state)
	if err != nil {
		t.Fatal(err)
	}
	// Pessimistic ETA: the running job frees the cluster at 1000+400.
	if start != 1400 {
		t.Fatalf("start = %d, want 1400", start)
	}
}

func TestEstimateStartBehindPendingQueue(t *testing.T) {
	// Cluster busy until t=1200; two full-size pending jobs ahead of the
	// target run back-to-back at their limits.
	state := ForwardState{
		Now: 1000,
		Running: []RunningJob{{
			Spec:    JobSpec{ID: 1, User: 1, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 1000},
			Elapsed: 800,
		}},
		Pending: []JobSpec{
			{ID: 2, User: 2, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 600},
			{ID: 3, User: 3, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 600},
			{ID: 4, User: 4, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 600},
		},
		TargetID: 4,
	}
	start, err := EstimateStartTime(tinyConfig(), state)
	if err != nil {
		t.Fatal(err)
	}
	// Running ends at 1200, then two 600 s jobs: target at 2400. (The
	// forward sim recomputes priorities itself, but with equal shapes any
	// order yields the same slot for the last job.)
	if start != 2400 {
		t.Fatalf("start = %d, want 2400", start)
	}
}

func TestEstimateStartErrors(t *testing.T) {
	if _, err := EstimateStartTime(tinyConfig(), ForwardState{Now: 1, TargetID: 9}); err == nil {
		t.Fatal("missing target accepted")
	}
	state := ForwardState{
		Now:      1,
		Pending:  []JobSpec{{ID: 9, User: 1, Partition: "nope", ReqCPUs: 1, ReqMemGB: 1, ReqNodes: 1, TimeLimit: 10}},
		TargetID: 9,
	}
	if _, err := EstimateStartTime(tinyConfig(), state); err == nil {
		t.Fatal("unknown partition accepted")
	}
	state.Pending[0].Partition = "shared"
	state.Pending[0].ReqCPUs = 99
	if _, err := EstimateStartTime(tinyConfig(), state); err == nil {
		t.Fatal("infeasible target accepted")
	}
}

func TestEstimateStartOverdueRunningJob(t *testing.T) {
	// The running job is past its limit (grace); its remaining time is
	// clamped to 1 s rather than negative.
	state := ForwardState{
		Now: 1000,
		Running: []RunningJob{{
			Spec:    JobSpec{ID: 1, User: 1, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 500},
			Elapsed: 900,
		}},
		Pending: []JobSpec{
			{ID: 2, User: 2, Partition: "shared", ReqCPUs: 8, ReqMemGB: 2, ReqNodes: 2, TimeLimit: 100},
		},
		TargetID: 2,
	}
	start, err := EstimateStartTime(tinyConfig(), state)
	if err != nil {
		t.Fatal(err)
	}
	if start != 1001 {
		t.Fatalf("start = %d, want 1001", start)
	}
}
