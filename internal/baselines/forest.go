package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig controls random-forest construction.
type ForestConfig struct {
	Trees int // 0 means 100
	Tree  TreeConfig
	// SampleFraction is the bootstrap size relative to the dataset;
	// 0 means 1.0 (classic bootstrap with replacement).
	SampleFraction float64
	// Workers bounds parallel tree construction; 0 means GOMAXPROCS.
	Workers int
	Seed    int64
}

func (c *ForestConfig) defaults(dim int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	c.Tree.defaults()
	if c.Tree.MaxFeatures <= 0 {
		// Regression default: d/3, at least 1.
		c.Tree.MaxFeatures = dim / 3
		if c.Tree.MaxFeatures < 1 {
			c.Tree.MaxFeatures = 1
		}
	}
}

// Forest is a bagged ensemble of regression trees, built in parallel — the
// paper uses it both as a queue-time baseline and as the runtime predictor
// whose output becomes a feature.
type Forest struct {
	Cfg   ForestConfig
	trees []*Tree
}

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Cfg: cfg} }

// Fit implements Regressor. Trees train concurrently on bootstrap samples;
// per-tree RNGs are seeded deterministically so results are reproducible
// regardless of worker interleaving.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: forest fit with %d samples, %d targets", len(X), len(y))
	}
	f.Cfg.defaults(len(X[0]))
	n := len(X)
	sampleN := int(f.Cfg.SampleFraction * float64(n))
	if sampleN < 1 {
		sampleN = 1
	}
	f.trees = make([]*Tree, f.Cfg.Trees)
	sem := make(chan struct{}, f.Cfg.Workers)
	var wg sync.WaitGroup
	errs := make([]error, f.Cfg.Trees)
	for ti := 0; ti < f.Cfg.Trees; ti++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(ti)*7919))
			idx := make([]int, sampleN)
			for k := range idx {
				idx[k] = rng.Intn(n)
			}
			tcfg := f.Cfg.Tree
			tcfg.Seed = f.Cfg.Seed + int64(ti)
			tree := NewTree(tcfg)
			errs[ti] = tree.FitIndices(X, y, idx, rng)
			f.trees[ti] = tree
		}(ti)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Regressor: the mean of tree predictions.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// GBDTConfig controls gradient-boosted tree construction — the stand-in for
// the paper's XGBoost baseline.
type GBDTConfig struct {
	Rounds    int     // boosting rounds; 0 means 100
	LearnRate float64 // shrinkage; 0 means 0.1
	Tree      TreeConfig
	// SubsampleFraction of rows per round (stochastic gradient boosting);
	// 0 means 1.0.
	SubsampleFraction float64
	Seed              int64
}

func (c *GBDTConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.1
	}
	if c.SubsampleFraction <= 0 {
		c.SubsampleFraction = 1
	}
	if c.Tree.MaxDepth <= 0 {
		c.Tree.MaxDepth = 4
	}
	c.Tree.defaults()
}

// GBDT is gradient boosting with squared loss over shallow CART trees.
type GBDT struct {
	Cfg   GBDTConfig
	base  float64
	trees []*Tree
}

// NewGBDT returns an untrained booster.
func NewGBDT(cfg GBDTConfig) *GBDT { return &GBDT{Cfg: cfg} }

// Fit implements Regressor.
func (g *GBDT) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("baselines: gbdt fit with %d samples, %d targets", len(X), len(y))
	}
	g.Cfg.defaults()
	n := len(X)
	var s float64
	for _, v := range y {
		s += v
	}
	g.base = s / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	rng := rand.New(rand.NewSource(g.Cfg.Seed))
	g.trees = g.trees[:0]
	sampleN := int(g.Cfg.SubsampleFraction * float64(n))
	if sampleN < 1 {
		sampleN = 1
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for round := 0; round < g.Cfg.Rounds; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		idx := all
		if sampleN < n {
			rng.Shuffle(n, func(i, j int) { all[i], all[j] = all[j], all[i] })
			idx = all[:sampleN]
		}
		tcfg := g.Cfg.Tree
		tcfg.Seed = g.Cfg.Seed + int64(round)
		tree := NewTree(tcfg)
		if err := tree.FitIndices(X, resid, idx, rng); err != nil {
			return err
		}
		g.trees = append(g.trees, tree)
		for i := range pred {
			pred[i] += g.Cfg.LearnRate * tree.Predict(X[i])
		}
	}
	return nil
}

// Predict implements Regressor.
func (g *GBDT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.Cfg.LearnRate * t.Predict(x)
	}
	return out
}

// ClassifyProb adapts a regressor trained on 0/1 labels to a probability by
// clamping its output to [0, 1] — used for tree-based classifier ablations.
func ClassifyProb(r Regressor, x []float64) float64 {
	return math.Min(1, math.Max(0, r.Predict(x)))
}
