// Differential tests pinning the zero-alloc JSON fast path to the stdlib:
// every encoder output must be byte-identical to encoding/json's Encoder
// (or the encoder must refuse and hand the value back), every accepted
// parse must produce the exact struct encoding/json would, and the encode
// hot path must stay at zero allocations per response.
package trout

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// stdlibEncode is the reference: json.NewEncoder output (HTML escaping on,
// trailing newline) — exactly what the pre-fast-path service wrote.
func stdlibEncode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("stdlib encode: %v", err)
	}
	return buf.Bytes()
}

// edgeStrings exercise every escape class the string encoder handles:
// HTML-escaped bytes, two-char escapes, \u00xx control chars, the JS line
// separators, invalid UTF-8 (→ U+FFFD), and multi-byte valid UTF-8.
var edgeStrings = []string{
	"",
	"plain ascii",
	`<script>alert("x&y")</script>`,
	"tab\tnl\nret\rquote\"backslash\\",
	"ctrl\x00\x01\x1f",
	"line\u2028and\u2029seps",
	"bad utf8 \xff\xfe tail\xc3",
	"h\u00e9llo w\u00f6rld \u2713 \U0001F600",
	"trailing backslash\\",
	"<",
}

var edgeFloats = []float64{
	0, 1, -1, 0.25, -0.25, 0.1,
	1e-6, 9.999e-7, 1e-7, -4.2e-9, // scientific-notation threshold (low)
	1e21, 9.99e20, -3.25e22, // scientific-notation threshold (high)
	123456789.5, math.MaxFloat64, math.SmallestNonzeroFloat64,
	2.2250738585072014e-308, 1e100,
}

func TestEncodePredictResponseDifferential(t *testing.T) {
	var cases []predictResponse
	for i, s := range edgeStrings {
		f := edgeFloats[i%len(edgeFloats)]
		cases = append(cases,
			predictResponse{Long: i%2 == 0, Prob: f, Message: s, Tier: "nn",
				Source: "live", Pending: i, Running: -i, ModelVersion: i},
			predictResponse{Prob: 0.5, Minutes: f, Message: "ok", Tier: s,
				Source: s, Pending: math.MaxInt32, ModelVersion: -1, ModelID: s},
		)
	}
	// Minutes==0 must omit the field; ModelID=="" must omit the field.
	cases = append(cases, predictResponse{}, predictResponse{Minutes: 0, ModelID: ""})
	for i, v := range cases {
		got, ok := encodePredictResponse(nil, &v)
		if !ok {
			t.Fatalf("case %d: encoder refused finite value %+v", i, v)
		}
		want := stdlibEncode(t, &v)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got  %q\n want %q", i, got, want)
		}
	}
}

func TestEncodePredictBatchResponseDifferential(t *testing.T) {
	mkItems := func(n int) []batchItem {
		items := make([]batchItem, n)
		for i := range items {
			items[i] = batchItem{
				Long: i%2 == 1, Prob: edgeFloats[i%len(edgeFloats)],
				Minutes: edgeFloats[(i+3)%len(edgeFloats)],
				Message: edgeStrings[i%len(edgeStrings)],
				Tier:    "nn",
			}
		}
		// omitempty coverage: one all-zero item, one error-only item.
		items[0] = batchItem{}
		if n > 1 {
			items[1] = batchItem{Error: edgeStrings[2]}
		}
		return items
	}
	cases := []predictBatchResponse{
		{At: 0, Source: "scan", Results: nil},            // null results
		{At: -5, Source: "live", Results: []batchItem{}}, // empty array
		{At: 12345, Source: "live", Pending: 7, Running: 3, Results: mkItems(1)},
		{At: math.MaxInt64, Source: edgeStrings[6], Pending: -1,
			Results: mkItems(9), ModelVersion: 4, ModelID: "deadbeef"},
	}
	for i, v := range cases {
		got, ok := encodePredictBatchResponse(nil, &v)
		if !ok {
			t.Fatalf("case %d: encoder refused finite value", i)
		}
		want := stdlibEncode(t, &v)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got  %q\n want %q", i, got, want)
		}
	}
}

// Non-finite floats are the one shape the fast encoder cannot reproduce
// (the stdlib errors); it must refuse so the caller reaches that error.
func TestEncodeRefusesNonFinite(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, f := range bad {
		if _, ok := encodePredictResponse(nil, &predictResponse{Prob: f}); ok {
			t.Errorf("Prob=%v: encoder accepted non-finite", f)
		}
		if _, ok := encodePredictResponse(nil, &predictResponse{Minutes: f}); ok {
			t.Errorf("Minutes=%v: encoder accepted non-finite", f)
		}
		if _, ok := encodePredictBatchResponse(nil, &predictBatchResponse{
			Results: []batchItem{{Prob: f}},
		}); ok {
			t.Errorf("batch Prob=%v: encoder accepted non-finite", f)
		}
	}
}

// The steady-state /predict encode must not allocate: the response fits in
// the pooled buffer and every appender works in place.
func TestEncodePredictResponseZeroAllocs(t *testing.T) {
	v := &predictResponse{
		Long: true, Prob: 0.8251, Minutes: 42.5,
		Message: "long wait likely", Tier: "nn", Source: "live",
		Pending: 1234, Running: 567, ModelVersion: 3, ModelID: "abcdef012345",
	}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		b, ok := encodePredictResponse(buf, v)
		if !ok || len(b) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("encodePredictResponse: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodePredictRequestDifferential(t *testing.T) {
	accepted := []string{
		`{}`,
		`{"at":123}`,
		`{"at":-987654321}`,
		`{"at":1,"job":{}}`,
		`{"at":2000,"job":{"id":7,"user":3,"partition":"shared","state":"PENDING","submit":100,"eligible":150,"start":0,"end":0,"req_cpus":8,"req_mem_gb":16.5,"req_nodes":2,"req_gpus":1,"time_limit":7200,"priority":3000,"qos":2,"interactive":true,"depends_on":6}}`,
		"  {  \"at\" : 42 , \"job\" : { \"user\" : 9 } }  \n",
		`{"at":1,"at":2}`,                          // duplicate key: last wins
		`{"job":{"req_mem_gb":1e2}} trailing junk`, // Decoder ignores trailing data
		`{"job":{"req_mem_gb":-0.5,"interactive":false}}`,
		`{"at":9223372036854775807}`, // MaxInt64 exactly
	}
	for i, body := range accepted {
		var fast predictRequest
		if !decodePredictRequest([]byte(body), &fast) {
			t.Errorf("case %d: fast path rejected in-subset body %q", i, body)
			continue
		}
		var want predictRequest
		if err := json.NewDecoder(strings.NewReader(body)).Decode(&want); err != nil {
			t.Fatalf("case %d: stdlib rejected %q: %v", i, body, err)
		}
		if !reflect.DeepEqual(fast, want) {
			t.Errorf("case %d: %q\n fast   %+v\n stdlib %+v", i, body, fast, want)
		}
	}
	// Outside the subset: the fast path must bail (ok=false) so the handler
	// re-parses with encoding/json — whether the body is valid JSON the
	// stdlib accepts (escapes, null, unknown keys → field error) or garbage
	// that needs the stdlib's exact error text.
	bail := []string{
		``,
		`not json`,
		`null`,
		`[1,2]`,
		`{"at":null}`,
		`{"at":1.5}`,                             // float in int field
		`{"at":1e3}`,                             // exponent in int field
		`{"at":99999999999999999999}`,            // overflow
		`{"At":1}`,                               // case-insensitive match is stdlib-only
		`{"unknown":1}`,                          // unknown key
		`{"job":{"partition":"a\"b"}}`,           // escape in string
		`{"job":{"partition":"gp\u00fc"}}`,       // (escaped ü) escape in string
		"{\"job\":{\"partition\":\"gp\u00fc\"}}", // raw non-ASCII string
		`{"job":{"id":4294967296}}`,              // beyond int32 guard
		`{"job":{"interactive":1}}`,
		`{"at":"12"}`,
		`{"at":1,}`,
		`{"at": +5}`,
	}
	for i, body := range bail {
		var fast predictRequest
		if decodePredictRequest([]byte(body), &fast) {
			t.Errorf("bail case %d: fast path accepted %q", i, body)
		}
	}
}

func TestDecodePredictBatchRequestDifferential(t *testing.T) {
	accepted := []string{
		`{}`,
		`{"at":5,"jobs":[]}`,
		`{"at":5,"jobs":[{"user":1},{"user":2,"req_cpus":16},{}]}`,
		`{"jobs":[{"partition":"gpu","req_mem_gb":0.5}],"at":77}`,
	}
	for i, body := range accepted {
		var fast predictBatchRequest
		if !decodePredictBatchRequest([]byte(body), &fast) {
			t.Errorf("case %d: fast path rejected %q", i, body)
			continue
		}
		var want predictBatchRequest
		if err := json.NewDecoder(strings.NewReader(body)).Decode(&want); err != nil {
			t.Fatalf("case %d: stdlib rejected %q: %v", i, body, err)
		}
		// "jobs":[] yields a nil-backed len-0 slice on the fast path and a
		// non-nil empty slice from the stdlib; both behave identically.
		if len(fast.Jobs) == 0 && len(want.Jobs) == 0 {
			fast.Jobs = want.Jobs
		}
		if !reflect.DeepEqual(fast, want) {
			t.Errorf("case %d: %q\n fast   %+v\n stdlib %+v", i, body, fast, want)
		}
	}
	bail := []string{
		`{"jobs":null}`,
		`{"jobs":[null]}`,
		`{"jobs":[{"user":1},]}`,
		`{"jobs":{}}`,
		`{"jobs":[{"nope":1}]}`,
	}
	for i, body := range bail {
		var fast predictBatchRequest
		if decodePredictBatchRequest([]byte(body), &fast) {
			t.Errorf("bail case %d: fast path accepted %q", i, body)
		}
	}
}

// The old package-level writeJSON encoded straight onto the wire: by the
// time Encode failed, the 200 and headers were committed and the error
// vanished. The method buffers first — an unencodable value must now
// produce a logged, structured 500.
func TestWriteJSONEncodeErrorIsLogged500(t *testing.T) {
	var logBuf bytes.Buffer
	s := &Service{logger: slog.New(slog.NewTextHandler(&logBuf, nil))}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/test-path", nil)
	s.writeJSON(rec, req, http.StatusOK, math.NaN()) // json: unsupported value
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500; body %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "encode response") {
		t.Errorf("500 body %q does not name the encode failure", rec.Body.String())
	}
	log := logBuf.String()
	if !strings.Contains(log, "response encode failed") ||
		!strings.Contains(log, "/test-path") {
		t.Errorf("encode failure not logged with path: %q", log)
	}

	// Success path for contrast: buffered write sets Content-Length.
	rec = httptest.NewRecorder()
	s.writeJSON(rec, req, http.StatusOK, map[string]int{"n": 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if got, want := rec.Header().Get("Content-Length"), "8"; got != want {
		t.Errorf("Content-Length %q, want %q (body %q)", got, want, rec.Body.String())
	}
	if rec.Body.String() != "{\"n\":1}\n" {
		t.Errorf("body %q", rec.Body.String())
	}
}

// writePredictResponse must fall back to the stdlib path (and its logged
// 500) for values the fast encoder refuses, and write byte-identical
// output with Content-Length for values it accepts.
func TestWritePredictResponseFallback(t *testing.T) {
	var logBuf bytes.Buffer
	s := &Service{logger: slog.New(slog.NewTextHandler(&logBuf, nil))}
	req := httptest.NewRequest(http.MethodPost, "/predict", nil)

	rec := httptest.NewRecorder()
	s.writePredictResponse(rec, req, &predictResponse{Prob: math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("non-finite response: status %d, want 500", rec.Code)
	}
	if !strings.Contains(logBuf.String(), "response encode failed") {
		t.Errorf("fallback encode failure not logged: %q", logBuf.String())
	}

	v := &predictResponse{Prob: 0.75, Message: "ok", Tier: "nn", Source: "live"}
	rec = httptest.NewRecorder()
	s.writePredictResponse(rec, req, v)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	want := stdlibEncode(t, v)
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("fast body %q != stdlib %q", rec.Body.Bytes(), want)
	}
	if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(len(want)) {
		t.Errorf("Content-Length %q, want %d", got, len(want))
	}
}
