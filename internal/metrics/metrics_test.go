package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMAPE(t *testing.T) {
	// Paper's own example: predicting 1 for 10 is 90% off; 10 for 30 is ~67%.
	got := MAPE([]float64{1}, []float64{10})
	if !almost(got, 90, 1e-9) {
		t.Fatalf("MAPE = %v, want 90", got)
	}
	got = MAPE([]float64{10, 1}, []float64{30, 10})
	want := (100*20.0/30 + 90) / 2
	if !almost(got, want, 1e-9) {
		t.Fatalf("MAPE = %v, want %v", got, want)
	}
	if MAPE(nil, nil) != 0 {
		t.Fatal("empty MAPE should be 0")
	}
}

func TestMAPEFloor(t *testing.T) {
	// Actual 0 would divide by zero without the floor.
	got := MAPE([]float64{5}, []float64{0})
	if !almost(got, 500, 1e-9) {
		t.Fatalf("MAPE with zero actual = %v, want 500 (floored)", got)
	}
}

func TestWithinPercent(t *testing.T) {
	pred := []float64{10, 30, 100}
	act := []float64{20, 20, 20} // errors: 50%, 50%, 400%
	if got := WithinPercent(pred, act, 100); !almost(got, 2.0/3.0, 1e-12) {
		t.Fatalf("WithinPercent = %v", got)
	}
	if got := WithinPercent(pred, act, 40); got != 0 {
		t.Fatalf("WithinPercent(40) = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant series r = %v, want 0", got)
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("n<2 should return 0")
	}
}

// Property: Pearson is invariant under positive affine transforms and
// bounded by [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRng(seed)
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range x {
			scaled[i] = 3*x[i] + 7
		}
		return almost(Pearson(scaled, y), r, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionErrors(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 5}
	if got := MAE(pred, act); !almost(got, 1, 1e-12) {
		t.Fatalf("MAE = %v", got)
	}
	if got := RMSE(pred, act); !almost(got, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if got := R2(act, act); !almost(got, 1, 1e-12) {
		t.Fatalf("R2 of perfect = %v", got)
	}
}

func TestConfusionAndDerived(t *testing.T) {
	pred := []float64{0.9, 0.8, 0.2, 0.4, 0.6}
	label := []bool{true, false, false, true, true}
	c := Confuse(pred, label)
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if !almost(c.Accuracy(), 0.6, 1e-12) {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if !almost(c.Precision(), 2.0/3.0, 1e-12) {
		t.Fatalf("precision = %v", c.Precision())
	}
	if !almost(c.Recall(), 2.0/3.0, 1e-12) {
		t.Fatalf("recall = %v", c.Recall())
	}
	if !almost(c.F1(), 2.0/3.0, 1e-12) {
		t.Fatalf("F1 = %v", c.F1())
	}
	ba := c.BalancedAccuracy()
	if !almost(ba, (2.0/3.0+0.5)/2, 1e-12) {
		t.Fatalf("balanced accuracy = %v", ba)
	}
}

func TestConfusionEmptyEdges(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.BalancedAccuracy() != 0 {
		t.Fatal("empty confusion should produce zeros")
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{0.5, 1, 10, 100, 1000, 0, -3}
	bins := LogHistogram(xs, 4)
	if len(bins) != 4 {
		t.Fatalf("%d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi <= b.Lo {
			t.Fatalf("bad bin [%v, %v)", b.Lo, b.Hi)
		}
	}
	if total != len(xs) {
		t.Fatalf("histogram drops values: %d of %d", total, len(xs))
	}
	// Bins must be increasing.
	for i := 1; i < len(bins); i++ {
		if !almost(bins[i].Lo, bins[i-1].Hi, 1e-9*bins[i].Lo) {
			t.Fatalf("bins not contiguous at %d", i)
		}
	}
	if LogHistogram(nil, 4) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestCalibrationPerfect(t *testing.T) {
	// Deterministic labels matching probabilities exactly in each bin.
	var probs []float64
	var labels []bool
	for i := 0; i < 1000; i++ {
		k := i % 10
		p := float64(k)/10 + 0.05 // 0.05, 0.15, ... 0.95
		probs = append(probs, p)
		// Positive fraction within each probability class is exactly
		// (2k+1)/20 = p.
		labels = append(labels, (i/10)%20 < 2*k+1)
	}
	bins := Calibration(probs, labels, 10)
	if len(bins) != 10 {
		t.Fatalf("%d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 1000 {
		t.Fatalf("bins cover %d", total)
	}
	if ece := ExpectedCalibrationError(bins); ece > 0.02 {
		t.Fatalf("ECE %v for calibrated input", ece)
	}
}

func TestCalibrationMiscalibrated(t *testing.T) {
	// Overconfident classifier: always predicts 0.95, half positive.
	probs := make([]float64, 200)
	labels := make([]bool, 200)
	for i := range probs {
		probs[i] = 0.95
		labels[i] = i%2 == 0
	}
	bins := Calibration(probs, labels, 10)
	if ece := ExpectedCalibrationError(bins); math.Abs(ece-0.45) > 1e-9 {
		t.Fatalf("ECE %v, want 0.45", ece)
	}
}

func TestCalibrationEdges(t *testing.T) {
	if Calibration(nil, nil, 10) != nil {
		t.Fatal("empty input should be nil")
	}
	bins := Calibration([]float64{1.0, 0.0}, []bool{true, false}, 5)
	if bins[4].Count != 1 || bins[0].Count != 1 {
		t.Fatal("boundary probabilities misbinned")
	}
	if ExpectedCalibrationError(nil) != 0 {
		t.Fatal("empty ECE should be 0")
	}
}

func TestCalibrationMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Calibration([]float64{0.5}, []bool{true, false}, 5)
}

func TestAUCPerfectAndChance(t *testing.T) {
	probs := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(probs, labels); !almost(got, 1, 1e-12) {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []bool{false, false, true, true}
	if got := AUC(probs, inverted); !almost(got, 0, 1e-12) {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties: AUC must be exactly 0.5 (midrank correction).
	same := []float64{0.7, 0.7, 0.7, 0.7}
	if got := AUC(same, labels); !almost(got, 0.5, 1e-12) {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One inversion among 2 pos × 2 neg pairs: AUC = 3/4.
	probs := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(probs, labels); !almost(got, 0.75, 1e-12) {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if got := AUC([]float64{0.5, 0.6}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
}
