package trout

import (
	"repro/internal/features"
	"repro/internal/metrics"
)

// permImportance adapts the features package's permutation importance to
// the public experiment API.
func permImportance(predict func([]float64) float64, X [][]float64, y []float64) []features.Importance {
	return features.PermutationImportance(predict, X, y, features.Names, metrics.RMSE, 1)
}
