package intervaltree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func ivKey(iv Interval) [3]int64 { return [3]int64{iv.Lo, iv.Hi, int64(iv.ID)} }

func sortIvs(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		a, b := ivKey(ivs[i]), ivKey(ivs[j])
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func sameIvs(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	sortIvs(a)
	sortIvs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomIntervals(rng *rand.Rand, n int, span int64) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Int63n(span)
		hi := lo + rng.Int63n(span/4+1)
		ivs[i] = Interval{Lo: lo, Hi: hi, ID: i}
	}
	return ivs
}

func TestContainsOverlapsHalfOpen(t *testing.T) {
	iv := Interval{Lo: 5, Hi: 10}
	if iv.Contains(4) || !iv.Contains(5) || !iv.Contains(9) || iv.Contains(10) {
		t.Fatal("Contains wrong at boundaries")
	}
	if !iv.Overlaps(9, 12) || iv.Overlaps(10, 12) || iv.Overlaps(0, 5) || !iv.Overlaps(0, 6) {
		t.Fatal("Overlaps wrong at boundaries")
	}
}

func TestInsertAndStabSimple(t *testing.T) {
	tr := New()
	tr.Insert(Interval{0, 10, 1})
	tr.Insert(Interval{5, 15, 2})
	tr.Insert(Interval{20, 30, 3})
	got := tr.Stab(nil, 7)
	want := []Interval{{0, 10, 1}, {5, 15, 2}}
	if !sameIvs(got, want) {
		t.Fatalf("Stab(7) = %v", got)
	}
	if len(tr.Stab(nil, 16)) != 0 {
		t.Fatal("Stab(16) should be empty")
	}
	if tr.Size() != 3 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestInvertedIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Insert(Interval{Lo: 5, Hi: 1})
}

func TestZeroLengthIntervalNeverStabs(t *testing.T) {
	tr := New()
	tr.Insert(Interval{7, 7, 1})
	if len(tr.Stab(nil, 7)) != 0 {
		t.Fatal("zero-length interval must not contain its endpoint")
	}
}

// TestStabMatchesNaive is the core differential test: random trees against
// the linear scanner at random stab points.
func TestStabMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ivs := randomIntervals(rng, 500, 10000)
	tr := New()
	for _, iv := range ivs {
		tr.Insert(iv)
	}
	naive := &NaiveScan{Intervals: ivs}
	for q := 0; q < 200; q++ {
		at := rng.Int63n(12000) - 1000
		if !sameIvs(tr.Stab(nil, at), naive.Stab(nil, at)) {
			t.Fatalf("Stab(%d) differs from naive", at)
		}
	}
}

func TestOverlapMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ivs := randomIntervals(rng, 300, 5000)
	tr := Build(ivs)
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(6000)
		hi := lo + rng.Int63n(1000)
		got := tr.Overlap(nil, lo, hi)
		var want []Interval
		for _, iv := range ivs {
			if iv.Overlaps(lo, hi) {
				want = append(want, iv)
			}
		}
		if !sameIvs(got, want) {
			t.Fatalf("Overlap(%d,%d) differs from naive", lo, hi)
		}
	}
}

func TestStabVisitMatchesStab(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ivs := randomIntervals(rng, 200, 2000)
	tr := Build(ivs)
	for q := 0; q < 50; q++ {
		at := rng.Int63n(2500)
		var visited []Interval
		tr.StabVisit(at, func(iv Interval) { visited = append(visited, iv) })
		if !sameIvs(visited, tr.Stab(nil, at)) {
			t.Fatalf("StabVisit(%d) differs from Stab", at)
		}
	}
}

// TestAVLBalanced: height must stay O(log n) under sequential insertion
// (the worst case for unbalanced BSTs).
func TestAVLBalanced(t *testing.T) {
	tr := New()
	n := 4096
	for i := 0; i < n; i++ {
		tr.Insert(Interval{int64(i), int64(i + 5), i})
	}
	// AVL height bound: 1.44*log2(n+2). For n=4096 that's ≈ 18.
	if h := tr.Height(); h > 19 {
		t.Fatalf("height %d too large for AVL with %d nodes", h, n)
	}
	if tr.Size() != n {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestBuildMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ivs := randomIntervals(rng, 400, 3000)
	built := Build(ivs)
	inserted := New()
	for _, iv := range ivs {
		inserted.Insert(iv)
	}
	for q := 0; q < 100; q++ {
		at := rng.Int63n(3500)
		if !sameIvs(built.Stab(nil, at), inserted.Stab(nil, at)) {
			t.Fatalf("Build tree differs from inserted tree at %d", at)
		}
	}
	if built.Height() > inserted.Height() {
		t.Fatal("Build should be at least as balanced as AVL insertion")
	}
}

// TestBuildChunkedEquivalence: the paper's chunk+overlap+merge construction
// must be semantically identical to a single build.
func TestBuildChunkedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ivs := randomIntervals(rng, 2500, 20000)
	whole := Build(ivs)
	chunked := BuildChunked(ivs, 1000, 100)
	if chunked.Size() != whole.Size() {
		t.Fatalf("chunked size %d != whole %d", chunked.Size(), whole.Size())
	}
	for q := 0; q < 300; q++ {
		at := rng.Int63n(22000)
		if !sameIvs(chunked.Stab(nil, at), whole.Stab(nil, at)) {
			t.Fatalf("chunked differs at %d", at)
		}
	}
}

func TestBuildChunkedSmallInput(t *testing.T) {
	ivs := []Interval{{0, 5, 0}, {3, 9, 1}}
	tr := BuildChunked(ivs, 100, 10)
	if tr.Size() != 2 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestBuildChunkedBadParamsPanics(t *testing.T) {
	for _, c := range []struct{ chunk, overlap int }{{0, 0}, {10, 10}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for chunk=%d overlap=%d", c.chunk, c.overlap)
				}
			}()
			BuildChunked(make([]Interval, 20), c.chunk, c.overlap)
		}()
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := Build([]Interval{{0, 10, 1}, {5, 20, 2}})
	b := Build([]Interval{{5, 20, 2}, {30, 40, 3}}) // {5,20,2} duplicated
	m := Merge(a, b)
	if m.Size() != 3 {
		t.Fatalf("merged size %d, want 3", m.Size())
	}
	if got := m.Stab(nil, 6); len(got) != 2 {
		t.Fatalf("Stab(6) after merge = %v", got)
	}
}

func TestAllSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ivs := randomIntervals(rng, 100, 500)
	tr := Build(ivs)
	all := tr.All(nil)
	if len(all) != 100 {
		t.Fatalf("All returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Lo < all[i-1].Lo {
			t.Fatal("All not sorted by Lo")
		}
	}
}

// Property: for random interval sets, every stab result is exactly the set
// of intervals containing the point.
func TestStabProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		ivs := randomIntervals(rng, n, 200)
		tr := Build(ivs)
		at := rng.Int63n(250)
		got := tr.Stab(nil, at)
		want := (&NaiveScan{Intervals: ivs}).Stab(nil, at)
		return sameIvs(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeStab10k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ivs := randomIntervals(rng, 10000, 1<<20)
	tr := Build(ivs)
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		tr.StabVisit(rng.Int63n(1<<20), func(Interval) { count++ })
	}
}

func BenchmarkNaiveStab10k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ivs := randomIntervals(rng, 10000, 1<<20)
	sc := &NaiveScan{Intervals: ivs}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		sc.StabVisit(rng.Int63n(1<<20), func(Interval) { count++ })
	}
}

func BenchmarkBuildChunked100k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ivs := randomIntervals(rng, 100000, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildChunked(ivs, 100000, 10000)
	}
}
