package tensor

import (
	"fmt"
	"math"
)

// Solve returns x solving A·x = b by Gaussian elimination with partial
// pivoting. A must be square (n×n) and b length n; A and b are not
// modified. Returns an error for singular systems.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("tensor: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("tensor: Solve got %d-vector for %dx%d system", len(b), n, n)
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("tensor: singular system (pivot %d)", col)
		}
		if pivot != col {
			pr, cr := m.Row(pivot), m.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		// Eliminate below.
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		row := m.Row(r)
		s := x[r]
		for j := r + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[r] = s / row[r]
	}
	return x, nil
}
