package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// ErrorBody is the structured JSON payload every middleware-generated
// error response carries, so clients never have to parse free-form text.
type ErrorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// WriteError writes a structured JSON error response.
func WriteError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: msg, Status: status})
}

// BodyErrorStatus maps a request-body read/decode error to an HTTP status:
// 413 when the MaxBytes limit was hit, 400 otherwise.
func BodyErrorStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Recover converts handler panics into structured JSON 500s. logf (may be
// nil) receives a diagnostic line per recovered panic.
func Recover(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if logf != nil {
					logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				}
				WriteError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// MaxBytes caps request-body size at limit bytes (0 disables). Oversized
// bodies make the handler's reads fail with *http.MaxBytesError, which
// BodyErrorStatus maps to a 413; bodies whose declared Content-Length
// already exceeds the limit are rejected up front.
func MaxBytes(next http.Handler, limit int64) http.Handler {
	if limit <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.ContentLength > limit {
			WriteError(w, http.StatusRequestEntityTooLarge,
				"request body too large")
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// bufferedResponse captures a handler's response so Timeout can discard it
// if the deadline fires first. Only the handler goroutine touches it until
// the handler returns; flush runs after that, so no locking is needed.
type bufferedResponse struct {
	hdr    http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header {
	if b.hdr == nil {
		b.hdr = http.Header{}
	}
	return b.hdr
}

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	for k, vs := range b.hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body)
}

// Timeout enforces a per-request deadline: the handler runs with a context
// that expires after d, and if it has not finished by then the client gets
// a JSON 504 while the handler's late writes are discarded. A panic in the
// handler goroutine becomes a JSON 500 (and is logged via logf, may be nil).
func Timeout(next http.Handler, d time.Duration, logf func(format string, args ...any)) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		// Bound body reads by the same deadline. Without this a handler
		// goroutine stuck reading a stalled upload holds the request-body
		// mutex past our 504, and the server's end-of-request bookkeeping
		// deadlocks on it (net/http's body.Read holds b.mu across the
		// blocking socket read).
		// The skew keeps the 504 path winning the race: the stuck read
		// unblocks just after the deadline response, not just before.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Now().Add(d + 500*time.Millisecond))
		buf := &bufferedResponse{}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
					return
				}
				close(done)
			}()
			next.ServeHTTP(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			// Clear the read deadline so keep-alive reuse of this
			// connection isn't poisoned by an expired deadline.
			_ = rc.SetReadDeadline(time.Time{})
			buf.flush(w)
		case p := <-panicked:
			if logf != nil {
				logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
			}
			WriteError(w, http.StatusInternalServerError, "internal server error")
		case <-ctx.Done():
			WriteError(w, http.StatusGatewayTimeout, "request deadline exceeded")
		}
	})
}
