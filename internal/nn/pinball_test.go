package nn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/tensor"
)

func TestPinballLossValues(t *testing.T) {
	pred := tensor.FromRows([][]float64{{0}, {10}})
	tgt := tensor.FromRows([][]float64{{4}, {4}})
	// tau=0.5: mean(0.5*4, 0.5*6) = mean(2, 3) = 2.5.
	l, _ := PinballLoss(0.5, pred, tgt)
	if math.Abs(l-2.5) > 1e-12 {
		t.Fatalf("pinball(0.5) = %v, want 2.5", l)
	}
	// tau=0.9 penalizes under-prediction 9× more than over-prediction.
	under, _ := PinballLoss(0.9, tensor.FromRows([][]float64{{0}}), tensor.FromRows([][]float64{{1}}))
	over, _ := PinballLoss(0.9, tensor.FromRows([][]float64{{2}}), tensor.FromRows([][]float64{{1}}))
	if math.Abs(under/over-9) > 1e-9 {
		t.Fatalf("asymmetry %v, want 9", under/over)
	}
}

func TestPinballGradientNumeric(t *testing.T) {
	const h = 1e-6
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		for _, p := range []float64{-1.5, 0.3, 2.0} {
			pred := tensor.FromRows([][]float64{{p}})
			tgt := tensor.FromRows([][]float64{{0.5}})
			_, grad := PinballLoss(tau, pred, tgt)
			lp, _ := PinballLoss(tau, tensor.FromRows([][]float64{{p + h}}), tgt)
			lm, _ := PinballLoss(tau, tensor.FromRows([][]float64{{p - h}}), tgt)
			num := (lp - lm) / (2 * h)
			if math.Abs(grad.Data[0]-num) > 1e-6 {
				t.Fatalf("tau=%v p=%v: grad %v, numeric %v", tau, p, grad.Data[0], num)
			}
		}
	}
}

func TestPinballBadTauPanics(t *testing.T) {
	for _, tau := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tau=%v accepted", tau)
				}
			}()
			PinballLoss(tau, tensor.New(1, 1), tensor.New(1, 1))
		}()
	}
}

// TestPinballRecoversQuantile: a constant model trained with pinball loss
// must converge to the target distribution's tau-quantile.
func TestPinballRecoversQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 512
	samples := make([]float64, n)
	x := tensor.New(n, 1) // constant input: model output is one number
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64() * 10 // skewed, like queue times
		samples[i] = v
		x.Set(i, 0, 1)
		y.Set(i, 0, v)
	}
	sort.Float64s(samples)
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		net := NewNetwork(rand.New(rand.NewSource(41)), DenseSpec(1, 1))
		tr := Trainer{Net: net, Opt: NewAdam(0.1), Cfg: TrainConfig{
			Epochs: 300, BatchSize: 128, Workers: 1, Seed: 42,
			LossFunc: func(p, tg *tensor.Matrix) (float64, *tensor.Matrix) {
				return PinballLoss(tau, p, tg)
			},
		}}
		tr.Fit(x, y)
		got := net.Predict1([]float64{1})
		want := samples[int(tau*float64(n))]
		if math.Abs(got-want) > want*0.25+1 {
			t.Fatalf("tau=%v: model %v, empirical quantile %v", tau, got, want)
		}
	}
}
