// Package hyperopt is the Optuna stand-in (§III): random search over typed
// hyperparameter spaces with a successive-halving pruner. The paper tunes
// learning rate, epochs, hidden-layer count and sizes, dropout, feature
// subsets and activation with Optuna; the same spaces are expressible here.
package hyperopt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Param declares one dimension of the search space.
type Param struct {
	Name string
	// Exactly one of the following shapes applies.
	Min, Max float64  // numeric range (uniform)
	Log      bool     // sample numeric on a log scale
	Int      bool     // round numeric to integer
	Choices  []string // categorical
}

// Uniform declares a uniform float parameter.
func Uniform(name string, min, max float64) Param { return Param{Name: name, Min: min, Max: max} }

// LogUniform declares a log-uniform float parameter (e.g. learning rate).
func LogUniform(name string, min, max float64) Param {
	return Param{Name: name, Min: min, Max: max, Log: true}
}

// IntRange declares an integer parameter in [min, max].
func IntRange(name string, min, max int) Param {
	return Param{Name: name, Min: float64(min), Max: float64(max), Int: true}
}

// Categorical declares a choice parameter.
func Categorical(name string, choices ...string) Param {
	return Param{Name: name, Choices: choices}
}

// Trial is one sampled configuration.
type Trial struct {
	ID     int
	Floats map[string]float64
	Ints   map[string]int
	Cats   map[string]string
	Score  float64 // lower is better
	Pruned bool
	Budget int // resource units granted (e.g. epochs)
}

// Float returns a float parameter value.
func (t *Trial) Float(name string) float64 { return t.Floats[name] }

// Int returns an integer parameter value.
func (t *Trial) Int(name string) int { return t.Ints[name] }

// Cat returns a categorical parameter value.
func (t *Trial) Cat(name string) string { return t.Cats[name] }

// Objective evaluates a trial at the given resource budget and returns a
// score to minimize.
type Objective func(t *Trial, budget int) float64

// Config controls the search.
type Config struct {
	Trials int // 0 means 20
	Seed   int64
	// Workers is the number of goroutines evaluating trials concurrently
	// (within each successive-halving rung too); 0 or 1 evaluates
	// serially. Results are bit-identical to the serial path for a fixed
	// Seed: every trial samples its configuration from its own RNG seeded
	// with Seed+ID, so neither sampling nor scoring depends on evaluation
	// order. Objectives must be safe to call concurrently when Workers > 1.
	Workers int
	// Halving enables successive halving: trials are evaluated at
	// MinBudget, the best 1/Eta survive to Eta×budget, and so on up to
	// MaxBudget.
	Halving              bool
	MinBudget, MaxBudget int
	Eta                  int // halving factor; 0 means 3
}

// Result is the outcome of a search.
type Result struct {
	Best   *Trial
	Trials []*Trial
}

// Search samples configurations and minimizes the objective.
func Search(cfg Config, space []Param, obj Objective) (Result, error) {
	if len(space) == 0 {
		return Result{}, fmt.Errorf("hyperopt: empty search space")
	}
	if obj == nil {
		return Result{}, fmt.Errorf("hyperopt: nil objective")
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 20
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 3
	}
	if cfg.Halving {
		if cfg.MinBudget <= 0 || cfg.MaxBudget < cfg.MinBudget {
			return Result{}, fmt.Errorf("hyperopt: invalid halving budgets %d..%d", cfg.MinBudget, cfg.MaxBudget)
		}
	}
	for _, p := range space {
		if len(p.Choices) == 0 && p.Max < p.Min {
			return Result{}, fmt.Errorf("hyperopt: parameter %q has max < min", p.Name)
		}
		if p.Log && p.Min <= 0 {
			return Result{}, fmt.Errorf("hyperopt: log parameter %q needs positive min", p.Name)
		}
	}

	// Each trial samples from an RNG derived from Seed+ID, so trial i's
	// configuration is the same whether trials are drawn or evaluated in
	// any order — the property that makes Workers > 1 bit-identical to
	// the serial path.
	trials := make([]*Trial, cfg.Trials)
	for i := range trials {
		trials[i] = sample(rand.New(rand.NewSource(cfg.Seed+int64(i))), space, i)
	}

	if !cfg.Halving {
		evalAll(trials, 1, cfg.Workers, obj)
	} else {
		// Successive halving: everyone starts at MinBudget; the best
		// 1/Eta advance with Eta× the budget until MaxBudget.
		alive := trials
		budget := cfg.MinBudget
		for {
			evalAll(alive, budget, cfg.Workers, obj)
			if budget >= cfg.MaxBudget || len(alive) <= 1 {
				break
			}
			// Ties break on trial ID so the rung cut is deterministic
			// regardless of evaluation order.
			sort.Slice(alive, func(a, b int) bool {
				if alive[a].Score != alive[b].Score {
					return alive[a].Score < alive[b].Score
				}
				return alive[a].ID < alive[b].ID
			})
			keep := len(alive) / cfg.Eta
			if keep < 1 {
				keep = 1
			}
			for _, t := range alive[keep:] {
				t.Pruned = true
			}
			alive = alive[:keep]
			budget *= cfg.Eta
			if budget > cfg.MaxBudget {
				budget = cfg.MaxBudget
			}
		}
	}

	best := trials[0]
	for _, t := range trials {
		if t.Pruned {
			continue
		}
		if best.Pruned || t.Score < best.Score {
			best = t
		}
	}
	return Result{Best: best, Trials: trials}, nil
}

// evalAll scores every trial at the given budget, fanning out across a
// worker pool when workers > 1. Scores land in each trial's own struct, so
// evaluation order cannot affect the outcome — the parallel rung is
// bit-identical to the serial one.
func evalAll(trials []*Trial, budget, workers int, obj Objective) {
	for _, t := range trials {
		t.Budget = budget
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	if workers <= 1 {
		for _, t := range trials {
			t.Score = obj(t, budget)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(trials) {
					return
				}
				trials[i].Score = obj(trials[i], budget)
			}
		}()
	}
	wg.Wait()
}

// sample draws one configuration.
func sample(rng *rand.Rand, space []Param, id int) *Trial {
	t := &Trial{
		ID:     id,
		Floats: map[string]float64{},
		Ints:   map[string]int{},
		Cats:   map[string]string{},
	}
	for _, p := range space {
		switch {
		case len(p.Choices) > 0:
			t.Cats[p.Name] = p.Choices[rng.Intn(len(p.Choices))]
		case p.Int:
			lo, hi := int(p.Min), int(p.Max)
			t.Ints[p.Name] = lo + rng.Intn(hi-lo+1)
		case p.Log:
			v := math.Exp(math.Log(p.Min) + rng.Float64()*(math.Log(p.Max)-math.Log(p.Min)))
			t.Floats[p.Name] = v
		default:
			t.Floats[p.Name] = p.Min + rng.Float64()*(p.Max-p.Min)
		}
	}
	return t
}
