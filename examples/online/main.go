// Online deployment evaluation: replays the most recent slice of the trace
// as if TROUT were running in production — every job gets a prediction from
// a live queue snapshot at its eligibility instant (no completed-record
// features), and rolling accuracy is reported as the replay advances. This
// is the deployment loop the paper's CLI serves, measured end to end.
package main

import (
	"fmt"
	"log"

	trout "repro"
)

func main() {
	log.SetFlags(0)

	p := trout.DefaultPipeline(10000, 33)
	p.Model.Classifier.Epochs = 10
	p.Model.Regressor.Epochs = 20
	fmt.Println("training on history, replaying the most recent 10% live...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := trout.TrainHoldout(ds, p.Model, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := trout.NewBundle(m, ds, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the last 10 % of jobs in eligibility order.
	start := ds.Len() - ds.Len()/10
	var (
		total, correct     int
		longTotal, longHit int
		sumAbsPct          float64
		regressed          int
	)
	for k, i := 0, start; i < ds.Len(); i, k = i+1, k+1 {
		job := ds.Jobs[i]
		snap, err := trout.SnapshotFromTrace(tr, job.ID)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := bundle.PredictSnapshot(snap)
		if err != nil {
			log.Fatal(err)
		}
		actual := ds.QueueMinutes[i]
		actualLong := actual >= m.Cfg.CutoffMinutes

		total++
		if pred.Long == actualLong {
			correct++
		}
		if actualLong {
			longTotal++
			if pred.Long {
				longHit++
				den := actual
				if den < 1 {
					den = 1
				}
				diff := pred.Minutes - actual
				if diff < 0 {
					diff = -diff
				}
				sumAbsPct += 100 * diff / den
				regressed++
			}
		}
		if k%200 == 199 {
			fmt.Printf("  after %4d jobs: classifier %.1f%% correct, long-job recall %.1f%%\n",
				total, 100*float64(correct)/float64(total), recall(longHit, longTotal))
		}
	}
	fmt.Printf("\nreplay complete: %d jobs\n", total)
	fmt.Printf("classifier routing accuracy: %.2f%%\n", 100*float64(correct)/float64(total))
	fmt.Printf("long-job recall: %.2f%% (%d of %d)\n", recall(longHit, longTotal), longHit, longTotal)
	if regressed > 0 {
		fmt.Printf("regression MAPE on correctly-routed long jobs: %.2f%%\n", sumAbsPct/float64(regressed))
	}
}

func recall(hit, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(hit) / float64(total)
}
