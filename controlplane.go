package trout

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tscv"
)

// servingBundle pairs the bundle answering predictions with its registry
// identity. The pair is swapped atomically as one unit, so a response's
// (model_version, model_id) tags always name the bundle that actually
// computed it.
type servingBundle struct {
	b *Bundle
	// version is the control-plane registry version (0 = the boot bundle,
	// which predates the registry).
	version int
}

// CurrentModel returns the serving bundle and its registry version.
func (s *Service) CurrentModel() (*Bundle, int) {
	sb := s.serving.Load()
	return sb.b, sb.version
}

// SwapBundle atomically replaces the serving bundle after the
// compatibility guard passes, keeping the displaced pair as the rollback
// target. In-flight requests finish on whichever bundle they loaded;
// no request ever observes a half-swapped state. An incompatible
// candidate (wrong feature width, missing scaler or runtime predictor,
// lost partitions) is refused with an IncompatibleBundleError and the
// incumbent keeps serving.
func (s *Service) SwapBundle(b *Bundle, version int) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.serving.Load()
	if err := b.CompatibleWith(cur.b); err != nil {
		return err
	}
	s.applyFastInference(b)
	s.prev = cur
	s.serving.Store(&servingBundle{b: b, version: version})
	s.swapsTotal.Inc("promote")
	if s.logger != nil {
		s.logger.Info("serving bundle swapped",
			slog.Int("version", version), slog.String("fingerprint", b.Fingerprint),
			slog.Int("prev_version", cur.version))
	}
	return nil
}

// RollbackBundle restores the bundle displaced by the last SwapBundle —
// the instant-rollback path for a promotion that regresses online. One
// level deep: a second rollback without an intervening swap errors.
func (s *Service) RollbackBundle() error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.prev == nil {
		return fmt.Errorf("trout: no previous bundle to roll back to")
	}
	s.serving.Store(s.prev)
	if s.logger != nil {
		s.logger.Warn("serving bundle rolled back",
			slog.Int("version", s.prev.version), slog.String("fingerprint", s.prev.b.Fingerprint))
	}
	s.prev = nil
	s.swapsTotal.Inc("rollback")
	return nil
}

// bundlePredictor adapts a Bundle's tiered fallback chain to the control
// plane's shadow-scoring Predictor interface.
type bundlePredictor struct{ b *Bundle }

func (p bundlePredictor) ShadowPredict(snap *features.Snapshot) (float64, float64, bool, error) {
	tp, err := p.b.PredictWithFallback(snap)
	if err != nil {
		return 0, 0, false, err
	}
	return tp.Prob, tp.Minutes, tp.Long, nil
}

// ControlPlaneConfig configures AttachControlPlane. Zero values pick
// production defaults; only RegistryDir is required.
type ControlPlaneConfig struct {
	// RegistryDir is the on-disk model registry root.
	RegistryDir string
	// RegistryRetain is how many non-active blobs to keep (0 = 5,
	// negative keeps all).
	RegistryRetain int

	// DriftThreshold / MAEThreshold / MinWindow / MinInterval /
	// CheckInterval drive the automatic retrain trigger; see
	// controlplane.Options for semantics and defaults.
	DriftThreshold float64
	MAEThreshold   float64
	MinWindow      int
	MinInterval    time.Duration
	CheckInterval  time.Duration

	// ShadowWindow / ShadowTimeout / ShadowQueue shape candidate scoring.
	ShadowWindow  int
	ShadowTimeout time.Duration
	ShadowQueue   int

	// MAERatio / HitRateSlack are the promotion gate; RollbackWindow /
	// RollbackFactor the post-promotion probation.
	MAERatio       float64
	HitRateSlack   float64
	RollbackWindow int
	RollbackFactor float64

	// MinTrainJobs is the smallest completed-job corpus the default
	// trainer accepts (0 = 500). The livestate engine retains ~25h of
	// history, so this also bounds staleness of what a retrain can see.
	MinTrainJobs int
	// TuneTrials > 0 runs the parallel hyperparameter search over the
	// regressor space before the final fit (expensive; 0 reuses the
	// incumbent's configuration).
	TuneTrials int
	// TestFraction is the most-recent holdout used for offline eval
	// scores recorded in the manifest (0 = 1/6, the paper's protocol).
	TestFraction float64

	// Trainer overrides the default retrain path (tests inject synthetic
	// candidates through this).
	Trainer func(ctx context.Context) (*controlplane.Candidate, error)

	Logger *slog.Logger
}

// ControlPlane ties a Service to its continual-learning loop: the
// versioned registry, the retrain controller, and the serving hot-swap.
type ControlPlane struct {
	svc *Service
	reg *controlplane.Registry
	ctl *controlplane.Controller
}

// Registry exposes the model registry.
func (cp *ControlPlane) Registry() *controlplane.Registry { return cp.reg }

// Controller exposes the retrain controller.
func (cp *ControlPlane) Controller() *controlplane.Controller { return cp.ctl }

// Run executes the control loop until ctx is canceled.
func (cp *ControlPlane) Run(ctx context.Context) error { return cp.ctl.Run(ctx) }

// AttachControlPlane opens the model registry, resumes the last promoted
// version (if the registry has one and it is compatible), and wires the
// drift→retrain→shadow→swap controller to the service. Call before the
// service starts answering traffic; start the loop with cp.Run.
func (s *Service) AttachControlPlane(cfg ControlPlaneConfig) (*ControlPlane, error) {
	log := cfg.Logger
	if log == nil {
		log = s.logger
	}
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	reg, err := controlplane.OpenRegistry(cfg.RegistryDir, cfg.RegistryRetain)
	if err != nil {
		return nil, err
	}

	// Resume: a previous process promoted a version; serve it again
	// rather than the (older) boot bundle. Incompatible or unreadable
	// blobs log and fall back to the boot bundle — never fail startup
	// over a model we can outlive.
	if v := reg.ActiveVersion(); v != 0 {
		if m, blob, err := reg.Bundle(v); err != nil {
			log.Warn("controlplane: cannot resume active version; serving boot bundle",
				slog.Int("version", v), slog.Any("error", err))
		} else if nb, err := LoadBundle(bytes.NewReader(blob)); err != nil {
			log.Warn("controlplane: active version blob undecodable; serving boot bundle",
				slog.Int("version", v), slog.Any("error", err))
		} else if err := s.SwapBundle(nb, m.Version); err != nil {
			log.Warn("controlplane: active version incompatible; serving boot bundle",
				slog.Int("version", v), slog.Any("error", err))
		} else {
			log.Info("controlplane: resumed active version",
				slog.Int("version", m.Version), slog.String("fingerprint", nb.Fingerprint))
		}
	}

	train := cfg.Trainer
	if train == nil {
		train = s.defaultTrainer(cfg)
	}
	ctl, err := controlplane.NewController(controlplane.Options{
		Registry: reg,
		Train:    train,
		Drift:    func() obs.OnlineStats { return s.tracker.Stats() },
		Promote: func(m controlplane.Manifest, _ []byte) error {
			_, blob, err := reg.Bundle(m.Version)
			if err != nil {
				return err
			}
			nb, err := LoadBundle(bytes.NewReader(blob))
			if err != nil {
				return err
			}
			return s.SwapBundle(nb, m.Version)
		},
		Rollback: s.RollbackBundle,
		IncumbentID: func() string {
			b, _ := s.CurrentModel()
			return b.Fingerprint
		},
		CutoffMinutes:  s.serving.Load().b.cutoffMinutes(),
		DriftThreshold: cfg.DriftThreshold,
		MAEThreshold:   cfg.MAEThreshold,
		MinWindow:      cfg.MinWindow,
		MinInterval:    cfg.MinInterval,
		CheckInterval:  cfg.CheckInterval,
		ShadowWindow:   cfg.ShadowWindow,
		ShadowTimeout:  cfg.ShadowTimeout,
		ShadowQueue:    cfg.ShadowQueue,
		MAERatio:       cfg.MAERatio,
		HitRateSlack:   cfg.HitRateSlack,
		RollbackWindow: cfg.RollbackWindow,
		RollbackFactor: cfg.RollbackFactor,
		Logger:         log,
		Tracer:         s.tracer,
	})
	if err != nil {
		return nil, err
	}
	ctl.Register(s.reg)
	s.cpReg.Store(reg)
	s.ctl.Store(ctl)
	return &ControlPlane{svc: s, reg: reg, ctl: ctl}, nil
}

// finiteOr clamps NaN/Inf/negative eval scores to fallback so the manifest
// validator never rejects a legitimate candidate over an empty holdout.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fallback
	}
	return v
}

// defaultTrainer is the production retrain path: rebuild the training set
// from the livestate engine's realized waits (jobs that completed the
// submit→start→end lifecycle inside the retention window), re-engineer
// the 33 features, optionally re-run the parallel hyperparameter search,
// fit the hierarchical model plus its fallback tiers (histogram-GBDT
// baseline, partition medians), and serialize the bundle for the registry.
func (s *Service) defaultTrainer(cfg ControlPlaneConfig) func(ctx context.Context) (*controlplane.Candidate, error) {
	minJobs := cfg.MinTrainJobs
	if minJobs <= 0 {
		minJobs = 500
	}
	testFraction := cfg.TestFraction
	if testFraction <= 0 {
		testFraction = 1.0 / 6.0
	}
	return func(ctx context.Context) (*controlplane.Candidate, error) {
		eng := s.live.Engine()
		watermark := eng.Now()
		incumbent, _ := s.CurrentModel()
		cluster := incumbent.Cluster

		// Records naming partitions the serving cluster spec does not know
		// (added or renamed after the bundle was trained) are skipped, not
		// fatal: one stray record must not poison every retrain until it
		// ages out of the engine's retention window.
		all := eng.CompletedJobs()
		jobs := all[:0]
		for _, j := range all {
			if cluster.Partition(j.Partition) != nil {
				jobs = append(jobs, j)
			}
		}
		if skipped := len(all) - len(jobs); skipped > 0 && s.logger != nil {
			s.logger.Warn("controlplane: retrain skipping jobs on partitions unknown to the serving cluster spec",
				slog.Int("skipped", skipped), slog.Int("usable", len(jobs)))
		}
		if len(jobs) < minJobs {
			return nil, fmt.Errorf("trout: retrain needs %d completed jobs in the engine window, have %d usable", minJobs, len(jobs))
		}

		tr := &Trace{Jobs: jobs}
		ds, err := features.Build(tr, &cluster, features.Options{Seed: incumbent.Model.Cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("trout: retrain features: %w", err)
		}
		modelCfg := incumbent.Model.Cfg
		tuned := false
		if cfg.TuneTrials > 0 {
			res, err := TuneRegressor(ds, modelCfg, TuneConfig{
				Trials: cfg.TuneTrials, Seed: modelCfg.Seed + 1,
				Workers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				return nil, fmt.Errorf("trout: retrain tuning: %w", err)
			}
			modelCfg, tuned = res.Best, true
		}
		fold, err := tscv.HoldoutRecent(ds.Len(), testFraction)
		if err != nil {
			return nil, fmt.Errorf("trout: retrain holdout: %w", err)
		}
		m, err := core.TrainCtxHooked(ctx, ds, fold.Train, modelCfg, s.TrainHooks())
		if err != nil {
			return nil, fmt.Errorf("trout: retrain: %w", err)
		}
		regEval := core.EvaluateRegression(m, ds, fold.Test)
		clsEval := core.EvaluateClassifier(m, ds, fold.Test)

		nb, err := NewBundle(m, ds, &cluster)
		if err != nil {
			return nil, fmt.Errorf("trout: retrain bundle: %w", err)
		}
		var buf bytes.Buffer
		if err := nb.Save(&buf); err != nil {
			return nil, fmt.Errorf("trout: retrain serialize: %w", err)
		}
		return &controlplane.Candidate{
			Blob:      buf.Bytes(),
			Predictor: bundlePredictor{b: nb},
			Eval: controlplane.Eval{
				MAEMinutes: finiteOr(regEval.MAE, 0),
				MAPE:       finiteOr(regEval.MAPE, 0),
				HitRate:    finiteOr(clsEval.Accuracy(), 0),
			},
			Hyperparams: hyperparamMap(modelCfg, tuned),
			Samples:     ds.Len(),
			Watermark:   watermark,
		}, nil
	}
}

// hyperparamMap flattens the training configuration into the manifest's
// schema-stable string map.
func hyperparamMap(cfg ModelConfig, tuned bool) map[string]string {
	ints := func(hidden []int) string {
		parts := make([]string, len(hidden))
		for i, h := range hidden {
			parts[i] = strconv.Itoa(h)
		}
		return strings.Join(parts, "x")
	}
	return map[string]string{
		"cutoff_minutes": strconv.FormatFloat(cfg.CutoffMinutes, 'g', -1, 64),
		"scaler":         string(cfg.Scaler),
		"seed":           strconv.FormatInt(cfg.Seed, 10),
		"tuned":          strconv.FormatBool(tuned),
		"cls_hidden":     ints(cfg.Classifier.Hidden),
		"cls_lr":         strconv.FormatFloat(cfg.Classifier.LearnRate, 'g', -1, 64),
		"cls_epochs":     strconv.Itoa(cfg.Classifier.Epochs),
		"reg_hidden":     ints(cfg.Regressor.Hidden),
		"reg_lr":         strconv.FormatFloat(cfg.Regressor.LearnRate, 'g', -1, 64),
		"reg_epochs":     strconv.Itoa(cfg.Regressor.Epochs),
		"reg_dropout":    strconv.FormatFloat(cfg.Regressor.Dropout, 'g', -1, 64),
		"reg_activation": string(cfg.Regressor.Activation),
		"smote":          strconv.FormatBool(cfg.UseSMOTE),
	}
}

// ---- admin endpoints ----

// handleAdminRetrain queues a manual retrain cycle: 202 when accepted,
// 409 when a cycle is already running or queued, 503 without an attached
// control plane.
func (s *Service) handleAdminRetrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	ctl := s.ctl.Load()
	if ctl == nil {
		resilience.WriteError(w, http.StatusServiceUnavailable, "retrain: no control plane attached (start with -registry-dir)")
		return
	}
	accepted, msg := ctl.TriggerRetrain()
	code := http.StatusAccepted
	if !accepted {
		code = http.StatusConflict
	}
	s.writeJSON(w, r, code, map[string]any{"accepted": accepted, "message": msg})
}

// adminModelsResponse is the GET /admin/models payload.
type adminModelsResponse struct {
	// Serving identifies the bundle answering predictions right now.
	ServingVersion     int    `json:"serving_version"`
	ServingFingerprint string `json:"serving_fingerprint,omitempty"`
	// Active is the registry's recorded active version (0 = boot bundle).
	Active int `json:"active"`
	// Controller snapshots the retrain lifecycle.
	Controller controlplane.Status `json:"controller"`
	// Versions is every registry manifest entry, oldest first.
	Versions []controlplane.Manifest `json:"versions"`
}

func (s *Service) handleAdminModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	reg, ctl := s.cpReg.Load(), s.ctl.Load()
	if reg == nil || ctl == nil {
		resilience.WriteError(w, http.StatusServiceUnavailable, "models: no control plane attached (start with -registry-dir)")
		return
	}
	b, version := s.CurrentModel()
	s.writeJSON(w, r, http.StatusOK, adminModelsResponse{
		ServingVersion:     version,
		ServingFingerprint: b.Fingerprint,
		Active:             reg.ActiveVersion(),
		Controller:         ctl.Status(),
		Versions:           reg.List(),
	})
}

// adminSwapRequest is the POST /admin/swap body: swap a registry version
// into serving, or roll back to the previously serving bundle.
type adminSwapRequest struct {
	Version  int  `json:"version"`
	Rollback bool `json:"rollback"`
}

// handleAdminSwap is the operator override: promote a specific registry
// version (bypassing shadow scoring) or undo the last swap. The
// compatibility guard still applies — an incompatible bundle answers a
// structured 422 and the incumbent keeps serving.
func (s *Service) handleAdminSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	var req adminSwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("swap: bad body: %v", err))
		return
	}
	if req.Rollback {
		if err := s.RollbackBundle(); err != nil {
			resilience.WriteError(w, http.StatusConflict, err.Error())
			return
		}
		if reg := s.cpReg.Load(); reg != nil {
			_, version := s.CurrentModel()
			_ = reg.SetActive(version)
		}
		b, version := s.CurrentModel()
		s.writeJSON(w, r, http.StatusOK, map[string]any{
			"serving_version": version, "serving_fingerprint": b.Fingerprint, "rolled_back": true,
		})
		return
	}
	reg := s.cpReg.Load()
	if reg == nil {
		resilience.WriteError(w, http.StatusServiceUnavailable, "swap: no control plane attached (start with -registry-dir)")
		return
	}
	if req.Version <= 0 {
		resilience.WriteError(w, http.StatusBadRequest, "swap: need version > 0 (or rollback: true)")
		return
	}
	m, blob, err := reg.Bundle(req.Version)
	if err != nil {
		resilience.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	nb, err := LoadBundle(bytes.NewReader(blob))
	if err != nil {
		resilience.WriteError(w, http.StatusInternalServerError, fmt.Sprintf("swap: decode version %d: %v", req.Version, err))
		return
	}
	if err := s.SwapBundle(nb, m.Version); err != nil {
		var incompatible *IncompatibleBundleError
		if errors.As(err, &incompatible) {
			resilience.WriteError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resilience.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	_ = reg.SetActive(m.Version)
	_ = reg.SetStatus(m.Version, controlplane.StatusActive, "manual swap via /admin/swap")
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"serving_version": m.Version, "serving_fingerprint": nb.Fingerprint,
	})
}
