package trout

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hyperopt"
	"repro/internal/nn"
	"repro/internal/tscv"
)

// TuneConfig controls the hyperparameter search (§III: the paper tunes
// learning rate, epoch count, layer count/sizes, dropout and activation
// with Optuna; this uses random search with successive-halving pruning over
// the same space).
type TuneConfig struct {
	Trials int // 0 = 20
	Seed   int64
	// Workers evaluates trials concurrently (each rung of the halving
	// ladder fans out across this many goroutines); 0 or 1 is serial.
	// Results are bit-identical to the serial path for a fixed Seed —
	// every trial trains with Seed+trialID, independent of schedule.
	Workers int
	// MinEpochs/MaxEpochs are the halving budget rungs; 0 = 5/40.
	MinEpochs, MaxEpochs int
	// ValFraction is the most-recent slice used to score trials; 0 = 0.2.
	ValFraction float64
}

// TuneResult is the outcome of a search.
type TuneResult struct {
	Best     ModelConfig
	BestMAPE float64
	Trials   int
	Pruned   int
}

// TuneRegressor searches the paper's §III hyperparameter space for the
// regression head and returns the base config with the winning regressor
// settings applied. Scoring is holdout MAPE on the most recent slice under
// the same time-ordered discipline as training.
func TuneRegressor(ds *Dataset, base ModelConfig, cfg TuneConfig) (TuneResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 20
	}
	if cfg.MinEpochs <= 0 {
		cfg.MinEpochs = 5
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 40
	}
	if cfg.ValFraction <= 0 {
		cfg.ValFraction = 0.2
	}
	fold, err := tscv.HoldoutRecent(ds.Len(), cfg.ValFraction)
	if err != nil {
		return TuneResult{}, err
	}

	space := []hyperopt.Param{
		hyperopt.LogUniform("lr", 1e-4, 1e-2),
		hyperopt.IntRange("layers", 2, 4),
		hyperopt.IntRange("width", 32, 160),
		hyperopt.Uniform("dropout", 0, 0.4),
		hyperopt.Categorical("act", string(nn.ELU), string(nn.ReLU), string(nn.Tanh)),
	}

	objective := func(t *hyperopt.Trial, budget int) float64 {
		c := base
		c.Regressor.LearnRate = t.Float("lr")
		c.Regressor.Dropout = t.Float("dropout")
		c.Regressor.Activation = nn.ActivationKind(t.Cat("act"))
		c.Regressor.Epochs = budget
		c.Regressor.Hidden = pyramid(t.Int("width"), t.Int("layers"))
		// The classifier is out of scope for this search; keep it cheap.
		c.Classifier.Epochs = 3
		c.Seed = cfg.Seed + int64(t.ID)
		m, err := core.Train(ds, fold.Train, c)
		if err != nil {
			return 1e12 // infeasible configuration loses
		}
		return core.EvaluateRegression(m, ds, fold.Test).MAPE
	}

	res, err := hyperopt.Search(hyperopt.Config{
		Trials: cfg.Trials, Seed: cfg.Seed, Workers: cfg.Workers,
		Halving: true, MinBudget: cfg.MinEpochs, MaxBudget: cfg.MaxEpochs, Eta: 2,
	}, space, objective)
	if err != nil {
		return TuneResult{}, err
	}

	best := base
	best.Regressor.LearnRate = res.Best.Float("lr")
	best.Regressor.Dropout = res.Best.Float("dropout")
	best.Regressor.Activation = nn.ActivationKind(res.Best.Cat("act"))
	best.Regressor.Hidden = pyramid(res.Best.Int("width"), res.Best.Int("layers"))
	best.Regressor.Epochs = cfg.MaxEpochs

	pruned := 0
	for _, t := range res.Trials {
		if t.Pruned {
			pruned++
		}
	}
	return TuneResult{Best: best, BestMAPE: res.Best.Score, Trials: len(res.Trials), Pruned: pruned}, nil
}

// pyramid builds a tapering hidden-layer stack: width, width/2, width/4, ...
func pyramid(width, layers int) []int {
	out := make([]int, layers)
	for i := range out {
		w := width >> i
		if w < 8 {
			w = 8
		}
		out[i] = w
	}
	return out
}

// DescribeConfig renders a model config compactly (for tuning reports).
func DescribeConfig(c ModelConfig) string {
	var hidden []string
	for _, h := range c.Regressor.Hidden {
		hidden = append(hidden, strconv.Itoa(h))
	}
	return fmt.Sprintf("regressor: hidden=[%s] act=%s lr=%.2g dropout=%.2f epochs=%d",
		strings.Join(hidden, ","), c.Regressor.Activation,
		c.Regressor.LearnRate, c.Regressor.Dropout, c.Regressor.Epochs)
}
