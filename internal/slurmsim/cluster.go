// Package slurmsim is an event-driven simulator of a Slurm-scheduled HPC
// cluster. It substitutes for the proprietary Anvil accounting trace the
// paper trains on: a synthetic workload is pushed through a scheduler with
// multifactor priority (age, fair-share, job size, partition tier, QOS) and
// EASY backfill, and the completed jobs — with their real, scheduler-induced
// queue times — form the training trace. Partitions may share nodes (as
// Anvil's CPU partitions do) or be isolated (the GPU partition).
package slurmsim

import (
	"fmt"
)

// NodeSpec describes one node's capacity.
type NodeSpec struct {
	CPUs  int
	MemGB float64
	GPUs  int
}

// PartitionSpec describes a partition: a named subset of nodes with a
// scheduling tier. Exclusive partitions hand out whole nodes (Anvil's
// "wholenode"/"wide"); non-exclusive partitions pack jobs onto shared nodes.
type PartitionSpec struct {
	Name      string
	Tier      int   // PriorityTier: higher is scheduled first
	NodeIDs   []int // indexes into ClusterSpec.Nodes; may overlap across partitions
	Exclusive bool
	MaxTime   int64 // max requested wall time in seconds (0 = unlimited)
	// Preemptible marks jobs in this partition as requeue-preemptible by
	// jobs from higher-tier partitions (Slurm's partition_prio preemption
	// — Anvil's standby partition works this way).
	Preemptible bool
}

// ClusterSpec describes the machine.
type ClusterSpec struct {
	Nodes      []NodeSpec
	Partitions []PartitionSpec
}

// Validate checks the spec for internal consistency.
func (c *ClusterSpec) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("slurmsim: cluster has no nodes")
	}
	if len(c.Partitions) == 0 {
		return fmt.Errorf("slurmsim: cluster has no partitions")
	}
	seen := map[string]bool{}
	for _, p := range c.Partitions {
		if p.Name == "" {
			return fmt.Errorf("slurmsim: partition with empty name")
		}
		if seen[p.Name] {
			return fmt.Errorf("slurmsim: duplicate partition %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.NodeIDs) == 0 {
			return fmt.Errorf("slurmsim: partition %q has no nodes", p.Name)
		}
		for _, id := range p.NodeIDs {
			if id < 0 || id >= len(c.Nodes) {
				return fmt.Errorf("slurmsim: partition %q references node %d of %d", p.Name, id, len(c.Nodes))
			}
		}
	}
	return nil
}

// Partition returns the named partition spec, or nil.
func (c *ClusterSpec) Partition(name string) *PartitionSpec {
	for i := range c.Partitions {
		if c.Partitions[i].Name == name {
			return &c.Partitions[i]
		}
	}
	return nil
}

// PartitionTotals aggregates a partition's capacity — these are the paper's
// static "Par Total *" features (Table II).
type PartitionTotals struct {
	Nodes      int
	CPUs       int
	MemGB      float64
	GPUs       int
	CPUPerNode float64
	MemPerNode float64
}

// Totals computes capacity aggregates for the named partition.
func (c *ClusterSpec) Totals(name string) PartitionTotals {
	p := c.Partition(name)
	if p == nil {
		return PartitionTotals{}
	}
	var t PartitionTotals
	for _, id := range p.NodeIDs {
		n := c.Nodes[id]
		t.Nodes++
		t.CPUs += n.CPUs
		t.MemGB += n.MemGB
		t.GPUs += n.GPUs
	}
	if t.Nodes > 0 {
		t.CPUPerNode = float64(t.CPUs) / float64(t.Nodes)
		t.MemPerNode = t.MemGB / float64(t.Nodes)
	}
	return t
}

// Uniform builds a simple homogeneous cluster: n identical nodes under a
// single shared partition plus a low-tier preemptible standby partition.
// Used for the paper's §V transferability experiments (retraining TROUT for
// a different HPC system).
func Uniform(n, cpus int, memGB float64, gpus int) ClusterSpec {
	if n < 1 {
		n = 1
	}
	var spec ClusterSpec
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, NodeSpec{CPUs: cpus, MemGB: memGB, GPUs: gpus})
		ids[i] = i
	}
	const hour = 3600
	spec.Partitions = []PartitionSpec{
		{Name: "shared", Tier: 2, NodeIDs: ids, MaxTime: 96 * hour},
		{Name: "standby", Tier: 1, NodeIDs: ids, MaxTime: 432 * hour, Preemptible: true},
	}
	return spec
}

// AnvilLike builds a scaled-down cluster shaped like Anvil: a pool of
// 128-core 256 GB CPU nodes shared by the `shared`, `wholenode`, `wide`,
// `debug` and `standby` partitions, a high-memory pool, and an isolated GPU
// partition — seven partitions, as the paper's dataset uses. scale=1 gives
// 32 CPU nodes; the real Anvil has ~1000.
func AnvilLike(scale int) ClusterSpec {
	if scale < 1 {
		scale = 1
	}
	nCPU := 32 * scale
	nHighmem := 2 * scale
	nGPU := 2 * scale
	var spec ClusterSpec
	for i := 0; i < nCPU; i++ {
		spec.Nodes = append(spec.Nodes, NodeSpec{CPUs: 128, MemGB: 256})
	}
	for i := 0; i < nHighmem; i++ {
		spec.Nodes = append(spec.Nodes, NodeSpec{CPUs: 128, MemGB: 1024})
	}
	for i := 0; i < nGPU; i++ {
		spec.Nodes = append(spec.Nodes, NodeSpec{CPUs: 128, MemGB: 512, GPUs: 4})
	}
	cpuIDs := make([]int, nCPU)
	for i := range cpuIDs {
		cpuIDs[i] = i
	}
	highmemIDs := make([]int, nHighmem)
	for i := range highmemIDs {
		highmemIDs[i] = nCPU + i
	}
	gpuIDs := make([]int, nGPU)
	for i := range gpuIDs {
		gpuIDs[i] = nCPU + nHighmem + i
	}
	// Debug gets the first few CPU nodes at a high tier, standby the whole
	// CPU pool at the lowest tier.
	debugIDs := cpuIDs
	if len(debugIDs) > 4 {
		debugIDs = cpuIDs[:4]
	}
	const hour = 3600
	spec.Partitions = []PartitionSpec{
		{Name: "shared", Tier: 2, NodeIDs: cpuIDs, MaxTime: 96 * hour},
		{Name: "wholenode", Tier: 2, NodeIDs: cpuIDs, Exclusive: true, MaxTime: 96 * hour},
		{Name: "wide", Tier: 2, NodeIDs: cpuIDs, Exclusive: true, MaxTime: 12 * hour},
		{Name: "highmem", Tier: 2, NodeIDs: highmemIDs, MaxTime: 48 * hour},
		{Name: "gpu", Tier: 2, NodeIDs: gpuIDs, MaxTime: 48 * hour},
		{Name: "debug", Tier: 4, NodeIDs: debugIDs, MaxTime: 2 * hour},
		{Name: "standby", Tier: 1, NodeIDs: cpuIDs, MaxTime: 432 * hour, Preemptible: true},
	}
	return spec
}
