package livestate

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/trace"
)

// WAL/checkpoint file names inside the store directory.
const (
	walFile        = "events.wal"
	checkpointFile = "checkpoint.gob"
)

// walRecord is one WAL entry: the event plus its log sequence number.
// Records are written length-prefixed (uvarint) with a CRC32 trailer so a
// torn tail from a crash is detected and truncated, and LSNs let replay
// skip records already folded into a checkpoint.
type walRecord struct {
	LSN   uint64 `json:"lsn"`
	Event Event  `json:"event"`
}

// checkpointDTO is the gob checkpoint: full engine state as of LSN.
type checkpointDTO struct {
	LSN   uint64
	State dto
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Dir is the WAL/checkpoint directory. Empty means memory-only: the
	// engine works but nothing persists and Checkpoint is a no-op.
	Dir string
	// SyncEvery fsyncs the WAL every N appends (checkpoint and Close always
	// sync). 0 means 64; negative syncs every append.
	SyncEvery int
	// Logf, when set, receives recovery diagnostics.
	Logf func(format string, args ...any)
}

// RecoverReport describes what OpenStore reconstructed.
type RecoverReport struct {
	// CheckpointLSN is the LSN the checkpoint covered (0 = no checkpoint).
	CheckpointLSN uint64
	// Replayed is the number of WAL records applied on top.
	Replayed uint64
	// SkippedLSN counts WAL records the checkpoint already covered.
	SkippedLSN uint64
	// ApplyErrors counts replayed events the engine rejected.
	ApplyErrors uint64
	// TruncatedBytes is the torn tail dropped from the WAL (0 = clean).
	TruncatedBytes int64
}

// StoreMetrics is the persistence half of the /metrics livestate gauges.
type StoreMetrics struct {
	// LSN is the last assigned log sequence number.
	LSN uint64
	// CheckpointLSN is the LSN covered by the newest checkpoint; the
	// difference to LSN is the WAL lag (records lost if the WAL vanished).
	CheckpointLSN uint64
	// WALBytes is the current WAL file size.
	WALBytes int64
	// Checkpoints counts checkpoints taken since open.
	Checkpoints uint64
	// Persistent is false for memory-only stores.
	Persistent bool
}

// Store couples an Engine with a write-ahead log and periodic gob
// checkpoints: every applied event is logged first, and recovery is
// checkpoint + WAL tail. Safe for concurrent use.
type Store struct {
	opt StoreOptions
	eng *Engine

	mu          sync.Mutex
	wal         *os.File
	walW        *bufio.Writer
	lsn         uint64
	ckptLSN     uint64
	walBytes    int64
	unsynced    int
	checkpoints uint64
	recovered   RecoverReport
	closed      bool
}

// OpenStore opens (or creates) a store, recovering engine state from the
// newest checkpoint plus the WAL tail when Dir holds any.
func OpenStore(opt StoreOptions) (*Store, error) {
	if opt.SyncEvery == 0 {
		opt.SyncEvery = 64
	}
	s := &Store{opt: opt, eng: NewEngine()}
	if opt.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("livestate: store dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("livestate: open wal: %w", err)
	}
	// Drop any torn tail so appends continue from the last good record.
	size := s.walBytes
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("livestate: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	s.wal = f
	s.walW = bufio.NewWriter(f)
	return s, nil
}

func (s *Store) walPath() string        { return filepath.Join(s.opt.Dir, walFile) }
func (s *Store) checkpointPath() string { return filepath.Join(s.opt.Dir, checkpointFile) }

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// recover loads the checkpoint (if any) and replays the WAL tail.
func (s *Store) recover() error {
	if f, err := os.Open(s.checkpointPath()); err == nil {
		var ck checkpointDTO
		derr := gob.NewDecoder(f).Decode(&ck)
		f.Close()
		if derr != nil {
			// A half-written checkpoint never replaces the old one (tmp +
			// rename), so a corrupt file here is unexpected — refuse to
			// silently start empty.
			return fmt.Errorf("livestate: corrupt checkpoint %s: %w", s.checkpointPath(), derr)
		}
		s.eng.restoreDTO(ck.State)
		s.lsn = ck.LSN
		s.ckptLSN = ck.LSN
		s.recovered.CheckpointLSN = ck.LSN
	} else if !os.IsNotExist(err) {
		return err
	}

	f, err := os.Open(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var good int64
	for {
		rec, n, rerr := readWALRecord(br)
		if rerr != nil {
			if rerr != io.EOF {
				s.recovered.TruncatedBytes = walSize(f) - good
				s.logf("livestate: wal %s: dropping torn tail (%d bytes): %v",
					s.walPath(), s.recovered.TruncatedBytes, rerr)
			}
			break
		}
		good += n
		if rec.LSN <= s.ckptLSN {
			s.recovered.SkippedLSN++
			continue
		}
		if err := s.eng.ApplyEvent(rec.Event); err != nil {
			s.recovered.ApplyErrors++
		}
		s.recovered.Replayed++
		if rec.LSN > s.lsn {
			s.lsn = rec.LSN
		}
	}
	s.walBytes = good
	return nil
}

func walSize(f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Recovered returns what OpenStore reconstructed.
func (s *Store) Recovered() RecoverReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Engine returns the live engine (shared, concurrency-safe).
func (s *Store) Engine() *Engine { return s.eng }

// Apply logs the event then applies it to the engine (write-ahead order).
// Events the engine rejects are still logged — replay rejects them
// identically, so recovery stays deterministic — and their error is
// returned for the caller's accounting. The store mutex is held across
// both steps so engine order always matches WAL (LSN) order.
func (s *Store) Apply(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	s.lsn++
	if s.walW != nil {
		n, err := writeWALRecord(s.walW, walRecord{LSN: s.lsn, Event: ev})
		if err != nil {
			return fmt.Errorf("livestate: wal append: %w", err)
		}
		s.walBytes += n
		s.unsynced++
		if s.opt.SyncEvery < 0 || s.unsynced >= s.opt.SyncEvery {
			if err := s.sync(); err != nil {
				return fmt.Errorf("livestate: wal sync: %w", err)
			}
		}
	}
	return s.eng.ApplyEvent(ev)
}

// Sync flushes buffered WAL records and fsyncs, making every event applied
// so far durable. Apply group-commits (every SyncEvery appends), so batch
// ingest paths call this once per batch before acknowledging the batch —
// a crash can then only lose events that were never acknowledged.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	return s.sync()
}

// sync flushes and fsyncs the WAL. Caller holds s.mu.
func (s *Store) sync() error {
	if s.walW == nil {
		return nil
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.unsynced = 0
	return nil
}

// Seed bulk-loads a trace into the engine and immediately checkpoints, so
// the load survives a restart without being event-logged row by row.
func (s *Store) Seed(tr *trace.Trace) (SeedReport, error) {
	rep := s.eng.SeedFromTrace(tr)
	if err := s.Checkpoint(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Checkpoint writes the engine state to disk (tmp + rename, fsynced) and
// resets the WAL: records at or below the checkpoint LSN are subsumed. A
// crash between the rename and the truncate is safe — replay skips
// subsumed records by LSN. No-op for memory-only stores.
func (s *Store) Checkpoint() error {
	if s.opt.Dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	if err := s.sync(); err != nil {
		return err
	}
	ck := checkpointDTO{LSN: s.lsn, State: s.eng.snapshotDTO()}
	tmp := s.checkpointPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("livestate: encode checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.checkpointPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.walW.Reset(s.wal)
	s.walBytes = 0
	s.unsynced = 0
	s.ckptLSN = ck.LSN
	s.checkpoints++
	return nil
}

// Metrics snapshots the persistence gauges.
func (s *Store) Metrics() StoreMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreMetrics{
		LSN:           s.lsn,
		CheckpointLSN: s.ckptLSN,
		WALBytes:      s.walBytes,
		Checkpoints:   s.checkpoints,
		Persistent:    s.opt.Dir != "",
	}
}

// Close syncs and closes the WAL. The engine stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.walW == nil {
		return nil
	}
	if err := s.sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// writeWALRecord appends one length-prefixed record:
//
//	uvarint(len(payload)) | payload (JSON walRecord) | crc32(payload) LE
func writeWALRecord(w *bufio.Writer, rec walRecord) (int64, error) {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return 0, err
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:hn]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return 0, err
	}
	return int64(hn + len(payload) + 4), nil
}

// maxWALRecordBytes bounds a single record so a corrupt length prefix
// cannot trigger a giant allocation.
const maxWALRecordBytes = 16 << 20

// readWALRecord reads one record, returning its encoded size. io.EOF means
// a clean end; any other error means a torn or corrupt tail.
func readWALRecord(br *bufio.Reader) (walRecord, int64, error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return walRecord{}, 0, io.EOF
		}
		return walRecord{}, 0, fmt.Errorf("length prefix: %w", err)
	}
	if ln == 0 || ln > maxWALRecordBytes {
		return walRecord{}, 0, fmt.Errorf("implausible record length %d", ln)
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(br, payload); err != nil {
		return walRecord{}, 0, fmt.Errorf("payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return walRecord{}, 0, fmt.Errorf("crc: %w", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return walRecord{}, 0, fmt.Errorf("crc mismatch")
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, 0, fmt.Errorf("decode: %w", err)
	}
	n := int64(uvarintLen(ln)) + int64(ln) + 4
	return rec, n, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
