package livestate

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Sealed-segment file names: seg-<first LSN, zero-padded>.wal. The active
// WAL (events.wal) is rotated into a sealed segment when it outgrows
// SegmentBytes or when a checkpoint seals it; sealed segments are immutable
// and are what GET /replication/wal streams to followers.
const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstLSN, segSuffix)
}

// segInfo indexes one sealed, immutable segment on disk.
type segInfo struct {
	path  string
	first uint64 // first LSN in the file
	last  uint64 // last LSN in the file
	bytes int64
}

// ErrSubsumed is returned by ReadWAL when the requested position is older
// than the oldest record still on disk — a checkpoint subsumed it and
// retention dropped the segment. The follower must re-snapshot.
var ErrSubsumed = errors.New("livestate: requested WAL position subsumed by checkpoint")

// LSNGapError is returned by ApplyAt when a replicated record's LSN is not
// exactly one past the store's: the follower missed records (gap) or the
// leader rewound (divergence). Either way the follower must re-snapshot.
type LSNGapError struct {
	Have uint64 // the store's current LSN
	Got  uint64 // the record's LSN
}

func (e *LSNGapError) Error() string {
	return fmt.Sprintf("livestate: lsn gap: store at %d, record is %d", e.Have, e.Got)
}

// rotateLocked seals the active WAL into an immutable segment and opens a
// fresh active file. Caller holds s.mu; the active WAL must be non-empty.
func (s *Store) rotateLocked() error {
	if s.walW == nil || s.walBytes == 0 {
		return nil
	}
	if err := s.sync(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("livestate: close wal for rotation: %w", err)
	}
	sealed := filepath.Join(s.opt.Dir, segName(s.activeFirst))
	if err := os.Rename(s.walPath(), sealed); err != nil {
		return fmt.Errorf("livestate: seal segment: %w", err)
	}
	s.segs = append(s.segs, segInfo{path: sealed, first: s.activeFirst, last: s.lsn, bytes: s.walBytes})
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("livestate: open wal after rotation: %w", err)
	}
	s.wal = f
	s.walW.Reset(f)
	s.walBytes = 0
	s.syncedBytes = 0
	s.unsynced = 0
	s.activeFirst = s.lsn + 1
	return nil
}

// pruneSegmentsLocked deletes the oldest checkpoint-covered segments,
// keeping at most opt.RetainSegments sealed segments for follower
// catch-up. Caller holds s.mu.
func (s *Store) pruneSegmentsLocked() {
	keep := s.opt.RetainSegments
	if keep < 0 {
		return // keep everything
	}
	for len(s.segs) > keep && s.segs[0].last <= s.ckptLSN {
		if err := os.Remove(s.segs[0].path); err != nil && !os.IsNotExist(err) {
			s.logf("livestate: prune segment %s: %v", s.segs[0].path, err)
			return
		}
		s.segs = s.segs[1:]
	}
}

// wipeWALLocked drops every WAL record on disk — active and sealed — after
// the engine state was replaced wholesale (RestoreSnapshot). Caller holds
// s.mu and must write a fresh checkpoint afterwards.
func (s *Store) wipeWALLocked() error {
	for _, seg := range s.segs {
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s.segs = nil
	if s.walW != nil {
		if err := s.walW.Flush(); err != nil {
			return err
		}
		if err := s.wal.Truncate(0); err != nil {
			return err
		}
		if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
			return err
		}
		s.walW.Reset(s.wal)
	}
	s.walBytes = 0
	s.syncedBytes = 0
	s.unsynced = 0
	s.activeFirst = s.lsn + 1
	return nil
}

// listSegments scans the store directory for sealed segments, ordered by
// first LSN (taken from the file name; the replay pass verifies it).
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), first: first, bytes: info.Size()})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].first < segs[b].first })
	return segs, nil
}

// ApplyAt applies a replicated event under its leader-assigned LSN — the
// follower counterpart of Apply. The LSN must be exactly one past the
// store's; anything else returns *LSNGapError and applies nothing. Engine
// rejections are logged to the WAL like Apply's (replay must see the same
// stream the leader wrote) and returned for the caller's accounting.
func (s *Store) ApplyAt(lsn uint64, ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("livestate: store is closed")
	}
	if lsn != s.lsn+1 {
		return &LSNGapError{Have: s.lsn, Got: lsn}
	}
	return s.applyLocked(lsn, ev)
}

// applyLocked appends the record and applies it to the engine. Caller
// holds s.mu and has already assigned lsn (== s.lsn+1).
func (s *Store) applyLocked(lsn uint64, ev Event) error {
	s.lsn = lsn
	if s.walW != nil {
		n, err := writeWALRecord(s.walW, walRecord{LSN: lsn, Event: ev})
		if err != nil {
			return fmt.Errorf("livestate: wal append: %w", err)
		}
		s.walBytes += n
		s.unsynced++
		if s.opt.SyncEvery < 0 || s.unsynced >= s.opt.SyncEvery {
			if err := s.sync(); err != nil {
				return fmt.Errorf("livestate: wal sync: %w", err)
			}
		}
		if s.opt.SegmentBytes > 0 && s.walBytes >= s.opt.SegmentBytes {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
	} else {
		// Memory-only stores have no durability gap: every applied
		// record is as durable as it will ever be.
		s.bumpDurableLocked()
	}
	return s.eng.ApplyEvent(ev)
}

// bumpDurableLocked advances the durable LSN to the store's LSN and wakes
// long-poll waiters. Caller holds s.mu.
func (s *Store) bumpDurableLocked() {
	if s.durableLSN == s.lsn {
		return
	}
	s.durableLSN = s.lsn
	s.syncedBytes = s.walBytes
	close(s.updated)
	s.updated = make(chan struct{})
}

// DurableLSN returns the newest LSN guaranteed to be on disk (every LSN for
// memory-only stores). Replication serves only durable records, so a
// follower can never get ahead of what a crashed leader recovers.
func (s *Store) DurableLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN
}

// Gen returns the state generation: it increments whenever the engine is
// replaced outside the WAL stream (Seed, RestoreSnapshot), telling
// followers their replayed history is void and they must re-snapshot.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Updated returns a channel closed the next time durable records are added
// — the long-poll hook for GET /replication/wal. Callers re-fetch the
// channel after each wake-up.
func (s *Store) Updated() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updated
}

// Persistent reports whether the store writes a WAL (replication's WAL
// endpoint needs one; memory-only stores can only ship snapshots).
func (s *Store) Persistent() bool { return s.opt.Dir != "" }

// oldestLSNLocked is the first LSN still readable from disk.
func (s *Store) oldestLSNLocked() uint64 {
	if len(s.segs) > 0 {
		return s.segs[0].first
	}
	return s.activeFirst
}

// OldestLSN returns the first LSN still readable from disk; requests below
// it get ErrSubsumed and must re-snapshot.
func (s *Store) OldestLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oldestLSNLocked()
}

// ReadWAL streams raw length-prefixed frames for records with LSN in
// (from, durable] into w, up to roughly maxBytes (always at least one
// record when any is due). It returns the last LSN written and the byte
// count. ErrSubsumed means from precedes the oldest retained record. A
// corrupt sealed segment is skipped to the next segment — the follower
// sees the LSN gap and re-snapshots — so one bad file degrades a replica
// instead of wedging the leader.
func (s *Store) ReadWAL(from uint64, maxBytes int64, w io.Writer) (last uint64, n int64, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return from, 0, fmt.Errorf("livestate: store is closed")
	}
	durable := s.durableLSN
	oldest := s.oldestLSNLocked()
	segs := append([]segInfo(nil), s.segs...)
	synced := s.syncedBytes
	var active *os.File
	if s.wal != nil && synced > 0 && durable >= s.activeFirst {
		// Open (and pin) the active file while holding the lock so a
		// concurrent rotation cannot swap it under us; the fd keeps
		// reading the sealed bytes even after a rename.
		active, err = os.Open(s.walPath())
		if err != nil {
			s.mu.Unlock()
			return from, 0, err
		}
	}
	s.mu.Unlock()
	if active != nil {
		defer active.Close()
	}

	if from >= durable {
		return from, 0, nil
	}
	if from+1 < oldest {
		return from, 0, ErrSubsumed
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	last = from
	for _, seg := range segs {
		if seg.last <= from {
			continue
		}
		if n >= maxBytes {
			return last, n, nil
		}
		f, oerr := os.Open(seg.path)
		if oerr != nil {
			// Pruned (or externally removed) mid-read: the follower
			// detects the gap and re-snapshots.
			continue
		}
		wrote, lastSeen, cerr := copyFrames(f, w, from, maxBytes-n, -1)
		f.Close()
		n += wrote
		if lastSeen > last {
			last = lastSeen
		}
		if cerr != nil && cerr != io.EOF {
			// Corrupt sealed segment: skip ahead; followers re-snapshot.
			continue
		}
	}
	if active != nil && n < maxBytes && last < durable {
		wrote, lastSeen, _ := copyFrames(active, w, last, maxBytes-n, synced)
		n += wrote
		if lastSeen > last {
			last = lastSeen
		}
	}
	return last, n, nil
}

// copyFrames scans WAL frames from r, copying those with LSN > from to w
// verbatim until budget bytes are written or limit bytes consumed
// (limit < 0 = whole stream). It returns bytes written, the last LSN
// copied, and the scan error (io.EOF on a clean end).
func copyFrames(r io.Reader, w io.Writer, from uint64, budget, limit int64) (n int64, last uint64, err error) {
	var src io.Reader = r
	if limit >= 0 {
		src = io.LimitReader(r, limit)
	}
	br := bufio.NewReaderSize(src, 64<<10)
	for n < budget {
		rec, frame, rerr := readWALFrame(br)
		if rerr != nil {
			return n, last, rerr
		}
		if rec.LSN <= from {
			continue
		}
		if _, werr := w.Write(frame); werr != nil {
			return n, last, werr
		}
		n += int64(len(frame))
		last = rec.LSN
	}
	return n, last, nil
}

// readWALFrame reads one record plus its raw encoded frame (reconstructed
// byte-for-byte: uvarint length, payload, CRC trailer).
func readWALFrame(br *bufio.Reader) (walRecord, []byte, error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return walRecord{}, nil, io.EOF
		}
		return walRecord{}, nil, fmt.Errorf("length prefix: %w", err)
	}
	if ln == 0 || ln > maxWALRecordBytes {
		return walRecord{}, nil, fmt.Errorf("implausible record length %d", ln)
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], ln)
	frame := make([]byte, hn+int(ln)+4)
	copy(frame, hdr[:hn])
	if _, err := io.ReadFull(br, frame[hn:]); err != nil {
		return walRecord{}, nil, fmt.Errorf("payload: %w", err)
	}
	payload := frame[hn : hn+int(ln)]
	crc := binary.LittleEndian.Uint32(frame[hn+int(ln):])
	if crc != crc32.ChecksumIEEE(payload) {
		return walRecord{}, nil, fmt.Errorf("crc mismatch")
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, nil, fmt.Errorf("decode: %w", err)
	}
	return rec, frame, nil
}

// WALScanner decodes a stream of length-prefixed WAL frames — the follower
// side of GET /replication/wal.
type WALScanner struct {
	br    *bufio.Reader
	bytes int64
}

// NewWALScanner wraps r for frame-by-frame decoding.
func NewWALScanner(r io.Reader) *WALScanner {
	return &WALScanner{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next record. io.EOF means a clean end of stream; any
// other error means a torn or corrupt frame.
func (sc *WALScanner) Next() (uint64, Event, error) {
	rec, frame, err := readWALFrame(sc.br)
	if err != nil {
		return 0, Event{}, err
	}
	sc.bytes += int64(len(frame))
	return rec.LSN, rec.Event, nil
}

// Bytes returns the total frame bytes decoded so far.
func (sc *WALScanner) Bytes() int64 { return sc.bytes }

// WriteSnapshot gob-encodes the full engine state plus its LSN and
// generation — what GET /replication/snapshot serves — and returns the
// LSN the snapshot covers. State and LSN are captured atomically.
func (s *Store) WriteSnapshot(w io.Writer) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("livestate: store is closed")
	}
	ck := checkpointDTO{LSN: s.lsn, Gen: s.gen, State: s.eng.snapshotDTO()}
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ck); err != nil {
		return 0, fmt.Errorf("livestate: encode snapshot: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return ck.LSN, nil
}

// RestoreSnapshot replaces the engine state from a leader snapshot: the
// local WAL history becomes void, so it is wiped and (for persistent
// stores) a fresh checkpoint makes the restore survive a restart. Returns
// the LSN the store resumes replication from.
func (s *Store) RestoreSnapshot(r io.Reader) (uint64, error) {
	var ck checkpointDTO
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("livestate: decode snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("livestate: store is closed")
	}
	s.eng.restoreDTO(ck.State)
	s.lsn = ck.LSN
	s.gen = ck.Gen
	s.ckptLSN = ck.LSN
	if err := s.wipeWALLocked(); err != nil {
		return 0, err
	}
	s.bumpDurableLocked()
	if s.opt.Dir != "" {
		if err := s.writeCheckpointLocked(ck); err != nil {
			return 0, err
		}
	}
	return ck.LSN, nil
}
