package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		kind ActivationKind
		x    float64
		want float64
	}{
		{ReLU, 2, 2}, {ReLU, -2, 0},
		{ELU, 1.5, 1.5}, {ELU, -1, math.Exp(-1) - 1},
		{LeakyReLU, -10, -0.1},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
		{Identity, -3.25, -3.25},
	}
	for _, c := range cases {
		if got := activate(c.kind, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.kind, c.x, got, c.want)
		}
	}
}

// TestActivationGradNumeric checks every activation's analytic derivative
// against central finite differences.
func TestActivationGradNumeric(t *testing.T) {
	const h = 1e-6
	for _, kind := range []ActivationKind{ReLU, ELU, LeakyReLU, Sigmoid, Tanh, Identity} {
		for _, x := range []float64{-2.1, -0.5, 0.3, 1.7} {
			y := activate(kind, x)
			got := activateGrad(kind, x, y)
			num := (activate(kind, x+h) - activate(kind, x-h)) / (2 * h)
			if math.Abs(got-num) > 1e-4 {
				t.Errorf("%s'(%v) = %v, numeric %v", kind, x, got, num)
			}
		}
	}
}

func TestValidActivation(t *testing.T) {
	if !ValidActivation(ELU) || ValidActivation("bogus") {
		t.Fatal("ValidActivation wrong")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, rng)
	d.W.Set(0, 0, 2)
	d.W.Set(1, 0, 3)
	d.B.Set(0, 0, 1)
	out := d.Forward(tensor.FromRows([][]float64{{1, 1}, {2, 0}}), false)
	if out.At(0, 0) != 6 || out.At(1, 0) != 5 {
		t.Fatalf("dense forward = %v", out)
	}
}

// numericGrad computes dLoss/dparam[i] by central differences for a network
// with a single scalar input/output pair.
func numericNetGrad(net *Network, x, y *tensor.Matrix, loss LossKind, p Param, i int) float64 {
	const h = 1e-6
	orig := p.Value.Data[i]
	p.Value.Data[i] = orig + h
	lp, _ := Loss(loss, net.Forward(x, false), y)
	p.Value.Data[i] = orig - h
	lm, _ := Loss(loss, net.Forward(x, false), y)
	p.Value.Data[i] = orig
	return (lp - lm) / (2 * h)
}

// TestBackpropNumeric verifies end-to-end backprop gradients against finite
// differences for a two-layer ELU network under each regression loss.
func TestBackpropNumeric(t *testing.T) {
	for _, loss := range []LossKind{MSE, SmoothL1, MAE} {
		rng := rand.New(rand.NewSource(7))
		net := NewNetwork(rng,
			DenseSpec(3, 4), ActivationSpec(ELU),
			DenseSpec(4, 1))
		x := tensor.New(5, 3)
		x.RandN(rng, 1)
		y := tensor.New(5, 1)
		y.RandN(rng, 1)

		pred := net.Forward(x, true)
		_, grad := Loss(loss, pred, y)
		net.Backward(grad)

		for pi, p := range net.Params() {
			for i := 0; i < len(p.Value.Data); i += 3 {
				num := numericNetGrad(net, x, y, loss, p, i)
				got := p.Grad.Data[i]
				if math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("loss %s param %d[%d]: grad %v, numeric %v", loss, pi, i, got, num)
				}
			}
		}
	}
}

// TestBackpropNumericBCE does the same for the classifier head.
func TestBackpropNumericBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(rng,
		DenseSpec(3, 4), ActivationSpec(ReLU),
		DenseSpec(4, 1), ActivationSpec(Sigmoid))
	x := tensor.New(6, 3)
	x.RandN(rng, 1)
	y := tensor.New(6, 1)
	for i := range y.Data {
		if rng.Float64() < 0.5 {
			y.Data[i] = 1
		}
	}
	pred := net.Forward(x, true)
	_, grad := Loss(BCE, pred, y)
	net.Backward(grad)
	for pi, p := range net.Params() {
		for i := 0; i < len(p.Value.Data); i += 2 {
			num := numericNetGrad(net, x, y, BCE, p, i)
			got := p.Grad.Data[i]
			if math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("BCE param %d[%d]: grad %v, numeric %v", pi, i, got, num)
			}
		}
	}
}

// TestBatchNormBackpropNumeric checks the batch-norm gradient.
func TestBatchNormBackpropNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(rng,
		DenseSpec(3, 4), BatchNormSpec(4), ActivationSpec(ELU),
		DenseSpec(4, 1))
	x := tensor.New(8, 3)
	x.RandN(rng, 1)
	y := tensor.New(8, 1)
	y.RandN(rng, 1)

	// Finite differences must be evaluated with training-mode statistics,
	// so use a helper that re-runs the training path.
	numGrad := func(p Param, i int) float64 {
		const h = 1e-5
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		lp, _ := Loss(MSE, net.Forward(x, true), y)
		p.Value.Data[i] = orig - h
		lm, _ := Loss(MSE, net.Forward(x, true), y)
		p.Value.Data[i] = orig
		return (lp - lm) / (2 * h)
	}

	pred := net.Forward(x, true)
	_, grad := Loss(MSE, pred, y)
	net.Backward(grad)
	for pi, p := range net.Params() {
		for i := 0; i < len(p.Value.Data); i += 3 {
			got := p.Grad.Data[i]
			num := numGrad(p, i)
			if math.Abs(got-num) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("BN net param %d[%d]: grad %v, numeric %v", pi, i, got, num)
			}
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDropout(0.5, rng)
	in := tensor.New(10, 100)
	in.Fill(1)
	evalOut := d.Forward(in, false)
	if !evalOut.Equal(in, 0) {
		t.Fatal("dropout must be identity at inference")
	}
	trainOut := d.Forward(in, true)
	zeros := 0
	for _, v := range trainOut.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving activation %v, want 2 (inverted dropout)", v)
		}
	}
	frac := float64(zeros) / float64(len(trainOut.Data))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropped fraction %v, want ≈0.5", frac)
	}
	// Expected value preserved.
	mean := trainOut.Sum() / float64(len(trainOut.Data))
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("dropout mean %v, want ≈1", mean)
	}
}

func TestDropoutBackwardMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDropout(0.5, rng)
	in := tensor.New(1, 50)
	in.Fill(1)
	out := d.Forward(in, true)
	g := tensor.New(1, 50)
	g.Fill(1)
	back := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(12))
	in := tensor.New(256, 2)
	for i := 0; i < in.Rows; i++ {
		in.Set(i, 0, rng.NormFloat64()*5+100)
		in.Set(i, 1, rng.NormFloat64()*0.1-3)
	}
	out := bn.Forward(in, true)
	means := out.ColMeans()
	vars := out.ColVariances(means)
	for j := 0; j < 2; j++ {
		if math.Abs(means[j]) > 1e-9 {
			t.Fatalf("BN mean[%d] = %v", j, means[j])
		}
		if math.Abs(vars[j]-1) > 5e-3 { // ε shrinks small-variance columns slightly
			t.Fatalf("BN var[%d] = %v", j, vars[j])
		}
	}
}

func TestLossValues(t *testing.T) {
	pred := tensor.FromRows([][]float64{{2}, {0}})
	tgt := tensor.FromRows([][]float64{{0}, {0}})
	l, _ := Loss(MSE, pred, tgt)
	if math.Abs(l-2) > 1e-12 { // (4+0)/2
		t.Fatalf("MSE = %v, want 2", l)
	}
	l, _ = Loss(MAE, pred, tgt)
	if math.Abs(l-1) > 1e-12 {
		t.Fatalf("MAE = %v, want 1", l)
	}
	// SmoothL1 with |d|=2 > beta: 2-0.5 = 1.5; |d|=0: 0 → mean 0.75.
	l, _ = Loss(SmoothL1, pred, tgt)
	if math.Abs(l-0.75) > 1e-12 {
		t.Fatalf("SmoothL1 = %v, want 0.75", l)
	}
	// BCE of perfect predictions ~ 0.
	l, _ = Loss(BCE, tensor.FromRows([][]float64{{1 - 1e-9}, {1e-9}}), tensor.FromRows([][]float64{{1}, {0}}))
	if l > 1e-6 {
		t.Fatalf("BCE of perfect preds = %v", l)
	}
}

// Property: smooth-L1 is between 0.5*MAE-ish and MSE behaviour — specifically
// it is ≤ MSE/2 + 0.5 bound and always non-negative, and equals 0 iff pred==target.
func TestSmoothL1Properties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		l, _ := Loss(SmoothL1, tensor.FromRows([][]float64{{a}}), tensor.FromRows([][]float64{{b}}))
		if l < 0 {
			return false
		}
		if a == b && l != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Loss(MSE, tensor.New(2, 1), tensor.New(3, 1))
}

// TestAdamConvergesQuadratic drives a single weight to the minimum of a
// quadratic: y = 3x, fit with a 1-param linear model.
func TestAdamConvergesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(rng, DenseSpec(1, 1))
	x := tensor.New(32, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		v := rng.Float64()*4 - 2
		x.Set(i, 0, v)
		y.Set(i, 0, 3*v)
	}
	tr := Trainer{Net: net, Opt: NewAdam(0.05), Cfg: TrainConfig{Loss: MSE, Epochs: 300, BatchSize: 32, Workers: 1, Seed: 1}}
	tr.Fit(x, y)
	w := net.Layers[0].(*Dense).W.At(0, 0)
	if math.Abs(w-3) > 0.05 {
		t.Fatalf("Adam fit w = %v, want ≈3", w)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(rng, DenseSpec(1, 1))
	x := tensor.New(16, 1)
	y := tensor.New(16, 1)
	for i := 0; i < 16; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y.Set(i, 0, -2*v+1)
	}
	tr := Trainer{Net: net, Opt: NewSGD(0.1, 0.9), Cfg: TrainConfig{Loss: MSE, Epochs: 200, BatchSize: 16, Workers: 1, Seed: 2}}
	tr.Fit(x, y)
	d := net.Layers[0].(*Dense)
	if math.Abs(d.W.At(0, 0)+2) > 0.05 || math.Abs(d.B.At(0, 0)-1) > 0.05 {
		t.Fatalf("SGD fit w=%v b=%v, want -2, 1", d.W.At(0, 0), d.B.At(0, 0))
	}
}

// TestXORClassifier: the classic nonlinear sanity check for backprop.
func TestXORClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(rng, MLPSpecs(2, []int{8}, 1, Tanh, Sigmoid, 0)...)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := tensor.FromRows([][]float64{{0}, {1}, {1}, {0}})
	tr := Trainer{Net: net, Opt: NewAdam(0.05), Cfg: TrainConfig{Loss: BCE, Epochs: 500, BatchSize: 4, Workers: 1, Seed: 3}}
	tr.Fit(x, y)
	pred := net.Predict(x)
	for i := 0; i < 4; i++ {
		got := pred.At(i, 0) > 0.5
		want := y.At(i, 0) > 0.5
		if got != want {
			t.Fatalf("XOR sample %d misclassified (p=%v)", i, pred.At(i, 0))
		}
	}
}

// TestParallelTrainerMatchesSerialLoss: multi-worker training must reach a
// comparable loss to single-worker training on the same regression task.
func TestParallelTrainerMatchesSerialLoss(t *testing.T) {
	gen := func(seed int64) (*tensor.Matrix, *tensor.Matrix) {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(512, 4)
		y := tensor.New(512, 1)
		for i := 0; i < 512; i++ {
			var s float64
			for j := 0; j < 4; j++ {
				v := rng.Float64()*2 - 1
				x.Set(i, j, v)
				s += float64(j+1) * v
			}
			y.Set(i, 0, s)
		}
		return x, y
	}
	run := func(workers int) float64 {
		x, y := gen(99)
		rng := rand.New(rand.NewSource(16))
		net := NewNetwork(rng, MLPSpecs(4, []int{16}, 1, ELU, Identity, 0)...)
		tr := Trainer{Net: net, Opt: NewAdam(0.01), Cfg: TrainConfig{Loss: MSE, Epochs: 40, BatchSize: 64, Workers: workers, Seed: 4}}
		res := tr.Fit(x, y)
		return res.FinalLoss
	}
	serial := run(1)
	parallel := run(4)
	if parallel > serial*3+0.05 {
		t.Fatalf("parallel loss %v much worse than serial %v", parallel, serial)
	}
	if serial > 0.05 {
		t.Fatalf("serial training failed to converge: loss %v", serial)
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewNetwork(rng, MLPSpecs(2, []int{4}, 1, ReLU, Identity, 0)...)
	// Pure-noise targets: validation loss cannot improve for long.
	x := tensor.New(200, 2)
	x.RandN(rng, 1)
	y := tensor.New(200, 1)
	y.RandN(rng, 1)
	tr := Trainer{Net: net, Opt: NewAdam(0.01), Cfg: TrainConfig{
		Loss: MSE, Epochs: 200, BatchSize: 32, Workers: 1,
		ValFraction: 0.25, Patience: 3, Seed: 5}}
	res := tr.Fit(x, y)
	if !res.EarlyStops {
		t.Fatal("expected early stopping on noise")
	}
	if res.Epochs >= 200 {
		t.Fatal("early stopping did not cut epochs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewNetwork(rng, MLPSpecs(3, []int{5, 4}, 1, ELU, Identity, 0.1)...)
	in := tensor.New(4, 3)
	in.RandN(rng, 1)
	want := net.Predict(in)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Predict(in).Equal(want, 1e-12) {
		t.Fatal("loaded network predicts differently")
	}
}

func TestSaveLoadBatchNormStats(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewNetwork(rng, DenseSpec(2, 3), BatchNormSpec(3), DenseSpec(3, 1))
	// Run training forwards to move the running stats.
	x := tensor.New(64, 2)
	x.RandN(rng, 2)
	net.Forward(x, true)
	in := tensor.New(3, 2)
	in.RandN(rng, 1)
	want := net.Predict(in)
	b, err := net.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Predict(in).Equal(want, 1e-12) {
		t.Fatal("batch-norm running stats not preserved")
	}
}

func TestMLPSpecs(t *testing.T) {
	specs := MLPSpecs(33, []int{64, 32, 16}, 1, ELU, Identity, 0.2)
	// 3 hidden: each dense+act+dropout = 9, plus final dense = 10.
	if len(specs) != 10 {
		t.Fatalf("got %d specs", len(specs))
	}
	net := NewNetwork(rand.New(rand.NewSource(20)), specs...)
	out := net.Predict(tensor.New(2, 33))
	if out.Rows != 2 || out.Cols != 1 {
		t.Fatalf("MLP output %dx%d", out.Rows, out.Cols)
	}
}

func TestPredict1(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(rng, DenseSpec(2, 1))
	d := net.Layers[0].(*Dense)
	d.W.Set(0, 0, 1)
	d.W.Set(1, 0, 1)
	if got := net.Predict1([]float64{2, 3}); got != 5 {
		t.Fatalf("Predict1 = %v", got)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := NewNetwork(rng, DenseSpec(3, 4), DenseSpec(4, 2))
	// 3*4+4 + 4*2+2 = 26
	if got := net.NumParams(); got != 26 {
		t.Fatalf("NumParams = %d, want 26", got)
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rngA := rand.New(rand.NewSource(23))
	rngB := rand.New(rand.NewSource(24))
	a := NewNetwork(rngA, DenseSpec(2, 2))
	b := NewNetwork(rngB, DenseSpec(2, 2))
	b.CopyWeightsFrom(a)
	in := tensor.FromRows([][]float64{{1, 2}})
	if !a.Predict(in).Equal(b.Predict(in), 0) {
		t.Fatal("CopyWeightsFrom did not synchronize")
	}
}

func BenchmarkForward33Features(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	net := NewNetwork(rng, MLPSpecs(33, []int{128, 64, 32}, 1, ELU, Identity, 0)...)
	in := tensor.New(1, 33)
	in.RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(in)
	}
}
