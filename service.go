package trout

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/trace"
)

// ServiceConfig tunes the dashboard service's resilience envelope. The
// zero value picks production-safe defaults.
type ServiceConfig struct {
	// RequestTimeout bounds each request's handling time; past it the
	// client receives a JSON 504 and late handler output is discarded.
	// 0 means 10s; negative disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps POST bodies (oversized requests get a JSON 413).
	// 0 means 8 MiB; negative disables the limit.
	MaxBodyBytes int64
	// MaxBadStateRows is the malformed-record budget for POST /state:
	// up to this many undecodable JSONL rows are skipped and reported
	// rather than failing the upload. 0 means 100; negative is unlimited.
	MaxBadStateRows int
	// Logf, when set, receives middleware diagnostics (recovered panics).
	Logf func(format string, args ...any)
}

func (c *ServiceConfig) defaults() {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBadStateRows == 0 {
		c.MaxBadStateRows = 100
	}
}

// Service is the paper's §V "user dashboard tool": an HTTP front-end over a
// trained bundle plus a live queue state. Handlers:
//
//	GET  /health          — liveness + model metadata + fallback-tier counters
//	GET  /ready           — readiness (503 while draining or not yet serving)
//	GET  /predict?job=ID  — Algorithm 1 for a known job in the queue state
//	POST /predict         — Algorithm 1 for a hypothetical job (JSON spec)
//	POST /state           — replace the queue state (JSONL-decoded trace)
//	GET  /features?job=ID — the engineered 33-feature vector (debugging)
//
// Every request runs behind panic-recovery, per-request deadline, and
// body-limit middleware; predictions go through the bundle's fallback
// chain, so a poisoned model degrades answers instead of availability.
// State updates and predictions are safe for concurrent use.
type Service struct {
	bundle *Bundle
	cfg    ServiceConfig
	tiers  *resilience.Counters
	ready  atomic.Bool

	mu    sync.RWMutex
	state *Trace
}

// NewService wraps a bundle with an initial queue state (may be empty)
// under the default resilience configuration.
func NewService(b *Bundle, initial *Trace) (*Service, error) {
	return NewServiceWith(b, initial, ServiceConfig{})
}

// NewServiceWith is NewService with an explicit resilience configuration.
func NewServiceWith(b *Bundle, initial *Trace, cfg ServiceConfig) (*Service, error) {
	if b == nil {
		return nil, fmt.Errorf("trout: service needs a bundle")
	}
	if initial == nil {
		initial = &Trace{}
	}
	cfg.defaults()
	s := &Service{bundle: b, cfg: cfg, tiers: resilience.NewCounters(), state: initial}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the /ready endpoint; the daemon marks itself unready
// before draining so load balancers stop routing new traffic.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// FallbackCounters exposes a snapshot of the per-tier prediction counters.
func (s *Service) FallbackCounters() map[string]uint64 { return s.tiers.Snapshot() }

// Handler returns the service's HTTP routes wrapped in the resilience
// middleware stack (outermost first): panic recovery, per-request
// deadline, body limit.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/ready", s.handleReady)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/features", s.handleFeatures)
	var h http.Handler = mux
	h = resilience.MaxBytes(h, s.cfg.MaxBodyBytes)
	h = resilience.Timeout(h, s.cfg.RequestTimeout, s.cfg.Logf)
	h = resilience.Recover(h, s.cfg.Logf)
	return h
}

// healthResponse is the /health payload.
type healthResponse struct {
	Status        string            `json:"status"`
	CutoffMinutes float64           `json:"cutoff_minutes"`
	NumFeatures   int               `json:"num_features"`
	QueueJobs     int               `json:"queue_jobs"`
	Partitions    int               `json:"partitions"`
	FallbackTiers map[string]uint64 `json:"fallback_tiers"`
	Degraded      bool              `json:"degraded"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	s.mu.RLock()
	n := len(s.state.Jobs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		CutoffMinutes: s.bundle.Model.Cfg.CutoffMinutes,
		NumFeatures:   s.bundle.Model.NumInputs,
		QueueJobs:     n,
		Partitions:    len(s.bundle.Cluster.Partitions),
		FallbackTiers: s.tiers.Snapshot(),
		Degraded:      s.tiers.Degraded(resilience.TierNN),
	})
}

func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if !s.ready.Load() {
		resilience.WriteError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

// parseJobID strictly parses a ?job=ID query parameter: the whole value
// must be an integer (fmt.Sscanf's tolerance for trailing garbage like
// "12abc" let malformed requests through as job 12).
func parseJobID(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("job")
	if raw == "" {
		return 0, fmt.Errorf("need ?job=<id>")
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad job id %q", raw)
	}
	return id, nil
}

// predictRequest is the POST /predict body: a hypothetical job plus the
// prediction instant.
type predictRequest struct {
	At  int64     `json:"at"`
	Job trace.Job `json:"job"`
}

// predictResponse is the /predict payload. Tier names the fallback tier
// that answered ("nn" when the neural network is healthy).
type predictResponse struct {
	Long    bool    `json:"long"`
	Prob    float64 `json:"prob"`
	Minutes float64 `json:"minutes,omitempty"`
	Message string  `json:"message"`
	Tier    string  `json:"tier"`
	Pending int     `json:"pending_in_snapshot"`
	Running int     `json:"running_in_snapshot"`
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	var snap *Snapshot
	switch r.Method {
	case http.MethodGet:
		jobID, err := parseJobID(r)
		if err != nil {
			resilience.WriteError(w, http.StatusBadRequest, fmt.Sprintf("predict: %v", err))
			return
		}
		s.mu.RLock()
		sn, err := SnapshotFromTrace(s.state, jobID)
		s.mu.RUnlock()
		if err != nil {
			resilience.WriteError(w, http.StatusNotFound, err.Error())
			return
		}
		snap = sn
	case http.MethodPost:
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("predict: bad body: %v", err))
			return
		}
		if req.At == 0 {
			resilience.WriteError(w, http.StatusBadRequest, "predict: need at (unix seconds)")
			return
		}
		if req.Job.Eligible == 0 {
			req.Job.Eligible = req.At
		}
		if req.Job.Submit == 0 {
			req.Job.Submit = req.At
		}
		s.mu.RLock()
		snap = snapshotAtInstant(s.state, req.At, req.Job)
		s.mu.RUnlock()
	default:
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}

	pred, err := s.bundle.PredictWithFallback(snap)
	if err != nil {
		s.tiers.Inc(resilience.TierError)
		resilience.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.tiers.Inc(pred.Tier)
	writeJSON(w, http.StatusOK, predictResponse{
		Long: pred.Long, Prob: pred.Prob, Minutes: pred.Minutes,
		Message: pred.Message(s.bundle.Model.Cfg.CutoffMinutes),
		Tier:    pred.Tier,
		Pending: len(snap.Pending), Running: len(snap.Running),
	})
}

// stateResponse is the POST /state payload, reporting how the tolerant
// ingestion went.
type stateResponse struct {
	Jobs    int `json:"jobs"`
	Skipped int `json:"skipped_rows,omitempty"`
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	tr, rep, err := trace.ReadJSONLTolerant(r.Body, s.cfg.MaxBadStateRows)
	if err != nil {
		resilience.WriteError(w, resilience.BodyErrorStatus(err), fmt.Sprintf("state: %v", err))
		return
	}
	s.mu.Lock()
	s.state = tr
	n := len(tr.Jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stateResponse{Jobs: n, Skipped: rep.Skipped})
}

func (s *Service) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		resilience.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	jobID, err := parseJobID(r)
	if err != nil {
		resilience.WriteError(w, http.StatusBadRequest, fmt.Sprintf("features: %v", err))
		return
	}
	s.mu.RLock()
	snap, err := SnapshotFromTrace(s.state, jobID)
	s.mu.RUnlock()
	if err != nil {
		resilience.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	row, err := s.bundle.FeatureRow(snap)
	if err != nil {
		resilience.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make(map[string]float64, len(row))
	for i, v := range row {
		out[FeatureNames[i]] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// snapshotAtInstant reconstructs queue state at an arbitrary time with the
// hypothetical job injected as target.
func snapshotAtInstant(tr *Trace, at int64, target trace.Job) *Snapshot {
	snap := &Snapshot{Now: at, Target: target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch {
		case j.Eligible <= at && at < j.Start:
			snap.Pending = append(snap.Pending, j)
		case j.Start <= at && at < j.End:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	return snap
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
