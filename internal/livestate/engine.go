package livestate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/trace"
)

// historyRetention is how long submissions stay indexed: the 24 h window
// the user-activity features need, plus an hour of slack so snapshots
// slightly behind the newest event still see a complete window.
const historyRetention = 86400 + 3600

// Engine apply errors, matchable with errors.Is. They mark events the
// engine refused (and counted), not engine corruption — a live stream with
// occasional duplicates or unknown references keeps flowing.
var (
	ErrUnknownJob = errors.New("livestate: event references unknown job")
	ErrDuplicate  = errors.New("livestate: duplicate event for job")
	ErrStale      = errors.New("livestate: event arrived after job reached a later phase")
)

// jobState is one tracked job plus its lifecycle phase. The embedded record
// accumulates times as events arrive (Eligible from the eligible event,
// Start from start, End+State from end/cancel).
type jobState struct {
	job   trace.Job
	phase Phase
}

// partState indexes one partition's active queue. Pending and running are
// kept sorted by job ID so snapshot extraction emits deterministic,
// trace-order-compatible slices without re-sorting.
type partState struct {
	pending sortedJobs
	running sortedJobs
}

// sortedJobs is a job-ID-sorted set of jobState pointers with O(log n)
// search and O(n) memmove insert/remove — active queues are small (hundreds
// to low thousands), where contiguous storage beats tree overhead.
type sortedJobs []*jobState

func (s sortedJobs) search(id int) int {
	return sort.Search(len(s), func(i int) bool { return s[i].job.ID >= id })
}

func (s *sortedJobs) insert(js *jobState) {
	i := s.search(js.job.ID)
	*s = append(*s, nil)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = js
}

func (s *sortedJobs) remove(id int) bool {
	i := s.search(id)
	if i >= len(*s) || (*s)[i].job.ID != id {
		return false
	}
	copy((*s)[i:], (*s)[i+1:])
	(*s)[len(*s)-1] = nil
	*s = (*s)[:len(*s)-1]
	return true
}

// histEntry is one submission in the 24 h ring.
type histEntry struct {
	id     int
	user   int
	submit int64
}

// Engine is the event-sourced live cluster state. All methods are safe for
// concurrent use; snapshot extraction holds only a read lock.
type Engine struct {
	mu    sync.RWMutex
	jobs  map[int]*jobState
	parts map[string]*partState
	// users indexes job IDs per user in submission order — the source for
	// the past-day user-activity features.
	users map[int][]int
	// ring holds submissions in arrival order; head marks the oldest live
	// entry (pruned lazily as now advances past the retention window).
	ring []histEntry
	head int
	// endq orders running jobs by expected completion (Start + TimeLimit).
	endq   endHeap
	now    int64
	counts map[EventType]uint64
	errs   uint64
	// onStart, when set, observes applied start events (the online
	// accuracy tracker's join signal). Invoked outside the engine lock.
	onStart func(jobID int, eligible, start int64)
	// ver counts state mutations: every successfully applied event, bulk
	// seed, and checkpoint restore bumps it (always under e.mu, read
	// lock-free). It is the snapshot cache's invalidation key: two reads
	// at the same version observed identical engine state, and any WAL
	// replay, /state reseed, or follower re-snapshot moves it.
	ver atomic.Uint64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	e := &Engine{}
	e.reset()
	return e
}

func (e *Engine) reset() {
	e.jobs = make(map[int]*jobState)
	e.parts = make(map[string]*partState)
	e.users = make(map[int][]int)
	e.ring = nil
	e.head = 0
	e.endq = endHeap{}
	e.now = 0
	e.counts = make(map[EventType]uint64)
	e.errs = 0
}

func (e *Engine) part(name string) *partState {
	p := e.parts[name]
	if p == nil {
		p = &partState{}
		e.parts[name] = p
	}
	return p
}

// SetStartObserver registers fn to be called after every successfully
// applied start event with the job's ID, eligible time, and start time.
// The callback runs outside the engine lock, so it may call back into the
// engine; it must be fast (it sits on the event-ingest path). A nil fn
// clears the observer. Replace-style loads (SeedFromTrace, checkpoint
// restore) do not fire it — only live start events do.
func (e *Engine) SetStartObserver(fn func(jobID int, eligible, start int64)) {
	e.mu.Lock()
	e.onStart = fn
	e.mu.Unlock()
}

// ApplyEvent applies one event. Rejected events (duplicate, unknown job,
// stale ordering, invalid shape) return a typed error and leave state
// untouched; the stream is expected to continue.
func (e *Engine) ApplyEvent(ev Event) error {
	e.mu.Lock()
	err := e.apply(ev)
	var notify func()
	if err == nil && ev.Type == EventStart && e.onStart != nil {
		if js, ok := e.jobs[ev.ID()]; ok {
			fn := e.onStart
			id, eligible, start := js.job.ID, js.job.Eligible, js.job.Start
			notify = func() { fn(id, eligible, start) }
		}
	}
	e.mu.Unlock()
	if notify != nil {
		notify()
	}
	return err
}

func (e *Engine) apply(ev Event) error {
	if err := ev.Validate(); err != nil {
		e.errs++
		return err
	}
	id := ev.ID()
	var err error
	switch ev.Type {
	case EventSubmit:
		err = e.applySubmit(ev)
	case EventEligible:
		err = e.applyEligible(id, ev.Time)
	case EventStart:
		err = e.applyStart(id, ev.Time)
	case EventEnd:
		st := ev.State
		if st == "" {
			st = trace.StateCompleted
		}
		err = e.applyTerminal(id, ev.Time, st)
	case EventCancel:
		err = e.applyTerminal(id, ev.Time, trace.StateCancelled)
	}
	if err != nil {
		e.errs++
		return err
	}
	e.counts[ev.Type]++
	if ev.Time > e.now {
		e.now = ev.Time
		e.prune()
	}
	e.ver.Add(1)
	return nil
}

func (e *Engine) applySubmit(ev Event) error {
	j := *ev.Job
	if j.ID == 0 {
		j.ID = ev.JobID
	}
	if _, ok := e.jobs[j.ID]; ok {
		return fmt.Errorf("%w: submit for job %d", ErrDuplicate, j.ID)
	}
	j.Submit = ev.Time
	j.Eligible, j.Start, j.End = 0, 0, 0
	j.State = ""
	js := &jobState{job: j, phase: PhaseSubmitted}
	e.jobs[j.ID] = js
	// A submission already outside the retention window (a stale-timestamped
	// event behind the engine clock) can never appear in a served 24 h
	// history window, and prune pops from the ring head only — an expired
	// entry behind live ones would linger unboundedly. Track the job but
	// keep it out of the history index.
	if j.Submit >= e.now-historyRetention {
		e.addHistory(js)
	}
	return nil
}

func (e *Engine) applyEligible(id int, t int64) error {
	js, ok := e.jobs[id]
	if !ok {
		return fmt.Errorf("%w: eligible for job %d", ErrUnknownJob, id)
	}
	switch js.phase {
	case PhaseSubmitted:
	case PhasePending:
		return fmt.Errorf("%w: job %d already eligible", ErrDuplicate, id)
	default:
		return fmt.Errorf("%w: eligible for job %d in phase %d", ErrStale, id, js.phase)
	}
	js.job.Eligible = t
	js.phase = PhasePending
	e.part(js.job.Partition).pending.insert(js)
	return nil
}

func (e *Engine) applyStart(id int, t int64) error {
	js, ok := e.jobs[id]
	if !ok {
		return fmt.Errorf("%w: start for job %d", ErrUnknownJob, id)
	}
	switch js.phase {
	case PhasePending:
		e.part(js.job.Partition).pending.remove(id)
	case PhaseSubmitted:
		// Tolerate a stream that skipped the eligible event: starting
		// implies eligibility, at the latest now.
		js.job.Eligible = t
	default:
		return fmt.Errorf("%w: start for job %d in phase %d", ErrStale, id, js.phase)
	}
	js.job.Start = t
	js.phase = PhaseRunning
	e.part(js.job.Partition).running.insert(js)
	e.endq.push(id, expectedEnd(&js.job))
	return nil
}

func (e *Engine) applyTerminal(id int, t int64, st trace.JobState) error {
	js, ok := e.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s for job %d", ErrUnknownJob, st, id)
	}
	switch js.phase {
	case PhasePending:
		e.part(js.job.Partition).pending.remove(id)
	case PhaseRunning:
		e.part(js.job.Partition).running.remove(id)
		e.endq.remove(id)
	case PhaseSubmitted:
	default:
		return fmt.Errorf("%w: %s for job %d already terminal", ErrDuplicate, st, id)
	}
	js.job.End = t
	js.job.State = st
	js.phase = PhaseDone
	// History pruning is what normally deletes terminal jobs, keyed off the
	// ring entry made at submit time. A job whose submission has already
	// aged out has no live ring entry to trigger that, so drop it here —
	// nothing can read it again.
	if js.job.Submit < e.now-historyRetention {
		delete(e.jobs, id)
	}
	return nil
}

// addHistory records a submission in the ring and per-user index.
func (e *Engine) addHistory(js *jobState) {
	e.ring = append(e.ring, histEntry{id: js.job.ID, user: js.job.User, submit: js.job.Submit})
	e.users[js.job.User] = append(e.users[js.job.User], js.job.ID)
}

// prune drops submissions that aged out of the retention window, and with
// them any terminal job records that only history kept alive. Active jobs
// (pending/running) stay tracked regardless of age.
func (e *Engine) prune() {
	cutoff := e.now - historyRetention
	for e.head < len(e.ring) && e.ring[e.head].submit < cutoff {
		ent := e.ring[e.head]
		e.head++
		if ids := e.users[ent.user]; len(ids) > 0 {
			// Per-user IDs are appended in ring order, so the pruned entry
			// is at (or near, for mildly out-of-order streams) the front.
			if ids[0] == ent.id {
				ids = ids[1:]
			} else {
				for k, id := range ids {
					if id == ent.id {
						ids = append(ids[:k], ids[k+1:]...)
						break
					}
				}
			}
			if len(ids) == 0 {
				delete(e.users, ent.user)
			} else {
				e.users[ent.user] = ids
			}
		}
		if js, ok := e.jobs[ent.id]; ok && js.phase == PhaseDone {
			delete(e.jobs, ent.id)
		}
	}
	// Compact the ring once the dead prefix dominates.
	if e.head > 1024 && e.head*2 > len(e.ring) {
		e.ring = append([]histEntry(nil), e.ring[e.head:]...)
		e.head = 0
	}
}

// expectedEnd is the scheduler's view of when a running job must be done.
func expectedEnd(j *trace.Job) int64 { return j.Start + j.TimeLimit }

// SeedReport summarizes a bulk load.
type SeedReport struct {
	// Active is the number of pending/running/submitted jobs loaded.
	Active int
	// History is the number of terminal jobs kept for the 24 h window.
	History int
	// Dropped counts terminal jobs outside the window (not tracked).
	Dropped int
	// Now is the engine clock after the load (max timestamp seen).
	Now int64
}

// SeedFromTrace replaces the engine state with a bulk-loaded trace — the
// POST /state path. Jobs are classified by PhaseAt at the trace's newest
// timestamp: open-interval jobs become the live pending/running sets, and
// completed jobs inside the retention window seed the submission history.
func (e *Engine) SeedFromTrace(tr *trace.Trace) SeedReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reset()
	var now int64
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		for _, t := range [4]int64{j.Submit, j.Eligible, j.Start, j.End} {
			if t > now {
				now = t
			}
		}
	}
	e.now = now
	var rep SeedReport
	rep.Now = now
	cutoff := now - historyRetention
	order := make([]int, 0, len(tr.Jobs))
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.ID == 0 || j.Submit <= 0 {
			continue
		}
		if _, ok := e.jobs[j.ID]; ok {
			continue
		}
		ph := PhaseAt(&j, now)
		if ph == PhaseNone {
			continue
		}
		if ph == PhaseDone && j.Submit < cutoff {
			rep.Dropped++
			continue
		}
		js := &jobState{job: j, phase: ph}
		e.jobs[j.ID] = js
		switch ph {
		case PhasePending:
			e.part(j.Partition).pending.insert(js)
			rep.Active++
		case PhaseRunning:
			e.part(j.Partition).running.insert(js)
			e.endq.push(j.ID, expectedEnd(&j))
			rep.Active++
		case PhaseSubmitted:
			rep.Active++
		default:
			rep.History++
		}
		if j.Submit >= cutoff {
			order = append(order, i)
		}
	}
	// The ring must be in submission order for pruning to work.
	sort.Slice(order, func(a, b int) bool {
		ja, jb := &tr.Jobs[order[a]], &tr.Jobs[order[b]]
		if ja.Submit != jb.Submit {
			return ja.Submit < jb.Submit
		}
		return ja.ID < jb.ID
	})
	for _, i := range order {
		if js, ok := e.jobs[tr.Jobs[i].ID]; ok {
			e.addHistory(js)
		}
	}
	e.counts["seed"] += uint64(rep.Active + rep.History)
	e.ver.Add(1)
	return rep
}

// CompletedJobs returns the realized-outcome records the engine retains:
// terminal jobs with a full lifecycle (Eligible and Start set, so the queue
// wait is realized; End at or past Start, so the runtime is too), sorted by
// eligibility then ID — the same order features.Build imposes. This is the
// continual-learning control plane's training-data source: every record's
// Start-Eligible is a ground-truth queue wait observed by the event stream,
// bounded by the engine's history-retention window.
func (e *Engine) CompletedJobs() []trace.Job {
	e.mu.RLock()
	out := make([]trace.Job, 0, len(e.jobs))
	for _, js := range e.jobs {
		j := js.job
		if js.phase == PhaseDone && j.Eligible > 0 && j.Start >= j.Eligible && j.End >= j.Start {
			out = append(out, j)
		}
	}
	e.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Eligible != out[b].Eligible {
			return out[a].Eligible < out[b].Eligible
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Now returns the engine clock (the newest event time applied).
func (e *Engine) Now() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.now
}

// Ready reports whether the engine can answer a prediction at instant at:
// it tracks some state and at is not so far in the past that pruned
// history would make the answer wrong. Instants at or beyond the engine
// clock are always fine — that is the live-prediction case.
func (e *Engine) Ready(at int64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.jobs) > 0 && at >= e.now-3600
}

// SnapshotAt extracts a features.Snapshot for a target job against the
// current indexed state: the target partition's pending/running sets are
// read off the sorted indexes (every partition is included so snapshot
// consumers see cluster-wide queue depth) and the target user's past-day
// submissions come from the history index — O(log n + k) in the active-set
// size, never O(trace).
func (e *Engine) SnapshotAt(target trace.Job, at int64) *features.Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := &features.Snapshot{Now: at, Target: target}
	snap.Pending, snap.Running = e.pendingRunningLocked(at)
	snap.History = e.userHistoryLocked(target.User, at)
	return snap
}

// pendingRunningLocked reads the cluster-wide pending/running sets at an
// instant off the sorted partition indexes. Callers hold e.mu.
func (e *Engine) pendingRunningLocked(at int64) (pending, running []trace.Job) {
	names := make([]string, 0, len(e.parts))
	for nm := range e.parts {
		names = append(names, nm)
	}
	sort.Strings(names)
	for _, nm := range names {
		p := e.parts[nm]
		for _, js := range p.pending {
			if js.job.Eligible <= at {
				pending = append(pending, js.job)
			}
		}
		for _, js := range p.running {
			if js.job.Start <= at {
				running = append(running, js.job)
			}
		}
	}
	return pending, running
}

// userHistoryLocked reads one user's past-day submissions from the history
// index, ID-sorted. Callers hold e.mu.
func (e *Engine) userHistoryLocked(user int, at int64) []trace.Job {
	ids := e.users[user]
	hist := make([]int, 0, len(ids))
	for _, id := range ids {
		js, ok := e.jobs[id]
		if !ok {
			continue
		}
		if s := js.job.Submit; s >= at-86400 && s < at {
			hist = append(hist, id)
		}
	}
	sort.Ints(hist)
	var out []trace.Job
	for _, id := range hist {
		out = append(out, e.jobs[id].job)
	}
	return out
}

// SnapshotBatch extracts one snapshot per target, all at the same instant,
// under a single lock acquisition: the cluster-wide pending/running sets are
// computed once and shared (callers treat snapshots as read-only), and the
// per-user history index is consulted once per distinct user. Each returned
// snapshot is element-wise identical to SnapshotAt(target, at) — the batch
// prediction path depends on that equivalence.
func (e *Engine) SnapshotBatch(targets []trace.Job, at int64) []*features.Snapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	pending, running := e.pendingRunningLocked(at)
	histories := make(map[int][]trace.Job)
	snaps := make([]*features.Snapshot, len(targets))
	for i, target := range targets {
		hist, ok := histories[target.User]
		if !ok {
			hist = e.userHistoryLocked(target.User, at)
			histories[target.User] = hist
		}
		snaps[i] = &features.Snapshot{
			Now: at, Target: target,
			Pending: pending, Running: running, History: hist,
		}
	}
	return snaps
}

// SnapshotForJob extracts a snapshot for a tracked pending job at the
// engine clock. Jobs the engine does not track — or that already started —
// are the legacy trace-scan path's business, so they return an error.
func (e *Engine) SnapshotForJob(id int) (*features.Snapshot, error) {
	target, now, err := e.TargetForJob(id)
	if err != nil {
		return nil, err
	}
	return e.SnapshotAt(target, now), nil
}

// TargetForJob resolves the target record and prediction instant for a
// tracked pending job — the front half of SnapshotForJob, split out so the
// serving layer can pair it with a cached pending/running extraction.
func (e *Engine) TargetForJob(id int) (trace.Job, int64, error) {
	e.mu.RLock()
	js, ok := e.jobs[id]
	var target trace.Job
	var now int64
	if ok && js.phase == PhasePending {
		target = js.job
		now = e.now
	} else {
		ok = false
	}
	e.mu.RUnlock()
	if !ok {
		return trace.Job{}, 0, fmt.Errorf("livestate: job %d is not a tracked pending job", id)
	}
	if target.Eligible > now {
		now = target.Eligible
	}
	return target, now, nil
}

// Version returns the engine's mutation counter, lock-free. It moves on
// every applied event, bulk seed, and checkpoint/snapshot restore; callers
// caching derived state key it by this value.
func (e *Engine) Version() uint64 { return e.ver.Load() }

// PendingRunning extracts the cluster-wide pending/running sets at an
// instant together with the engine version those sets correspond to (read
// under the same lock, so the pair is consistent). The slices are the same
// data SnapshotAt would embed; callers treat them as read-only and may
// share them across any number of snapshots at the same (version, at).
func (e *Engine) PendingRunning(at int64) (pending, running []trace.Job, ver uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	pending, running = e.pendingRunningLocked(at)
	return pending, running, e.ver.Load()
}

// UserHistoryChecked extracts one user's past-day submission history at an
// instant, but only if the engine is still at version wantVer — the caller
// holds pending/running sets read at that version and must not pair them
// with history from a newer state. ok=false means the engine moved on and
// the caller's whole cached extraction is stale.
func (e *Engine) UserHistoryChecked(user int, at int64, wantVer uint64) (hist []trace.Job, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ver.Load() != wantVer {
		return nil, false
	}
	return e.userHistoryLocked(user, at), true
}

// PartCounts is one partition's live queue depth.
type PartCounts struct {
	Pending int
	Running int
}

// Stats is a point-in-time summary of the engine, the source for the
// /metrics livestate gauges.
type Stats struct {
	Now            int64
	Tracked        int
	Pending        int
	Running        int
	Submitted      int
	HistoryEntries int
	Partitions     map[string]PartCounts
	// Events counts applied events by type ("seed" counts bulk-loaded
	// records); ApplyErrors counts rejected events.
	Events      map[string]uint64
	ApplyErrors uint64
	// NextExpectedEnd is the soonest Start+TimeLimit over running jobs
	// (0 when nothing runs) — the heap index's peek.
	NextExpectedEnd int64
}

// Stats snapshots the engine's counters and index sizes.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{
		Now:            e.now,
		Tracked:        len(e.jobs),
		HistoryEntries: len(e.ring) - e.head,
		Partitions:     make(map[string]PartCounts, len(e.parts)),
		Events:         make(map[string]uint64, len(e.counts)),
		ApplyErrors:    e.errs,
	}
	for nm, p := range e.parts {
		pc := PartCounts{Pending: len(p.pending), Running: len(p.running)}
		if pc.Pending == 0 && pc.Running == 0 {
			continue
		}
		st.Partitions[nm] = pc
		st.Pending += pc.Pending
		st.Running += pc.Running
	}
	for _, js := range e.jobs {
		if js.phase == PhaseSubmitted {
			st.Submitted++
		}
	}
	for ty, n := range e.counts {
		st.Events[string(ty)] = n
	}
	if id, end, ok := e.endq.peek(); ok {
		_ = id
		st.NextExpectedEnd = end
	}
	return st
}

// dto is the gob wire form of the engine: the tracked job records, the
// live submission ring, and counters. The ring is serialized verbatim —
// recomputing membership from job records would diverge from live state
// whenever the stream's timestamps trail the engine clock — so a restored
// engine is a faithful copy, not a re-derivation. Index structures
// (partition sets, end-heap, per-user lists) are rebuilt on load.
type dto struct {
	Jobs   []dtoJob
	Ring   []dtoHist
	Now    int64
	Counts map[string]uint64
	Errs   uint64
}

type dtoJob struct {
	Job   trace.Job
	Phase uint8
}

type dtoHist struct {
	ID     int
	User   int
	Submit int64
}

// snapshotDTO captures the engine for a checkpoint.
func (e *Engine) snapshotDTO() dto {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d := dto{Now: e.now, Errs: e.errs, Counts: make(map[string]uint64, len(e.counts))}
	for ty, n := range e.counts {
		d.Counts[string(ty)] = n
	}
	d.Jobs = make([]dtoJob, 0, len(e.jobs))
	ids := make([]int, 0, len(e.jobs))
	for id := range e.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		js := e.jobs[id]
		d.Jobs = append(d.Jobs, dtoJob{Job: js.job, Phase: uint8(js.phase)})
	}
	live := e.ring[e.head:]
	d.Ring = make([]dtoHist, 0, len(live))
	for _, h := range live {
		d.Ring = append(d.Ring, dtoHist{ID: h.id, User: h.user, Submit: h.submit})
	}
	return d
}

// restoreDTO replaces engine state from a checkpoint, rebuilding every
// index from the job records.
func (e *Engine) restoreDTO(d dto) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reset()
	e.now = d.Now
	e.errs = d.Errs
	for ty, n := range d.Counts {
		e.counts[EventType(ty)] = n
	}
	for i := range d.Jobs {
		j := d.Jobs[i].Job
		js := &jobState{job: j, phase: Phase(d.Jobs[i].Phase)}
		e.jobs[j.ID] = js
		switch js.phase {
		case PhasePending:
			e.part(j.Partition).pending.insert(js)
		case PhaseRunning:
			e.part(j.Partition).running.insert(js)
			e.endq.push(j.ID, expectedEnd(&j))
		}
	}
	// The ring (and the per-user index it implies) is restored verbatim:
	// it must match what the live engine held at checkpoint time, entry for
	// entry, or recovered snapshots drift from pre-crash ones.
	e.ring = make([]histEntry, 0, len(d.Ring))
	for _, h := range d.Ring {
		e.ring = append(e.ring, histEntry{id: h.ID, user: h.User, submit: h.Submit})
		e.users[h.User] = append(e.users[h.User], h.ID)
	}
	e.ver.Add(1)
}

// endHeap is an indexed min-heap of running jobs keyed by expected end,
// supporting O(log n) removal by job ID when end events arrive out of
// expected order — the running-set index the drain-time gauge reads.
type endHeap struct {
	items []endItem
	pos   map[int]int
}

type endItem struct {
	id  int
	end int64
}

func (h *endHeap) push(id int, end int64) {
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
	if _, ok := h.pos[id]; ok {
		h.remove(id)
	}
	h.items = append(h.items, endItem{id: id, end: end})
	h.pos[id] = len(h.items) - 1
	h.up(len(h.items) - 1)
}

func (h *endHeap) peek() (id int, end int64, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	return h.items[0].id, h.items[0].end, true
}

func (h *endHeap) remove(id int) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	delete(h.pos, id)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

func (h *endHeap) less(a, b int) bool {
	if h.items[a].end != h.items[b].end {
		return h.items[a].end < h.items[b].end
	}
	return h.items[a].id < h.items[b].id
}

func (h *endHeap) swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.pos[h.items[a].id] = a
	h.pos[h.items[b].id] = b
}

func (h *endHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *endHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
