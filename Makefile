GO ?= go

# Trace size for the snapshot benchmarks (legacy scan vs livestate engine).
BENCH_JOBS ?= 50000
# Repetitions per benchmark; pipe the output into benchstat to compare runs.
BENCH_COUNT ?= 5

.PHONY: all build test race vet fmt-check fuzz-smoke metrics-smoke replication-smoke controlplane-smoke serving-smoke trace-smoke bench bench-json bench-smoke bench-check ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Root-package service tests train models; under the race detector on a
# single-CPU box that brushes the default 10m per-package limit.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz of the event decoder, the WAL segment reader, the model
# registry manifest decoder, and the forest gob decoder (corpus seeds +
# 5s of mutation each; Go allows one -fuzz target per run).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvent -fuzztime 5s ./internal/livestate
	$(GO) test -run '^$$' -fuzz FuzzReadSegment -fuzztime 5s ./internal/livestate
	$(GO) test -run '^$$' -fuzz FuzzManifestDecode -fuzztime 5s ./internal/controlplane
	$(GO) test -run '^$$' -fuzz FuzzForestGob -fuzztime 5s ./internal/baselines

# Line-by-line lint of the /metrics Prometheus exposition (HELP/TYPE
# pairing, label escaping, cumulative buckets, deterministic ordering).
metrics-smoke:
	$(GO) test -run TestMetricsExposition .

# Replication fault-injection suite under the race detector: leader
# kill -9/restart mid-stream, torn WAL tails, segment truncation, flaky
# and slow networks — followers must converge bit-identically and no
# acked event may be lost.
replication-smoke:
	$(GO) test -race -count=1 ./internal/replication/...

# Continual-learning loop, in process and seconds-scale: drift on live
# traffic triggers a retrain, the candidate shadow-scores against the
# incumbent, and the serving bundle hot-swaps (or, for a worse candidate,
# is rejected) under concurrent predict load — plus the registry
# crash-safety and controller state-machine suites.
controlplane-smoke:
	$(GO) test -count=1 ./internal/controlplane
	$(GO) test -run 'TestControlPlane|TestHotSwapHammer|TestAdminSwapCompatGuard' -count=1 .

# Short in-process loadgen run against the serving hot path (snapshot
# cache, optional coalescing, zero-alloc JSON): every response must pass
# strict validation, the hard error rate must be exactly zero, and p99
# must stay under a generous bound. Correctness tripwire, not a perf gate.
serving-smoke:
	$(GO) test -run 'TestServingSmoke' -count=1 .

# Serving smoke with tracing fully on: every exported JSONL trace line is
# schema-checked (16-hex IDs, parent refs resolving in-line, children
# nested inside their parents' intervals), plus the slow-request
# acceptance pin (export + /debug/requests agree on the trace ID).
trace-smoke:
	$(GO) test -run 'TestTraceSmoke|TestTraceSlowRequestRecorded|TestWriteProxyTraceContinuity' -count=1 .

# Legacy O(N) snapshot scan vs the livestate engine's indexed extraction,
# in benchstat-friendly form:
#   make bench > new.txt && benchstat old.txt new.txt
bench:
	TROUT_BENCH_JOBS=$(BENCH_JOBS) $(GO) test -run '^$$' \
		-bench 'SnapshotAtInstant$$|LiveStateSnapshot$$' \
		-benchmem -count $(BENCH_COUNT) .

# Hot-path benchmark suites, archived as JSON so runs diff cleanly:
#   BENCH_inference.json — single vs sequential-64 vs batched-64 predicts,
#                          warm-forward allocation profile, flat vs pointer
#                          forest/GBDT ensemble walks
#   BENCH_train.json     — tree-ensemble fits (histogram vs exact), one NN
#                          training epoch, hyperopt search loops
#   BENCH_serving.json   — full HTTP /predict round trips (sequential,
#                          parallel across procs, 64-job batch) through the
#                          shared snapshot cache and pooled JSON path
bench-json:
	$(GO) test -run '^$$' -bench 'PredictSingle$$|PredictSequential64$$|PredictBatch64$$|ForwardAllocs$$' \
		-benchmem . > bench_inference.txt
	$(GO) test -run '^$$' -bench 'ForestPredict$$|GBDTPredict$$' -benchmem ./internal/baselines >> bench_inference.txt
	$(GO) run ./cmd/benchjson -o BENCH_inference.json bench_inference.txt
	$(GO) test -run '^$$' -bench 'ForestFit$$|GBDTFit$$' -benchmem ./internal/baselines > bench_train.txt
	$(GO) test -run '^$$' -bench 'TrainEpoch$$' -benchmem ./internal/nn >> bench_train.txt
	$(GO) test -run '^$$' -bench 'HyperoptSearch$$|HyperoptGBDTSearch$$' -benchmem ./internal/hyperopt >> bench_train.txt
	$(GO) run ./cmd/benchjson -o BENCH_train.json bench_train.txt
	$(GO) test -run '^$$' -bench 'HTTPPredict$$|HTTPPredictParallel$$|HTTPPredictBatch64$$' \
		-benchmem . > bench_serving.txt
	$(GO) run ./cmd/benchjson -o BENCH_serving.json bench_serving.txt
	rm -f bench_inference.txt bench_train.txt bench_serving.txt

# One-iteration pass over the same benchmarks so CI catches bit-rot in the
# bench harness without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PredictSingle$$|PredictBatch64$$|ForwardAllocs$$' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'HyperoptSearch' -benchtime 1x ./internal/hyperopt

# Regression gate, two halves. Training-path benchmarks run one shot each
# (a fit is seconds of sample on its own); inference benchmarks run enough
# iterations that even the sub-microsecond single-predict path accumulates
# a >=100µs sample, so benchjson -check can gate it instead of skipping it.
# Both must stay within 2x of their committed BENCH_*.json baseline.
# Refresh the baselines with `make bench-json` after an intentional change.
bench-check:
	$(GO) test -run '^$$' -bench 'ForestFit$$|GBDTFit$$' -benchtime 1x ./internal/baselines > bench_check.txt
	$(GO) test -run '^$$' -bench 'TrainEpoch$$' -benchtime 1x ./internal/nn >> bench_check.txt
	$(GO) run ./cmd/benchjson -check BENCH_train.json bench_check.txt
	$(GO) test -run '^$$' -bench 'PredictSingle$$|PredictSequential64$$|PredictBatch64$$|ForwardAllocs$$' \
		-benchtime 200x . > bench_check.txt
	$(GO) test -run '^$$' -bench 'ForestPredict$$|GBDTPredict$$' -benchtime 20x ./internal/baselines >> bench_check.txt
	$(GO) run ./cmd/benchjson -check BENCH_inference.json bench_check.txt
	$(GO) test -run '^$$' -bench 'HTTPPredict$$|HTTPPredictParallel$$|HTTPPredictBatch64$$' \
		-benchtime 20x . > bench_check.txt
	$(GO) run ./cmd/benchjson -check BENCH_serving.json bench_check.txt
	rm -f bench_check.txt

ci: fmt-check vet build race fuzz-smoke metrics-smoke replication-smoke controlplane-smoke serving-smoke trace-smoke bench-smoke bench-check

clean:
	$(GO) clean ./...
