package baselines

import (
	"math/rand"
	"testing"
)

func TestTreeSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	X, y := synthData(rng, 500, 4, linearFn, 0.2)
	tr := NewTree(TreeConfig{MaxDepth: 8, MinLeaf: 3})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	b, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		if tr.Predict(x) != back.Predict(x) {
			t.Fatal("round-tripped tree predicts differently")
		}
	}
	if back.NumLeaves() != tr.NumLeaves() || back.Depth() != tr.Depth() {
		t.Fatal("tree structure changed")
	}
}

func TestForestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := synthData(rng, 400, 3, linearFn, 0.3)
	fo := NewForest(ForestConfig{Trees: 15, Seed: 2, Workers: 4})
	if err := fo.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	b, err := fo.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		if fo.Predict(x) != back.Predict(x) {
			t.Fatal("round-tripped forest predicts differently")
		}
	}
}

func TestTreeUnmarshalGarbage(t *testing.T) {
	var tr Tree
	if err := tr.UnmarshalBinary([]byte("nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
	var fo Forest
	if err := fo.UnmarshalBinary([]byte{0x01, 0x02}); err == nil {
		t.Fatal("garbage forest accepted")
	}
}

func TestEmptyTreeSerialization(t *testing.T) {
	tr := NewTree(TreeConfig{})
	b, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if back.Predict([]float64{1}) != 0 {
		t.Fatal("empty tree should predict 0")
	}
}

func TestGBDTSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := synthData(rng, 300, 4, linearFn, 0.05)
	g := NewGBDT(GBDTConfig{Rounds: 20, Tree: TreeConfig{MaxDepth: 3}, Seed: 3})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	b, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back GBDT
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got, want := back.Predict(X[i]), g.Predict(X[i]); got != want {
			t.Fatalf("row %d: reloaded %v, original %v", i, got, want)
		}
	}
	if err := back.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
