GO ?= go

.PHONY: all build test race vet fmt-check ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race

clean:
	$(GO) clean ./...
