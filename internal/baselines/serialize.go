package baselines

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// flatNode is the wire form of one tree node; children are indices into the
// flattened node array (-1 for none).
type flatNode struct {
	Feature     int
	Threshold   float64
	Left, Right int
	Value       float64
	Leaf        bool
}

// flatten serializes a node subtree into out, returning the root index.
func flatten(n *treeNode, out *[]flatNode) int {
	if n == nil {
		return -1
	}
	idx := len(*out)
	*out = append(*out, flatNode{})
	l := flatten(n.left, out)
	r := flatten(n.right, out)
	(*out)[idx] = flatNode{
		Feature: n.feature, Threshold: n.threshold,
		Left: l, Right: r, Value: n.value, Leaf: n.leaf,
	}
	return idx
}

// unflatten rebuilds the subtree rooted at idx. The node array comes off
// the wire, so it is validated structurally: child indices must be in
// range and no node may be reached twice — a cycle or shared subtree in
// crafted input would otherwise recurse forever (the seen guard also
// bounds recursion depth at len(nodes)). Split features must be
// non-negative; the upper bound is checked against the tree's declared
// dimension by the caller.
func unflatten(nodes []flatNode, idx int, seen []bool) (*treeNode, error) {
	if idx == -1 {
		return nil, nil
	}
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("baselines: node index %d out of range", idx)
	}
	if seen[idx] {
		return nil, fmt.Errorf("baselines: node index %d reached twice (cycle)", idx)
	}
	seen[idx] = true
	f := nodes[idx]
	if !f.Leaf && f.Feature < 0 {
		return nil, fmt.Errorf("baselines: node %d: negative split feature %d", idx, f.Feature)
	}
	n := &treeNode{feature: f.Feature, threshold: f.Threshold, value: f.Value, leaf: f.Leaf}
	var err error
	if n.left, err = unflatten(nodes, f.Left, seen); err != nil {
		return nil, err
	}
	if n.right, err = unflatten(nodes, f.Right, seen); err != nil {
		return nil, err
	}
	if !n.leaf && (n.left == nil) != (n.right == nil) {
		return nil, fmt.Errorf("baselines: node %d: split with a single child", idx)
	}
	return n, nil
}

// treeDTO is the gob wire form of a Tree.
type treeDTO struct {
	Cfg   TreeConfig
	Dim   int
	Nodes []flatNode
	Root  int
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	dto := treeDTO{Cfg: t.Cfg, Dim: t.dim, Root: -1}
	dto.Root = flatten(t.root, &dto.Nodes)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	var dto treeDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return err
	}
	root, err := unflatten(dto.Nodes, dto.Root, make([]bool, len(dto.Nodes)))
	if err != nil {
		return err
	}
	if dto.Dim > 0 {
		for i, f := range dto.Nodes {
			if !f.Leaf && f.Feature >= dto.Dim {
				return fmt.Errorf("baselines: node %d: split feature %d out of range for dim %d", i, f.Feature, dto.Dim)
			}
		}
	}
	t.Cfg = dto.Cfg
	t.dim = dto.Dim
	t.root = root
	t.flat = flattenTree(root)
	return nil
}

// forestDTO is the gob wire form of a Forest.
type forestDTO struct {
	Cfg   ForestConfig
	Trees [][]byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Forest) MarshalBinary() ([]byte, error) {
	dto := forestDTO{Cfg: f.Cfg}
	for _, t := range f.trees {
		b, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		dto.Trees = append(dto.Trees, b)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *Forest) UnmarshalBinary(data []byte) error {
	var dto forestDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return err
	}
	f.Cfg = dto.Cfg
	f.trees = f.trees[:0]
	for i, tb := range dto.Trees {
		t := &Tree{}
		if err := t.UnmarshalBinary(tb); err != nil {
			return fmt.Errorf("baselines: forest tree %d: %w", i, err)
		}
		f.trees = append(f.trees, t)
	}
	f.ens = newFlatEnsemble(f.trees)
	return nil
}

// gbdtDTO is the gob wire form of a GBDT.
type gbdtDTO struct {
	Cfg   GBDTConfig
	Base  float64
	Trees [][]byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *GBDT) MarshalBinary() ([]byte, error) {
	dto := gbdtDTO{Cfg: g.Cfg, Base: g.base}
	for _, t := range g.trees {
		b, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		dto.Trees = append(dto.Trees, b)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (g *GBDT) UnmarshalBinary(data []byte) error {
	var dto gbdtDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return err
	}
	g.Cfg = dto.Cfg
	g.base = dto.Base
	g.trees = g.trees[:0]
	for i, tb := range dto.Trees {
		t := &Tree{}
		if err := t.UnmarshalBinary(tb); err != nil {
			return fmt.Errorf("baselines: gbdt tree %d: %w", i, err)
		}
		g.trees = append(g.trees, t)
	}
	g.ens = newFlatEnsemble(g.trees)
	return nil
}
