package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

// QuantileModel extends TROUT's point regressor with prediction intervals:
// one pinball-loss network per quantile over the long-job subset. The paper
// (§V) notes the point model "struggled to predict massive outliers";
// calibrated quantile bands communicate that uncertainty to users instead
// of hiding it.
type QuantileModel struct {
	Taus   []float64
	Nets   []*nn.Network
	Scaler scaling.Scaler
	Cutoff float64
}

// TrainQuantiles fits quantile regressors at the given taus (sorted
// ascending) on the long-job subset of trainIdx, reusing the hierarchical
// config's regressor architecture and scaler kind.
func TrainQuantiles(ds *features.Dataset, trainIdx []int, cfg Config, taus []float64) (*QuantileModel, error) {
	if len(taus) == 0 {
		return nil, fmt.Errorf("core: no quantiles requested")
	}
	sorted := append([]float64(nil), taus...)
	sort.Float64s(sorted)
	for _, tau := range sorted {
		if tau <= 0 || tau >= 1 {
			return nil, fmt.Errorf("core: quantile %v outside (0,1)", tau)
		}
	}
	scaler, err := scaling.New(cfg.Scaler)
	if err != nil {
		return nil, err
	}
	rawTrain := make([][]float64, len(trainIdx))
	for k, i := range trainIdx {
		rawTrain[k] = ds.X[i]
	}
	scaler.Fit(rawTrain)

	var X [][]float64
	var y []float64
	for _, i := range trainIdx {
		if ds.QueueMinutes[i] >= cfg.CutoffMinutes {
			X = append(X, scaler.Transform(ds.X[i]))
			y = append(y, math.Log1p(ds.QueueMinutes[i]))
		}
	}
	if len(X) < 10 {
		return nil, fmt.Errorf("core: only %d long jobs for quantile training", len(X))
	}
	xm, ym := toMatrices(X, y)
	dim := len(X[0])

	qm := &QuantileModel{Taus: sorted, Scaler: scaler, Cutoff: cfg.CutoffMinutes}
	h := cfg.Regressor
	for qi, tau := range sorted {
		rng := rand.New(rand.NewSource(cfg.Seed + 500 + int64(qi)))
		net := nn.NewNetwork(rng, nn.MLPSpecs(dim, h.Hidden, 1, h.Activation, nn.Identity, h.Dropout)...)
		tauCopy := tau
		tr := nn.Trainer{
			Net: net,
			Opt: nn.NewAdam(h.LearnRate),
			Cfg: nn.TrainConfig{
				Epochs: h.Epochs, BatchSize: h.BatchSize,
				Workers: cfg.Workers, Seed: cfg.Seed + 600 + int64(qi),
				LossFunc: func(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
					return nn.PinballLoss(tauCopy, pred, target)
				},
			},
		}
		tr.Fit(xm, ym)
		qm.Nets = append(qm.Nets, net)
	}
	return qm, nil
}

// Interval returns the predicted queue-time quantiles in minutes for one
// raw feature row, sorted ascending (crossing quantile outputs are
// re-ordered, the standard post-hoc fix).
func (q *QuantileModel) Interval(raw []float64) []float64 {
	x := q.Scaler.Transform(raw)
	out := make([]float64, len(q.Nets))
	for i, net := range q.Nets {
		v := math.Expm1(net.Predict1(x))
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	sort.Float64s(out)
	return out
}

// Coverage evaluates empirical coverage of the [lowest, highest] quantile
// band over the truly-long jobs of testIdx, returning the fraction of
// actuals inside the band and the band's mean width in minutes.
func (q *QuantileModel) Coverage(ds *features.Dataset, testIdx []int) (coverage, meanWidth float64, n int) {
	var inside int
	var width float64
	for _, i := range testIdx {
		if ds.QueueMinutes[i] < q.Cutoff {
			continue
		}
		iv := q.Interval(ds.X[i])
		lo, hi := iv[0], iv[len(iv)-1]
		a := ds.QueueMinutes[i]
		if a >= lo && a <= hi {
			inside++
		}
		width += hi - lo
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return float64(inside) / float64(n), width / float64(n), n
}
