package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RecordedTrace is one request kept by the flight recorder, ready for
// /debug/requests (same SpanJSON shape as the JSONL export).
type RecordedTrace struct {
	TraceID     string     `json:"trace_id"`
	Name        string     `json:"name"`
	Status      int        `json:"status"`
	DurationMs  float64    `json:"duration_ms"`
	StartUnixNs int64      `json:"start_unix_ns"`
	Spans       []SpanJSON `json:"spans"`
}

// DebugRequests is the GET /debug/requests payload.
type DebugRequests struct {
	SlowThresholdMs float64         `json:"slow_threshold_ms,omitempty"`
	Slowest         []RecordedTrace `json:"slowest"`
	Errored         []RecordedTrace `json:"errored"`
}

// recEntry is the internal kept form: raw span records, converted to
// JSON shape only at snapshot time.
type recEntry struct {
	traceID string
	name    string
	status  int
	dur     time.Duration
	start   int64
	spans   []SpanRec
}

// Recorder is the in-memory flight recorder: the N slowest requests and
// the N most recent errored requests, full span trees included. The
// keep-nothing fast path — not errored, not slower than the current
// slowest-set floor — is a single atomic load with zero allocation, so
// steady-state traffic pays nothing once the slow set is warm.
type Recorder struct {
	slots int

	// minSlow is the admission floor for the slow set: 0 until the set
	// fills, then the smallest kept duration (ns). Checked lock-free.
	minSlow atomic.Int64

	mu      sync.Mutex
	slow    []recEntry // unordered; sorted only at snapshot
	errored []recEntry // ring, next points at the oldest slot
	next    int

	keptSlow atomic.Uint64
	keptErr  atomic.Uint64
}

func newRecorder(slots int) *Recorder {
	return &Recorder{slots: slots}
}

// Offer shows a finished request to the recorder. Safe on nil.
func (r *Recorder) Offer(tb *TraceBuf, name string, status int, dur time.Duration, errored bool) {
	if r == nil || tb == nil {
		return
	}
	if !errored && dur.Nanoseconds() <= r.minSlow.Load() {
		return // keep-nothing path: no lock, no allocation
	}
	spans := tb.snapshot(time.Now().UnixNano())
	var start int64
	if len(spans) > 0 {
		start = spans[0].Start
	}
	ent := recEntry{traceID: tb.traceID, name: name, status: status, dur: dur, start: start, spans: spans}

	r.mu.Lock()
	if errored {
		r.keptErr.Add(1)
		if len(r.errored) < r.slots {
			r.errored = append(r.errored, ent)
		} else {
			r.errored[r.next] = ent
			r.next = (r.next + 1) % r.slots
		}
	}
	// Errored requests also compete for the slow set on merit.
	if dur.Nanoseconds() > r.minSlow.Load() || len(r.slow) < r.slots {
		r.keptSlow.Add(1)
		if len(r.slow) < r.slots {
			r.slow = append(r.slow, ent)
		} else {
			min := 0
			for i := 1; i < len(r.slow); i++ {
				if r.slow[i].dur < r.slow[min].dur {
					min = i
				}
			}
			r.slow[min] = ent
		}
		if len(r.slow) == r.slots {
			floor := r.slow[0].dur
			for _, e := range r.slow[1:] {
				if e.dur < floor {
					floor = e.dur
				}
			}
			r.minSlow.Store(floor.Nanoseconds())
		}
	}
	r.mu.Unlock()
}

// Snapshot renders the recorder state: slowest first (descending
// duration), errored most-recent first.
func (r *Recorder) Snapshot() DebugRequests {
	out := DebugRequests{Slowest: []RecordedTrace{}, Errored: []RecordedTrace{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	slow := append([]recEntry(nil), r.slow...)
	var errs []recEntry
	for i := 0; i < len(r.errored); i++ {
		// Walk the ring newest→oldest: next-1 is the newest slot.
		idx := (r.next - 1 - i + 2*len(r.errored)) % len(r.errored)
		errs = append(errs, r.errored[idx])
	}
	r.mu.Unlock()

	sort.Slice(slow, func(i, j int) bool { return slow[i].dur > slow[j].dur })
	for _, e := range slow {
		out.Slowest = append(out.Slowest, e.rendered())
	}
	for _, e := range errs {
		out.Errored = append(out.Errored, e.rendered())
	}
	return out
}

func (e recEntry) rendered() RecordedTrace {
	return RecordedTrace{
		TraceID:     e.traceID,
		Name:        e.name,
		Status:      e.status,
		DurationMs:  float64(e.dur) / 1e6,
		StartUnixNs: e.start,
		Spans:       spansToJSON(e.spans),
	}
}

// register exposes recorder activity counters.
func (r *Recorder) register(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterVecFunc("trout_trace_recorded_total",
		"Requests admitted to the flight recorder, by ring.",
		[]string{"ring"}, func(emit Emit) {
			emit(float64(r.keptSlow.Load()), "slow")
			emit(float64(r.keptErr.Load()), "errored")
		})
}
