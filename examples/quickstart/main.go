// Quickstart: the README walk-through. Synthesizes a small Anvil-like
// trace, engineers the Table II features, trains the hierarchical TROUT
// model, evaluates it on the most recent 20 % of jobs, and prints
// Algorithm 1 predictions for a few held-out jobs.
package main

import (
	"fmt"
	"log"

	trout "repro"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize a workload and simulate the cluster scheduler.
	p := trout.DefaultPipeline(10000, 42)
	p.Model.Classifier.Epochs = 10
	p.Model.Regressor.Epochs = 20
	fmt.Println("generating trace (10k jobs through the Slurm-like simulator)...")
	tr, cluster, err := p.GenerateTrace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d jobs, %.1f%% queued under 10 minutes\n",
		len(tr.Jobs), 100*tr.ShortQueueFraction(600))

	// 2. Engineer the paper's 33 features with interval trees.
	fmt.Println("engineering features...")
	ds, err := p.BuildDataset(tr, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the hierarchical model (classifier + regressor).
	fmt.Println("training TROUT...")
	m, fold, err := trout.TrainHoldout(ds, p.Model, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate on the most recent 20 % of jobs.
	cls := core.EvaluateClassifier(m, ds, fold.Test)
	reg := core.EvaluateRegression(m, ds, fold.Test)
	fmt.Printf("classifier: %.2f%% accuracy (balanced %.2f%%) on %d held-out jobs\n",
		100*cls.Accuracy(), 100*cls.BalancedAccuracy(), cls.N)
	fmt.Printf("regressor:  %.2f%% MAPE, Pearson r %.3f on %d long jobs\n",
		reg.MAPE, reg.Pearson, reg.N)

	// 5. Algorithm 1 predictions for a few held-out jobs.
	fmt.Println("\nsample predictions (Algorithm 1):")
	shown := 0
	for _, i := range fold.Test {
		if shown >= 3 && ds.QueueMinutes[i] < m.Cfg.CutoffMinutes {
			continue // after 3 quick jobs, look for a long one
		}
		pred := m.Predict(ds.X[i])
		fmt.Printf("  job %-6d (actual %7.1f min): %s\n",
			ds.Jobs[i].ID, ds.QueueMinutes[i], pred.Message(m.Cfg.CutoffMinutes))
		shown++
		if shown >= 6 {
			break
		}
	}
}
