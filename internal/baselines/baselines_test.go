package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// synthData draws X uniform in [-2,2]^dim and y = f(x) + noise.
func synthData(rng *rand.Rand, n, dim int, f func([]float64) float64, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, dim)
		for j := range X[i] {
			X[i][j] = rng.Float64()*4 - 2
		}
		y[i] = f(X[i]) + rng.NormFloat64()*noise
	}
	return X, y
}

func stepFn(x []float64) float64 {
	if x[0] > 0 {
		return 10
	}
	return -10
}

func linearFn(x []float64) float64 { return 3*x[0] - 2*x[1] + x[2] }

func TestTreeLearnsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := synthData(rng, 500, 3, stepFn, 0.1)
	tr := NewTree(TreeConfig{MaxDepth: 3, MinLeaf: 5})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{1, 0, 0}); math.Abs(got-10) > 1 {
		t.Fatalf("Predict(+) = %v", got)
	}
	if got := tr.Predict([]float64{-1, 0, 0}); math.Abs(got+10) > 1 {
		t.Fatalf("Predict(-) = %v", got)
	}
	if tr.Depth() < 1 {
		t.Fatal("tree did not split")
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := synthData(rng, 1000, 4, linearFn, 0.2)
	tr := NewTree(TreeConfig{MaxDepth: 3, MinLeaf: 2})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("depth %d > max 3", d)
	}
	if l := tr.NumLeaves(); l > 8 {
		t.Fatalf("%d leaves with depth 3", l)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := synthData(rng, 100, 3, linearFn, 0.1)
	tr := NewTree(TreeConfig{MaxDepth: 20, MinLeaf: 40})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// 100 samples with min leaf 40: at most one split.
	if tr.NumLeaves() > 2 {
		t.Fatalf("%d leaves violate MinLeaf", tr.NumLeaves())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{2.5}); got != 5 {
		t.Fatalf("constant predict = %v", got)
	}
}

func TestTreeErrorsOnBadInput(t *testing.T) {
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := tr.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit accepted")
	}
}

func TestForestBeatsSingleTreeOnNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := synthData(rng, 800, 5, linearFn, 1.0)
	Xt, yt := synthData(rng, 300, 5, linearFn, 0)

	tr := NewTree(TreeConfig{MaxDepth: 8, MinLeaf: 2})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	fo := NewForest(ForestConfig{Trees: 40, Tree: TreeConfig{MaxDepth: 8, MinLeaf: 2, MaxFeatures: 4}, Seed: 1, Workers: 4})
	if err := fo.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mseTree := metrics.RMSE(PredictAll(tr, Xt), yt)
	mseForest := metrics.RMSE(PredictAll(fo, Xt), yt)
	if mseForest >= mseTree {
		t.Fatalf("forest RMSE %v >= single tree %v", mseForest, mseTree)
	}
}

func TestForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := synthData(rng, 300, 3, linearFn, 0.5)
	run := func() []float64 {
		fo := NewForest(ForestConfig{Trees: 10, Seed: 9, Workers: 4})
		if err := fo.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return PredictAll(fo, X[:20])
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forest training not deterministic across runs")
		}
	}
}

func TestGBDTFitsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := synthData(rng, 1000, 3, linearFn, 0.1)
	Xt, yt := synthData(rng, 300, 3, linearFn, 0)
	g := NewGBDT(GBDTConfig{Rounds: 80, LearnRate: 0.1, Seed: 2})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r2 := metrics.R2(PredictAll(g, Xt), yt)
	if r2 < 0.85 {
		t.Fatalf("GBDT R² = %v, want > 0.85", r2)
	}
}

func TestGBDTImprovesWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := synthData(rng, 600, 3, linearFn, 0.1)
	Xt, yt := synthData(rng, 200, 3, linearFn, 0)
	few := NewGBDT(GBDTConfig{Rounds: 5, Seed: 3})
	many := NewGBDT(GBDTConfig{Rounds: 60, Seed: 3})
	if err := few.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if metrics.RMSE(PredictAll(many, Xt), yt) >= metrics.RMSE(PredictAll(few, Xt), yt) {
		t.Fatal("more boosting rounds did not help on train-like data")
	}
}

func TestGBDTSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := synthData(rng, 500, 3, linearFn, 0.3)
	g := NewGBDT(GBDTConfig{Rounds: 30, SubsampleFraction: 0.5, Seed: 4})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := metrics.R2(PredictAll(g, X), y); r2 < 0.7 {
		t.Fatalf("stochastic GBDT R² = %v", r2)
	}
}

func TestKNNExactNeighbors(t *testing.T) {
	// Four well-separated clusters; prediction at a cluster center must be
	// the cluster's value.
	X := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	y := []float64{1, 1, 1, 9, 9, 9}
	k := NewKNN(KNNConfig{K: 3})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{0.05, 0.05}); got != 1 {
		t.Fatalf("Predict near cluster A = %v", got)
	}
	if got := k.Predict([]float64{10.05, 10.05}); got != 9 {
		t.Fatalf("Predict near cluster B = %v", got)
	}
}

// TestKNNMatchesBruteForce is the KD-tree differential test.
func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := synthData(rng, 400, 4, linearFn, 0.1)
	k := NewKNN(KNNConfig{K: 7})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		query := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		got := k.Predict(query)
		// Brute force.
		type nd struct {
			d float64
			y float64
		}
		var all []nd
		for i, row := range X {
			all = append(all, nd{dist2(query, row), y[i]})
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[i].d {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		var want float64
		for i := 0; i < 7; i++ {
			want += all[i].y
		}
		want /= 7
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("query %d: kd %v vs brute %v", q, got, want)
		}
	}
}

func TestKNNStandardizeMatters(t *testing.T) {
	// Feature 1 has huge scale but is pure noise; feature 0 carries all
	// signal. Standardization keeps feature 0 relevant.
	rng := rand.New(rand.NewSource(10))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := rng.Float64()*2 - 1
		X[i] = []float64{x0, rng.Float64() * 1e6}
		y[i] = 100 * x0
	}
	std := NewKNN(KNNConfig{K: 5, Standardize: true})
	raw := NewKNN(KNNConfig{K: 5})
	if err := std.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := raw.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt := make([][]float64, 100)
	yt := make([]float64, 100)
	for i := range Xt {
		x0 := rng.Float64()*2 - 1
		Xt[i] = []float64{x0, rng.Float64() * 1e6}
		yt[i] = 100 * x0
	}
	if metrics.RMSE(PredictAll(std, Xt), yt) >= metrics.RMSE(PredictAll(raw, Xt), yt) {
		t.Fatal("standardization should help when scales differ")
	}
}

func TestKNNErrorsAndDefaults(t *testing.T) {
	k := NewKNN(KNNConfig{})
	if k.Cfg.K != 5 {
		t.Fatalf("default K = %d", k.Cfg.K)
	}
	if err := k.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if k.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted predict should be 0")
	}
}

func TestClassifyProbClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := synthData(rng, 200, 2, func(x []float64) float64 { return 5 * x[0] }, 0)
	tr := NewTree(TreeConfig{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{2, 0}, {-2, 0}} {
		p := ClassifyProb(tr, q)
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	X, y := synthData(rng, 5000, 10, linearFn, 0.5)
	k := NewKNN(KNNConfig{K: 10, Standardize: true})
	if err := k.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	q := X[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Predict(q)
	}
}
