// Hot-path inference benchmarks feeding BENCH_inference.json via
// `make bench-json`: single-row latency, the 64-job sequential baseline,
// the mini-batched path that replaces it, and the allocation profile of a
// warm forward pass.
package trout_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/tscv"
)

var (
	pbOnce sync.Once
	pbM    *core.Model
	pbRows [][]float64
	pbErr  error
)

// predictBenchModel trains one model on the bench trace and stages 64
// scaled-input-shaped raw feature rows from the holdout.
func predictBenchModel(b *testing.B) (*core.Model, [][]float64) {
	b.Helper()
	e := benchExperiment(b)
	pbOnce.Do(func() {
		fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
		if err != nil {
			pbErr = err
			return
		}
		m, err := core.Train(e.Data, fold.Train, e.Pipeline.Model)
		if err != nil {
			pbErr = err
			return
		}
		rows := make([][]float64, 64)
		for i := range rows {
			rows[i] = e.Data.X[fold.Test[i%len(fold.Test)]]
		}
		pbM, pbRows = m, rows
	})
	if pbErr != nil {
		b.Fatal(pbErr)
	}
	return pbM, pbRows
}

// BenchmarkPredictSingle is one warm Algorithm 1 pass (classifier +
// regressor) on a single feature row, on the float32 serving path — the
// ROADMAP item-5 raw-speed floor that benchjson -check gates.
func BenchmarkPredictSingle(b *testing.B) {
	m, rows := predictBenchModel(b)
	if !m.EnableFastInference() {
		b.Fatal("EnableFastInference failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(rows[i%len(rows)])
	}
}

// BenchmarkPredictSingleF64 is the same pass on the float64 reference
// path (fast inference off), for comparison; not archived or gated.
func BenchmarkPredictSingleF64(b *testing.B) {
	m, rows := predictBenchModel(b)
	m.DisableFastInference()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(rows[i%len(rows)])
	}
}

// BenchmarkPredictSequential64 is the pre-batching baseline: 64 jobs
// answered one Predict call at a time (float32 path).
func BenchmarkPredictSequential64(b *testing.B) {
	m, rows := predictBenchModel(b)
	if !m.EnableFastInference() {
		b.Fatal("EnableFastInference failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			m.Predict(r)
		}
	}
}

// BenchmarkPredictBatch64 answers the same 64 jobs through the mini-batched
// path (one classifier matmul, one regressor matmul over the long subset)
// on the float32 serving path. The acceptance comparison is ns/op here vs
// BenchmarkPredictSequential64.
func BenchmarkPredictBatch64(b *testing.B) {
	m, rows := predictBenchModel(b)
	if !m.EnableFastInference() {
		b.Fatal("EnableFastInference failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := m.PredictBatch(rows)
		if len(preds) != len(rows) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkPredictBatch64F64 is the batched path with fast inference off,
// for comparison; not archived or gated.
func BenchmarkPredictBatch64F64(b *testing.B) {
	m, rows := predictBenchModel(b)
	m.DisableFastInference()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := m.PredictBatch(rows)
		if len(preds) != len(rows) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkForwardAllocs isolates the allocation profile of a warm
// workspace forward pass: a 64-row classifier forward should run
// allocation-free after the pools warm up.
func BenchmarkForwardAllocs(b *testing.B) {
	m, rows := predictBenchModel(b)
	m.DisableFastInference() // pin the f64 workspace path regardless of bench order
	x := tensor.New(len(rows), m.NumInputs)
	for i, r := range rows {
		sc := m.Scaler.Transform(r)
		copy(x.Row(i), sc)
	}
	ws := m.Classifier.AcquireWorkspace()
	defer m.Classifier.ReleaseWorkspace(ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Classifier.PredictInto(ws, x)
		if out.Rows != len(rows) {
			b.Fatal("short forward")
		}
	}
}
