package trout

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/slurmsim"
	"repro/internal/trace"
	"repro/internal/tscv"
	"repro/internal/workload"
)

// Re-exported types so downstream users only import this package.
type (
	// Trace is an ordered collection of Slurm-style accounting records.
	Trace = trace.Trace
	// Job is one accounting record.
	Job = trace.Job
	// ClusterSpec describes the simulated machine.
	ClusterSpec = slurmsim.ClusterSpec
	// Dataset is the engineered Table II feature matrix.
	Dataset = features.Dataset
	// Model is a trained hierarchical TROUT bundle.
	Model = core.Model
	// ModelConfig configures TROUT training.
	ModelConfig = core.Config
	// Prediction is the Algorithm 1 output for one job.
	Prediction = core.Prediction
	// Fold is one train/test index split.
	Fold = tscv.Fold
)

// FeatureNames lists the 33 model features in column order.
var FeatureNames = features.Names

// DefaultModelConfig mirrors the paper's architecture.
func DefaultModelConfig() ModelConfig { return core.DefaultConfig() }

// AnvilLikeCluster returns the scaled-down Anvil-shaped cluster the default
// pipeline simulates (seven partitions over shared CPU, high-memory and
// isolated GPU pools).
func AnvilLikeCluster(scale int) ClusterSpec { return slurmsim.AnvilLike(scale) }

// LoadModelFile reads a trained bundle from disk.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// PipelineConfig wires the full reproduction pipeline: synthesize a
// workload, push it through the cluster simulator, engineer features, and
// train/evaluate the hierarchical model.
type PipelineConfig struct {
	// Jobs is the trace size; Seed drives every stochastic stage.
	Jobs int
	Seed int64
	// Scale sizes the AnvilLike cluster (1 = 36 nodes).
	Scale int
	// Workload overrides the synthesized job stream (nil = default
	// calibrated to the paper's Table I statistics).
	Workload *workload.Config
	// Sim overrides the scheduler configuration.
	Sim *slurmsim.Config
	// Features overrides feature engineering options.
	Features features.Options
	// ExactTrees trains the runtime-predictor forest with the exact
	// per-node split search instead of the default histogram learner
	// (an order of magnitude slower on paper-sized traces; kept for
	// quality comparisons). Equivalent to setting Features.ExactTrees.
	ExactTrees bool
	// Model configures TROUT training.
	Model ModelConfig
	// Folds and TestFraction configure time-series cross-validation
	// (paper: 5 folds, test = 1/6).
	Folds        int
	TestFraction float64
}

// DefaultPipeline returns the paper-shaped pipeline at the given trace size.
func DefaultPipeline(jobs int, seed int64) PipelineConfig {
	return PipelineConfig{
		Jobs: jobs, Seed: seed, Scale: 1,
		Features:     features.Options{Seed: seed},
		Model:        core.DefaultConfig(),
		Folds:        5,
		TestFraction: 1.0 / 6.0,
	}
}

// GenerateTrace synthesizes the workload and simulates it, returning the
// completed-job trace and the cluster it ran on.
func (p *PipelineConfig) GenerateTrace() (*Trace, *ClusterSpec, error) {
	if p.Jobs <= 0 {
		return nil, nil, fmt.Errorf("trout: pipeline needs Jobs > 0")
	}
	scale := p.Scale
	if scale < 1 {
		scale = 1
	}
	simCfg := slurmsim.DefaultConfig(scale)
	if p.Sim != nil {
		simCfg = *p.Sim
	}
	wl := workload.DefaultConfig(p.Jobs, p.Seed)
	if p.Workload != nil {
		wl = *p.Workload
	}
	specs, err := workload.Generate(wl, &simCfg.Cluster)
	if err != nil {
		return nil, nil, err
	}
	tr, _, err := slurmsim.Run(simCfg, specs)
	if err != nil {
		return nil, nil, err
	}
	cluster := simCfg.Cluster
	return tr, &cluster, nil
}

// BuildDataset engineers the Table II features for a trace.
func (p *PipelineConfig) BuildDataset(tr *Trace, cluster *ClusterSpec) (*Dataset, error) {
	opt := p.Features
	if opt.Seed == 0 {
		opt.Seed = p.Seed
	}
	if p.ExactTrees {
		opt.ExactTrees = true
	}
	return features.Build(tr, cluster, opt)
}

// TrainHoldout trains on all but the most recent testFraction of the
// dataset (the paper's classifier evaluation protocol) and returns the
// model plus the holdout fold.
func TrainHoldout(ds *Dataset, cfg ModelConfig, testFraction float64) (*Model, Fold, error) {
	fold, err := tscv.HoldoutRecent(ds.Len(), testFraction)
	if err != nil {
		return nil, Fold{}, err
	}
	m, err := core.Train(ds, fold.Train, cfg)
	return m, fold, err
}

// FoldMetrics is one cross-validation fold's regression scores.
type FoldMetrics struct {
	Fold      int
	N         int     // long test jobs evaluated
	MAPE      float64 // percent
	Pearson   float64
	Within100 float64 // fraction within 100 % error
	MAE       float64 // minutes
}

// CrossValidate trains and evaluates the hierarchical model under
// time-series CV, returning per-fold regression metrics (the protocol
// behind the paper's §IV fold numbers).
func CrossValidate(ds *Dataset, cfg ModelConfig, folds int, testFraction float64) ([]FoldMetrics, error) {
	splits, err := tscv.Split(ds.Len(), folds, testFraction)
	if err != nil {
		return nil, err
	}
	out := make([]FoldMetrics, 0, len(splits))
	for fi, fold := range splits {
		m, err := core.Train(ds, fold.Train, cfg)
		if err != nil {
			return nil, fmt.Errorf("trout: fold %d: %w", fi+1, err)
		}
		ev := core.EvaluateRegression(m, ds, fold.Test)
		out = append(out, FoldMetrics{
			Fold: fi + 1, N: ev.N, MAPE: ev.MAPE,
			Pearson: ev.Pearson, Within100: ev.Within100, MAE: ev.MAE,
		})
	}
	return out, nil
}
