// Package obs is the serving stack's runtime observability layer: a
// dependency-free metrics registry with a deterministic Prometheus
// text-0.0.4 encoder, structured (log/slog) logging helpers with
// per-request trace IDs and pipeline spans, training telemetry sinks,
// and an online ground-truth accuracy tracker that joins served
// predictions against realized queue times when the live-state engine
// observes start events.
//
// It is deliberately distinct from package metrics (internal/metrics),
// which implements the paper's *offline model-evaluation* measures —
// MAPE, Pearson correlation, R², confusion matrices — computed over a
// held-out dataset after training. Package obs measures the *running
// system*: request rates and latencies, per-stage predict timings,
// fallback-tier hit counts, training-loss trajectories, and the rolling
// accuracy of predictions against what the cluster actually did. If a
// number describes a model on a test set, it belongs in
// internal/metrics; if it describes a process serving traffic, it
// belongs here.
//
// The package is self-contained (standard library only) so every other
// layer — the service, the bundle, the trainers, the daemon — can
// depend on it without cycles.
package obs
