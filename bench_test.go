// Benchmarks regenerating each table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). These run the same code paths
// as cmd/experiments on a reduced trace so `go test -bench=.` completes on a
// laptop; cmd/experiments -jobs 60000 produces the full-size numbers
// recorded in EXPERIMENTS.md.
package trout_test

import (
	"math/rand"
	"sync"
	"testing"

	trout "repro"
	"repro/internal/core"
	"repro/internal/intervaltree"
	"repro/internal/slurmsim"
	"repro/internal/trace"
	"repro/internal/tscv"
	"repro/internal/workload"
)

// benchPipeline is sized for benchmarking: big enough for every fold to
// hold long jobs, small enough to iterate.
func benchPipeline() trout.PipelineConfig {
	p := trout.DefaultPipeline(6000, 5)
	p.Model.Classifier.Epochs = 5
	p.Model.Classifier.Hidden = []int{32, 16}
	p.Model.Regressor.Epochs = 8
	p.Model.Regressor.Hidden = []int{64, 32, 16}
	p.Model.Seed = 5
	p.Features.RuntimeTrees = 20
	return p
}

var (
	benchOnce sync.Once
	benchExp  *trout.Experiment
	benchErr  error
)

func benchExperiment(b *testing.B) *trout.Experiment {
	b.Helper()
	benchOnce.Do(func() {
		benchExp, benchErr = trout.NewExperiment(benchPipeline())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchExp
}

// BenchmarkTable1Stats regenerates Table I (job statistics) from the trace.
func BenchmarkTable1Stats(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one := e.RunTableOne()
		if one.Stats.RequestedHours.Count == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2FeatureBuild regenerates the Table II feature matrix
// (interval-tree aggregation over the full trace).
func BenchmarkTable2FeatureBuild(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := e.Pipeline.BuildDataset(e.Trace, e.Cluster)
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() != len(e.Trace.Jobs) {
			b.Fatal("short dataset")
		}
	}
}

// BenchmarkFig2QueueDensity regenerates the queue-time density histogram.
func BenchmarkFig2QueueDensity(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.RunFigTwo(24)) != 24 {
			b.Fatal("bad histogram")
		}
	}
}

// BenchmarkFig3TimeSeriesSplit regenerates the CV fold layout.
func BenchmarkFig3TimeSeriesSplit(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunFigThree(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ScatterFold4 trains the model on fold 4 and produces the
// predicted-vs-actual scatter.
func BenchmarkFig4ScatterFold4(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := e.RunScatter(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc.Pearson, "pearson")
	}
}

// BenchmarkFig5ScatterFold5 is the paper's r=0.7532 figure on fold 5.
func BenchmarkFig5ScatterFold5(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := e.RunScatter(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc.Pearson, "pearson")
	}
}

func benchComparison(b *testing.B, fold int, metric string) {
	e := benchExperiment(b)
	cmp := trout.CompareConfig{GBDTRounds: 30, ForestTrees: 30, KNNK: 10, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err := e.RunComparison(fold, cmp)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range scores {
			if s.Model == trout.ModelNeuralNet {
				switch metric {
				case "mape":
					b.ReportMetric(s.MAPE, "nn-mape-%")
				case "within":
					b.ReportMetric(100*s.Within100, "nn-within100-%")
				}
			}
		}
	}
}

// BenchmarkFig6ModelComparison: average percent error by model, fold 4.
func BenchmarkFig6ModelComparison(b *testing.B) { benchComparison(b, 4, "mape") }

// BenchmarkFig7ModelComparisonFold5: average percent error by model, fold 5.
func BenchmarkFig7ModelComparisonFold5(b *testing.B) { benchComparison(b, 5, "mape") }

// BenchmarkFig8Within100Fold4: % of predictions within 100% error, fold 4.
func BenchmarkFig8Within100Fold4(b *testing.B) { benchComparison(b, 4, "within") }

// BenchmarkFig9Within100Fold5: % of predictions within 100% error, fold 5.
func BenchmarkFig9Within100Fold5(b *testing.B) { benchComparison(b, 5, "within") }

// BenchmarkClassifierAccuracy reproduces the §IV classifier evaluation
// (paper: 90.48 % on the most recent jobs).
func BenchmarkClassifierAccuracy(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.RunClassifier()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Accuracy, "accuracy-%")
	}
}

// BenchmarkRegressionMAPE reproduces the §IV per-fold regression MAPE
// (paper: mean 97.57 % over the last three folds).
func BenchmarkRegressionMAPE(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, lastThree, err := e.RunRegressionFolds()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastThree, "mape-%")
	}
}

// BenchmarkAblationCutoff re-trains at the paper's 5/10/30-minute cutoffs.
func BenchmarkAblationCutoff(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunCutoffAblation([]float64{5, 10, 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLeakage contrasts time-ordered and shuffled splits.
func BenchmarkAblationLeakage(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.RunLeakageAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "leak-ratio")
	}
}

// BenchmarkAblationSMOTE contrasts balanced and unbalanced classifiers.
func BenchmarkAblationSMOTE(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunSMOTEAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationActivation sweeps ELU/ReLU/Tanh/ELU+BatchNorm.
func BenchmarkAblationActivation(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunActivationAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScaling sweeps log/min-max/standard/Box-Cox/none.
func BenchmarkAblationScaling(b *testing.B) {
	e := benchExperiment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunScalingAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalTreeVsNaive quantifies the §V claim that interval trees
// accelerate the overlap feature computation: stab queries against the
// trace-shaped interval set, tree vs linear scan.
func BenchmarkIntervalTreeVsNaive(b *testing.B) {
	e := benchExperiment(b)
	ivs := make([]intervaltree.Interval, len(e.Trace.Jobs))
	for i := range e.Trace.Jobs {
		j := &e.Trace.Jobs[i]
		ivs[i] = intervaltree.Interval{Lo: j.Start, Hi: j.End, ID: i}
	}
	rng := rand.New(rand.NewSource(9))
	span := e.Trace.Jobs[len(e.Trace.Jobs)-1].End
	base := e.Trace.Jobs[0].Eligible

	b.Run("tree", func(b *testing.B) {
		tree := intervaltree.BuildChunked(ivs, 100000, 10000)
		count := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.StabVisit(base+rng.Int63n(span-base), func(intervaltree.Interval) { count++ })
		}
	})
	b.Run("naive", func(b *testing.B) {
		scan := &intervaltree.NaiveScan{Intervals: ivs}
		count := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scan.StabVisit(base+rng.Int63n(span-base), func(intervaltree.Interval) { count++ })
		}
	})
}

// BenchmarkInferenceLatency measures single-job Algorithm 1 latency — the
// paper's CLI answers "in a few seconds" on one EPYC core; the model itself
// is microseconds.
func BenchmarkInferenceLatency(b *testing.B) {
	e := benchExperiment(b)
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(e.Data, fold.Train, e.Pipeline.Model)
	if err != nil {
		b.Fatal(err)
	}
	row := e.Data.X[fold.Test[0]]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(row)
	}
}

// BenchmarkSnapshotPredict measures the full deployment path: reconstruct
// the queue snapshot from the trace and predict (what cmd/trout does).
func BenchmarkSnapshotPredict(b *testing.B) {
	e := benchExperiment(b)
	fold, err := tscv.HoldoutRecent(e.Data.Len(), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(e.Data, fold.Train, e.Pipeline.Model)
	if err != nil {
		b.Fatal(err)
	}
	bundle, err := trout.NewBundle(m, e.Data, e.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	jobID := e.Data.Jobs[fold.Test[len(fold.Test)/2]].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := trout.SnapshotFromTrace(e.Trace, jobID)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bundle.PredictSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures the cluster simulator's event rate.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cluster := slurmsim.AnvilLike(1)
	cfg := workload.DefaultConfig(5000, 6)
	specs, err := workload.Generate(cfg, &cluster)
	if err != nil {
		b.Fatal(err)
	}
	sim := slurmsim.DefaultConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := slurmsim.Run(sim, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "jobs/op")
}

// BenchmarkRuntimePredictor measures the runtime random forest on one job.
func BenchmarkRuntimePredictor(b *testing.B) {
	e := benchExperiment(b)
	tot := e.Cluster.Totals("shared")
	j := &trace.Job{
		ID: 1, Partition: "shared", ReqCPUs: 16, ReqMemGB: 32, ReqNodes: 1,
		TimeLimit: 7200, Priority: 5000,
	}
	rp := e.Data.Runtime
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = rp.PredictSeconds(j, tot)
	}
	_ = sink
}
