package obs

import (
	"sync"
	"time"
)

// Multi-window SLO burn-rate tracking. Requests are bucketed into
// 10-second cells of a 6-hour ring; burn rate over a window is the
// observed bad fraction divided by the error budget (1 - target), so
// burn 1.0 means "spending budget exactly as fast as the SLO allows",
// 14.4 means "2% of a 30-day budget per hour" — the classic page
// threshold.

// sloWindow is one reporting window.
type sloWindow struct {
	label   string
	buckets int64 // window length in ring buckets
}

const sloBucketSeconds = 10

var sloWindows = []sloWindow{
	{"5m", 5 * 60 / sloBucketSeconds},
	{"30m", 30 * 60 / sloBucketSeconds},
	{"1h", 3600 / sloBucketSeconds},
	{"6h", 6 * 3600 / sloBucketSeconds},
}

// SLOConfig declares the two objectives. The zero value means 99.9%
// availability and 99% of requests under 500ms.
type SLOConfig struct {
	// Disabled turns SLO tracking off entirely.
	Disabled bool
	// AvailabilityTarget is the success-fraction objective (0 = 0.999).
	AvailabilityTarget float64
	// LatencyTarget is the fraction of requests that must finish under
	// LatencyThreshold (0 = 0.99).
	LatencyTarget float64
	// LatencyThreshold is the latency objective bound (0 = 500ms).
	LatencyThreshold time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.AvailabilityTarget == 0 {
		c.AvailabilityTarget = 0.999
	}
	if c.LatencyTarget == 0 {
		c.LatencyTarget = 0.99
	}
	if c.LatencyThreshold == 0 {
		c.LatencyThreshold = 500 * time.Millisecond
	}
	return c
}

type sloBucket struct {
	epoch int64 // bucket timestamp (unix seconds / bucketSeconds)
	total uint64
	errs  uint64
	slow  uint64
}

// SLOTracker maintains the rolling counts. A nil tracker is inert.
type SLOTracker struct {
	cfg  SLOConfig
	now  func() time.Time // test hook
	mu   sync.Mutex
	ring []sloBucket
}

// NewSLOTracker builds a tracker (nil when cfg.Disabled).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.Disabled {
		return nil
	}
	cfg = cfg.withDefaults()
	size := sloWindows[len(sloWindows)-1].buckets
	return &SLOTracker{cfg: cfg, now: time.Now, ring: make([]sloBucket, size)}
}

// Observe records one finished request. Safe on nil.
func (t *SLOTracker) Observe(status int, dur time.Duration) {
	if t == nil {
		return
	}
	bad := status >= 500
	slow := dur >= t.cfg.LatencyThreshold
	epoch := t.now().Unix() / sloBucketSeconds
	t.mu.Lock()
	b := &t.ring[epoch%int64(len(t.ring))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if bad {
		b.errs++
	}
	if slow {
		b.slow++
	}
	t.mu.Unlock()
}

// SLOWindowStatus is one window's burn rates.
type SLOWindowStatus struct {
	Window           string  `json:"window"`
	Requests         uint64  `json:"requests"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// SLOStatus is the /health slo block.
type SLOStatus struct {
	AvailabilityTarget      float64 `json:"availability_target"`
	LatencyTarget           float64 `json:"latency_target"`
	LatencyThresholdSeconds float64 `json:"latency_threshold_seconds"`
	// Status is "ok", "warn" (slow burn: >6x over both 6h and 30m) or
	// "page" (fast burn: >14.4x over both 1h and 5m), on either
	// objective.
	Status  string            `json:"status"`
	Windows []SLOWindowStatus `json:"windows"`
}

// Status computes burn rates over every window plus the multi-window
// alert state. Safe on nil (returns a zero status with empty windows).
func (t *SLOTracker) Status() SLOStatus {
	st := SLOStatus{Status: "ok", Windows: []SLOWindowStatus{}}
	if t == nil {
		return st
	}
	st.AvailabilityTarget = t.cfg.AvailabilityTarget
	st.LatencyTarget = t.cfg.LatencyTarget
	st.LatencyThresholdSeconds = t.cfg.LatencyThreshold.Seconds()

	epoch := t.now().Unix() / sloBucketSeconds
	burns := make(map[string]SLOWindowStatus, len(sloWindows))
	t.mu.Lock()
	for _, w := range sloWindows {
		var total, errs, slow uint64
		for _, b := range t.ring {
			if b.epoch > epoch-w.buckets && b.epoch <= epoch {
				total += b.total
				errs += b.errs
				slow += b.slow
			}
		}
		ws := SLOWindowStatus{Window: w.label, Requests: total}
		if total > 0 {
			ws.AvailabilityBurn = (float64(errs) / float64(total)) / (1 - t.cfg.AvailabilityTarget)
			ws.LatencyBurn = (float64(slow) / float64(total)) / (1 - t.cfg.LatencyTarget)
		}
		st.Windows = append(st.Windows, ws)
		burns[w.label] = ws
	}
	t.mu.Unlock()

	page := func(short, long SLOWindowStatus) bool {
		return (short.AvailabilityBurn > 14.4 && long.AvailabilityBurn > 14.4) ||
			(short.LatencyBurn > 14.4 && long.LatencyBurn > 14.4)
	}
	warn := func(short, long SLOWindowStatus) bool {
		return (short.AvailabilityBurn > 6 && long.AvailabilityBurn > 6) ||
			(short.LatencyBurn > 6 && long.LatencyBurn > 6)
	}
	switch {
	case page(burns["5m"], burns["1h"]):
		st.Status = "page"
	case warn(burns["30m"], burns["6h"]):
		st.Status = "warn"
	}
	return st
}

// Register exposes the objectives and burn rates as trout_slo_* gauges.
func (t *SLOTracker) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.GaugeFunc("trout_slo_availability_target",
		"Configured availability objective (success fraction).",
		func() float64 { return t.cfg.AvailabilityTarget })
	r.GaugeFunc("trout_slo_latency_target",
		"Configured latency objective (fraction under threshold).",
		func() float64 { return t.cfg.LatencyTarget })
	r.GaugeFunc("trout_slo_latency_threshold_seconds",
		"Latency objective threshold.",
		func() float64 { return t.cfg.LatencyThreshold.Seconds() })
	r.GaugeVecFunc("trout_slo_availability_burn_rate",
		"Availability error-budget burn rate per rolling window (1.0 = exactly on budget).",
		[]string{"window"}, func(emit Emit) {
			for _, w := range t.Status().Windows {
				emit(w.AvailabilityBurn, w.Window)
			}
		})
	r.GaugeVecFunc("trout_slo_latency_burn_rate",
		"Latency error-budget burn rate per rolling window (1.0 = exactly on budget).",
		[]string{"window"}, func(emit Emit) {
			for _, w := range t.Status().Windows {
				emit(w.LatencyBurn, w.Window)
			}
		})
	r.GaugeFunc("trout_slo_alert_state",
		"Multi-window burn alert state: 0 ok, 1 warn, 2 page.",
		func() float64 {
			switch t.Status().Status {
			case "page":
				return 2
			case "warn":
				return 1
			}
			return 0
		})
}
