package resilience

import "sync"

// SizeHist is a small fixed-bucket histogram for request-shape metrics
// (e.g. predict-batch sizes). Safe for concurrent use.
type SizeHist struct {
	mu      sync.Mutex
	buckets []float64
	counts  []uint64 // one per bucket, plus overflow at the end
	sum     float64
	n       uint64
}

// NewSizeHist returns an empty histogram over the given ascending upper
// bounds.
func NewSizeHist(buckets []float64) *SizeHist {
	return &SizeHist{
		buckets: buckets,
		counts:  make([]uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *SizeHist) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.buckets)]++
}

// SizeHistSnapshot is a consistent copy for rendering, with Prometheus "le"
// cumulative semantics.
type SizeHistSnapshot struct {
	Buckets   []float64
	CumCounts []uint64
	Sum       float64
	Count     uint64
}

// Snapshot copies the histogram, cumulating bucket counts.
func (h *SizeHist) Snapshot() SizeHistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := SizeHistSnapshot{
		Buckets:   h.buckets,
		CumCounts: make([]uint64, len(h.buckets)),
		Sum:       h.sum,
		Count:     h.n,
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.counts[i]
		s.CumCounts[i] = cum
	}
	return s
}
