// Package metrics implements the evaluation measures the paper reports:
// mean absolute percentage error (the primary comparison metric), Pearson
// correlation (Figs 4/5), the fraction of predictions within an error
// threshold (Figs 8/9), binary classification accuracy and the related
// confusion-matrix quantities, plus standard regression errors and the
// histogram helper behind the queue-time density figure (Fig 2).
//
// These are *offline* measures: they score a trained model against a
// held-out dataset. Runtime telemetry for the serving stack — request
// counters, latency histograms, the /metrics exposition, and the rolling
// *online* accuracy of served predictions against realized queue times —
// lives in internal/obs instead. If a number describes a model on a test
// set, it belongs here; if it describes a process serving traffic, it
// belongs in internal/obs.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// mapeFloor is the minimum denominator (in target units) when computing
// percent errors, so near-zero actuals do not produce infinite percentages.
// The paper evaluates MAPE on the long-job subset (actual > 10 min), where
// the floor never binds; it only matters for all-jobs ablations.
const mapeFloor = 1.0

// MAPE returns the mean absolute percentage error, in percent.
func MAPE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		den := math.Max(math.Abs(actual[i]), mapeFloor)
		s += math.Abs(p-actual[i]) / den
	}
	return 100 * s / float64(len(pred))
}

// WithinPercent returns the fraction of predictions whose absolute percent
// error is below pct (e.g. 100 for the paper's "within 100 % error").
func WithinPercent(pred, actual []float64, pct float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	n := 0
	for i, p := range pred {
		den := math.Max(math.Abs(actual[i]), mapeFloor)
		if 100*math.Abs(p-actual[i])/den < pct {
			n++
		}
	}
	return float64(n) / float64(len(pred))
}

// Pearson returns the Pearson correlation coefficient r.
func Pearson(x, y []float64) float64 {
	mustSameLen(x, y)
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - actual[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// R2 returns the coefficient of determination.
func R2(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	var mean float64
	for _, a := range actual {
		mean += a
	}
	mean /= float64(len(actual))
	var ssRes, ssTot float64
	for i, p := range pred {
		ssRes += (actual[i] - p) * (actual[i] - p)
		ssTot += (actual[i] - mean) * (actual[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Confusion is a binary-classification confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Confuse tallies predictions (probabilities thresholded at 0.5 unless the
// inputs are already 0/1) against boolean labels.
func Confuse(predProb []float64, label []bool) Confusion {
	if len(predProb) != len(label) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(predProb), len(label)))
	}
	var c Confusion
	for i, p := range predProb {
		pos := p >= 0.5
		switch {
		case pos && label[i]:
			c.TP++
		case pos && !label[i]:
			c.FP++
		case !pos && label[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.TN + c.FP + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BalancedAccuracy returns the mean of per-class recalls — the paper reports
// "similar accuracy on both classes", which this captures in one number.
func (c Confusion) BalancedAccuracy() float64 {
	var pos, neg float64
	if c.TP+c.FN > 0 {
		pos = float64(c.TP) / float64(c.TP+c.FN)
	}
	if c.TN+c.FP > 0 {
		neg = float64(c.TN) / float64(c.TN+c.FP)
	}
	return (pos + neg) / 2
}

// HistBin is one bin of a histogram.
type HistBin struct {
	Lo, Hi float64
	Count  int
}

// LogHistogram bins positive values into n log-spaced bins between the
// smallest positive value (or 0.1) and the max — the presentation used for
// the paper's queue-time density graph. Non-positive values land in the
// first bin.
func LogHistogram(xs []float64, n int) []HistBin {
	if n <= 0 || len(xs) == 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x > 0 && x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) {
		lo = 0.1
	}
	if lo < 0.1 {
		lo = 0.1
	}
	if hi <= lo {
		hi = lo * 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	width := (logHi - logLo) / float64(n)
	bins := make([]HistBin, n)
	for i := range bins {
		bins[i].Lo = math.Pow(10, logLo+float64(i)*width)
		bins[i].Hi = math.Pow(10, logLo+float64(i+1)*width)
	}
	for _, x := range xs {
		idx := 0
		if x > 0 {
			idx = int((math.Log10(x) - logLo) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

func mustSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(a), len(b)))
	}
}

// CalibrationBin is one probability bucket of a reliability diagram.
type CalibrationBin struct {
	LoProb, HiProb float64
	MeanPred       float64 // mean predicted probability in the bin
	FracPositive   float64 // empirical positive rate in the bin
	Count          int
}

// Calibration bins predicted probabilities into n equal-width buckets and
// reports the empirical positive rate per bucket — the reliability diagram
// for the quick-start/long classifier. Perfectly calibrated probabilities
// put FracPositive ≈ MeanPred in every bin.
func Calibration(predProb []float64, label []bool, n int) []CalibrationBin {
	if len(predProb) != len(label) {
		panic(fmt.Sprintf("metrics: %d probabilities vs %d labels", len(predProb), len(label)))
	}
	if n <= 0 || len(predProb) == 0 {
		return nil
	}
	bins := make([]CalibrationBin, n)
	sums := make([]float64, n)
	pos := make([]int, n)
	for i := range bins {
		bins[i].LoProb = float64(i) / float64(n)
		bins[i].HiProb = float64(i+1) / float64(n)
	}
	for i, p := range predProb {
		idx := int(p * float64(n))
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		bins[idx].Count++
		sums[idx] += p
		if label[i] {
			pos[idx]++
		}
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanPred = sums[i] / float64(bins[i].Count)
			bins[i].FracPositive = float64(pos[i]) / float64(bins[i].Count)
		}
	}
	return bins
}

// ExpectedCalibrationError is the count-weighted mean |MeanPred −
// FracPositive| over a reliability diagram's bins.
func ExpectedCalibrationError(bins []CalibrationBin) float64 {
	var total, weighted float64
	for _, b := range bins {
		total += float64(b.Count)
		weighted += float64(b.Count) * math.Abs(b.MeanPred-b.FracPositive)
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// AUC returns the area under the ROC curve via the rank-sum (Mann-Whitney
// U) formulation, with the standard midrank correction for tied
// probabilities. 0.5 is chance; 1.0 is perfect ranking of long jobs above
// quick-start jobs.
func AUC(predProb []float64, label []bool) float64 {
	if len(predProb) != len(label) {
		panic(fmt.Sprintf("metrics: %d probabilities vs %d labels", len(predProb), len(label)))
	}
	type pair struct {
		p   float64
		pos bool
	}
	ps := make([]pair, len(predProb))
	nPos, nNeg := 0, 0
	for i, p := range predProb {
		ps[i] = pair{p, label[i]}
		if label[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].p < ps[b].p })
	// Midranks over ties.
	var rankSumPos float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].p == ps[i].p {
			j++
		}
		// Ranks i+1..j share the midrank.
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSumPos += mid
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}
