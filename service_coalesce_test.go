// Coalescing equivalence: micro-batching concurrent /predict calls through
// the batch inference path is a latency/throughput trade, never a
// semantics change. A coalesced response must be byte-identical to the
// response the same request body gets from an uncoalesced service over
// identical state, and under concurrent ingest + hot-swap every response
// must still attribute itself to exactly one serving bundle. Run under
// -race in CI (make race).
package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	trout "repro"
)

func coalesceTestConfig() trout.ServiceConfig {
	return trout.ServiceConfig{
		FastInference:  true,
		Coalesce:       true,
		CoalesceWindow: 300 * time.Microsecond,
		CoalesceMax:    8,
	}
}

// postBody runs one POST against an in-process handler and returns the
// status and raw response bytes.
func postBody(h http.Handler, path, body string) (int, []byte) {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestCoalesceByteIdentical: build two services over the same bundle and
// identically seeded engines — one coalescing, one not — take reference
// responses from the plain one, then hammer the coalescing one from enough
// goroutines that requests genuinely collect into micro-batches. Every
// coalesced response must equal its reference byte for byte.
func TestCoalesceByteIdentical(t *testing.T) {
	e := sharedExperiment(t)
	bundle := resilientBundle(t)
	t.Cleanup(bundle.DisableFastInference)
	plainSvc, err := trout.NewServiceWith(bundle, e.Trace, trout.ServiceConfig{FastInference: true})
	if err != nil {
		t.Fatal(err)
	}
	coalSvc, err := trout.NewServiceWith(bundle, e.Trace, coalesceTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain, coal := plainSvc.Handler(), coalSvc.Handler()

	// Identical engine state on both sides: a queue of pending jobs.
	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	var events strings.Builder
	for i := 0; i < 6; i++ {
		events.WriteString(cacheEventsBody(9300001+i, base+int64(2*i)))
	}
	for _, h := range []http.Handler{plain, coal} {
		if code, body := postBody(h, "/events", events.String()); code != http.StatusOK {
			t.Fatalf("seed events status %d: %s", code, body)
		}
	}

	// Distinct request shapes across two instants; reference from the
	// uncoalesced service.
	var bodies []string
	for i := 0; i < 12; i++ {
		at := base + 500 + int64(i%2)*250
		bodies = append(bodies, fmt.Sprintf(
			`{"at":%d,"job":{"user":%d,"partition":"shared","req_cpus":%d,"req_mem_gb":%d,"req_nodes":1,"time_limit":%d,"priority":%d}}`,
			at, i%5, 1<<(i%6), 4*(i%8+1), 1800*(i%8+1), 500*(i%7+1)))
	}
	refs := make([][]byte, len(bodies))
	for i, body := range bodies {
		code, b := postBody(plain, "/predict", body)
		if code != http.StatusOK {
			t.Fatalf("reference predict %d status %d: %s", i, code, b)
		}
		refs[i] = append([]byte(nil), b...)
	}

	const goroutines, rounds = 8, 40
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(bodies)
				code, b := postBody(coal, "/predict", bodies[i])
				if code != http.StatusOK {
					select {
					case errCh <- fmt.Errorf("coalesced predict status %d: %s", code, b):
					default:
					}
					return
				}
				if !bytes.Equal(b, refs[i]) {
					mismatches.Add(1)
					select {
					case errCh <- fmt.Errorf("body %d diverged:\n coalesced %s\n plain     %s", i, b, refs[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The hammer must have exercised the coalescer for the comparison to
	// mean anything: its flush counter families must be live and nonzero.
	code, mb := func() (int, []byte) {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		rec := httptest.NewRecorder()
		coal.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}()
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if !strings.Contains(string(mb), "trout_coalesce_flushes_total") ||
		!strings.Contains(string(mb), "trout_coalesce_batch_size") {
		t.Fatalf("/metrics missing coalescer families:\n%.2000s", mb)
	}
}

// TestCoalesceSwapIngestHammer: with coalescing on, /predict load racing
// event ingest and repeated hot-swap/rollback must never fail a request,
// and every response must carry a (model_version, model_id) pair belonging
// to exactly one bundle that ever served — the flusher loads the serving
// bundle once per micro-batch, so no response may mix versions.
func TestCoalesceSwapIngestHammer(t *testing.T) {
	t.Cleanup(resilientBundle(t).DisableFastInference)
	srv, svc := resilientServer(t, resilientBundle(t), coalesceTestConfig())
	e := sharedExperiment(t)
	blob := serializeBundle(t, resilientBundle(t))
	next, err := trout.LoadBundle(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	wantFP := blobFingerprint(blob)
	baseline, _ := svc.CurrentModel()
	valid := map[string]bool{
		fmt.Sprintf("0/%s", baseline.Fingerprint): true,
		fmt.Sprintf("1/%s", wantFP):               true,
	}

	base := e.Trace.Jobs[len(e.Trace.Jobs)-1].End + 1000
	postCacheEvents(t, srv.URL, cacheEventsBody(9310000, base), 2)
	at := base + 5000

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures, requests atomic.Int64
	var pairMu sync.Mutex
	pairs := map[string]int{}
	client := srv.Client()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(
				`{"at":%d,"job":{"user":%d,"partition":"shared","req_cpus":4,"req_mem_gb":8,"req_nodes":1,"time_limit":7200,"priority":3000}}`,
				at, g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				resp, err := client.Post(srv.URL+"/predict", "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				var out struct {
					ModelVersion int    `json:"model_version"`
					ModelID      string `json:"model_id"`
				}
				bad := resp.StatusCode != http.StatusOK
				if !bad {
					bad = json.NewDecoder(resp.Body).Decode(&out) != nil
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if bad {
					failures.Add(1)
					continue
				}
				pairMu.Lock()
				pairs[fmt.Sprintf("%d/%s", out.ModelVersion, out.ModelID)]++
				pairMu.Unlock()
			}
		}(g)
	}
	// Concurrent ingest: each upload bumps the engine version under the
	// predictors' and coalescer's feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := cacheEventsBody(9310001+i, base+int64(2+2*i))
			resp, err := client.Post(srv.URL+"/events", "application/jsonl", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	const swaps = 20
	for i := 0; i < swaps; i++ {
		if err := svc.SwapBundle(next, 1); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
		if err := svc.RollbackBundle(); err != nil {
			t.Fatalf("rollback %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during coalesced swap/ingest hammer", n, requests.Load())
	}
	for pair, n := range pairs {
		if !valid[pair] {
			t.Fatalf("%d responses attributed to torn serving pair %q (valid %v)", n, pair, valid)
		}
	}
}
