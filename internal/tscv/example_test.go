package tscv_test

import (
	"fmt"

	"repro/internal/tscv"
)

// The paper's protocol: 5 expanding-window folds with a test window of one
// sixth of the data (Fig 3), shown here on 60 samples.
func ExampleSplit() {
	folds, _ := tscv.Split(60, 5, 1.0/6.0)
	for i, f := range folds {
		fmt.Printf("fold %d: train %d samples, test [%d, %d]\n",
			i+1, len(f.Train), f.Test[0], f.Test[len(f.Test)-1])
	}
	// Output:
	// fold 1: train 10 samples, test [10, 19]
	// fold 2: train 20 samples, test [20, 29]
	// fold 3: train 30 samples, test [30, 39]
	// fold 4: train 40 samples, test [40, 49]
	// fold 5: train 50 samples, test [50, 59]
}

func ExampleHoldoutRecent() {
	f, _ := tscv.HoldoutRecent(100, 0.2)
	fmt.Printf("train %d, test %d (most recent)\n", len(f.Train), len(f.Test))
	// Output:
	// train 80, test 20 (most recent)
}
