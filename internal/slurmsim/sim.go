package slurmsim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// JobSpec is a job submitted to the simulator. Runtime is the job's true
// wall time (unknown to the scheduler, which sees only TimeLimit).
type JobSpec struct {
	ID            int
	User          int
	Partition     string
	Submit        int64
	EligibleDelay int64 // seconds after submit before the job may start
	ReqCPUs       int
	ReqMemGB      float64
	ReqNodes      int
	ReqGPUs       int
	TimeLimit     int64
	Runtime       int64
	QOS           int
	Interactive   bool
	// DependsOn holds the ID of a job that must complete before this one
	// becomes eligible (Slurm --dependency=afterany). Must reference an
	// earlier job ID; 0 means no dependency. This is one of the reasons
	// the paper keys features off *eligibility* rather than submit time.
	DependsOn int
}

// Config configures a simulation run.
type Config struct {
	Cluster ClusterSpec
	Weights PriorityWeights
	// FairshareHalfLife is the usage decay half-life in seconds.
	FairshareHalfLife int64
	// BackfillDepth bounds how many pending jobs past the blocked one each
	// scheduling pass considers (Slurm's bf_max_job_test). 0 means 100.
	BackfillDepth int
	// PriorityRefresh is how often (sim seconds) the pending queue is
	// re-sorted purely because age factors drifted. 0 means 300.
	PriorityRefresh int64
	// DisablePreemption turns off partition-priority preemption (jobs in
	// Preemptible partitions being requeued by higher-tier jobs).
	DisablePreemption bool
	// DisableBackfill turns off EASY backfill: once the top pending job
	// is blocked, nothing behind it may start (strict priority order).
	DisableBackfill bool
}

// DefaultConfig returns a config with an Anvil-like cluster at the given
// scale and fair-share-dominant weights.
func DefaultConfig(scale int) Config {
	return Config{
		Cluster:           AnvilLike(scale),
		Weights:           DefaultPriorityWeights(),
		FairshareHalfLife: 7 * 24 * 3600,
		BackfillDepth:     100,
		PriorityRefresh:   300,
	}
}

// Stats summarizes a simulation run.
type Stats struct {
	Completed      int
	Rejected       int // jobs whose request exceeds partition capacity
	Events         int
	SchedulePasses int
	BackfillStarts int
	MaxPending     int
	Preemptions    int // requeue preemptions of lower-tier jobs
	// BusyCPUSeconds integrates requested CPUs over run time; with
	// FirstEvent/LastEvent it yields the realized utilization.
	BusyCPUSeconds float64
	FirstEvent     int64
	LastEvent      int64
}

// UtilizationCPU returns realized CPU utilization: busy CPU-seconds over
// capacity × simulated span. Returns 0 when the span is empty.
func (s Stats) UtilizationCPU(totalCPUs int) float64 {
	span := float64(s.LastEvent - s.FirstEvent)
	if span <= 0 || totalCPUs <= 0 {
		return 0
	}
	return s.BusyCPUSeconds / (span * float64(totalCPUs))
}

// alloc records the nodes a running job occupies and the per-node slice.
type alloc struct {
	nodeIDs   []int
	cpus      int // per node
	memGB     float64
	gpus      int
	exclusive bool
}

// simJob is a job's scheduling state.
type simJob struct {
	spec       JobSpec
	part       *PartitionSpec
	eligible   int64
	start      int64
	end        int64
	alloc      alloc
	priority   float64 // live priority, refreshed each sort
	initPrio   int64   // priority at eligibility — recorded in the trace
	backfilled bool
	// runEpoch invalidates stale end events after a requeue preemption.
	runEpoch  int
	preempted int // times this job was requeued
}

// event kinds.
const (
	evEligible = iota
	evEnd
)

type event struct {
	at    int64
	kind  int
	job   *simJob
	seq   int
	epoch int // for evEnd: the job run this event belongs to
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind // eligible before end at equal times? ends first frees resources
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// nodeState tracks a node's free capacity.
type nodeState struct {
	freeCPUs  int
	freeMemGB float64
	freeGPUs  int
	busyJobs  int
}

// Simulator runs jobs through the scheduler.
type Simulator struct {
	cfg       Config
	nodes     []nodeState
	running   map[int]*simJob // by job ID
	pending   []*simJob
	events    eventHeap
	seq       int
	fs        *fairshare
	nUsers    int
	totalCPUs int
	maxTier   int
	stats     Stats
	lastSort  int64
	dirty     bool
	requeued  []*simJob         // preemption victims awaiting re-queue this pass
	waiting   map[int][]*simJob // dependents keyed by the job they wait for
	out       []trace.Job
}

// New builds a simulator for the config.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.BackfillDepth <= 0 {
		cfg.BackfillDepth = 100
	}
	if cfg.PriorityRefresh <= 0 {
		cfg.PriorityRefresh = 300
	}
	if cfg.FairshareHalfLife <= 0 {
		cfg.FairshareHalfLife = 7 * 24 * 3600
	}
	s := &Simulator{
		cfg:     cfg,
		running: map[int]*simJob{},
		waiting: map[int][]*simJob{},
		fs:      newFairshare(cfg.FairshareHalfLife),
	}
	for _, n := range cfg.Cluster.Nodes {
		s.nodes = append(s.nodes, nodeState{freeCPUs: n.CPUs, freeMemGB: n.MemGB, freeGPUs: n.GPUs})
		s.totalCPUs += n.CPUs
	}
	for _, p := range cfg.Cluster.Partitions {
		if p.Tier > s.maxTier {
			s.maxTier = p.Tier
		}
	}
	if s.maxTier == 0 {
		s.maxTier = 1
	}
	return s, nil
}

// Run simulates the given jobs and returns the completed-job trace. The
// event loop drains fully: arrivals stop when specs run out, then the queue
// empties.
func Run(cfg Config, specs []JobSpec) (*trace.Trace, Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	users := map[int]bool{}
	for i := range specs {
		users[specs[i].User] = true
	}
	s.nUsers = len(users)

	accepted := map[int]bool{}
	for i := range specs {
		sp := specs[i]
		part := cfg.Cluster.Partition(sp.Partition)
		if part == nil {
			return nil, s.stats, fmt.Errorf("slurmsim: job %d targets unknown partition %q", sp.ID, sp.Partition)
		}
		if sp.DependsOn != 0 && sp.DependsOn >= sp.ID {
			return nil, s.stats, fmt.Errorf("slurmsim: job %d depends on %d (must be an earlier job)", sp.ID, sp.DependsOn)
		}
		if err := s.checkFeasible(sp, part); err != nil {
			s.stats.Rejected++
			continue
		}
		if sp.DependsOn != 0 && !accepted[sp.DependsOn] {
			// Slurm holds jobs whose dependency can never be satisfied;
			// accounting-wise they end up cancelled.
			s.stats.Rejected++
			continue
		}
		accepted[sp.ID] = true
		j := &simJob{spec: sp, part: part, eligible: sp.Submit + sp.EligibleDelay}
		if sp.DependsOn != 0 {
			s.waiting[sp.DependsOn] = append(s.waiting[sp.DependsOn], j)
			continue
		}
		s.push(event{at: j.eligible, kind: evEligible, job: j})
	}

	if len(s.events) > 0 {
		s.stats.FirstEvent = s.events[0].at
	}
	for len(s.events) > 0 {
		now := s.events[0].at
		s.stats.LastEvent = now
		// Drain all events at this instant, ends first (Less orders
		// eligible<end, so handle explicitly: process everything at
		// `now`, applying ends before starts inside the batch).
		var batch []event
		for len(s.events) > 0 && s.events[0].at == now {
			batch = append(batch, heap.Pop(&s.events).(event))
		}
		for _, ev := range batch {
			// A stale end event (the job was preempted and requeued
			// since it was scheduled) is a no-op.
			if ev.kind == evEnd && ev.epoch == ev.job.runEpoch {
				s.finish(ev.job, now)
			}
		}
		for _, ev := range batch {
			if ev.kind == evEligible {
				s.stats.Events++
				s.pending = append(s.pending, ev.job)
				ev.job.initPrio = int64(s.jobPriority(ev.job, now))
				s.dirty = true
			}
		}
		s.schedule(now)
	}
	tr := &trace.Trace{Jobs: s.out}
	tr.SortByEligible()
	return tr, s.stats, nil
}

func (s *Simulator) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// checkFeasible rejects jobs that could never run on their partition.
func (s *Simulator) checkFeasible(sp JobSpec, part *PartitionSpec) error {
	if sp.ReqNodes <= 0 || sp.ReqCPUs <= 0 || sp.ReqMemGB <= 0 || sp.TimeLimit <= 0 || sp.Runtime < 0 {
		return fmt.Errorf("invalid request")
	}
	if part.MaxTime > 0 && sp.TimeLimit > part.MaxTime {
		return fmt.Errorf("time limit exceeds partition max")
	}
	if sp.ReqNodes > len(part.NodeIDs) {
		return fmt.Errorf("more nodes than partition has")
	}
	cpus, mem, gpus := perNodeAsk(sp)
	fits := 0
	for _, id := range part.NodeIDs {
		n := s.cfg.Cluster.Nodes[id]
		if n.CPUs >= cpus && n.MemGB >= mem && n.GPUs >= gpus {
			fits++
		}
	}
	if fits < sp.ReqNodes {
		return fmt.Errorf("per-node request exceeds node capacity")
	}
	return nil
}

// perNodeAsk converts a job's aggregate request into a per-node slice.
func perNodeAsk(sp JobSpec) (cpus int, memGB float64, gpus int) {
	cpus = (sp.ReqCPUs + sp.ReqNodes - 1) / sp.ReqNodes
	memGB = sp.ReqMemGB / float64(sp.ReqNodes)
	gpus = (sp.ReqGPUs + sp.ReqNodes - 1) / sp.ReqNodes
	return
}

// finish releases a completed job and charges fair-share usage.
func (s *Simulator) finish(j *simJob, now int64) {
	s.stats.Events++
	for _, id := range j.alloc.nodeIDs {
		n := &s.nodes[id]
		if j.alloc.exclusive {
			spec := s.cfg.Cluster.Nodes[id]
			n.freeCPUs = spec.CPUs
			n.freeMemGB = spec.MemGB
			n.freeGPUs = spec.GPUs
		} else {
			n.freeCPUs += j.alloc.cpus
			n.freeMemGB += j.alloc.memGB
			n.freeGPUs += j.alloc.gpus
		}
		n.busyJobs--
	}
	delete(s.running, j.spec.ID)
	s.stats.BusyCPUSeconds += float64(j.spec.ReqCPUs) * float64(now-j.start)
	s.fs.Charge(j.spec.User, float64(j.spec.ReqCPUs)*float64(now-j.start), now)
	s.dirty = true

	state := trace.StateCompleted
	if j.spec.Runtime >= j.spec.TimeLimit {
		state = trace.StateTimeout
	}
	s.out = append(s.out, trace.Job{
		ID: j.spec.ID, User: j.spec.User, Partition: j.spec.Partition, State: state,
		Submit: j.spec.Submit, Eligible: j.eligible, Start: j.start, End: now,
		ReqCPUs: j.spec.ReqCPUs, ReqMemGB: j.spec.ReqMemGB, ReqNodes: j.spec.ReqNodes,
		ReqGPUs: j.spec.ReqGPUs, TimeLimit: j.spec.TimeLimit,
		Priority: j.initPrio, QOS: j.spec.QOS, Interactive: j.spec.Interactive,
		DependsOn: j.spec.DependsOn,
	})
	s.stats.Completed++

	// Release dependents: they become eligible now (or at their own
	// submit+delay, whichever is later).
	for _, w := range s.waiting[j.spec.ID] {
		el := w.spec.Submit + w.spec.EligibleDelay
		if now > el {
			el = now
		}
		w.eligible = el
		s.push(event{at: el, kind: evEligible, job: w})
	}
	delete(s.waiting, j.spec.ID)
}

// tryAlloc attempts a first-fit allocation for j on its partition using the
// given node states. It returns the chosen node IDs or nil.
func (s *Simulator) tryAlloc(nodes []nodeState, j *simJob) []int {
	cpus, mem, gpus := perNodeAsk(j.spec)
	var chosen []int
	for _, id := range j.part.NodeIDs {
		n := &nodes[id]
		if j.part.Exclusive {
			spec := s.cfg.Cluster.Nodes[id]
			if n.busyJobs > 0 || n.freeCPUs != spec.CPUs {
				continue
			}
		}
		if n.freeCPUs >= cpus && n.freeMemGB >= mem && n.freeGPUs >= gpus {
			chosen = append(chosen, id)
			if len(chosen) == j.spec.ReqNodes {
				return chosen
			}
		}
	}
	return nil
}

// startJob commits an allocation and schedules the job's end event.
func (s *Simulator) startJob(j *simJob, nodeIDs []int, now int64) {
	cpus, mem, gpus := perNodeAsk(j.spec)
	j.alloc = alloc{nodeIDs: nodeIDs, cpus: cpus, memGB: mem, gpus: gpus, exclusive: j.part.Exclusive}
	for _, id := range nodeIDs {
		n := &s.nodes[id]
		if j.part.Exclusive {
			n.freeCPUs = 0
			n.freeMemGB = 0
			n.freeGPUs = 0
		} else {
			n.freeCPUs -= cpus
			n.freeMemGB -= mem
			n.freeGPUs -= gpus
		}
		n.busyJobs++
	}
	j.start = now
	run := j.spec.Runtime
	if run > j.spec.TimeLimit {
		run = j.spec.TimeLimit // the scheduler kills jobs at their limit
	}
	j.end = now + run
	s.running[j.spec.ID] = j
	s.push(event{at: j.end, kind: evEnd, job: j, epoch: j.runEpoch})
}

// releaseAlloc returns a running job's resources to the cluster without
// recording completion (the requeue half of a preemption).
func (s *Simulator) releaseAlloc(j *simJob) {
	for _, id := range j.alloc.nodeIDs {
		n := &s.nodes[id]
		if j.alloc.exclusive {
			spec := s.cfg.Cluster.Nodes[id]
			n.freeCPUs = spec.CPUs
			n.freeMemGB = spec.MemGB
			n.freeGPUs = spec.GPUs
		} else {
			n.freeCPUs += j.alloc.cpus
			n.freeMemGB += j.alloc.memGB
			n.freeGPUs += j.alloc.gpus
		}
		n.busyJobs--
	}
	delete(s.running, j.spec.ID)
	j.alloc = alloc{}
}

// chargePartialRun records the CPU time a preemption victim consumed before
// being requeued (accounted for utilization but not fair share, mirroring
// sites that do not charge users for preempted work).
func (s *Simulator) chargePartialRun(j *simJob, now int64) {
	s.stats.BusyCPUSeconds += float64(j.spec.ReqCPUs) * float64(now-j.start)
}

// tryPreempt attempts to start j by requeueing running jobs from
// lower-tier Preemptible partitions (Slurm partition_prio preemption).
// Only the highest-priority blocked job may preempt, and victims are chosen
// newest-start-first to minimize lost work. Returns true if j was started.
func (s *Simulator) tryPreempt(j *simJob, now int64) bool {
	if s.cfg.DisablePreemption {
		return false
	}
	var victims []*simJob
	for _, r := range s.running {
		if r.part.Preemptible && r.part.Tier < j.part.Tier {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		return false
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].start != victims[b].start {
			return victims[a].start > victims[b].start // newest first
		}
		return victims[a].spec.ID > victims[b].spec.ID
	})
	// Simulate releases on scratch state until j fits.
	scratch := make([]nodeState, len(s.nodes))
	copy(scratch, s.nodes)
	needed := -1
	for k, v := range victims {
		for _, id := range v.alloc.nodeIDs {
			n := &scratch[id]
			if v.alloc.exclusive {
				spec := s.cfg.Cluster.Nodes[id]
				n.freeCPUs = spec.CPUs
				n.freeMemGB = spec.MemGB
				n.freeGPUs = spec.GPUs
			} else {
				n.freeCPUs += v.alloc.cpus
				n.freeMemGB += v.alloc.memGB
				n.freeGPUs += v.alloc.gpus
			}
			n.busyJobs--
		}
		if s.tryAlloc(scratch, j) != nil {
			needed = k
			break
		}
	}
	if needed == -1 {
		return false
	}
	// Commit: requeue the victims, then start j for real. Victims are
	// parked on s.requeued because schedule() is compacting s.pending in
	// place around this call; it re-queues them after the pass.
	for _, v := range victims[:needed+1] {
		s.chargePartialRun(v, now)
		s.releaseAlloc(v)
		v.runEpoch++
		v.preempted++
		s.requeued = append(s.requeued, v)
		s.stats.Preemptions++
	}
	ids := s.tryAlloc(s.nodes, j)
	if ids == nil {
		// Should not happen: scratch said it fits.
		return false
	}
	s.startJob(j, ids, now)
	return true
}

// schedule runs one scheduling pass: start pending jobs in priority order,
// compute an EASY-backfill reservation for the first blocked job, and let
// later jobs backfill if they cannot delay it.
func (s *Simulator) schedule(now int64) {
	if len(s.pending) == 0 {
		return
	}
	s.stats.SchedulePasses++
	if len(s.pending) > s.stats.MaxPending {
		s.stats.MaxPending = len(s.pending)
	}
	if s.dirty || now-s.lastSort >= s.cfg.PriorityRefresh {
		for _, j := range s.pending {
			j.priority = s.jobPriority(j, now)
		}
		// Slurm evaluation order: partition tier, priority, submit, ID.
		sort.SliceStable(s.pending, func(a, b int) bool {
			ja, jb := s.pending[a], s.pending[b]
			if ja.part.Tier != jb.part.Tier {
				return ja.part.Tier > jb.part.Tier
			}
			if ja.priority != jb.priority {
				return ja.priority > jb.priority
			}
			if ja.spec.Submit != jb.spec.Submit {
				return ja.spec.Submit < jb.spec.Submit
			}
			return ja.spec.ID < jb.spec.ID
		})
		s.lastSort = now
		s.dirty = false
	}

	var (
		reserved      bool
		shadowTime    int64
		reservedNodes map[int]bool
		tested        int
	)
	remaining := s.pending[:0]
	for qi, j := range s.pending {
		if reserved && (s.cfg.DisableBackfill || tested >= s.cfg.BackfillDepth) {
			remaining = append(remaining, s.pending[qi:]...)
			break
		}
		nodeIDs := s.tryAlloc(s.nodes, j)
		if nodeIDs != nil && reserved {
			// Backfill test: must finish before the shadow time or
			// avoid the reserved nodes entirely.
			tested++
			ok := now+j.spec.TimeLimit <= shadowTime
			if !ok {
				ok = true
				for _, id := range nodeIDs {
					if reservedNodes[id] {
						ok = false
						break
					}
				}
			}
			if !ok {
				remaining = append(remaining, j)
				continue
			}
			j.backfilled = true
			s.stats.BackfillStarts++
		}
		if nodeIDs != nil {
			s.startJob(j, nodeIDs, now)
			s.dirty = true
			continue
		}
		if !reserved {
			// The top blocked job may preempt lower-tier preemptible
			// jobs before settling for a reservation.
			if s.tryPreempt(j, now) {
				s.dirty = true
				continue
			}
			reserved = true
			shadowTime, reservedNodes = s.computeShadow(j, now)
		} else {
			tested++
		}
		remaining = append(remaining, j)
	}
	// Zero the tail so released jobs do not leak via the shared array.
	for i := len(remaining); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = remaining
	if len(s.requeued) > 0 {
		s.pending = append(s.pending, s.requeued...)
		s.requeued = s.requeued[:0]
		s.dirty = true
	}
}

// computeShadow projects when the blocked job j could start by releasing
// running jobs in end-time order over a scratch copy of node state. It
// returns the projected start (shadow) time and the node set j would use.
func (s *Simulator) computeShadow(j *simJob, now int64) (int64, map[int]bool) {
	scratch := make([]nodeState, len(s.nodes))
	copy(scratch, s.nodes)
	if ids := s.tryAlloc(scratch, j); ids != nil {
		// Shouldn't happen (caller failed to alloc), but be safe.
		return now, toSet(ids)
	}
	ends := make([]*simJob, 0, len(s.running))
	for _, r := range s.running {
		ends = append(ends, r)
	}
	sort.Slice(ends, func(a, b int) bool {
		if ends[a].end != ends[b].end {
			return ends[a].end < ends[b].end
		}
		return ends[a].spec.ID < ends[b].spec.ID
	})
	for _, r := range ends {
		for _, id := range r.alloc.nodeIDs {
			n := &scratch[id]
			if r.alloc.exclusive {
				spec := s.cfg.Cluster.Nodes[id]
				n.freeCPUs = spec.CPUs
				n.freeMemGB = spec.MemGB
				n.freeGPUs = spec.GPUs
			} else {
				n.freeCPUs += r.alloc.cpus
				n.freeMemGB += r.alloc.memGB
				n.freeGPUs += r.alloc.gpus
			}
			n.busyJobs--
		}
		if ids := s.tryAlloc(scratch, j); ids != nil {
			return r.end, toSet(ids)
		}
	}
	// Queue ahead of us never frees enough (e.g. other pending jobs hold
	// no resources yet): no effective reservation.
	return 1 << 62, nil
}

func toSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}
