package trout_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	trout "repro"
	"repro/internal/controlplane"
	"repro/internal/features"
	"repro/internal/livestate"
	"repro/internal/trace"
)

// oraclePredictor is a synthetic retrain product with a fixed opinion —
// tests pick the opinion to be exactly right (promotion path) or absurdly
// wrong (rejection path) about the realized waits they drive.
type oraclePredictor struct {
	prob    float64
	minutes float64
	long    bool
}

func (p oraclePredictor) ShadowPredict(*features.Snapshot) (float64, float64, bool, error) {
	return p.prob, p.minutes, p.long, nil
}

// serializeBundle gob-encodes a shallow copy (Save stamps the fingerprint
// on its receiver; the memoized shared bundle must stay untouched).
func serializeBundle(t *testing.T, b *trout.Bundle) []byte {
	t.Helper()
	cp := *b
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func blobFingerprint(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// cpHarness is an in-process service with a control plane attached and its
// controller loop running, plus an event clock for driving live traffic.
type cpHarness struct {
	t   *testing.T
	srv *httptest.Server
	svc *trout.Service
	cp  *trout.ControlPlane

	id  int
	now atomic.Int64 // event clock, unix seconds
}

func newCPHarness(t *testing.T, cfg trout.ControlPlaneConfig) *cpHarness {
	t.Helper()
	e := sharedExperiment(t)
	svc, err := trout.NewService(resilientBundle(t), e.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RegistryDir == "" {
		cfg.RegistryDir = t.TempDir()
	}
	cp, err := svc.AttachControlPlane(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cp.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	h := &cpHarness{t: t, srv: srv, svc: svc, cp: cp}
	h.now.Store(svc.LiveStore().Engine().Now() + 3600)
	return h
}

func (h *cpHarness) postEvents(evs ...livestate.Event) {
	h.t.Helper()
	var body bytes.Buffer
	for _, ev := range evs {
		line, err := json.Marshal(ev)
		if err != nil {
			h.t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(h.srv.URL+"/events", "application/x-ndjson", &body)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("events status %d", resp.StatusCode)
	}
	var r struct {
		Applied  int `json:"applied"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		h.t.Fatal(err)
	}
	if r.Applied != len(evs) {
		h.t.Fatalf("applied %d of %d events (%d rejected)", r.Applied, len(evs), r.Rejected)
	}
}

// cpPredict is the slice of predictResponse these tests care about.
type cpPredict struct {
	Long         bool    `json:"long"`
	Prob         float64 `json:"prob"`
	Minutes      float64 `json:"minutes"`
	ModelVersion int     `json:"model_version"`
	ModelID      string  `json:"model_id"`
}

// pumpJob drives one full served-prediction lifecycle: submit an eligible
// job, GET /predict for it (recording the served answer into the online
// tracker and the shadow scorer), then post its start event with the given
// realized wait. Returns the served prediction.
func (h *cpHarness) pumpJob(waitSecs int64) cpPredict {
	h.t.Helper()
	h.id++
	id := 9_000_000 + h.id
	at := h.now.Load()
	h.now.Store(at + waitSecs + 60)
	job := trace.Job{
		ID: id, User: 7, Partition: "shared",
		ReqCPUs: 1, ReqMemGB: 2, ReqNodes: 1,
		TimeLimit: 3600, Priority: 5000, Submit: at,
	}
	h.postEvents(
		livestate.Event{Type: livestate.EventSubmit, Time: at, Job: &job},
		livestate.Event{Type: livestate.EventEligible, Time: at, JobID: id},
	)
	var p cpPredict
	if code := getJSON(h.t, fmt.Sprintf("%s/predict?job=%d", h.srv.URL, id), &p); code != http.StatusOK {
		h.t.Fatalf("predict job %d status %d", id, code)
	}
	// Give the shadow worker a beat to dequeue before the outcome lands.
	time.Sleep(2 * time.Millisecond)
	h.postEvents(livestate.Event{Type: livestate.EventStart, Time: at + waitSecs, JobID: id})
	return p
}

// cpHealth is the slice of healthResponse these tests care about.
type cpHealth struct {
	Status string `json:"status"`
	Model  struct {
		Version     int               `json:"version"`
		Fingerprint string            `json:"fingerprint"`
		Swaps       map[string]uint64 `json:"swaps"`
	} `json:"model"`
	ControlPlane *controlplane.Status `json:"control_plane"`
}

func (h *cpHarness) health() cpHealth {
	h.t.Helper()
	var out cpHealth
	if code := getJSON(h.t, h.srv.URL+"/health", &out); code != http.StatusOK {
		h.t.Fatalf("health status %d", code)
	}
	return out
}

// attributionLoad hammers POST /predict and POST /predict/batch from n
// goroutines until stop closes, recording every failure and every
// (model_version, model_id) attribution pair it observes.
type attributionLoad struct {
	wg       sync.WaitGroup
	stop     chan struct{}
	requests atomic.Uint64
	failures atomic.Uint64
	mu       sync.Mutex
	pairs    map[string]int
}

func startAttributionLoad(srv *httptest.Server, now *atomic.Int64, n int) *attributionLoad {
	l := &attributionLoad{stop: make(chan struct{}), pairs: map[string]int{}}
	client := srv.Client()
	job := `{"user":3,"partition":"shared","req_cpus":2,"req_mem_gb":4,"req_nodes":1,"time_limit":7200,"priority":4000}`
	do := func(path, body string) {
		var out cpPredict
		resp, err := client.Post(srv.URL+path, "application/json", strings.NewReader(body))
		l.requests.Add(1)
		if err != nil {
			l.failures.Add(1)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			l.failures.Add(1)
			return
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			l.failures.Add(1)
			return
		}
		key := fmt.Sprintf("%d/%s", out.ModelVersion, out.ModelID)
		l.mu.Lock()
		l.pairs[key]++
		l.mu.Unlock()
	}
	for i := 0; i < n; i++ {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for {
				select {
				case <-l.stop:
					return
				default:
				}
				at := now.Load()
				do("/predict", fmt.Sprintf(`{"at":%d,"job":%s}`, at, job))
				do("/predict/batch", fmt.Sprintf(`{"at":%d,"jobs":[%s,%s]}`, at, job, job))
			}
		}()
	}
	return l
}

func (l *attributionLoad) halt() map[string]int {
	close(l.stop)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string]int{}
	for k, v := range l.pairs {
		out[k] = v
	}
	return out
}

// TestControlPlaneEndToEnd closes the whole continual-learning loop in
// process: live traffic whose realized waits contradict the serving model
// drives the online drift gauges past threshold, the controller retrains
// (stubbed to an instant trainer whose candidate is exactly right about
// the new regime), shadow-scores the candidate against the incumbent on
// live /predict traffic, and hot-swaps it into serving — all while
// concurrent predict load observes zero failed requests and every response
// stays attributable to exactly one model version.
func TestControlPlaneEndToEnd(t *testing.T) {
	blob := serializeBundle(t, resilientBundle(t))
	wantFP := blobFingerprint(blob)
	// The new regime: every realized wait is 300 minutes. The candidate
	// nails it; whatever the incumbent answers is wrong by hours (MAE
	// trigger) or mis-classified (calibration-drift trigger).
	const waitSecs = 300 * 60
	h := newCPHarness(t, trout.ControlPlaneConfig{
		DriftThreshold: 0.2,
		MAEThreshold:   15,
		MinWindow:      8,
		CheckInterval:  5 * time.Millisecond,
		ShadowWindow:   6,
		RollbackFactor: -1, // the drifted tracker window would instantly fail probation
		Trainer: func(context.Context) (*controlplane.Candidate, error) {
			return &controlplane.Candidate{
				Blob:      blob,
				Predictor: oraclePredictor{prob: 0.97, minutes: 300, long: true},
				Samples:   512,
				Watermark: 12345,
			}, nil
		},
	})
	baseline, _ := h.svc.CurrentModel()
	load := startAttributionLoad(h.srv, &h.now, 3)

	deadline := time.Now().Add(60 * time.Second)
	for h.cp.Controller().Status().LastVerdict != controlplane.VerdictPromoted {
		if time.Now().After(deadline) {
			load.halt()
			t.Fatalf("promotion never happened; status %+v", h.cp.Controller().Status())
		}
		h.pumpJob(waitSecs)
	}
	st := h.cp.Controller().Status()
	if st.Retrains < 1 || st.Promotions != 1 {
		t.Fatalf("controller status = %+v", st)
	}

	// A few more requests land on the promoted model before we stop.
	for i := 0; i < 3; i++ {
		h.pumpJob(waitSecs)
	}
	pairs := load.halt()
	if n := load.failures.Load(); n != 0 {
		t.Fatalf("%d of %d concurrent requests failed across the hot-swap", n, load.requests.Load())
	}
	if load.requests.Load() == 0 {
		t.Fatal("attribution load never ran")
	}
	valid := map[string]bool{
		fmt.Sprintf("0/%s", baseline.Fingerprint): true,
		fmt.Sprintf("1/%s", wantFP):               true,
	}
	for pair := range pairs {
		if !valid[pair] {
			t.Fatalf("response attributed to unknown serving pair %q (valid %v, seen %v)", pair, valid, pairs)
		}
	}

	// Serving identity: /health and a fresh predict agree on version 1,
	// and its fingerprint IS the registry manifest's content address.
	hr := h.health()
	if hr.Model.Version != 1 || hr.Model.Fingerprint != wantFP {
		t.Fatalf("health model = %+v, want version 1 fingerprint %s", hr.Model, wantFP)
	}
	if hr.Model.Swaps["promote"] == 0 {
		t.Fatalf("health swaps = %v", hr.Model.Swaps)
	}
	if hr.ControlPlane == nil || hr.ControlPlane.LastVerdict != controlplane.VerdictPromoted {
		t.Fatalf("health control_plane = %+v", hr.ControlPlane)
	}
	if p := h.pumpJob(waitSecs); p.ModelVersion != 1 || p.ModelID != wantFP {
		t.Fatalf("post-promotion predict attributed to %d/%s", p.ModelVersion, p.ModelID)
	}

	var models struct {
		ServingVersion int                     `json:"serving_version"`
		Active         int                     `json:"active"`
		Versions       []controlplane.Manifest `json:"versions"`
	}
	if code := getJSON(t, h.srv.URL+"/admin/models", &models); code != http.StatusOK {
		t.Fatalf("admin/models status %d", code)
	}
	if models.ServingVersion != 1 || models.Active != 1 {
		t.Fatalf("admin/models = %+v", models)
	}
	if len(models.Versions) != 1 || models.Versions[0].ID != wantFP ||
		models.Versions[0].Status != controlplane.StatusActive {
		t.Fatalf("registry versions = %+v", models.Versions)
	}
	if !strings.Contains(models.Versions[0].Note, "shadow") {
		t.Fatalf("promotion note %q should record the shadow scores", models.Versions[0].Note)
	}
}

// TestControlPlaneRejectsWorseCandidate proves the judge's other arm: a
// manually triggered retrain whose candidate is absurdly wrong about live
// traffic is rejected after its shadow window, the incumbent keeps
// serving as version 0, and the rejection is recorded in the registry.
func TestControlPlaneRejectsWorseCandidate(t *testing.T) {
	blob := serializeBundle(t, resilientBundle(t))
	h := newCPHarness(t, trout.ControlPlaneConfig{
		DriftThreshold: -1, // autonomous trigger off: this test drives /admin/retrain
		MinWindow:      4,
		CheckInterval:  5 * time.Millisecond,
		ShadowWindow:   5,
		RollbackFactor: -1,
		Trainer: func(context.Context) (*controlplane.Candidate, error) {
			// Calls every 1-minute wait a 100000-minute epic: hit-rate 0
			// and an MAE no real incumbent could lose to.
			return &controlplane.Candidate{
				Blob:      blob,
				Predictor: oraclePredictor{prob: 0.98, minutes: 100000, long: true},
				Samples:   512,
				Watermark: 12345,
			}, nil
		},
	})
	var trig struct {
		Accepted bool   `json:"accepted"`
		Message  string `json:"message"`
	}
	resp, err := http.Post(h.srv.URL+"/admin/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&trig); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !trig.Accepted {
		t.Fatalf("admin/retrain status %d, body %+v", resp.StatusCode, trig)
	}

	deadline := time.Now().Add(60 * time.Second)
	for h.cp.Controller().Status().LastVerdict != controlplane.VerdictRejected {
		if time.Now().After(deadline) {
			t.Fatalf("rejection never happened; status %+v", h.cp.Controller().Status())
		}
		h.pumpJob(60) // realized waits are all quick-start
	}

	st := h.cp.Controller().Status()
	if st.Rejections != 1 || st.Promotions != 0 {
		t.Fatalf("controller status = %+v", st)
	}
	hr := h.health()
	if hr.Model.Version != 0 {
		t.Fatalf("incumbent displaced: health model = %+v", hr.Model)
	}
	if m, ok := h.cp.Registry().Manifest(1); !ok || m.Status != controlplane.StatusRejected || m.Note == "" {
		t.Fatalf("rejected manifest = %+v (ok=%v)", m, ok)
	}
	if h.cp.Registry().ActiveVersion() != 0 {
		t.Fatalf("registry active = %d", h.cp.Registry().ActiveVersion())
	}
	// The incumbent keeps answering.
	if p := h.pumpJob(60); p.ModelVersion != 0 {
		t.Fatalf("post-rejection predict attributed to version %d", p.ModelVersion)
	}
}

// TestHotSwapHammer drives /predict and /predict/batch from several
// goroutines while the serving bundle is repeatedly hot-swapped and rolled
// back. Run under -race in CI. Invariants: zero failed requests, and every
// response attributes itself to exactly one of the two bundles that ever
// served.
func TestHotSwapHammer(t *testing.T) {
	srv, svc := resilientServer(t, resilientBundle(t), trout.ServiceConfig{})
	blob := serializeBundle(t, resilientBundle(t))
	next, err := trout.LoadBundle(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	wantFP := blobFingerprint(blob)
	baseline, _ := svc.CurrentModel()

	var now atomic.Int64
	now.Store(svc.LiveStore().Engine().Now())
	load := startAttributionLoad(srv, &now, 4)
	const swaps = 20
	for i := 0; i < swaps; i++ {
		if err := svc.SwapBundle(next, 1); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
		if err := svc.RollbackBundle(); err != nil {
			t.Fatalf("rollback %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	pairs := load.halt()

	if n := load.failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during hot-swap hammer", n, load.requests.Load())
	}
	valid := map[string]bool{
		fmt.Sprintf("0/%s", baseline.Fingerprint): true,
		fmt.Sprintf("1/%s", wantFP):               true,
	}
	for pair := range pairs {
		if !valid[pair] {
			t.Fatalf("response attributed to torn serving pair %q (valid %v)", pair, valid)
		}
	}
	if b, v := svc.CurrentModel(); v != 0 || b != baseline {
		t.Fatalf("serving (%p, v%d) after final rollback, want baseline v0", b, v)
	}
	var hr cpHealth
	if code := getJSON(t, srv.URL+"/health", &hr); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if hr.Model.Swaps["promote"] != swaps || hr.Model.Swaps["rollback"] != swaps {
		t.Fatalf("health swaps = %v, want %d of each", hr.Model.Swaps, swaps)
	}
}

// TestAdminSwapCompatGuard covers the operator override: an incompatible
// registry bundle is refused with a structured 422 (and a typed error via
// the Go API) while the incumbent keeps serving; a compatible one swaps in
// and rolls back cleanly.
func TestAdminSwapCompatGuard(t *testing.T) {
	h := newCPHarness(t, trout.ControlPlaneConfig{
		DriftThreshold: -1,
		Trainer: func(context.Context) (*controlplane.Candidate, error) {
			return nil, errors.New("unused")
		},
	})

	// An otherwise-valid bundle whose model claims the wrong feature
	// width: decodes fine, fails the compat guard.
	bad := *resilientBundle(t)
	badModel := *bad.Model
	badModel.NumInputs = 7
	bad.Model = &badModel
	var incompatErr *trout.IncompatibleBundleError
	if err := h.svc.SwapBundle(&bad, 99); !errors.As(err, &incompatErr) {
		t.Fatalf("SwapBundle(incompatible) = %v, want IncompatibleBundleError", err)
	}

	badBlob := serializeBundle(t, &bad)
	if _, err := h.cp.Registry().Publish(badBlob, controlplane.Manifest{Note: "wrong feature width"}); err != nil {
		t.Fatal(err)
	}
	goodBlob := serializeBundle(t, resilientBundle(t))
	goodFP := blobFingerprint(goodBlob)
	if _, err := h.cp.Registry().Publish(goodBlob, controlplane.Manifest{Note: "compatible"}); err != nil {
		t.Fatal(err)
	}

	var errBody struct {
		Error string `json:"error"`
	}
	resp, err := http.Post(h.srv.URL+"/admin/swap", "application/json", strings.NewReader(`{"version":1}`))
	if err != nil {
		t.Fatal(err)
	}
	code := resp.StatusCode
	if decodeErr := json.NewDecoder(resp.Body).Decode(&errBody); decodeErr != nil {
		t.Fatal(decodeErr)
	}
	resp.Body.Close()
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("swap to incompatible bundle: status %d body %+v", code, errBody)
	}
	if !strings.Contains(errBody.Error, "incompatible bundle") {
		t.Fatalf("422 body %+v should name the incompatibility", errBody)
	}
	if hr := h.health(); hr.Model.Version != 0 {
		t.Fatalf("incumbent displaced by refused swap: %+v", hr.Model)
	}

	// Unknown version: structured 404.
	if code := postJSON(t, h.srv.URL+"/admin/swap", map[string]any{"version": 42}, nil); code != http.StatusNotFound {
		t.Fatalf("swap to unknown version: status %d", code)
	}

	// The compatible version swaps in...
	var ok struct {
		ServingVersion     int    `json:"serving_version"`
		ServingFingerprint string `json:"serving_fingerprint"`
	}
	if code := postJSON(t, h.srv.URL+"/admin/swap", map[string]any{"version": 2}, &ok); code != http.StatusOK {
		t.Fatalf("swap to compatible version: status %d", code)
	}
	if ok.ServingVersion != 2 || ok.ServingFingerprint != goodFP {
		t.Fatalf("swap response = %+v", ok)
	}
	if h.cp.Registry().ActiveVersion() != 2 {
		t.Fatalf("registry active = %d after manual swap", h.cp.Registry().ActiveVersion())
	}
	if p := h.pumpJob(60); p.ModelVersion != 2 || p.ModelID != goodFP {
		t.Fatalf("predict attributed to %d/%s after manual swap", p.ModelVersion, p.ModelID)
	}

	// ...and rolls back to the boot bundle on demand.
	if code := postJSON(t, h.srv.URL+"/admin/swap", map[string]any{"rollback": true}, nil); code != http.StatusOK {
		t.Fatalf("rollback status %d", code)
	}
	if hr := h.health(); hr.Model.Version != 0 {
		t.Fatalf("rollback left model %+v", hr.Model)
	}
	if h.cp.Registry().ActiveVersion() != 0 {
		t.Fatalf("registry active = %d after rollback", h.cp.Registry().ActiveVersion())
	}
}
