package core

import (
	"repro/internal/features"
	"repro/internal/metrics"
)

// RegressionEval summarizes the regression head on the truly-long jobs of a
// test slice — the quantities behind the paper's Figs 4–9 and §IV numbers.
type RegressionEval struct {
	N         int
	MAPE      float64
	Pearson   float64
	Within100 float64
	MAE       float64
	Pred      []float64 // minutes, aligned with Actual
	Actual    []float64
}

// EvaluateRegression applies the regression head to every test job whose
// true queue time exceeds the cutoff.
func EvaluateRegression(m *Model, ds *features.Dataset, testIdx []int) RegressionEval {
	var pred, actual []float64
	for _, i := range testIdx {
		if ds.QueueMinutes[i] < m.Cfg.CutoffMinutes {
			continue
		}
		pred = append(pred, m.RegressMinutes(ds.X[i]))
		actual = append(actual, ds.QueueMinutes[i])
	}
	return RegressionEval{
		N:         len(pred),
		MAPE:      metrics.MAPE(pred, actual),
		Pearson:   metrics.Pearson(pred, actual),
		Within100: metrics.WithinPercent(pred, actual, 100),
		MAE:       metrics.MAE(pred, actual),
		Pred:      pred,
		Actual:    actual,
	}
}

// ClassifierEval summarizes the classifier on a test slice.
type ClassifierEval struct {
	metrics.Confusion
	N   int
	AUC float64 // threshold-free ranking quality (0.5 = chance)
}

// EvaluateClassifier scores the quick-start/long classifier on a test slice.
func EvaluateClassifier(m *Model, ds *features.Dataset, testIdx []int) ClassifierEval {
	probs := make([]float64, len(testIdx))
	labels := make([]bool, len(testIdx))
	for k, i := range testIdx {
		probs[k] = m.ClassifyProb(ds.X[i])
		labels[k] = ds.QueueMinutes[i] >= m.Cfg.CutoffMinutes
	}
	return ClassifierEval{
		Confusion: metrics.Confuse(probs, labels),
		N:         len(testIdx),
		AUC:       metrics.AUC(probs, labels),
	}
}

// HierarchicalEval scores the full Algorithm 1 pipeline end-to-end: every
// test job gets a prediction (cutoff/2 minutes when classified quick-start),
// measured against the true queue time.
type HierarchicalEval struct {
	N         int
	MAPE      float64
	Within100 float64
	// MisroutedLong counts truly-long jobs the classifier sent to the
	// quick-start branch (the hierarchical design's main failure mode).
	MisroutedLong int
}

// EvaluateHierarchical runs Algorithm 1 over a test slice.
func EvaluateHierarchical(m *Model, ds *features.Dataset, testIdx []int) HierarchicalEval {
	pred := make([]float64, len(testIdx))
	actual := make([]float64, len(testIdx))
	misrouted := 0
	for k, i := range testIdx {
		p := m.Predict(ds.X[i])
		if p.Long {
			pred[k] = p.Minutes
		} else {
			// A "less than cutoff" verdict is scored at the midpoint.
			pred[k] = m.Cfg.CutoffMinutes / 2
			if ds.QueueMinutes[i] >= m.Cfg.CutoffMinutes {
				misrouted++
			}
		}
		actual[k] = ds.QueueMinutes[i]
	}
	return HierarchicalEval{
		N:             len(testIdx),
		MAPE:          metrics.MAPE(pred, actual),
		Within100:     metrics.WithinPercent(pred, actual, 100),
		MisroutedLong: misrouted,
	}
}
