package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LossKind names a training loss.
type LossKind string

// Supported losses. The paper uses smooth-L1 for the regressor (robust to
// the day-long queue-time outliers) and binary cross-entropy with balanced
// classes for the classifier.
const (
	MSE      LossKind = "mse"
	MAE      LossKind = "mae"
	SmoothL1 LossKind = "smoothl1"
	BCE      LossKind = "bce"
)

// smoothL1Beta is the transition point between the quadratic and linear
// regimes of the smooth-L1 (Huber) loss.
const smoothL1Beta = 1.0

// bceEps clamps sigmoid outputs away from {0,1} so log stays finite.
const bceEps = 1e-9

// Loss evaluates a loss and its gradient w.r.t. predictions. pred and target
// must be equal-shaped; the returned gradient has the same shape. The scalar
// is the mean loss over all elements.
func Loss(kind LossKind, pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return LossInto(kind, pred, target, grad), grad
}

// LossInto is Loss writing the gradient into grad, which is reshaped to
// pred's shape reusing its backing array. Every element of grad is written
// — zero branches included — so a buffer reused across batches is safe.
// This is the trainer's hot path.
func LossInto(kind LossKind, pred, target, grad *tensor.Matrix) float64 {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: loss shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	n := float64(len(pred.Data))
	if n == 0 {
		reshape(grad, pred.Rows, pred.Cols)
		return 0
	}
	reshape(grad, pred.Rows, pred.Cols)
	var total float64
	switch kind {
	case MSE:
		for i, p := range pred.Data {
			d := p - target.Data[i]
			total += d * d
			grad.Data[i] = 2 * d / n
		}
	case MAE:
		for i, p := range pred.Data {
			d := p - target.Data[i]
			total += math.Abs(d)
			switch {
			case d > 0:
				grad.Data[i] = 1 / n
			case d < 0:
				grad.Data[i] = -1 / n
			default:
				grad.Data[i] = 0
			}
		}
	case SmoothL1:
		for i, p := range pred.Data {
			d := p - target.Data[i]
			ad := math.Abs(d)
			if ad < smoothL1Beta {
				total += 0.5 * d * d / smoothL1Beta
				grad.Data[i] = d / smoothL1Beta / n
			} else {
				total += ad - 0.5*smoothL1Beta
				if d > 0 {
					grad.Data[i] = 1 / n
				} else {
					grad.Data[i] = -1 / n
				}
			}
		}
	case BCE:
		for i, p := range pred.Data {
			y := target.Data[i]
			pc := math.Min(math.Max(p, bceEps), 1-bceEps)
			total += -(y*math.Log(pc) + (1-y)*math.Log(1-pc))
			grad.Data[i] = (pc - y) / (pc * (1 - pc)) / n
		}
	default:
		panic(fmt.Sprintf("nn: unknown loss %q", kind))
	}
	return total / n
}

// PinballLoss evaluates the quantile (pinball) loss at quantile tau and its
// gradient w.r.t. predictions: loss = mean(max(tau·d, (tau−1)·d)) with
// d = target − pred. Minimizing it makes the model estimate the tau-th
// conditional quantile — the basis for queue-time prediction intervals.
func PinballLoss(tau float64, pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if tau <= 0 || tau >= 1 {
		panic(fmt.Sprintf("nn: pinball tau %v outside (0,1)", tau))
	}
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: pinball shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	n := float64(len(pred.Data))
	if n == 0 {
		return 0, tensor.New(0, 0)
	}
	grad := tensor.New(pred.Rows, pred.Cols)
	var total float64
	for i, p := range pred.Data {
		d := target.Data[i] - p
		if d >= 0 {
			total += tau * d
			grad.Data[i] = -tau / n
		} else {
			total += (tau - 1) * d
			grad.Data[i] = (1 - tau) / n
		}
	}
	return total / n, grad
}
