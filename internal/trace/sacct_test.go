package trace

import (
	"strings"
	"testing"
)

const sacctHeader = "JobID|User|Partition|State|Submit|Eligible|Start|End|ReqCPUS|ReqMem|ReqNodes|Timelimit|Priority|QOS"

func TestReadSacctBasic(t *testing.T) {
	in := sacctHeader + "\n" +
		"101|alice|shared|COMPLETED|2024-03-01T10:00:00|2024-03-01T10:00:00|2024-03-01T10:05:00|2024-03-01T11:05:00|16|32G|1|04:00:00|12345|normal\n" +
		"101.batch|alice|shared|COMPLETED|2024-03-01T10:00:00|2024-03-01T10:00:00|2024-03-01T10:05:00|2024-03-01T11:05:00|16|32G|1|04:00:00|12345|normal\n" +
		"102|bob|gpu|TIMEOUT|2024-03-01T10:30:00|2024-03-01T10:40:00|2024-03-01T12:00:00|2024-03-02T12:00:00|32|128000M|1|1-00:00:00|9000|high\n"
	tr, err := ReadSacct(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("%d jobs (steps must be skipped)", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 101 || j.Partition != "shared" || j.State != StateCompleted {
		t.Fatalf("job 101 = %+v", j)
	}
	if j.QueueSeconds() != 300 {
		t.Fatalf("queue = %d, want 300", j.QueueSeconds())
	}
	if j.ReqMemGB != 32 {
		t.Fatalf("mem = %v", j.ReqMemGB)
	}
	if j.TimeLimit != 4*3600 {
		t.Fatalf("limit = %d", j.TimeLimit)
	}
	g := tr.Jobs[1]
	if g.State != StateTimeout || g.TimeLimit != 86400 {
		t.Fatalf("job 102 = %+v", g)
	}
	if g.ReqMemGB < 124 || g.ReqMemGB > 126 { // 128000M = 125 GiB
		t.Fatalf("102 mem = %v", g.ReqMemGB)
	}
	// Eligible respected (10:40 vs submit 10:30).
	if g.Eligible-g.Submit != 600 {
		t.Fatalf("eligible gap = %d", g.Eligible-g.Submit)
	}
	// Distinct users interned to distinct IDs.
	if tr.Jobs[0].User == tr.Jobs[1].User {
		t.Fatal("users not interned distinctly")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSacctSkipsNeverStarted(t *testing.T) {
	in := sacctHeader + "\n" +
		"201|alice|shared|CANCELLED by 500|2024-03-01T10:00:00|2024-03-01T10:00:00|Unknown|Unknown|4|8G|1|01:00:00|100|normal\n" +
		"202|alice|shared|COMPLETED|2024-03-01T10:00:00|2024-03-01T10:00:00|2024-03-01T10:01:00|2024-03-01T10:31:00|4|8G|1|01:00:00|100|normal\n"
	tr, err := ReadSacct(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].ID != 202 {
		t.Fatalf("jobs = %+v", tr.Jobs)
	}
}

func TestReadSacctErrors(t *testing.T) {
	if _, err := ReadSacct(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadSacct(strings.NewReader("JobID|User\n1|a\n")); err == nil {
		t.Fatal("missing columns accepted")
	}
	if _, err := ReadSacct(strings.NewReader(sacctHeader + "\n")); err == nil {
		t.Fatal("header-only input accepted")
	}
	short := sacctHeader + "\n101|alice\n"
	if _, err := ReadSacct(strings.NewReader(short)); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestParseSacctDuration(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"04:00:00", 14400, false},
		{"1-00:00:00", 86400, false},
		{"2-12:30:00", 2*86400 + 12*3600 + 30*60, false},
		{"30:00", 1800, false},
		{"UNLIMITED", 0, true},
		{"", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := parseSacctDuration(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("%q = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSacctMem(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"32G", 32},
		{"4000M", 4000.0 / 1024},
		{"2T", 2048},
		{"1048576K", 1},
		{"4Gn", 4}, // per-node suffix stripped
		{"512Mc", 0.5},
	}
	for _, c := range cases {
		got, err := parseSacctMem(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := parseSacctMem(""); err == nil {
		t.Error("empty mem accepted")
	}
}

func TestNormalizeState(t *testing.T) {
	cases := map[string]JobState{
		"COMPLETED":        StateCompleted,
		"TIMEOUT":          StateTimeout,
		"CANCELLED by 123": StateCancelled,
		"FAILED":           StateFailed,
		"OUT_OF_MEMORY":    StateFailed,
		"NODE_FAIL":        StateFailed,
	}
	for in, want := range cases {
		if got := normalizeState(in); got != want {
			t.Errorf("%q = %s, want %s", in, got, want)
		}
	}
}
