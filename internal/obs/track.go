package obs

import (
	"sync"
)

// AccuracyTracker closes the loop between served predictions and what
// the cluster actually did: Record remembers recent predictions keyed
// by job ID, Resolve joins one against the realized queue time when the
// live-state engine observes the job's start event, and the rolling
// window of joined outcomes yields online classifier hit-rate,
// regression MAE/MAPE, and a calibration drift signal — the production
// counterpart of the paper's offline evaluation.
type AccuracyTracker struct {
	cutoff     float64
	pendingCap int
	window     int

	mu      sync.Mutex
	pending map[int]predRec
	fifo    []int // job IDs in Record order; head marks the oldest live entry
	head    int

	out  []outcome // ring of joined outcomes
	next int
	n    int

	joined    uint64
	evicted   uint64
	unmatched uint64
}

// predRec is one remembered prediction.
type predRec struct {
	prob    float64
	minutes float64
	long    bool
}

// outcome is one prediction joined against ground truth.
type outcome struct {
	prob          float64
	predMinutes   float64
	actualMinutes float64
	predLong      bool
	actualLong    bool
}

// NewAccuracyTracker tracks up to pendingCap unresolved predictions
// (FIFO-evicted; 0 means 4096) and computes rolling statistics over the
// last window joined outcomes (0 means 512). cutoffMinutes is the
// long/short boundary the classifier was trained against.
func NewAccuracyTracker(cutoffMinutes float64, pendingCap, window int) *AccuracyTracker {
	if pendingCap <= 0 {
		pendingCap = 4096
	}
	if window <= 0 {
		window = 512
	}
	return &AccuracyTracker{
		cutoff:     cutoffMinutes,
		pendingCap: pendingCap,
		window:     window,
		pending:    make(map[int]predRec, pendingCap),
		out:        make([]outcome, window),
	}
}

// Record remembers a served prediction for jobID (ignored for
// non-positive IDs — hypothetical jobs without identity can never be
// joined). A newer prediction for the same job replaces the older one.
func (t *AccuracyTracker) Record(jobID int, prob, minutes float64, long bool) {
	if t == nil || jobID <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.pending[jobID]; !ok {
		t.fifo = append(t.fifo, jobID)
		for len(t.pending) >= t.pendingCap && t.head < len(t.fifo) {
			old := t.fifo[t.head]
			t.head++
			if _, live := t.pending[old]; live && old != jobID {
				delete(t.pending, old)
				t.evicted++
			}
		}
		// Compact the dead prefix once it dominates.
		if t.head > 1024 && t.head*2 > len(t.fifo) {
			t.fifo = append([]int(nil), t.fifo[t.head:]...)
			t.head = 0
		}
	}
	t.pending[jobID] = predRec{prob: prob, minutes: minutes, long: long}
}

// Resolve joins a start observation against a remembered prediction:
// the realized queue time is start−eligible (clamped at zero). It
// reports whether a prediction was found. Jobs never predicted count as
// unmatched and are otherwise ignored.
func (t *AccuracyTracker) Resolve(jobID int, eligible, start int64) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.pending[jobID]
	if !ok {
		t.unmatched++
		return false
	}
	delete(t.pending, jobID)
	actual := float64(start-eligible) / 60.0
	if actual < 0 {
		actual = 0
	}
	t.out[t.next] = outcome{
		prob:          rec.prob,
		predMinutes:   rec.minutes,
		actualMinutes: actual,
		predLong:      rec.long,
		actualLong:    actual >= t.cutoff,
	}
	t.next = (t.next + 1) % t.window
	if t.n < t.window {
		t.n++
	}
	t.joined++
	return true
}

// OnlineStats is a consistent snapshot of the tracker's rolling window.
type OnlineStats struct {
	// Joined counts predictions ever matched to a start event; Window is
	// how many of them the rolling statistics currently cover.
	Joined  uint64
	Window  int
	Pending int
	Evicted uint64
	// Unmatched counts start events for jobs that were never predicted.
	Unmatched uint64
	// HitRate is the fraction of the window where the classifier verdict
	// (long vs quick-start) matched reality. 0 when the window is empty.
	HitRate float64
	// MAEMinutes / MAPE cover the window's regression claims — outcomes
	// the model classified long, where the regressor produced minutes.
	// Both are 0 when no such outcome exists. MAPE uses a 1-minute
	// denominator floor, matching the offline metric.
	MAEMinutes     float64
	MAPE           float64
	RegressionObbs int
	// CalibrationDrift is mean predicted long-probability minus the
	// observed long fraction over the window: positive means the
	// classifier has grown overconfident about queueing, negative
	// underconfident. Near zero is calibrated.
	CalibrationDrift float64
}

// Stats computes the rolling statistics.
func (t *AccuracyTracker) Stats() OnlineStats {
	if t == nil {
		return OnlineStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := OnlineStats{
		Joined:    t.joined,
		Window:    t.n,
		Pending:   len(t.pending),
		Evicted:   t.evicted,
		Unmatched: t.unmatched,
	}
	if t.n == 0 {
		return st
	}
	var hits int
	var probSum, longFrac float64
	var absErr, pctErr float64
	for i := 0; i < t.n; i++ {
		o := t.out[i]
		if o.predLong == o.actualLong {
			hits++
		}
		probSum += o.prob
		if o.actualLong {
			longFrac++
		}
		if o.predLong {
			st.RegressionObbs++
			diff := o.predMinutes - o.actualMinutes
			if diff < 0 {
				diff = -diff
			}
			absErr += diff
			den := o.actualMinutes
			if den < 1 {
				den = 1 // same floor as the offline MAPE
			}
			pctErr += diff / den
		}
	}
	n := float64(t.n)
	st.HitRate = float64(hits) / n
	st.CalibrationDrift = probSum/n - longFrac/n
	if st.RegressionObbs > 0 {
		st.MAEMinutes = absErr / float64(st.RegressionObbs)
		st.MAPE = 100 * pctErr / float64(st.RegressionObbs)
	}
	return st
}

// Register exports the tracker on a registry under the trout_online_*
// families. Gauges are sampled at scrape time, so /metrics always shows
// the current window.
func (t *AccuracyTracker) Register(r *Registry) {
	r.CounterFunc("trout_online_joined_total",
		"Served predictions joined against a realized start event.",
		func() float64 { return float64(t.Stats().Joined) })
	r.CounterFunc("trout_online_unmatched_starts_total",
		"Start events observed for jobs that were never predicted.",
		func() float64 { return float64(t.Stats().Unmatched) })
	r.CounterFunc("trout_online_evicted_total",
		"Tracked predictions dropped before their job started (capacity).",
		func() float64 { return float64(t.Stats().Evicted) })
	r.GaugeFunc("trout_online_pending_predictions",
		"Predictions awaiting their job's start event.",
		func() float64 { return float64(t.Stats().Pending) })
	r.GaugeFunc("trout_online_window_size",
		"Joined outcomes inside the rolling statistics window.",
		func() float64 { return float64(t.Stats().Window) })
	r.GaugeFunc("trout_online_hit_rate",
		"Rolling fraction of classifier verdicts (long vs quick-start) that matched reality.",
		func() float64 { return t.Stats().HitRate })
	r.GaugeFunc("trout_online_mae_minutes",
		"Rolling mean absolute error of regression claims, in minutes.",
		func() float64 { return t.Stats().MAEMinutes })
	r.GaugeFunc("trout_online_mape",
		"Rolling mean absolute percentage error of regression claims (1-minute floor).",
		func() float64 { return t.Stats().MAPE })
	r.GaugeFunc("trout_online_calibration_drift",
		"Mean predicted long-probability minus observed long fraction over the window.",
		func() float64 { return t.Stats().CalibrationDrift })
}
