// Serving smoke (make serving-smoke, part of make ci): a short mixed
// loadgen run against an in-process service. Every response must be valid
// under the strict fault-window contract, the hard error rate must be
// exactly zero, and p99 must stay under a deliberately generous bound —
// this is a correctness tripwire for the serving hot path (snapshot
// cache, coalescer, zero-alloc JSON), not a performance gate (that is
// BENCH_serving.json + benchjson -check).
package trout_test

import (
	"context"
	"testing"
	"time"

	trout "repro"
	"repro/internal/loadgen"
)

func runServingSmoke(t *testing.T, cfg trout.ServiceConfig) *loadgen.Scorecard {
	t.Helper()
	e := sharedExperiment(t)
	bundle := resilientBundle(t)
	if cfg.FastInference {
		// resilientBundle is shared across the package's tests; revert the
		// float32 compile so later tests see the f64 reference path.
		t.Cleanup(bundle.DisableFastInference)
	}
	svc, err := trout.NewServiceWith(bundle, e.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sc, err := loadgen.Run(ctx, loadgen.Config{
		Handler:     svc.Handler(),
		Requests:    1500,
		Concurrency: 8,
		Validate:    loadgen.StrictValidate,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", sc)
	if sc.ErrorRate != 0 {
		t.Fatalf("error rate %.4f, want 0 (invalid=%d net=%d samples=%v)",
			sc.ErrorRate, sc.Invalid, sc.NetErrors, sc.InvalidSamples)
	}
	if sc.Invalid != 0 {
		t.Fatalf("%d invalid responses: %v", sc.Invalid, sc.InvalidSamples)
	}
	// Generous: in-process p99 is typically well under a millisecond; the
	// bound only catches pathological serialization (a stuck lock, an
	// accidental O(N) per request).
	if sc.P99 > 2*time.Second {
		t.Fatalf("p99 %s exceeds generous 2s bound", sc.P99)
	}
	return sc
}

func TestServingSmoke(t *testing.T) {
	runServingSmoke(t, trout.ServiceConfig{FastInference: true})
}

func TestServingSmokeCoalesce(t *testing.T) {
	runServingSmoke(t, trout.ServiceConfig{FastInference: true, Coalesce: true})
}
