package controlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func blobFor(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestRegistryPublishListActive(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.Publish([]byte("model-one"), Manifest{Samples: 10, Note: "first"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 || m1.ID != blobFor([]byte("model-one")) || m1.Status != StatusShadow {
		t.Fatalf("m1 = %+v", m1)
	}
	m2, err := r.Publish([]byte("model-two"), Manifest{Parent: m1.ID, Samples: 20})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 || m2.Parent != m1.ID {
		t.Fatalf("m2 = %+v", m2)
	}
	if err := r.SetActive(2); err != nil {
		t.Fatal(err)
	}
	if err := r.SetStatus(2, StatusActive, "promoted"); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: everything must survive the round-trip.
	r2, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ActiveVersion() != 2 {
		t.Fatalf("active %d after reopen", r2.ActiveVersion())
	}
	list := r2.List()
	if len(list) != 2 || list[0].Version != 1 || list[1].Status != StatusActive {
		t.Fatalf("list = %+v", list)
	}
	got, blob, err := r2.Bundle(1)
	if err != nil || string(blob) != "model-one" || got.Note != "first" {
		t.Fatalf("Bundle(1) = %+v, %q, %v", got, blob, err)
	}

	// Promoting another version demotes the previous active to retired.
	if err := r2.SetActive(1); err != nil {
		t.Fatal(err)
	}
	if m, _ := r2.Manifest(2); m.Status != StatusRetired {
		t.Fatalf("v2 status %q after demotion", m.Status)
	}
	if m, _ := r2.Manifest(1); m.Status != StatusActive {
		t.Fatalf("v1 status %q after SetActive", m.Status)
	}
}

// TestRegistryCrashSafety simulates a publish killed between the blob
// write and the manifest rename: the old manifest must stay intact, and
// reopening must garbage-collect the orphan blob and temp files.
func TestRegistryCrashSafety(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish([]byte("survivor"), Manifest{}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	// Crash artifacts: a fully-written orphan blob (publish died after the
	// blob rename, before the manifest rename) and a half-written manifest
	// temp file (died mid-write).
	orphan := blobFor([]byte("never-manifested"))
	if err := os.WriteFile(filepath.Join(dir, orphan+".gob"), []byte("never-manifested"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("{\"active\": 99, TRUNCATED"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatalf("reopen over crash artifacts: %v", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("manifest changed across crash recovery:\nbefore %s\nafter %s", before, after)
	}
	if len(r2.List()) != 1 || r2.List()[0].ID != blobFor([]byte("survivor")) {
		t.Fatalf("list after recovery = %+v", r2.List())
	}
	if _, err := os.Stat(filepath.Join(dir, orphan+".gob")); !os.IsNotExist(err) {
		t.Fatalf("orphan blob not garbage-collected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("manifest temp file not removed: %v", err)
	}
	// The surviving version still serves its bytes.
	if _, blob, err := r2.Bundle(1); err != nil || string(blob) != "survivor" {
		t.Fatalf("Bundle(1) after recovery: %q, %v", blob, err)
	}
}

func TestRegistryPruneRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish([]byte("v1"), Manifest{}); err != nil {
		t.Fatal(err)
	}
	// v1 becomes active before retention pressure builds: it must survive
	// every later prune (it is the rollback target) even as the oldest.
	if err := r.SetActive(1); err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"v2", "v3", "v4", "v5"} {
		if _, err := r.Publish([]byte(b), Manifest{}); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 5 {
		t.Fatalf("manifest entries = %d (lineage must survive pruning)", len(list))
	}
	var pruned, kept []int
	for _, m := range list {
		path := filepath.Join(dir, m.ID+".gob")
		if m.Status == StatusPruned {
			pruned = append(pruned, m.Version)
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("pruned v%d blob still on disk", m.Version)
			}
		} else {
			kept = append(kept, m.Version)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("kept v%d blob missing: %v", m.Version, err)
			}
		}
	}
	// Active v1 plus the two newest non-active survive.
	if len(kept) != 3 || kept[0] != 1 {
		t.Fatalf("kept %v, pruned %v", kept, pruned)
	}
	if _, _, err := r.Bundle(pruned[0]); err == nil || !strings.Contains(err.Error(), "pruned") {
		t.Fatalf("Bundle(pruned) error = %v", err)
	}
}

func TestRegistryDetectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Publish([]byte("pristine"), Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, m.ID+".gob"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Bundle(m.Version); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt blob error = %v", err)
	}
}

func TestRegistryRefusesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish([]byte("x"), Manifest{}); err != nil {
		t.Fatal(err)
	}
	// Semantic corruption: active points at a version that does not exist.
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"active": 7, "versions": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(dir, -1); err == nil {
		t.Fatal("expected reopen to refuse a manifest whose active version is unpublished")
	}
}
