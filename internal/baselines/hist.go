package baselines

import (
	"math/rand"
	"sort"
	"sync"
)

// maxBins is the histogram resolution cap: every feature quantizes to at
// most 256 bins so one bin index fits a uint8 and a node's per-feature
// histogram stays L1-resident.
const maxBins = 256

// binned is a pre-quantized feature matrix: each feature column mapped once
// to uint8 bin indices at quantile cut points, stored column-major so a
// node's histogram accumulation streams one contiguous column per feature.
// Building it costs one sort per feature; every tree (forest) or round
// (GBDT) after that trains on bins only.
type binned struct {
	rows, cols int
	bins       []uint8 // column-major: bins[f*rows+i]
	// edges[f] holds ascending upper bin edges: value v falls in the
	// smallest bin b with v <= edges[f][b], or in bin len(edges[f]) past
	// the last edge. A split "left = bins <= b" is therefore exactly the
	// raw-value split "v <= edges[f][b]", which is what lets trained trees
	// keep float thresholds (Predict and serialization are unchanged).
	// Because every edge is an exact value from the column — never a
	// computed midpoint — histogram thresholds cannot suffer the
	// adjacent-float rounding hazard the exact-mode search guards against
	// with Nextafter (see bestSplit); TestHistThresholdsAreDataValues
	// pins this.
	edges [][]float64
}

// col returns feature f's bin column.
func (b *binned) col(f int) []uint8 { return b.bins[f*b.rows : (f+1)*b.rows] }

// newBinned quantizes X into at most nb bins per feature. Cut points sit at
// quantiles of the full column, deduplicated, so skewed features (queue
// times, memory requests) get resolution where the data lives.
func newBinned(X [][]float64, nb int) *binned {
	if nb <= 1 || nb > maxBins {
		nb = maxBins
	}
	rows := len(X)
	cols := len(X[0])
	bm := &binned{
		rows:  rows,
		cols:  cols,
		bins:  make([]uint8, rows*cols),
		edges: make([][]float64, cols),
	}
	vals := make([]float64, rows)
	for f := 0; f < cols; f++ {
		for i, row := range X {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		edges := make([]float64, 0, nb-1)
		for c := 1; c < nb; c++ {
			v := vals[c*rows/nb]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		// Drop a final edge equal to the column maximum: it would create a
		// permanently empty last bin (nothing sorts strictly above it).
		if len(edges) > 0 && edges[len(edges)-1] == vals[rows-1] {
			edges = edges[:len(edges)-1]
		}
		bm.edges[f] = edges
		col := bm.col(f)
		for i, row := range X {
			col[i] = uint8(sort.SearchFloat64s(edges, row[f]))
		}
	}
	return bm
}

// nodeHist is one node's per-feature histogram: bin counts and target sums
// with a fixed maxBins stride per feature. Variance-reduction gain needs
// only counts and sums — the Σy² terms cancel between siblings — so no
// sum-of-squares column is kept.
type nodeHist struct {
	count []int32
	sum   []float64
}

// histScratch is the per-Fit workspace for histogram tree construction: the
// shared binned matrix, current targets, a free list of node histograms
// (at most ~2 per tree level live at once thanks to the parent−sibling
// subtraction), and the feature-sampling scratch. One scratch belongs to
// one goroutine; forests use one per concurrent tree.
type histScratch struct {
	bm    *binned
	y     []float64
	free  []*nodeHist
	feats []int
	// workers > 1 enables feature-parallel histogram accumulation and
	// split scanning inside a single tree (used by GBDT, whose rounds are
	// inherently sequential; forests parallelize across trees instead).
	workers int
}

func newHistScratch(bm *binned, y []float64, workers int) *histScratch {
	return &histScratch{bm: bm, y: y, workers: workers, feats: make([]int, bm.cols)}
}

// acquire returns a zeroed histogram sized for the binned matrix.
func (sc *histScratch) acquire() *nodeHist {
	if n := len(sc.free); n > 0 {
		h := sc.free[n-1]
		sc.free = sc.free[:n-1]
		for i := range h.count {
			h.count[i] = 0
		}
		for i := range h.sum {
			h.sum[i] = 0
		}
		return h
	}
	size := sc.bm.cols * maxBins
	return &nodeHist{count: make([]int32, size), sum: make([]float64, size)}
}

// release returns a histogram to the free list.
func (sc *histScratch) release(h *nodeHist) { sc.free = append(sc.free, h) }

// accumulate adds every row in idx to h across all features. All features
// are filled (not just a sampled subset) so the parent−sibling subtraction
// stays valid under per-node feature sampling. Feature-parallel when the
// scratch has workers and the node is big enough to amortize goroutines.
func (sc *histScratch) accumulate(h *nodeHist, idx []int) {
	sc.forFeatures(len(idx), func(lo, hi int) {
		for f := lo; f < hi; f++ {
			col := sc.bm.col(f)
			counts := h.count[f*maxBins : (f+1)*maxBins]
			sums := h.sum[f*maxBins : (f+1)*maxBins]
			for _, i := range idx {
				b := col[i]
				counts[b]++
				sums[b] += sc.y[i]
			}
		}
	})
}

// subtractInto computes h -= child in place, turning a parent histogram
// into the sibling of the child that was scanned — the subtraction trick
// that means each split only ever pays for its smaller side.
func (sc *histScratch) subtractInto(h, child *nodeHist) {
	for i, c := range child.count {
		h.count[i] -= c
	}
	for i, s := range child.sum {
		h.sum[i] -= s
	}
}

// histParallelRows is the node size below which feature-parallel histogram
// work is not worth the goroutine fan-out.
const histParallelRows = 2048

// forFeatures runs fn over contiguous feature ranges, in parallel when the
// scratch is configured for it and the node spans enough rows.
func (sc *histScratch) forFeatures(nodeRows int, fn func(lo, hi int)) {
	workers := sc.workers
	if workers > sc.bm.cols {
		workers = sc.bm.cols
	}
	if workers < 2 || nodeRows < histParallelRows {
		fn(0, sc.bm.cols)
		return
	}
	var wg sync.WaitGroup
	chunk := (sc.bm.cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > sc.bm.cols {
			hi = sc.bm.cols
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fitBinned grows the tree over pre-binned features. idx is owned by the
// call and may be permuted.
func (t *Tree) fitBinned(sc *histScratch, idx []int, rng *rand.Rand) *treeNode {
	root := sc.acquire()
	sc.accumulate(root, idx)
	return t.buildHist(sc, idx, 0, root, rng)
}

// buildHist recursively grows the tree from a node whose histogram h has
// already been computed. Ownership of h transfers to this call: it is
// either recycled (leaf) or reused in place as the larger child's histogram
// after subtracting the smaller child's freshly scanned one.
func (t *Tree) buildHist(sc *histScratch, idx []int, depth int, h *nodeHist, rng *rand.Rand) *treeNode {
	if depth >= t.Cfg.MaxDepth || len(idx) < 2*t.Cfg.MinLeaf {
		sc.release(h)
		return &treeNode{leaf: true, value: meanHist(sc.y, idx)}
	}
	feat, bin, ok := t.bestSplitHist(sc, h, len(idx), rng)
	if !ok {
		sc.release(h)
		return &treeNode{leaf: true, value: meanHist(sc.y, idx)}
	}
	col := sc.bm.col(feat)
	lo, hi := 0, len(idx)
	for lo < hi {
		if col[idx[lo]] <= bin {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo < t.Cfg.MinLeaf || len(idx)-lo < t.Cfg.MinLeaf {
		// Unreachable in principle (the histogram scan enforced MinLeaf
		// from exact bin counts) but kept as a safety net.
		sc.release(h)
		return &treeNode{leaf: true, value: meanHist(sc.y, idx)}
	}
	left, right := idx[:lo], idx[lo:]
	leftIsSmall := len(left) <= len(right)
	small := right
	if leftIsSmall {
		small = left
	}
	smallH := sc.acquire()
	sc.accumulate(smallH, small)
	sc.subtractInto(h, smallH) // h is now the larger child's histogram
	lh, rh := smallH, h
	if !leftIsSmall {
		lh, rh = h, smallH
	}
	n := &treeNode{feature: feat, threshold: sc.bm.edges[feat][bin]}
	n.left = t.buildHist(sc, left, depth+1, lh, rng)
	n.right = t.buildHist(sc, right, depth+1, rh, rng)
	return n
}

func meanHist(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// bestSplitHist scans each candidate feature's histogram for the bin
// boundary with the greatest variance reduction. With k bins this is O(k)
// per feature after the O(rows) accumulation already done — against exact
// mode's per-node, per-feature sort.
func (t *Tree) bestSplitHist(sc *histScratch, h *nodeHist, nRows int, rng *rand.Rand) (feat int, bin uint8, ok bool) {
	dim := sc.bm.cols
	feats := sc.feats[:dim]
	for i := range feats {
		feats[i] = i
	}
	if t.Cfg.MaxFeatures > 0 && t.Cfg.MaxFeatures < dim {
		rng.Shuffle(dim, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:t.Cfg.MaxFeatures]
	}

	var totalSum float64
	f0 := feats[0]
	for _, s := range h.sum[f0*maxBins : (f0+1)*maxBins] {
		totalSum += s
	}
	n := float64(nRows)
	base := totalSum * totalSum / n

	// Each candidate feature scans independently; results reduce by gain
	// with position-in-feats order breaking ties, so the feature-parallel
	// path is bit-identical to the serial one.
	type split struct {
		gain float64
		pos  int
		bin  uint8
	}
	bestOf := func(lo, hi int) split {
		best := split{gain: 1e-12, pos: -1}
		for p := lo; p < hi; p++ {
			f := feats[p]
			nb := len(sc.bm.edges[f]) // candidate boundaries (bins-1)
			if nb == 0 {
				continue // constant feature
			}
			counts := h.count[f*maxBins : (f+1)*maxBins]
			sums := h.sum[f*maxBins : (f+1)*maxBins]
			var leftN int32
			var leftSum float64
			for b := 0; b < nb; b++ {
				leftN += counts[b]
				leftSum += sums[b]
				rightN := int32(nRows) - leftN
				if int(leftN) < t.Cfg.MinLeaf || int(rightN) < t.Cfg.MinLeaf {
					continue
				}
				rightSum := totalSum - leftSum
				gain := leftSum*leftSum/float64(leftN) + rightSum*rightSum/float64(rightN) - base
				if gain > best.gain {
					best = split{gain: gain, pos: p, bin: uint8(b)}
				}
			}
		}
		return best
	}

	var best split
	workers := sc.workers
	if workers > len(feats) {
		workers = len(feats)
	}
	if workers >= 2 && nRows >= histParallelRows {
		parts := make([]split, workers)
		var wg sync.WaitGroup
		chunk := (len(feats) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(feats) {
				hi = len(feats)
			}
			if lo >= hi {
				parts[w] = split{gain: 1e-12, pos: -1}
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				parts[w] = bestOf(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		best = split{gain: 1e-12, pos: -1}
		for _, p := range parts {
			if p.pos < 0 {
				continue
			}
			if p.gain > best.gain || (p.gain == best.gain && best.pos >= 0 && p.pos < best.pos) {
				best = p
			}
		}
	} else {
		best = bestOf(0, len(feats))
	}
	if best.pos < 0 {
		return 0, 0, false
	}
	return feats[best.pos], best.bin, true
}
