package trout_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	trout "repro"
	"repro/internal/baselines"
	"repro/internal/features"
	"repro/internal/resilience"
)

// resilientBundle trains one bundle for all resilience tests (model
// training is the expensive part; each test then wraps it in its own
// Service, poisoning shallow copies so tests stay independent).
var (
	rbOnce sync.Once
	rbMemo *trout.Bundle
	rbErr  error
)

func resilientBundle(t *testing.T) *trout.Bundle {
	t.Helper()
	e := sharedExperiment(t)
	rbOnce.Do(func() {
		m, _, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
		if err != nil {
			rbErr = err
			return
		}
		rbMemo, rbErr = trout.NewBundle(m, e.Data, e.Cluster)
	})
	if rbErr != nil {
		t.Fatal(rbErr)
	}
	return rbMemo
}

// poisonedClassifier returns a copy of the bundle whose classifier weights
// are all NaN — the "corrupted bundle" from the acceptance criteria —
// without touching the shared original.
func poisonedClassifier(t *testing.T, b *trout.Bundle) *trout.Bundle {
	t.Helper()
	bad := b.Model.Classifier.CloneFor(rand.New(rand.NewSource(1)))
	bad.CopyWeightsFrom(b.Model.Classifier)
	for _, p := range bad.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] = math.NaN()
		}
	}
	mCopy := *b.Model
	mCopy.Classifier = bad
	bCopy := *b
	bCopy.Model = &mCopy
	return &bCopy
}

func resilientServer(t *testing.T, b *trout.Bundle, cfg trout.ServiceConfig) (*httptest.Server, *trout.Service) {
	t.Helper()
	e := sharedExperiment(t)
	svc, err := trout.NewServiceWith(b, e.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

// TestServiceFallbackOnPoisonedNN is the acceptance-criteria scenario:
// with NaN classifier weights the service must still answer 2xx via a
// lower tier, and /health must report the degradation.
func TestServiceFallbackOnPoisonedNN(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, poisonedClassifier(t, resilientBundle(t)), trout.ServiceConfig{})

	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	var p struct {
		Prob    float64 `json:"prob"`
		Tier    string  `json:"tier"`
		Message string  `json:"message"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &p); code != 200 {
		t.Fatalf("poisoned-NN predict status %d", code)
	}
	if p.Tier != resilience.TierBaseline {
		t.Fatalf("tier %q, want %q", p.Tier, resilience.TierBaseline)
	}
	if p.Prob < 0 || p.Prob > 1 || math.IsNaN(p.Prob) {
		t.Fatalf("prob %v", p.Prob)
	}
	if !strings.Contains(p.Message, "Predicted") {
		t.Fatalf("message %q", p.Message)
	}

	// POST /predict (hypothetical job) must degrade the same way.
	tmpl := e.Trace.Jobs[len(e.Trace.Jobs)/2]
	body, err := json.Marshal(map[string]any{
		"at": tmpl.Eligible,
		"job": map[string]any{
			"user": tmpl.User, "partition": tmpl.Partition,
			"req_cpus": tmpl.ReqCPUs, "req_mem_gb": tmpl.ReqMemGB,
			"req_nodes": tmpl.ReqNodes, "time_limit": tmpl.TimeLimit,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("poisoned-NN POST predict status %d", resp.StatusCode)
	}
	var pp struct {
		Tier string `json:"tier"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pp); err != nil {
		t.Fatal(err)
	}
	if pp.Tier != resilience.TierBaseline {
		t.Fatalf("POST tier %q, want %q", pp.Tier, resilience.TierBaseline)
	}

	var h struct {
		FallbackTiers map[string]uint64 `json:"fallback_tiers"`
		Degraded      bool              `json:"degraded"`
	}
	if code := getJSON(t, srv.URL+"/health", &h); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if h.FallbackTiers[resilience.TierBaseline] < 2 || !h.Degraded {
		t.Fatalf("health after fallback: %+v", h)
	}
}

// TestServiceHeuristicTier strips the baseline too: the partition-median
// tier must answer.
func TestServiceHeuristicTier(t *testing.T) {
	e := sharedExperiment(t)
	b := poisonedClassifier(t, resilientBundle(t))
	b.Fallback.Baseline = nil
	srv, svc := resilientServer(t, b, trout.ServiceConfig{})

	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	var p struct {
		Tier string `json:"tier"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &p); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if p.Tier != resilience.TierHeuristic {
		t.Fatalf("tier %q, want %q", p.Tier, resilience.TierHeuristic)
	}
	if c := svc.FallbackCounters(); c[resilience.TierHeuristic] != 1 {
		t.Fatalf("counters %v", c)
	}
}

// TestFallbackOnPoisonedInput pins the NaN-propagation bugfix end to end.
// A poisoned *input* (a NaN feature row, here via a runtime predictor that
// emits NaN) must never be silently served as a plausible finite number by
// a tree tier: before the fix the pointer walk sent NaN down the right
// child at every split (NaN <= threshold is false), so the tier-2 GBDT
// answered garbage with a straight face instead of deferring.
func TestFallbackOnPoisonedInput(t *testing.T) {
	e := sharedExperiment(t)
	b := resilientBundle(t)
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	snap, err := trout.SnapshotFromTrace(e.Trace, jobID)
	if err != nil {
		t.Fatal(err)
	}

	// The production tier-2 GBDT itself must propagate a fully poisoned row.
	clean, err := b.FeatureRow(snap)
	if err != nil {
		t.Fatal(err)
	}
	nanRow := make([]float64, len(clean))
	for i := range nanRow {
		nanRow[i] = math.NaN()
	}
	if v := b.Fallback.Baseline.Predict(nanRow); !math.IsNaN(v) {
		t.Fatalf("tier-2 GBDT served %v from an all-NaN row, want NaN", v)
	}

	// Chain level: a runtime predictor whose forest learned only NaN leaves
	// poisons the Pred-Runtime features of every row it touches. The tiered
	// chain must still answer — finite, in range — from a non-NN tier.
	nanForest := baselines.NewForest(baselines.ForestConfig{Trees: 1, Tree: baselines.TreeConfig{MaxDepth: 1}})
	if err := nanForest.Fit(
		[][]float64{{0}, {0}, {0}, {0}},
		[]float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()},
	); err != nil {
		t.Fatal(err)
	}
	bCopy := *b
	bCopy.Runtime = &features.RuntimePredictor{Forest: nanForest}

	poisoned, err := bCopy.FeatureRow(snap)
	if err != nil {
		t.Fatal(err)
	}
	hasNaN := false
	for _, v := range poisoned {
		if math.IsNaN(v) {
			hasNaN = true
			break
		}
	}
	if !hasNaN {
		t.Fatal("poisoned runtime predictor produced a NaN-free feature row; test is vacuous")
	}

	tp, err := bCopy.PredictWithFallback(snap)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Tier == resilience.TierNN {
		t.Fatalf("NN tier answered from a NaN feature row")
	}
	if math.IsNaN(tp.Prob) || math.IsNaN(tp.Minutes) || tp.Prob < 0 || tp.Prob > 1 || tp.Minutes < 0 {
		t.Fatalf("degraded answer out of range: %+v", tp.Prediction)
	}
}

// TestServiceHealthyTierIsNN pins the happy path: an intact bundle answers
// from the primary tier and reports no degradation.
func TestServiceHealthyTierIsNN(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{})
	jobID := e.Trace.Jobs[len(e.Trace.Jobs)/2].ID
	var p struct {
		Tier string `json:"tier"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/predict?job=%d", srv.URL, jobID), &p); code != 200 {
		t.Fatalf("predict status %d", code)
	}
	if p.Tier != resilience.TierNN {
		t.Fatalf("tier %q, want %q", p.Tier, resilience.TierNN)
	}
	var h struct {
		Degraded bool `json:"degraded"`
	}
	getJSON(t, srv.URL+"/health", &h)
	if h.Degraded {
		t.Fatal("healthy service reported degraded")
	}
}

// TestServicePanicRecovery wrecks the bundle so a handler dereferences a
// nil model: the middleware must convert the panic into a JSON 500.
func TestServicePanicRecovery(t *testing.T) {
	b := *resilientBundle(t)
	b.Model = nil
	srv, _ := resilientServer(t, &b, trout.ServiceConfig{})

	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var eb resilience.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("500 body not JSON: %v", err)
	}
	if eb.Error == "" || eb.Status != 500 {
		t.Fatalf("error body %+v", eb)
	}
}

// TestServiceBodyLimit posts an oversized /state body and expects a 413.
func TestServiceBodyLimit(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{MaxBodyBytes: 1 << 10})

	sub := &trout.Trace{Jobs: e.Trace.Jobs[:200]}
	var buf bytes.Buffer
	if err := sub.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 1<<10 {
		t.Fatalf("fixture body too small (%d bytes)", buf.Len())
	}
	resp, err := http.Post(srv.URL+"/state", "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d", resp.StatusCode)
	}
}

// TestServiceDeadline keeps a /state upload open past the request
// deadline and expects a JSON 504.
func TestServiceDeadline(t *testing.T) {
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{RequestTimeout: 100 * time.Millisecond})

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/state", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled upload status %d", resp.StatusCode)
	}
	var eb resilience.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("504 body not JSON: %v", err)
	}
}

// TestServiceTolerantStateUpload mixes corrupt rows into a /state body:
// within budget they are skipped and reported; past it the upload fails.
func TestServiceTolerantStateUpload(t *testing.T) {
	e := sharedExperiment(t)
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{MaxBadStateRows: 2})

	sub := &trout.Trace{Jobs: e.Trace.Jobs[:50]}
	var buf bytes.Buffer
	if err := sub.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	body := "corrupt line one\n" + buf.String() + "{\"id\": broken\n"
	resp, err := http.Post(srv.URL+"/state", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("state upload status %d", resp.StatusCode)
	}
	var sr struct {
		Jobs    int `json:"jobs"`
		Skipped int `json:"skipped_rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Jobs != 50 || sr.Skipped != 2 {
		t.Fatalf("state response %+v", sr)
	}

	// Three bad rows beats the budget of two.
	body = "junk\nmore junk\neven more junk\n" + buf.String()
	resp, err = http.Post(srv.URL+"/state", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget upload status %d", resp.StatusCode)
	}
}

// TestServiceReadiness exercises the /ready drain flip.
func TestServiceReadiness(t *testing.T) {
	srv, svc := resilientServer(t, resilientBundle(t), trout.ServiceConfig{})
	var r struct {
		Ready bool `json:"ready"`
	}
	if code := getJSON(t, srv.URL+"/ready", &r); code != 200 || !r.Ready {
		t.Fatalf("ready gave %d %+v", code, r)
	}
	svc.SetReady(false)
	resp, err := http.Get(srv.URL + "/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ready gave %d", resp.StatusCode)
	}
}

// TestServiceStrictJobIDParsing pins the Sscanf fix: trailing garbage
// after the numeric ID must 400 instead of silently truncating.
func TestServiceStrictJobIDParsing(t *testing.T) {
	srv, _ := resilientServer(t, resilientBundle(t), trout.ServiceConfig{})
	for _, path := range []string{"/predict?job=12abc", "/predict?job=", "/features?job=12abc", "/features?job=1e3"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s gave %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestBundleFallbackRoundTrip saves and reloads a bundle and checks the
// fallback predictors survive the trip and still answer identically.
func TestBundleFallbackRoundTrip(t *testing.T) {
	e := sharedExperiment(t)
	b := resilientBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trout.LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fallback.Baseline == nil {
		t.Fatal("baseline lost in round trip")
	}
	if len(back.Fallback.PartitionMedianMinutes) != len(b.Fallback.PartitionMedianMinutes) {
		t.Fatalf("medians lost: %v", back.Fallback.PartitionMedianMinutes)
	}
	if back.Fallback.GlobalMedianMinutes != b.Fallback.GlobalMedianMinutes {
		t.Fatal("global median changed")
	}
	snap, err := trout.SnapshotFromTrace(e.Trace, e.Trace.Jobs[len(e.Trace.Jobs)/2].ID)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := b.PredictWithFallback(snap)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.PredictWithFallback(snap)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Tier != resilience.TierNN || p1 != p2 {
		t.Fatalf("round-trip predictions differ: %+v vs %+v", p1, p2)
	}
}

// TestBundlePoisonedPredictDirect exercises the chain below the HTTP
// layer, including NaN-classifier → baseline consistency of the Long flag.
func TestBundlePoisonedPredictDirect(t *testing.T) {
	e := sharedExperiment(t)
	b := poisonedClassifier(t, resilientBundle(t))
	cutoff := b.Model.Cfg.CutoffMinutes
	for i := 0; i < 10; i++ {
		job := e.Trace.Jobs[(i+1)*len(e.Trace.Jobs)/12]
		snap, err := trout.SnapshotFromTrace(e.Trace, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.PredictWithFallback(snap)
		if err != nil {
			t.Fatal(err)
		}
		if p.Tier != resilience.TierBaseline {
			t.Fatalf("job %d answered by %q", job.ID, p.Tier)
		}
		if p.Long != (p.Prob >= 0.5) {
			t.Fatalf("job %d: Long=%v but Prob=%v", job.ID, p.Long, p.Prob)
		}
		if p.Long && p.Minutes < cutoff {
			t.Fatalf("job %d: long with %v minutes under cutoff", job.ID, p.Minutes)
		}
	}
}
