// Command troutd serves queue-time predictions over HTTP — the paper's §V
// plan to "integrate this into a user dashboard tool". It loads a trained
// bundle and an initial queue state, then answers Algorithm 1 queries
// through the bundle's fallback chain (NN → GBDT baseline → partition
// median), so a corrupted model degrades answers instead of availability.
//
//	troutd -bundle trout.bundle -state trace.csv -addr :8642 -wal-dir /var/lib/troutd
//
//	curl localhost:8642/health
//	curl localhost:8642/ready
//	curl localhost:8642/predict?job=4211
//	curl -X POST localhost:8642/predict -d '{"at":1700500000,"job":{"user":7,
//	     "partition":"shared","req_cpus":16,"req_mem_gb":32,"req_nodes":1,
//	     "time_limit":14400}}'
//	curl -X POST localhost:8642/predict/batch -d '{"at":1700500000,"jobs":[
//	     {"user":7,"partition":"shared","req_cpus":16},
//	     {"user":9,"partition":"gpu","req_gpus":2}]}'
//	curl -X POST localhost:8642/events --data-binary @events.jsonl
//	curl localhost:8642/metrics
//
// Live queue state is event-sourced: POST /events feeds scheduler
// lifecycle events into the indexed livestate engine, and -wal-dir makes
// that state durable — every event is WAL-logged before apply, checkpoints
// run every -checkpoint-interval, and a restart recovers checkpoint + WAL
// tail, so mid-stream crashes lose nothing that reached disk.
//
// Read-scale replication: a -wal-dir leader serves its log on
// /replication/wal, and `troutd -follow http://leader:8642` runs a
// follower that replays it into its own engine, answers /predict from the
// replica, and forwards /events and /state to the leader (307 by default,
// transparent with -proxy-writes). A follower reports 503 on /ready until
// first catch-up and whenever lag crosses -replication-lag-events; leader
// ingest sheds bursts with 429 + Retry-After past the -admit-* bounds.
//
// All daemon output is structured (log/slog): -log-format selects json
// (default, machine-shippable) or text, -log-level sets the threshold.
// Every request carries a trace ID (accepted via X-Request-ID or
// generated) that appears in the access log, the response header, and the
// per-stage span records.
//
// -pprof localhost:6060 exposes net/http/pprof (CPU, heap, goroutine
// profiles) on a separate listener, keeping the debug surface off the
// service address.
//
// SIGINT/SIGTERM mark /ready unavailable and drain in-flight requests for
// up to -shutdown-grace before exiting; a final checkpoint makes the next
// boot replay-free.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	trout "repro"
	"repro/internal/livestate"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/trace"
)

func main() {
	var (
		bundlePath = flag.String("bundle", "trout.bundle", "trained bundle")
		statePath  = flag.String("state", "", "initial queue state (csv/jsonl trace)")
		addr       = flag.String("addr", ":8642", "listen address")

		requestTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request deadline (504 past it)")
		idleTimeout    = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle timeout")
		maxBody        = flag.Int64("max-body", 8<<20, "maximum POST body bytes (413 past it)")
		maxBadRows     = flag.Int("max-bad-rows", 100, "malformed-record budget for trace ingestion (-1 = unlimited)")
		maxBatch       = flag.Int("max-batch", 256, "maximum jobs per /predict/batch request (-1 = unlimited)")
		shutdownGrace  = flag.Duration("shutdown-grace", 15*time.Second, "drain window after SIGINT/SIGTERM")
		fastInference  = flag.Bool("fast-inference", true, "serve NN predictions from the float32 kernel path (falls back to float64 if the model cannot compile)")
		coalesce       = flag.Bool("coalesce", false, "collect concurrent single /predict requests into micro-batches (bit-identical answers, adds up to -coalesce-window latency)")
		coalesceWindow = flag.Duration("coalesce-window", 200*time.Microsecond, "how long a forming /predict micro-batch waits for company before flushing")
		coalesceMax    = flag.Int("coalesce-max", 32, "flush a /predict micro-batch early at this many requests")

		walDir     = flag.String("wal-dir", "", "live-state durability directory (WAL + checkpoints); empty = memory-only")
		ckptEvery  = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic live-state checkpoint cadence (0 disables)")
		segBytes   = flag.Int64("segment-bytes", 4<<20, "seal the WAL into a sealed segment past this size; followers catch up from sealed segments (-1 = rotate only on checkpoint)")
		retainSegs = flag.Int("retain-segments", 4, "sealed WAL segments kept for follower catch-up (-1 = keep all)")

		follow      = flag.String("follow", "", "follower mode: replicate live state from this leader troutd URL (e.g. http://leader:8642); /events and /state are forwarded to it")
		proxyWrites = flag.Bool("proxy-writes", false, "follower: transparently proxy write requests to the leader instead of 307-redirecting")
		replLag     = flag.Uint64("replication-lag-events", 4096, "follower: /ready turns 503 and /health degraded past this many events of lag")

		registryDir    = flag.String("registry-dir", "", "model registry directory; enables the continual-learning control plane (drift-triggered retrain, shadow scoring, hot-swap)")
		registryRetain = flag.Int("registry-retain", 5, "non-active model blobs kept in the registry before pruning (-1 = keep all)")
		retrainDrift   = flag.Float64("retrain-drift", 0.15, "absolute online calibration drift that triggers a retrain (-1 disables the drift trigger)")
		retrainMAE     = flag.Float64("retrain-mae", 0, "online MAE (minutes) that triggers a retrain (0 disables)")
		retrainWindow  = flag.Int("retrain-min-window", 64, "joined online outcomes required before drift triggers fire")
		retrainEvery   = flag.Duration("retrain-interval", 30*time.Minute, "minimum spacing between automatic retrains (manual POST /admin/retrain bypasses it)")
		retrainCheck   = flag.Duration("retrain-check", 15*time.Second, "drift evaluation cadence")
		retrainMinJobs = flag.Int("retrain-min-jobs", 500, "completed jobs the engine must hold before a retrain can build a training set")
		retrainTune    = flag.Int("retrain-tune-trials", 0, "hyperparameter search trials per retrain (0 reuses the incumbent configuration)")
		shadowWindow   = flag.Int("shadow-window", 32, "joined outcomes each shadow tracker needs before a candidate is judged")
		shadowTimeout  = flag.Duration("shadow-timeout", time.Hour, "reject a candidate whose shadow window never fills within this")

		admitInflight = flag.Int("admit-inflight", 16, "concurrent ingest requests admitted on /events and /state (-1 disables admission control)")
		admitQueue    = flag.Int("admit-queue", 64, "ingest requests allowed to queue for an admission slot; beyond it requests shed with 429")
		admitTimeout  = flag.Duration("admit-queue-timeout", time.Second, "queued ingest requests shed with 429 after waiting this long")

		tracing       = flag.Bool("tracing", true, "hierarchical request tracing (span trees, flight recorder, tail-sampled export)")
		traceFile     = flag.String("trace-file", "", "tail-sampled trace export JSONL file; empty keeps tracing in-memory only (/debug/requests still works)")
		traceSample   = flag.Float64("trace-sample", 0.01, "head-sampling fraction of fast successful traces exported (negative disables; slow/errored traces always export)")
		traceSlow     = flag.Duration("trace-slow", 250*time.Millisecond, "tail-keep any request trace at least this slow")
		traceMaxBytes = flag.Int64("trace-max-bytes", 64<<20, "rotate the trace export file past this many bytes")
		traceMaxFiles = flag.Int("trace-max-files", 4, "rotated trace export files kept, current included")
		flightSlots   = flag.Int("flight-slots", 32, "flight-recorder depth: N slowest and N most recent errored requests on /debug/requests")

		sloAvail     = flag.Float64("slo-availability", 0.999, "availability SLO target (fraction of non-5xx responses); negative disables SLO tracking")
		sloLatFrac   = flag.Float64("slo-latency-target", 0.99, "latency SLO target (fraction of requests under -slo-latency-threshold)")
		sloLatThresh = flag.Duration("slo-latency-threshold", 500*time.Millisecond, "latency SLO objective bound")

		logLevel  = flag.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat = flag.String("log-format", "json", "log encoding: json|text")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "troutd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.Any("error", err))
		os.Exit(1)
	}

	b, err := trout.LoadBundleFile(*bundlePath)
	if err != nil {
		fatal("load bundle", err)
	}
	tr, err := loadState(logger, *statePath, *maxBadRows)
	if err != nil {
		fatal("load state", err)
	}
	// One tracer serves the whole process: HTTP requests, WAL
	// syncs/checkpoints, retrain cycles, and follower resnapshots all land
	// in the same export file and flight recorder.
	tcfg := obs.TracerConfig{
		Disabled:      !*tracing,
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
		Path:          *traceFile,
		MaxFileBytes:  *traceMaxBytes,
		MaxFiles:      *traceMaxFiles,
		FlightSlots:   *flightSlots,
	}
	tracer, err := obs.NewTracer(tcfg)
	if err != nil {
		fatal("open trace exporter", err)
	}
	scfg := obs.SLOConfig{
		Disabled:           *sloAvail < 0,
		AvailabilityTarget: *sloAvail,
		LatencyTarget:      *sloLatFrac,
		LatencyThreshold:   *sloLatThresh,
	}
	store, err := livestate.OpenStore(livestate.StoreOptions{
		Dir: *walDir, Logf: obs.Logf(logger),
		SegmentBytes: *segBytes, RetainSegments: *retainSegs,
		Tracer: tracer,
	})
	if err != nil {
		fatal("open live-state store", err)
	}
	if rep := store.Recovered(); *walDir != "" {
		logger.Info("live state recovered",
			slog.String("dir", *walDir),
			slog.Uint64("checkpoint_lsn", rep.CheckpointLSN),
			slog.Uint64("replayed", rep.Replayed),
			slog.Uint64("rejected_on_replay", rep.ApplyErrors),
			slog.Int64("torn_bytes_dropped", rep.TruncatedBytes),
		)
	}
	svc, err := trout.NewServiceWith(b, tr, trout.ServiceConfig{
		RequestTimeout:  *requestTimeout,
		MaxBodyBytes:    *maxBody,
		MaxBadStateRows: *maxBadRows,
		MaxBatchJobs:    *maxBatch,
		Live:            store,
		Logger:          logger,
		LeaderURL:       *follow,
		ProxyWrites:     *proxyWrites,
		Replication:     replication.FollowerConfig{LagEvents: *replLag},
		Admission: resilience.AdmissionConfig{
			MaxInFlight: *admitInflight, MaxQueue: *admitQueue, QueueTimeout: *admitTimeout,
		},
		FastInference:  *fastInference,
		Coalesce:       *coalesce,
		CoalesceWindow: *coalesceWindow,
		CoalesceMax:    *coalesceMax,
		Tracer:         tracer,
		Tracing:        tcfg,
		SLO:            scfg,
	})
	if err != nil {
		fatal("build service", err)
	}

	// Control plane: only leaders retrain (a follower's replica is the
	// leader's state; two nodes retraining the same stream would race
	// promotions), but the flag is honored wherever it is set.
	var cp *trout.ControlPlane
	if *registryDir != "" {
		if *follow != "" {
			logger.Warn("control plane on a follower: retrains run against the replicated state")
		}
		cp, err = svc.AttachControlPlane(trout.ControlPlaneConfig{
			RegistryDir:    *registryDir,
			RegistryRetain: *registryRetain,
			DriftThreshold: *retrainDrift,
			MAEThreshold:   *retrainMAE,
			MinWindow:      *retrainWindow,
			MinInterval:    *retrainEvery,
			CheckInterval:  *retrainCheck,
			ShadowWindow:   *shadowWindow,
			ShadowTimeout:  *shadowTimeout,
			MinTrainJobs:   *retrainMinJobs,
			TuneTrials:     *retrainTune,
			Logger:         logger,
		})
		if err != nil {
			fatal("attach control plane", err)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *requestTimeout + 5*time.Second,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Follower mode: pull the leader's WAL until shutdown. /ready stays
	// 503 until the replica first catches up.
	svc.StartReplication(ctx)
	if cp != nil {
		go func() { _ = cp.Run(ctx) }()
		logger.Info("control plane running",
			slog.String("registry", *registryDir),
			slog.Float64("drift_threshold", *retrainDrift),
			slog.Int("shadow_window", *shadowWindow))
	}
	if *follow != "" {
		logger.Info("following leader", slog.String("leader", *follow),
			slog.Bool("proxy_writes", *proxyWrites), slog.Uint64("lag_threshold", *replLag))
	}
	if tracer.Enabled() && *traceFile != "" {
		logger.Info("trace export enabled", slog.String("file", *traceFile),
			slog.Float64("sample", *traceSample), slog.Duration("slow_threshold", *traceSlow))
	}

	// Profiling stays off the service listener: the pprof handlers are
	// registered only on their own mux bound to -pprof, so the production
	// address never exposes them and profiling traffic cannot consume
	// service connections. Shutdown is best-effort alongside the main drain.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// Contention profiles are free unless sampled, and the serving hot
		// path is exactly where lock contention hides — so when profiling
		// is on at all, sample mutex holds and blocking events too
		// (/debug/pprof/mutex, /debug/pprof/block).
		runtime.SetMutexProfileFraction(100) // ~1% of contended mutex events
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof serve", slog.Any("error", err))
			}
		}()
	}

	// Periodic checkpoints bound WAL replay time after a crash; each one
	// compacts the log down to zero.
	if *walDir != "" && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.Checkpoint(); err != nil {
						logger.Error("checkpoint", slog.Any("error", err))
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving",
		slog.String("addr", *addr),
		slog.Float64("cutoff_minutes", b.Model.Cfg.CutoffMinutes),
		slog.Int("queue_jobs", queueLen(tr)),
		slog.Int("live_tracked", store.Engine().Stats().Tracked),
	)

	select {
	case err := <-errc:
		// The listener failed outright (e.g. port in use).
		fatal("listen", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		svc.SetReady(false)
		logger.Info("signal received; draining in-flight requests",
			slog.Duration("grace", *shutdownGrace))
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", slog.Any("error", err))
		}
		if pprofSrv != nil {
			if err := pprofSrv.Shutdown(sctx); err != nil {
				logger.Error("pprof shutdown", slog.Any("error", err))
			}
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", slog.Any("error", err))
		}
		// A final checkpoint makes the next boot replay-free.
		if err := store.Checkpoint(); err != nil {
			logger.Error("final checkpoint", slog.Any("error", err))
		}
		if err := store.Close(); err != nil {
			logger.Error("wal close", slog.Any("error", err))
		}
		// Drain the trace export queue so the last kept traces hit disk.
		if err := tracer.Close(); err != nil {
			logger.Error("trace export close", slog.Any("error", err))
		}
		logger.Info("drained; exiting")
	}
}

// loadState reads the initial queue state with the tolerant codecs,
// logging (rather than dying on) corrupt rows within the budget.
func loadState(logger *slog.Logger, path string, maxBadRows int) (*trout.Trace, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tr *trout.Trace
	var rep *trace.ReadReport
	if strings.HasSuffix(path, ".jsonl") {
		tr, rep, err = trace.ReadJSONLTolerant(f, maxBadRows)
	} else {
		tr, rep, err = trace.ReadCSVTolerant(f, maxBadRows)
	}
	if err != nil {
		return nil, err
	}
	if rep.Skipped > 0 {
		logger.Warn("state: skipped malformed rows",
			slog.String("path", path),
			slog.Int("skipped", rep.Skipped),
			slog.Int("first_bad_line", rep.Errors[0].Line),
			slog.String("first_error", rep.Errors[0].Err),
		)
	}
	return tr, nil
}

func queueLen(tr *trout.Trace) int {
	if tr == nil {
		return 0
	}
	return len(tr.Jobs)
}
