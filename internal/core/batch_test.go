package core

import (
	"testing"
)

// TestPredictBatchMatchesSequential: the mini-batch path must be
// bit-identical to row-by-row Predict — same kernels, same accumulation
// order, same clamping — for every batch size, including ones that span
// multiple parallel chunks.
func TestPredictBatchMatchesSequential(t *testing.T) {
	m, ds, fold := sharedModel(t)
	for _, n := range []int{0, 1, 7, 64, len(fold.Test)} {
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			rows[i] = ds.X[fold.Test[i%len(fold.Test)]]
		}
		got := m.PredictBatch(rows)
		if len(got) != n {
			t.Fatalf("n=%d: got %d predictions", n, len(got))
		}
		for i, r := range rows {
			want := m.Predict(r)
			if got[i] != want {
				t.Fatalf("n=%d row %d: batch %+v != sequential %+v", n, i, got[i], want)
			}
		}
	}
}

// TestPredictBatchAllLongAllShort exercises the degenerate splits: a batch
// where the regressor sees every row, and one where it sees none.
func TestPredictBatchAllLongAllShort(t *testing.T) {
	m, ds, fold := sharedModel(t)
	var long, short [][]float64
	for _, i := range fold.Test {
		if p := m.Predict(ds.X[i]); p.Long {
			long = append(long, ds.X[i])
		} else {
			short = append(short, ds.X[i])
		}
		if len(long) >= 5 && len(short) >= 5 {
			break
		}
	}
	for _, rows := range [][][]float64{long, short} {
		if len(rows) == 0 {
			continue
		}
		got := m.PredictBatch(rows)
		for i, r := range rows {
			if want := m.Predict(r); got[i] != want {
				t.Fatalf("row %d: %+v != %+v", i, got[i], want)
			}
		}
	}
}
