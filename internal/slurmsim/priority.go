package slurmsim

import "math"

// PriorityWeights are the Slurm multifactor plugin weights. Priority is
// computed as the weighted sum of factors in [0, 1]; jobs are then evaluated
// in the order the Slurm documentation gives (partition tier first, then
// priority, then submit time, then job ID).
type PriorityWeights struct {
	Age       float64 // grows toward 1 as a job waits
	Fairshare float64 // 2^(-usage/share)
	JobSize   float64 // favors larger jobs, as Slurm defaults do
	Partition float64 // partition tier, normalized
	QOS       float64 // QOS tier, normalized
	// MaxAge is the queue age (seconds) at which the age factor saturates.
	MaxAge int64
}

// DefaultPriorityWeights resemble a fair-share-dominant site configuration
// like Anvil's.
func DefaultPriorityWeights() PriorityWeights {
	return PriorityWeights{
		Age:       1000,
		Fairshare: 10000,
		JobSize:   500,
		Partition: 2000,
		QOS:       1000,
		MaxAge:    7 * 24 * 3600,
	}
}

// fairshare tracks decayed per-user usage and converts it to a priority
// factor. Usage decays exponentially with a configurable half-life, the way
// Slurm's PriorityDecayHalfLife works.
type fairshare struct {
	halfLife float64 // seconds
	usage    map[int]float64
	lastTick map[int]int64
	total    float64
	totalAt  int64
	shares   map[int]float64 // share fraction per user; default equal
}

func newFairshare(halfLife int64) *fairshare {
	return &fairshare{
		halfLife: float64(halfLife),
		usage:    map[int]float64{},
		lastTick: map[int]int64{},
		shares:   map[int]float64{},
	}
}

// decayTo applies lazy exponential decay to a stored usage value.
func (f *fairshare) decayTo(v float64, from, to int64) float64 {
	if to <= from || v == 0 || f.halfLife <= 0 {
		return v
	}
	return v * math.Exp2(-float64(to-from)/f.halfLife)
}

// Charge adds cpuSeconds of usage for user at time now.
func (f *fairshare) Charge(user int, cpuSeconds float64, now int64) {
	f.usage[user] = f.decayTo(f.usage[user], f.lastTick[user], now) + cpuSeconds
	f.lastTick[user] = now
	f.total = f.decayTo(f.total, f.totalAt, now) + cpuSeconds
	f.totalAt = now
}

// Factor returns the fair-share priority factor in (0, 1] for user at now.
// With no recorded usage anywhere the factor is 1.
func (f *fairshare) Factor(user int, now int64, nUsers int) float64 {
	total := f.decayTo(f.total, f.totalAt, now)
	if total <= 0 {
		return 1
	}
	u := f.decayTo(f.usage[user], f.lastTick[user], now) / total
	share := f.shares[user]
	if share == 0 {
		if nUsers < 1 {
			nUsers = 1
		}
		share = 1 / float64(nUsers)
	}
	return math.Exp2(-u / share)
}

// maxQOS is the number of QOS tiers (0 = lowest).
const maxQOS = 3

// jobPriority computes the live multifactor priority of a pending job.
func (s *Simulator) jobPriority(j *simJob, now int64) float64 {
	w := s.cfg.Weights
	age := float64(now - j.eligible)
	if age < 0 {
		age = 0
	}
	ageFactor := 1.0
	if w.MaxAge > 0 {
		ageFactor = math.Min(1, age/float64(w.MaxAge))
	}
	fsFactor := s.fs.Factor(j.spec.User, now, s.nUsers)
	sizeFactor := float64(j.spec.ReqCPUs) / float64(s.totalCPUs)
	if sizeFactor > 1 {
		sizeFactor = 1
	}
	tierFactor := float64(j.part.Tier) / float64(s.maxTier)
	qosFactor := float64(j.spec.QOS) / float64(maxQOS)
	return w.Age*ageFactor + w.Fairshare*fsFactor + w.JobSize*sizeFactor +
		w.Partition*tierFactor + w.QOS*qosFactor
}
