package livestate

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// streamEvents drives a realistic little workload through a store.
func streamEvents(t *testing.T, s *Store, firstID, n int) {
	t.Helper()
	for i := firstID; i < firstID+n; i++ {
		j := mkJob(i, i%3, "shared", int64(1000+10*i), 0, 0, 0)
		if err := s.Apply(submitEvent(j)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err := s.Apply(Event{Type: EventEligible, Time: int64(1001 + 10*i), JobID: i}); err != nil {
			t.Fatalf("eligible %d: %v", i, err)
		}
		if i%2 == 0 {
			if err := s.Apply(Event{Type: EventStart, Time: int64(1005 + 10*i), JobID: i}); err != nil {
				t.Fatalf("start %d: %v", i, err)
			}
		}
		if i%4 == 0 {
			if err := s.Apply(Event{Type: EventEnd, Time: int64(1009 + 10*i), JobID: i}); err != nil {
				t.Fatalf("end %d: %v", i, err)
			}
		}
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 10)
	if st := s.Engine().Stats(); st.Tracked == 0 {
		t.Fatal("memory store tracks nothing")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("memory checkpoint should be a no-op: %v", err)
	}
	m := s.Metrics()
	if m.Persistent || m.WALBytes != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRecoverFromWALOnly simulates a crash before any checkpoint: the
// reopened store must rebuild identical state purely from the WAL.
func TestStoreRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 25)
	// No Close: simulate a crash (the WAL is synced every append).
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.Recovered()
	if rep.CheckpointLSN != 0 || rep.Replayed == 0 || rep.ApplyErrors != 0 {
		t.Fatalf("recover report %+v", rep)
	}
	assertEnginesEqual(t, s.Engine(), s2.Engine())
}

// TestStoreSyncMakesBatchDurable is the group-commit contract: with the
// default SyncEvery (64), a short batch sits in the bufio buffer and a
// kill -9 would lose it — but after Sync (what /events calls before
// acknowledging) a crash-reopen must recover every applied event.
func TestStoreSyncMakesBatchDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 5) // ~13 records, well under SyncEvery=64
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("WAL still empty on disk after Sync")
	}
	// No Close: simulate kill -9 after the batch was acknowledged.
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep := s2.Recovered(); rep.Replayed != s.Metrics().LSN {
		t.Fatalf("replayed %d of %d acknowledged records", rep.Replayed, s.Metrics().LSN)
	}
	assertEnginesEqual(t, s.Engine(), s2.Engine())
}

// TestStoreRecoverCheckpointPlusTail is the acceptance scenario: restart
// mid-stream with a checkpoint taken partway recovers identical state from
// checkpoint + WAL tail.
func TestStoreRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 30)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 31, 20) // tail beyond the checkpoint
	m := s.Metrics()
	if m.CheckpointLSN == 0 || m.LSN <= m.CheckpointLSN {
		t.Fatalf("metrics %+v", m)
	}

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.Recovered()
	if rep.CheckpointLSN != m.CheckpointLSN {
		t.Fatalf("recovered from LSN %d, want %d", rep.CheckpointLSN, m.CheckpointLSN)
	}
	if rep.Replayed == 0 {
		t.Fatal("no WAL tail replayed")
	}
	assertEnginesEqual(t, s.Engine(), s2.Engine())

	// The reopened store keeps accepting events with monotonic LSNs.
	if err := s2.Apply(Event{Type: EventEligible, Time: 999999, JobID: 49}); err == nil {
		// job 49 is pending-eligible already; duplicate is fine to reject
		t.Log("eligible re-applied")
	}
	if got := s2.Metrics().LSN; got != m.LSN+1 {
		t.Fatalf("LSN after reopen %d, want %d", got, m.LSN+1)
	}
}

// TestStoreTornTailTruncated appends garbage to the WAL and checks the
// reopened store drops it and keeps every intact record.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 12)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 'g', 'a', 'r'}); err != nil { // truncated record
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.Recovered()
	if rep.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", rep)
	}
	assertEnginesEqual(t, s.Engine(), s2.Engine())
}

// TestStoreSeedCheckpointSurvivesRestart checks that a bulk load persists
// without per-row WAL records.
func TestStoreSeedCheckpointSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1_000_000)
	tr := &trace.Trace{Jobs: []trace.Job{
		mkJob(1, 7, "shared", base, base+10, 0, 0),
		mkJob(2, 7, "shared", base, base+10, base+20, 0),
	}}
	rep, err := s.Seed(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Active != 2 {
		t.Fatalf("seed %+v", rep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertEnginesEqual(t, s.Engine(), s2.Engine())
}

// TestStoreReplayIdempotent reopens the same directory twice without new
// writes; both recoveries must agree.
func TestStoreReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 1, 15)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	streamEvents(t, s, 16, 5)
	s.Close()
	a, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	assertEnginesEqual(t, a.Engine(), b.Engine())
}
