package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the Prometheus text exposition content type the
// /metrics endpoint must advertise.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefaultLatencyBuckets span sub-millisecond cache hits to the 10 s
// request deadline — the request-level latency histogram bounds.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultStageBuckets resolve the predict pipeline's per-stage timings,
// which live one to two orders of magnitude below whole requests.
var DefaultStageBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1,
}

// metricKind is the TYPE line vocabulary.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Emit is the callback signature scrape-time collector functions use to
// add one labelled sample to their family.
type Emit func(value float64, labelValues ...string)

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. Registration is done once at construction
// time; the hot paths (Inc/Set/Observe on the returned handles) are
// lock-cheap — an atomic add, or a short read-locked series lookup for
// dynamic labels. Rendering is deterministic: families sort by name and
// series by label values, so consecutive scrapes diff cleanly.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one metric name: HELP/TYPE metadata plus either a set of
// materialized series (hot-path metrics) or a scrape-time collector fn.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
	fn     func(emit Emit) // nil for materialized families
}

// series is one labelled time series. Counters keep an integer count in
// bits; gauges keep math.Float64bits. Histograms use the bucket arrays.
type series struct {
	vals []string

	bits atomic.Uint64

	counts  []atomicU64 // per-bucket (non-cumulative), +1 overflow slot
	sumBits atomic.Uint64
	n       atomic.Uint64
}

// atomicU64 pads nothing — bucket arrays are small and scraped rarely.
type atomicU64 struct{ v atomic.Uint64 }

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(vals)))
	}
	k := strings.Join(vals, "\xff")
	f.mu.RLock()
	s := f.series[k]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[k]; s != nil {
		return s
	}
	s = &series{vals: append([]string(nil), vals...)}
	if f.kind == kindHistogram {
		s.counts = make([]atomicU64, len(f.buckets)+1)
	}
	f.series[k] = s
	return s
}

// register adds a family, panicking on a duplicate name — metric names
// are a global namespace and silent merging would corrupt exposition.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[f.name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", f.name))
	}
	if f.series == nil {
		f.series = map[string]*series{}
	}
	r.fams[f.name] = f
	return f
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.bits.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.bits.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.bits.Load() }

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: kindCounter})
	return &Counter{s: f.get(nil)}
}

// CounterVec is a counter family with one or more label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(&family{
		name: name, help: help, kind: kindCounter, labels: labels,
	})}
}

// With returns the counter for one label-value combination (created on
// first use). Callers on hot paths should cache the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// Inc is shorthand for With(labelValues...).Inc().
func (v *CounterVec) Inc(labelValues ...string) { v.With(labelValues...).Inc() }

// Snapshot returns the current counts keyed by the first label value —
// the map shape the service's /health endpoint reports. Families with
// more than one label join the values with ",".
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	out := make(map[string]uint64, len(v.f.series))
	for _, s := range v.f.series {
		out[strings.Join(s.vals, ",")] = s.bits.Load()
	}
	return out
}

// Gauge is a settable instantaneous value.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: kindGauge})
	return &Gauge{s: f.get(nil)}
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(&family{
		name: name, help: help, kind: kindGauge, labels: labels,
	})}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// Set is shorthand for With(labelValues...).Set(val).
func (v *GaugeVec) Set(val float64, labelValues ...string) { v.With(labelValues...).Set(val) }

// GaugeFunc registers a gauge whose value is sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge,
		fn: func(emit Emit) { emit(fn()) }})
}

// CounterFunc registers a counter sampled at scrape time — for counts
// owned by another subsystem (e.g. the live-state engine's event
// totals) that would be wasteful to mirror on every increment.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounter,
		fn: func(emit Emit) { emit(fn()) }})
}

// GaugeVecFunc registers a labelled gauge family sampled at scrape time;
// fn emits one sample per label combination.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func(emit Emit)) {
	r.register(&family{name: name, help: help, kind: kindGauge, labels: labels, fn: fn})
}

// CounterVecFunc is GaugeVecFunc for counters.
func (r *Registry) CounterVecFunc(name, help string, labels []string, fn func(emit Emit)) {
	r.register(&family{name: name, help: help, kind: kindCounter, labels: labels, fn: fn})
}

// InfoFunc registers an info-style gauge: a constant-1 series whose labels
// carry identity strings (model fingerprints, version numbers) rather than
// magnitudes — the Prometheus idiom for exporting build/model metadata. fn
// supplies the current label values at scrape time; returning a slice of
// the wrong length drops the sample for that scrape instead of panicking.
func (r *Registry) InfoFunc(name, help string, labels []string, fn func() []string) {
	r.register(&family{name: name, help: help, kind: kindGauge, labels: labels,
		fn: func(emit Emit) {
			vals := fn()
			if len(vals) == len(labels) {
				emit(1, vals...)
			}
		}})
}

// Histogram is a fixed-bucket distribution with Prometheus cumulative
// ("le") exposition. Observe is lock-free: a linear bucket scan plus
// atomic adds (bucket counts are stored non-cumulatively and cumulated
// at render time).
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { observe(h.s, h.buckets, v) }

func observe(s *series, buckets []float64, v float64) {
	i := sort.SearchFloat64s(buckets, v)
	// SearchFloat64s finds the first bucket >= v, which is exactly the
	// smallest "le" bound the sample belongs to; v above every bound
	// lands in the overflow slot.
	s.counts[i].v.Add(1)
	s.n.Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram registers an unlabelled histogram over ascending bucket
// upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	f := r.register(&family{name: name, help: help, kind: kindHistogram,
		buckets: append([]float64(nil), buckets...)})
	return &Histogram{s: f.get(nil), buckets: f.buckets}
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(&family{
		name: name, help: help, kind: kindHistogram, labels: labels,
		buckets: append([]float64(nil), buckets...),
	})}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{s: v.f.get(labelValues), buckets: v.f.buckets}
}

// Observe is shorthand for With(labelValues...).Observe(val).
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	v.With(labelValues...).Observe(val)
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
}

// --- Rendering -----------------------------------------------------------

// WriteText renders every family in Prometheus text exposition format
// 0.0.4: families sorted by name, series sorted by label values, HELP
// then TYPE then samples. The output is byte-deterministic for a fixed
// metric state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// row is one rendered sample before sorting.
type row struct {
	vals []string
	// histogram state (counter/gauge use only value)
	value   float64
	count   uint64
	sum     float64
	buckets []uint64 // cumulative, same length as family buckets
	isInt   bool
}

func (f *family) render(b *strings.Builder) {
	rows := f.collectRows()
	sort.Slice(rows, func(i, j int) bool {
		a, c := rows[i].vals, rows[j].vals
		for k := range a {
			if a[k] != c[k] {
				return a[k] < c[k]
			}
		}
		return false
	})

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, rw := range rows {
		if f.kind == kindHistogram {
			f.renderHistogram(b, rw)
			continue
		}
		b.WriteString(f.name)
		writeLabels(b, f.labels, rw.vals, "", "")
		b.WriteByte(' ')
		if rw.isInt {
			b.WriteString(strconv.FormatUint(uint64(rw.value), 10))
		} else {
			b.WriteString(formatValue(rw.value))
		}
		b.WriteByte('\n')
	}
}

// collectRows snapshots the family's samples: materialized series read
// their atomics; collector families run their fn.
func (f *family) collectRows() []row {
	var rows []row
	if f.fn != nil {
		f.fn(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("obs: collector for %s emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			rows = append(rows, row{
				vals:  append([]string(nil), labelValues...),
				value: value,
				isInt: f.kind == kindCounter && value == math.Trunc(value) && !math.IsInf(value, 0),
			})
		})
		return rows
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, s := range f.series {
		switch f.kind {
		case kindHistogram:
			rw := row{vals: s.vals, count: s.n.Load(),
				sum:     math.Float64frombits(s.sumBits.Load()),
				buckets: make([]uint64, len(f.buckets))}
			var cum uint64
			for i := range f.buckets {
				cum += s.counts[i].v.Load()
				rw.buckets[i] = cum
			}
			rows = append(rows, rw)
		case kindCounter:
			rows = append(rows, row{vals: s.vals, value: float64(s.bits.Load()), isInt: true})
		default:
			rows = append(rows, row{vals: s.vals, value: math.Float64frombits(s.bits.Load())})
		}
	}
	return rows
}

func (f *family) renderHistogram(b *strings.Builder, rw row) {
	for i, ub := range f.buckets {
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, rw.vals, "le", formatValue(ub))
		fmt.Fprintf(b, " %d\n", rw.buckets[i])
	}
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labels, rw.vals, "le", "+Inf")
	fmt.Fprintf(b, " %d\n", rw.count)
	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, rw.vals, "", "")
	fmt.Fprintf(b, " %s\n", formatValue(rw.sum))
	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, rw.vals, "", "")
	fmt.Fprintf(b, " %d\n", rw.count)
}

// writeLabels renders {k1="v1",...} including an optional trailing extra
// label (the histogram "le"); nothing is written when there are no
// labels at all.
func writeLabels(b *strings.Builder, keys, vals []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation ("3", "0.25", "1e+06").
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
