package trout

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/trace"
)

// Service is the paper's §V "user dashboard tool": an HTTP front-end over a
// trained bundle plus a live queue state. Handlers:
//
//	GET  /health          — liveness + model metadata
//	GET  /predict?job=ID  — Algorithm 1 for a known job in the queue state
//	POST /predict         — Algorithm 1 for a hypothetical job (JSON spec)
//	POST /state           — replace the queue state (JSONL-decoded trace)
//	GET  /features?job=ID — the engineered 33-feature vector (debugging)
//
// State updates and predictions are safe for concurrent use.
type Service struct {
	bundle *Bundle

	mu    sync.RWMutex
	state *Trace
}

// NewService wraps a bundle with an initial queue state (may be empty).
func NewService(b *Bundle, initial *Trace) (*Service, error) {
	if b == nil {
		return nil, fmt.Errorf("trout: service needs a bundle")
	}
	if initial == nil {
		initial = &Trace{}
	}
	return &Service{bundle: b, state: initial}, nil
}

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/features", s.handleFeatures)
	return mux
}

// healthResponse is the /health payload.
type healthResponse struct {
	Status        string  `json:"status"`
	CutoffMinutes float64 `json:"cutoff_minutes"`
	NumFeatures   int     `json:"num_features"`
	QueueJobs     int     `json:"queue_jobs"`
	Partitions    int     `json:"partitions"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	n := len(s.state.Jobs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		CutoffMinutes: s.bundle.Model.Cfg.CutoffMinutes,
		NumFeatures:   s.bundle.Model.NumInputs,
		QueueJobs:     n,
		Partitions:    len(s.bundle.Cluster.Partitions),
	})
}

// predictRequest is the POST /predict body: a hypothetical job plus the
// prediction instant.
type predictRequest struct {
	At  int64     `json:"at"`
	Job trace.Job `json:"job"`
}

// predictResponse is the /predict payload.
type predictResponse struct {
	Long    bool    `json:"long"`
	Prob    float64 `json:"prob"`
	Minutes float64 `json:"minutes,omitempty"`
	Message string  `json:"message"`
	Pending int     `json:"pending_in_snapshot"`
	Running int     `json:"running_in_snapshot"`
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	var snap *Snapshot
	switch r.Method {
	case http.MethodGet:
		var jobID int
		if _, err := fmt.Sscanf(r.URL.Query().Get("job"), "%d", &jobID); err != nil {
			http.Error(w, "predict: need ?job=<id>", http.StatusBadRequest)
			return
		}
		s.mu.RLock()
		sn, err := SnapshotFromTrace(s.state, jobID)
		s.mu.RUnlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		snap = sn
	case http.MethodPost:
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("predict: bad body: %v", err), http.StatusBadRequest)
			return
		}
		if req.At == 0 {
			http.Error(w, "predict: need at (unix seconds)", http.StatusBadRequest)
			return
		}
		if req.Job.Eligible == 0 {
			req.Job.Eligible = req.At
		}
		if req.Job.Submit == 0 {
			req.Job.Submit = req.At
		}
		s.mu.RLock()
		snap = snapshotAtInstant(s.state, req.At, req.Job)
		s.mu.RUnlock()
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	pred, err := s.bundle.PredictSnapshot(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Long: pred.Long, Prob: pred.Prob, Minutes: pred.Minutes,
		Message: pred.Message(s.bundle.Model.Cfg.CutoffMinutes),
		Pending: len(snap.Pending), Running: len(snap.Running),
	})
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tr, err := trace.ReadJSONL(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("state: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.state = tr
	n := len(tr.Jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"jobs": n})
}

func (s *Service) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var jobID int
	if _, err := fmt.Sscanf(r.URL.Query().Get("job"), "%d", &jobID); err != nil {
		http.Error(w, "features: need ?job=<id>", http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	snap, err := SnapshotFromTrace(s.state, jobID)
	s.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	row, err := s.bundle.FeatureRow(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := make(map[string]float64, len(row))
	for i, v := range row {
		out[FeatureNames[i]] = v
	}
	writeJSON(w, http.StatusOK, out)
}

// snapshotAtInstant reconstructs queue state at an arbitrary time with the
// hypothetical job injected as target.
func snapshotAtInstant(tr *Trace, at int64, target trace.Job) *Snapshot {
	snap := &Snapshot{Now: at, Target: target}
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		switch {
		case j.Eligible <= at && at < j.Start:
			snap.Pending = append(snap.Pending, j)
		case j.Start <= at && at < j.End:
			snap.Running = append(snap.Running, j)
		}
		if j.Submit >= at-86400 && j.Submit < at {
			snap.History = append(snap.History, j)
		}
	}
	return snap
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
