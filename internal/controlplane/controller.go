package controlplane

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
)

// Controller states (the DESIGN §11 lifecycle: Idle→Retraining→Shadow→
// Promoted/Rejected, with a post-promotion probation that can roll back).
const (
	StateIdle       = "idle"
	StateRetraining = "retraining"
	StateShadow     = "shadow"
)

// Verdicts recorded after each retrain cycle.
const (
	VerdictPromoted   = "promoted"
	VerdictRejected   = "rejected"
	VerdictFailed     = "failed"
	VerdictRolledBack = "rolled_back"
)

// Candidate is one retrain's output: the serialized bundle (what the
// registry stores and the promote path decodes), a live predictor for
// shadow scoring, and the provenance the manifest records.
type Candidate struct {
	Blob        []byte
	Predictor   Predictor
	Eval        Eval
	Hyperparams map[string]string
	Samples     int
	// Watermark is the training-data horizon (live-state engine clock at
	// extraction time).
	Watermark int64
}

// Options wires a Controller to its environment. Registry, Train, Drift,
// and Promote are required; everything else has production defaults.
type Options struct {
	// Registry stores published candidates.
	Registry *Registry
	// Train builds a candidate from current data. It must honor ctx —
	// shutdown and drain cancel retrains through it.
	Train func(ctx context.Context) (*Candidate, error)
	// Drift samples the incumbent's online accuracy (the same source as
	// the trout_online_* gauges); it drives both the retrain trigger and
	// the post-promotion regression check.
	Drift func() obs.OnlineStats
	// Promote atomically swaps the decoded bundle into serving. A typed
	// incompatibility error rejects the candidate instead of panicking
	// at first predict.
	Promote func(m Manifest, blob []byte) error
	// Rollback restores the bundle that was serving before the last
	// Promote. Required if RollbackFactor > 0.
	Rollback func() error
	// IncumbentID names the currently serving model (fingerprint hex);
	// recorded as each candidate's parent.
	IncumbentID func() string

	// CutoffMinutes is the long/short boundary for the shadow trackers
	// (both sides use the incumbent's cutoff so hit-rates compare).
	CutoffMinutes float64

	// DriftThreshold triggers a retrain when |calibration drift| reaches
	// it; 0 means 0.15, negative disables the drift trigger.
	DriftThreshold float64
	// MAEThreshold triggers a retrain when online MAE (minutes) reaches
	// it; 0 disables.
	MAEThreshold float64
	// MinWindow is how many joined outcomes the online window needs
	// before its signal is trusted; 0 means 64.
	MinWindow int
	// MinInterval spaces automatic retrains; 0 means 30m. Manual
	// triggers bypass it.
	MinInterval time.Duration
	// CheckInterval is the drift poll (and shadow/probation poll)
	// cadence; 0 means 15s.
	CheckInterval time.Duration

	// ShadowWindow is how many joined outcomes each shadow tracker needs
	// before the candidate is judged; 0 means 32.
	ShadowWindow int
	// ShadowTimeout rejects a candidate whose shadow window never fills
	// (quiet cluster, no joinable traffic); 0 means 1h.
	ShadowTimeout time.Duration
	// ShadowQueue bounds the off-hot-path scoring queue; 0 means 256.
	ShadowQueue int

	// MAERatio promotes only when candidate shadow MAE <= incumbent
	// shadow MAE × ratio (when both windows have regression outcomes);
	// 0 means 1.0.
	MAERatio float64
	// HitRateSlack lets the candidate's shadow hit-rate trail the
	// incumbent's by this much before it is disqualified; 0 means 0.02.
	HitRateSlack float64

	// RollbackWindow is how many fresh joined outcomes to observe after a
	// promotion before the regression check clears it; 0 means
	// ShadowWindow. RollbackFactor rolls the promotion back when the
	// online MAE over the probation exceeds the pre-promotion MAE × this
	// factor; 0 means 2.0, negative disables probation.
	RollbackWindow int
	RollbackFactor float64

	Logger *slog.Logger

	// Tracer, when set, records each retrain cycle as a hierarchical
	// trace: a "retrain" root with train/publish/shadow/promote child
	// spans. Failed cycles are errored traces, so tail sampling always
	// exports them. Nil disables (zero overhead).
	Tracer *obs.Tracer
}

func (o *Options) defaults() error {
	if o.Registry == nil || o.Train == nil || o.Drift == nil || o.Promote == nil {
		return fmt.Errorf("controlplane: controller needs Registry, Train, Drift, and Promote")
	}
	if o.DriftThreshold == 0 {
		o.DriftThreshold = 0.15
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 64
	}
	if o.MinInterval == 0 {
		o.MinInterval = 30 * time.Minute
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = 15 * time.Second
	}
	if o.ShadowWindow <= 0 {
		o.ShadowWindow = 32
	}
	if o.ShadowTimeout <= 0 {
		o.ShadowTimeout = time.Hour
	}
	if o.MAERatio <= 0 {
		o.MAERatio = 1.0
	}
	if o.HitRateSlack == 0 {
		o.HitRateSlack = 0.02
	}
	if o.RollbackWindow <= 0 {
		o.RollbackWindow = o.ShadowWindow
	}
	if o.RollbackFactor == 0 {
		o.RollbackFactor = 2.0
	}
	if o.RollbackFactor > 0 && o.Rollback == nil {
		return fmt.Errorf("controlplane: RollbackFactor > 0 needs a Rollback callback")
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return nil
}

// Status is a consistent snapshot of the controller for /health and the
// admin endpoints.
type Status struct {
	State       string `json:"state"`
	LastVerdict string `json:"last_verdict,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// Candidate identifies the version currently (or last) under shadow.
	CandidateVersion int    `json:"candidate_version,omitempty"`
	CandidateID      string `json:"candidate_id,omitempty"`
	// Shadow progress/scores for the in-flight candidate.
	CandWindow  int     `json:"cand_window,omitempty"`
	IncWindow   int     `json:"inc_window,omitempty"`
	CandMAE     float64 `json:"cand_mae_minutes,omitempty"`
	IncMAE      float64 `json:"inc_mae_minutes,omitempty"`
	CandHitRate float64 `json:"cand_hit_rate,omitempty"`
	IncHitRate  float64 `json:"inc_hit_rate,omitempty"`
	// Cycle counters.
	Retrains        uint64 `json:"retrains"`
	Promotions      uint64 `json:"promotions"`
	Rejections      uint64 `json:"rejections"`
	Failures        uint64 `json:"failures"`
	Rollbacks       uint64 `json:"rollbacks"`
	LastRetrainUnix int64  `json:"last_retrain_unix,omitempty"`
}

// Controller runs the retrain→shadow→promote loop. Create with
// NewController, start with Run, feed with ObserveServed/ObserveStart,
// trigger manually with TriggerRetrain.
type Controller struct {
	opt Options

	manual chan struct{}
	shadow atomic.Pointer[shadowRun]

	mu          sync.Mutex
	state       string
	lastVerdict string
	lastErr     string
	candVer     int
	candID      string
	lastRetrain time.Time

	retrains   atomic.Uint64
	promotions atomic.Uint64
	rejections atomic.Uint64
	failures   atomic.Uint64
	rollbacks  atomic.Uint64
	// shadowDropped/shadowScored/shadowErrs accumulate across cycles so
	// the exported counters stay monotonic.
	shadowScored  atomic.Uint64
	shadowDropped atomic.Uint64
	shadowErrs    atomic.Uint64
}

// NewController validates options and returns an idle controller.
func NewController(opt Options) (*Controller, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	return &Controller{opt: opt, state: StateIdle, manual: make(chan struct{}, 1)}, nil
}

// TriggerRetrain requests a retrain cycle outside the drift thresholds
// (the POST /admin/retrain path). It reports whether the request was
// accepted; a cycle already running or queued declines.
func (c *Controller) TriggerRetrain() (bool, string) {
	c.mu.Lock()
	state := c.state
	c.mu.Unlock()
	if state != StateIdle {
		return false, "retrain cycle already in progress (state " + state + ")"
	}
	select {
	case c.manual <- struct{}{}:
		return true, "retrain queued"
	default:
		return false, "retrain already queued"
	}
}

// Run executes the control loop until ctx is canceled. Shutdown mid-cycle
// cancels training through ctx and abandons the in-flight candidate
// (status stays shadow in the registry; the next boot's operator can see
// it was never judged).
func (c *Controller) Run(ctx context.Context) error {
	tick := time.NewTicker(c.opt.CheckInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.manual:
			c.cycle(ctx, "manual")
		case <-tick.C:
			if reason, ok := c.shouldRetrain(); ok {
				c.cycle(ctx, reason)
			}
		}
	}
}

// shouldRetrain evaluates the drift thresholds against the online window.
func (c *Controller) shouldRetrain() (string, bool) {
	c.mu.Lock()
	idle := c.state == StateIdle
	last := c.lastRetrain
	c.mu.Unlock()
	if !idle {
		return "", false
	}
	if !last.IsZero() && time.Since(last) < c.opt.MinInterval {
		return "", false
	}
	st := c.opt.Drift()
	if st.Window < c.opt.MinWindow {
		return "", false
	}
	if th := c.opt.DriftThreshold; th > 0 {
		drift := st.CalibrationDrift
		if drift < 0 {
			drift = -drift
		}
		if drift >= th {
			return fmt.Sprintf("calibration drift %.3f >= %.3f", st.CalibrationDrift, th), true
		}
	}
	if th := c.opt.MAEThreshold; th > 0 && st.RegressionObbs > 0 && st.MAEMinutes >= th {
		return fmt.Sprintf("online MAE %.1f min >= %.1f", st.MAEMinutes, th), true
	}
	return "", false
}

func (c *Controller) setState(state string) {
	c.mu.Lock()
	c.state = state
	c.mu.Unlock()
}

// finish records a cycle's verdict and returns the controller to Idle.
func (c *Controller) finish(verdict, errMsg string) {
	c.mu.Lock()
	c.state = StateIdle
	c.lastVerdict = verdict
	c.lastErr = errMsg
	c.lastRetrain = time.Now()
	c.mu.Unlock()
}

// cycle runs one full Retraining→Shadow→verdict pass.
func (c *Controller) cycle(ctx context.Context, reason string) {
	log := c.opt.Logger
	c.retrains.Add(1)
	c.setState(StateRetraining)
	log.Info("controlplane: retraining", slog.String("reason", reason))

	tb, root := c.opt.Tracer.StartRoot("retrain")
	root.SetAttr("reason", reason)
	var cycleErr error
	defer func() { c.opt.Tracer.FinishRoot(tb, root, cycleErr) }()

	tsp := root.StartChild("train")
	cand, err := c.opt.Train(ctx)
	if err != nil || cand == nil || len(cand.Blob) == 0 || cand.Predictor == nil {
		if err == nil {
			err = fmt.Errorf("trainer returned no candidate")
		}
		tsp.EndErr(err)
		cycleErr = err
		c.failures.Add(1)
		c.finish(VerdictFailed, err.Error())
		log.Warn("controlplane: retrain failed", slog.Any("error", err))
		return
	}
	tsp.SetAttrInt("samples", int64(cand.Samples))
	tsp.End()

	parent := ""
	if c.opt.IncumbentID != nil {
		parent = c.opt.IncumbentID()
	}
	psp := root.StartChild("publish")
	m, err := c.opt.Registry.Publish(cand.Blob, Manifest{
		Parent:      parent,
		Watermark:   cand.Watermark,
		Samples:     cand.Samples,
		Hyperparams: cand.Hyperparams,
		Eval:        cand.Eval,
		Status:      StatusShadow,
		Note:        "trigger: " + reason,
	})
	if err != nil {
		psp.EndErr(err)
		cycleErr = err
		c.failures.Add(1)
		c.finish(VerdictFailed, err.Error())
		log.Warn("controlplane: publish failed", slog.Any("error", err))
		return
	}
	psp.SetAttrInt("version", int64(m.Version))
	psp.End()
	c.mu.Lock()
	c.candVer, c.candID = m.Version, m.ID
	c.mu.Unlock()
	log.Info("controlplane: candidate published",
		slog.Int("version", m.Version), slog.String("id", m.ID[:12]),
		slog.Int("samples", m.Samples), slog.Float64("offline_mae", m.Eval.MAEMinutes))

	verdict, note := c.shadowPhase(ctx, m, cand, root)
	root.SetAttr("verdict", verdict)
	switch verdict {
	case VerdictPromoted:
		// Status/active flip happen inside promoteAndWatch.
	case VerdictRejected:
		_ = c.opt.Registry.SetStatus(m.Version, StatusRejected, note)
		c.rejections.Add(1)
		c.finish(VerdictRejected, "")
		log.Info("controlplane: candidate rejected",
			slog.Int("version", m.Version), slog.String("note", note))
	case VerdictFailed:
		cycleErr = fmt.Errorf("retrain failed: %s", note)
		c.failures.Add(1)
		c.finish(VerdictFailed, note)
	}
}

// shadowPhase scores the candidate on live traffic until both trackers
// fill their windows (or timeout/shutdown), then judges and — when the
// candidate wins — promotes and watches the probation window.
func (c *Controller) shadowPhase(ctx context.Context, m Manifest, cand *Candidate, troot obs.SpanHandle) (string, string) {
	c.setState(StateShadow)
	ssp := troot.StartChild("shadow")
	sr := newShadowRun(m.Version, m.ID, cand.Predictor, c.opt.CutoffMinutes, c.opt.ShadowQueue, c.opt.ShadowWindow)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go sr.loop(sctx)
	c.shadow.Store(sr)
	defer func() {
		c.shadow.Store(nil)
		c.shadowScored.Add(sr.scored.Load())
		c.shadowDropped.Add(sr.dropped.Load())
		c.shadowErrs.Add(sr.errs.Load())
	}()

	deadline := time.Now().Add(c.opt.ShadowTimeout)
	tick := time.NewTicker(c.opt.CheckInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			ssp.SetError("shutdown during shadow")
			ssp.End()
			return VerdictFailed, "shutdown during shadow"
		case <-tick.C:
		}
		cs, is := sr.cand.Stats(), sr.inc.Stats()
		if cs.Window >= c.opt.ShadowWindow && is.Window >= c.opt.ShadowWindow {
			better, note := c.judge(cs, is)
			ssp.SetAttrInt("scored", int64(sr.scored.Load()))
			ssp.End()
			if !better {
				return VerdictRejected, note
			}
			return c.promoteAndWatch(ctx, m, cs, note, troot)
		}
		if time.Now().After(deadline) {
			ssp.SetError("shadow window never filled")
			ssp.End()
			return VerdictRejected, fmt.Sprintf("shadow window never filled (cand %d, inc %d of %d)",
				cs.Window, is.Window, c.opt.ShadowWindow)
		}
	}
}

// judge compares the candidate's and incumbent's shadow windows: the
// classifier must not regress beyond the slack, and when both windows
// contain regression outcomes, the candidate's MAE must clear the ratio.
// With no regression outcomes on either side, hit-rate decides (candidate
// wins ties — it was trained on fresher data).
func (c *Controller) judge(cand, inc obs.OnlineStats) (bool, string) {
	note := fmt.Sprintf("shadow: cand hit %.3f mae %.1f (n=%d) vs inc hit %.3f mae %.1f (n=%d)",
		cand.HitRate, cand.MAEMinutes, cand.Window, inc.HitRate, inc.MAEMinutes, inc.Window)
	if cand.HitRate < inc.HitRate-c.opt.HitRateSlack {
		return false, note + ": hit-rate regressed"
	}
	if cand.RegressionObbs > 0 && inc.RegressionObbs > 0 {
		if cand.MAEMinutes > inc.MAEMinutes*c.opt.MAERatio {
			return false, note + ": MAE regressed"
		}
		return true, note
	}
	if cand.HitRate >= inc.HitRate {
		return true, note
	}
	return false, note + ": hit-rate below incumbent"
}

// promoteAndWatch swaps the candidate into serving, then holds it under
// probation: if the online MAE over the next RollbackWindow joined
// outcomes blows past the pre-promotion level, the swap is instantly
// reverted. Baseline captured BEFORE the swap so the comparison is
// serving-model-attributable.
func (c *Controller) promoteAndWatch(ctx context.Context, m Manifest, shadowStats obs.OnlineStats, note string, troot obs.SpanHandle) (string, string) {
	log := c.opt.Logger
	psp := troot.StartChild("promote")
	defer psp.End()
	before := c.opt.Drift()
	if err := c.opt.Promote(m, nil); err != nil {
		psp.SetError("promote refused: " + err.Error())
		return VerdictRejected, note + "; promote refused: " + err.Error()
	}
	psp.SetAttrInt("version", int64(m.Version))
	_ = c.opt.Registry.SetActive(m.Version)
	_ = c.opt.Registry.SetStatus(m.Version, StatusActive, note)
	c.promotions.Add(1)
	log.Info("controlplane: candidate promoted",
		slog.Int("version", m.Version), slog.String("id", m.ID[:12]))

	if c.opt.RollbackFactor <= 0 {
		c.finish(VerdictPromoted, "")
		return VerdictPromoted, note
	}

	// Probation: wait for RollbackWindow fresh joins, bounded by the
	// shadow timeout (a quiet cluster should not pin the controller).
	deadline := time.Now().Add(c.opt.ShadowTimeout)
	tick := time.NewTicker(c.opt.CheckInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			c.finish(VerdictPromoted, "shutdown during probation")
			return VerdictPromoted, note
		case <-tick.C:
		}
		now := c.opt.Drift()
		if now.Joined-before.Joined < uint64(c.opt.RollbackWindow) {
			if time.Now().After(deadline) {
				c.finish(VerdictPromoted, "")
				return VerdictPromoted, note + "; probation window never filled"
			}
			continue
		}
		// Regression check: the post-swap online MAE must not explode
		// relative to what the incumbent was delivering. A pre-promotion
		// window without regression outcomes falls back to the candidate's
		// own shadow MAE as the baseline.
		baseline := before.MAEMinutes
		if before.RegressionObbs == 0 {
			baseline = shadowStats.MAEMinutes
		}
		if baseline > 0 && now.RegressionObbs > 0 && now.MAEMinutes > baseline*c.opt.RollbackFactor {
			if err := c.opt.Rollback(); err != nil {
				log.Error("controlplane: rollback failed", slog.Any("error", err))
				c.finish(VerdictPromoted, "rollback failed: "+err.Error())
				return VerdictPromoted, note
			}
			_ = c.opt.Registry.SetActive(0)
			_ = c.opt.Registry.SetStatus(m.Version, StatusRolledBack,
				fmt.Sprintf("online MAE %.1f > %.1f×%.1f after promotion", now.MAEMinutes, baseline, c.opt.RollbackFactor))
			psp.SetError("rolled back: online MAE regressed")
			c.rollbacks.Add(1)
			c.finish(VerdictRolledBack, "")
			log.Warn("controlplane: promotion rolled back",
				slog.Int("version", m.Version),
				slog.Float64("online_mae", now.MAEMinutes),
				slog.Float64("baseline_mae", baseline))
			return VerdictRolledBack, note
		}
		c.finish(VerdictPromoted, "")
		return VerdictPromoted, note
	}
}

// ObserveServed captures one served prediction for shadow scoring. Cheap
// and non-blocking when no shadow run is active (one atomic load); never
// delays the serving path.
func (c *Controller) ObserveServed(jobID int, snap *features.Snapshot, prob, minutes float64, long bool) {
	if c == nil {
		return
	}
	if sr := c.shadow.Load(); sr != nil {
		sr.offer(shadowItem{jobID: jobID, snap: snap, prob: prob, minutes: minutes, long: long})
	}
}

// ObserveStart joins a realized start event into the active shadow run
// (no-op outside the shadow phase).
func (c *Controller) ObserveStart(jobID int, eligible, start int64) {
	if c == nil {
		return
	}
	if sr := c.shadow.Load(); sr != nil {
		sr.resolve(jobID, eligible, start)
	}
}

// Status snapshots the controller for /health and admin responses.
func (c *Controller) Status() Status {
	c.mu.Lock()
	st := Status{
		State:            c.state,
		LastVerdict:      c.lastVerdict,
		LastError:        c.lastErr,
		CandidateVersion: c.candVer,
		CandidateID:      c.candID,
	}
	if !c.lastRetrain.IsZero() {
		st.LastRetrainUnix = c.lastRetrain.Unix()
	}
	c.mu.Unlock()
	st.Retrains = c.retrains.Load()
	st.Promotions = c.promotions.Load()
	st.Rejections = c.rejections.Load()
	st.Failures = c.failures.Load()
	st.Rollbacks = c.rollbacks.Load()
	if sr := c.shadow.Load(); sr != nil {
		cs, is := sr.cand.Stats(), sr.inc.Stats()
		st.CandWindow, st.IncWindow = cs.Window, is.Window
		st.CandMAE, st.IncMAE = cs.MAEMinutes, is.MAEMinutes
		st.CandHitRate, st.IncHitRate = cs.HitRate, is.HitRate
	}
	return st
}

// stateValue encodes the state for the trout_controlplane_state gauge.
func (c *Controller) stateValue() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateRetraining:
		return 1
	case StateShadow:
		return 2
	default:
		return 0
	}
}

// Register exports the trout_controlplane_* and trout_shadow_* metric
// families on r. Shadow gauges read through the atomic run pointer, so
// one registration covers every future cycle.
func (c *Controller) Register(r *obs.Registry) {
	r.GaugeFunc("trout_controlplane_state",
		"Control-plane lifecycle state (0=idle, 1=retraining, 2=shadow).",
		c.stateValue)
	r.CounterVecFunc("trout_controlplane_retrains_total",
		"Retrain cycles completed, by outcome.", []string{"outcome"},
		func(emit obs.Emit) {
			emit(float64(c.promotions.Load()), VerdictPromoted)
			emit(float64(c.rejections.Load()), VerdictRejected)
			emit(float64(c.failures.Load()), VerdictFailed)
			emit(float64(c.rollbacks.Load()), VerdictRolledBack)
		})
	r.GaugeFunc("trout_controlplane_last_retrain_unix",
		"When the last retrain cycle finished (unix seconds; 0 = never).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.lastRetrain.IsZero() {
				return 0
			}
			return float64(c.lastRetrain.Unix())
		})
	r.GaugeFunc("trout_controlplane_registry_versions",
		"Model versions recorded in the registry manifest.",
		func() float64 { return float64(len(c.opt.Registry.List())) })
	r.GaugeFunc("trout_controlplane_registry_active_version",
		"Registry version currently active (0 = boot bundle).",
		func() float64 { return float64(c.opt.Registry.ActiveVersion()) })

	shadowCount := func(live func(*shadowRun) uint64, total *atomic.Uint64) func() float64 {
		return func() float64 {
			n := total.Load()
			if sr := c.shadow.Load(); sr != nil {
				n += live(sr)
			}
			return float64(n)
		}
	}
	r.CounterFunc("trout_shadow_scored_total",
		"Live predictions replayed through a shadow candidate.",
		shadowCount(func(sr *shadowRun) uint64 { return sr.scored.Load() }, &c.shadowScored))
	r.CounterFunc("trout_shadow_dropped_total",
		"Shadow samples dropped because the scoring queue was full.",
		shadowCount(func(sr *shadowRun) uint64 { return sr.dropped.Load() }, &c.shadowDropped))
	r.CounterFunc("trout_shadow_errors_total",
		"Shadow candidate predictions that errored.",
		shadowCount(func(sr *shadowRun) uint64 { return sr.errs.Load() }, &c.shadowErrs))
	shadowStat := func(sel func(cand, inc obs.OnlineStats) float64) func(obs.Emit) {
		return func(emit obs.Emit) {
			sr := c.shadow.Load()
			if sr == nil {
				emit(0, "candidate")
				emit(0, "incumbent")
				return
			}
			cs, is := sr.cand.Stats(), sr.inc.Stats()
			emit(sel(cs, is), "candidate")
			emit(sel(is, cs), "incumbent")
		}
	}
	r.GaugeVecFunc("trout_shadow_window_size",
		"Joined outcomes in each shadow tracker's rolling window.", []string{"role"},
		shadowStat(func(a, _ obs.OnlineStats) float64 { return float64(a.Window) }))
	r.GaugeVecFunc("trout_shadow_mae_minutes",
		"Rolling shadow MAE (minutes) per role.", []string{"role"},
		shadowStat(func(a, _ obs.OnlineStats) float64 { return a.MAEMinutes }))
	r.GaugeVecFunc("trout_shadow_hit_rate",
		"Rolling shadow classifier hit-rate per role.", []string{"role"},
		shadowStat(func(a, _ obs.OnlineStats) float64 { return a.HitRate }))
}
