package scaling

import (
	"math/rand"
	"testing"
)

// TestTransformIntoMatchesTransform: the allocation-free path must be
// bit-identical to Transform for every scaler, fitted and unfitted.
func TestTransformIntoMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = make([]float64, 6)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 100
		}
	}
	probe := []float64{0, 1.5, 99, 0.001, 42, 7}
	dst := make([]float64, len(probe))
	for _, kind := range Kinds() {
		for _, fitted := range []bool{false, true} {
			s, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			if fitted {
				s.Fit(rows)
			}
			want := s.Transform(probe)
			TransformInto(s, dst, probe)
			for j := range want {
				if dst[j] != want[j] {
					t.Fatalf("%s fitted=%v col %d: into %v != transform %v", kind, fitted, j, dst[j], want[j])
				}
			}
		}
	}
}

// TestTransformIntoNoAllocs: the whole point of the Into path.
func TestTransformIntoNoAllocs(t *testing.T) {
	s, _ := New(Log1p)
	row := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	if allocs := testing.AllocsPerRun(100, func() { TransformInto(s, dst, row) }); allocs > 0 {
		t.Fatalf("TransformInto allocates %.1f per run, want 0", allocs)
	}
}
