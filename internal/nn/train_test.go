package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// trainTestSpecs exercises every training-path layer kind: dense, batch
// norm, activation, and (active) dropout.
func trainTestSpecs() []LayerSpec {
	return []LayerSpec{
		DenseSpec(12, 32), BatchNormSpec(32), ActivationSpec(ELU), DropoutSpec(0.25),
		DenseSpec(32, 8), ActivationSpec(ReLU),
		DenseSpec(8, 1),
	}
}

func trainTestData(rows int) (*tensor.Matrix, *tensor.Matrix) {
	rng := rand.New(rand.NewSource(31))
	x := tensor.New(rows, 12)
	y := tensor.New(rows, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < rows; i++ {
		y.Data[i] = x.Row(i)[0] - 0.5*x.Row(i)[1] + 0.1*rng.NormFloat64()
	}
	return x, y
}

// TestTrainWorkspaceMatchesLegacy is the training-path analogue of
// TestPredictIntoMatchesForward: ForwardTrain/LossInto/BackwardTrain over a
// workspace must be bit-identical to the allocating Forward/Loss/Backward
// path — losses, predictions, parameter gradients, optimizer trajectories,
// batch-norm running statistics, and dropout RNG consumption all agree
// across several optimizer steps and varying batch sizes (including a
// single-row batch, which takes batch-norm's running-stats branch).
func TestTrainWorkspaceMatchesLegacy(t *testing.T) {
	x, y := trainTestData(128)
	legacy := NewNetwork(rand.New(rand.NewSource(21)), trainTestSpecs()...)
	modern := NewNetwork(rand.New(rand.NewSource(21)), trainTestSpecs()...)
	optL, optM := NewAdam(0.01), NewAdam(0.01)
	ws := modern.NewTrainWorkspace()
	var xbuf, ybuf tensor.Matrix

	batches := [][2]int{{0, 32}, {32, 96}, {96, 97}, {97, 128}, {0, 16}}
	for step, span := range batches {
		batch := make([]int, span[1]-span[0])
		for i := range batch {
			batch[i] = span[0] + i
		}

		xbL, ybL := x.SelectRows(batch), y.SelectRows(batch)
		predL := legacy.Forward(xbL, true)
		lL, gradL := Loss(SmoothL1, predL, ybL)
		legacy.Backward(gradL)

		xbM := x.SelectRowsInto(batch, &xbuf)
		ybM := y.SelectRowsInto(batch, &ybuf)
		predM := modern.ForwardTrain(ws, xbM)
		lM := LossInto(SmoothL1, predM, ybM, &ws.grad)
		modern.BackwardTrain(ws, &ws.grad)

		if lL != lM {
			t.Fatalf("step %d: loss %v (legacy) != %v (workspace)", step, lL, lM)
		}
		for i := range predL.Data {
			if predL.Data[i] != predM.Data[i] {
				t.Fatalf("step %d: prediction %d differs: %v vs %v", step, i, predL.Data[i], predM.Data[i])
			}
		}
		pL, pM := legacy.Params(), modern.Params()
		for i := range pL {
			for k := range pL[i].Grad.Data {
				if pL[i].Grad.Data[k] != pM[i].Grad.Data[k] {
					t.Fatalf("step %d: param %d grad[%d] differs: %v vs %v",
						step, i, k, pL[i].Grad.Data[k], pM[i].Grad.Data[k])
				}
			}
		}
		optL.Step(pL)
		optM.Step(pM)
	}

	pL, pM := legacy.Params(), modern.Params()
	for i := range pL {
		for k := range pL[i].Value.Data {
			if pL[i].Value.Data[k] != pM[i].Value.Data[k] {
				t.Fatalf("param %d value[%d] diverged after training: %v vs %v",
					i, k, pL[i].Value.Data[k], pM[i].Value.Data[k])
			}
		}
	}
	for i, l := range legacy.Layers {
		bnL, ok := l.(*BatchNorm)
		if !ok {
			continue
		}
		bnM := modern.Layers[i].(*BatchNorm)
		for j := range bnL.RunMean {
			if bnL.RunMean[j] != bnM.RunMean[j] || bnL.RunVar[j] != bnM.RunVar[j] {
				t.Fatalf("batchnorm running stats diverged at %d", j)
			}
		}
	}
}

// TestBatchStepAllocFree pins the tentpole's allocation win: a warm serial
// batch step (gather, forward, loss, backward, clip, Adam step) must run
// allocation-free, and at least 10x leaner than the legacy allocating path.
func TestBatchStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	x, y := trainTestData(256)
	batch := make([]int, 64)
	for i := range batch {
		batch[i] = i
	}

	net := NewNetwork(rand.New(rand.NewSource(41)), trainTestSpecs()...)
	tr := &Trainer{Net: net, Opt: NewAdam(1e-3), Cfg: TrainConfig{Loss: SmoothL1, ClipNorm: 5}}
	st := newTrainState([]*Network{net})
	for i := 0; i < 3; i++ { // warm the workspace and optimizer state
		tr.batchStep(st, x, y, batch, 1, true)
	}
	warm := testing.AllocsPerRun(50, func() {
		tr.batchStep(st, x, y, batch, 1, true)
	})

	legacyNet := NewNetwork(rand.New(rand.NewSource(41)), trainTestSpecs()...)
	legacyOpt := NewAdam(1e-3)
	legacy := testing.AllocsPerRun(50, func() {
		xb, yb := x.SelectRows(batch), y.SelectRows(batch)
		pred := legacyNet.Forward(xb, true)
		_, grad := Loss(SmoothL1, pred, yb)
		legacyNet.Backward(grad)
		clipGradients(legacyNet.Params(), 5)
		legacyOpt.Step(legacyNet.Params())
	})

	t.Logf("allocs per batch step: workspace %.1f, legacy %.1f", warm, legacy)
	if warm > 0 {
		t.Errorf("warm workspace batch step allocates %.1f times, want 0", warm)
	}
	if warm > legacy/10 {
		t.Errorf("workspace path (%.1f allocs) is not >=10x leaner than legacy (%.1f)", warm, legacy)
	}
}

// BenchmarkTrainEpoch measures one full training epoch of a paper-shaped
// regressor (33 features, 64/32 hidden, smooth-L1, Adam) on the serial
// path. Feeds BENCH_train.json via `make bench-json`.
func BenchmarkTrainEpoch(b *testing.B) {
	const rows = 8192
	rng := rand.New(rand.NewSource(51))
	x := tensor.New(rows, 33)
	y := tensor.New(rows, 1)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < rows; i++ {
		y.Data[i] = x.Row(i)[0]*2 - x.Row(i)[1] + 0.3*rng.NormFloat64()
	}
	net := NewNetwork(rng, MLPSpecs(33, []int{64, 32}, 1, ELU, Identity, 0.2)...)
	tr := &Trainer{
		Net: net,
		Opt: NewAdam(1e-3),
		Cfg: TrainConfig{Loss: SmoothL1, Epochs: 1, BatchSize: 256, Workers: 1, Seed: 5, ClipNorm: 5},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Fit(x, y)
	}
}
