package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// blockingHandler parks every request until release is closed, and
// signals entered once per request that made it past the gate.
func blockingHandler(entered chan<- struct{}, release <-chan struct{}) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
}

func TestAdmissionRetryAfterRoundsUp(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: -1, RetryAfter: 1500 * time.Millisecond})
	h := a.Middleware(blockingHandler(entered, release))

	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/events", nil))
	<-entered // slot now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/events", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("watermark breach answered %d, want 429", rec.Code)
	}
	// 1.5s rounds UP: a client honoring the hint must not return early.
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2 (whole seconds, rounded up)", ra)
	}
	if body := rec.Body.String(); body == "" {
		t.Fatal("shed without structured error body")
	}
}

func TestAdmissionQueuedRequestGetsFreedSlot(t *testing.T) {
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	h := a.Middleware(blockingHandler(entered, release))

	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/events", nil))
	<-entered

	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/events", nil))
		done <- rec.Code
	}()
	// Let the second request queue, then free the slot: it must be admitted,
	// not shed.
	waitFor(t, func() bool { return a.Queued() == 1 })
	close(release)
	<-entered
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d, want admission", code)
	}
}

func TestAdmissionClientCancelWhileQueued(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	shed := make(chan string, 4)
	a := NewAdmission(AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second,
		OnDecision: func(d string) { shed <- d },
	})
	h := a.Middleware(blockingHandler(entered, release))

	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/events", nil))
	<-entered
	<-shed // the accepted decision for the slot holder

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/events", nil).WithContext(ctx))
		close(done)
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })
	cancel()
	<-done
	if d := <-shed; d != AdmissionShedCanceled {
		t.Fatalf("decision = %q, want %q", d, AdmissionShedCanceled)
	}
	if a.Queued() != 0 {
		t.Fatalf("queued gauge leaked after cancel: %d", a.Queued())
	}
	var nilGate *Admission
	if nilGate.Middleware(h) == nil {
		t.Fatal("nil gate returned nil handler")
	}
}
