package trout_test

import (
	"bytes"
	"math"
	"testing"

	trout "repro"
	"repro/internal/features"
)

// TestSnapshotRowMatchesBuild is the deployment-path differential test: the
// feature row reconstructed from a live-queue snapshot must exactly equal
// the row the offline builder computed from completed records.
func TestSnapshotRowMatchesBuild(t *testing.T) {
	e := sharedExperiment(t)
	checked := 0
	for i := 0; i < e.Data.Len() && checked < 40; i += e.Data.Len() / 40 {
		job := e.Data.Jobs[i]
		snap, err := trout.SnapshotFromTrace(e.Trace, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		row, err := features.SnapshotRow(snap, e.Cluster, e.Data.Runtime)
		if err != nil {
			t.Fatal(err)
		}
		for f, v := range row {
			if math.Abs(v-e.Data.X[i][f]) > 1e-9 {
				t.Fatalf("job %d feature %q: snapshot %v vs build %v",
					job.ID, trout.FeatureNames[f], v, e.Data.X[i][f])
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d jobs checked", checked)
	}
}

func TestSnapshotFromTraceErrors(t *testing.T) {
	e := sharedExperiment(t)
	if _, err := trout.SnapshotFromTrace(e.Trace, -12345); err == nil {
		t.Fatal("missing job accepted")
	}
}

func TestSnapshotRowErrors(t *testing.T) {
	e := sharedExperiment(t)
	snap := &trout.Snapshot{Target: trout.Job{Partition: "nope"}}
	if _, err := features.SnapshotRow(snap, e.Cluster, e.Data.Runtime); err == nil {
		t.Fatal("unknown partition accepted")
	}
	snap2 := &trout.Snapshot{Target: trout.Job{Partition: "shared"}}
	if _, err := features.SnapshotRow(snap2, e.Cluster, nil); err == nil {
		t.Fatal("nil runtime predictor accepted")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	e := sharedExperiment(t)
	m, fold, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trout.NewBundle(m, e.Data, e.Cluster)
	if err != nil {
		t.Fatal(err)
	}

	jobID := e.Data.Jobs[fold.Test[0]].ID
	snap, err := trout.SnapshotFromTrace(e.Trace, jobID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.PredictSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trout.LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Long != want.Long || math.Abs(got.Prob-want.Prob) > 1e-12 || math.Abs(got.Minutes-want.Minutes) > 1e-9 {
		t.Fatalf("bundle round trip changed prediction: %+v vs %+v", got, want)
	}
	// Cluster preserved.
	if len(loaded.Cluster.Partitions) != len(b.Cluster.Partitions) {
		t.Fatal("cluster not preserved")
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	e := sharedExperiment(t)
	m, _, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trout.NewBundle(m, e.Data, e.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/b.bundle"
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := trout.LoadBundleFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := trout.LoadBundleFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNewBundleValidation(t *testing.T) {
	e := sharedExperiment(t)
	if _, err := trout.NewBundle(nil, e.Data, e.Cluster); err == nil {
		t.Fatal("nil model accepted")
	}
	m, _, err := trout.TrainHoldout(e.Data, e.Pipeline.Model, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trout.NewBundle(m, nil, e.Cluster); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := trout.NewBundle(m, e.Data, nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

func TestLoadBundleGarbage(t *testing.T) {
	if _, err := trout.LoadBundle(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
