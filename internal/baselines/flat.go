package baselines

import "math"

// flatTreeNode is one node of the flattened serving tree: 24 bytes in a
// single contiguous array, so a walk touches one cache line every couple
// of levels instead of chasing 64-byte heap nodes, and the whole hot path
// needs one bounds check per level. Leaves are self-looping — left points
// at the node itself and threshold is +Inf (no finite or NaN v satisfies
// v > +Inf) — which lets the batch walk step every lane unconditionally
// for a fixed number of iterations with no "is this lane done" branch.
type flatTreeNode struct {
	feature   int32   // split feature, or flatLeaf
	left      int32   // left child; right child is left+1 (BFS adjacency); self for leaves
	threshold float64 // split value; +Inf for leaves
	value     float64 // leaf prediction; 0 for splits
}

// flatTree is the serving form of a trained regression tree — the pointer
// nodes flattened breadth-first into a contiguous node array. BFS order
// places every right child at left+1, so the child step compiles to a
// flag-to-increment instead of a mispredictable branch.
//
// The flat form is rebuilt from the pointer tree after every Fit and gob
// load; the pointer tree remains the single source of truth for training,
// serialization, and the exact-mode comparisons, and predictNode keeps
// serving-identical semantics for the bit-identity tests.
type flatTree struct {
	nodes []flatTreeNode
	// nan is the index of a sentinel leaf holding NaN, where the batch
	// walk parks lanes that consulted a poisoned feature.
	nan int32
	// depth is the number of split levels on the deepest path: the batch
	// walk's fixed iteration count (every lane is parked on a leaf after
	// that many steps).
	depth int
}

// flatLeaf marks a leaf in flatTreeNode.feature.
const flatLeaf = int32(-1)

// flattenTree lays out the subtree under root breadth-first and appends
// the NaN sentinel leaf. A non-leaf node missing either child (possible
// only for hand-built trees; the learners always produce two) degrades to
// a leaf carrying the node's value, matching the nil-guarded pointer walk.
func flattenTree(root *treeNode) *flatTree {
	if root == nil {
		return nil
	}
	queue := []*treeNode{root}
	ft := &flatTree{}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		if n.leaf || n.left == nil || n.right == nil {
			ft.nodes = append(ft.nodes, flatTreeNode{
				feature: flatLeaf, left: int32(qi),
				threshold: math.Inf(1), value: n.value,
			})
			continue
		}
		ft.nodes = append(ft.nodes, flatTreeNode{
			feature:   int32(n.feature),
			left:      int32(len(queue)),
			threshold: n.threshold,
		})
		queue = append(queue, n.left, n.right)
	}
	ft.nan = int32(len(ft.nodes))
	ft.nodes = append(ft.nodes, flatTreeNode{
		feature: flatLeaf, left: ft.nan,
		threshold: math.Inf(1), value: math.NaN(),
	})
	ft.depth = splitDepth(root)
	return ft
}

// splitDepth counts split levels on the deepest root-to-leaf path.
func splitDepth(n *treeNode) int {
	if n == nil || n.leaf || n.left == nil || n.right == nil {
		return 0
	}
	l, r := splitDepth(n.left), splitDepth(n.right)
	if l < r {
		l = r
	}
	return l + 1
}

// predict walks the flat tree for one feature vector. A NaN in any
// consulted feature surfaces as a NaN prediction (the serving fallback
// keys off non-finite outputs); features the walk never consults cannot
// poison the result, mirroring predictNode.
func (ft *flatTree) predict(x []float64) float64 {
	nodes := ft.nodes
	i := int32(0)
	for {
		nd := nodes[i]
		f := nd.feature
		if f < 0 {
			return nd.value
		}
		v := x[f]
		if v != v {
			return math.NaN()
		}
		i = nd.left
		if v > nd.threshold {
			i++
		}
	}
}

// addMany accumulates out[i] += scale * predict(rows[i]) for every row,
// walking four rows through the tree in lockstep for exactly ft.depth
// steps. The lane step is branch-free on the hot path: the feature index
// is clamped to 0 for leaves (`f &^ (f >> 31)`), so a parked lane does a
// harmless re-read and self-loops via its +Inf threshold, and the
// left-or-right child select compiles to a flag increment rather than a
// data-dependent branch — split comparisons on real features are
// coin-flips a predictor cannot learn, and their mispredictions are what
// made the one-row walk slow. Four independent chains also keep four
// node loads in flight, overlapping the per-level latency a single walk
// serializes. A lane that consults a NaN feature parks on the NaN
// sentinel leaf (rare, predictable branch), reproducing the scalar
// walk's poisoned-input contract exactly.
func (ft *flatTree) addMany(rows [][]float64, scale float64, out []float64) {
	nodes := ft.nodes
	nan := ft.nan
	iters := ft.depth
	r := 0
	for ; r+4 <= len(rows); r += 4 {
		x0, x1, x2, x3 := rows[r], rows[r+1], rows[r+2], rows[r+3]
		var n0, n1, n2, n3 int32
		for d := 0; d < iters; d++ {
			nd0, nd1, nd2, nd3 := nodes[n0], nodes[n1], nodes[n2], nodes[n3]
			f0, f1, f2, f3 := nd0.feature, nd1.feature, nd2.feature, nd3.feature
			v0 := x0[f0&^(f0>>31)]
			v1 := x1[f1&^(f1>>31)]
			v2 := x2[f2&^(f2>>31)]
			v3 := x3[f3&^(f3>>31)]
			var i0, i1, i2, i3 int32
			if v0 > nd0.threshold {
				i0 = 1
			}
			if v1 > nd1.threshold {
				i1 = 1
			}
			if v2 > nd2.threshold {
				i2 = 1
			}
			if v3 > nd3.threshold {
				i3 = 1
			}
			n0, n1, n2, n3 = nd0.left+i0, nd1.left+i1, nd2.left+i2, nd3.left+i3
			if v0 != v0 && f0 >= 0 {
				n0 = nan
			}
			if v1 != v1 && f1 >= 0 {
				n1 = nan
			}
			if v2 != v2 && f2 >= 0 {
				n2 = nan
			}
			if v3 != v3 && f3 >= 0 {
				n3 = nan
			}
		}
		out[r] += scale * nodes[n0].value
		out[r+1] += scale * nodes[n1].value
		out[r+2] += scale * nodes[n2].value
		out[r+3] += scale * nodes[n3].value
	}
	for ; r < len(rows); r++ {
		out[r] += scale * ft.predict(rows[r])
	}
}

// rowHasNaN reports whether any feature in x is NaN.
func rowHasNaN(x []float64) bool {
	for _, v := range x {
		if v != v {
			return true
		}
	}
	return false
}

// allFlat reports whether every tree carries its flattened serving form.
func allFlat(trees []*Tree) bool {
	for _, t := range trees {
		if t.flat == nil {
			return false
		}
	}
	return len(trees) > 0
}

// flatEnsemble concatenates every tree's flat nodes into one contiguous
// array (child indices rebased, leaves still self-looping) with one root
// index per tree. Its walks run eight lanes like addMany, but the lanes
// are eight *trees* of the same row rather than eight rows of the same
// tree: every lane then shares a single feature-vector pointer and a
// single node-array base, so the whole lockstep step fits in registers —
// an eight-row variant spent its gains spilling row pointers and
// accumulators. Tree walks for one row are independent chains, so eight
// in flight still overlap the per-level load latency, and the shape makes
// the one-row Predict — the serving fallback's actual call shape — fast
// too, not just batches.
//
// Ensemble leaves differ from per-tree flat leaves in one way: feature is
// rewritten from flatLeaf to 0, so the walk loads x[feature] with no
// sign-clamp on the critical chain. The dummy x[0] read is harmless — the
// walks here require NaN-free rows, and the +Inf threshold self-loop
// parks the lane regardless of the value read. Leaves are recognized
// structurally instead: a node whose left index is itself (BFS always
// places real children strictly after their parent).
// ensNode is the ensemble's 16-byte walk node: threshold plus packed
// feature/left, two nodes per cache line. Leaf values live in the
// parallel values array, which the walk only touches once per tree at the
// end — keeping them out of the per-level working set.
type ensNode struct {
	feature   int32
	left      int32
	threshold float64
}

type flatEnsemble struct {
	nodes  []ensNode
	values []float64
	roots  []int32
	// iters[g] is the max split depth over tree group [8g, 8g+8): the
	// fixed lockstep iteration count for that lane group.
	iters []int32
}

// newFlatEnsemble builds the concatenated form, or returns nil if any
// tree lacks a flat form (nil root).
func newFlatEnsemble(trees []*Tree) *flatEnsemble {
	if !allFlat(trees) {
		return nil
	}
	fe := &flatEnsemble{}
	for _, t := range trees {
		off := int32(len(fe.nodes))
		fe.roots = append(fe.roots, off)
		for _, nd := range t.flat.nodes {
			f := nd.feature
			if f < 0 {
				f = 0
			}
			fe.nodes = append(fe.nodes, ensNode{feature: f, left: nd.left + off, threshold: nd.threshold})
			fe.values = append(fe.values, nd.value)
		}
	}
	for g := 0; g < len(trees); g += 8 {
		end := g + 8
		if end > len(trees) {
			end = len(trees)
		}
		m := 0
		for _, t := range trees[g:end] {
			if t.flat.depth > m {
				m = t.flat.depth
			}
		}
		fe.iters = append(fe.iters, int32(m))
	}
	return fe
}

// addRow returns acc + scale*tree0(x) + scale*tree1(x) + ... in exact
// tree order (bit-identical to the scalar Predict chain). x must be
// NaN-free — there is no per-level poisoned-feature guard here; callers
// route rows containing NaN through the per-tree scalar walk instead.
func (fe *flatEnsemble) addRow(x []float64, scale float64, acc float64) float64 {
	nodes := fe.nodes
	values := fe.values
	roots := fe.roots
	t := 0
	for ; t+8 <= len(roots); t += 8 {
		n0, n1, n2, n3 := roots[t], roots[t+1], roots[t+2], roots[t+3]
		n4, n5, n6, n7 := roots[t+4], roots[t+5], roots[t+6], roots[t+7]
		iters := int(fe.iters[t>>3])
		for d := 0; d < iters; d++ {
			nd0, nd1, nd2, nd3 := nodes[n0], nodes[n1], nodes[n2], nodes[n3]
			nd4, nd5, nd6, nd7 := nodes[n4], nodes[n5], nodes[n6], nodes[n7]
			v0 := x[nd0.feature]
			v1 := x[nd1.feature]
			v2 := x[nd2.feature]
			v3 := x[nd3.feature]
			v4 := x[nd4.feature]
			v5 := x[nd5.feature]
			v6 := x[nd6.feature]
			v7 := x[nd7.feature]
			var i0, i1, i2, i3, i4, i5, i6, i7 int32
			if v0 > nd0.threshold {
				i0 = 1
			}
			if v1 > nd1.threshold {
				i1 = 1
			}
			if v2 > nd2.threshold {
				i2 = 1
			}
			if v3 > nd3.threshold {
				i3 = 1
			}
			if v4 > nd4.threshold {
				i4 = 1
			}
			if v5 > nd5.threshold {
				i5 = 1
			}
			if v6 > nd6.threshold {
				i6 = 1
			}
			if v7 > nd7.threshold {
				i7 = 1
			}
			n0, n1, n2, n3 = nd0.left+i0, nd1.left+i1, nd2.left+i2, nd3.left+i3
			n4, n5, n6, n7 = nd4.left+i4, nd5.left+i5, nd6.left+i6, nd7.left+i7
		}
		acc += scale * values[n0]
		acc += scale * values[n1]
		acc += scale * values[n2]
		acc += scale * values[n3]
		acc += scale * values[n4]
		acc += scale * values[n5]
		acc += scale * values[n6]
		acc += scale * values[n7]
	}
	for ; t < len(roots); t++ {
		acc += scale * values[walkLeaf(nodes, roots[t], x)]
	}
	return acc
}

// lane8 returns the root for lane i of the group starting at t, or the
// dummy parked leaf (the array's final sentinel, a self-loop) for lanes
// past the last tree — letting a partial final group run the same
// eight-lane lockstep walk with the spare lanes doing harmless work.
func lane8(roots []int32, t, i int, dummy int32) int32 {
	if t+i < len(roots) {
		return roots[t+i]
	}
	return dummy
}

// walkLeaf walks a single tree of the concatenated array for one NaN-free
// row, returning the leaf's node index (leaves are self-loops, detected
// by left == index).
func walkLeaf(nodes []ensNode, n int32, x []float64) int32 {
	for {
		nd := nodes[n]
		if nd.left == n {
			return n
		}
		v := x[nd.feature]
		n = nd.left
		if v > nd.threshold {
			n++
		}
	}
}

// addBatch accumulates out[i] += scale*tree0(rows[i]) + ... for every
// row, same per-row order and rounding as addRow, but iterated lane-group
// outer and row inner: one group of eight trees is only a few KB of
// nodes, so it stays cache-hot while every row walks it, where addRow per
// row cycles the full ensemble through cache. Rows must be NaN-free.
func (fe *flatEnsemble) addBatch(rows [][]float64, scale float64, out []float64) {
	nodes := fe.nodes
	values := fe.values
	roots := fe.roots
	t := 0
	for ; t+8 <= len(roots); t += 8 {
		r0, r1, r2, r3 := roots[t], roots[t+1], roots[t+2], roots[t+3]
		r4, r5, r6, r7 := roots[t+4], roots[t+5], roots[t+6], roots[t+7]
		iters := int(fe.iters[t>>3])
		for ri, x := range rows {
			n0, n1, n2, n3, n4, n5, n6, n7 := r0, r1, r2, r3, r4, r5, r6, r7
			for d := 0; d < iters; d++ {
				nd0, nd1, nd2, nd3 := nodes[n0], nodes[n1], nodes[n2], nodes[n3]
				nd4, nd5, nd6, nd7 := nodes[n4], nodes[n5], nodes[n6], nodes[n7]
				v0 := x[nd0.feature]
				v1 := x[nd1.feature]
				v2 := x[nd2.feature]
				v3 := x[nd3.feature]
				v4 := x[nd4.feature]
				v5 := x[nd5.feature]
				v6 := x[nd6.feature]
				v7 := x[nd7.feature]
				var i0, i1, i2, i3, i4, i5, i6, i7 int32
				if v0 > nd0.threshold {
					i0 = 1
				}
				if v1 > nd1.threshold {
					i1 = 1
				}
				if v2 > nd2.threshold {
					i2 = 1
				}
				if v3 > nd3.threshold {
					i3 = 1
				}
				if v4 > nd4.threshold {
					i4 = 1
				}
				if v5 > nd5.threshold {
					i5 = 1
				}
				if v6 > nd6.threshold {
					i6 = 1
				}
				if v7 > nd7.threshold {
					i7 = 1
				}
				n0, n1, n2, n3 = nd0.left+i0, nd1.left+i1, nd2.left+i2, nd3.left+i3
				n4, n5, n6, n7 = nd4.left+i4, nd5.left+i5, nd6.left+i6, nd7.left+i7
			}
			acc := out[ri]
			acc += scale * values[n0]
			acc += scale * values[n1]
			acc += scale * values[n2]
			acc += scale * values[n3]
			acc += scale * values[n4]
			acc += scale * values[n5]
			acc += scale * values[n6]
			acc += scale * values[n7]
			out[ri] = acc
		}
	}
	if rem := len(roots) - t; rem > 0 {
		// Partial final group: spare lanes park on the dummy sentinel
		// leaf and their values are simply not accumulated, so the
		// per-row sum order stays exactly tree order.
		dummy := int32(len(nodes) - 1)
		r0, r1, r2, r3 := lane8(roots, t, 0, dummy), lane8(roots, t, 1, dummy), lane8(roots, t, 2, dummy), lane8(roots, t, 3, dummy)
		r4, r5, r6, r7 := lane8(roots, t, 4, dummy), lane8(roots, t, 5, dummy), lane8(roots, t, 6, dummy), lane8(roots, t, 7, dummy)
		iters := int(fe.iters[t>>3])
		for ri, x := range rows {
			n0, n1, n2, n3, n4, n5, n6, n7 := r0, r1, r2, r3, r4, r5, r6, r7
			for d := 0; d < iters; d++ {
				nd0, nd1, nd2, nd3 := nodes[n0], nodes[n1], nodes[n2], nodes[n3]
				nd4, nd5, nd6, nd7 := nodes[n4], nodes[n5], nodes[n6], nodes[n7]
				v0 := x[nd0.feature]
				v1 := x[nd1.feature]
				v2 := x[nd2.feature]
				v3 := x[nd3.feature]
				v4 := x[nd4.feature]
				v5 := x[nd5.feature]
				v6 := x[nd6.feature]
				v7 := x[nd7.feature]
				var i0, i1, i2, i3, i4, i5, i6, i7 int32
				if v0 > nd0.threshold {
					i0 = 1
				}
				if v1 > nd1.threshold {
					i1 = 1
				}
				if v2 > nd2.threshold {
					i2 = 1
				}
				if v3 > nd3.threshold {
					i3 = 1
				}
				if v4 > nd4.threshold {
					i4 = 1
				}
				if v5 > nd5.threshold {
					i5 = 1
				}
				if v6 > nd6.threshold {
					i6 = 1
				}
				if v7 > nd7.threshold {
					i7 = 1
				}
				n0, n1, n2, n3 = nd0.left+i0, nd1.left+i1, nd2.left+i2, nd3.left+i3
				n4, n5, n6, n7 = nd4.left+i4, nd5.left+i5, nd6.left+i6, nd7.left+i7
			}
			acc := out[ri]
			acc += scale * values[n0]
			if rem > 1 {
				acc += scale * values[n1]
			}
			if rem > 2 {
				acc += scale * values[n2]
			}
			if rem > 3 {
				acc += scale * values[n3]
			}
			if rem > 4 {
				acc += scale * values[n4]
			}
			if rem > 5 {
				acc += scale * values[n5]
			}
			if rem > 6 {
				acc += scale * values[n6]
			}
			if rem > 7 {
				acc += scale * values[n7]
			}
			out[ri] = acc
		}
	}
}
